// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md. Each
// benchmark drives the same code path as the corresponding cmd/ tool at a
// reduced scale and reports the headline quantity as a custom metric.
//
// Run them all with:
//
//	go test -bench=. -benchmem
package ear_test

import (
	"math/rand"
	"testing"
	"time"

	"ear"
	"ear/internal/analysis"
	"ear/internal/experiments"
	"ear/internal/placement"
	"ear/internal/simcfs"
	"ear/internal/topology"
)

// --- Core micro-benchmarks -------------------------------------------------

func benchPolicy(b *testing.B, name string) {
	top, err := topology.New(20, 20)
	if err != nil {
		b.Fatal(err)
	}
	cfg := placement.Config{Topology: top, K: 10, N: 14}
	rng := rand.New(rand.NewSource(1))
	var pol placement.Policy
	switch name {
	case "rr":
		pol, err = placement.NewRandom(cfg, rng)
	case "ear":
		pol, err = placement.NewEAR(cfg, rng)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Place(topology.BlockID(i)); err != nil {
			b.Fatal(err)
		}
		pol.TakeSealed()
	}
}

// BenchmarkPlacementRR measures the baseline placement cost per block.
func BenchmarkPlacementRR(b *testing.B) { benchPolicy(b, "rr") }

// BenchmarkPlacementEAR measures EAR's placement cost per block, including
// the incremental max-flow feasibility check.
func BenchmarkPlacementEAR(b *testing.B) { benchPolicy(b, "ear") }

// --- Ablation benchmarks ---------------------------------------------------

// BenchmarkAblationFlowIncremental compares EAR's snapshot-incremental flow
// check against rebuilding the flow graph per candidate layout.
func BenchmarkAblationFlowIncremental(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full-recompute", true}} {
		b.Run(mode.name, func(b *testing.B) {
			top, err := topology.New(20, 20)
			if err != nil {
				b.Fatal(err)
			}
			cfg := placement.Config{Topology: top, K: 10, N: 14, FullRecompute: mode.full}
			pol, err := placement.NewEAR(cfg, rand.New(rand.NewSource(2)))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pol.Place(topology.BlockID(i)); err != nil {
					b.Fatal(err)
				}
				pol.TakeSealed()
			}
		})
	}
}

// BenchmarkAblationCoreRackFlag quantifies the strict core-rack scheduling
// flag (Section IV's third modification): with the flag off, EAR's encode
// maps spill to arbitrary nodes and cross-rack downloads return.
func BenchmarkAblationCoreRackFlag(b *testing.B) {
	for _, mode := range []struct {
		name  string
		spill float64
	}{{"strict", 0}, {"spilled", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			var thpt float64
			for i := 0; i < b.N; i++ {
				res, err := simcfs.Run(simcfs.Params{
					Policy:            simcfs.PolicyEAR,
					Racks:             8,
					NodesPerRack:      4,
					K:                 4,
					N:                 6,
					EncodeProcesses:   4,
					StripesPerProcess: 3,
					EncoderSpillProb:  mode.spill,
					Seed:              int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				thpt += res.EncodeThroughputMBps
			}
			b.ReportMetric(thpt/float64(b.N), "MB/s")
		})
	}
}

// BenchmarkAblationTargetRacks measures Section III-D's packing knob. The
// encode-path cross-rack traffic stays flat (parity always leaves the full
// core rack); the benefit of c > 1 appears in recovery traffic, which
// RunRecovery measures, at the price of rack fault tolerance.
func BenchmarkAblationTargetRacks(b *testing.B) {
	for _, mode := range []struct {
		name       string
		c, targets int
	}{{"c1-spread", 1, 0}, {"c2-7racks", 2, 7}, {"c4-4racks", 4, 4}} {
		b.Run(mode.name, func(b *testing.B) {
			var cross float64
			for i := 0; i < b.N; i++ {
				res, err := simcfs.Run(simcfs.Params{
					Policy:            simcfs.PolicyEAR,
					C:                 mode.c,
					TargetRacks:       mode.targets,
					EncodeProcesses:   4,
					StripesPerProcess: 2,
					Seed:              int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				cross += res.CrossRackMB
			}
			b.ReportMetric(cross/float64(b.N), "crossMB")
		})
	}
}

// BenchmarkAblationDeletionStrategy compares the matching-based replica
// deletion against HDFS's naive keep-first deletion under RR: the matching
// repairs many layouts the naive strategy would have to relocate.
func BenchmarkAblationDeletionStrategy(b *testing.B) {
	top, err := topology.New(12, 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := placement.Config{Topology: top, K: 8, N: 10, C: 1}
	rng := rand.New(rand.NewSource(3))
	pol, err := placement.NewRandom(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	var naiveViolations, matchedViolations, stripes float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placements := make([]topology.Placement, cfg.K)
		blocks := make([]topology.BlockID, cfg.K)
		for j := range placements {
			pl, err := pol.Place(topology.BlockID(i*cfg.K + j))
			if err != nil {
				b.Fatal(err)
			}
			placements[j] = pl
			blocks[j] = pl.Block
		}
		info := &placement.StripeInfo{ID: topology.StripeID(i), CoreRack: -1, Blocks: blocks, Placements: placements}
		plan, err := placement.PlanPostEncoding(cfg, info, rng)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Violation {
			matchedViolations++
		}
		// Naive deletion: keep the first replica of every block.
		naive := topology.StripeLayout{Stripe: info.ID}
		for _, pl := range placements {
			naive.Data = append(naive.Data, pl.Nodes[0])
		}
		naive.Parity = plan.Parity
		if naive.Validate(top, cfg.C) != nil {
			naiveViolations++
		}
		stripes++
	}
	b.ReportMetric(matchedViolations/stripes*100, "matched-viol%")
	b.ReportMetric(naiveViolations/stripes*100, "naive-viol%")
}

// --- Per-figure experiment benchmarks ---------------------------------------

// fastTestbed matches the experiments package's quick scale.
func fastTestbed() experiments.TestbedOptions {
	return experiments.TestbedOptions{
		Stripes:              4,
		BlockSizeBytes:       64 << 10,
		BandwidthBytesPerSec: 16 << 20,
		Seed:                 1,
	}
}

// BenchmarkFig3ViolationProbability regenerates Figure 3's analytic grid.
func BenchmarkFig3ViolationProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(experiments.Fig3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1Iterations regenerates the Theorem 1 comparison.
func BenchmarkTheorem1Iterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		means, err := analysis.IterationStats(14, 10, 1, 20, 20, 100, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(means[len(means)-1], "iters@k")
	}
}

// BenchmarkExpA1EncodingThroughput regenerates Figure 8(a) on the scaled
// mini-HDFS testbed.
func BenchmarkExpA1EncodingThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1(fastTestbed()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpA1UDP regenerates Figure 8(b) (injected cross traffic).
func BenchmarkExpA1UDP(b *testing.B) {
	opts := fastTestbed()
	opts.Stripes = 3
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunA1UDP(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpA2WriteDuringEncode regenerates Figure 9.
func BenchmarkExpA2WriteDuringEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunA2(experiments.A2Options{
			TestbedOptions: fastTestbed(),
			WriteRate:      10,
			LeadTime:       300 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpA3MapReduce regenerates Figure 10 (SWIM replay).
func BenchmarkExpA3MapReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunA3(experiments.A3Options{
			TestbedOptions:   fastTestbed(),
			Jobs:             6,
			MeanInterarrival: 50 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpB1Validation regenerates Figure 12 and Table I.
func BenchmarkExpB1Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunB1(experiments.B1Options{Stripes: 24, LeadTime: 60, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// benchB2 runs one Figure 13 panel at reduced scale and reports the median
// encode gain of its first swept value.
func benchB2(b *testing.B, factor experiments.B2Factor, value float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunB2(experiments.B2Options{
			Factor: factor,
			Runs:   2,
			Values: []float64{value},
			Scale:  4,
			Seed:   int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkExpB2VaryK regenerates Figure 13(a).
func BenchmarkExpB2VaryK(b *testing.B) { benchB2(b, experiments.B2VaryK, 10) }

// BenchmarkExpB2VaryM regenerates Figure 13(b).
func BenchmarkExpB2VaryM(b *testing.B) { benchB2(b, experiments.B2VaryM, 4) }

// BenchmarkExpB2VaryBandwidth regenerates Figure 13(c).
func BenchmarkExpB2VaryBandwidth(b *testing.B) { benchB2(b, experiments.B2VaryBandwidth, 1) }

// BenchmarkExpB2VaryWriteRate regenerates Figure 13(d).
func BenchmarkExpB2VaryWriteRate(b *testing.B) { benchB2(b, experiments.B2VaryWriteRate, 2) }

// BenchmarkExpB2VaryRackFT regenerates Figure 13(e).
func BenchmarkExpB2VaryRackFT(b *testing.B) { benchB2(b, experiments.B2VaryRackFT, 2) }

// BenchmarkExpB2VaryReplicas regenerates Figure 13(f).
func BenchmarkExpB2VaryReplicas(b *testing.B) { benchB2(b, experiments.B2VaryReplicas, 3) }

// BenchmarkExpC1StorageBalance regenerates Figure 14.
func BenchmarkExpC1StorageBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunC1(experiments.LoadBalanceOptions{Blocks: 2000, Runs: 2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpC2ReadBalance regenerates Figure 15.
func BenchmarkExpC2ReadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunC2(experiments.LoadBalanceOptions{
			FileSizes: []int{100, 1000},
			Runs:      2,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndEncode measures the full mini-HDFS encode pipeline (the
// quickstart path) per stripe.
func BenchmarkEndToEndEncode(b *testing.B) {
	cluster, err := ear.NewCluster(ear.ClusterConfig{
		Racks:                8,
		NodesPerRack:         4,
		Policy:               "ear",
		K:                    4,
		N:                    6,
		C:                    1,
		BlockSizeBytes:       32 << 10,
		BandwidthBytesPerSec: 1 << 30,
		Seed:                 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	rng := rand.New(rand.NewSource(5))
	payload := make([]byte, 32<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cluster.NameNode().PendingStripeCount() < 1 {
			rng.Read(payload)
			if _, err := cluster.WriteBlock(0, payload); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := cluster.RaidNode().EncodeAll(); err != nil {
			b.Fatal(err)
		}
	}
}
