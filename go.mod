module ear

go 1.22
