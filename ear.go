// Package ear is a reproduction of "Enabling Efficient and Reliable
// Transition from Replication to Erasure Coding for Clustered File Systems"
// (Li, Hu, Lee — DSN 2015). It provides encoding-aware replication (EAR), a
// replica placement policy for clustered file systems that perform
// asynchronous encoding, together with everything needed to evaluate it:
// the random-replication baseline, systematic Reed-Solomon coding, a
// mini-HDFS testbed with a bandwidth-shaped network, a CSIM-style
// discrete-event simulator, and runners for every experiment in the paper.
//
// The quickest path through the API:
//
//	top, _ := ear.NewTopology(20, 20)                  // 20 racks x 20 nodes
//	cfg := ear.PlacementConfig{Topology: top, K: 10, N: 14}
//	policy, _ := ear.NewEARPolicy(cfg, rand.New(rand.NewSource(1)))
//	pl, _ := policy.Place(0)                           // replica locations
//	stripes := policy.TakeSealed()                     // stripes ready to encode
//	plan, _ := ear.PlanPostEncoding(cfg, stripes[0], rng)
//
// For a full system, hdfs.NewCluster (via ear.NewCluster) assembles a
// NameNode, DataNodes, a RaidNode, and a map-only MapReduce scheduler; see
// examples/ for runnable walkthroughs.
package ear

import (
	"math/rand"

	"ear/internal/erasure"
	"ear/internal/hdfs"
	"ear/internal/placement"
	"ear/internal/simcfs"
	"ear/internal/topology"
)

// Cluster-model types.
type (
	// Topology describes a homogeneous cluster of racks and nodes.
	Topology = topology.Topology
	// NodeID identifies a storage node.
	NodeID = topology.NodeID
	// RackID identifies a rack.
	RackID = topology.RackID
	// BlockID identifies a data block.
	BlockID = topology.BlockID
	// StripeID identifies an erasure-coded stripe.
	StripeID = topology.StripeID
	// Placement records the replica locations of one block.
	Placement = topology.Placement
	// StripeLayout is the post-encoding block layout of one stripe.
	StripeLayout = topology.StripeLayout
)

// Placement-policy types (the paper's contribution).
type (
	// PlacementConfig parameterizes the policies and the post-encoding
	// planner.
	PlacementConfig = placement.Config
	// Policy is a replica placement policy (RR or EAR).
	Policy = placement.Policy
	// StripeInfo describes a sealed stripe awaiting encoding.
	StripeInfo = placement.StripeInfo
	// PostEncodingPlan records which replicas survive encoding and where
	// parity lands.
	PostEncodingPlan = placement.PostEncodingPlan
)

// Erasure-coding types.
type (
	// Coder encodes and decodes (n, k) stripes.
	Coder = erasure.Coder
	// CodingScheme selects the generator construction.
	CodingScheme = erasure.Scheme
)

// Coding schemes.
const (
	// ReedSolomon is the HDFS-RAID construction.
	ReedSolomon = erasure.ReedSolomon
	// CauchyReedSolomon uses a Cauchy parity matrix.
	CauchyReedSolomon = erasure.CauchyReedSolomon
)

// Mini-HDFS testbed types.
type (
	// ClusterConfig configures a mini-HDFS cluster.
	ClusterConfig = hdfs.Config
	// Cluster is an in-process mini-HDFS with a shaped network.
	Cluster = hdfs.Cluster
	// EncodeStats summarizes an encoding job.
	EncodeStats = hdfs.EncodeStats
)

// Discrete-event simulator types.
type (
	// SimParams configures one simulation run.
	SimParams = simcfs.Params
	// SimResult carries a run's measurements.
	SimResult = simcfs.Result
	// SimPolicy selects the simulated placement policy.
	SimPolicy = simcfs.PolicyKind
)

// Simulator policies.
const (
	// SimRR simulates random replication.
	SimRR = simcfs.PolicyRR
	// SimEAR simulates encoding-aware replication.
	SimEAR = simcfs.PolicyEAR
)

// NewTopology returns a cluster of racks x nodesPerRack nodes.
func NewTopology(racks, nodesPerRack int) (*Topology, error) {
	return topology.New(racks, nodesPerRack)
}

// NewRRPolicy returns the random-replication baseline (the HDFS default
// placement).
func NewRRPolicy(cfg PlacementConfig, rng *rand.Rand) (Policy, error) {
	return placement.NewRandom(cfg, rng)
}

// NewEARPolicy returns the paper's encoding-aware replication policy.
func NewEARPolicy(cfg PlacementConfig, rng *rand.Rand) (*placement.EAR, error) {
	return placement.NewEAR(cfg, rng)
}

// PlanPostEncoding decides which replica of each stripe block survives
// encoding and where the parity blocks go (Section III-B's matching).
func PlanPostEncoding(cfg PlacementConfig, info *StripeInfo, rng *rand.Rand) (*PostEncodingPlan, error) {
	return placement.PlanPostEncoding(cfg, info, rng)
}

// NewCoder returns an (n, k) systematic erasure coder.
func NewCoder(n, k int, scheme CodingScheme) (*Coder, error) {
	return erasure.New(n, k, scheme)
}

// NewCluster assembles a mini-HDFS cluster (NameNode, DataNodes, RaidNode,
// JobTracker) over a bandwidth-shaped fabric.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return hdfs.NewCluster(cfg)
}

// Simulate executes one discrete-event simulation run (Section V-B).
func Simulate(params SimParams) (*SimResult, error) {
	return simcfs.Run(params)
}
