package ear_test

import (
	"bytes"
	"math/rand"
	"testing"

	"ear"
)

// TestFacadeEndToEnd exercises the whole public surface: topology, both
// policies, the coder, the post-encoding planner, the mini-HDFS cluster,
// and the simulator.
func TestFacadeEndToEnd(t *testing.T) {
	top, err := ear.NewTopology(8, 4)
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	cfg := ear.PlacementConfig{Topology: top, Replicas: 3, K: 4, N: 6, C: 1}
	rng := rand.New(rand.NewSource(1))

	rr, err := ear.NewRRPolicy(cfg, rng)
	if err != nil {
		t.Fatalf("NewRRPolicy: %v", err)
	}
	if rr.Name() != "rr" {
		t.Errorf("rr policy name = %q", rr.Name())
	}
	pl, err := rr.Place(0)
	if err != nil || len(pl.Nodes) != 3 {
		t.Fatalf("rr.Place = (%v, %v)", pl, err)
	}

	earPol, err := ear.NewEARPolicy(cfg, rng)
	if err != nil {
		t.Fatalf("NewEARPolicy: %v", err)
	}
	var sealed []*ear.StripeInfo
	for b := ear.BlockID(0); len(sealed) == 0; b++ {
		if _, err := earPol.Place(b); err != nil {
			t.Fatalf("ear.Place: %v", err)
		}
		sealed = earPol.TakeSealed()
	}
	plan, err := ear.PlanPostEncoding(cfg, sealed[0], rng)
	if err != nil {
		t.Fatalf("PlanPostEncoding: %v", err)
	}
	if plan.Violation {
		t.Error("EAR stripe violated")
	}
	layout := plan.Layout(sealed[0].ID)
	if err := layout.Validate(top, cfg.C); err != nil {
		t.Errorf("layout: %v", err)
	}

	coder, err := ear.NewCoder(6, 4, ear.CauchyReedSolomon)
	if err != nil {
		t.Fatalf("NewCoder: %v", err)
	}
	if coder.N() != 6 || coder.K() != 4 {
		t.Error("coder geometry wrong")
	}

	cluster, err := ear.NewCluster(ear.ClusterConfig{
		Racks: 8, NodesPerRack: 4, Policy: "ear", K: 4, N: 6, C: 1,
		BlockSizeBytes: 4 << 10, BandwidthBytesPerSec: 1 << 30, Seed: 2,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	payload := make([]byte, 4<<10)
	rng.Read(payload)
	id, err := cluster.WriteBlock(0, payload)
	if err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	got, err := cluster.ReadBlock(1, id)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadBlock: %v", err)
	}

	res, err := ear.Simulate(ear.SimParams{
		Policy: ear.SimEAR, Racks: 8, NodesPerRack: 4, K: 4, N: 6,
		EncodeProcesses: 2, StripesPerProcess: 2, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.EncodedStripes != 4 || res.CrossRackDownloads != 0 {
		t.Errorf("sim result: %d stripes, %d cross downloads",
			res.EncodedStripes, res.CrossRackDownloads)
	}
}
