package ear_test

import (
	"fmt"
	"math/rand"

	"ear"
)

// ExampleNewEARPolicy shows the write-time half of the system: blocks are
// placed one at a time and a stripe seals once its core rack holds k of
// them; the sealed stripe is guaranteed encodable without cross-rack
// downloads or relocation.
func ExampleNewEARPolicy() {
	top, err := ear.NewTopology(10, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := ear.PlacementConfig{Topology: top, Replicas: 3, K: 4, N: 6, C: 1}
	rng := rand.New(rand.NewSource(7))
	policy, err := ear.NewEARPolicy(cfg, rng)
	if err != nil {
		fmt.Println(err)
		return
	}
	var stripe *ear.StripeInfo
	for b := ear.BlockID(0); stripe == nil; b++ {
		if _, err := policy.Place(b); err != nil {
			fmt.Println(err)
			return
		}
		if sealed := policy.TakeSealed(); len(sealed) > 0 {
			stripe = sealed[0]
		}
	}
	plan, err := ear.PlanPostEncoding(cfg, stripe, rng)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("blocks in stripe: %d\n", len(stripe.Blocks))
	fmt.Printf("relocation needed: %v\n", plan.Violation)
	fmt.Printf("parity blocks placed: %d\n", len(plan.Parity))
	// Output:
	// blocks in stripe: 4
	// relocation needed: false
	// parity blocks placed: 2
}

// ExampleNewCoder demonstrates the erasure-coding substrate: encode a
// stripe, lose the maximum tolerable number of blocks, reconstruct.
func ExampleNewCoder() {
	coder, err := ear.NewCoder(6, 4, ear.ReedSolomon)
	if err != nil {
		fmt.Println(err)
		return
	}
	data := [][]byte{
		[]byte("ab"), []byte("cd"), []byte("ef"), []byte("gh"),
	}
	stripe, err := coder.EncodeStripe(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Lose blocks 0 and 3 (two erasures: the maximum for n-k = 2).
	present := map[int][]byte{1: stripe[1], 2: stripe[2], 4: stripe[4], 5: stripe[5]}
	recovered, err := coder.Reconstruct(present)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s%s%s%s\n", recovered[0], recovered[1], recovered[2], recovered[3])
	// Output:
	// abcdefgh
}

// ExampleSimulate runs a small discrete-event simulation comparing the two
// policies' cross-rack encoding downloads.
func ExampleSimulate() {
	for _, policy := range []ear.SimPolicy{ear.SimRR, ear.SimEAR} {
		res, err := ear.Simulate(ear.SimParams{
			Policy:            policy,
			Racks:             8,
			NodesPerRack:      4,
			K:                 4,
			N:                 6,
			EncodeProcesses:   2,
			StripesPerProcess: 2,
			Seed:              3,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: %d stripes encoded, EAR-forbidden downloads: %v\n",
			policy, res.EncodedStripes, res.CrossRackDownloads > 0)
	}
	// Output:
	// rr: 4 stripes encoded, EAR-forbidden downloads: true
	// ear: 4 stripes encoded, EAR-forbidden downloads: false
}
