// Placementstudy contrasts RR and EAR placements head to head, measuring
// the two quantities the paper's motivation section hinges on: how many
// blocks an encoder must download across racks (Section II-B's performance
// issue, expected ~k - 2k/R under RR, zero under EAR) and how often the
// post-encoding layout violates rack-level fault tolerance, forcing block
// relocation (the availability issue). It also confirms that EAR's extra
// constraints do not skew the per-rack storage distribution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ear"
	"ear/internal/analysis"
	"ear/internal/placement"
)

const (
	racks  = 20
	nodes  = 20
	k      = 10
	n      = 14
	trials = 300
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	top, err := ear.NewTopology(racks, nodes)
	if err != nil {
		return err
	}
	cfg := ear.PlacementConfig{Topology: top, Replicas: 3, K: k, N: n, C: 1}

	fmt.Printf("cluster: %d racks x %d nodes, (n,k)=(%d,%d), 3-way replication\n\n",
		racks, nodes, n, k)
	for _, name := range []string{"rr", "ear"} {
		downloads, violations, err := study(cfg, name)
		if err != nil {
			return err
		}
		fmt.Printf("%-4s mean cross-rack downloads per stripe: %5.2f (of %d blocks)\n",
			name, downloads, k)
		fmt.Printf("%-4s stripes needing relocation:           %5.1f%%\n\n",
			name, violations*100)
	}
	fmt.Printf("analysis predicts RR downloads ~ k - 2k/R = %.2f\n",
		float64(k)-2*float64(k)/float64(racks))
	f, err := analysis.ViolationProbability(k, racks)
	if err != nil {
		return err
	}
	fmt.Printf("Eq.(1) predicts the *preliminary* EAR would violate with p = %.3f;\n", f)
	fmt.Println("the complete EAR's max-flow check drives that to zero.")

	// Storage balance under both policies (Figure 14's claim).
	for _, name := range []string{"rr", "ear"} {
		pol, err := newPolicy(cfg, name, 99)
		if err != nil {
			return err
		}
		shares, err := analysis.StorageBalance(pol, top, 20000)
		if err != nil {
			return err
		}
		fmt.Printf("%-4s per-rack storage share: max %.3f%%, min %.3f%% (uniform = %.3f%%)\n",
			name, shares[0]*100, shares[len(shares)-1]*100, 100.0/racks)
	}
	return nil
}

func newPolicy(cfg ear.PlacementConfig, name string, seed int64) (ear.Policy, error) {
	rng := rand.New(rand.NewSource(seed))
	if name == "ear" {
		return ear.NewEARPolicy(cfg, rng)
	}
	return ear.NewRRPolicy(cfg, rng)
}

// study places `trials` stripes under a policy and measures encoding
// downloads (from a random encoder for RR, a core-rack encoder for EAR) and
// relocation violations.
func study(cfg ear.PlacementConfig, name string) (meanDownloads, violationRate float64, err error) {
	pol, err := newPolicy(cfg, name, 17)
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(18))
	var stripes []*ear.StripeInfo
	var next ear.BlockID
	pending := make([]ear.Placement, 0, k)
	pendingBlocks := make([]ear.BlockID, 0, k)
	for len(stripes) < trials {
		pl, err := pol.Place(next)
		if err != nil {
			return 0, 0, err
		}
		if name == "ear" {
			stripes = append(stripes, pol.TakeSealed()...)
		} else {
			pending = append(pending, pl)
			pendingBlocks = append(pendingBlocks, next)
			if len(pending) == k {
				stripes = append(stripes, &ear.StripeInfo{
					ID:         ear.StripeID(len(stripes)),
					CoreRack:   -1,
					Blocks:     append([]ear.BlockID(nil), pendingBlocks...),
					Placements: append([]ear.Placement(nil), pending...),
				})
				pending = pending[:0]
				pendingBlocks = pendingBlocks[:0]
			}
		}
		next++
	}
	stripes = stripes[:trials]

	var totalDownloads float64
	var violations float64
	top := cfg.Topology
	for _, s := range stripes {
		var encoder ear.NodeID
		if s.CoreRack >= 0 {
			coreNodes, err := top.NodesInRack(s.CoreRack)
			if err != nil {
				return 0, 0, err
			}
			encoder = coreNodes[rng.Intn(len(coreNodes))]
		} else {
			encoder = placement.RandomEncoderNode(top, rng)
		}
		dl, err := placement.CrossRackDownloads(top, s.Placements, encoder)
		if err != nil {
			return 0, 0, err
		}
		totalDownloads += float64(dl)
		plan, err := ear.PlanPostEncoding(cfg, s, rng)
		if err != nil {
			return 0, 0, err
		}
		if plan.Violation {
			violations++
		}
	}
	return totalDownloads / trials, violations / trials, nil
}
