// Asyncencoding walks the full mini-HDFS lifecycle the paper studies:
// blocks are written with 3-way EAR replication through the shaped network,
// the RaidNode encodes them in the background via a map-only MapReduce job
// pinned to core racks, redundant replicas are deleted, a node then fails,
// and a degraded read reconstructs the lost block from the stripe.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"ear"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := ear.NewCluster(ear.ClusterConfig{
		Racks:                8,
		NodesPerRack:         4,
		Policy:               "ear",
		Replicas:             3,
		K:                    6,
		N:                    8,
		C:                    1,
		BlockSizeBytes:       256 << 10,
		BandwidthBytesPerSec: 64 << 20,
		Seed:                 7,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// 1. Write replicated data.
	rng := rand.New(rand.NewSource(7))
	payloads := map[ear.BlockID][]byte{}
	var blocks []ear.BlockID
	for i := 0; i < 48; i++ {
		data := make([]byte, cluster.Config().BlockSizeBytes)
		rng.Read(data)
		writer := ear.NodeID(rng.Intn(cluster.Topology().Nodes()))
		id, err := cluster.WriteBlock(writer, data)
		if err != nil {
			return err
		}
		payloads[id] = data
		blocks = append(blocks, id)
	}
	fmt.Printf("wrote %d blocks with 3-way replication (%.1f MB cross-rack so far)\n",
		len(blocks), float64(cluster.Fabric().CrossRackBytes())/(1<<20))

	// 2. Background encoding: replicas -> (8,6) Reed-Solomon stripes.
	cluster.NameNode().FlushOpenStripes()
	stats, err := cluster.RaidNode().EncodeAll()
	if err != nil {
		return err
	}
	fmt.Printf("encoded %d stripes at %.1f MB/s; cross-rack downloads: %d; relocations needed: %d\n",
		stats.Stripes, stats.ThroughputMBps, stats.CrossRackDownloads, stats.Violations)

	// 3. Verify storage overhead dropped from 3x toward n/k = 1.33x.
	var stored int64
	for n := 0; n < cluster.Topology().Nodes(); n++ {
		dn, err := cluster.DataNodeOf(ear.NodeID(n))
		if err != nil {
			return err
		}
		stored += dn.Store.Bytes()
	}
	logical := int64(len(blocks) * cluster.Config().BlockSizeBytes)
	fmt.Printf("storage overhead after encoding: %.2fx (was 3.00x)\n",
		float64(stored)/float64(logical))

	// 4. Fail the node holding a block's only replica; read degraded.
	victim := blocks[0]
	meta, err := cluster.NameNode().Block(victim)
	if err != nil {
		return err
	}
	cluster.NameNode().MarkDead(meta.Nodes[0])
	fmt.Printf("failed node %d (sole replica of block %d)\n", meta.Nodes[0], victim)
	got, err := cluster.ReadBlock(0, victim)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payloads[victim]) {
		return fmt.Errorf("degraded read returned wrong data")
	}
	fmt.Println("degraded read reconstructed the block correctly")

	// 5. Repair it onto a fresh node.
	target, err := cluster.RepairBlock(victim)
	if err != nil {
		return err
	}
	fmt.Printf("block %d re-materialized on node %d\n", victim, target)
	return nil
}
