// Quickstart: place one stripe's worth of blocks under EAR, show that the
// core rack holds a replica of every block (no cross-rack downloads at
// encode time), run the post-encoding planner, and verify the resulting
// layout satisfies node- and rack-level fault tolerance without relocation
// — the paper's two headline properties, in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ear"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 20-rack cluster with 20 nodes per rack, (14, 10) coding as in
	// Facebook's deployment, 3-way replication, at most c = 1 block of a
	// stripe per rack after encoding.
	top, err := ear.NewTopology(20, 20)
	if err != nil {
		return err
	}
	cfg := ear.PlacementConfig{Topology: top, Replicas: 3, K: 10, N: 14, C: 1}
	rng := rand.New(rand.NewSource(42))
	policy, err := ear.NewEARPolicy(cfg, rng)
	if err != nil {
		return err
	}

	// Write blocks until a stripe seals (k blocks sharing one core rack).
	var sealed []*ear.StripeInfo
	for b := ear.BlockID(0); len(sealed) == 0; b++ {
		if _, err := policy.Place(b); err != nil {
			return err
		}
		sealed = policy.TakeSealed()
	}
	stripe := sealed[0]
	fmt.Printf("stripe %d sealed: %d blocks, core rack %d\n",
		stripe.ID, len(stripe.Blocks), stripe.CoreRack)

	// Property 1: an encoder in the core rack downloads nothing cross-rack.
	coreNodes, err := top.NodesInRack(stripe.CoreRack)
	if err != nil {
		return err
	}
	downloads, err := crossRackDownloads(top, stripe, coreNodes[0])
	if err != nil {
		return err
	}
	fmt.Printf("cross-rack downloads from core rack: %d\n", downloads)

	// Property 2: deletion + parity placement need no relocation.
	plan, err := ear.PlanPostEncoding(cfg, stripe, rng)
	if err != nil {
		return err
	}
	fmt.Printf("relocation needed: %v\n", plan.Violation)
	layout := plan.Layout(stripe.ID)
	if err := layout.Validate(top, cfg.C); err != nil {
		return fmt.Errorf("layout invalid: %w", err)
	}
	ft, err := layout.TolerableRackFailures(top, cfg.K)
	if err != nil {
		return err
	}
	fmt.Printf("post-encoding layout tolerates %d rack failures (paper requires %d)\n",
		ft, cfg.N-cfg.K)
	return nil
}

// crossRackDownloads counts stripe blocks with no replica in the encoder's
// rack.
func crossRackDownloads(top *ear.Topology, stripe *ear.StripeInfo, encoder ear.NodeID) (int, error) {
	encRack, err := top.RackOf(encoder)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, pl := range stripe.Placements {
		inRack := false
		for _, n := range pl.Nodes {
			r, err := top.RackOf(n)
			if err != nil {
				return 0, err
			}
			if r == encRack {
				inRack = true
				break
			}
		}
		if !inRack {
			count++
		}
	}
	return count, nil
}
