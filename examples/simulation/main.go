// Simulation drives the discrete-event CFS simulator directly with a
// custom topology and traffic mix — the programmatic path behind the
// paper's Experiment B.2 — and prints the encode/write throughput of RR vs
// EAR side by side.
package main

import (
	"fmt"
	"log"

	"ear"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := ear.SimParams{
		Racks:             12,
		NodesPerRack:      10,
		LinkBandwidthMBps: 125, // 1 Gb/s
		BlockSizeMB:       64,
		Replicas:          3,
		K:                 8,
		N:                 12,
		C:                 1,
		EncodeProcesses:   10,
		StripesPerProcess: 4,
		WriteRate:         1,
		BackgroundRate:    1,
		Seed:              11,
	}
	fmt.Printf("simulating %d racks x %d nodes, (%d,%d) coding, %d stripes, writes+background at 1 req/s\n\n",
		base.Racks, base.NodesPerRack, base.N, base.K,
		base.EncodeProcesses*base.StripesPerProcess)

	results := map[ear.SimPolicy]*ear.SimResult{}
	for _, policy := range []ear.SimPolicy{ear.SimRR, ear.SimEAR} {
		params := base
		params.Policy = policy
		res, err := ear.Simulate(params)
		if err != nil {
			return err
		}
		results[policy] = res
		fmt.Printf("%-4s encode throughput %7.1f MB/s | write resp %.2fs | cross-rack %.0f MB | relocations %d\n",
			policy, res.EncodeThroughputMBps, res.MeanWriteResponseDuringEncode,
			res.CrossRackMB, res.Relocations)
	}
	rr, earRes := results[ear.SimRR], results[ear.SimEAR]
	fmt.Printf("\nEAR encoding gain: %+.1f%%\n",
		(earRes.EncodeThroughputMBps/rr.EncodeThroughputMBps-1)*100)
	fmt.Printf("EAR write-response improvement: %+.1f%%\n",
		(rr.MeanWriteResponseDuringEncode/earRes.MeanWriteResponseDuringEncode-1)*100)
	fmt.Printf("cross-rack traffic saved: %.0f MB (%.0f%% less)\n",
		rr.CrossRackMB-earRes.CrossRackMB, (1-earRes.CrossRackMB/rr.CrossRackMB)*100)
	return nil
}
