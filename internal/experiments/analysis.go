package experiments

import (
	"fmt"
	"math/rand"

	"ear/internal/analysis"
	"ear/internal/placement"
	"ear/internal/topology"
)

// Fig3Options configures the Figure 3 reproduction.
type Fig3Options struct {
	Ks    []int
	Racks []int
	// MonteCarloStripes > 0 adds an empirical column per k using that many
	// simulated stripes.
	MonteCarloStripes int
	Seed              int64
}

func (o Fig3Options) withDefaults() Fig3Options {
	if len(o.Ks) == 0 {
		o.Ks = []int{6, 8, 10, 12}
	}
	if len(o.Racks) == 0 {
		o.Racks = []int{14, 16, 20, 24, 28, 32, 36, 40}
	}
	return o
}

// RunFig3 reproduces Figure 3: the probability that a stripe placed by the
// preliminary EAR violates rack-level fault tolerance, per Equation (1),
// optionally cross-checked by Monte-Carlo placement.
func RunFig3(opts Fig3Options) (*Table, error) {
	opts = opts.withDefaults()
	headers := []string{"racks"}
	for _, k := range opts.Ks {
		headers = append(headers, fmt.Sprintf("k=%d", k))
		if opts.MonteCarloStripes > 0 {
			headers = append(headers, fmt.Sprintf("k=%d (mc)", k))
		}
	}
	t := &Table{
		ID:      "fig3",
		Caption: "Figure 3: P(stripe violates rack fault tolerance) under preliminary EAR",
		Headers: headers,
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, racks := range opts.Racks {
		row := []string{fmt.Sprintf("%d", racks)}
		for _, k := range opts.Ks {
			f, err := analysis.ViolationProbability(k, racks)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(f))
			if opts.MonteCarloStripes > 0 {
				mc, err := analysis.MonteCarloViolation(k, racks, 20, opts.MonteCarloStripes, rng)
				if err != nil {
					return nil, err
				}
				row = append(row, f3(mc))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Theorem1Options configures the iteration-bound experiment.
type Theorem1Options struct {
	N, K, C, Racks, NodesPerRack int
	Stripes                      int
	Seed                         int64
}

func (o Theorem1Options) withDefaults() Theorem1Options {
	if o.K == 0 {
		o.K = 10
	}
	if o.N == 0 {
		o.N = o.K + 4
	}
	if o.C == 0 {
		o.C = 1
	}
	if o.Racks == 0 {
		o.Racks = 20
	}
	if o.NodesPerRack == 0 {
		o.NodesPerRack = 20
	}
	if o.Stripes == 0 {
		o.Stripes = 500
	}
	return o
}

// RunTheorem1 compares EAR's measured per-block layout iterations against
// the Theorem 1 bound.
func RunTheorem1(opts Theorem1Options) (*Table, error) {
	opts = opts.withDefaults()
	means, err := analysis.IterationStats(opts.N, opts.K, opts.C, opts.Racks,
		opts.NodesPerRack, opts.Stripes, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "theorem1",
		Caption: fmt.Sprintf("Theorem 1: expected layout iterations, (n,k)=(%d,%d), c=%d, R=%d",
			opts.N, opts.K, opts.C, opts.Racks),
		Headers: []string{"block index i", "measured E_i", "bound"},
	}
	for i, m := range means {
		bound, err := analysis.Theorem1Bound(i+1, opts.C, opts.Racks)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", i+1), f3(m), f3(bound))
	}
	return t, nil
}

// LoadBalanceOptions configures the Section V-C Monte-Carlo studies.
type LoadBalanceOptions struct {
	Racks, NodesPerRack int
	N, K                int
	// Blocks placed in the storage-balance study (paper: 10,000).
	Blocks int
	// FileSizes swept in the read-balance study (paper: 100..10,000).
	FileSizes []int
	// Runs averaged per configuration (paper: 10,000; default smaller).
	Runs int
	Seed int64
}

func (o LoadBalanceOptions) withDefaults() LoadBalanceOptions {
	if o.Racks == 0 {
		o.Racks = 20
	}
	if o.NodesPerRack == 0 {
		o.NodesPerRack = 20
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.N == 0 {
		o.N = 14
	}
	if o.Blocks == 0 {
		o.Blocks = 10000
	}
	if len(o.FileSizes) == 0 {
		o.FileSizes = []int{100, 500, 1000, 5000, 10000}
	}
	if o.Runs == 0 {
		o.Runs = 20
	}
	return o
}

// newPolicies builds fresh RR and EAR policies over the same topology.
func (o LoadBalanceOptions) newPolicies(seed int64) (*topology.Topology, placement.Policy, placement.Policy, error) {
	top, err := topology.New(o.Racks, o.NodesPerRack)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := placement.Config{Topology: top, K: o.K, N: o.N}
	rr, err := placement.NewRandom(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, nil, err
	}
	earPol, err := placement.NewEAR(cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, nil, nil, err
	}
	return top, rr, earPol, nil
}

// RunC1 reproduces Experiment C.1 / Figure 14: the per-rack share of
// replicas under both policies, ranked in descending order.
func RunC1(opts LoadBalanceOptions) (*Table, error) {
	opts = opts.withDefaults()
	sums := map[string][]float64{
		"rr":  make([]float64, opts.Racks),
		"ear": make([]float64, opts.Racks),
	}
	for run := 0; run < opts.Runs; run++ {
		top, rr, earPol, err := opts.newPolicies(opts.Seed + int64(run)*313)
		if err != nil {
			return nil, err
		}
		for name, pol := range map[string]placement.Policy{"rr": rr, "ear": earPol} {
			shares, err := analysis.StorageBalance(pol, top, opts.Blocks)
			if err != nil {
				return nil, err
			}
			for i, s := range shares {
				sums[name][i] += s
			}
		}
	}
	t := &Table{
		ID:      "fig14",
		Caption: fmt.Sprintf("Experiment C.1: %% of replicas per rack rank (%d blocks, %d runs)", opts.Blocks, opts.Runs),
		Headers: []string{"rack rank", "RR %", "EAR %"},
	}
	for i := 0; i < opts.Racks; i++ {
		t.AddRow(fmt.Sprintf("%d", i+1),
			f3(sums["rr"][i]/float64(opts.Runs)*100),
			f3(sums["ear"][i]/float64(opts.Runs)*100))
	}
	return t, nil
}

// RunC2 reproduces Experiment C.2 / Figure 15: the read hotness index H vs
// file size under both policies.
func RunC2(opts LoadBalanceOptions) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig15",
		Caption: fmt.Sprintf("Experiment C.2: read hotness index H vs file size (%d runs)", opts.Runs),
		Headers: []string{"file size (blocks)", "RR H%", "EAR H%"},
	}
	for _, size := range opts.FileSizes {
		var rrSum, earSum float64
		for run := 0; run < opts.Runs; run++ {
			top, rr, earPol, err := opts.newPolicies(opts.Seed + int64(run)*521)
			if err != nil {
				return nil, err
			}
			h, err := analysis.HotnessIndex(rr, top, size)
			if err != nil {
				return nil, err
			}
			rrSum += h
			h, err = analysis.HotnessIndex(earPol, top, size)
			if err != nil {
				return nil, err
			}
			earSum += h
		}
		t.AddRow(fmt.Sprintf("%d", size),
			f3(rrSum/float64(opts.Runs)*100),
			f3(earSum/float64(opts.Runs)*100))
	}
	return t, nil
}
