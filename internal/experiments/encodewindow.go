package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// EncodeWindowRow is one cell of the encode-window experiment: the wall-clock
// duration of the whole encoding job (the window during which the cluster
// runs below its replication-or-parity redundancy target) for the gather and
// pipelined encode paths at one background-traffic level.
type EncodeWindowRow struct {
	// InjectedFrac is the injected cross-traffic rate as a fraction of link
	// bandwidth (the paper's Iperf UDP sweep).
	InjectedFrac float64 `json:"injected_frac"`
	// GatherSeconds / PipelinedSeconds are the measured encode windows.
	GatherSeconds    float64 `json:"gather_seconds"`
	PipelinedSeconds float64 `json:"pipelined_seconds"`
	// Shrinkage is 1 - pipelined/gather: the fraction of the encode window
	// the pipeline removes.
	Shrinkage float64 `json:"shrinkage"`
	// GatherCrossDownloads / PipelinedCrossDownloads compare cross-rack
	// traffic in block-equivalents per run (pipelined hops count m blocks
	// per rack boundary).
	GatherCrossDownloads    int `json:"gather_cross_downloads"`
	PipelinedCrossDownloads int `json:"pipelined_cross_downloads"`
}

// EncodeWindowResult is RunEncodeWindow's output.
type EncodeWindowResult struct {
	Rows    []EncodeWindowRow `json:"rows"`
	Summary *Table            `json:"-"`
}

// encodeWindowDefaults picks a geometry where the pipeline has room to help:
// few racks with several nodes each, so a chain hop aggregates multiple
// stripe members before crossing the core, and a wide code (k much larger
// than m) so the gather path's k-block fan-in dwarfs the pipeline's m-block
// partial sums. Fields the caller set explicitly are kept.
func encodeWindowDefaults(o TestbedOptions) TestbedOptions {
	if o.Racks == 0 {
		o.Racks = 4
	}
	if o.NodesPerRack == 0 {
		o.NodesPerRack = 4
	}
	if o.C == 0 {
		o.C = 4
	}
	if o.Stripes == 0 {
		o.Stripes = 6
	}
	return o.withDefaults()
}

// RunEncodeWindow measures how much the RapidRAID-style pipelined encode
// shrinks the encode window — the wall-clock span of the encoding job, during
// which stripes sit between replication and full parity protection — under
// increasing background cross-traffic, with the pipeline knob off and on.
// Every other knob (geometry, code, shaping, seed) is held identical between
// the two runs of each cell, so the delta is the pipeline's alone.
func RunEncodeWindow(opts TestbedOptions) (*EncodeWindowResult, error) {
	opts = encodeWindowDefaults(opts)
	const n, k = 14, 12
	res := &EncodeWindowResult{}
	for _, frac := range []float64{0, 0.4, 0.8} {
		row := EncodeWindowRow{InjectedFrac: frac}
		for _, pipelined := range []bool{false, true} {
			o := opts
			o.PipelinedEncode = pipelined
			cfg := o.clusterConfig("rr", n, k)
			c, err := hdfs.NewCluster(cfg)
			if err != nil {
				return nil, err
			}
			o.apply(c)
			rng := rand.New(rand.NewSource(o.Seed + 77))
			if _, err := populate(c, o.Stripes, rng); err != nil {
				c.Close()
				return nil, err
			}
			var injectors []interface{ Close() }
			if frac > 0 {
				nodes := c.Topology().Nodes()
				for a := 0; a+1 < nodes; a += 2 {
					inj, err := c.Fabric().InjectTraffic(topology.NodeID(a), topology.NodeID(a+1),
						frac*o.BandwidthBytesPerSec)
					if err != nil {
						c.Close()
						return nil, err
					}
					injectors = append(injectors, inj)
				}
			}
			t0 := time.Now()
			st, err := c.RaidNode().EncodeAll()
			window := time.Since(t0).Seconds()
			for _, inj := range injectors {
				inj.Close()
			}
			if err == nil {
				err = settlePlacement(c)
			}
			c.Close()
			if err != nil {
				return nil, err
			}
			if pipelined {
				if st.PipelinedStripes != st.Stripes {
					return nil, fmt.Errorf("encodewindow: %d of %d stripes took the pipeline",
						st.PipelinedStripes, st.Stripes)
				}
				row.PipelinedSeconds = window
				row.PipelinedCrossDownloads = st.CrossRackDownloads
			} else {
				row.GatherSeconds = window
				row.GatherCrossDownloads = st.CrossRackDownloads
			}
		}
		if row.GatherSeconds > 0 {
			row.Shrinkage = 1 - row.PipelinedSeconds/row.GatherSeconds
		}
		res.Rows = append(res.Rows, row)
	}

	t := &Table{
		ID:      "encodewindow",
		Caption: fmt.Sprintf("Encode-window shrinkage: gather vs pipelined encode, rr (%d,%d) under injected cross traffic", n, k),
		Headers: []string{"injected (frac of link)", "gather window s", "pipelined window s", "shrinkage", "gather cross-dl", "pipelined cross-dl"},
		Notes: []string{
			fmt.Sprintf("%d racks x %d nodes, %d-way replication, c=%d, %d stripes, %d B blocks, %.1f MB/s links",
				opts.Racks, opts.NodesPerRack, opts.Replicas, opts.C, opts.Stripes,
				opts.BlockSizeBytes, opts.BandwidthBytesPerSec/(1<<20)),
			"window = wall-clock of the encoding job; cross-dl in block-equivalents (pipelined: m per rack boundary)",
		},
	}
	for _, r := range res.Rows {
		t.AddRow(f2(r.InjectedFrac), f2(r.GatherSeconds), f2(r.PipelinedSeconds),
			fmt.Sprintf("%.1f%%", r.Shrinkage*100),
			fmt.Sprintf("%d", r.GatherCrossDownloads), fmt.Sprintf("%d", r.PipelinedCrossDownloads))
	}
	res.Summary = t
	return res, nil
}
