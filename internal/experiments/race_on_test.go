//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; wall-clock
// performance assertions are advisory under its slowdown.
const raceEnabled = true
