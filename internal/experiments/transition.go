package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/hdfs"
	"ear/internal/progress"
	"ear/internal/tenant"
	"ear/internal/topology"
)

// TransitionOptions configures the transition-observability experiment.
type TransitionOptions struct {
	TestbedOptions
	// Tenants is how many distinct tenants the write workload is spread
	// across, round-robin (default 3).
	Tenants int
}

func (o TransitionOptions) withDefaults() TransitionOptions {
	o.TestbedOptions = o.TestbedOptions.withDefaults()
	if o.Tenants == 0 {
		o.Tenants = 3
	}
	return o
}

// PolicyTransition is one policy's view of the transition: the progress
// tracker's final report, the auditor's verdict, and the per-tenant
// accounting cross-checked against the fabric's own byte counters.
type PolicyTransition struct {
	Policy   string               `json:"policy"`
	Progress progress.Report      `json:"progress"`
	Audit    audit.Report         `json:"audit"`
	Tenants  []tenant.TenantStats `json:"tenants"`

	// FabricCrossBytes/FabricIntraBytes are the fabric's own payload
	// counters for the run; TenantByteDiscrepancy is the relative error of
	// the per-tenant fabric attribution against them (0 = exact).
	FabricCrossBytes      int64   `json:"fabric_cross_bytes"`
	FabricIntraBytes      int64   `json:"fabric_intra_bytes"`
	TenantByteDiscrepancy float64 `json:"tenant_byte_discrepancy"`
}

// TransitionResult carries both policies' transition reports plus the
// summary table.
type TransitionResult struct {
	Summary *Table
	Runs    []PolicyTransition
}

// runTransitionPolicy drives one policy through a full
// replication-to-erasure-coding transition with the progress tracker,
// auditor and tenant accounting attached, and returns the combined report.
func runTransitionPolicy(opts TransitionOptions, policy string) (PolicyTransition, error) {
	res := PolicyTransition{Policy: policy}
	cfg := opts.clusterConfig(policy, 10, 8)
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return res, err
	}
	defer c.Close()
	opts.apply(c)

	// Reuse a journal installed by TestbedOptions.ClusterHook (eartestbed
	// -audit and friends attach their own observers to it); otherwise
	// create one.
	jrn := c.Journal()
	if jrn == nil {
		jrn = events.NewJournal(0)
		c.SetJournal(jrn)
	}
	aud := audit.New(c.Topology(), audit.Config{
		Replicas:      cfg.Replicas,
		C:             cfg.C,
		CheckCoreRack: policy == "ear",
	})
	aud.Attach(jrn)
	prog := progress.New(progress.Config{Replicas: cfg.Replicas, Policy: policy})
	prog.Attach(jrn)

	// Populate with tenant-tagged writes, round-robin across the tenant
	// set, until the requested stripes seal. Unthrottled like populate();
	// the tenant table charges bytes, not time.
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		return res, err
	}
	if err := c.Fabric().SetDiskRates(64 << 30); err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 88))
	payload := make([]byte, cfg.BlockSizeBytes)
	maxBlocks := opts.Stripes * cfg.K * 10
	written := 0
	for c.NameNode().PendingStripeCount() < opts.Stripes {
		if written >= maxBlocks {
			return res, fmt.Errorf("%w: %d blocks written without sealing %d stripes",
				ErrBadOptions, written, opts.Stripes)
		}
		rng.Read(payload)
		ctx := tenant.NewContext(context.Background(), fmt.Sprintf("tenant-%d", written%opts.Tenants))
		client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
		if _, err := c.WriteBlockCtx(ctx, client, payload); err != nil {
			return res, err
		}
		written++
	}
	if err := c.Fabric().SetAllRates(cfg.BandwidthBytesPerSec); err != nil {
		return res, err
	}
	if d := cfg.DiskBandwidthBytesPerSec; d > 0 {
		if err := c.Fabric().SetDiskRates(d); err != nil {
			return res, err
		}
	}

	mid := prog.Report()
	if mid.FractionEncoded != 0 {
		return res, fmt.Errorf("progress tracker reports %.2f encoded before the transition started",
			mid.FractionEncoded)
	}
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		return res, err
	}
	if err := settlePlacement(c); err != nil {
		return res, err
	}

	res.Progress = prog.Report()
	res.Audit = aud.Report()
	res.Tenants = c.Tenants().Snapshot()
	snap := c.Fabric().Snapshot()
	res.FabricCrossBytes = snap.CrossRackBytes
	res.FabricIntraBytes = snap.IntraRackBytes
	var attributed int64
	for _, ts := range res.Tenants {
		attributed += ts.CrossRackBytes + ts.IntraRackBytes
	}
	if total := res.FabricCrossBytes + res.FabricIntraBytes; total > 0 {
		res.TenantByteDiscrepancy = float64(attributed-total) / float64(total)
		if res.TenantByteDiscrepancy < 0 {
			res.TenantByteDiscrepancy = -res.TenantByteDiscrepancy
		}
	}
	return res, nil
}

// RunTransition drives a full replication-to-erasure-coding transition
// under both policies with the whole observability plane attached: the
// progress tracker must reach 100% encoded with no residual at-risk
// blocks, its exposure windows must agree with the invariant auditor, and
// the per-tenant byte attribution must account for the fabric's totals.
func RunTransition(opts TransitionOptions) (*TransitionResult, error) {
	opts = opts.withDefaults()
	res := &TransitionResult{}
	t := &Table{
		ID:      "transition",
		Caption: "Transition progress, durability exposure and per-tenant accounting",
		Headers: []string{"policy", "stripes", "encoded", "exposure windows", "exposure (s)", "at risk now", "tenants", "byte discrepancy"},
		Notes: []string{
			fmt.Sprintf("%d tenants round-robin over the write workload; discrepancy is per-tenant fabric attribution vs fabric totals",
				opts.Tenants),
		},
	}
	for _, policy := range []string{"rr", "ear"} {
		run, err := runTransitionPolicy(opts, policy)
		if err != nil {
			return nil, fmt.Errorf("transition %s: %w", policy, err)
		}
		p := run.Progress
		if p.FractionEncoded != 1 {
			return nil, fmt.Errorf("transition %s: finished at %.3f encoded, want 1.0", policy, p.FractionEncoded)
		}
		if p.BlocksAtRisk != 0 {
			return nil, fmt.Errorf("transition %s: %d blocks still at risk after transition", policy, p.BlocksAtRisk)
		}
		if run.TenantByteDiscrepancy > 0.01 {
			return nil, fmt.Errorf("transition %s: tenant byte attribution off by %.2f%%",
				policy, 100*run.TenantByteDiscrepancy)
		}
		t.AddRow(policy,
			fmt.Sprintf("%d", p.TotalStripes),
			fmt.Sprintf("%d", p.EncodedStripes),
			fmt.Sprintf("%d", len(p.ExposureWindows)),
			f3(p.TotalExposureSeconds),
			fmt.Sprintf("%d", p.BlocksAtRisk),
			fmt.Sprintf("%d", len(run.Tenants)),
			fmt.Sprintf("%.4f%%", 100*run.TenantByteDiscrepancy))
		res.Runs = append(res.Runs, run)
	}
	res.Summary = t
	return res, nil
}
