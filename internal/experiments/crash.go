package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/hdfs"
	"ear/internal/topology"
)

// CrashOptions configures the kill-mid-encode crash-recovery scenario: a
// cluster whose metadata plane is durable (MetaDir) is killed without
// warning in the middle of an EAR encoding run, then a new process recovers
// from the write-ahead log and proves the recovered metadata is complete
// and invariant-clean.
type CrashOptions struct {
	TestbedOptions
	// MetaDir is the metadata log directory shared by the run and recover
	// phases (required).
	MetaDir string
	// KillTimeout bounds how long the run phase waits for the first encoded
	// stripe before giving up (default 60s).
	KillTimeout time.Duration
}

func (o CrashOptions) withDefaults() CrashOptions {
	o.TestbedOptions = o.TestbedOptions.withDefaults()
	if o.KillTimeout == 0 {
		o.KillTimeout = 60 * time.Second
	}
	return o
}

// crashClusterConfig is the scenario's cluster: EAR with the testbed (6,4)
// code and a durable metadata plane. MetaSync "always" makes every
// journal-visible mutation durable, so everything the run phase observed
// before the kill is provably recovered afterwards.
func (o CrashOptions) crashClusterConfig() hdfs.Config {
	cfg := o.clusterConfig("ear", 6, 4)
	cfg.MetaDir = o.MetaDir
	cfg.MetaSync = "always"
	return cfg
}

// RunCrashRun is the scenario's first phase: populate, start an encoding
// run, and — as soon as the journal shows the first stripe encoded, with the
// rest still in flight — invoke kill. The caller decides what "kill" means:
// the eartestbed command SIGKILLs its own process (so kill never returns),
// while tests snapshot the log directory mid-flight. The encoding keeps
// running while kill executes; nothing is flushed or closed.
func RunCrashRun(opts CrashOptions, kill func() error) error {
	opts = opts.withDefaults()
	if opts.MetaDir == "" {
		return fmt.Errorf("%w: crash scenario needs -meta-dir", ErrBadOptions)
	}
	c, err := hdfs.NewCluster(opts.crashClusterConfig())
	if err != nil {
		return err
	}
	opts.apply(c)
	j := events.NewJournal(1 << 15)
	c.SetJournal(j)

	encoded := make(chan struct{}, 1)
	cancel := j.Subscribe(func(e events.Event) {
		if e.Type == events.StripeEncoded {
			select {
			case encoded <- struct{}{}:
			default:
			}
		}
	})
	defer cancel()

	rng := rand.New(rand.NewSource(opts.Seed + 901))
	if _, err := populate(c, opts.Stripes, rng); err != nil {
		return err
	}
	go func() {
		// The kill preempts this; errors after the kill point are the
		// scenario working as intended.
		_, _ = c.RaidNode().EncodeAll()
	}()

	select {
	case <-encoded:
	case <-time.After(opts.KillTimeout):
		return fmt.Errorf("no stripe encoded within %v; nothing to crash into", opts.KillTimeout)
	}
	return kill()
}

// CrashReport summarizes the recover phase.
type CrashReport struct {
	ReplayedOps   int64 `json:"replayed_ops"`
	Blocks        int   `json:"blocks"`
	Stripes       int   `json:"stripes"`
	Encoded       int   `json:"encoded_stripes"`
	Requeued      int   `json:"requeued_stripes"`
	FreshBlocks   int   `json:"fresh_blocks"`
	Violations    int   `json:"violations"`
	RecoverMillis int64 `json:"recover_millis"`
}

// String renders the one-line marker CI greps for.
func (r CrashReport) String() string {
	return fmt.Sprintf("CRASH_RECOVERY_OK replayed=%d blocks=%d stripes=%d encoded=%d requeued=%d fresh=%d violations=%d recover_ms=%d",
		r.ReplayedOps, r.Blocks, r.Stripes, r.Encoded, r.Requeued, r.FreshBlocks, r.Violations, r.RecoverMillis)
}

// RunCrashRecover is the second phase: a fresh cluster over the same MetaDir
// recovers the metadata plane (snapshot plus log tail, torn tail truncated),
// backfills the canonical event stream for the placement auditor, requeues
// the encodings the crash interrupted, and proves the plane is live by
// serving new writes. It fails if the auditor finds any invariant violation
// or the recovered state is implausibly empty.
func RunCrashRecover(opts CrashOptions) (*CrashReport, error) {
	opts = opts.withDefaults()
	if opts.MetaDir == "" {
		return nil, fmt.Errorf("%w: crash scenario needs -meta-dir", ErrBadOptions)
	}
	start := time.Now()
	c, err := hdfs.NewCluster(opts.crashClusterConfig())
	if err != nil {
		return nil, fmt.Errorf("recovering cluster: %w", err)
	}
	defer c.Close()
	opts.apply(c)
	recoverDur := time.Since(start)

	j := events.NewJournal(1 << 15)
	a := audit.New(c.Topology(), audit.Config{
		Replicas:      c.Config().Replicas,
		C:             c.Config().C,
		CheckCoreRack: true,
	})
	defer a.Attach(j)()
	c.SetJournal(j)
	nn := c.NameNode()
	nn.PublishRecoveredState(j)

	rep := &CrashReport{
		ReplayedOps:   nn.RecoveredOps(),
		Blocks:        nn.BlockCount(),
		Encoded:       len(nn.EncodedStripes()),
		RecoverMillis: recoverDur.Milliseconds(),
	}
	if rep.Blocks == 0 {
		return nil, fmt.Errorf("recovered zero blocks; the run phase's mutations were lost")
	}
	if rep.Encoded == 0 {
		return nil, fmt.Errorf("recovered zero encoded stripes; the kill preceded the first durable encode-commit")
	}

	// The crash interrupted an encoding run after it drained the queue; put
	// the unencoded stripes back so a future run (with re-replicated data)
	// can finish the transition.
	requeued, err := nn.RequeueUnencodedStripes()
	if err != nil {
		return nil, err
	}
	rep.Requeued = requeued
	// Every registered stripe is either encoded or (after the requeue) back
	// in the pre-encoding queue.
	rep.Stripes = rep.Encoded + nn.PendingStripeCount()

	// The recovered plane serves traffic: fresh writes allocate, commit, and
	// group under the same invariants.
	rng := rand.New(rand.NewSource(opts.Seed + 902))
	payload := make([]byte, c.Config().BlockSizeBytes)
	fresh := 2 * c.Config().K
	for i := 0; i < fresh; i++ {
		rng.Read(payload)
		client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
		if _, err := c.WriteBlock(client, payload); err != nil {
			return nil, fmt.Errorf("fresh write after recovery: %w", err)
		}
	}
	rep.FreshBlocks = fresh

	arep := a.Report()
	rep.Violations = arep.Total()
	if !arep.Clean {
		return rep, fmt.Errorf("recovered state fails audit: %d ongoing, %d transient violations",
			len(arep.Ongoing), len(arep.Transient))
	}
	return rep, nil
}
