package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// fastTestbed returns a small configuration so testbed runs finish quickly.
func fastTestbed() TestbedOptions {
	return TestbedOptions{
		Stripes:              4,
		BlockSizeBytes:       64 << 10,
		BandwidthBytesPerSec: 16 << 20,
		Seed:                 1,
	}
}

func parseRow(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", cell, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Caption: "cap", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "scaled")
	out := tb.String()
	for _, want := range []string{"x", "cap", "a", "1", "note: scaled"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig3(t *testing.T) {
	tb, err := RunFig3(Fig3Options{MonteCarloStripes: 100, Seed: 3})
	if err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 rack counts", len(tb.Rows))
	}
	// Column 1 is k=6 analytic: decreasing in R.
	prev := 2.0
	for _, row := range tb.Rows {
		v := parseRow(t, row[1])
		if v > prev+1e-9 {
			t.Fatalf("k=6 violation probability not decreasing: %v", tb.Rows)
		}
		prev = v
	}
	// Monte-Carlo column near analytic for the densest case (R=14, k=6).
	an, mc := parseRow(t, tb.Rows[0][1]), parseRow(t, tb.Rows[0][2])
	if diff := an - mc; diff < -0.15 || diff > 0.15 {
		t.Errorf("analytic %.3f vs monte-carlo %.3f", an, mc)
	}
}

func TestRunTheorem1(t *testing.T) {
	tb, err := RunTheorem1(Theorem1Options{Stripes: 60, Seed: 4})
	if err != nil {
		t.Fatalf("RunTheorem1: %v", err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want k=10", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		measured, bound := parseRow(t, row[1]), parseRow(t, row[2])
		if measured > bound*1.6 {
			t.Errorf("block %s: measured %.3f above bound %.3f", row[0], measured, bound)
		}
	}
}

func TestRunC1(t *testing.T) {
	tb, err := RunC1(LoadBalanceOptions{Blocks: 2000, Runs: 3, Seed: 5})
	if err != nil {
		t.Fatalf("RunC1: %v", err)
	}
	if len(tb.Rows) != 20 {
		t.Fatalf("rows = %d, want 20 racks", len(tb.Rows))
	}
	var total float64
	for _, row := range tb.Rows {
		rr, ear := parseRow(t, row[1]), parseRow(t, row[2])
		total += rr
		if rr < 4 || rr > 6 || ear < 4 || ear > 6 {
			t.Errorf("rank %s shares (%.2f%%, %.2f%%) outside [4,6]", row[0], rr, ear)
		}
	}
	if total < 99 || total > 101 {
		t.Errorf("RR shares sum to %.2f%%, want ~100", total)
	}
}

func TestRunC2(t *testing.T) {
	tb, err := RunC2(LoadBalanceOptions{FileSizes: []int{100, 2000}, Runs: 3, Seed: 6})
	if err != nil {
		t.Fatalf("RunC2: %v", err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// H shrinks with file size; policies within 1.5 points of each other.
	small := parseRow(t, tb.Rows[0][1])
	large := parseRow(t, tb.Rows[1][1])
	if large >= small {
		t.Errorf("H should shrink with file size: %.2f -> %.2f", small, large)
	}
	for _, row := range tb.Rows {
		rr, ear := parseRow(t, row[1]), parseRow(t, row[2])
		if rr-ear > 1.5 || ear-rr > 1.5 {
			t.Errorf("file %s: RR H %.2f vs EAR H %.2f diverge", row[0], rr, ear)
		}
	}
}

func TestRunB1(t *testing.T) {
	res, err := RunB1(B1Options{Stripes: 24, WriteRate: 0.5, LeadTime: 60, Seed: 7})
	if err != nil {
		t.Fatalf("RunB1: %v", err)
	}
	if len(res.Progress.Rows) != 4 {
		t.Fatalf("progress rows = %d", len(res.Progress.Rows))
	}
	if len(res.TableI.Rows) != 3 {
		t.Fatalf("tableI rows = %d", len(res.TableI.Rows))
	}
	// EAR encodes the full batch faster than RR.
	rrDone := parseRow(t, res.Progress.Rows[3][1])
	earDone := parseRow(t, res.Progress.Rows[3][2])
	if earDone >= rrDone {
		t.Errorf("EAR total encode time %.1f >= RR %.1f", earDone, rrDone)
	}
	if res.Series["rr"].Len() != 24 || res.Series["ear"].Len() != 24 {
		t.Errorf("series lengths %d/%d, want 24", res.Series["rr"].Len(), res.Series["ear"].Len())
	}
}

func TestRunB2VaryK(t *testing.T) {
	res, err := RunB2(B2Options{Factor: B2VaryK, Runs: 2, Values: []float64{6, 10}, Scale: 4, Seed: 8})
	if err != nil {
		t.Fatalf("RunB2: %v", err)
	}
	if len(res.Encode.Rows) != 2 || len(res.Write.Rows) != 2 {
		t.Fatalf("rows: encode %d write %d", len(res.Encode.Rows), len(res.Write.Rows))
	}
	for _, row := range res.Encode.Rows {
		med := parseRow(t, row[3])
		if med <= 1.0 {
			t.Errorf("k=%s: median EAR/RR encode ratio %.3f, want > 1", row[0], med)
		}
	}
}

func TestRunB2AllFactorsValidate(t *testing.T) {
	// Each factor runs end to end at minimal scale with one value.
	for _, f := range []B2Factor{B2VaryM, B2VaryBandwidth, B2VaryWriteRate, B2VaryRackFT, B2VaryReplicas} {
		f := f
		t.Run(string(f), func(t *testing.T) {
			t.Parallel()
			var vals []float64
			switch f {
			case B2VaryM:
				vals = []float64{4}
			case B2VaryBandwidth:
				vals = []float64{1}
			case B2VaryWriteRate:
				vals = []float64{1}
			case B2VaryRackFT:
				vals = []float64{2}
			case B2VaryReplicas:
				vals = []float64{3}
			}
			res, err := RunB2(B2Options{Factor: f, Runs: 1, Values: vals, Scale: 4, Seed: 9})
			if err != nil {
				t.Fatalf("RunB2(%s): %v", f, err)
			}
			med := parseRow(t, res.Encode.Rows[0][3])
			if med <= 0.9 {
				t.Errorf("%s: encode ratio %.3f unexpectedly low", f, med)
			}
		})
	}
	if _, err := RunB2(B2Options{Factor: "bogus"}); err == nil {
		t.Error("bogus factor: expected error")
	}
}

func TestRunA1(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiment in -short mode")
	}
	tb, err := RunA1(fastTestbed())
	if err != nil {
		t.Fatalf("RunA1: %v", err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		rr, ear := parseRow(t, row[1]), parseRow(t, row[2])
		if ear <= rr {
			if raceEnabled {
				t.Logf("(n,k)=%s: EAR %.2f <= RR %.2f MB/s (ignored under -race)", row[0], ear, rr)
			} else {
				t.Errorf("(n,k)=%s: EAR %.2f <= RR %.2f MB/s", row[0], ear, rr)
			}
		}
		if earCross := parseRow(t, row[5]); earCross != 0 {
			t.Errorf("(n,k)=%s: EAR cross-rack downloads %v", row[0], earCross)
		}
	}
}

func TestRunA1UDP(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiment in -short mode")
	}
	opts := fastTestbed()
	opts.Stripes = 3
	tb, err := RunA1UDP(opts)
	if err != nil {
		t.Fatalf("RunA1UDP: %v", err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Gains should not collapse as traffic increases (paper: they grow).
	// Wall-clock throughput ratios are advisory under -race.
	first := parseRow(t, tb.Rows[0][3])
	last := parseRow(t, tb.Rows[len(tb.Rows)-1][3])
	if first <= 0 {
		if raceEnabled {
			t.Logf("unloaded gain %.1f%% (ignored under -race)", first)
		} else {
			t.Errorf("unloaded gain %.1f%%, want positive", first)
		}
	}
	if last <= 0 {
		if raceEnabled {
			t.Logf("loaded gain %.1f%% (ignored under -race)", last)
		} else {
			t.Errorf("loaded gain %.1f%%, want positive", last)
		}
	}
}

func TestRunA2(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiment in -short mode")
	}
	opts := A2Options{TestbedOptions: fastTestbed(), WriteRate: 10, LeadTime: 500 * time.Millisecond}
	res, err := RunA2(opts)
	if err != nil {
		t.Fatalf("RunA2: %v", err)
	}
	if len(res.Summary.Rows) != 3 {
		t.Fatalf("summary rows = %d", len(res.Summary.Rows))
	}
	if res.RRSeries.Len() == 0 || res.EARSeries.Len() == 0 {
		t.Fatal("empty write response series")
	}
	// Encoding time: EAR faster. The margin at this scale is tens of
	// milliseconds, within the race detector's distortion, so the
	// comparison is advisory under -race.
	rrEnc := parseRow(t, res.Summary.Rows[2][1])
	earEnc := parseRow(t, res.Summary.Rows[2][2])
	if earEnc >= rrEnc {
		if raceEnabled {
			t.Logf("EAR encode %.2fs >= RR %.2fs (ignored under -race)", earEnc, rrEnc)
		} else {
			t.Errorf("EAR encode %.2fs >= RR %.2fs", earEnc, rrEnc)
		}
	}
}

func TestRunA3(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiment in -short mode")
	}
	opts := A3Options{TestbedOptions: fastTestbed(), Jobs: 6, MeanInterarrival: 50 * time.Millisecond}
	res, err := RunA3(opts)
	if err != nil {
		t.Fatalf("RunA3: %v", err)
	}
	if len(res.Completions["rr"]) != 6 || len(res.Completions["ear"]) != 6 {
		t.Fatal("missing completions")
	}
	if len(res.Summary.Rows) != 4 {
		t.Fatalf("summary rows = %d", len(res.Summary.Rows))
	}
	// Similar performance expected: total runtimes within 3x of each other.
	rrLast := res.Completions["rr"][5].Seconds()
	earLast := res.Completions["ear"][5].Seconds()
	if rrLast > 3*earLast || earLast > 3*rrLast {
		t.Errorf("MapReduce runtimes diverge: rr %.2fs vs ear %.2fs", rrLast, earLast)
	}
}

func TestRunRecovery(t *testing.T) {
	tb, err := RunRecovery(RecoveryOptions{Stripes: 3, Seed: 10})
	if err != nil {
		t.Fatalf("RunRecovery: %v", err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 values of c", len(tb.Rows))
	}
	// Cross-rack recovery traffic must shrink as c grows, and rack fault
	// tolerance must fall with it (the Section III-D trade-off).
	prevCross := 1e18
	prevFT := 1 << 30
	for _, row := range tb.Rows {
		ft := int(parseRow(t, row[2]))
		cross := parseRow(t, row[3])
		if cross > prevCross {
			t.Errorf("cross-rack recovery traffic not decreasing: %v", tb.Rows)
		}
		if ft > prevFT {
			t.Errorf("fault tolerance not decreasing with c: %v", tb.Rows)
		}
		prevCross, prevFT = cross, ft
	}
	// With c=1, recovery fetches roughly k-1 blocks cross-rack.
	if blocks := parseRow(t, tb.Rows[0][4]); blocks < 7 {
		t.Errorf("c=1 cross-rack block fetches = %.2f, want ~k-1 = 9", blocks)
	}
}
