package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// RecoveryOptions configures the Section III-D recovery-traffic study: the
// trade-off between rack-level fault tolerance and cross-rack recovery
// traffic obtained by packing stripes into R' target racks with up to c
// blocks per rack.
type RecoveryOptions struct {
	Racks        int
	NodesPerRack int
	K, N         int
	// Stripes to encode; one block of each is failed and repaired.
	Stripes int
	// Cs are the swept values of the per-rack block bound.
	Cs   []int
	Seed int64
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if o.Racks == 0 {
		o.Racks = 14
	}
	if o.NodesPerRack == 0 {
		o.NodesPerRack = 4
	}
	if o.K == 0 {
		o.K = 10
	}
	if o.N == 0 {
		o.N = 14
	}
	if o.Stripes == 0 {
		o.Stripes = 8
	}
	if len(o.Cs) == 0 {
		o.Cs = []int{1, 2, 4}
	}
	return o
}

// RunRecovery reproduces the Section III-D analysis on the mini-HDFS: with
// c = 1 a repair downloads k-1 of its k blocks across racks; raising c (and
// shrinking the target-rack set R' = ceil(n/c)) keeps more of the stripe in
// the repair node's rack, cutting cross-rack recovery traffic at the price
// of tolerating only floor((n-k)/c) rack failures.
func RunRecovery(opts RecoveryOptions) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "sec3d-recovery",
		Caption: "Section III-D: cross-rack recovery traffic vs rack fault tolerance (EAR)",
		Headers: []string{"c", "target racks R'", "rack failures tolerated", "cross-rack MB per repair", "blocks fetched cross-rack"},
		Notes: []string{
			fmt.Sprintf("(n,k)=(%d,%d), %d racks x %d nodes, %d repairs averaged",
				opts.N, opts.K, opts.Racks, opts.NodesPerRack, opts.Stripes),
		},
	}
	for _, c := range opts.Cs {
		targets := int(math.Ceil(float64(opts.N) / float64(c)))
		if targets > opts.Racks {
			targets = opts.Racks
		}
		crossMB, blocks, err := measureRecovery(opts, c, targets)
		if err != nil {
			return nil, fmt.Errorf("recovery c=%d: %w", c, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%d", targets),
			fmt.Sprintf("%d", (opts.N-opts.K)/c),
			f2(crossMB),
			f2(blocks),
		)
	}
	return t, nil
}

// measureRecovery encodes stripes under EAR with the given c, then fails
// and repairs one block per stripe, returning mean cross-rack MB and mean
// cross-rack block fetches per repair.
func measureRecovery(opts RecoveryOptions, c, targets int) (float64, float64, error) {
	cfg := hdfs.Config{
		Racks:                opts.Racks,
		NodesPerRack:         opts.NodesPerRack,
		Policy:               "ear",
		Replicas:             3,
		K:                    opts.K,
		N:                    opts.N,
		C:                    c,
		TargetRacks:          targets,
		BlockSizeBytes:       64 << 10,
		BandwidthBytesPerSec: 1 << 30, // unshaped: we measure traffic, not time
		Seed:                 opts.Seed,
	}
	if targets == opts.Racks {
		cfg.TargetRacks = 0
	}
	cluster, err := hdfs.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	payload := make([]byte, cfg.BlockSizeBytes)

	// Write until the requested number of stripes seal, then encode.
	var written []topology.BlockID
	maxBlocks := opts.Stripes * opts.K * 20
	for cluster.NameNode().PendingStripeCount() < opts.Stripes {
		if len(written) > maxBlocks {
			return 0, 0, fmt.Errorf("%w: stripes did not seal", ErrBadOptions)
		}
		rng.Read(payload)
		id, err := cluster.WriteBlock(topology.NodeID(rng.Intn(cluster.Topology().Nodes())), payload)
		if err != nil {
			return 0, 0, err
		}
		written = append(written, id)
	}
	if _, err := cluster.RaidNode().EncodeAll(); err != nil {
		return 0, 0, err
	}

	var totalCrossMB, totalBlocks float64
	repairs := 0
	for _, sid := range cluster.NameNode().EncodedStripes() {
		if repairs == opts.Stripes {
			break
		}
		sm, err := cluster.NameNode().Stripe(sid)
		if err != nil {
			return 0, 0, err
		}
		victim := sm.Info.Blocks[rng.Intn(len(sm.Info.Blocks))]
		meta, err := cluster.NameNode().Block(victim)
		if err != nil {
			return 0, 0, err
		}
		failedNode := meta.Nodes[0]
		cluster.NameNode().MarkDead(failedNode)
		before := cluster.Fabric().Snapshot()
		if _, err := cluster.RepairBlock(victim); err != nil {
			return 0, 0, err
		}
		crossDelta := float64(cluster.Fabric().Snapshot().Sub(before).CrossRackBytes)
		totalCrossMB += crossDelta / (1 << 20)
		totalBlocks += crossDelta / float64(cfg.BlockSizeBytes)
		// The node "rejoins": its stale replica was invalidated by repair.
		if dn, err := cluster.DataNodeOf(failedNode); err == nil {
			_ = dn.Store.Delete(hdfs.DataKey(victim))
		}
		cluster.NameNode().MarkAlive(failedNode)
		repairs++
	}
	if repairs == 0 {
		return 0, 0, fmt.Errorf("%w: no stripes to repair", ErrBadOptions)
	}
	return totalCrossMB / float64(repairs), totalBlocks / float64(repairs), nil
}
