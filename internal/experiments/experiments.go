// Package experiments contains one runner per experiment in the paper's
// evaluation (Section V): the testbed experiments A.1-A.3 on the mini-HDFS
// cluster, the discrete-event simulations B.1-B.2, the load-balancing
// analyses C.1-C.2, and the analytical results (Figure 3, Theorem 1). Every
// runner produces a Table whose rows mirror the series the corresponding
// paper figure or table reports.
package experiments

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"
)

// ErrBadOptions indicates unusable experiment options.
var ErrBadOptions = errors.New("experiments: bad options")

// Table is a printable experiment result: a caption, column headers, and
// rows of cells.
type Table struct {
	ID      string // e.g. "fig8a"
	Caption string
	Headers []string
	Rows    [][]string
	// Notes carry methodology remarks (scaling, substitutions).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Caption)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a gain ratio (e.g. 1.57 -> "+57.0%").
func pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }
