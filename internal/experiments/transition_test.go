package experiments

import (
	"testing"

	"ear/internal/events/audit"
	"ear/internal/progress"
)

// TestRunTransition is the end-to-end check of the progress & accounting
// plane: a testbed run must drive the tracker from 0 to 100% encoded with
// no residual at-risk blocks, its durability-exposure windows must agree
// with the invariant auditor's transient-violation windows, and per-tenant
// byte attribution must reproduce the fabric's own totals within 1%.
func TestRunTransition(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiment in -short mode")
	}
	res, err := RunTransition(TransitionOptions{TestbedOptions: fastTestbed(), Tenants: 3})
	if err != nil {
		t.Fatalf("RunTransition: %v", err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want rr and ear", len(res.Runs))
	}
	for _, run := range res.Runs {
		p := run.Progress
		if p.FractionEncoded != 1 || p.EncodedStripes != p.TotalStripes || p.TotalStripes == 0 {
			t.Errorf("%s: progress %d/%d (%.3f), want complete", run.Policy,
				p.EncodedStripes, p.TotalStripes, p.FractionEncoded)
		}
		if p.BacklogStripes != 0 || p.BacklogBytes != 0 {
			t.Errorf("%s: residual backlog %d stripes / %d bytes", run.Policy,
				p.BacklogStripes, p.BacklogBytes)
		}
		if p.BlocksAtRisk != 0 {
			t.Errorf("%s: %d blocks still at risk", run.Policy, p.BlocksAtRisk)
		}
		if len(p.Curve) == 0 || p.Curve[len(p.Curve)-1].Fraction != 1 {
			t.Errorf("%s: progress curve missing or incomplete", run.Policy)
		}

		// Every exposure window resolved, and the set matches the auditor's
		// replica-count / partial-delete verdict window for window.
		type win struct {
			inv              string
			opened, resolved uint64
		}
		got := map[win]bool{}
		for _, w := range p.ExposureWindows {
			if !w.Resolved() {
				t.Errorf("%s: unresolved exposure window %+v", run.Policy, w)
			}
			got[win{w.Invariant, w.OpenedSeq, w.ResolvedSeq}] = true
		}
		want := map[win]bool{}
		for _, v := range append(run.Audit.Transient, run.Audit.Ongoing...) {
			if v.Invariant != audit.InvReplicaCount && v.Invariant != audit.InvPartialDelete {
				continue
			}
			want[win{string(v.Invariant), v.OpenedSeq, v.ResolvedSeq}] = true
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d exposure windows vs %d auditor windows", run.Policy, len(got), len(want))
		}
		for w := range want {
			if !got[w] {
				t.Errorf("%s: auditor window %+v missing from progress report", run.Policy, w)
			}
		}

		// The auditor must have no standing violations — transients during
		// the transition are expected (they are the exposure windows), but
		// every one of them must have resolved.
		if len(run.Audit.Ongoing) != 0 {
			t.Errorf("%s: %d ongoing violations after transition: %+v",
				run.Policy, len(run.Audit.Ongoing), run.Audit.Ongoing)
		}

		// Per-tenant accounting: all three tenants present, byte
		// attribution within 1% of fabric totals (exact by construction).
		if run.TenantByteDiscrepancy > 0.01 {
			t.Errorf("%s: tenant byte discrepancy %.4f > 1%%", run.Policy, run.TenantByteDiscrepancy)
		}
		named := map[string]bool{}
		var fabricAttr int64
		for _, ts := range run.Tenants {
			named[ts.Tenant] = true
			fabricAttr += ts.CrossRackBytes + ts.IntraRackBytes
		}
		for _, want := range []string{"tenant-0", "tenant-1", "tenant-2"} {
			if !named[want] {
				t.Errorf("%s: tenant %s missing from snapshot (have %v)", run.Policy, want, named)
			}
		}
		if total := run.FabricCrossBytes + run.FabricIntraBytes; fabricAttr != total {
			t.Logf("%s: attributed %d vs fabric %d (within tolerance %.4f)",
				run.Policy, fabricAttr, total, run.TenantByteDiscrepancy)
		}
	}
	if len(res.Summary.Rows) != 2 {
		t.Fatalf("summary rows = %d", len(res.Summary.Rows))
	}
}

// TestTransitionProgressReportShape spot-checks the mid-run invariant the
// experiment relies on: a fresh tracker reports zero progress.
func TestTransitionProgressReportShape(t *testing.T) {
	p := progress.New(progress.Config{Replicas: 2, Policy: "ear"})
	rep := p.Report()
	if rep.FractionEncoded != 0 || rep.TotalStripes != 0 || rep.ETASeconds != 0 {
		t.Fatalf("fresh tracker not empty: %+v", rep)
	}
}
