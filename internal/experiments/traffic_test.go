package experiments

import (
	"strings"
	"testing"
)

// TestRunTrafficConsistency runs the write/encode/delete/repair breakdown
// for both policies and pins the cross-checks: the journal-derived byte
// totals agree with the fabric counters within 1%, every phase appears, the
// encode and repair phases move bytes, and an EAR run's delete phase is the
// paper's headline — zero transfers, because no post-encoding relocation is
// ever needed.
func TestRunTrafficConsistency(t *testing.T) {
	opts := fastTestbed()
	for _, policy := range []string{"rr", "ear"} {
		res, err := RunTraffic(opts, policy, 6, 4)
		if err != nil {
			t.Fatalf("RunTraffic %s: %v", policy, err)
		}
		if res.MaxDiscrepancy > 0.01 {
			t.Errorf("%s: journal vs fabric discrepancy %.4f exceeds 1%%", policy, res.MaxDiscrepancy)
		}
		if len(res.Phases) != 4 {
			t.Fatalf("%s: phases = %d, want write/encode/delete/repair", policy, len(res.Phases))
		}
		byName := map[string]PhaseTraffic{}
		for _, p := range res.Phases {
			byName[p.Phase] = p
		}
		for _, name := range []string{"write", "encode", "delete", "repair"} {
			if _, ok := byName[name]; !ok {
				t.Fatalf("%s: missing %s phase: %+v", policy, name, res.Phases)
			}
		}
		if w := byName["write"]; w.Transfers == 0 || w.CrossRackBytes+w.IntraRackBytes == 0 {
			t.Errorf("%s: write phase moved nothing: %+v", policy, w)
		}
		if e := byName["encode"]; e.CrossRackBytes+e.IntraRackBytes == 0 {
			t.Errorf("%s: encode phase moved nothing: %+v", policy, e)
		}
		if d := byName["delete"]; policy == "ear" && (d.Transfers != 0 || d.CrossRackBytes != 0 || d.IntraRackBytes != 0) {
			t.Errorf("ear: delete phase relocated blocks, want none: %+v", d)
		}
		if r := byName["repair"]; r.Transfers == 0 || r.CrossRackBytes+r.IntraRackBytes == 0 {
			t.Errorf("%s: repair phase moved nothing: %+v", policy, r)
		}
		if res.Timeline.DurationSeconds <= 0 || len(res.Timeline.Links) == 0 {
			t.Errorf("%s: timeline empty: duration=%g links=%d",
				policy, res.Timeline.DurationSeconds, len(res.Timeline.Links))
		}
		if res.Summary == nil {
			t.Errorf("%s: no summary table", policy)
		}
	}
}

// TestRunTrafficPipelined pins the chained-transfer accounting of the
// pipelined encode path: every partial-sum hop runs over a real fabric
// stream that journals itself against the links it traverses, so the
// journal-derived byte totals still agree with the fabric counters within
// 1% when the encode phase is a chain of per-hop streams instead of a
// star of gather downloads.
func TestRunTrafficPipelined(t *testing.T) {
	opts := fastTestbed()
	opts.PipelinedEncode = true
	opts.RackAwareRepair = true
	for _, policy := range []string{"rr", "ear"} {
		res, err := RunTraffic(opts, policy, 6, 4)
		if err != nil {
			t.Fatalf("RunTraffic %s pipelined: %v", policy, err)
		}
		if res.MaxDiscrepancy > 0.01 {
			t.Errorf("%s pipelined: journal vs fabric discrepancy %.4f exceeds 1%%", policy, res.MaxDiscrepancy)
		}
		byName := map[string]PhaseTraffic{}
		for _, p := range res.Phases {
			byName[p.Phase] = p
		}
		if e := byName["encode"]; e.Transfers == 0 || e.CrossRackBytes+e.IntraRackBytes == 0 {
			t.Errorf("%s pipelined: encode phase moved nothing: %+v", policy, e)
		}
		if r := byName["repair"]; r.Transfers == 0 || r.CrossRackBytes+r.IntraRackBytes == 0 {
			t.Errorf("%s two-level: repair phase moved nothing: %+v", policy, r)
		}
		if res.Summary == nil || !strings.Contains(res.Summary.Caption, "pipelined") ||
			!strings.Contains(res.Summary.Caption, "two-level") {
			t.Errorf("%s: summary caption does not name the pipelined/two-level modes", policy)
		}
	}
}
