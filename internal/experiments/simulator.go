package experiments

import (
	"fmt"
	"math"

	"ear/internal/simcfs"
	"ear/internal/stats"
)

// B1Options configures the simulator-validation experiment.
type B1Options struct {
	// Stripes encoded (paper: 96, spread over 12 map processes).
	Stripes int
	// WriteRate in requests/s and the lead time before encoding starts
	// (paper: 0.5 req/s, 300 s).
	WriteRate float64
	LeadTime  float64
	Seed      int64
}

func (o B1Options) withDefaults() B1Options {
	if o.Stripes == 0 {
		o.Stripes = 96
	}
	if o.WriteRate == 0 {
		o.WriteRate = 0.5
	}
	if o.LeadTime == 0 {
		o.LeadTime = 300
	}
	return o
}

// b1Params mirrors the paper's testbed in the simulator: 12 single-node
// racks, 1 Gb/s links, 2-way replication, (10, 8) coding, 12 encoding
// processes.
func (o B1Options) params(policy simcfs.PolicyKind, encode bool) simcfs.Params {
	p := simcfs.Params{
		Policy:            policy,
		Racks:             12,
		NodesPerRack:      1,
		LinkBandwidthMBps: 125,
		DiskBandwidthMBps: 250, // local reads hit page cache/sequential disk, ~2x the 1 GbE rate
		BlockSizeMB:       64,
		Replicas:          2,
		K:                 8,
		N:                 10,
		C:                 1,
		EncodeProcesses:   12,
		StripesPerProcess: o.Stripes / 12,
		EncodeStartTime:   o.LeadTime,
		WriteRate:         o.WriteRate,
		Seed:              o.Seed,
	}
	if !encode {
		p.EncodeProcesses = -1
		p.WriteDuration = o.LeadTime
		p.EncodeStartTime = 0
	}
	return p
}

// B1Result carries the validation outputs: the Figure 12 cumulative
// encoded-stripes series and the Table I response-time matrix.
type B1Result struct {
	Progress *Table
	TableI   *Table
	// Series maps policy to the (time-since-encode-start, stripes) curve.
	Series map[string]*stats.Series
}

// RunB1 reproduces Experiment B.1: the simulator replays the testbed's A.2
// setting; the encoded-stripes-vs-time curves and write response times are
// the quantities the paper validates against the testbed.
func RunB1(opts B1Options) (*B1Result, error) {
	opts = opts.withDefaults()
	res := &B1Result{Series: make(map[string]*stats.Series, 2)}
	progress := &Table{
		ID:      "fig12",
		Caption: "Experiment B.1: cumulative encoded stripes vs time (simulation)",
		Headers: []string{"fraction encoded", "RR time (s)", "EAR time (s)"},
	}
	tableI := &Table{
		ID:      "tableI",
		Caption: "Table I: mean write response times (simulation, seconds)",
		Headers: []string{"condition", "RR", "EAR"},
	}
	type measured struct {
		with, without float64
		series        *stats.Series
		encodeTime    float64
	}
	byPolicy := make(map[simcfs.PolicyKind]measured, 2)
	for _, pk := range []simcfs.PolicyKind{simcfs.PolicyRR, simcfs.PolicyEAR} {
		withEnc, err := simcfs.Run(opts.params(pk, true))
		if err != nil {
			return nil, fmt.Errorf("b1 %v with encoding: %w", pk, err)
		}
		noEnc, err := simcfs.Run(opts.params(pk, false))
		if err != nil {
			return nil, fmt.Errorf("b1 %v without encoding: %w", pk, err)
		}
		s := withEnc.StripeCompletions
		res.Series[pk.String()] = &s
		byPolicy[pk] = measured{
			with:       withEnc.MeanWriteResponseDuringEncode,
			without:    noEnc.MeanWriteResponse,
			series:     &s,
			encodeTime: withEnc.EncodeEnd - withEnc.EncodeStart,
		}
	}
	rr, ear := byPolicy[simcfs.PolicyRR], byPolicy[simcfs.PolicyEAR]
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		idx := func(s *stats.Series) float64 {
			i := int(frac*float64(s.Len())) - 1
			if i < 0 {
				i = 0
			}
			return s.Points[i].T
		}
		progress.AddRow(f2(frac), f2(idx(rr.series)), f2(idx(ear.series)))
	}
	tableI.AddRow("without encoding", f3(rr.without), f3(ear.without))
	tableI.AddRow("with encoding", f3(rr.with), f3(ear.with))
	tableI.AddRow("encoding time (s)", f2(rr.encodeTime), f2(ear.encodeTime))
	res.Progress = progress
	res.TableI = tableI
	return res, nil
}

// B2Factor selects which parameter Experiment B.2 sweeps.
type B2Factor string

// The sweeps of Figure 13(a)-(f).
const (
	B2VaryK         B2Factor = "k"         // 13(a)
	B2VaryM         B2Factor = "m"         // 13(b): n-k
	B2VaryBandwidth B2Factor = "bw"        // 13(c)
	B2VaryWriteRate B2Factor = "writerate" // 13(d)
	B2VaryRackFT    B2Factor = "rackft"    // 13(e)
	B2VaryReplicas  B2Factor = "replicas"  // 13(f)
)

// B2Options configures a parameter sweep.
type B2Options struct {
	Factor B2Factor
	// Runs is the number of seeded runs per configuration (paper: 30).
	Runs int
	// Values overrides the swept values (defaults follow the paper).
	Values []float64
	// Scale shrinks the workload for quick runs: encode processes and
	// stripes per process are divided by it (1 = paper scale).
	Scale int
	Seed  int64
}

func (o B2Options) withDefaults() (B2Options, error) {
	if o.Factor == "" {
		o.Factor = B2VaryK
	}
	if o.Runs == 0 {
		o.Runs = 10
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Values) == 0 {
		switch o.Factor {
		case B2VaryK:
			o.Values = []float64{6, 8, 10, 12}
		case B2VaryM:
			o.Values = []float64{2, 3, 4, 5}
		case B2VaryBandwidth:
			o.Values = []float64{0.2, 0.5, 1, 2} // Gb/s
		case B2VaryWriteRate:
			o.Values = []float64{1, 2, 3, 4}
		case B2VaryRackFT:
			o.Values = []float64{4, 2, 1}
		case B2VaryReplicas:
			o.Values = []float64{2, 3, 4, 6, 8}
		default:
			return o, fmt.Errorf("%w: unknown B2 factor %q", ErrBadOptions, o.Factor)
		}
	}
	return o, nil
}

// b2Params builds the run parameters for one swept value.
func b2Params(factor B2Factor, value float64, policy simcfs.PolicyKind, scale int, seed int64) (simcfs.Params, error) {
	p := simcfs.Params{
		Policy:            policy,
		WriteRate:         1,
		BackgroundRate:    1,
		EncodeProcesses:   20 / scale,
		StripesPerProcess: 5,
		Seed:              seed,
	}
	if p.EncodeProcesses < 1 {
		p.EncodeProcesses = 1
	}
	switch factor {
	case B2VaryK:
		p.K = int(value)
		p.N = p.K + 4
	case B2VaryM:
		p.K = 10
		p.N = 10 + int(value)
	case B2VaryBandwidth:
		p.LinkBandwidthMBps = value * 125
	case B2VaryWriteRate:
		p.WriteRate = value
	case B2VaryRackFT:
		// RR keeps the default full spread; EAR trades rack failures for
		// fewer target racks: c = (n-k)/failures, R' = ceil(n/c).
		if policy == simcfs.PolicyEAR {
			failures := int(value)
			p.C = 4 / failures
			if p.C < 1 {
				p.C = 1
			}
			p.TargetRacks = int(math.Ceil(14.0 / float64(p.C)))
		}
	case B2VaryReplicas:
		p.Replicas = int(value)
		p.SpreadReplicas = true
	default:
		return p, fmt.Errorf("%w: unknown B2 factor %q", ErrBadOptions, factor)
	}
	return p, nil
}

// B2Result is a sweep result: per swept value, boxplot summaries of the
// EAR/RR throughput ratios over the seeded runs.
type B2Result struct {
	Encode *Table
	Write  *Table
}

// RunB2 reproduces one panel of Figure 13: normalized throughput of EAR
// over RR for encode and write operations across a parameter sweep.
func RunB2(opts B2Options) (*B2Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	encode := &Table{
		ID:      "fig13-" + string(opts.Factor) + "-encode",
		Caption: fmt.Sprintf("Experiment B.2 (%s): normalized EAR/RR encoding throughput", opts.Factor),
		Headers: []string{string(opts.Factor), "min", "q1", "median", "q3", "max", "gain(med)"},
	}
	write := &Table{
		ID:      "fig13-" + string(opts.Factor) + "-write",
		Caption: fmt.Sprintf("Experiment B.2 (%s): normalized EAR/RR write throughput", opts.Factor),
		Headers: encode.Headers,
	}
	for _, v := range opts.Values {
		encRatios := make([]float64, 0, opts.Runs)
		wrRatios := make([]float64, 0, opts.Runs)
		for run := 0; run < opts.Runs; run++ {
			seed := opts.Seed + int64(run)*1009
			rrP, err := b2Params(opts.Factor, v, simcfs.PolicyRR, opts.Scale, seed)
			if err != nil {
				return nil, err
			}
			earP, err := b2Params(opts.Factor, v, simcfs.PolicyEAR, opts.Scale, seed)
			if err != nil {
				return nil, err
			}
			rr, err := simcfs.Run(rrP)
			if err != nil {
				return nil, fmt.Errorf("b2 %s=%g rr: %w", opts.Factor, v, err)
			}
			ear, err := simcfs.Run(earP)
			if err != nil {
				return nil, fmt.Errorf("b2 %s=%g ear: %w", opts.Factor, v, err)
			}
			if rr.EncodeThroughputMBps > 0 {
				encRatios = append(encRatios, ear.EncodeThroughputMBps/rr.EncodeThroughputMBps)
			}
			if rr.WriteThroughputMBps > 0 && ear.WriteThroughputMBps > 0 {
				wrRatios = append(wrRatios, ear.WriteThroughputMBps/rr.WriteThroughputMBps)
			}
		}
		if err := addBoxRow(encode, v, encRatios); err != nil {
			return nil, err
		}
		if err := addBoxRow(write, v, wrRatios); err != nil {
			return nil, err
		}
	}
	return &B2Result{Encode: encode, Write: write}, nil
}

// addBoxRow appends a five-number summary row.
func addBoxRow(t *Table, value float64, ratios []float64) error {
	if len(ratios) == 0 {
		t.AddRow(f2(value), "-", "-", "-", "-", "-", "-")
		return nil
	}
	bp, err := stats.NewBoxPlot(ratios)
	if err != nil {
		return err
	}
	t.AddRow(f2(value), f3(bp.Min), f3(bp.Q1), f3(bp.Median), f3(bp.Q3), f3(bp.Max), pct(bp.Median))
	return nil
}
