package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/hdfs"
	"ear/internal/progress"
)

// NodeFailResult is RunNodeFail's output: the recovery driver's statistics,
// the auditor's verdict and the residual durability exposure after the
// sweep, plus a rendered summary table.
type NodeFailResult struct {
	Stats    hdfs.RecoveryStats `json:"stats"`
	Audit    audit.Report       `json:"audit"`
	Progress progress.Report    `json:"progress"`
	Summary  *Table             `json:"-"`
}

// RunNodeFail is the node-failure smoke scenario: encode stripes on a
// multi-node-rack cluster, kill the node holding the most stripe members,
// run the parallel recovery driver, and verify the cluster healed — every
// lost member repaired, no metadata referencing the dead node, the
// event-sourced auditor free of ongoing violations, and the progress
// tracker's durability-exposure ledger fully closed. It exercises the
// two-level repair path end to end under the invariant checkers, the
// counterpart to the throughput-focused earbench recovery suite.
func RunNodeFail(opts TestbedOptions) (*NodeFailResult, error) {
	// Recovery needs multi-node racks (rack-local partial aggregation) and
	// a C large enough that a (9,6) stripe fits four racks.
	if opts.Racks == 0 {
		opts.Racks = 4
	}
	if opts.NodesPerRack == 0 {
		opts.NodesPerRack = 4
	}
	if opts.C == 0 {
		opts.C = 3
	}
	if opts.Stripes == 0 {
		opts.Stripes = 6
	}
	opts = opts.withDefaults()
	const n, k = 9, 6
	cfg := opts.clusterConfig("ear", n, k)
	cfg.RackAwareRepair = opts.RackAwareRepair
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	opts.apply(c)

	jrn := c.Journal()
	if jrn == nil {
		jrn = events.NewJournal(0)
		c.SetJournal(jrn)
	}
	aud := audit.New(c.Topology(), audit.Config{
		Replicas:      cfg.Replicas,
		C:             cfg.C,
		CheckCoreRack: true,
	})
	defer aud.Attach(jrn)()
	prog := progress.New(progress.Config{Replicas: cfg.Replicas, Policy: cfg.Policy})
	defer prog.Attach(jrn)()

	rng := rand.New(rand.NewSource(opts.Seed + 131))
	if _, err := populate(c, opts.Stripes, rng); err != nil {
		return nil, err
	}
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		return nil, err
	}
	if err := settlePlacement(c); err != nil {
		return nil, err
	}

	dead := busiestEncodedNode(c)
	if dead < 0 {
		return nil, fmt.Errorf("%w: nothing encoded, no node worth killing", ErrBadOptions)
	}
	c.NameNode().MarkDead(dead)
	if prog.Report().BlocksAtRisk == 0 {
		return nil, fmt.Errorf("node %d died holding stripe members, but the progress tracker opened no exposure windows", dead)
	}

	stats, err := c.RecoverNode(context.Background(), dead)
	if err != nil {
		return nil, fmt.Errorf("recover node %d: %w", dead, err)
	}
	if stats.BlocksRepaired+stats.ParityRepaired == 0 {
		return nil, fmt.Errorf("recovery of the busiest node %d repaired nothing", dead)
	}

	// The healed cluster must not reference the dead node anywhere.
	nn := c.NameNode()
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			return nil, err
		}
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil {
				return nil, err
			}
			if meta.Aborted {
				continue
			}
			for _, node := range meta.Nodes {
				if node == dead {
					return nil, fmt.Errorf("block %d still located on dead node %d after recovery", b, dead)
				}
			}
		}
		for j, node := range sm.Plan.Parity {
			if node == dead {
				return nil, fmt.Errorf("stripe %d parity %d still located on dead node %d after recovery", sid, j, dead)
			}
		}
	}

	res := &NodeFailResult{Stats: stats, Audit: aud.Report(), Progress: prog.Report()}
	if v := res.Audit.Ongoing; len(v) > 0 {
		return nil, fmt.Errorf("auditor reports %d ongoing violations after recovery, first: %s",
			len(v), v[0].Detail)
	}
	if res.Progress.BlocksAtRisk != 0 {
		return nil, fmt.Errorf("progress tracker reports %d blocks still at risk after recovery",
			res.Progress.BlocksAtRisk)
	}

	mode := "gather"
	if cfg.RackAwareRepair {
		mode = "two-level"
	}
	t := &Table{
		ID: "nodefail",
		Caption: fmt.Sprintf("Node-failure recovery smoke: %s repair, %d racks x %d nodes, (%d,%d), c=%d",
			mode, cfg.Racks, cfg.NodesPerRack, n, k, cfg.C),
		Headers: []string{"metric", "value"},
		Notes: []string{
			"auditor: no ongoing violations; progress tracker: zero residual blocks at risk",
		},
	}
	t.AddRow("failed node", fmt.Sprintf("%d", dead))
	t.AddRow("data blocks repaired", fmt.Sprintf("%d", stats.BlocksRepaired))
	t.AddRow("parities repaired", fmt.Sprintf("%d", stats.ParityRepaired))
	t.AddRow("bytes repaired (MB)", f2(float64(stats.BytesRepaired)/(1<<20)))
	t.AddRow("cross-rack traffic (MB)", f2(float64(stats.CrossRackBytes)/(1<<20)))
	t.AddRow("total traffic (MB)", f2(float64(stats.TotalBytes)/(1<<20)))
	t.AddRow("recovery throughput (MB/s)", f2(stats.ThroughputMBps()))
	res.Summary = t
	return res, nil
}
