package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ear/internal/events"
	"ear/internal/fabric"
	"ear/internal/hdfs"
	"ear/internal/topology"
)

// PhaseTraffic is the rack-locality byte breakdown of one phase of a block
// lifecycle (write, encode, delete), measured two independent ways: summed
// from the journal's transfer-finished events and subtracted from the
// fabric's payload counters. The two must agree — every network stream is
// journaled — so a discrepancy flags lost events or unbracketed transfers.
type PhaseTraffic struct {
	Phase     string `json:"phase"`
	Transfers int    `json:"transfers"`
	// CrossRackBytes / IntraRackBytes are journal-derived (transfer-finished
	// events of network streams; local same-node disk streams are excluded,
	// matching the fabric's payload accounting).
	CrossRackBytes int64 `json:"cross_rack_bytes"`
	IntraRackBytes int64 `json:"intra_rack_bytes"`
	// FabricCrossBytes / FabricIntraBytes are the fabric snapshot deltas over
	// the same phase, the independent ground truth.
	FabricCrossBytes int64 `json:"fabric_cross_bytes"`
	FabricIntraBytes int64 `json:"fabric_intra_bytes"`
}

// discrepancy returns the larger relative disagreement between the journal
// and fabric byte totals (0 when both agree, including the all-zero case).
func (p PhaseTraffic) discrepancy() float64 {
	rel := func(a, b int64) float64 {
		if a == b {
			return 0
		}
		den := float64(b)
		if b == 0 {
			den = float64(a)
		}
		d := float64(a-b) / den
		if d < 0 {
			d = -d
		}
		return d
	}
	c := rel(p.CrossRackBytes, p.FabricCrossBytes)
	if i := rel(p.IntraRackBytes, p.FabricIntraBytes); i > c {
		c = i
	}
	return c
}

// TrafficResult is RunTraffic's output: the per-phase breakdown, the
// per-link utilization timeline sampled across the whole run, and a rendered
// summary table.
type TrafficResult struct {
	Policy string         `json:"policy"`
	Phases []PhaseTraffic `json:"phases"`
	// MaxDiscrepancy is the worst relative disagreement between the
	// journal-derived and fabric-derived byte totals across all phases.
	MaxDiscrepancy float64         `json:"max_discrepancy"`
	Timeline       fabric.Timeline `json:"timeline"`
	Summary        *Table          `json:"-"`
}

// RunTraffic runs one write -> encode -> delete lifecycle on a fresh cluster
// and reports the cross-rack vs intra-rack traffic of each phase. The write
// phase populates enough blocks to seal the configured stripes; the encode
// phase runs the RaidNode's encoding job (whose third step deletes redundant
// replicas in place — deletes are metadata plus local disk, so the phase's
// network bytes live in encode's gather and parity uploads); the delete
// phase runs the PlacementMonitor + BlockMover pass that relocates blocks of
// any stripe left violating rack-level fault tolerance (zero traffic on a
// clean EAR run, the paper's headline saving).
func RunTraffic(opts TestbedOptions, policy string, n, k int) (*TrafficResult, error) {
	opts = opts.withDefaults()
	cfg := opts.clusterConfig(policy, n, k)
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	opts.apply(c)

	// The journal must hold every transfer event of the run: bound it by the
	// worst-case stream count (writes replicate every block, encoding touches
	// every block and parity, repair pulls up to k survivors per lost member,
	// each stream publishes two events) with slack.
	blocks := opts.Stripes * k * 2
	capacity := (blocks*(cfg.Replicas+2) + opts.Stripes*(k+n) + opts.Stripes*(k+1)) * 4
	j := events.NewJournal(capacity)
	c.SetJournal(j)

	sampler := fabric.NewSampler(c.Fabric(), 0)
	sampler.Start()
	defer sampler.Stop()

	res := &TrafficResult{Policy: policy}
	cursor := j.Seq()
	prev := c.Fabric().Snapshot()
	measure := func(phase string, run func() error) error {
		if err := run(); err != nil {
			return fmt.Errorf("%s phase: %w", phase, err)
		}
		cur := c.Fabric().Snapshot()
		d := cur.Sub(prev)
		pt := PhaseTraffic{
			Phase:            phase,
			FabricCrossBytes: d.CrossRackBytes,
			FabricIntraBytes: d.IntraRackBytes,
		}
		evs, next, dropped := j.Since(cursor, 0, events.Filter{Type: events.TransferFinished})
		if dropped > 0 {
			return fmt.Errorf("%s phase: journal dropped %d events (capacity %d too small)",
				phase, dropped, capacity)
		}
		for _, e := range evs {
			if e.Node == e.Peer {
				continue // local disk stream, not network payload
			}
			pt.Transfers++
			if e.Cross {
				pt.CrossRackBytes += e.Bytes
			} else {
				pt.IntraRackBytes += e.Bytes
			}
		}
		cursor, prev = next, cur
		res.Phases = append(res.Phases, pt)
		if d := pt.discrepancy(); d > res.MaxDiscrepancy {
			res.MaxDiscrepancy = d
		}
		return nil
	}

	rng := rand.New(rand.NewSource(opts.Seed + 77))
	if err := measure("write", func() error {
		_, err := populate(c, opts.Stripes, rng)
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("encode", func() error {
		_, err := c.RaidNode().EncodeAll()
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("delete", func() error {
		_, _, err := c.RaidNode().BlockMover()
		return err
	}); err != nil {
		return nil, err
	}
	// Repair phase: kill the node holding the most encoded data blocks,
	// recover every lost member, revive the node. Repair streams are
	// journaled like any other transfer, so the journal-vs-fabric
	// cross-check extends to the repair path (gather or two-level).
	if err := measure("repair", func() error {
		dead := busiestEncodedNode(c)
		if dead < 0 {
			return fmt.Errorf("%w: no encoded blocks to lose", ErrBadOptions)
		}
		c.NameNode().MarkDead(dead)
		if _, err := c.RecoverNode(context.Background(), dead); err != nil {
			return err
		}
		c.NameNode().MarkAlive(dead)
		return nil
	}); err != nil {
		return nil, err
	}
	sampler.Stop()
	res.Timeline = sampler.Timeline()

	mode := "gather"
	if cfg.PipelinedEncode {
		mode = "pipelined"
	}
	repairMode := "gather"
	if cfg.RackAwareRepair {
		repairMode = "two-level"
	}
	t := &Table{
		ID:      "traffic",
		Caption: fmt.Sprintf("Per-phase cross-rack vs intra-rack traffic, policy %s (%d,%d), %s encode, %s repair", policy, n, k, mode, repairMode),
		Headers: []string{"phase", "transfers", "xrack MB", "intra MB", "fabric xrack MB", "fabric intra MB"},
		Notes: []string{
			fmt.Sprintf("journal vs fabric max discrepancy: %.3f%%", res.MaxDiscrepancy*100),
		},
	}
	for _, p := range res.Phases {
		t.AddRow(p.Phase, fmt.Sprintf("%d", p.Transfers),
			f2(float64(p.CrossRackBytes)/(1<<20)), f2(float64(p.IntraRackBytes)/(1<<20)),
			f2(float64(p.FabricCrossBytes)/(1<<20)), f2(float64(p.FabricIntraBytes)/(1<<20)))
	}
	res.Summary = t
	return res, nil
}

// busiestEncodedNode returns the live node holding the most members (data
// blocks or parities) of encoded stripes, or -1 when nothing is encoded —
// the node whose failure exercises recovery hardest.
func busiestEncodedNode(c *hdfs.Cluster) topology.NodeID {
	nn := c.NameNode()
	load := make(map[topology.NodeID]int)
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			continue
		}
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil || meta.Aborted {
				continue
			}
			for _, n := range meta.Nodes {
				if !nn.IsDead(n) {
					load[n]++
				}
			}
		}
		for _, n := range sm.Plan.Parity {
			if !nn.IsDead(n) {
				load[n]++
			}
		}
	}
	best, bestLoad := topology.NodeID(-1), 0
	for n, l := range load {
		if l > bestLoad || (l == bestLoad && best >= 0 && n < best) {
			best, bestLoad = n, l
		}
	}
	return best
}
