package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ear/internal/hdfs"
	"ear/internal/mapred"
	"ear/internal/stats"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// TestbedOptions configures the mini-HDFS experiments. The defaults mirror
// the paper's 13-machine testbed (12 single-node racks, 2-way replication,
// 12 map tasks) scaled down: 256 KiB blocks instead of 64 MB and link
// bandwidth scaled by the same factor, so transfer times per block match
// the testbed's while wall-clock runs stay short.
type TestbedOptions struct {
	Racks        int
	NodesPerRack int
	Replicas     int
	// Stripes is the number of stripes encoded per run (paper: 96).
	Stripes int
	// BlockSizeBytes and BandwidthBytesPerSec are the scaled block size
	// and per-link bandwidth.
	BlockSizeBytes       int
	BandwidthBytesPerSec float64
	// DiskBytesPerSec shapes local block reads (defaults to roughly the
	// link rate, like the testbed's SATA disks vs 1 GbE).
	DiskBytesPerSec float64
	MapTasks        int
	Seed            int64
	// PipelinedEncode runs every encode through the RapidRAID-style
	// distributed pipeline instead of the gather path.
	PipelinedEncode bool
	// PipelineChunkBytes overrides the pipelined encode's chunk size
	// (0 = fabric default).
	PipelineChunkBytes int
	// RackAwareRepair runs block repair and node recovery through the
	// two-level rack-aware path instead of the naive gather.
	RackAwareRepair bool
	// C bounds blocks of one stripe per rack after encoding (default 1,
	// the paper's setting; multi-node-rack geometries need more so a
	// stripe fits in the cluster).
	C int
	// Tracer, when non-nil, is installed on every cluster the experiment
	// builds, so encoding jobs emit per-phase spans (eartestbed -trace).
	Tracer *telemetry.Tracer
	// ClusterHook, when non-nil, runs on every cluster the experiment
	// builds, right after construction and before any traffic. It is the
	// attachment point for observability that needs the cluster itself —
	// event journals, auditors, fabric samplers (eartestbed -audit,
	// -timeline).
	ClusterHook func(*hdfs.Cluster)
}

// apply installs the options' observers on a freshly built cluster.
func (o TestbedOptions) apply(c *hdfs.Cluster) {
	c.SetTracer(o.Tracer)
	if o.ClusterHook != nil {
		o.ClusterHook(c)
	}
}

// withDefaults fills zero fields with the scaled testbed setting.
func (o TestbedOptions) withDefaults() TestbedOptions {
	if o.Racks == 0 {
		o.Racks = 12
	}
	if o.NodesPerRack == 0 {
		o.NodesPerRack = 1
	}
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if o.Stripes == 0 {
		o.Stripes = 24
	}
	if o.BlockSizeBytes == 0 {
		o.BlockSizeBytes = 256 << 10
	}
	if o.BandwidthBytesPerSec == 0 {
		// 4 MB/s: a 1 Gb/s link scaled down with the block size so one
		// 256 KiB block takes 64 ms, an 8x-accelerated testbed second.
		o.BandwidthBytesPerSec = 4 << 20
	}
	if o.MapTasks == 0 {
		o.MapTasks = 12
	}
	if o.DiskBytesPerSec == 0 {
		// Local reads of recently written blocks are served from the page
		// cache / sequential disk at well above the 1 GbE rate; 2x the
		// link rate reproduces the testbed's local-read advantage.
		o.DiskBytesPerSec = o.BandwidthBytesPerSec * 2
	}
	if o.C == 0 {
		o.C = 1
	}
	return o
}

// clusterConfig derives the hdfs config for a policy and code.
func (o TestbedOptions) clusterConfig(policy string, n, k int) hdfs.Config {
	c := o.C
	if c == 0 {
		c = 1
	}
	return hdfs.Config{
		Racks:                    o.Racks,
		NodesPerRack:             o.NodesPerRack,
		Policy:                   policy,
		Replicas:                 o.Replicas,
		K:                        k,
		N:                        n,
		C:                        c,
		BlockSizeBytes:           o.BlockSizeBytes,
		BandwidthBytesPerSec:     o.BandwidthBytesPerSec,
		DiskBandwidthBytesPerSec: o.DiskBytesPerSec,
		MapTasks:                 o.MapTasks,
		Seed:                     o.Seed,
		PipelinedEncode:          o.PipelinedEncode,
		PipelineChunkBytes:       o.PipelineChunkBytes,
		RackAwareRepair:          o.RackAwareRepair,
	}
}

// populate writes blocks at full speed until the pre-encoding store holds
// the requested number of stripes, then throttles the fabric to the
// measured bandwidth. It returns the written block IDs.
func populate(c *hdfs.Cluster, stripes int, rng *rand.Rand) ([]topology.BlockID, error) {
	// Populate unthrottled; the write phase is not part of the measurement.
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		return nil, err
	}
	if err := c.Fabric().SetDiskRates(64 << 30); err != nil {
		return nil, err
	}
	var ids []topology.BlockID
	payload := make([]byte, c.Config().BlockSizeBytes)
	maxBlocks := stripes * c.Config().K * 10
	for c.NameNode().PendingStripeCount() < stripes {
		if len(ids) >= maxBlocks {
			return nil, fmt.Errorf("%w: %d blocks written without sealing %d stripes",
				ErrBadOptions, len(ids), stripes)
		}
		rng.Read(payload)
		client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
		id, err := c.WriteBlock(client, payload)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	if err := c.Fabric().SetAllRates(c.Config().BandwidthBytesPerSec); err != nil {
		return nil, err
	}
	if d := c.Config().DiskBandwidthBytesPerSec; d > 0 {
		if err := c.Fabric().SetDiskRates(d); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// encodeOnce builds a cluster, populates it, and measures one encoding job,
// returning its statistics and the cross-rack traffic the job generated (a
// fabric snapshot delta, so the populate phase is excluded).
func encodeOnce(opts TestbedOptions, policy string, n, k int) (hdfs.EncodeStats, float64, error) {
	cfg := opts.clusterConfig(policy, n, k)
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return hdfs.EncodeStats{}, 0, err
	}
	defer c.Close()
	opts.apply(c)
	rng := rand.New(rand.NewSource(opts.Seed + 77))
	if _, err := populate(c, opts.Stripes, rng); err != nil {
		return hdfs.EncodeStats{}, 0, err
	}
	before := c.Fabric().Snapshot()
	st, err := c.RaidNode().EncodeAll()
	if err != nil {
		return st, 0, err
	}
	d := c.Fabric().Snapshot().Sub(before)
	if err := settlePlacement(c); err != nil {
		return st, 0, err
	}
	return st, float64(d.CrossRackBytes) / (1 << 20), nil
}

// settlePlacement completes the placement pipeline after an encoding run:
// the PlacementMonitor + BlockMover pass relocates any block the retained
// placement left violating rack-level fault tolerance. RR routinely needs
// this (the relocation traffic EAR avoids); for EAR it is a no-op.
// Experiments call it after taking their measurements, so reported numbers
// are unaffected, and the cluster ends every run in an invariant-clean
// state for the audit layer to verify.
func settlePlacement(c *hdfs.Cluster) error {
	_, _, err := c.RaidNode().BlockMover()
	return err
}

// RunA1 reproduces Experiment A.1 / Figure 8(a): raw encoding throughput of
// RR vs EAR across (n, k) with n = k+2.
func RunA1(opts TestbedOptions) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig8a",
		Caption: "Experiment A.1: raw encoding throughput vs (n,k)",
		Headers: []string{"(n,k)", "RR MB/s", "EAR MB/s", "EAR gain", "RR cross-dl", "EAR cross-dl", "RR xrack MB", "EAR xrack MB"},
		Notes: []string{
			fmt.Sprintf("scaled testbed: %d racks x %d node(s), %d-way replication, %d stripes, %d B blocks, %.1f MB/s links",
				opts.Racks, opts.NodesPerRack, opts.Replicas, opts.Stripes, opts.BlockSizeBytes, opts.BandwidthBytesPerSec/(1<<20)),
		},
	}
	for _, k := range []int{4, 6, 8, 10} {
		n := k + 2
		rr, rrCrossMB, err := encodeOnce(opts, "rr", n, k)
		if err != nil {
			return nil, fmt.Errorf("a1 rr k=%d: %w", k, err)
		}
		ear, earCrossMB, err := encodeOnce(opts, "ear", n, k)
		if err != nil {
			return nil, fmt.Errorf("a1 ear k=%d: %w", k, err)
		}
		t.AddRow(fmt.Sprintf("(%d,%d)", n, k), f2(rr.ThroughputMBps), f2(ear.ThroughputMBps),
			pct(ear.ThroughputMBps/rr.ThroughputMBps),
			fmt.Sprintf("%d", rr.CrossRackDownloads), fmt.Sprintf("%d", ear.CrossRackDownloads),
			f2(rrCrossMB), f2(earCrossMB))
	}
	return t, nil
}

// RunA1UDP reproduces Experiment A.1 / Figure 8(b): encoding throughput of
// (10,8) under increasing UDP-style cross traffic. Rates are expressed as a
// fraction of link bandwidth (the paper's 0-800 Mb/s on 1 Gb/s links).
func RunA1UDP(opts TestbedOptions) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		ID:      "fig8b",
		Caption: "Experiment A.1: encoding throughput of (10,8) vs injected cross traffic",
		Headers: []string{"injected (frac of link)", "RR MB/s", "EAR MB/s", "EAR gain"},
	}
	for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		var thpt [2]float64
		for i, policy := range []string{"rr", "ear"} {
			cfg := opts.clusterConfig(policy, 10, 8)
			c, err := hdfs.NewCluster(cfg)
			if err != nil {
				return nil, err
			}
			opts.apply(c)
			rng := rand.New(rand.NewSource(opts.Seed + 77))
			if _, err := populate(c, opts.Stripes, rng); err != nil {
				c.Close()
				return nil, err
			}
			// Pair up nodes as Iperf sender/receiver, half the cluster like
			// the paper's six pairs on twelve slaves.
			var injectors []interface{ Close() }
			if frac > 0 {
				nodes := c.Topology().Nodes()
				for a := 0; a+1 < nodes; a += 2 {
					inj, err := c.Fabric().InjectTraffic(topology.NodeID(a), topology.NodeID(a+1),
						frac*opts.BandwidthBytesPerSec)
					if err != nil {
						c.Close()
						return nil, err
					}
					injectors = append(injectors, inj)
				}
			}
			st, err := c.RaidNode().EncodeAll()
			for _, inj := range injectors {
				inj.Close()
			}
			if err == nil {
				err = settlePlacement(c)
			}
			c.Close()
			if err != nil {
				return nil, err
			}
			thpt[i] = st.ThroughputMBps
		}
		t.AddRow(f2(frac), f2(thpt[0]), f2(thpt[1]), pct(thpt[1]/thpt[0]))
	}
	return t, nil
}

// A2Result is Experiment A.2's output: the summary table plus the raw write
// response series (the paper's Figure 9 curves).
type A2Result struct {
	Summary   *Table
	RRSeries  *stats.Series
	EARSeries *stats.Series
}

// A2Options extends the testbed options with the write workload.
type A2Options struct {
	TestbedOptions
	// WriteRate is the Poisson arrival rate of single-block writes
	// (requests/s, in scaled time).
	WriteRate float64
	// LeadTime is how long writes run before encoding starts.
	LeadTime time.Duration
}

func (o A2Options) withDefaults() A2Options {
	o.TestbedOptions = o.TestbedOptions.withDefaults()
	if o.WriteRate == 0 {
		o.WriteRate = 4
	}
	if o.LeadTime == 0 {
		o.LeadTime = 2 * time.Second
	}
	return o
}

// runA2Policy measures write responses around one encoding run.
func runA2Policy(opts A2Options, policy string) (*stats.Series, hdfs.EncodeStats, float64, float64, error) {
	cfg := opts.clusterConfig(policy, 10, 8)
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return nil, hdfs.EncodeStats{}, 0, 0, err
	}
	defer c.Close()
	opts.apply(c)
	rng := rand.New(rand.NewSource(opts.Seed + 99))
	if _, err := populate(c, opts.Stripes, rng); err != nil {
		return nil, hdfs.EncodeStats{}, 0, 0, err
	}

	series := &stats.Series{Name: policy}
	var mu sync.Mutex
	stop := make(chan struct{})
	done := make(chan struct{})
	start := time.Now()
	writerRng := rand.New(rand.NewSource(opts.Seed + 101))
	var wg sync.WaitGroup
	go func() {
		defer close(done)
		payload := make([]byte, cfg.BlockSizeBytes)
		writerRng.Read(payload)
		for {
			wait := time.Duration(stats.Exponential(writerRng, 1/opts.WriteRate) * float64(time.Second))
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
			client := topology.NodeID(writerRng.Intn(c.Topology().Nodes()))
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				if _, err := c.WriteBlock(client, payload); err != nil {
					return
				}
				mu.Lock()
				series.Add(time.Since(start).Seconds(), time.Since(t0).Seconds())
				mu.Unlock()
			}()
		}
	}()

	time.Sleep(opts.LeadTime)
	encStats, err := c.RaidNode().EncodeAll()
	close(stop)
	<-done
	wg.Wait()
	if err != nil {
		return nil, hdfs.EncodeStats{}, 0, 0, err
	}
	if err := settlePlacement(c); err != nil {
		return nil, hdfs.EncodeStats{}, 0, 0, err
	}
	encStart := opts.LeadTime.Seconds()
	encEnd := encStart + encStats.Duration.Seconds()
	mu.Lock()
	before, _ := series.WindowMean(0, encStart)
	during, _ := series.WindowMean(encStart, encEnd)
	mu.Unlock()
	return series, encStats, before, during, nil
}

// RunA2 reproduces Experiment A.2 / Figure 9: the impact of encoding on
// write performance.
func RunA2(opts A2Options) (*A2Result, error) {
	opts = opts.withDefaults()
	rrSeries, rrStats, rrBefore, rrDuring, err := runA2Policy(opts, "rr")
	if err != nil {
		return nil, fmt.Errorf("a2 rr: %w", err)
	}
	earSeries, earStats, earBefore, earDuring, err := runA2Policy(opts, "ear")
	if err != nil {
		return nil, fmt.Errorf("a2 ear: %w", err)
	}
	t := &Table{
		ID:      "fig9",
		Caption: "Experiment A.2: impact of encoding on write performance",
		Headers: []string{"metric", "RR", "EAR", "EAR improvement"},
	}
	t.AddRow("write resp before encode (s)", f3(rrBefore), f3(earBefore), pct(rrBefore/nonZero(earBefore)))
	t.AddRow("write resp during encode (s)", f3(rrDuring), f3(earDuring), pct(rrDuring/nonZero(earDuring)))
	t.AddRow("encoding time (s)", f3(rrStats.Duration.Seconds()), f3(earStats.Duration.Seconds()),
		pct(rrStats.Duration.Seconds()/nonZero(earStats.Duration.Seconds())))
	return &A2Result{Summary: t, RRSeries: rrSeries, EARSeries: earSeries}, nil
}

// nonZero guards ratio denominators.
func nonZero(v float64) float64 {
	if v == 0 {
		return 1e-9
	}
	return v
}

// A3Options configures the SWIM replay.
type A3Options struct {
	TestbedOptions
	Jobs int
	// MeanInterarrival between jobs, in scaled time.
	MeanInterarrival time.Duration
	SlotsPerNode     int
}

func (o A3Options) withDefaults() A3Options {
	o.TestbedOptions = o.TestbedOptions.withDefaults()
	if o.Jobs == 0 {
		o.Jobs = 50
	}
	if o.MeanInterarrival == 0 {
		o.MeanInterarrival = 100 * time.Millisecond
	}
	if o.SlotsPerNode == 0 {
		o.SlotsPerNode = 4
	}
	return o
}

// A3Result carries the completion curves of both policies.
type A3Result struct {
	Summary *Table
	// Completions maps policy name to sorted job completion offsets.
	Completions map[string][]time.Duration
}

// runSwim replays the workload on a cluster under one policy and returns
// sorted completion offsets.
func runSwim(opts A3Options, policy string, jobs []mapred.SwimJob) ([]time.Duration, error) {
	cfg := opts.clusterConfig(policy, 10, 8)
	cfg.SlotsPerNode = opts.SlotsPerNode
	c, err := hdfs.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	opts.apply(c)
	rng := rand.New(rand.NewSource(opts.Seed + 55))
	payload := make([]byte, cfg.BlockSizeBytes)
	rng.Read(payload)

	// Pre-write every job's input at full speed.
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		return nil, err
	}
	inputs := make([][]topology.BlockID, len(jobs))
	for i, j := range jobs {
		for b := 0; b < j.InputBlocks; b++ {
			id, err := c.WriteBlock(topology.NodeID(rng.Intn(c.Topology().Nodes())), payload)
			if err != nil {
				return nil, err
			}
			inputs[i] = append(inputs[i], id)
		}
	}
	if err := c.Fabric().SetAllRates(cfg.BandwidthBytesPerSec); err != nil {
		return nil, err
	}

	completions := make([]time.Duration, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	start := time.Now()
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			if wait := j.Arrival - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
			errs[i] = runSwimJob(c, j, inputs[i], opts.Seed+int64(i))
			completions[i] = time.Since(start)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(completions, func(a, b int) bool { return completions[a] < completions[b] })
	return completions, nil
}

// runSwimJob executes one job: map tasks read their input blocks with
// locality preference, shuffle a share of intermediate data, and write the
// job's output back to the CFS.
func runSwimJob(c *hdfs.Cluster, j mapred.SwimJob, input []topology.BlockID, seed int64) error {
	maps := j.Maps
	if maps > len(input) {
		maps = len(input)
	}
	if maps < 1 {
		maps = 1
	}
	job := mapred.Job{Name: j.Name}
	blockSize := c.Config().BlockSizeBytes
	shufflePerMap := int(j.ShuffleMB * (1 << 20) / float64(maps))
	outPerMap := j.OutputBlocks / maps
	outExtra := j.OutputBlocks % maps
	for m := 0; m < maps; m++ {
		m := m
		var myBlocks []topology.BlockID
		for b := m; b < len(input); b += maps {
			myBlocks = append(myBlocks, input[b])
		}
		// Prefer the node holding the first input block's replica.
		preferred := mapred.AnyNode
		if meta, err := c.NameNode().Block(myBlocks[0]); err == nil && len(meta.Nodes) > 0 {
			preferred = meta.Nodes[0]
		}
		outBlocks := outPerMap
		if m < outExtra {
			outBlocks++
		}
		taskSeed := seed + int64(m)*7919
		job.Tasks = append(job.Tasks, &mapred.Task{
			Name:      fmt.Sprintf("%s-m%d", j.Name, m),
			Preferred: preferred,
			Run: func(ctx context.Context, on topology.NodeID) error {
				taskRng := rand.New(rand.NewSource(taskSeed))
				for _, b := range myBlocks {
					if _, err := c.ReadBlockCtx(ctx, on, b); err != nil {
						return err
					}
				}
				if shufflePerMap > 0 {
					dst := topology.NodeID(taskRng.Intn(c.Topology().Nodes()))
					if _, err := c.Fabric().TransferCtx(ctx, on, dst, make([]byte, shufflePerMap)); err != nil {
						return err
					}
				}
				payload := make([]byte, blockSize)
				taskRng.Read(payload)
				for b := 0; b < outBlocks; b++ {
					if _, err := c.WriteBlockCtx(ctx, on, payload); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	_, err := c.JobTracker().Submit(job)
	return err
}

// RunA3 reproduces Experiment A.3 / Figure 10: MapReduce performance on
// replicated data under RR vs EAR.
func RunA3(opts A3Options) (*A3Result, error) {
	opts = opts.withDefaults()
	jobs, err := mapred.GenerateSwim(mapred.SwimConfig{
		Jobs:             opts.Jobs,
		MeanInterarrival: opts.MeanInterarrival,
		BlockSizeMB:      float64(opts.BlockSizeBytes) / (1 << 20),
	}, rand.New(rand.NewSource(opts.Seed+33)))
	if err != nil {
		return nil, err
	}
	res := &A3Result{Completions: make(map[string][]time.Duration, 2)}
	for _, policy := range []string{"rr", "ear"} {
		comps, err := runSwim(opts, policy, jobs)
		if err != nil {
			return nil, fmt.Errorf("a3 %s: %w", policy, err)
		}
		res.Completions[policy] = comps
	}
	t := &Table{
		ID:      "fig10",
		Caption: "Experiment A.3: MapReduce job completion under RR vs EAR (similar expected)",
		Headers: []string{"completed jobs", "RR elapsed (s)", "EAR elapsed (s)"},
	}
	rr, ear := res.Completions["rr"], res.Completions["ear"]
	for _, q := range []float64{0.25, 0.5, 0.75, 1.0} {
		idx := int(q*float64(len(rr))) - 1
		if idx < 0 {
			idx = 0
		}
		t.AddRow(fmt.Sprintf("%d", idx+1), f3(rr[idx].Seconds()), f3(ear[idx].Seconds()))
	}
	res.Summary = t
	return res, nil
}
