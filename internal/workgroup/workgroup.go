// Package workgroup is a dependency-free errgroup: a Group runs a set of
// goroutines, propagates the first error, and cancels a shared context so
// the rest can abort early. A concurrency limit bounds fan-in, which is how
// the data path caps parallel block gathers (k fetches over disjoint links
// without unbounded goroutine growth). It mirrors the golang.org/x/sync
// errgroup API so a later swap is mechanical.
package workgroup

import (
	"context"
	"fmt"
	"sync"
)

// Group collects goroutines working on subtasks of a common task. The zero
// value is usable: no limit, no cancellation on error.
type Group struct {
	cancel context.CancelCauseFunc

	wg  sync.WaitGroup
	sem chan struct{}

	errOnce sync.Once
	err     error
}

// WithContext returns a Group and a context derived from ctx that is
// canceled the first time a function passed to Go returns an error or Wait
// returns.
func WithContext(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancelCause(ctx)
	return &Group{cancel: cancel}, ctx
}

// SetLimit caps the number of concurrently running goroutines to n (n < 1
// removes the cap). It must not be called while goroutines are active.
func (g *Group) SetLimit(n int) {
	if len(g.sem) != 0 {
		panic(fmt.Sprintf("workgroup: modify limit while %d goroutines active", len(g.sem)))
	}
	if n < 1 {
		g.sem = nil
		return
	}
	g.sem = make(chan struct{}, n)
}

// Go runs f in a new goroutine, blocking first if the concurrency limit is
// reached. The first non-nil error cancels the group context and is
// returned by Wait.
func (g *Group) Go(f func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer func() {
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := f(); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				if g.cancel != nil {
					g.cancel(err)
				}
			})
		}
	}()
}

// Wait blocks until every goroutine launched with Go has returned, then
// returns the first error (if any) and cancels the group context.
func (g *Group) Wait() error {
	g.wg.Wait()
	if g.cancel != nil {
		g.cancel(g.err)
	}
	return g.err
}
