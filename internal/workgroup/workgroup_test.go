package workgroup

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestZeroValueRunsAll(t *testing.T) {
	var g Group
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 10 {
		t.Errorf("ran %d goroutines, want 10", n.Load())
	}
}

func TestFirstErrorWinsAndCancels(t *testing.T) {
	g, ctx := WithContext(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("context not canceled on first error")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if ctx.Err() == nil {
		t.Error("group context still live after Wait")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, boom) {
		t.Errorf("cancel cause = %v, want boom", cause)
	}
}

func TestLimitBoundsConcurrency(t *testing.T) {
	g, _ := WithContext(context.Background())
	g.SetLimit(3)
	var cur, peak atomic.Int32
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds limit 3", p)
	}
}

func TestWaitCancelsContextOnSuccess(t *testing.T) {
	g, ctx := WithContext(context.Background())
	g.Go(func() error { return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	default:
		t.Error("context not canceled after successful Wait")
	}
}
