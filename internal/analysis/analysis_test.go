package analysis

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ear/internal/placement"
	"ear/internal/topology"
)

func TestViolationProbabilityPaperValues(t *testing.T) {
	// Section III-A: "e.g., 0.97 for k = 12 and R = 16".
	f, err := ViolationProbability(12, 16)
	if err != nil {
		t.Fatalf("ViolationProbability: %v", err)
	}
	if math.Abs(f-0.97) > 0.01 {
		t.Errorf("f(k=12, R=16) = %.4f, want ~0.97", f)
	}
}

func TestViolationProbabilityProperties(t *testing.T) {
	// f decreases with R and increases with k; bounded in [0, 1].
	for _, k := range []int{6, 8, 10, 12} {
		prev := 1.1
		for racks := k + 2; racks <= 60; racks += 2 {
			f, err := ViolationProbability(k, racks)
			if err != nil {
				t.Fatalf("ViolationProbability(%d, %d): %v", k, racks, err)
			}
			if f < 0 || f > 1 {
				t.Fatalf("f(%d, %d) = %g out of [0,1]", k, racks, f)
			}
			if f > prev+1e-12 {
				t.Fatalf("f(%d, %d) = %g not decreasing in R (prev %g)", k, racks, f, prev)
			}
			prev = f
		}
	}
	// With very few racks the violation is near-certain.
	f, err := ViolationProbability(10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.98 {
		t.Errorf("f(k=10, R=11) = %.4f, want ~0.98", f)
	}
	// Monotone in k at fixed R.
	f6, _ := ViolationProbability(6, 20)
	f12, _ := ViolationProbability(12, 20)
	if f12 <= f6 {
		t.Errorf("f should grow with k: f6=%.4f f12=%.4f", f6, f12)
	}
}

func TestViolationProbabilityEdgeCases(t *testing.T) {
	if _, err := ViolationProbability(0, 10); !errors.Is(err, ErrInvalidArgs) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := ViolationProbability(3, 1); !errors.Is(err, ErrInvalidArgs) {
		t.Errorf("R=1: %v", err)
	}
	// k=1: a single block can never violate (one rack pair suffices).
	f, err := ViolationProbability(1, 10)
	if err != nil || f != 0 {
		t.Errorf("f(k=1) = (%g, %v), want (0, nil)", f, err)
	}
	// R-1 < k-1: survival impossible, f = 1.
	f, err = ViolationProbability(10, 5)
	if err != nil || f != 1 {
		t.Errorf("f(k=10, R=5) = (%g, %v), want (1, nil)", f, err)
	}
}

func TestMonteCarloMatchesEquation1(t *testing.T) {
	// The empirical violation rate of preliminary EAR must track Eq. (1).
	rng := rand.New(rand.NewSource(20))
	for _, tc := range []struct{ k, racks int }{
		{6, 10}, {8, 16}, {10, 24},
	} {
		want, err := ViolationProbability(tc.k, tc.racks)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MonteCarloViolation(tc.k, tc.racks, 20, 400, rng)
		if err != nil {
			t.Fatalf("MonteCarloViolation(%+v): %v", tc, err)
		}
		if math.Abs(got-want) > 0.08 {
			t.Errorf("k=%d R=%d: monte carlo %.3f vs equation %.3f", tc.k, tc.racks, got, want)
		}
	}
}

func TestTheorem1Bound(t *testing.T) {
	// Remarks after Theorem 1: R=20, c=1 => for the k-th block the bound is
	// at most 1.9 for k=10.
	b, err := Theorem1Bound(10, 1, 20)
	if err != nil {
		t.Fatalf("Theorem1Bound: %v", err)
	}
	if math.Abs(b-19.0/10.0) > 1e-9 {
		t.Errorf("bound(i=10, c=1, R=20) = %.4f, want 1.9", b)
	}
	// First block never needs a retry in expectation terms: bound 1.
	b, err = Theorem1Bound(1, 1, 20)
	if err != nil || b != 1 {
		t.Errorf("bound(i=1) = (%g, %v), want (1, nil)", b, err)
	}
	// Larger c weakens the constraint: bound shrinks.
	b1, _ := Theorem1Bound(10, 1, 20)
	b2, _ := Theorem1Bound(10, 2, 20)
	if b2 >= b1 {
		t.Errorf("bound should shrink with c: c=1 %.3f, c=2 %.3f", b1, b2)
	}
	// Saturated: more full racks than available => infinite bound.
	b, err = Theorem1Bound(25, 1, 20)
	if err != nil || !math.IsInf(b, 1) {
		t.Errorf("saturated bound = (%g, %v), want +Inf", b, err)
	}
	if _, err := Theorem1Bound(0, 1, 20); !errors.Is(err, ErrInvalidArgs) {
		t.Errorf("i=0: %v", err)
	}
}

func TestIterationStatsWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	means, err := IterationStats(14, 10, 1, 20, 20, 150, rng)
	if err != nil {
		t.Fatalf("IterationStats: %v", err)
	}
	if len(means) != 10 {
		t.Fatalf("got %d means, want 10", len(means))
	}
	for i, m := range means {
		bound, err := Theorem1Bound(i+1, 1, 20)
		if err != nil {
			t.Fatal(err)
		}
		if m > bound*1.6 {
			t.Errorf("block %d: empirical %.3f exceeds bound %.3f", i+1, m, bound)
		}
		if m < 1 {
			t.Errorf("block %d: mean iterations %.3f < 1", i+1, m)
		}
	}
	// Later blocks need at least as many retries on average (monotone
	// trend, allow sampling noise by comparing first and last).
	if means[9] < means[0]-0.05 {
		t.Errorf("iterations should grow with block index: first %.3f, last %.3f", means[0], means[9])
	}
}

func TestStorageBalance(t *testing.T) {
	// Figure 14: both policies spread replicas across racks within a few
	// tenths of a percent of uniform (5% for R=20).
	top, err := topology.New(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := placement.Config{Topology: top, K: 10, N: 14}
	for _, mk := range []struct {
		name string
		pol  func() (placement.Policy, error)
	}{
		{"rr", func() (placement.Policy, error) {
			return placement.NewRandom(cfg, rand.New(rand.NewSource(22)))
		}},
		{"ear", func() (placement.Policy, error) {
			return placement.NewEAR(cfg, rand.New(rand.NewSource(23)))
		}},
	} {
		pol, err := mk.pol()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		shares, err := StorageBalance(pol, top, 10000)
		if err != nil {
			t.Fatalf("%s StorageBalance: %v", mk.name, err)
		}
		if len(shares) != 20 {
			t.Fatalf("%s: %d rack shares", mk.name, len(shares))
		}
		var sum float64
		for i, s := range shares {
			sum += s
			if s < 0.04 || s > 0.06 {
				t.Errorf("%s: rack rank %d share %.4f outside [0.04, 0.06]", mk.name, i, s)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: shares sum to %.6f", mk.name, sum)
		}
		// Sorted descending.
		for i := 1; i < len(shares); i++ {
			if shares[i] > shares[i-1] {
				t.Fatalf("%s: shares not sorted", mk.name)
			}
		}
	}
	pol, _ := placement.NewRandom(cfg, rand.New(rand.NewSource(24)))
	if _, err := StorageBalance(pol, top, 0); !errors.Is(err, ErrInvalidArgs) {
		t.Errorf("0 blocks: %v", err)
	}
}

func TestHotnessIndexSimilarAcrossPolicies(t *testing.T) {
	// Figure 15: RR and EAR have almost identical hotness index H.
	top, err := topology.New(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := placement.Config{Topology: top, K: 10, N: 14}
	rr, err := placement.NewRandom(cfg, rand.New(rand.NewSource(25)))
	if err != nil {
		t.Fatal(err)
	}
	earPol, err := placement.NewEAR(cfg, rand.New(rand.NewSource(26)))
	if err != nil {
		t.Fatal(err)
	}
	hRR, err := HotnessIndex(rr, top, 2000)
	if err != nil {
		t.Fatalf("HotnessIndex rr: %v", err)
	}
	hEAR, err := HotnessIndex(earPol, top, 2000)
	if err != nil {
		t.Fatalf("HotnessIndex ear: %v", err)
	}
	// Uniform load would be 0.05; both policies should be close.
	for name, h := range map[string]float64{"rr": hRR, "ear": hEAR} {
		if h < 0.05 || h > 0.08 {
			t.Errorf("%s hotness = %.4f, want within [0.05, 0.08] for 2000 blocks", name, h)
		}
	}
	if math.Abs(hRR-hEAR) > 0.015 {
		t.Errorf("hotness differs: rr %.4f vs ear %.4f", hRR, hEAR)
	}
	if _, err := HotnessIndex(rr, top, 0); !errors.Is(err, ErrInvalidArgs) {
		t.Errorf("file size 0: %v", err)
	}
}

func TestHotnessShrinksWithFileSize(t *testing.T) {
	// Larger files smooth out load: H approaches the uniform 1/R.
	top, err := topology.New(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := placement.Config{Topology: top, K: 10, N: 14}
	pol, err := placement.NewRandom(cfg, rand.New(rand.NewSource(27)))
	if err != nil {
		t.Fatal(err)
	}
	hSmall, err := HotnessIndex(pol, top, 20)
	if err != nil {
		t.Fatal(err)
	}
	hLarge, err := HotnessIndex(pol, top, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if hLarge >= hSmall {
		t.Errorf("H should shrink with file size: small %.4f, large %.4f", hSmall, hLarge)
	}
}
