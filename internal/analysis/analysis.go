// Package analysis implements the paper's closed-form analyses and
// Monte-Carlo studies: Equation (1) for the probability that the
// preliminary EAR violates rack-level fault tolerance (Figure 3), the
// Theorem 1 bound on EAR's expected layout iterations, and the Section V-C
// load-balancing experiments (storage distribution, Figure 14, and the read
// hotness index H, Figure 15).
package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ear/internal/placement"
	"ear/internal/topology"
)

// ErrInvalidArgs indicates out-of-range analysis parameters.
var ErrInvalidArgs = errors.New("analysis: invalid arguments")

// ViolationProbability evaluates Equation (1): the probability that a
// stripe placed by the preliminary EAR (first replicas in the core rack,
// second and third replicas in one random non-core rack per block) violates
// rack-level fault tolerance and requires relocation:
//
//	f = 1 - [ C(R-1, k)·k! + C(k, 2)·C(R-1, k-1)·(k-1)! ] / (R-1)^k
//
// The stripe survives only when the k remote racks are all distinct, or
// exactly two blocks share one rack (k-1 distinct racks).
func ViolationProbability(k, racks int) (float64, error) {
	if k < 1 || racks < 2 {
		return 0, fmt.Errorf("%w: k=%d racks=%d", ErrInvalidArgs, k, racks)
	}
	r1 := racks - 1
	// All terms in log space: the factorials overflow quickly otherwise.
	logDen := float64(k) * math.Log(float64(r1))
	var ok float64
	if r1 >= k {
		// C(R-1, k) * k! = (R-1)! / (R-1-k)! — falling factorial.
		ok += math.Exp(logFallingFactorial(r1, k) - logDen)
	}
	if k >= 2 && r1 >= k-1 {
		// C(k, 2) * C(R-1, k-1) * (k-1)!
		logTerm := math.Log(float64(k*(k-1)/2)) + logFallingFactorial(r1, k-1)
		ok += math.Exp(logTerm - logDen)
	}
	f := 1 - ok
	if f < 0 {
		f = 0
	}
	return f, nil
}

// logFallingFactorial returns log(n * (n-1) * ... * (n-k+1)).
func logFallingFactorial(n, k int) float64 {
	var s float64
	for i := 0; i < k; i++ {
		s += math.Log(float64(n - i))
	}
	return s
}

// Theorem1Bound returns the paper's bound on the expected number of layout
// iterations for the i-th block of a stripe (1-based):
//
//	E_i <= [ 1 - floor((i-1)/c) / (R-1) ]^-1
func Theorem1Bound(i, c, racks int) (float64, error) {
	if i < 1 || c < 1 || racks < 2 {
		return 0, fmt.Errorf("%w: i=%d c=%d racks=%d", ErrInvalidArgs, i, c, racks)
	}
	full := (i - 1) / c
	denom := 1 - float64(full)/float64(racks-1)
	if denom <= 0 {
		return math.Inf(1), nil
	}
	return 1 / denom, nil
}

// MonteCarloViolation estimates the rack-fault-tolerance violation
// probability of the preliminary EAR empirically: it places stripes with
// the flow check disabled and asks the post-encoding planner whether a
// valid deletion exists. The result should track Equation (1).
func MonteCarloViolation(k, racks, nodesPerRack, stripes int, rng *rand.Rand) (float64, error) {
	top, err := topology.New(racks, nodesPerRack)
	if err != nil {
		return 0, err
	}
	cfg := placement.Config{
		Topology:    top,
		K:           k,
		N:           k + 1, // the (k+1, k) setting of Section III-A's analysis
		C:           1,
		Preliminary: true,
	}
	pol, err := placement.NewEAR(cfg, rng)
	if err != nil {
		return 0, err
	}
	violations := 0
	checked := 0
	var block topology.BlockID
	for checked < stripes {
		if _, err := pol.Place(block); err != nil {
			return 0, err
		}
		block++
		for _, s := range pol.TakeSealed() {
			plan, err := placement.PlanPostEncoding(cfg, s, rng)
			if err != nil {
				return 0, err
			}
			if plan.Violation {
				violations++
			}
			checked++
			if checked == stripes {
				break
			}
		}
	}
	return float64(violations) / float64(stripes), nil
}

// IterationStats measures EAR's empirical layout-iteration counts per block
// index over the given number of stripes, for comparison with Theorem 1.
// The returned slice has k entries; entry i is the mean iteration count for
// the (i+1)-th block of a stripe.
func IterationStats(n, k, c, racks, nodesPerRack, stripes int, rng *rand.Rand) ([]float64, error) {
	top, err := topology.New(racks, nodesPerRack)
	if err != nil {
		return nil, err
	}
	cfg := placement.Config{Topology: top, K: k, N: n, C: c}
	pol, err := placement.NewEAR(cfg, rng)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, k)
	counts := make([]float64, k)
	done := 0
	var block topology.BlockID
	for done < stripes {
		if _, err := pol.Place(block); err != nil {
			return nil, err
		}
		block++
		for _, s := range pol.TakeSealed() {
			for i, it := range s.Iterations {
				sums[i] += float64(it)
				counts[i]++
			}
			done++
			if done == stripes {
				break
			}
		}
	}
	means := make([]float64, k)
	for i := range means {
		if counts[i] > 0 {
			means[i] = sums[i] / counts[i]
		}
	}
	return means, nil
}

// StorageBalance runs the Figure 14 experiment: place the given number of
// blocks under a policy and return the per-rack share of replicas, sorted
// in descending order (fractions summing to 1).
func StorageBalance(pol placement.Policy, top *topology.Topology, blocks int) ([]float64, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("%w: %d blocks", ErrInvalidArgs, blocks)
	}
	counts := make([]float64, top.Racks())
	total := 0.0
	for b := 0; b < blocks; b++ {
		pl, err := pol.Place(topology.BlockID(b))
		if err != nil {
			return nil, err
		}
		for _, n := range pl.Nodes {
			r, err := top.RackOf(n)
			if err != nil {
				return nil, err
			}
			counts[r]++
			total++
		}
	}
	for i := range counts {
		counts[i] /= total
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	return counts, nil
}

// HotnessIndex runs the Figure 15 experiment for one file of the given size
// (in blocks): every block is equally likely to be read and a read goes to
// a uniformly chosen rack among those holding a replica, so rack i receives
// load L(i) = sum over blocks of 1/(racks holding the block) / fileSize.
// The hotness index is H = max_i L(i).
func HotnessIndex(pol placement.Policy, top *topology.Topology, fileSize int) (float64, error) {
	if fileSize <= 0 {
		return 0, fmt.Errorf("%w: file size %d", ErrInvalidArgs, fileSize)
	}
	load := make([]float64, top.Racks())
	for b := 0; b < fileSize; b++ {
		pl, err := pol.Place(topology.BlockID(b))
		if err != nil {
			return 0, err
		}
		set, err := pl.RackSet(top)
		if err != nil {
			return 0, err
		}
		share := 1.0 / float64(len(set)) / float64(fileSize)
		for r := range set {
			load[r] += share
		}
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max, nil
}
