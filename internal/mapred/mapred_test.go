package mapred

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ear/internal/telemetry"
	"ear/internal/topology"
)

func mustTop(t *testing.T, racks, nodes int) *topology.Topology {
	t.Helper()
	top, err := topology.New(racks, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestNewJobTrackerValidation(t *testing.T) {
	if _, err := NewJobTracker(mustTop(t, 2, 2), 0); err == nil {
		t.Error("0 slots: expected error")
	}
}

func TestSubmitRunsAllTasks(t *testing.T) {
	jt, err := NewJobTracker(mustTop(t, 2, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	var mu sync.Mutex
	ran := map[string]bool{}
	job := Job{Name: "j"}
	for _, name := range []string{"t1", "t2", "t3"} {
		name := name
		job.Tasks = append(job.Tasks, &Task{
			Name:      name,
			Preferred: AnyNode,
			Run: func(_ context.Context, on topology.NodeID) error {
				mu.Lock()
				ran[name] = true
				mu.Unlock()
				return nil
			},
		})
	}
	placements, err := jt.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(placements) != 3 || len(ran) != 3 {
		t.Fatalf("placements %d, ran %d", len(placements), len(ran))
	}
	if jt.FreeSlots() != 8 {
		t.Errorf("FreeSlots = %d, want 8 after completion", jt.FreeSlots())
	}
}

func TestPreferredNodeHonoredWhenFree(t *testing.T) {
	jt, err := NewJobTracker(mustTop(t, 3, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	job := Job{Name: "local", Tasks: []*Task{{
		Name:      "t",
		Preferred: 4,
		Run:       func(_ context.Context, on topology.NodeID) error { return nil },
	}}}
	placements, err := jt.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if placements[0].Node != 4 || !placements[0].Local || !placements[0].Rack {
		t.Fatalf("placement = %+v, want node 4 local", placements[0])
	}
}

func TestRackFallback(t *testing.T) {
	// Occupy the preferred node's only slot; the task must land on a
	// same-rack node.
	top := mustTop(t, 2, 3) // rack 0: nodes 0-2
	jt, err := NewJobTracker(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	blocker := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := jt.Submit(Job{Name: "hog", Tasks: []*Task{{
			Name:      "hog",
			Preferred: 1,
			Run: func(_ context.Context, on topology.NodeID) error {
				close(started)
				<-blocker
				return nil
			},
		}}})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started
	placements, err := jt.Submit(Job{Name: "task", Tasks: []*Task{{
		Name:      "t",
		Preferred: 1,
		Run:       func(_ context.Context, on topology.NodeID) error { return nil },
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if placements[0].Local {
		t.Error("task should not be local (slot busy)")
	}
	if !placements[0].Rack {
		t.Errorf("task ran on node %d, want same rack as 1", placements[0].Node)
	}
	close(blocker)
	wg.Wait()
}

func TestStrictRackWaitsInsteadOfSpilling(t *testing.T) {
	// All slots in rack 0 busy: a strict task waits; a non-strict task
	// spills to another rack immediately.
	top := mustTop(t, 2, 1) // 1 node per rack
	jt, err := NewJobTracker(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	release := make(chan struct{})
	hogStarted := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = jt.Submit(Job{Name: "hog", Tasks: []*Task{{
			Name: "hog", Preferred: 0,
			Run: func(_ context.Context, on topology.NodeID) error {
				close(hogStarted)
				<-release
				return nil
			},
		}}})
	}()
	<-hogStarted

	// Non-strict spills to node 1 (rack 1).
	placements, err := jt.Submit(Job{Name: "spill", Tasks: []*Task{{
		Name: "s", Preferred: 0,
		Run: func(_ context.Context, on topology.NodeID) error { return nil },
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if placements[0].Node != 1 {
		t.Errorf("non-strict ran on %d, want spill to 1", placements[0].Node)
	}

	// Strict waits until the hog releases.
	strictDone := make(chan Placement, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		pl, err := jt.Submit(Job{Name: "strict", Tasks: []*Task{{
			Name: "st", Preferred: 0, StrictRack: true,
			Run: func(_ context.Context, on topology.NodeID) error { return nil },
		}}})
		if err != nil {
			t.Error(err)
			return
		}
		strictDone <- pl[0]
	}()
	select {
	case <-strictDone:
		t.Fatal("strict task ran while rack was full")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case pl := <-strictDone:
		if pl.Node != 0 {
			t.Errorf("strict ran on %d, want 0", pl.Node)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("strict task never ran after release")
	}
	wg.Wait()
}

func TestSubmitErrors(t *testing.T) {
	jt, err := NewJobTracker(mustTop(t, 2, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = jt.Submit(Job{Name: "bad", Tasks: []*Task{
		{Name: "ok", Preferred: AnyNode, Run: func(context.Context, topology.NodeID) error { return nil }},
		{Name: "fail", Preferred: AnyNode, Run: func(context.Context, topology.NodeID) error { return boom }},
	}})
	if !errors.Is(err, boom) {
		t.Errorf("Submit error = %v, want boom", err)
	}
	if _, err := jt.Submit(Job{Name: "nil", Tasks: []*Task{nil}}); !errors.Is(err, ErrBadTask) {
		t.Errorf("nil task: %v", err)
	}
	if _, err := jt.Submit(Job{Name: "nobody", Tasks: []*Task{{Name: "x"}}}); !errors.Is(err, ErrBadTask) {
		t.Errorf("nil Run: %v", err)
	}
	_, err = jt.Submit(Job{Name: "strictany", Tasks: []*Task{{
		Name: "x", Preferred: AnyNode, StrictRack: true,
		Run: func(context.Context, topology.NodeID) error { return nil },
	}}})
	if !errors.Is(err, ErrBadTask) {
		t.Errorf("strict without preferred: %v", err)
	}
	_, err = jt.Submit(Job{Name: "badpref", Tasks: []*Task{{
		Name: "x", Preferred: 99,
		Run: func(context.Context, topology.NodeID) error { return nil },
	}}})
	if !errors.Is(err, ErrBadTask) {
		t.Errorf("bad preferred node: %v", err)
	}
	jt.Close()
	if _, err := jt.Submit(Job{Name: "late"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v", err)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	top := mustTop(t, 1, 1)
	jt, err := NewJobTracker(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = jt.Submit(Job{Name: "hog", Tasks: []*Task{{
			Name: "h", Preferred: 0,
			Run: func(context.Context, topology.NodeID) error {
				close(started)
				<-release
				return nil
			},
		}}})
	}()
	<-started
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := jt.Submit(Job{Name: "waiter", Tasks: []*Task{{
			Name: "w", Preferred: 0, StrictRack: true,
			Run: func(context.Context, topology.NodeID) error { return nil },
		}}})
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	jt.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("waiter error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by Close")
	}
	close(release)
	wg.Wait()
}

func TestConcurrentJobsShareSlots(t *testing.T) {
	top := mustTop(t, 2, 2)
	jt, err := NewJobTracker(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	task := func(context.Context, topology.NodeID) error {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return nil
	}
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]*Task, 4)
			for i := range tasks {
				tasks[i] = &Task{Name: "t", Preferred: AnyNode, Run: task}
			}
			if _, err := jt.Submit(Job{Name: "j", Tasks: tasks}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if maxInFlight > 8 {
		t.Errorf("max in-flight %d exceeds 8 total slots", maxInFlight)
	}
	if maxInFlight < 3 {
		t.Errorf("max in-flight %d: no parallelism observed", maxInFlight)
	}
}

func TestGenerateSwim(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	jobs, err := GenerateSwim(SwimConfig{Jobs: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 50 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	var prev time.Duration
	for i, j := range jobs {
		if j.Arrival < prev {
			t.Fatalf("job %d arrives before predecessor", i)
		}
		prev = j.Arrival
		if j.InputBlocks < 1 || j.Maps < 1 || j.Maps > 8 {
			t.Fatalf("job %d malformed: %+v", i, j)
		}
		if j.ShuffleMB < 0 || j.OutputBlocks < 0 {
			t.Fatalf("job %d negative volume: %+v", i, j)
		}
	}
	// Heavy-tailed inputs: some variety expected.
	small, big := 0, 0
	for _, j := range jobs {
		if j.InputBlocks <= 2 {
			small++
		}
		if j.InputBlocks >= 8 {
			big++
		}
	}
	if small == 0 || big == 0 {
		t.Errorf("workload not heavy-tailed: %d small, %d big", small, big)
	}
	// Reproducibility.
	again, err := GenerateSwim(SwimConfig{Jobs: 50}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
}

func TestGenerateSwimValidation(t *testing.T) {
	if _, err := GenerateSwim(SwimConfig{Jobs: -1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative jobs: expected error")
	}
	if _, err := GenerateSwim(SwimConfig{}, nil); err == nil {
		t.Error("nil rng: expected error")
	}
}

func TestJobTrackerTelemetry(t *testing.T) {
	top := mustTop(t, 2, 2)
	jt, err := NewJobTracker(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	reg := telemetry.NewRegistry()
	jt.SetTelemetry(reg)

	if got := reg.Gauge("mapred_slots_total", "").With().Value(); got != 4 {
		t.Errorf("mapred_slots_total = %g, want 4", got)
	}

	busy := reg.Gauge("mapred_slots_busy", "").With()
	release := make(chan struct{})
	var job Job
	for i := 0; i < 4; i++ {
		job.Tasks = append(job.Tasks, &Task{
			Name:      "t",
			Preferred: 0, // all prefer node 0: three run rack/remote
			Run: func(context.Context, topology.NodeID) error {
				<-release
				return nil
			},
		})
	}
	done := make(chan error, 1)
	go func() {
		_, err := jt.Submit(job)
		done <- err
	}()
	// Wait until every slot is claimed.
	deadline := time.Now().Add(5 * time.Second)
	for busy.Value() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("slots busy = %g, want 4", busy.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := busy.Value(); got != 0 {
		t.Errorf("busy after completion = %g, want 0", got)
	}
	if got := reg.Gauge("mapred_tasks_waiting", "").With().Value(); got != 0 {
		t.Errorf("waiting after completion = %g, want 0", got)
	}
	loc := reg.Counter("mapred_tasks_total", "", "locality")
	total := loc.With("node").Value() + loc.With("rack").Value() + loc.With("remote").Value()
	if total != 4 {
		t.Errorf("locality totals = %g, want 4", total)
	}
	if loc.With("node").Value() != 1 {
		t.Errorf("node-local = %g, want 1", loc.With("node").Value())
	}
}

func TestSubmitCtxCancelWakesSlotWaiters(t *testing.T) {
	top := mustTop(t, 1, 1)
	jt, err := NewJobTracker(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = jt.Submit(Job{Name: "hog", Tasks: []*Task{{
			Name: "h", Preferred: 0,
			Run: func(_ context.Context, _ topology.NodeID) error {
				close(started)
				<-release
				return nil
			},
		}}})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := jt.SubmitCtx(ctx, Job{Name: "waiter", Tasks: []*Task{{
			Name: "w", Preferred: 0, StrictRack: true,
			Run: func(context.Context, topology.NodeID) error { return nil },
		}}})
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slot waiter not woken by context cancellation")
	}
	close(release)
	wg.Wait()
}

func TestTaskFailureCancelsJobContext(t *testing.T) {
	jt, err := NewJobTracker(mustTop(t, 2, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	boom := errors.New("boom")
	sawCancel := make(chan struct{}, 1)
	_, err = jt.Submit(Job{Name: "j", Tasks: []*Task{
		{Name: "fail", Preferred: AnyNode, Run: func(context.Context, topology.NodeID) error { return boom }},
		{Name: "watch", Preferred: AnyNode, Run: func(ctx context.Context, _ topology.NodeID) error {
			select {
			case <-ctx.Done():
				sawCancel <- struct{}{}
				return nil
			case <-time.After(5 * time.Second):
				return errors.New("job context not canceled after sibling failure")
			}
		}},
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("Submit = %v, want boom", err)
	}
	select {
	case <-sawCancel:
	default:
		t.Error("sibling task never observed the cancellation")
	}
}
