package mapred

import (
	"fmt"
	"math/rand"
	"time"

	"ear/internal/stats"
)

// SwimJob describes one synthetic MapReduce job in the style of SWIM, the
// Facebook-trace workload replay tool the paper's Experiment A.3 uses: an
// arrival offset and the input, shuffle, and output data volumes.
type SwimJob struct {
	Name    string
	Arrival time.Duration
	// InputBlocks to read from the CFS, ShuffleMB to move between nodes,
	// OutputBlocks to write back.
	InputBlocks  int
	ShuffleMB    float64
	OutputBlocks int
	// Maps is the number of map tasks the job fans out to.
	Maps int
}

// SwimConfig parameterizes the generator. The defaults follow the shape of
// the 2009 Facebook trace SWIM ships: most jobs are small, sizes are
// heavy-tailed (log-normal), and arrivals form a Poisson process.
type SwimConfig struct {
	Jobs int
	// MeanInterarrival between job submissions.
	MeanInterarrival time.Duration
	// Log-normal parameters (of the underlying normal) for input size in
	// blocks; shuffle and output are derived with per-job ratios.
	InputMu, InputSigma float64
	// ShuffleRatio and OutputRatio scale input volume into shuffle MB and
	// output blocks; both get log-normal jitter.
	ShuffleRatio, OutputRatio float64
	// BlockSizeMB converts blocks to MB for the shuffle computation.
	BlockSizeMB float64
	// MapsPerJob caps fan-out; 0 derives it from input size.
	MapsPerJob int
}

// withDefaults fills unset fields.
func (c SwimConfig) withDefaults() SwimConfig {
	if c.Jobs == 0 {
		c.Jobs = 50
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 2 * time.Second
	}
	if c.InputMu == 0 {
		c.InputMu = 1.2 // median ~3.3 blocks
	}
	if c.InputSigma == 0 {
		c.InputSigma = 1.0
	}
	if c.ShuffleRatio == 0 {
		c.ShuffleRatio = 0.4
	}
	if c.OutputRatio == 0 {
		c.OutputRatio = 0.3
	}
	if c.BlockSizeMB == 0 {
		c.BlockSizeMB = 64
	}
	return c
}

// GenerateSwim produces a reproducible synthetic workload.
func GenerateSwim(cfg SwimConfig, rng *rand.Rand) ([]SwimJob, error) {
	cfg = cfg.withDefaults()
	if cfg.Jobs < 0 {
		return nil, fmt.Errorf("mapred: negative job count %d", cfg.Jobs)
	}
	if rng == nil {
		return nil, fmt.Errorf("mapred: nil rng")
	}
	jobs := make([]SwimJob, 0, cfg.Jobs)
	var clock time.Duration
	for i := 0; i < cfg.Jobs; i++ {
		clock += time.Duration(stats.Exponential(rng, float64(cfg.MeanInterarrival)))
		in := int(stats.LogNormal(rng, cfg.InputMu, cfg.InputSigma))
		if in < 1 {
			in = 1
		}
		shuffle := float64(in) * cfg.BlockSizeMB * cfg.ShuffleRatio * stats.LogNormal(rng, 0, 0.5)
		out := int(float64(in) * cfg.OutputRatio * stats.LogNormal(rng, 0, 0.5))
		maps := cfg.MapsPerJob
		if maps == 0 {
			maps = in
			if maps > 8 {
				maps = 8
			}
		}
		jobs = append(jobs, SwimJob{
			Name:         fmt.Sprintf("swim-%03d", i),
			Arrival:      clock,
			InputBlocks:  in,
			ShuffleMB:    shuffle,
			OutputBlocks: out,
			Maps:         maps,
		})
	}
	return jobs, nil
}
