// Package mapred is a miniature map-only MapReduce framework reproducing
// the scheduling behaviour the paper's HDFS integration relies on (Section
// IV): a JobTracker assigns map tasks to per-node TaskTracker slots,
// honoring a task's preferred node by locality (node, then rack, then
// anywhere), and an "encoding job" flag that restricts a task strictly to
// the preferred node's rack — the paper's third HDFS modification, which
// guarantees EAR's encoding maps run inside the core rack.
package mapred

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ear/internal/events"
	"ear/internal/telemetry"
	"ear/internal/topology"
	"ear/internal/workgroup"
)

// Errors returned by the package.
var (
	// ErrClosed indicates a Submit after Close.
	ErrClosed = errors.New("mapred: job tracker closed")
	// ErrBadTask indicates an unrunnable task definition.
	ErrBadTask = errors.New("mapred: bad task")
)

// AnyNode marks a task with no placement preference.
const AnyNode topology.NodeID = -1

// Task is one map task. Run receives the job's context and the node the
// scheduler placed it on; the context is canceled when the submission's
// context is canceled or another task of the job fails, and task bodies
// should pass it into any shaped transfers so in-flight work aborts.
type Task struct {
	Name string
	// Preferred is the node the task would like to run on (AnyNode for no
	// preference). The scheduler falls back to the preferred node's rack,
	// then to any node — unless StrictRack pins it to the rack.
	Preferred topology.NodeID
	// StrictRack confines the task to the preferred node's rack, the
	// encoding-job flag of Section IV-B.
	StrictRack bool
	Run        func(ctx context.Context, ranOn topology.NodeID) error
}

// Job is a named set of map tasks (map-only: no reduce phase, like the
// HDFS-RAID encoding jobs).
type Job struct {
	Name  string
	Tasks []*Task
}

// Placement records where a task ran, for locality assertions in tests and
// experiments.
type Placement struct {
	Task  string
	Node  topology.NodeID
	Local bool // ran on the preferred node
	Rack  bool // ran in the preferred node's rack
}

// JobTracker schedules tasks onto per-node slots. Multiple Submit calls may
// run concurrently; slots are shared across jobs.
type JobTracker struct {
	top          *topology.Topology
	slotsPerNode int

	mu     sync.Mutex
	cond   *sync.Cond
	free   []int // free slots per node
	closed bool

	// Telemetry handles, set by SetTelemetry (guarded by mu); nil when
	// unobserved.
	mWaiting  *telemetry.Metric
	mBusy     *telemetry.Metric
	mLocality *telemetry.Vec

	// jrn is the cluster event journal (atomic so installation never races
	// with in-flight submissions; nil means unjournaled).
	jrn atomic.Pointer[events.Journal]
}

// NewJobTracker creates a tracker with the given map slots per node (the
// paper's Experiment A.3 configures four).
func NewJobTracker(top *topology.Topology, slotsPerNode int) (*JobTracker, error) {
	if slotsPerNode <= 0 {
		return nil, fmt.Errorf("mapred: slots per node must be positive, got %d", slotsPerNode)
	}
	jt := &JobTracker{
		top:          top,
		slotsPerNode: slotsPerNode,
		free:         make([]int, top.Nodes()),
	}
	for i := range jt.free {
		jt.free[i] = slotsPerNode
	}
	jt.cond = sync.NewCond(&jt.mu)
	return jt, nil
}

// SetTelemetry publishes the tracker's scheduling metrics into the
// registry: mapred_tasks_waiting (queue depth), mapred_slots_busy and
// mapred_slots_total (slot utilization), and mapred_tasks_total{locality}
// (locality hit rate: node / rack / remote / any). Call it before
// submitting jobs.
func (jt *JobTracker) SetTelemetry(reg *telemetry.Registry) {
	waiting := reg.Gauge("mapred_tasks_waiting",
		"Map tasks blocked waiting for a compatible slot.").With()
	busy := reg.Gauge("mapred_slots_busy",
		"Map slots currently running tasks.").With()
	reg.Gauge("mapred_slots_total",
		"Configured map slots across the cluster.").With().
		Set(float64(jt.slotsPerNode * jt.top.Nodes()))
	locality := reg.Counter("mapred_tasks_total",
		"Scheduled map tasks by achieved locality (node, rack, remote, any).", "locality")
	jt.mu.Lock()
	jt.mWaiting, jt.mBusy, jt.mLocality = waiting, busy, locality
	jt.mu.Unlock()
}

// SetJournal installs the cluster event journal; every task placement
// publishes a TaskScheduled event into it. nil detaches.
func (jt *JobTracker) SetJournal(j *events.Journal) { jt.jrn.Store(j) }

// noteScheduled records a task placement's locality class.
func (jt *JobTracker) noteScheduled(t *Task, pl Placement) {
	jt.mu.Lock()
	locality := jt.mLocality
	jt.mu.Unlock()
	level := "remote"
	switch {
	case t.Preferred == AnyNode:
		level = "any"
	case pl.Local:
		level = "node"
	case pl.Rack:
		level = "rack"
	}
	if j := jt.jrn.Load(); j != nil {
		ev := events.New(events.TaskScheduled, "mapred")
		ev.Node = pl.Node
		ev.Detail = pl.Task + " locality=" + level
		j.Publish(ev)
	}
	if locality == nil {
		return
	}
	locality.With(level).Inc()
}

// Close rejects future submissions and wakes any waiting tasks so they can
// observe the shutdown. In-flight tasks complete.
func (jt *JobTracker) Close() {
	jt.mu.Lock()
	jt.closed = true
	jt.mu.Unlock()
	jt.cond.Broadcast()
}

// acquire blocks until a slot compatible with the task is free, claims it,
// and returns the node. It prefers the exact node, then the rack, then (for
// non-strict tasks) any node. A canceled context aborts the wait (SubmitCtx
// broadcasts the condition variable on cancellation).
func (jt *JobTracker) acquire(ctx context.Context, t *Task) (topology.NodeID, error) {
	var rackNodes []topology.NodeID
	if t.Preferred != AnyNode {
		rack, err := jt.top.RackOf(t.Preferred)
		if err != nil {
			return 0, fmt.Errorf("%w: %q preferred node: %v", ErrBadTask, t.Name, err)
		}
		rackNodes, err = jt.top.NodesInRack(rack)
		if err != nil {
			return 0, err
		}
	} else if t.StrictRack {
		return 0, fmt.Errorf("%w: %q strict without preferred node", ErrBadTask, t.Name)
	}

	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.mWaiting != nil {
		jt.mWaiting.Inc()
		defer jt.mWaiting.Dec()
	}
	for {
		if jt.closed {
			return 0, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if t.Preferred != AnyNode && jt.free[t.Preferred] > 0 {
			return jt.grant(t.Preferred), nil
		}
		if t.Preferred != AnyNode {
			for _, n := range rackNodes {
				if jt.free[n] > 0 {
					return jt.grant(n), nil
				}
			}
		}
		if !t.StrictRack {
			for n := range jt.free {
				if jt.free[n] > 0 {
					return jt.grant(topology.NodeID(n)), nil
				}
			}
		}
		jt.cond.Wait()
	}
}

// grant claims one slot on n. The caller holds jt.mu.
func (jt *JobTracker) grant(n topology.NodeID) topology.NodeID {
	jt.free[n]--
	if jt.mBusy != nil {
		jt.mBusy.Inc()
	}
	return n
}

// release frees the slot on node n.
func (jt *JobTracker) release(n topology.NodeID) {
	jt.mu.Lock()
	jt.free[n]++
	if jt.mBusy != nil {
		jt.mBusy.Dec()
	}
	jt.mu.Unlock()
	jt.cond.Broadcast()
}

// Submit runs every task of the job and blocks until all finish, returning
// the first task error along with where each task executed.
func (jt *JobTracker) Submit(job Job) ([]Placement, error) {
	return jt.SubmitCtx(context.Background(), job)
}

// SubmitCtx is Submit under a context: the first task failure — or a
// cancellation of ctx — cancels the job context handed to every task, so
// running tasks can abort their in-flight transfers and tasks still waiting
// for a slot give up instead of running. Placements are recorded for the
// tasks that were actually scheduled.
func (jt *JobTracker) SubmitCtx(ctx context.Context, job Job) ([]Placement, error) {
	jt.mu.Lock()
	if jt.closed {
		jt.mu.Unlock()
		return nil, ErrClosed
	}
	jt.mu.Unlock()
	for i, t := range job.Tasks {
		if t == nil || t.Run == nil {
			return nil, fmt.Errorf("%w: job %q task %d has no body", ErrBadTask, job.Name, i)
		}
	}

	g, jobCtx := workgroup.WithContext(ctx)
	// Slot waiters block on the condition variable; wake them when the job
	// context dies so they observe the cancellation.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-jobCtx.Done():
			// Take the lock so a waiter that checked the context but has
			// not yet parked on the condition variable cannot miss the wake.
			jt.mu.Lock()
			jt.cond.Broadcast()
			jt.mu.Unlock()
		case <-watchDone:
		}
	}()
	placements := make([]Placement, len(job.Tasks))
	for i, t := range job.Tasks {
		i, t := i, t
		g.Go(func() error {
			node, err := jt.acquire(jobCtx, t)
			if err != nil {
				return err
			}
			defer jt.release(node)
			pl := Placement{Task: t.Name, Node: node}
			if t.Preferred != AnyNode {
				pl.Local = node == t.Preferred
				same, err := jt.top.SameRack(node, t.Preferred)
				if err == nil {
					pl.Rack = same
				}
			}
			placements[i] = pl
			jt.noteScheduled(t, pl)
			return t.Run(jobCtx, node)
		})
	}
	err := g.Wait()
	close(watchDone)
	if err != nil {
		return placements, fmt.Errorf("job %q: %w", job.Name, err)
	}
	return placements, nil
}

// FreeSlots returns the current total free slots (diagnostics).
func (jt *JobTracker) FreeSlots() int {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	total := 0
	for _, f := range jt.free {
		total += f
	}
	return total
}
