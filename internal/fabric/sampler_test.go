package fabric

import (
	"testing"
	"time"
)

func TestSamplerRecordsTraffic(t *testing.T) {
	f, err := New(mustTop(t, 2, 2), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, 5*time.Millisecond)
	s.Start()
	payload := make([]byte, 1<<20)
	if _, err := f.Transfer(0, 3, payload); err != nil { // cross-rack
		t.Fatal(err)
	}
	if _, err := f.Transfer(0, 1, payload); err != nil { // intra-rack
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond)
	s.Stop()

	tl := s.Timeline()
	if tl.DurationSeconds <= 0 {
		t.Fatalf("duration = %g", tl.DurationSeconds)
	}
	if tl.IntervalSeconds != 0.005 {
		t.Errorf("interval = %g, want 0.005", tl.IntervalSeconds)
	}
	if len(tl.Links) == 0 {
		t.Fatal("no link series recorded")
	}
	sum := func(pts []SamplePoint) float64 {
		var mb float64
		for i, p := range pts {
			dt := p.T
			if i > 0 {
				dt = p.T - pts[i-1].T
			}
			mb += p.MBps * dt
		}
		return mb
	}
	// Integrating the throughput series recovers the bytes moved: 1 MiB each
	// way (float sums over tiny intervals; allow 1% slack).
	if got := sum(tl.CrossRack); got < 0.99 || got > 1.01 {
		t.Errorf("integrated cross-rack = %g MB, want 1", got)
	}
	if got := sum(tl.IntraRack); got < 0.99 || got > 1.01 {
		t.Errorf("integrated intra-rack = %g MB, want 1", got)
	}
	for _, l := range tl.Links {
		for _, p := range l.Points {
			if p.T < 0 || p.T > tl.DurationSeconds+0.001 {
				t.Fatalf("link %s point at t=%g outside [0, %g]", l.Name, p.T, tl.DurationSeconds)
			}
		}
	}
}

func TestSamplerStartStopIdempotent(t *testing.T) {
	f, err := New(mustTop(t, 1, 2), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(f, time.Millisecond)
	s.Stop() // never started: no-op
	s.Start()
	s.Start() // second start: no-op
	s.Stop()
	s.Stop() // second stop: no-op
	if tl := s.Timeline(); tl.DurationSeconds < 0 {
		t.Errorf("duration = %g", tl.DurationSeconds)
	}
}

func TestTimelineMerge(t *testing.T) {
	a := Timeline{
		IntervalSeconds: 0.05,
		DurationSeconds: 1,
		Links: []LinkTimeline{
			{Name: "n0-up", Points: []SamplePoint{{T: 0.5, MBps: 2}}},
		},
		CrossRack: []SamplePoint{{T: 0.5, MBps: 2}},
	}
	b := Timeline{
		IntervalSeconds: 0.05,
		DurationSeconds: 2,
		Links: []LinkTimeline{
			{Name: "n0-up", Points: []SamplePoint{{T: 0.25, MBps: 4}}},
			{Name: "n1-up", Points: []SamplePoint{{T: 1, MBps: 8}}},
		},
		IntraRack: []SamplePoint{{T: 0.25, MBps: 4}},
	}
	a.Merge(b, 3)

	if a.DurationSeconds != 5 {
		t.Errorf("merged duration = %g, want 5 (offset 3 + 2)", a.DurationSeconds)
	}
	if len(a.Links) != 2 {
		t.Fatalf("merged links = %d, want 2", len(a.Links))
	}
	var n0 *LinkTimeline
	for i := range a.Links {
		if a.Links[i].Name == "n0-up" {
			n0 = &a.Links[i]
		}
	}
	if n0 == nil || len(n0.Points) != 2 {
		t.Fatalf("n0-up series not merged: %+v", a.Links)
	}
	if n0.Points[1].T != 3.25 {
		t.Errorf("merged point at t=%g, want 3.25", n0.Points[1].T)
	}
	if len(a.IntraRack) != 1 || a.IntraRack[0].T != 3.25 {
		t.Errorf("intra-rack series not offset: %+v", a.IntraRack)
	}
	if len(a.CrossRack) != 1 || a.CrossRack[0].T != 0.5 {
		t.Errorf("original cross-rack series disturbed: %+v", a.CrossRack)
	}
}
