package fabric

import (
	"sync"
	"time"
)

// DefaultSampleInterval is the sampler's polling period when none is given:
// fine enough to resolve the phases of a scaled-testbed encode run, coarse
// enough that a multi-second experiment stays within a few hundred points
// per link.
const DefaultSampleInterval = 50 * time.Millisecond

// SamplePoint is one utilization sample of one link.
type SamplePoint struct {
	// T is seconds since the sampler started.
	T float64 `json:"t"`
	// MBps is the throughput observed over the sample interval, in MB/s.
	MBps float64 `json:"mbps"`
	// Utilization is MBps relative to the link's configured rate at sample
	// time, in [0, 1] (slightly above 1 transiently, as the token bucket
	// drains backlog).
	Utilization float64 `json:"util"`
}

// LinkTimeline is the sampled series of one link.
type LinkTimeline struct {
	Name   string        `json:"name"`
	Class  LinkClass     `json:"class"`
	Points []SamplePoint `json:"points"`
}

// Timeline is the sampler's output: a per-link throughput time series plus
// the payload-level cross/intra series, the time-resolved counterpart of a
// Snapshot delta.
type Timeline struct {
	IntervalSeconds float64        `json:"interval_seconds"`
	DurationSeconds float64        `json:"duration_seconds"`
	Links           []LinkTimeline `json:"links"`
	// CrossRack and IntraRack are cluster-wide payload throughput series.
	CrossRack []SamplePoint `json:"cross_rack"`
	IntraRack []SamplePoint `json:"intra_rack"`
}

// Sampler polls a fabric's link counters on a fixed interval and records
// per-link throughput time series — the instrument behind the earfsd
// /timeline endpoint and the testbed's encoding-traffic figures. Start it,
// run the workload, Stop it, read Timeline.
type Sampler struct {
	f        *Fabric
	interval time.Duration

	mu      sync.Mutex
	started time.Time
	prev    Snapshot
	series  map[string]*LinkTimeline
	order   []string
	cross   []SamplePoint
	intra   []SamplePoint
	elapsed float64

	stop chan struct{}
	done chan struct{}
}

// NewSampler creates a sampler for the fabric (interval <= 0 selects
// DefaultSampleInterval). It does not start polling; call Start.
func NewSampler(f *Fabric, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{f: f, interval: interval, series: make(map[string]*LinkTimeline)}
}

// Start begins polling. Starting an already-started sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.started = time.Now()
	s.prev = s.f.Snapshot()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.sample()
			case <-stop:
				s.sample() // final partial interval
				return
			}
		}
	}()
}

// Stop halts polling after one final sample and waits for the poller to
// exit. Stopping a stopped (or never-started) sampler is a no-op.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// sample records one delta against the previous snapshot.
func (s *Sampler) sample() {
	cur := s.f.Snapshot()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	t := now.Sub(s.started).Seconds()
	dt := t - s.elapsed
	if dt <= 0 {
		return
	}
	d := cur.Sub(s.prev)
	for _, l := range d.Links {
		tl, ok := s.series[l.Name]
		if !ok {
			tl = &LinkTimeline{Name: l.Name, Class: l.Class}
			s.series[l.Name] = tl
			s.order = append(s.order, l.Name)
		}
		mbps := float64(l.MovedBytes) / (1 << 20) / dt
		util := 0.0
		if l.RateBytesPerSec > 0 {
			util = float64(l.MovedBytes) / dt / l.RateBytesPerSec
		}
		tl.Points = append(tl.Points, SamplePoint{T: t, MBps: mbps, Utilization: util})
	}
	s.cross = append(s.cross, SamplePoint{T: t, MBps: float64(d.CrossRackBytes) / (1 << 20) / dt})
	s.intra = append(s.intra, SamplePoint{T: t, MBps: float64(d.IntraRackBytes) / (1 << 20) / dt})
	s.prev = cur
	s.elapsed = t
}

// Timeline returns a copy of everything sampled so far. Safe to call while
// sampling, and after Stop.
func (s *Sampler) Timeline() Timeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Timeline{
		IntervalSeconds: s.interval.Seconds(),
		DurationSeconds: s.elapsed,
	}
	for _, name := range s.order {
		tl := s.series[name]
		out.Links = append(out.Links, LinkTimeline{
			Name:   tl.Name,
			Class:  tl.Class,
			Points: append([]SamplePoint(nil), tl.Points...),
		})
	}
	out.CrossRack = append([]SamplePoint(nil), s.cross...)
	out.IntraRack = append([]SamplePoint(nil), s.intra...)
	return out
}

// Merge folds another timeline's series into this one, offsetting the other
// timeline's points by offsetSeconds — used when an experiment runs several
// clusters back to back and wants one continuous view.
func (t *Timeline) Merge(other Timeline, offsetSeconds float64) {
	shift := func(pts []SamplePoint) []SamplePoint {
		out := make([]SamplePoint, len(pts))
		for i, p := range pts {
			p.T += offsetSeconds
			out[i] = p
		}
		return out
	}
	byName := make(map[string]int, len(t.Links))
	for i, l := range t.Links {
		byName[l.Name] = i
	}
	for _, l := range other.Links {
		pts := shift(l.Points)
		if i, ok := byName[l.Name]; ok {
			t.Links[i].Points = append(t.Links[i].Points, pts...)
		} else {
			t.Links = append(t.Links, LinkTimeline{Name: l.Name, Class: l.Class, Points: pts})
		}
	}
	t.CrossRack = append(t.CrossRack, shift(other.CrossRack)...)
	t.IntraRack = append(t.IntraRack, shift(other.IntraRack)...)
	if end := offsetSeconds + other.DurationSeconds; end > t.DurationSeconds {
		t.DurationSeconds = end
	}
	if t.IntervalSeconds == 0 {
		t.IntervalSeconds = other.IntervalSeconds
	}
}
