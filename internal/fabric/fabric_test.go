package fabric

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ear/internal/telemetry"
	"ear/internal/topology"
)

func mustTop(t *testing.T, racks, nodes int) *topology.Topology {
	t.Helper()
	top, err := topology.New(racks, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestNewLinkValidation(t *testing.T) {
	if _, err := NewLink("x", 0); !errors.Is(err, ErrInvalidRate) {
		t.Errorf("rate 0: %v", err)
	}
	l, err := NewLink("x", 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "x" || l.Rate() != 100 {
		t.Error("accessors wrong")
	}
	if err := l.SetRate(-1); !errors.Is(err, ErrInvalidRate) {
		t.Errorf("SetRate(-1): %v", err)
	}
	if err := l.SetRate(200); err != nil || l.Rate() != 200 {
		t.Errorf("SetRate(200): %v, rate %g", err, l.Rate())
	}
}

func TestTransferDeliversPayload(t *testing.T) {
	f, err := New(mustTop(t, 2, 2), 1<<30) // 1 GB/s: effectively instant
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, rack-aware world")
	got, err := f.Transfer(0, 3, data)
	if err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted")
	}
	// No aliasing.
	got[0] = 'X'
	if data[0] == 'X' {
		t.Fatal("returned slice aliases input")
	}
	if f.CrossRackBytes() != int64(len(data)) {
		t.Errorf("CrossRackBytes = %d", f.CrossRackBytes())
	}
	if _, err := f.Transfer(0, 1, data); err != nil {
		t.Fatal(err)
	}
	if f.IntraRackBytes() != int64(len(data)) {
		t.Errorf("IntraRackBytes = %d", f.IntraRackBytes())
	}
}

func TestTransferLocalIsUnshaped(t *testing.T) {
	f, err := New(mustTop(t, 1, 1), 1) // 1 B/s
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.Transfer(0, 0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Error("local transfer was shaped")
	}
	if f.CrossRackBytes() != 0 || f.IntraRackBytes() != 0 {
		t.Error("local transfer counted as network traffic")
	}
}

func TestTransferShapingDuration(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100 ms.
	f, err := New(mustTop(t, 2, 1), 10<<20)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.Transfer(0, 1, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	got := time.Since(start)
	if got < 70*time.Millisecond || got > 400*time.Millisecond {
		t.Errorf("1MB at 10MB/s took %v, want ~100ms", got)
	}
}

func TestSharedUplinkHalvesThroughput(t *testing.T) {
	// Two nodes of rack 0 send cross-rack concurrently: the shared rack
	// uplink should make each flow take roughly twice as long as alone.
	top := mustTop(t, 2, 2)
	f, err := New(top, 8<<20) // 8 MB/s
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20) // 1 MB: alone ~125ms, shared ~250ms
	var wg sync.WaitGroup
	start := time.Now()
	var errs [2]error
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = f.Transfer(topology.NodeID(i), topology.NodeID(2+i), payload)
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 200*time.Millisecond {
		t.Errorf("two shared flows finished in %v; uplink sharing not enforced", elapsed)
	}
}

func TestTransferBadNodes(t *testing.T) {
	f, err := New(mustTop(t, 2, 2), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Transfer(0, 99, nil); err == nil {
		t.Error("bad dst: expected error")
	}
	if _, err := f.Transfer(99, 0, nil); err == nil {
		t.Error("bad src: expected error")
	}
	if _, err := f.Transfer(99, 99, nil); err == nil {
		t.Error("bad local: expected error")
	}
}

func TestNewRejectsBadRate(t *testing.T) {
	if _, err := New(mustTop(t, 2, 2), 0); !errors.Is(err, ErrInvalidRate) {
		t.Errorf("rate 0: %v", err)
	}
}

func TestInjectorConsumesCapacity(t *testing.T) {
	top := mustTop(t, 2, 1)
	f, err := New(top, 4<<20) // 4 MB/s
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: 512 KB cross-rack at 4 MB/s ~ 128 ms.
	payload := make([]byte, 512<<10)
	start := time.Now()
	if _, err := f.Transfer(0, 1, payload); err != nil {
		t.Fatal(err)
	}
	base := time.Since(start)

	inj, err := f.InjectTraffic(0, 1, 3<<20) // eat 3 of the 4 MB/s
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	time.Sleep(50 * time.Millisecond) // let the injector claim capacity
	start = time.Now()
	if _, err := f.Transfer(0, 1, payload); err != nil {
		t.Fatal(err)
	}
	loaded := time.Since(start)
	if loaded < base*2 {
		t.Errorf("transfer under injection took %v, baseline %v; expected clear slowdown", loaded, base)
	}
}

func TestInjectorValidation(t *testing.T) {
	f, err := New(mustTop(t, 2, 1), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.InjectTraffic(0, 1, 0); !errors.Is(err, ErrInvalidRate) {
		t.Errorf("rate 0: %v", err)
	}
	if _, err := f.InjectTraffic(0, 42, 100); err == nil {
		t.Error("bad node: expected error")
	}
}

func TestLinkMovedAccounting(t *testing.T) {
	l, err := NewLink("x", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	l.reserve(1000)
	l.reserve(24)
	if l.Moved() != 1024 {
		t.Errorf("Moved = %d, want 1024", l.Moved())
	}
}

func TestConcurrentTransfersRace(t *testing.T) {
	// Exercised under -race: many goroutines sharing links.
	top := mustTop(t, 3, 3)
	f, err := New(top, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := topology.NodeID(i % top.Nodes())
			dst := topology.NodeID((i * 7) % top.Nodes())
			if _, err := f.Transfer(src, dst, make([]byte, 100<<10)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestDiskShapedLocalRead(t *testing.T) {
	f, err := New(mustTop(t, 1, 1), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnableDisk(0); err == nil {
		t.Error("EnableDisk(0): expected error")
	}
	if err := f.EnableDisk(10 << 20); err != nil { // 10 MB/s
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.Transfer(0, 0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 70*time.Millisecond {
		t.Errorf("disk-shaped local read took %v, want ~100ms", elapsed)
	}
	// SetDiskRates speeds it up.
	if err := f.SetDiskRates(1 << 30); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := f.Transfer(0, 0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("SetDiskRates did not take effect")
	}
	// SetDiskRates with disks disabled is a no-op.
	f2, err := New(mustTop(t, 1, 1), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.SetDiskRates(1); err != nil {
		t.Errorf("SetDiskRates without disks: %v", err)
	}
}

func TestSnapshotClassesAndDeltas(t *testing.T) {
	top := mustTop(t, 2, 2)
	f, err := New(top, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.EnableDisk(1 << 28); err != nil {
		t.Fatal(err)
	}
	before := f.Snapshot()
	wantLinks := 2*top.Nodes() + 2*2 + top.Nodes() // NICs + rack links + disks
	if len(before.Links) != wantLinks {
		t.Fatalf("links = %d, want %d", len(before.Links), wantLinks)
	}

	payload := make([]byte, 128<<10)
	if _, err := f.Transfer(0, 3, payload); err != nil { // cross-rack
		t.Fatal(err)
	}
	if _, err := f.Transfer(0, 1, payload); err != nil { // intra-rack
		t.Fatal(err)
	}
	if _, err := f.Transfer(2, 2, payload); err != nil { // local disk
		t.Fatal(err)
	}

	d := f.Snapshot().Sub(before)
	if d.CrossRackBytes != int64(len(payload)) || d.IntraRackBytes != int64(len(payload)) {
		t.Errorf("cross/intra deltas = %d/%d, want %d each",
			d.CrossRackBytes, d.IntraRackBytes, len(payload))
	}
	// Both network transfers traverse a node-up link; only the cross-rack
	// one touches rack links.
	if got := d.ClassBytes[ClassNodeUp]; got != 2*int64(len(payload)) {
		t.Errorf("node-up bytes = %d, want %d", got, 2*len(payload))
	}
	if got := d.ClassBytes[ClassRackUp]; got != int64(len(payload)) {
		t.Errorf("rack-up bytes = %d, want %d", got, len(payload))
	}
	if got := d.ClassBytes[ClassDisk]; got != int64(len(payload)) {
		t.Errorf("disk bytes = %d, want %d", got, len(payload))
	}
}

func TestLinkWaitedAccounting(t *testing.T) {
	l, err := NewLink("x", 1<<20) // 1 MB/s
	if err != nil {
		t.Fatal(err)
	}
	l.reserve(1 << 20) // one full second of backlog
	if w := l.Waited(); w < 900*time.Millisecond {
		t.Errorf("Waited = %v, want ~1s", w)
	}
	if l.Class() != ClassOther {
		t.Errorf("Class = %q, want %q", l.Class(), ClassOther)
	}
}

func TestFabricTelemetry(t *testing.T) {
	top := mustTop(t, 2, 1)
	f, err := New(top, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	f.SetTelemetry(reg)
	payload := make([]byte, 64<<10)
	if _, err := f.Transfer(0, 1, payload); err != nil {
		t.Fatal(err)
	}
	cross := reg.Counter("fabric_bytes_total", "", "locality").With("cross-rack")
	if got := cross.Value(); got != float64(len(payload)) {
		t.Errorf("fabric_bytes_total{cross-rack} = %g, want %d", got, len(payload))
	}
	linkBytes := reg.Counter("fabric_link_bytes_total", "", "link", "class")
	if got := linkBytes.With("node0.up", string(ClassNodeUp)).Value(); got != float64(len(payload)) {
		t.Errorf("link bytes = %g, want %d", got, len(payload))
	}
}

func TestTransferCtxCancelAborts(t *testing.T) {
	// 64 KB/s: a 1 MB transfer would take ~16s; cancellation must abort it
	// within roughly one chunk reservation.
	f, err := New(mustTop(t, 2, 1), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = f.TransferCtx(ctx, 0, 1, make([]byte, 1<<20))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TransferCtx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancellation took %v; want prompt abort", elapsed)
	}
}

func TestStreamSendDeadline(t *testing.T) {
	f, err := New(mustTop(t, 2, 1), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s, err := f.OpenStream(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Send(ctx, 1<<20); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Send = %v, want deadline exceeded", err)
	}
	if s.Sent() >= 1<<20 {
		t.Errorf("Sent = %d after deadline, want partial delivery", s.Sent())
	}
}

func TestStreamClosedRejectsSend(t *testing.T) {
	f, err := New(mustTop(t, 2, 1), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.OpenStream(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Send(context.Background(), 10); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Send on closed stream = %v, want ErrStreamClosed", err)
	}
}

func TestStreamAccountsLocality(t *testing.T) {
	f, err := New(mustTop(t, 2, 2), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.OpenStream(context.Background(), 0, 3) // cross-rack
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(context.Background(), 100<<10); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := f.CrossRackBytes(); got != 100<<10 {
		t.Errorf("CrossRackBytes = %d, want %d", got, 100<<10)
	}
	if got := f.IntraRackBytes(); got != 0 {
		t.Errorf("IntraRackBytes = %d, want 0", got)
	}
}

func TestConcurrentStreamsShareLinkFairly(t *testing.T) {
	// Two streams share node0's uplink: both should finish in about the
	// same (doubled) time rather than strictly one after the other.
	top := mustTop(t, 3, 1)
	f, err := New(top, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	const payload = 1 << 20 // alone ~125ms on 8MB/s, shared ~250ms
	var elapsed [2]time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := f.OpenStream(context.Background(), 0, topology.NodeID(1+i))
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			if err := s.Send(context.Background(), payload); err != nil {
				t.Error(err)
			}
			elapsed[i] = time.Since(start)
		}()
	}
	wg.Wait()
	// Interleaving means neither stream finishes in much less than the
	// shared-rate time, and they finish close together.
	gap := elapsed[0] - elapsed[1]
	if gap < 0 {
		gap = -gap
	}
	if gap > 150*time.Millisecond {
		t.Errorf("streams finished %v apart (%v vs %v); expected chunk-interleaved fair sharing",
			gap, elapsed[0], elapsed[1])
	}
}

func TestStreamTelemetryGauge(t *testing.T) {
	f, err := New(mustTop(t, 2, 1), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	f.SetTelemetry(reg)
	active := reg.Gauge("fabric_streams_active", "").With()
	total := reg.Counter("fabric_streams_total", "").With()
	s, err := f.OpenStream(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := active.Value(); got != 1 {
		t.Errorf("fabric_streams_active = %g, want 1", got)
	}
	s.Close()
	s.Close()
	if got := active.Value(); got != 0 {
		t.Errorf("fabric_streams_active after close = %g, want 0", got)
	}
	if got := total.Value(); got != 1 {
		t.Errorf("fabric_streams_total = %g, want 1", got)
	}
}

func TestInjectorDoubleCloseAndFabricClose(t *testing.T) {
	f, err := New(mustTop(t, 2, 1), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := f.InjectTraffic(0, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	inj.Close()
	inj.Close() // must be a safe no-op

	// Fabric teardown stops still-running injectors.
	inj2, err := f.InjectTraffic(0, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	select {
	case <-inj2.done:
	case <-time.After(2 * time.Second):
		t.Fatal("Fabric.Close did not stop the running injector")
	}
	inj2.Close() // still safe after fabric teardown
	f.Close()    // and fabric close is idempotent too
}
