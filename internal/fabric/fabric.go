// Package fabric is the bandwidth-shaped network used by the mini-HDFS
// testbed (the stand-in for the paper's 13-machine 1 GbE cluster). Every
// node has full-duplex NIC links and every rack shares full-duplex
// core-facing links; a transfer moves real bytes and blocks the caller for
// the time dictated by token-bucket shaping on every link of its path, so
// cross-rack contention emerges exactly as on the paper's testbed. An
// injector can consume link capacity the way the paper's Iperf UDP streams
// do (Experiment A.1).
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ear/internal/topology"
)

// ErrInvalidRate indicates a non-positive bandwidth.
var ErrInvalidRate = errors.New("fabric: invalid rate")

// chunkBytes is the shaping granularity. Flows sharing a link interleave at
// this grain, approximating fair sharing.
const chunkBytes = 64 << 10

// Link is a token-bucket shaped unidirectional link.
type Link struct {
	name string

	mu       sync.Mutex
	rate     float64 // bytes per second
	nextFree time.Time
	moved    int64 // total bytes shaped through the link
}

// NewLink creates a link with the given rate in bytes per second.
func NewLink(name string, bytesPerSec float64) (*Link, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: %q at %g B/s", ErrInvalidRate, name, bytesPerSec)
	}
	return &Link{name: name, rate: bytesPerSec}, nil
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Rate returns the configured rate in bytes per second.
func (l *Link) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate changes the link rate (used to model varying effective bandwidth).
func (l *Link) SetRate(bytesPerSec float64) error {
	if bytesPerSec <= 0 {
		return fmt.Errorf("%w: %q at %g B/s", ErrInvalidRate, l.name, bytesPerSec)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rate = bytesPerSec
	return nil
}

// Moved returns the total bytes shaped through the link.
func (l *Link) Moved() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.moved
}

// reserve books n bytes of capacity and returns how long the caller must
// wait before the bytes have "arrived".
func (l *Link) reserve(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if l.nextFree.Before(now) {
		l.nextFree = now
	}
	l.nextFree = l.nextFree.Add(time.Duration(float64(n) / l.rate * float64(time.Second)))
	l.moved += int64(n)
	return l.nextFree.Sub(now)
}

// Fabric wires the links of a cluster topology.
type Fabric struct {
	top *topology.Topology

	nodeUp   []*Link
	nodeDown []*Link
	rackUp   []*Link
	rackDown []*Link
	// disk, when non-nil, shapes local (same-node) reads: on the paper's
	// testbed a local block read costs a SATA-disk pass comparable to one
	// network transfer, which matters when the encoder already holds the
	// blocks it encodes.
	disk []*Link

	crossRack int64 // bytes, updated atomically under mu
	intraRack int64
	mu        sync.Mutex
}

// New builds a fabric where every node NIC and every rack core link runs at
// the given rate (bytes per second), mirroring the paper's uniform 1 Gb/s
// testbed and the Experiment B.2(c) single link-bandwidth knob.
func New(top *topology.Topology, bytesPerSec float64) (*Fabric, error) {
	f := &Fabric{
		top:      top,
		nodeUp:   make([]*Link, top.Nodes()),
		nodeDown: make([]*Link, top.Nodes()),
		rackUp:   make([]*Link, top.Racks()),
		rackDown: make([]*Link, top.Racks()),
	}
	for i := 0; i < top.Nodes(); i++ {
		var err error
		if f.nodeUp[i], err = NewLink(fmt.Sprintf("node%d.up", i), bytesPerSec); err != nil {
			return nil, err
		}
		if f.nodeDown[i], err = NewLink(fmt.Sprintf("node%d.down", i), bytesPerSec); err != nil {
			return nil, err
		}
	}
	for r := 0; r < top.Racks(); r++ {
		var err error
		if f.rackUp[r], err = NewLink(fmt.Sprintf("rack%d.up", r), bytesPerSec); err != nil {
			return nil, err
		}
		if f.rackDown[r], err = NewLink(fmt.Sprintf("rack%d.down", r), bytesPerSec); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Topology returns the wired topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// SetAllRates changes every network link's rate (disk rates are separate).
// Experiments use it to pre-populate data at full speed before throttling
// to the measured configuration.
func (f *Fabric) SetAllRates(bytesPerSec float64) error {
	for _, group := range [][]*Link{f.nodeUp, f.nodeDown, f.rackUp, f.rackDown} {
		for _, l := range group {
			if err := l.SetRate(bytesPerSec); err != nil {
				return err
			}
		}
	}
	return nil
}

// EnableDisk attaches a shaped disk to every node: local (same-node)
// transfers thereafter cost bytes/rate seconds instead of being free.
func (f *Fabric) EnableDisk(bytesPerSec float64) error {
	disks := make([]*Link, f.top.Nodes())
	for i := range disks {
		l, err := NewLink(fmt.Sprintf("node%d.disk", i), bytesPerSec)
		if err != nil {
			return err
		}
		disks[i] = l
	}
	f.disk = disks
	return nil
}

// SetDiskRates changes every disk's rate; a no-op when disks are disabled.
func (f *Fabric) SetDiskRates(bytesPerSec float64) error {
	for _, l := range f.disk {
		if err := l.SetRate(bytesPerSec); err != nil {
			return err
		}
	}
	return nil
}

// CrossRackBytes returns cumulative cross-rack payload bytes.
func (f *Fabric) CrossRackBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crossRack
}

// IntraRackBytes returns cumulative intra-rack payload bytes.
func (f *Fabric) IntraRackBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.intraRack
}

// path returns the links a src->dst transfer traverses.
func (f *Fabric) path(src, dst topology.NodeID) ([]*Link, bool, error) {
	srcRack, err := f.top.RackOf(src)
	if err != nil {
		return nil, false, err
	}
	dstRack, err := f.top.RackOf(dst)
	if err != nil {
		return nil, false, err
	}
	links := []*Link{f.nodeUp[src], f.nodeDown[dst]}
	cross := srcRack != dstRack
	if cross {
		links = append(links, f.rackUp[srcRack], f.rackDown[dstRack])
	}
	return links, cross, nil
}

// Transfer ships data from src to dst, returning a copy of the payload
// after blocking the caller for the shaped duration. A transfer to the same
// node is an unshaped copy (local disk access is not modeled by the
// network). The returned slice never aliases the input.
func (f *Fabric) Transfer(src, dst topology.NodeID, data []byte) ([]byte, error) {
	out := append([]byte(nil), data...)
	if src == dst {
		if _, err := f.top.RackOf(src); err != nil {
			return nil, err
		}
		if f.disk != nil {
			if wait := f.disk[src].reserve(len(data)); wait > 0 {
				time.Sleep(wait)
			}
		}
		return out, nil
	}
	links, cross, err := f.path(src, dst)
	if err != nil {
		return nil, err
	}
	for off := 0; off < len(data); off += chunkBytes {
		n := chunkBytes
		if off+n > len(data) {
			n = len(data) - off
		}
		var wait time.Duration
		for _, l := range links {
			if d := l.reserve(n); d > wait {
				wait = d
			}
		}
		if wait > 0 {
			time.Sleep(wait)
		}
	}
	f.mu.Lock()
	if cross {
		f.crossRack += int64(len(data))
	} else {
		f.intraRack += int64(len(data))
	}
	f.mu.Unlock()
	return out, nil
}

// Injector drains link capacity continuously, modeling the paper's Iperf
// UDP cross-traffic between node pairs (Experiment A.1's network-condition
// sweep). Stop it with Close.
type Injector struct {
	stop chan struct{}
	done chan struct{}
}

// InjectTraffic starts a background stream of rateBytesPerSec from src to
// dst. The stream only consumes capacity; no payload is delivered.
func (f *Fabric) InjectTraffic(src, dst topology.NodeID, rateBytesPerSec float64) (*Injector, error) {
	if rateBytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: injector at %g B/s", ErrInvalidRate, rateBytesPerSec)
	}
	links, _, err := f.path(src, dst)
	if err != nil {
		return nil, err
	}
	inj := &Injector{stop: make(chan struct{}), done: make(chan struct{})}
	interval := time.Duration(float64(chunkBytes) / rateBytesPerSec * float64(time.Second))
	go func() {
		defer close(inj.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				for _, l := range links {
					l.reserve(chunkBytes)
				}
			case <-inj.stop:
				return
			}
		}
	}()
	return inj, nil
}

// Close stops the injector and waits for its goroutine to exit.
func (i *Injector) Close() {
	close(i.stop)
	<-i.done
}
