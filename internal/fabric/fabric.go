// Package fabric is the bandwidth-shaped network used by the mini-HDFS
// testbed (the stand-in for the paper's 13-machine 1 GbE cluster). Every
// node has full-duplex NIC links and every rack shares full-duplex
// core-facing links; a transfer moves real bytes and blocks the caller for
// the time dictated by token-bucket shaping on every link of its path, so
// cross-rack contention emerges exactly as on the paper's testbed. An
// injector can consume link capacity the way the paper's Iperf UDP streams
// do (Experiment A.1).
package fabric

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ear/internal/events"
	"ear/internal/telemetry"
	"ear/internal/tenant"
	"ear/internal/topology"
)

// Errors returned by the package.
var (
	// ErrInvalidRate indicates a non-positive bandwidth.
	ErrInvalidRate = errors.New("fabric: invalid rate")
	// ErrStreamClosed indicates a Send on a closed stream.
	ErrStreamClosed = errors.New("fabric: stream closed")
)

// ChunkBytes is the shaping granularity. Flows sharing a link interleave at
// this grain, approximating fair sharing, and a canceled stream overshoots
// by at most one chunk's reservation. The replication pipeline uses the
// same grain, so a downstream hop can forward a chunk as soon as the
// upstream hop delivers it.
const ChunkBytes = 64 << 10

// chunkBytes is the internal alias predating the exported constant.
const chunkBytes = ChunkBytes

// LinkClass groups links by their position in the topology, the grouping
// Snapshot and the telemetry labels report.
type LinkClass string

// Link classes. Node NIC links carry every transfer (the intra-rack hops);
// rack links carry only the cross-rack portion through the core.
const (
	// ClassNodeUp is a node NIC transmitting toward the rack switch.
	ClassNodeUp LinkClass = "node-up"
	// ClassNodeDown is a node NIC receiving from the rack switch.
	ClassNodeDown LinkClass = "node-down"
	// ClassRackUp is a rack uplink into the core.
	ClassRackUp LinkClass = "rack-up"
	// ClassRackDown is a rack downlink out of the core.
	ClassRackDown LinkClass = "rack-down"
	// ClassDisk is a node's local disk (EnableDisk).
	ClassDisk LinkClass = "disk"
	// ClassOther marks standalone links built with NewLink.
	ClassOther LinkClass = "other"
)

// Link is a token-bucket shaped unidirectional link.
type Link struct {
	name  string
	class LinkClass

	mu       sync.Mutex
	rate     float64 // bytes per second
	nextFree time.Time
	moved    int64         // total bytes shaped through the link
	waited   time.Duration // total shaping delay imposed on callers

	// Telemetry handles, set by SetTelemetry; nil when unobserved.
	mBytes *telemetry.Metric
	mWait  *telemetry.Metric
}

// NewLink creates a link with the given rate in bytes per second.
func NewLink(name string, bytesPerSec float64) (*Link, error) {
	return newLink(name, ClassOther, bytesPerSec)
}

// newLink creates a classified link.
func newLink(name string, class LinkClass, bytesPerSec float64) (*Link, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: %q at %g B/s", ErrInvalidRate, name, bytesPerSec)
	}
	return &Link{name: name, class: class, rate: bytesPerSec}, nil
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Class returns the link's topology class.
func (l *Link) Class() LinkClass { return l.class }

// Rate returns the configured rate in bytes per second.
func (l *Link) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate changes the link rate (used to model varying effective bandwidth).
func (l *Link) SetRate(bytesPerSec float64) error {
	if bytesPerSec <= 0 {
		return fmt.Errorf("%w: %q at %g B/s", ErrInvalidRate, l.name, bytesPerSec)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rate = bytesPerSec
	return nil
}

// Moved returns the total bytes shaped through the link.
func (l *Link) Moved() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.moved
}

// Waited returns the cumulative token-bucket delay the link has imposed:
// the sum over reservations of how long each caller had to wait for its
// bytes to clear the link.
func (l *Link) Waited() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waited
}

// setTelemetry attaches per-link counters; nil detaches.
func (l *Link) setTelemetry(bytes, wait *telemetry.Metric) {
	l.mu.Lock()
	l.mBytes, l.mWait = bytes, wait
	l.mu.Unlock()
}

// reserve books n bytes of capacity and returns how long the caller must
// wait before the bytes have "arrived".
func (l *Link) reserve(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if l.nextFree.Before(now) {
		l.nextFree = now
	}
	l.nextFree = l.nextFree.Add(time.Duration(float64(n) / l.rate * float64(time.Second)))
	l.moved += int64(n)
	wait := l.nextFree.Sub(now)
	l.waited += wait
	if l.mBytes != nil {
		l.mBytes.Add(float64(n))
	}
	if l.mWait != nil {
		l.mWait.Add(wait.Seconds())
	}
	return wait
}

// Fabric wires the links of a cluster topology.
type Fabric struct {
	top *topology.Topology

	nodeUp   []*Link
	nodeDown []*Link
	rackUp   []*Link
	rackDown []*Link
	// disk, when non-nil, shapes local (same-node) reads: on the paper's
	// testbed a local block read costs a SATA-disk pass comparable to one
	// network transfer, which matters when the encoder already holds the
	// blocks it encodes.
	disk []*Link

	crossRack int64 // bytes, updated atomically under mu
	intraRack int64
	mu        sync.Mutex

	// injectors tracks running traffic injectors so Close can stop them
	// (guarded by mu).
	injectors map[*Injector]struct{}

	// Aggregate telemetry handles, set by SetTelemetry (guarded by mu).
	mCross       *telemetry.Metric
	mIntra       *telemetry.Metric
	mStreamsOpen *telemetry.Metric // fabric_streams_active gauge
	mStreamsTot  *telemetry.Metric // fabric_streams_total counter

	// journal, when non-nil, receives transfer-started/-finished events with
	// the link path of every stream (guarded by mu; nil journals no-op).
	journal *events.Journal

	// acct, when non-nil, receives a per-tenant copy of every payload byte
	// the fabric books in its cross-/intra-rack counters (guarded by mu; a
	// nil table no-ops). Because the charge happens at the same accounting
	// point, summing the table over tenants reproduces the fabric totals
	// exactly.
	acct *tenant.Table
}

// New builds a fabric where every node NIC and every rack core link runs at
// the given rate (bytes per second), mirroring the paper's uniform 1 Gb/s
// testbed and the Experiment B.2(c) single link-bandwidth knob.
func New(top *topology.Topology, bytesPerSec float64) (*Fabric, error) {
	f := &Fabric{
		top:       top,
		nodeUp:    make([]*Link, top.Nodes()),
		nodeDown:  make([]*Link, top.Nodes()),
		rackUp:    make([]*Link, top.Racks()),
		rackDown:  make([]*Link, top.Racks()),
		injectors: make(map[*Injector]struct{}),
	}
	for i := 0; i < top.Nodes(); i++ {
		var err error
		if f.nodeUp[i], err = newLink(fmt.Sprintf("node%d.up", i), ClassNodeUp, bytesPerSec); err != nil {
			return nil, err
		}
		if f.nodeDown[i], err = newLink(fmt.Sprintf("node%d.down", i), ClassNodeDown, bytesPerSec); err != nil {
			return nil, err
		}
	}
	for r := 0; r < top.Racks(); r++ {
		var err error
		if f.rackUp[r], err = newLink(fmt.Sprintf("rack%d.up", r), ClassRackUp, bytesPerSec); err != nil {
			return nil, err
		}
		if f.rackDown[r], err = newLink(fmt.Sprintf("rack%d.down", r), ClassRackDown, bytesPerSec); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Topology returns the wired topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// SetAllRates changes every network link's rate (disk rates are separate).
// Experiments use it to pre-populate data at full speed before throttling
// to the measured configuration.
func (f *Fabric) SetAllRates(bytesPerSec float64) error {
	for _, group := range [][]*Link{f.nodeUp, f.nodeDown, f.rackUp, f.rackDown} {
		for _, l := range group {
			if err := l.SetRate(bytesPerSec); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetNodeRate changes both NIC links of one node, modeling a degraded or
// throttled NIC (the health plane's fault-injection knob). Disk rates are
// unaffected.
func (f *Fabric) SetNodeRate(n topology.NodeID, bytesPerSec float64) error {
	if n < 0 || int(n) >= f.top.Nodes() {
		return fmt.Errorf("%w: %d", topology.ErrUnknownNode, n)
	}
	if err := f.nodeUp[n].SetRate(bytesPerSec); err != nil {
		return err
	}
	return f.nodeDown[n].SetRate(bytesPerSec)
}

// NodeRate returns the configured rate of the node's uplink NIC.
func (f *Fabric) NodeRate(n topology.NodeID) (float64, error) {
	if n < 0 || int(n) >= f.top.Nodes() {
		return 0, fmt.Errorf("%w: %d", topology.ErrUnknownNode, n)
	}
	return f.nodeUp[n].Rate(), nil
}

// EnableDisk attaches a shaped disk to every node: local (same-node)
// transfers thereafter cost bytes/rate seconds instead of being free.
func (f *Fabric) EnableDisk(bytesPerSec float64) error {
	disks := make([]*Link, f.top.Nodes())
	for i := range disks {
		l, err := newLink(fmt.Sprintf("node%d.disk", i), ClassDisk, bytesPerSec)
		if err != nil {
			return err
		}
		disks[i] = l
	}
	f.disk = disks
	return nil
}

// SetDiskRates changes every disk's rate; a no-op when disks are disabled.
func (f *Fabric) SetDiskRates(bytesPerSec float64) error {
	for _, l := range f.disk {
		if err := l.SetRate(bytesPerSec); err != nil {
			return err
		}
	}
	return nil
}

// CrossRackBytes returns cumulative cross-rack payload bytes.
func (f *Fabric) CrossRackBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crossRack
}

// IntraRackBytes returns cumulative intra-rack payload bytes.
func (f *Fabric) IntraRackBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.intraRack
}

// LinkStat is one link's totals in a Snapshot.
type LinkStat struct {
	Name            string
	Class           LinkClass
	RateBytesPerSec float64
	MovedBytes      int64
	WaitSeconds     float64
}

// Snapshot is a consistent-enough point-in-time view of every link's byte
// and wait totals, grouped by class, plus the payload-level cross-rack vs
// intra-rack split. Subtract two snapshots with Sub to measure one
// operation's traffic.
type Snapshot struct {
	Links            []LinkStat
	ClassBytes       map[LinkClass]int64
	ClassWaitSeconds map[LinkClass]float64
	CrossRackBytes   int64
	IntraRackBytes   int64
}

// Snapshot captures every link's totals. Links appear in a stable order:
// node NICs, rack links, then disks.
func (f *Fabric) Snapshot() Snapshot {
	s := Snapshot{
		ClassBytes:       make(map[LinkClass]int64),
		ClassWaitSeconds: make(map[LinkClass]float64),
	}
	for _, group := range [][]*Link{f.nodeUp, f.nodeDown, f.rackUp, f.rackDown, f.disk} {
		for _, l := range group {
			l.mu.Lock()
			st := LinkStat{
				Name:            l.name,
				Class:           l.class,
				RateBytesPerSec: l.rate,
				MovedBytes:      l.moved,
				WaitSeconds:     l.waited.Seconds(),
			}
			l.mu.Unlock()
			s.Links = append(s.Links, st)
			s.ClassBytes[st.Class] += st.MovedBytes
			s.ClassWaitSeconds[st.Class] += st.WaitSeconds
		}
	}
	f.mu.Lock()
	s.CrossRackBytes = f.crossRack
	s.IntraRackBytes = f.intraRack
	f.mu.Unlock()
	return s
}

// Sub returns the delta s - prev, matching links by name. Links absent from
// prev (e.g. disks enabled in between) keep their full totals.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	prevByName := make(map[string]LinkStat, len(prev.Links))
	for _, l := range prev.Links {
		prevByName[l.Name] = l
	}
	out := Snapshot{
		ClassBytes:       make(map[LinkClass]int64),
		ClassWaitSeconds: make(map[LinkClass]float64),
		CrossRackBytes:   s.CrossRackBytes - prev.CrossRackBytes,
		IntraRackBytes:   s.IntraRackBytes - prev.IntraRackBytes,
	}
	for _, l := range s.Links {
		p := prevByName[l.Name]
		d := LinkStat{
			Name:            l.Name,
			Class:           l.Class,
			RateBytesPerSec: l.RateBytesPerSec,
			MovedBytes:      l.MovedBytes - p.MovedBytes,
			WaitSeconds:     l.WaitSeconds - p.WaitSeconds,
		}
		out.Links = append(out.Links, d)
		out.ClassBytes[d.Class] += d.MovedBytes
		out.ClassWaitSeconds[d.Class] += d.WaitSeconds
	}
	return out
}

// SetTelemetry publishes the fabric's counters into the registry:
// fabric_bytes_total{locality} for the payload-level cross/intra split and
// fabric_link_bytes_total / fabric_link_wait_seconds_total{link,class} per
// link. Call it before traffic flows; totals accumulated earlier are not
// backfilled.
func (f *Fabric) SetTelemetry(reg *telemetry.Registry) {
	bytes := reg.Counter("fabric_bytes_total",
		"Payload bytes transferred, split by rack locality.", "locality")
	linkBytes := reg.Counter("fabric_link_bytes_total",
		"Bytes shaped through each fabric link.", "link", "class")
	linkWait := reg.Counter("fabric_link_wait_seconds_total",
		"Cumulative token-bucket shaping delay imposed by each link.", "link", "class")
	streamsOpen := reg.Gauge("fabric_streams_active",
		"Fabric streams currently open (pipeline hops, gathers, reads in flight).").With()
	streamsTot := reg.Counter("fabric_streams_total",
		"Fabric streams opened since startup.").With()
	f.mu.Lock()
	f.mCross = bytes.With("cross-rack")
	f.mIntra = bytes.With("intra-rack")
	f.mStreamsOpen = streamsOpen
	f.mStreamsTot = streamsTot
	f.mu.Unlock()
	for _, group := range [][]*Link{f.nodeUp, f.nodeDown, f.rackUp, f.rackDown, f.disk} {
		for _, l := range group {
			l.setTelemetry(
				linkBytes.With(l.name, string(l.class)),
				linkWait.With(l.name, string(l.class)),
			)
		}
	}
}

// SetJournal installs the cluster event journal: every stream thereafter
// publishes transfer-started on open and transfer-finished (with the bytes
// delivered and the link path taken) on close. A nil journal detaches.
func (f *Fabric) SetJournal(j *events.Journal) {
	f.mu.Lock()
	f.journal = j
	f.mu.Unlock()
}

// SetAccounting installs the per-tenant accounting table: every stream
// thereafter charges its payload bytes (split by rack locality) to the
// tenant carried by the context it was opened under. A nil table detaches.
func (f *Fabric) SetAccounting(t *tenant.Table) {
	f.mu.Lock()
	f.acct = t
	f.mu.Unlock()
}

// linkPath renders the traversed links as "node0.up>rack0.up>rack1.down>...",
// the event journal's link-path annotation.
func linkPath(links []*Link) string {
	if len(links) == 0 {
		return ""
	}
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.name
	}
	return strings.Join(names, ">")
}

// path returns the links a src->dst transfer traverses.
func (f *Fabric) path(src, dst topology.NodeID) ([]*Link, bool, error) {
	srcRack, err := f.top.RackOf(src)
	if err != nil {
		return nil, false, err
	}
	dstRack, err := f.top.RackOf(dst)
	if err != nil {
		return nil, false, err
	}
	links := []*Link{f.nodeUp[src], f.nodeDown[dst]}
	cross := srcRack != dstRack
	if cross {
		links = append(links, f.rackUp[srcRack], f.rackDown[dstRack])
	}
	return links, cross, nil
}

// sleepCtx blocks for d or until the context is done, returning the
// context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stream is one open src->dst flow over the shaped path. Send books payload
// bytes chunk by chunk, so concurrent streams sharing a link interleave at
// ChunkBytes granularity (the token bucket serves reservations FIFO) and a
// cancellation takes effect within one chunk's reservation. A stream to the
// same node is shaped by the node's disk when EnableDisk was called and is
// otherwise instantaneous. Streams carry no payload themselves: the caller
// owns the bytes and copies them at most once per delivered replica.
type Stream struct {
	f      *Fabric
	src    topology.NodeID
	dst    topology.NodeID
	links  []*Link
	cross  bool
	local  bool
	trace  uint64 // trace ID adopted from the opening context
	tenant string // accounting identity adopted from the opening context
	opened time.Time

	mu     sync.Mutex
	sent   int64
	closed bool
}

// OpenStream validates the path and registers an open stream from src to
// dst. The caller must Close it. When the context carries a telemetry span
// (the data path attaches its operation span), the stream's journal events
// are stamped with that span's trace ID, tying fabric activity to the
// end-to-end request.
func (f *Fabric) OpenStream(ctx context.Context, src, dst topology.NodeID) (*Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := &Stream{
		f: f, src: src, dst: dst,
		trace:  telemetry.TraceFromContext(ctx),
		tenant: tenant.FromContext(ctx),
		opened: time.Now(),
	}
	if src == dst {
		if _, err := f.top.RackOf(src); err != nil {
			return nil, err
		}
		s.local = true
		if f.disk != nil {
			s.links = []*Link{f.disk[src]}
		}
	} else {
		links, cross, err := f.path(src, dst)
		if err != nil {
			return nil, err
		}
		s.links, s.cross = links, cross
	}
	f.mu.Lock()
	open, tot, j := f.mStreamsOpen, f.mStreamsTot, f.journal
	f.mu.Unlock()
	if open != nil {
		open.Inc()
	}
	if tot != nil {
		tot.Inc()
	}
	if j != nil {
		e := events.New(events.TransferStarted, "fabric")
		e.Node, e.Peer, e.Cross = src, dst, s.cross
		e.Detail = linkPath(s.links)
		e.Trace = s.trace
		j.Publish(e)
	}
	return s, nil
}

// Send shapes n payload bytes through the stream, blocking for the shaped
// duration. It returns the context's error if canceled mid-flight; bytes of
// chunks already reserved stay booked on the links (at most one chunk
// overshoot).
func (s *Stream) Send(ctx context.Context, n int) error {
	if n < 0 {
		return fmt.Errorf("fabric: negative send of %d bytes", n)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("%w: %d->%d", ErrStreamClosed, s.src, s.dst)
	}
	for off := 0; off < n; off += chunkBytes {
		c := chunkBytes
		if off+c > n {
			c = n - off
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var wait time.Duration
		for _, l := range s.links {
			if d := l.reserve(c); d > wait {
				wait = d
			}
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return err
		}
		s.account(c)
	}
	// Zero-byte sends still honor cancellation.
	return ctx.Err()
}

// account books c delivered payload bytes in the locality counters. Local
// (same-node) traffic is disk activity, not network payload.
func (s *Stream) account(c int) {
	s.mu.Lock()
	s.sent += int64(c)
	s.mu.Unlock()
	if s.local {
		return
	}
	s.f.mu.Lock()
	var m *telemetry.Metric
	if s.cross {
		s.f.crossRack += int64(c)
		m = s.f.mCross
	} else {
		s.f.intraRack += int64(c)
		m = s.f.mIntra
	}
	acct := s.f.acct
	s.f.mu.Unlock()
	if m != nil {
		m.Add(float64(c))
	}
	acct.ChargeFabric(s.tenant, s.cross, int64(c))
}

// Cross reports whether the stream's path crosses the rack core. Chained
// transfers (the pipelined encoder's partial-sum hops) use it to attribute
// their bytes to the link class they actually traversed.
func (s *Stream) Cross() bool { return s.cross }

// Local reports whether the stream is a same-node (disk) stream that is
// excluded from the network payload counters.
func (s *Stream) Local() bool { return s.local }

// Sent returns the payload bytes delivered so far.
func (s *Stream) Sent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// Close releases the stream. It is idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sent := s.sent
	s.mu.Unlock()
	s.f.mu.Lock()
	open, j := s.f.mStreamsOpen, s.f.journal
	s.f.mu.Unlock()
	if open != nil {
		open.Dec()
	}
	if j != nil {
		e := events.New(events.TransferFinished, "fabric")
		e.Node, e.Peer, e.Cross, e.Bytes = s.src, s.dst, s.cross, sent
		e.Detail = linkPath(s.links)
		e.Trace = s.trace
		e.Dur = time.Since(s.opened)
		j.Publish(e)
	}
}

// Transfer ships data from src to dst, returning a copy of the payload
// after blocking the caller for the shaped duration. A transfer to the same
// node is an unshaped copy (local disk access is not modeled by the
// network). The returned slice never aliases the input.
func (f *Fabric) Transfer(src, dst topology.NodeID, data []byte) ([]byte, error) {
	return f.TransferCtx(context.Background(), src, dst, data)
}

// TransferCtx is Transfer with cancellation: the shaped wait aborts within
// one chunk reservation of ctx being canceled, and the payload copy (the
// single copy per delivered replica) is made only on success.
func (f *Fabric) TransferCtx(ctx context.Context, src, dst topology.NodeID, data []byte) ([]byte, error) {
	s, err := f.OpenStream(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.Send(ctx, len(data)); err != nil {
		return nil, err
	}
	return append([]byte(nil), data...), nil
}

// Injector drains link capacity continuously, modeling the paper's Iperf
// UDP cross-traffic between node pairs (Experiment A.1's network-condition
// sweep). Stop it with Close.
type Injector struct {
	f    *Fabric
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// InjectTraffic starts a background stream of rateBytesPerSec from src to
// dst. The stream only consumes capacity; no payload is delivered. The
// injector runs until its Close — or the fabric's.
func (f *Fabric) InjectTraffic(src, dst topology.NodeID, rateBytesPerSec float64) (*Injector, error) {
	if rateBytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: injector at %g B/s", ErrInvalidRate, rateBytesPerSec)
	}
	links, _, err := f.path(src, dst)
	if err != nil {
		return nil, err
	}
	inj := &Injector{f: f, stop: make(chan struct{}), done: make(chan struct{})}
	f.mu.Lock()
	f.injectors[inj] = struct{}{}
	f.mu.Unlock()
	interval := time.Duration(float64(chunkBytes) / rateBytesPerSec * float64(time.Second))
	go func() {
		defer close(inj.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				for _, l := range links {
					l.reserve(chunkBytes)
				}
			case <-inj.stop:
				return
			}
		}
	}()
	return inj, nil
}

// Close stops the injector and waits for its goroutine to exit. Closing an
// already-closed injector is a no-op.
func (i *Injector) Close() {
	i.once.Do(func() {
		close(i.stop)
		i.f.mu.Lock()
		delete(i.f.injectors, i)
		i.f.mu.Unlock()
	})
	<-i.done
}

// Close tears the fabric down, stopping any still-running injectors. Open
// streams are unaffected (they belong to their callers), and the fabric's
// counters remain readable.
func (f *Fabric) Close() {
	f.mu.Lock()
	injs := make([]*Injector, 0, len(f.injectors))
	for inj := range f.injectors {
		injs = append(injs, inj)
	}
	f.mu.Unlock()
	for _, inj := range injs {
		inj.Close()
	}
}
