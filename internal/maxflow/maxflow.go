// Package maxflow provides a Dinic maximum-flow solver and a bipartite
// matching helper. The EAR placement algorithm (paper Section III-B)
// determines whether a replica layout admits a post-encoding block layout
// satisfying rack-level fault tolerance by solving a maximum-flow problem on
// a four-layer graph: source -> blocks -> nodes -> racks -> sink.
package maxflow

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidVertex indicates an edge endpoint outside the graph.
var ErrInvalidVertex = errors.New("maxflow: invalid vertex")

// Graph is a flow network on vertices 0..n-1 using adjacency lists with
// paired residual edges (the classic Dinic representation).
type Graph struct {
	n     int
	heads [][]int // heads[v] lists indices into edges
	edges []edge

	// scratch reused across MaxFlow/AugmentOne calls
	level  []int
	iter   []int
	queue  []int
	parent []int // incoming edge id per vertex during AugmentOne's BFS

	// undo journals capacity mutations while a checkpoint is outstanding so
	// Rollback can restore flow pushed since Checkpoint. recording counts
	// outstanding checkpoints.
	undo      []undoEntry
	recording int
}

type edge struct {
	to  int
	cap int64
	rev int // index of the reverse edge in heads[to]
}

// undoEntry records one edge's capacity before a mutation.
type undoEntry struct {
	id  int
	cap int64
}

// NewGraph returns an empty flow network with n vertices.
func NewGraph(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("maxflow: graph must have positive vertex count, got %d", n)
	}
	return &Graph{
		n:      n,
		heads:  make([][]int, n),
		level:  make([]int, n),
		iter:   make([]int, n),
		parent: make([]int, n),
	}, nil
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// Clone returns a deep copy of the graph including any residual flow state,
// so a caller can tentatively add edges and push flow without committing.
// Outstanding checkpoints are not carried over; prefer Checkpoint/Rollback,
// which avoid the O(V+E) copy entirely.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:      g.n,
		heads:  make([][]int, g.n),
		edges:  append([]edge(nil), g.edges...),
		level:  make([]int, g.n),
		iter:   make([]int, g.n),
		parent: make([]int, g.n),
	}
	for v, hs := range g.heads {
		c.heads[v] = append([]int(nil), hs...)
	}
	return c
}

// Reset empties the graph in place — no edges, no flow, no outstanding
// checkpoints — while keeping the vertex count and all allocated adjacency
// storage, so rebuilding a same-shaped network costs no allocations.
func (g *Graph) Reset() {
	for v := range g.heads {
		g.heads[v] = g.heads[v][:0]
	}
	g.edges = g.edges[:0]
	g.undo = g.undo[:0]
	g.recording = 0
}

// Checkpoint marks the current graph state — edge set and residual
// capacities — for a later Rollback. While at least one checkpoint is
// outstanding every capacity mutation is journaled (O(1) per push), so
// tentatively adding edges and pushing flow costs nothing to undo: this is
// what makes EAR's per-candidate feasibility check zero-clone. Checkpoints
// nest LIFO: release each one with either Rollback or Commit.
func (g *Graph) Checkpoint() Checkpoint {
	g.recording++
	return Checkpoint{edges: len(g.edges), undoLen: len(g.undo)}
}

// Checkpoint is a restore point created by Graph.Checkpoint.
type Checkpoint struct {
	edges   int
	undoLen int
}

// Rollback restores the graph to the given checkpoint: flow pushed since the
// checkpoint is undone and edges added since are removed. Checkpoints must
// be released newest-first.
func (g *Graph) Rollback(ck Checkpoint) error {
	if g.recording <= 0 {
		return errors.New("maxflow: no outstanding checkpoint")
	}
	if ck.edges > len(g.edges) || ck.undoLen > len(g.undo) {
		return errors.New("maxflow: checkpoint released out of order")
	}
	// Undo capacity mutations newest-first. Entries touching edges beyond
	// ck.edges are redundant (the edges are truncated below) but harmless.
	for i := len(g.undo) - 1; i >= ck.undoLen; i-- {
		u := g.undo[i]
		if u.id < len(g.edges) {
			g.edges[u.id].cap = u.cap
		}
	}
	g.undo = g.undo[:ck.undoLen]
	// Drop appended edges. Edge ids were appended in order, so popping the
	// owner's adjacency list tail in reverse id order removes exactly them.
	for id := len(g.edges) - 1; id >= ck.edges; id-- {
		owner := g.edges[g.edges[id].rev].to
		g.heads[owner] = g.heads[owner][:len(g.heads[owner])-1]
	}
	g.edges = g.edges[:ck.edges]
	g.recording--
	return nil
}

// Commit releases the checkpoint keeping all changes made since. The undo
// journal is retained while outer checkpoints remain outstanding and cleared
// when the last one is released.
func (g *Graph) Commit(ck Checkpoint) error {
	return g.release(ck)
}

// release validates and retires one checkpoint level.
func (g *Graph) release(ck Checkpoint) error {
	if g.recording <= 0 {
		return errors.New("maxflow: no outstanding checkpoint")
	}
	if ck.edges > len(g.edges) || ck.undoLen > len(g.undo) {
		return errors.New("maxflow: checkpoint released out of order")
	}
	g.recording--
	if g.recording == 0 {
		g.undo = g.undo[:0]
	}
	return nil
}

// push moves d units of flow through edge id, journaling the prior
// capacities while a checkpoint is outstanding.
func (g *Graph) push(id int, d int64) {
	e := &g.edges[id]
	rev := &g.edges[e.rev]
	if g.recording > 0 {
		g.undo = append(g.undo, undoEntry{id: id, cap: e.cap}, undoEntry{id: e.rev, cap: rev.cap})
	}
	e.cap -= d
	rev.cap += d
}

// AugmentOne searches for a single s-t augmenting path in the residual graph
// (plain BFS, shortest path) and pushes its bottleneck flow, returning the
// amount pushed — 0 when s and t are disconnected in the residual graph.
// When at most one unit of additional flow is possible — EAR's case, where a
// new block vertex hangs off the source by a unit-capacity edge — one call
// decides feasibility without re-running the full blocking-flow search.
func (g *Graph) AugmentOne(s, t int) (int64, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, fmt.Errorf("%w: flow %d -> %d in graph of %d", ErrInvalidVertex, s, t, g.n)
	}
	if s == t {
		return 0, errors.New("maxflow: source equals sink")
	}
	for i := range g.parent {
		g.parent[i] = -1
	}
	g.queue = g.queue[:0]
	g.queue = append(g.queue, s)
	g.parent[s] = -2 // any non-(-1) sentinel: s is never relaxed again
	found := false
bfs:
	for qi := 0; qi < len(g.queue); qi++ {
		v := g.queue[qi]
		for _, id := range g.heads[v] {
			e := g.edges[id]
			if e.cap <= 0 || g.parent[e.to] != -1 {
				continue
			}
			g.parent[e.to] = id
			if e.to == t {
				found = true
				break bfs
			}
			g.queue = append(g.queue, e.to)
		}
	}
	if !found {
		return 0, nil
	}
	bottleneck := int64(math.MaxInt64)
	for v := t; v != s; {
		id := g.parent[v]
		bottleneck = min64(bottleneck, g.edges[id].cap)
		v = g.edges[g.edges[id].rev].to
	}
	for v := t; v != s; {
		id := g.parent[v]
		g.push(id, bottleneck)
		v = g.edges[g.edges[id].rev].to
	}
	return bottleneck, nil
}

// AddEdge adds a directed edge from -> to with the given capacity and
// returns an identifier usable with EdgeFlow.
func (g *Graph) AddEdge(from, to int, capacity int64) (int, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return 0, fmt.Errorf("%w: edge %d -> %d in graph of %d", ErrInvalidVertex, from, to, g.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("maxflow: negative capacity %d", capacity)
	}
	id := len(g.edges)
	g.heads[from] = append(g.heads[from], id)
	g.edges = append(g.edges, edge{to: to, cap: capacity, rev: id + 1})
	g.heads[to] = append(g.heads[to], id+1)
	g.edges = append(g.edges, edge{to: from, cap: 0, rev: id})
	return id, nil
}

// EdgeFlow returns the flow pushed through the edge with the given
// identifier after a MaxFlow call: the capacity accumulated on its reverse
// edge.
func (g *Graph) EdgeFlow(id int) (int64, error) {
	if id < 0 || id >= len(g.edges) || id%2 != 0 {
		return 0, fmt.Errorf("maxflow: invalid edge id %d", id)
	}
	return g.edges[id+1].cap, nil
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm. It may be
// called repeatedly after adding edges; flow accumulates across calls (each
// call returns only the additional flow pushed), which gives the EAR
// algorithm its cheap incremental feasibility checks.
func (g *Graph) MaxFlow(s, t int) (int64, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, fmt.Errorf("%w: flow %d -> %d in graph of %d", ErrInvalidVertex, s, t, g.n)
	}
	if s == t {
		return 0, errors.New("maxflow: source equals sink")
	}
	var flow int64
	for g.bfs(s, t) {
		// Clear the reusable iterator scratch in place; allocating a fresh
		// zero slice per blocking-flow phase defeated the scratch reuse.
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, math.MaxInt64)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow, nil
}

// bfs builds the level graph; returns false when t is unreachable.
func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	g.queue = g.queue[:0]
	g.level[s] = 0
	g.queue = append(g.queue, s)
	for qi := 0; qi < len(g.queue); qi++ {
		v := g.queue[qi]
		for _, id := range g.heads[v] {
			e := g.edges[id]
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[v] + 1
				g.queue = append(g.queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

// dfs finds one blocking-flow augmenting path in the level graph.
func (g *Graph) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; g.iter[v] < len(g.heads[v]); g.iter[v]++ {
		id := g.heads[v][g.iter[v]]
		e := &g.edges[id]
		if e.cap <= 0 || g.level[e.to] != g.level[v]+1 {
			continue
		}
		d := g.dfs(e.to, t, min64(f, e.cap))
		if d > 0 {
			g.push(id, d)
			return d
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BipartiteMatch computes a maximum matching between `left` vertices and
// `right` vertices given the adjacency adj[l] = list of right vertices. It
// returns match[l] = matched right vertex or -1, and the matching size. It
// is implemented on top of the flow solver so that the two stay consistent.
func BipartiteMatch(left, right int, adj [][]int) ([]int, int, error) {
	if left < 0 || right < 0 {
		return nil, 0, fmt.Errorf("maxflow: negative partition sizes %d, %d", left, right)
	}
	match := make([]int, left)
	for i := range match {
		match[i] = -1
	}
	if left == 0 || right == 0 {
		return match, 0, nil
	}
	// Vertices: 0 = source, 1..left = left side, left+1..left+right = right
	// side, left+right+1 = sink.
	s, t := 0, left+right+1
	g, err := NewGraph(left + right + 2)
	if err != nil {
		return nil, 0, err
	}
	type lrEdge struct {
		l, r, id int
	}
	var lrEdges []lrEdge
	for l := 0; l < left; l++ {
		if _, err := g.AddEdge(s, 1+l, 1); err != nil {
			return nil, 0, err
		}
		for _, r := range adj[l] {
			if r < 0 || r >= right {
				return nil, 0, fmt.Errorf("%w: right vertex %d of %d", ErrInvalidVertex, r, right)
			}
			id, err := g.AddEdge(1+l, 1+left+r, 1)
			if err != nil {
				return nil, 0, err
			}
			lrEdges = append(lrEdges, lrEdge{l: l, r: r, id: id})
		}
	}
	for r := 0; r < right; r++ {
		if _, err := g.AddEdge(1+left+r, t, 1); err != nil {
			return nil, 0, err
		}
	}
	size, err := g.MaxFlow(s, t)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range lrEdges {
		f, err := g.EdgeFlow(e.id)
		if err != nil {
			return nil, 0, err
		}
		if f > 0 {
			match[e.l] = e.r
		}
	}
	return match, int(size), nil
}
