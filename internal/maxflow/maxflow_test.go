package maxflow

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("NewGraph(0): expected error")
	}
	if _, err := NewGraph(-2); err == nil {
		t.Error("NewGraph(-2): expected error")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g, _ := NewGraph(3)
	if _, err := g.AddEdge(0, 5, 1); !errors.Is(err, ErrInvalidVertex) {
		t.Errorf("bad to vertex: error = %v", err)
	}
	if _, err := g.AddEdge(-1, 0, 1); !errors.Is(err, ErrInvalidVertex) {
		t.Errorf("bad from vertex: error = %v", err)
	}
	if _, err := g.AddEdge(0, 1, -3); err == nil {
		t.Error("negative capacity: expected error")
	}
}

func TestMaxFlowSimplePath(t *testing.T) {
	g, _ := NewGraph(3)
	if _, err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	f, err := g.MaxFlow(0, 2)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if f != 3 {
		t.Fatalf("MaxFlow = %d, want 3 (bottleneck)", f)
	}
}

func TestMaxFlowClassicNetwork(t *testing.T) {
	// CLRS-style example with known max flow 23.
	g, _ := NewGraph(6)
	edges := []struct {
		u, v int
		c    int64
	}{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4},
		{1, 3, 12}, {3, 2, 9}, {2, 4, 14}, {4, 3, 7},
		{3, 5, 20}, {4, 5, 4},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e.u, e.v, e.c); err != nil {
			t.Fatal(err)
		}
	}
	f, err := g.MaxFlow(0, 5)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if f != 23 {
		t.Fatalf("MaxFlow = %d, want 23", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g, _ := NewGraph(4)
	if _, err := g.AddEdge(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	f, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatalf("MaxFlow: %v", err)
	}
	if f != 0 {
		t.Fatalf("MaxFlow disconnected = %d, want 0", f)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g, _ := NewGraph(2)
	if _, err := g.MaxFlow(0, 0); err == nil {
		t.Error("source == sink: expected error")
	}
	if _, err := g.MaxFlow(0, 5); !errors.Is(err, ErrInvalidVertex) {
		t.Errorf("bad sink: error = %v", err)
	}
}

func TestMaxFlowIncremental(t *testing.T) {
	// The EAR algorithm adds one block's edges at a time and re-solves; each
	// call must return only the additional flow.
	g, _ := NewGraph(4)
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 3, 1); err != nil {
		t.Fatal(err)
	}
	f1, err := g.MaxFlow(0, 3)
	if err != nil || f1 != 1 {
		t.Fatalf("first MaxFlow = (%d, %v), want (1, nil)", f1, err)
	}
	if _, err := g.AddEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	f2, err := g.MaxFlow(0, 3)
	if err != nil || f2 != 1 {
		t.Fatalf("incremental MaxFlow = (%d, %v), want (1, nil)", f2, err)
	}
}

func TestEdgeFlow(t *testing.T) {
	g, _ := NewGraph(3)
	id1, _ := g.AddEdge(0, 1, 4)
	id2, _ := g.AddEdge(1, 2, 2)
	if _, err := g.MaxFlow(0, 2); err != nil {
		t.Fatal(err)
	}
	f1, err := g.EdgeFlow(id1)
	if err != nil || f1 != 2 {
		t.Fatalf("EdgeFlow(id1) = (%d, %v), want (2, nil)", f1, err)
	}
	f2, err := g.EdgeFlow(id2)
	if err != nil || f2 != 2 {
		t.Fatalf("EdgeFlow(id2) = (%d, %v), want (2, nil)", f2, err)
	}
	if _, err := g.EdgeFlow(id1 + 1); err == nil {
		t.Error("odd edge id (reverse edge): expected error")
	}
	if _, err := g.EdgeFlow(9999); err == nil {
		t.Error("out-of-range edge id: expected error")
	}
}

func TestBipartiteMatchPerfect(t *testing.T) {
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	match, size, err := BipartiteMatch(3, 3, adj)
	if err != nil {
		t.Fatalf("BipartiteMatch: %v", err)
	}
	if size != 3 {
		t.Fatalf("matching size = %d, want 3", size)
	}
	used := make(map[int]bool)
	for l, r := range match {
		if r < 0 {
			t.Fatalf("left %d unmatched", l)
		}
		if used[r] {
			t.Fatalf("right %d matched twice", r)
		}
		used[r] = true
		found := false
		for _, a := range adj[l] {
			if a == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("match %d -> %d not in adjacency", l, r)
		}
	}
}

func TestBipartiteMatchImperfect(t *testing.T) {
	// Both left vertices only connect to right 0; only one can match.
	adj := [][]int{{0}, {0}}
	match, size, err := BipartiteMatch(2, 2, adj)
	if err != nil {
		t.Fatalf("BipartiteMatch: %v", err)
	}
	if size != 1 {
		t.Fatalf("matching size = %d, want 1", size)
	}
	matched := 0
	for _, r := range match {
		if r >= 0 {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("%d left vertices matched, want 1", matched)
	}
}

func TestBipartiteMatchEdgeCases(t *testing.T) {
	match, size, err := BipartiteMatch(0, 5, nil)
	if err != nil || size != 0 || len(match) != 0 {
		t.Fatalf("empty left = (%v, %d, %v)", match, size, err)
	}
	if _, _, err := BipartiteMatch(-1, 2, nil); err == nil {
		t.Error("negative left: expected error")
	}
	if _, _, err := BipartiteMatch(1, 1, [][]int{{7}}); !errors.Is(err, ErrInvalidVertex) {
		t.Errorf("bad adjacency: error = %v", err)
	}
}

// hungarianSize computes maximum bipartite matching by augmenting paths, an
// independent oracle for the property test.
func hungarianSize(left, right int, adj [][]int) int {
	matchR := make([]int, right)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for _, r := range adj[l] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] < 0 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < left; l++ {
		if try(l, make([]bool, right)) {
			size++
		}
	}
	return size
}

func TestPropertyMatchingAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left := 1 + rng.Intn(8)
		right := 1 + rng.Intn(8)
		adj := make([][]int, left)
		for l := range adj {
			for r := 0; r < right; r++ {
				if rng.Intn(3) == 0 {
					adj[l] = append(adj[l], r)
				}
			}
		}
		_, size, err := BipartiteMatch(left, right, adj)
		if err != nil {
			return false
		}
		return size == hungarianSize(left, right, adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFlowConservation(t *testing.T) {
	// Max flow on a random DAG must not exceed the total capacity out of the
	// source or into the sink, and repeated MaxFlow calls with no new edges
	// must return 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g, err := NewGraph(n)
		if err != nil {
			return false
		}
		var srcCap, sinkCap int64
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					c := int64(rng.Intn(10))
					if _, err := g.AddEdge(u, v, c); err != nil {
						return false
					}
					if u == 0 {
						srcCap += c
					}
					if v == n-1 {
						sinkCap += c
					}
				}
			}
		}
		flow, err := g.MaxFlow(0, n-1)
		if err != nil {
			return false
		}
		if flow > srcCap || flow > sinkCap {
			return false
		}
		again, err := g.MaxFlow(0, n-1)
		return err == nil && again == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// snapshotFlows captures the flow on every forward edge of the graph.
func snapshotFlows(t *testing.T, g *Graph) []int64 {
	t.Helper()
	var out []int64
	for id := 0; ; id += 2 {
		f, err := g.EdgeFlow(id)
		if err != nil {
			return out
		}
		out = append(out, f)
	}
}

func TestCheckpointRollbackRestoresFlowAndEdges(t *testing.T) {
	g, err := NewGraph(6)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> {1,2} -> {3,4} -> 5 with unit capacities: max flow 2.
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 5}} {
		if _, err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	if f, err := g.MaxFlow(0, 5); err != nil || f != 2 {
		t.Fatalf("MaxFlow = %d, %v; want 2", f, err)
	}
	before := snapshotFlows(t, g)

	ck := g.Checkpoint()
	// Tentatively wire in a new path 0 -> 1 ... 1 -> 5 and push flow.
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 5, 1); err != nil {
		t.Fatal(err)
	}
	if gain, err := g.AugmentOne(0, 5); err != nil || gain != 1 {
		t.Fatalf("AugmentOne = %d, %v; want 1", gain, err)
	}
	if err := g.Rollback(ck); err != nil {
		t.Fatal(err)
	}

	after := snapshotFlows(t, g)
	if len(after) != len(before) {
		t.Fatalf("edge count after rollback = %d, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("edge %d flow = %d after rollback, want %d", 2*i, after[i], before[i])
		}
	}
	// The rolled-back graph is fully functional: no extra flow possible, and
	// new edges can still be added and committed.
	if f, err := g.MaxFlow(0, 5); err != nil || f != 0 {
		t.Fatalf("MaxFlow after rollback = %d, %v; want 0", f, err)
	}
	ck2 := g.Checkpoint()
	if _, err := g.AddEdge(0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if gain, err := g.AugmentOne(0, 5); err != nil || gain != 0 {
		t.Fatalf("AugmentOne over saturated sink edges = %d, %v; want 0", gain, err)
	}
	if err := g.Commit(ck2); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(ck2); err == nil {
		t.Fatal("double release of checkpoint not rejected")
	}
}

func TestCheckpointNestingLIFO(t *testing.T) {
	g, err := NewGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	id, err := g.AddEdge(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	outer := g.Checkpoint()
	if gain, err := g.AugmentOne(0, 2); err != nil || gain != 2 {
		t.Fatalf("AugmentOne = %d, %v; want 2", gain, err)
	}
	inner := g.Checkpoint()
	if _, err := g.AddEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if gain, err := g.AugmentOne(0, 2); err != nil || gain != 1 {
		t.Fatalf("AugmentOne = %d, %v; want 1", gain, err)
	}
	if err := g.Commit(inner); err != nil {
		t.Fatal(err)
	}
	// Rolling back the outer checkpoint undoes the inner committed changes
	// too: LIFO nesting, commit only pins changes relative to inner scopes.
	if err := g.Rollback(outer); err != nil {
		t.Fatal(err)
	}
	if f, err := g.EdgeFlow(id); err != nil || f != 0 {
		t.Fatalf("edge flow after outer rollback = %d, %v; want 0", f, err)
	}
	if f, err := g.MaxFlow(0, 2); err != nil || f != 2 {
		t.Fatalf("MaxFlow after outer rollback = %d, %v; want 2", f, err)
	}
}

// TestAugmentOneMatchesMaxFlowIncrement grows a random bipartite-ish graph
// edge by edge and checks AugmentOne agrees with a full MaxFlow recompute on
// a cloned graph at every step.
func TestAugmentOneMatchesMaxFlowIncrement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 6 + rng.Intn(10)
		g, err := NewGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for step := 0; step < 30; step++ {
			from, to := rng.Intn(n-1), 1+rng.Intn(n-1)
			if from == to {
				continue
			}
			if _, err := g.AddEdge(from, to, int64(1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
			// Reference: full recompute from scratch on a clone.
			ref := g.Clone()
			// Clear accumulated flow by rebuilding: instead compute the
			// incremental gain on the live graph both ways.
			want, err := ref.MaxFlow(0, n-1)
			if err != nil {
				t.Fatal(err)
			}
			var got int64
			for {
				gain, err := g.AugmentOne(0, n-1)
				if err != nil {
					t.Fatal(err)
				}
				if gain == 0 {
					break
				}
				got += gain
			}
			if got != want {
				t.Fatalf("trial %d step %d: AugmentOne total gain %d, MaxFlow gain %d", trial, step, got, want)
			}
			total += got
		}
		_ = total
	}
}

// TestMaxFlowScratchReuse verifies repeated solves on a warm graph allocate
// nothing: the level/iter/queue scratch is cleared in place, not reallocated.
func TestMaxFlowScratchReuse(t *testing.T) {
	g, err := NewGraph(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := g.AddEdge(i, i+1, 4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.MaxFlow(0, 7); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := g.MaxFlow(0, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MaxFlow on a warm graph allocates %.1f times per run, want 0", allocs)
	}
	ck := g.Checkpoint()
	defer g.Rollback(ck)
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := g.AugmentOne(0, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AugmentOne on a warm graph allocates %.1f times per run, want 0", allocs)
	}
}

func TestRollbackWithoutCheckpointErrors(t *testing.T) {
	g, err := NewGraph(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Rollback(Checkpoint{}); err == nil {
		t.Error("Rollback with no outstanding checkpoint not rejected")
	}
	if err := g.Commit(Checkpoint{}); err == nil {
		t.Error("Commit with no outstanding checkpoint not rejected")
	}
}
