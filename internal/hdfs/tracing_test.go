package hdfs

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"ear/internal/events"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// tracedCluster builds a cluster with tracer and journal installed.
func tracedCluster(t *testing.T, policy string) (*Cluster, *telemetry.Tracer, *events.Journal) {
	t.Helper()
	c := newTestCluster(t, policy)
	tr := telemetry.NewTracer()
	c.SetTracer(tr)
	jnl := events.NewJournal(8192)
	c.SetJournal(jnl)
	return c, tr, jnl
}

// spansByName groups snapshots by span name.
func spansByName(spans []telemetry.SpanSnapshot) map[string][]telemetry.SpanSnapshot {
	out := make(map[string][]telemetry.SpanSnapshot)
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// TestWriteBlockSingleTraceEndToEnd is the tentpole acceptance test: one
// earfs write must produce exactly one trace spanning the client operation,
// the NameNode allocation, and every DataNode pipeline hop, with the same
// trace ID stamped on the corresponding journal events.
func TestWriteBlockSingleTraceEndToEnd(t *testing.T) {
	c, tr, jnl := tracedCluster(t, "ear")
	data := make([]byte, c.Config().BlockSizeBytes)
	rand.New(rand.NewSource(7)).Read(data)
	id, err := c.WriteBlock(3, data)
	if err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}

	spans := tr.Spans()
	byName := spansByName(spans)
	root := byName["client.write-block"]
	if len(root) != 1 {
		t.Fatalf("client.write-block spans = %d, want 1", len(root))
	}
	trace := root[0].Trace
	if trace == 0 {
		t.Fatal("write span carries no trace ID")
	}
	if got := root[0].Args[telemetry.ComponentArg]; got != "client" {
		t.Errorf("write span component = %q, want client", got)
	}

	alloc := byName["namenode.allocate"]
	if len(alloc) != 1 {
		t.Fatalf("namenode.allocate spans = %d, want 1", len(alloc))
	}
	if alloc[0].Trace != trace {
		t.Errorf("allocate span trace = %x, want %x", alloc[0].Trace, trace)
	}
	if alloc[0].Parent != root[0].ID {
		t.Errorf("allocate span parent = %d, want %d", alloc[0].Parent, root[0].ID)
	}

	hops := byName["datanode.pipeline-hop"]
	if want := c.Config().Replicas; len(hops) != want {
		t.Fatalf("pipeline-hop spans = %d, want %d", len(hops), want)
	}
	for _, h := range hops {
		if h.Trace != trace {
			t.Errorf("hop span trace = %x, want %x", h.Trace, trace)
		}
		if got := h.Args[telemetry.ComponentArg]; got != "datanode" {
			t.Errorf("hop span component = %q, want datanode", got)
		}
	}

	// Every span of this write shares ONE trace, and that trace crosses at
	// least the client/namenode/datanode component boundary.
	for _, s := range spans {
		if s.Trace != trace {
			t.Errorf("span %q trace = %x, want %x (single-trace write)", s.Name, s.Trace, trace)
		}
	}
	if got := telemetry.MultiComponentTraces(spans); got != 1 {
		t.Errorf("MultiComponentTraces = %d, want 1", got)
	}

	// The journal's view of the same write carries the same trace ID.
	traced, _, _ := jnl.Since(0, 0, events.Filter{Trace: trace})
	want := map[events.Type]bool{
		events.BlockAllocated:   false,
		events.ReplicaWritten:   false,
		events.BlockCommitted:   false,
		events.TransferStarted:  false,
		events.TransferFinished: false,
	}
	for _, e := range traced {
		if _, ok := want[e.Type]; ok {
			want[e.Type] = true
		}
	}
	for typ, seen := range want {
		if !seen {
			t.Errorf("no %s event stamped with trace %x", typ, trace)
		}
	}
	var replicas int
	for _, e := range traced {
		if e.Type == events.ReplicaWritten && e.Block == id {
			replicas++
		}
	}
	if replicas != c.Config().Replicas {
		t.Errorf("traced ReplicaWritten events = %d, want %d", replicas, c.Config().Replicas)
	}

	// The Chrome export carries the trace ID in args for viewer filtering.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	hex := telemetry.FormatTraceID(trace)
	found := false
	for _, ev := range evs {
		if args, ok := ev["args"].(map[string]any); ok && args["trace"] == hex {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("chrome export carries no event with trace arg %s", hex)
	}
}

// TestSeparateWritesGetSeparateTraces: trace identity must not leak across
// independent operations.
func TestSeparateWritesGetSeparateTraces(t *testing.T) {
	c, tr, _ := tracedCluster(t, "rr")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		data := make([]byte, c.Config().BlockSizeBytes)
		rng.Read(data)
		if _, err := c.WriteBlock(topology.NodeID(i), data); err != nil {
			t.Fatalf("WriteBlock %d: %v", i, err)
		}
	}
	roots := spansByName(tr.Spans())["client.write-block"]
	if len(roots) != 3 {
		t.Fatalf("write spans = %d, want 3", len(roots))
	}
	seen := map[uint64]bool{}
	for _, r := range roots {
		if seen[r.Trace] {
			t.Errorf("trace %x reused across writes", r.Trace)
		}
		seen[r.Trace] = true
	}
	if got := telemetry.MultiComponentTraces(tr.Spans()); got != 3 {
		t.Errorf("MultiComponentTraces = %d, want 3", got)
	}
}

// TestEncodeTraceStampsJournal: the encode job's trace reaches the stripe
// lifecycle events and the repair path stamps its own.
func TestEncodeAndRepairTraceStampJournal(t *testing.T) {
	c, tr, jnl := tracedCluster(t, "ear")
	rng := rand.New(rand.NewSource(13))
	ids, _ := writeBlocks(t, c, c.Config().K*2, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatalf("EncodeAll: %v", err)
	}

	jobs := spansByName(tr.Spans())["encode-job"]
	if len(jobs) != 1 {
		t.Fatalf("encode-job spans = %d, want 1", len(jobs))
	}
	trace := jobs[0].Trace
	if trace == 0 {
		t.Fatal("encode job has no trace")
	}
	started, _, _ := jnl.Since(0, 0, events.Filter{Type: events.StripeEncodeStarted, Trace: trace})
	if len(started) == 0 {
		t.Error("no StripeEncodeStarted event carries the encode job's trace")
	}
	deleted, _, _ := jnl.Since(0, 0, events.Filter{Type: events.ReplicaDeleted, Trace: trace})
	if len(deleted) == 0 {
		t.Error("no ReplicaDeleted event carries the encode job's trace")
	}

	// Repair: fail a replica holder, reconstruct, and expect the repair
	// trace on the Repair* events.
	victim := ids[0]
	live, err := c.NameNode().LiveReplicas(victim)
	if err != nil || len(live) == 0 {
		t.Fatalf("LiveReplicas(%d): %v %v", victim, live, err)
	}
	c.NameNode().MarkDead(live[0])
	if _, err := c.RepairBlockCtx(context.Background(), victim); err != nil {
		t.Fatalf("RepairBlock: %v", err)
	}
	repairs := spansByName(tr.Spans())["raidnode.repair-block"]
	if len(repairs) != 1 {
		t.Fatalf("repair spans = %d, want 1", len(repairs))
	}
	rt := repairs[0].Trace
	fin, _, _ := jnl.Since(0, 0, events.Filter{Type: events.RepairFinished, Trace: rt})
	if len(fin) != 1 {
		t.Errorf("RepairFinished events with repair trace = %d, want 1", len(fin))
	}
}

// TestUntracedClusterStampsNoTrace: with no tracer installed the data path
// still works and journal events simply carry trace 0.
func TestUntracedClusterPublishesZeroTrace(t *testing.T) {
	c := newTestCluster(t, "rr")
	jnl := events.NewJournal(1024)
	c.SetJournal(jnl)
	data := make([]byte, c.Config().BlockSizeBytes)
	if _, err := c.WriteBlock(0, data); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	for _, e := range jnl.Snapshot() {
		if e.Trace != 0 {
			t.Fatalf("untraced cluster stamped trace %x on %s", e.Trace, e.Type)
		}
	}
}
