package hdfs

import (
	"bytes"
	"testing"

	"ear/internal/placement"
	"ear/internal/topology"
)

// FuzzDecodeOp: arbitrary bytes never panic the op decoder, and anything it
// accepts round-trips through the encoder to the same canonical bytes.
func FuzzDecodeOp(f *testing.F) {
	seeds := []*nnOp{
		{kind: opAllocate, block: 7, size: 1 << 20, shard: 3, core: 2, attempts: 4,
			nodes: []topology.NodeID{1, 5}, targets: []topology.RackID{0, 2}},
		{kind: opCommit, block: 9},
		{kind: opAbort, block: 2},
		{kind: opSealStripe, shard: 1},
		{kind: opFlushStripe, shard: 0, core: 3},
		{kind: opGroupStripe, blocks: []topology.BlockID{1, 2, 3, 4}},
		{kind: opDrainPending},
		{kind: opEncodeCommit, stripe: 5, plan: &placement.PostEncodingPlan{
			Keep: []topology.NodeID{1, 2}, Parity: []topology.NodeID{3, 4},
			Violation: true, Relocated: []int{0}}},
		{kind: opBlockMoved, block: 3, nodes: []topology.NodeID{8}},
		{kind: opParityMoved, stripe: 1, idx: 1, node: 6},
		{kind: opNodeDead, node: 4},
		{kind: opNodeAlive, node: 4},
		{kind: opRequeueStripe, stripe: 12},
	}
	for _, op := range seeds {
		f.Add(op.encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		op, err := decodeOp(data)
		if err != nil {
			return
		}
		re := op.encode(nil)
		op2, err := decodeOp(re)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding of %v: %v", op.kind, err)
		}
		if !bytes.Equal(re, op2.encode(nil)) {
			t.Fatalf("%v op encoding is not a fixed point", op.kind)
		}
	})
}
