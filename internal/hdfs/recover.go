package hdfs

// Parallel full-node recovery. When a DataNode dies, every encoded stripe
// that kept a member there needs one reconstruction — hundreds of
// independent repairs whose aggregate wall time is what the durability
// exposure window actually measures. Following the deterministic-recovery
// observation (D3: deterministic data distribution turns recovery into a
// balanced parallel job), RecoverNode enumerates the lost members up
// front, assigns every repair a target with a deterministic
// least-loaded-first rule balanced across surviving racks and nodes, and
// fans the repairs out through a bounded workgroup. Each repair runs the
// configured path (two-level rack-aware pipeline or naive gather) and
// publishes the usual RepairStarted/RepairFinished lifecycle, so the
// progress tracker folds the sweep into the durability-exposure ledger;
// NodeRecoveryStarted/Finished bracket the whole sweep.

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ear/internal/events"
	"ear/internal/telemetry"
	"ear/internal/tenant"
	"ear/internal/topology"
	"ear/internal/workgroup"
)

// RecoveryStats summarizes one full-node recovery sweep.
type RecoveryStats struct {
	// Node is the dead node the sweep recovered.
	Node topology.NodeID `json:"node"`
	// BlocksRepaired / ParityRepaired count reconstructed data blocks and
	// parity rows.
	BlocksRepaired int `json:"blocks_repaired"`
	ParityRepaired int `json:"parity_repaired"`
	// BytesRepaired is the repaired payload (repaired members × block size).
	BytesRepaired int64 `json:"bytes_repaired"`
	// CrossRackBytes / TotalBytes are the network bytes the repairs moved,
	// counted at the repairs' own streams (exact under concurrency, unlike
	// a fabric snapshot delta).
	CrossRackBytes int64 `json:"cross_rack_bytes"`
	TotalBytes     int64 `json:"total_bytes"`
	// Duration is the sweep's wall time.
	Duration time.Duration `json:"duration"`
}

// ThroughputMBps is the sweep's recovery rate: repaired payload over wall
// time.
func (s RecoveryStats) ThroughputMBps() float64 {
	return recoveryThroughputMBps(s.BytesRepaired, s.Duration)
}

// recoverTask is one planned reconstruction: a lost data block (parity ==
// -1) or a lost parity row of sm, rebuilt onto target.
type recoverTask struct {
	sm     *StripeMeta
	block  topology.BlockID
	parity int
	target topology.NodeID
}

// stripeOccupancy maps which live nodes already hold a member of the
// stripe and how many members each rack keeps — the fault-tolerance
// constraints a repair target must respect.
func (c *Cluster) stripeOccupancy(sm *StripeMeta) (map[topology.NodeID]bool, map[topology.RackID]int, error) {
	used := make(map[topology.NodeID]bool)
	rackCount := make(map[topology.RackID]int)
	note := func(n topology.NodeID) error {
		if c.nn.IsDead(n) || used[n] {
			return nil
		}
		used[n] = true
		r, err := c.top.RackOf(n)
		if err != nil {
			return err
		}
		rackCount[r]++
		return nil
	}
	for _, b := range sm.Info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			return nil, nil, err
		}
		for _, n := range live {
			if err := note(n); err != nil {
				return nil, nil, err
			}
		}
	}
	if sm.Plan != nil {
		for _, n := range sm.Plan.Parity {
			if err := note(n); err != nil {
				return nil, nil, err
			}
		}
	}
	return used, rackCount, nil
}

// pickRecoveryTarget deterministically selects the repair target for one
// lost member: the least-loaded eligible node (by repairs already assigned
// to the node, then to its rack, then lowest node ID), excluding dead
// nodes, nodes already holding a member of the stripe, and racks at the
// stripe's per-rack cap. Unlike pickRepairNode's randomized pick, the
// same cluster state always yields the same recovery plan, and the load
// keys spread hundreds of concurrent repairs evenly across surviving
// racks.
func (c *Cluster) pickRecoveryTarget(used map[topology.NodeID]bool, rackCount map[topology.RackID]int, nodeLoad map[topology.NodeID]int, rackLoad map[topology.RackID]int) (topology.NodeID, error) {
	maxPerRack := c.cfg.C
	if maxPerRack <= 0 {
		maxPerRack = 1
	}
	var best topology.NodeID
	var bestNode, bestRack int
	found := false
	for id := 0; id < c.top.Nodes(); id++ {
		n := topology.NodeID(id)
		if c.nn.IsDead(n) || used[n] {
			continue
		}
		r, err := c.top.RackOf(n)
		if err != nil {
			return 0, err
		}
		if rackCount[r] >= maxPerRack {
			continue
		}
		nl, rl := nodeLoad[n], rackLoad[r]
		if !found || nl < bestNode || (nl == bestNode && rl < bestRack) {
			best, bestNode, bestRack, found = n, nl, rl, true
		}
	}
	if !found {
		return 0, fmt.Errorf("%w: no eligible recovery target", ErrNoReplica)
	}
	return best, nil
}

// planNodeRecovery enumerates every stripe member lost with the dead node
// and assigns each reconstruction a deterministic, load-balanced target. A
// data block counts as lost only when no live replica remains anywhere;
// aborted members encode as zeros and need no repair.
func (c *Cluster) planNodeRecovery(dead topology.NodeID) ([]recoverTask, error) {
	nodeLoad := make(map[topology.NodeID]int)
	rackLoad := make(map[topology.RackID]int)
	var tasks []recoverTask
	for _, sid := range c.nn.EncodedStripes() {
		sm, err := c.nn.Stripe(sid)
		if err != nil {
			return nil, err
		}
		var lost []int // stripe positions: data i < k, parity k+j
		for i, b := range sm.Info.Blocks {
			meta, err := c.nn.Block(b)
			if err != nil {
				return nil, err
			}
			if meta.Aborted {
				continue
			}
			held := false
			for _, n := range meta.Nodes {
				if n == dead {
					held = true
					break
				}
			}
			if !held {
				continue
			}
			live, err := c.nn.LiveReplicas(b)
			if err != nil {
				return nil, err
			}
			if len(live) > 0 {
				// Another replica survives: re-replication territory
				// (BlockMover), not reconstruction.
				continue
			}
			lost = append(lost, i)
		}
		if sm.Plan != nil {
			for j, n := range sm.Plan.Parity {
				if n == dead {
					lost = append(lost, c.cfg.K+j)
				}
			}
		}
		if len(lost) == 0 {
			continue
		}
		used, rackCount, err := c.stripeOccupancy(sm)
		if err != nil {
			return nil, err
		}
		for _, pos := range lost {
			target, err := c.pickRecoveryTarget(used, rackCount, nodeLoad, rackLoad)
			if err != nil {
				return nil, fmt.Errorf("stripe %d: %w", sm.Info.ID, err)
			}
			used[target] = true
			r, err := c.top.RackOf(target)
			if err != nil {
				return nil, err
			}
			rackCount[r]++
			nodeLoad[target]++
			rackLoad[r]++
			t := recoverTask{sm: sm, parity: -1, target: target}
			if pos < c.cfg.K {
				t.block = sm.Info.Blocks[pos]
			} else {
				t.parity = pos - c.cfg.K
			}
			tasks = append(tasks, t)
		}
	}
	return tasks, nil
}

// RecoverNode reconstructs every stripe member lost with the dead node,
// fanning the repairs out with Config.RecoverParallelism workers. The node
// must already be marked dead (MarkDead). Repairs share one deterministic
// plan; each runs the configured repair path, commits with staged Puts,
// and publishes its own lifecycle events, so a failed or canceled sweep
// leaves every completed repair durable and every unfinished one
// uncommitted — rerunning RecoverNode picks up exactly the remainder.
func (c *Cluster) RecoverNode(ctx context.Context, dead topology.NodeID) (RecoveryStats, error) {
	stats := RecoveryStats{Node: dead}
	if !c.nn.IsDead(dead) {
		return stats, fmt.Errorf("node %d is not marked dead", dead)
	}
	t0 := time.Now()
	span, ctx := c.opSpan(ctx, "raidnode", "raidnode.recover-node")
	span.Arg("node", strconv.Itoa(int(dead)))
	defer span.End()

	tasks, err := c.planNodeRecovery(dead)
	if err != nil {
		return stats, err
	}
	span.Arg("lost", strconv.Itoa(len(tasks)))
	if j := c.Journal(); j != nil {
		ev := events.New(events.NodeRecoveryStarted, "raidnode")
		ev.Node = dead
		ev.Detail = strconv.Itoa(len(tasks))
		ev.Trace = telemetry.TraceFromContext(ctx)
		j.Publish(ev)
	}

	var mu sync.Mutex
	g, gctx := workgroup.WithContext(ctx)
	g.SetLimit(c.cfg.RecoverParallelism)
	for _, t := range tasks {
		t := t
		g.Go(func() error {
			var tr *repairTraffic
			var err error
			if t.parity < 0 {
				tr, err = c.repairBlockOnto(gctx, t.block, t.sm, t.target)
			} else {
				tr, err = c.repairParityOnto(gctx, t.sm, t.parity, t.target)
			}
			if err != nil {
				return err
			}
			cross, total := tr.bytes()
			mu.Lock()
			if t.parity < 0 {
				stats.BlocksRepaired++
			} else {
				stats.ParityRepaired++
			}
			stats.BytesRepaired += int64(c.cfg.BlockSizeBytes)
			stats.CrossRackBytes += cross
			stats.TotalBytes += total
			mu.Unlock()
			return nil
		})
	}
	err = g.Wait()
	stats.Duration = time.Since(t0)
	if j := c.Journal(); j != nil {
		ev := events.New(events.NodeRecoveryFinished, "raidnode")
		ev.Node = dead
		ev.Bytes = stats.BytesRepaired
		ev.Detail = strconv.Itoa(stats.BlocksRepaired + stats.ParityRepaired)
		ev.Trace = telemetry.TraceFromContext(ctx)
		j.Publish(ev)
	}
	return stats, err
}

// repairParityOnto rebuilds lost parity row j of stripe sm onto target:
// the mirror of repairBlockOnto for positions k..n-1. The rebuilt row is
// staged (nothing stored or published until reconstruction succeeded),
// then committed with UpdateParityLocation. Lifecycle events carry
// Detail "parity" with Block unset, and a ReplicaRelocated event moves
// the parity holder in stream-tracking models.
func (c *Cluster) repairParityOnto(ctx context.Context, sm *StripeMeta, j int, target topology.NodeID) (*repairTraffic, error) {
	if sm.Plan == nil || j < 0 || j >= len(sm.Plan.Parity) {
		return nil, fmt.Errorf("%w: stripe %d has no parity row %d", ErrUnknownStripe, sm.Info.ID, j)
	}
	t0 := time.Now()
	if m := c.metrics(); m != nil {
		defer func() { m.repairLat.Observe(time.Since(t0).Seconds()) }()
	}
	span, ctx := c.opSpan(ctx, "raidnode", "raidnode.repair-parity")
	span.Arg("stripe", strconv.FormatInt(int64(sm.Info.ID), 10)).
		Arg("row", strconv.Itoa(j))
	defer span.End()
	// Parity belongs to the stripe, not to one block: charge the stripe's
	// first member's owner so the rebuild traffic lands on the tenant whose
	// data the row protects.
	if len(sm.Info.Blocks) > 0 {
		ctx = tenant.NewContext(ctx, c.acct.Owner(sm.Info.Blocks[0]))
	}
	old := sm.Plan.Parity[j]
	if j := c.Journal(); j != nil {
		ev := events.New(events.RepairStarted, "raidnode")
		ev.Stripe, ev.Node = sm.Info.ID, target
		ev.Detail = "parity"
		ev.Trace = telemetry.TraceFromContext(ctx)
		j.Publish(ev)
	}
	buf := c.bufPool.Get(c.cfg.BlockSizeBytes)
	defer c.bufPool.Put(buf)
	tr := &repairTraffic{}
	if err := c.repairStripePos(ctx, sm, c.cfg.K+j, target, buf, tr, span); err != nil {
		return nil, err
	}
	dn, err := c.DataNodeOf(target)
	if err != nil {
		return nil, err
	}
	// Supersede any stale copy left from before the target last died.
	_ = dn.Store.Delete(ParityKey(sm.Info.ID, j))
	if err := dn.Store.Put(ParityKey(sm.Info.ID, j), buf); err != nil {
		return nil, err
	}
	if err := c.nn.UpdateParityLocation(sm.Info.ID, j, target); err != nil {
		return nil, err
	}
	if jr := c.Journal(); jr != nil {
		ev := events.New(events.RepairFinished, "raidnode")
		ev.Stripe, ev.Node = sm.Info.ID, target
		ev.Bytes = int64(len(buf))
		ev.Detail = "parity"
		ev.Trace = telemetry.TraceFromContext(ctx)
		jr.Publish(ev)
		// Move the parity holder in stream-tracking models (the auditor
		// rewrites its parity map on this, same as BlockMover relocation).
		rel := events.New(events.ReplicaRelocated, "raidnode")
		rel.Stripe, rel.Node, rel.Peer = sm.Info.ID, old, target
		rel.Bytes = int64(len(buf))
		rel.Detail = "parity"
		rel.Trace = telemetry.TraceFromContext(ctx)
		jr.Publish(rel)
	}
	c.observeRepair(tr, int64(len(buf)), time.Since(t0))
	c.acct.Charge(tenant.FromContext(ctx), "repair", 1, int64(len(buf)))
	return tr, nil
}
