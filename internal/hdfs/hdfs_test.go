package hdfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ear/internal/topology"
)

// testConfig returns a fast configuration: tiny blocks, generous bandwidth.
func testConfig(policy string) Config {
	return Config{
		Racks:                6,
		NodesPerRack:         3,
		Policy:               policy,
		Replicas:             3,
		K:                    4,
		N:                    6,
		C:                    1,
		BlockSizeBytes:       8 << 10,  // 8 KiB
		BandwidthBytesPerSec: 64 << 20, // effectively instant
		MapTasks:             4,
		Seed:                 1,
	}
}

func newTestCluster(t *testing.T, policy string) *Cluster {
	t.Helper()
	c, err := NewCluster(testConfig(policy))
	if err != nil {
		t.Fatalf("NewCluster(%s): %v", policy, err)
	}
	t.Cleanup(c.Close)
	return c
}

func writeBlocks(t *testing.T, c *Cluster, count int, rng *rand.Rand) ([]topology.BlockID, map[topology.BlockID][]byte) {
	t.Helper()
	ids := make([]topology.BlockID, 0, count)
	contents := make(map[topology.BlockID][]byte, count)
	for i := 0; i < count; i++ {
		data := make([]byte, c.Config().BlockSizeBytes)
		rng.Read(data)
		client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
		id, err := c.WriteBlock(client, data)
		if err != nil {
			t.Fatalf("WriteBlock %d: %v", i, err)
		}
		ids = append(ids, id)
		contents[id] = data
	}
	return ids, contents
}

func TestNewClusterValidation(t *testing.T) {
	cfg := testConfig("rr")
	cfg.Policy = "bogus"
	if _, err := NewCluster(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bogus policy: %v", err)
	}
	cfg = testConfig("rr")
	cfg.Racks = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Error("0 racks: expected error")
	}
	cfg = testConfig("rr")
	cfg.K = 10
	cfg.N = 9
	if _, err := NewCluster(cfg); err == nil {
		t.Error("n < k: expected error")
	}
}

func TestWriteAndReadBack(t *testing.T) {
	for _, policy := range []string{"rr", "ear"} {
		t.Run(policy, func(t *testing.T) {
			c := newTestCluster(t, policy)
			rng := rand.New(rand.NewSource(2))
			ids, contents := writeBlocks(t, c, 8, rng)
			for _, id := range ids {
				got, err := c.ReadBlock(0, id)
				if err != nil {
					t.Fatalf("ReadBlock(%d): %v", id, err)
				}
				if !bytes.Equal(got, contents[id]) {
					t.Fatalf("block %d content mismatch", id)
				}
				// Replication factor respected.
				meta, err := c.NameNode().Block(id)
				if err != nil {
					t.Fatal(err)
				}
				if len(meta.Nodes) != 3 {
					t.Fatalf("block %d has %d replicas", id, len(meta.Nodes))
				}
				for _, n := range meta.Nodes {
					dn, err := c.DataNodeOf(n)
					if err != nil {
						t.Fatal(err)
					}
					if !dn.Store.Has(DataKey(id)) {
						t.Fatalf("replica of %d missing on node %d", id, n)
					}
				}
			}
		})
	}
}

func TestWriteBlockSizeMismatch(t *testing.T) {
	c := newTestCluster(t, "rr")
	if _, err := c.WriteBlock(0, make([]byte, 10)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("wrong size: %v", err)
	}
}

func TestEncodeLifecycle(t *testing.T) {
	for _, policy := range []string{"rr", "ear"} {
		t.Run(policy, func(t *testing.T) {
			c := newTestCluster(t, policy)
			rng := rand.New(rand.NewSource(3))
			ids, contents := writeBlocks(t, c, 12, rng) // 3 stripes of k=4
			// EAR seals per core rack; flush so all 12 blocks encode.
			c.NameNode().FlushOpenStripes()
			stats, err := c.RaidNode().EncodeAll()
			if err != nil {
				t.Fatalf("EncodeAll: %v", err)
			}
			if policy == "rr" && stats.Stripes != 3 {
				t.Fatalf("encoded %d stripes, want 3", stats.Stripes)
			}
			if stats.Stripes < 3 {
				t.Fatalf("encoded %d stripes, want >= 3", stats.Stripes)
			}
			if stats.ThroughputMBps <= 0 {
				t.Error("throughput not measured")
			}
			// All data still readable; exactly one replica left per block.
			for _, id := range ids {
				meta, err := c.NameNode().Block(id)
				if err != nil {
					t.Fatal(err)
				}
				if !meta.Encoded || len(meta.Nodes) != 1 {
					t.Fatalf("block %d post-encode meta: %+v", id, meta)
				}
				got, err := c.ReadBlock(5, id)
				if err != nil {
					t.Fatalf("ReadBlock(%d): %v", id, err)
				}
				if !bytes.Equal(got, contents[id]) {
					t.Fatalf("block %d corrupted by encoding", id)
				}
			}
			// Parity stored where the plan says.
			for _, sid := range c.NameNode().EncodedStripes() {
				sm, err := c.NameNode().Stripe(sid)
				if err != nil {
					t.Fatal(err)
				}
				if len(sm.Plan.Parity) != 2 {
					t.Fatalf("stripe %d has %d parity blocks", sid, len(sm.Plan.Parity))
				}
				for j, n := range sm.Plan.Parity {
					dn, err := c.DataNodeOf(n)
					if err != nil {
						t.Fatal(err)
					}
					if !dn.Store.Has(ParityKey(sid, j)) {
						t.Fatalf("stripe %d parity %d missing on node %d", sid, j, n)
					}
				}
			}
			// Idempotent drain: nothing left to encode.
			again, err := c.RaidNode().EncodeAll()
			if err != nil {
				t.Fatal(err)
			}
			if again.Stripes != 0 {
				t.Errorf("second EncodeAll found %d stripes", again.Stripes)
			}
		})
	}
}

func TestEARNoCrossRackDownloadsAndCoreRackTasks(t *testing.T) {
	c := newTestCluster(t, "ear")
	rng := rand.New(rand.NewSource(4))
	writeBlocks(t, c, 16, rng)
	c.NameNode().FlushOpenStripes()
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatalf("EncodeAll: %v", err)
	}
	if stats.CrossRackDownloads != 0 {
		t.Errorf("EAR cross-rack downloads = %d, want 0", stats.CrossRackDownloads)
	}
	if stats.Violations != 0 {
		t.Errorf("EAR violations = %d, want 0", stats.Violations)
	}
	for _, pl := range stats.TaskPlacements {
		if !pl.Rack {
			t.Errorf("encode task %q ran outside its core rack (node %d)", pl.Task, pl.Node)
		}
	}
	// PlacementMonitor agrees: nothing to fix.
	bad, err := c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("PlacementMonitor found %d violating stripes under EAR", len(bad))
	}
}

func TestRRCrossRackDownloadsObserved(t *testing.T) {
	c := newTestCluster(t, "rr")
	rng := rand.New(rand.NewSource(5))
	writeBlocks(t, c, 16, rng)
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatalf("EncodeAll: %v", err)
	}
	if stats.CrossRackDownloads == 0 {
		t.Error("RR encoding produced no cross-rack downloads (unexpected)")
	}
}

func TestBlockMoverRestoresFaultTolerance(t *testing.T) {
	// With few racks RR violates often; after BlockMover the monitor must
	// be clean and data must remain readable.
	cfg := testConfig("rr")
	cfg.Racks = 6
	cfg.K = 5
	cfg.N = 6
	cfg.Seed = 6
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(6))
	var ids []topology.BlockID
	contents := map[topology.BlockID][]byte{}
	for i := 0; i < 30; i++ {
		data := make([]byte, cfg.BlockSizeBytes)
		rng.Read(data)
		id, err := c.WriteBlock(0, data)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		contents[id] = data
	}
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Violations == 0 {
		t.Skip("no violations this seed; nothing to exercise")
	}
	moved, movedBytes, err := c.RaidNode().BlockMover()
	if err != nil {
		t.Fatalf("BlockMover: %v", err)
	}
	if moved == 0 || movedBytes == 0 {
		t.Fatalf("BlockMover moved nothing despite %d violations", stats.Violations)
	}
	bad, err := c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("%d stripes still violating after BlockMover", len(bad))
	}
	for _, id := range ids {
		got, err := c.ReadBlock(3, id)
		if err != nil {
			t.Fatalf("ReadBlock(%d) after move: %v", id, err)
		}
		if !bytes.Equal(got, contents[id]) {
			t.Fatalf("block %d corrupted by relocation", id)
		}
	}
}

func TestDegradedReadAfterNodeFailure(t *testing.T) {
	for _, policy := range []string{"rr", "ear"} {
		t.Run(policy, func(t *testing.T) {
			c := newTestCluster(t, policy)
			rng := rand.New(rand.NewSource(7))
			ids, contents := writeBlocks(t, c, 8, rng)
			c.NameNode().FlushOpenStripes()
			if _, err := c.RaidNode().EncodeAll(); err != nil {
				t.Fatal(err)
			}
			// Fail the single node holding block ids[0].
			meta, err := c.NameNode().Block(ids[0])
			if err != nil {
				t.Fatal(err)
			}
			failed := meta.Nodes[0]
			c.NameNode().MarkDead(failed)
			if !c.NameNode().IsDead(failed) {
				t.Fatal("MarkDead not recorded")
			}
			reader := topology.NodeID(0)
			if reader == failed {
				reader = 1
			}
			got, err := c.ReadBlock(reader, ids[0])
			if err != nil {
				t.Fatalf("degraded ReadBlock: %v", err)
			}
			if !bytes.Equal(got, contents[ids[0]]) {
				t.Fatal("degraded read returned wrong data")
			}
		})
	}
}

func TestRepairBlock(t *testing.T) {
	c := newTestCluster(t, "ear")
	rng := rand.New(rand.NewSource(8))
	ids, contents := writeBlocks(t, c, 8, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	meta, err := c.NameNode().Block(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	failed := meta.Nodes[0]
	c.NameNode().MarkDead(failed)
	target, err := c.RepairBlock(ids[1])
	if err != nil {
		t.Fatalf("RepairBlock: %v", err)
	}
	if target == failed {
		t.Fatal("repair placed block on the dead node")
	}
	dn, err := c.DataNodeOf(target)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := dn.Store.Get(DataKey(ids[1]))
	if err != nil {
		t.Fatalf("repaired block not stored: %v", err)
	}
	if !bytes.Equal(stored, contents[ids[1]]) {
		t.Fatal("repaired block content wrong")
	}
	// Normal read works again.
	got, err := c.ReadBlock(2, ids[1])
	if err != nil || !bytes.Equal(got, contents[ids[1]]) {
		t.Fatalf("read after repair: %v", err)
	}
}

func TestDegradedReadUnencodedBlockFails(t *testing.T) {
	c := newTestCluster(t, "rr")
	rng := rand.New(rand.NewSource(9))
	ids, _ := writeBlocks(t, c, 1, rng)
	meta, err := c.NameNode().Block(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range meta.Nodes {
		c.NameNode().MarkDead(n)
	}
	if _, err := c.ReadBlock(0, ids[0]); !errors.Is(err, ErrNoReplica) {
		t.Errorf("read of fully failed unencoded block: %v", err)
	}
}

func TestShortStripeFlushAndEncode(t *testing.T) {
	// RR leaves a remainder smaller than k pending; those blocks stay
	// replicated and readable.
	c := newTestCluster(t, "rr")
	rng := rand.New(rand.NewSource(10))
	ids, contents := writeBlocks(t, c, 6, rng) // k=4: one stripe + 2 leftover
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripes != 1 {
		t.Fatalf("encoded %d stripes, want 1", stats.Stripes)
	}
	for i, id := range ids {
		meta, err := c.NameNode().Block(id)
		if err != nil {
			t.Fatal(err)
		}
		wantEncoded := i < 4
		if meta.Encoded != wantEncoded {
			t.Errorf("block %d encoded = %v, want %v", id, meta.Encoded, wantEncoded)
		}
		got, err := c.ReadBlock(1, id)
		if err != nil || !bytes.Equal(got, contents[id]) {
			t.Fatalf("ReadBlock(%d): %v", id, err)
		}
	}
}

func TestNameNodeErrors(t *testing.T) {
	c := newTestCluster(t, "rr")
	nn := c.NameNode()
	if _, err := nn.Block(999); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("unknown block: %v", err)
	}
	if _, err := nn.Stripe(999); !errors.Is(err, ErrUnknownStripe) {
		t.Errorf("unknown stripe: %v", err)
	}
	if err := nn.CommitBlock(999); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("commit unknown: %v", err)
	}
	if err := nn.CommitEncoding(999, nil); !errors.Is(err, ErrUnknownStripe) {
		t.Errorf("commit unknown stripe: %v", err)
	}
	if _, err := nn.LiveReplicas(999); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("live replicas unknown: %v", err)
	}
	if err := nn.UpdateBlockLocation(999, nil); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("update unknown: %v", err)
	}
	if err := nn.UpdateParityLocation(999, 0, 0); !errors.Is(err, ErrUnknownStripe) {
		t.Errorf("update parity unknown: %v", err)
	}
	if _, err := c.DataNodeOf(-1); err == nil {
		t.Error("DataNodeOf(-1): expected error")
	}
}

func TestCorruptReplicaFallsBackInDegradedRead(t *testing.T) {
	// Corrupt the surviving replica of an encoded block: the store detects
	// it (CRC) and the degraded path reconstructs from the stripe.
	c := newTestCluster(t, "ear")
	rng := rand.New(rand.NewSource(11))
	ids, contents := writeBlocks(t, c, 4, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	meta, err := c.NameNode().Block(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	dn, err := c.DataNodeOf(meta.Nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := dn.Store.Corrupt(DataKey(ids[2])); err != nil {
		t.Fatal(err)
	}
	got, err := c.DegradedRead(1, ids[2])
	if err != nil {
		t.Fatalf("DegradedRead with corrupt replica: %v", err)
	}
	if !bytes.Equal(got, contents[ids[2]]) {
		t.Fatal("reconstruction produced wrong data")
	}
}
