package hdfs

import (
	"math/rand"
	"testing"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/placement"
	"ear/internal/topology"
)

// attachAuditor wires a journal and auditor to the cluster, mirroring how
// earfsd and eartestbed -audit instrument it.
func attachAuditor(c *Cluster) (*events.Journal, *audit.Auditor) {
	j := events.NewJournal(0)
	c.SetJournal(j)
	cfg := c.Config()
	a := audit.New(c.Topology(), audit.Config{
		Replicas:      cfg.Replicas,
		C:             cfg.C,
		CheckCoreRack: cfg.Policy == "ear",
	})
	a.Attach(j)
	return j, a
}

// TestAuditorCleanEARLifecycle runs the full pipeline — write, encode,
// relocation pass — on an EAR cluster and requires a spotless report: no
// ongoing violation, no transient one. This is the paper's reliability
// claim stated as a test.
func TestAuditorCleanEARLifecycle(t *testing.T) {
	c := newTestCluster(t, "ear")
	j, a := attachAuditor(c)
	rng := rand.New(rand.NewSource(47))
	writeBlocks(t, c, 3*c.Config().K, rng)
	c.NameNode().FlushOpenStripes()
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RaidNode().BlockMover(); err != nil {
		t.Fatal(err)
	}
	r := a.Report()
	if !r.Clean {
		t.Fatalf("EAR lifecycle not clean: ongoing=%+v transient=%+v", r.Ongoing, r.Transient)
	}
	if stats.Stripes == 0 || r.Encoded != stats.Stripes {
		t.Errorf("auditor saw %d encoded stripes, RaidNode reported %d", r.Encoded, stats.Stripes)
	}
	if r.Events != j.Seq() {
		t.Errorf("auditor consumed %d events, journal published %d", r.Events, j.Seq())
	}
	// The journal carried the whole story: every lifecycle event type shows
	// up at least once.
	for _, typ := range []events.Type{
		events.BlockAllocated, events.ReplicaWritten, events.BlockCommitted,
		events.StripeGrouped, events.StripeEncodeStarted, events.ReplicaDeleted,
		events.StripeEncoded, events.StripeVerified, events.TransferFinished,
	} {
		if evs, _, _ := j.Since(0, 1, events.Filter{Type: typ}); len(evs) == 0 {
			t.Errorf("no %s event journaled across the lifecycle", typ)
		}
	}
}

// misplaceFirstStripe returns a plan override that rewrites one stripe's
// post-encoding plan to retain two data blocks in the same rack — a
// deliberate rack-spread violation (> c=1 blocks of the stripe in one
// rack). Each block keeps its first listed replica, which under EAR is the
// core-rack copy, so both retained replicas share the core rack.
func misplaceFirstStripe(staged *topology.StripeID) func(*placement.StripeInfo, *placement.PostEncodingPlan) {
	return func(info *placement.StripeInfo, plan *placement.PostEncodingPlan) {
		if *staged >= 0 || len(info.Blocks) < 2 {
			return
		}
		plan.Keep[0] = info.Placements[0].Nodes[0]
		plan.Keep[1] = info.Placements[1].Nodes[0]
		*staged = info.ID
	}
}

// TestAuditorDetectsMisplacedStripe stages a stripe whose retained layout
// packs two blocks into one rack and checks both watchdogs catch it: the
// PlacementMonitor flags the stripe, and the auditor opens a rack-spread
// violation naming it.
func TestAuditorDetectsMisplacedStripe(t *testing.T) {
	c := newTestCluster(t, "ear")
	_, a := attachAuditor(c)
	staged := topology.StripeID(-1)
	c.NameNode().SetPlanOverrideForTest(misplaceFirstStripe(&staged))
	rng := rand.New(rand.NewSource(53))
	writeBlocks(t, c, 2*c.Config().K, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	if staged < 0 {
		t.Fatal("plan override never ran")
	}

	bad, err := c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	foundMon := false
	for _, id := range bad {
		if id == staged {
			foundMon = true
		}
	}
	if !foundMon {
		t.Errorf("PlacementMonitor flagged %v, want stripe %d", bad, staged)
	}

	r := a.Report()
	found := false
	for _, v := range r.Ongoing {
		if v.Invariant == audit.InvRackSpread && v.Stripe == staged {
			found = true
			if v.OpenedSeq == 0 || v.LastSeq < v.OpenedSeq {
				t.Errorf("violation window malformed: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("auditor missed the staged misplacement; ongoing=%+v", r.Ongoing)
	}
}

// TestAuditorTransientViolationResolvedByBlockMover stages the same
// misplacement and then lets the BlockMover fix it: the violation must
// resolve (no ongoing entry), survive as a transient with the event window
// of the relocation that closed it, and the report must still say not
// clean — a transient breach happened and is not forgotten.
func TestAuditorTransientViolationResolvedByBlockMover(t *testing.T) {
	c := newTestCluster(t, "ear")
	j, a := attachAuditor(c)
	staged := topology.StripeID(-1)
	c.NameNode().SetPlanOverrideForTest(misplaceFirstStripe(&staged))
	rng := rand.New(rand.NewSource(59))
	writeBlocks(t, c, 2*c.Config().K, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	moved, _, err := c.RaidNode().BlockMover()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("BlockMover moved nothing despite the staged misplacement")
	}

	r := a.Report()
	for _, v := range r.Ongoing {
		if v.Invariant == audit.InvRackSpread {
			t.Fatalf("rack-spread violation still ongoing after BlockMover: %+v", v)
		}
	}
	var got *audit.Violation
	for i, v := range r.Transient {
		if v.Invariant == audit.InvRackSpread && v.Stripe == staged {
			got = &r.Transient[i]
		}
	}
	if got == nil {
		t.Fatalf("resolved violation not recorded as transient; transient=%+v", r.Transient)
	}
	if !got.Transient() || got.ResolvedSeq <= got.OpenedSeq {
		t.Errorf("transient window malformed: %+v", got)
	}
	if r.Clean {
		t.Error("report claims clean despite a transient violation")
	}
	// The resolving event is the relocation the BlockMover journaled.
	evs, _, _ := j.Since(got.ResolvedSeq-1, 1, events.Filter{})
	if len(evs) != 1 || evs[0].Type != events.ReplicaRelocated {
		t.Errorf("resolving event = %+v, want the ReplicaRelocated that fixed the stripe", evs)
	}
}

// TestJournalOverheadOnEncode bounds the journal's cost on the encode path.
// The journal's cost is per event while encoding is per byte, so with
// realistic block sizes the journal must be noise: replaying the run's own
// event stream into a fresh journal + auditor measures the per-event cost,
// and that cost times the events the run published must stay under 3% of
// the run's wall time.
func TestJournalOverheadOnEncode(t *testing.T) {
	cfg := testConfig("ear")
	cfg.BlockSizeBytes = 1 << 20 // realistic enough that encode time is per-byte work
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	j, _ := attachAuditor(c)
	rng := rand.New(rand.NewSource(61))
	writeBlocks(t, c, 4*cfg.K, rng)
	c.NameNode().FlushOpenStripes()
	seqBefore := j.Seq()
	t0 := time.Now()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	encodeDur := time.Since(t0)
	published := j.Seq() - seqBefore
	if published == 0 {
		t.Fatal("encode published no events")
	}

	// Replay the actual event stream — not a synthetic one — into a fresh
	// journal and auditor, several rounds for timing resolution. Each round
	// gets its own auditor so its model walks the same transitions the live
	// run drove.
	stream := j.Snapshot()
	const rounds = 10
	var replay time.Duration
	for r := 0; r < rounds; r++ {
		probe := events.NewJournal(0)
		pa := audit.New(c.Topology(), audit.Config{
			Replicas: cfg.Replicas, C: cfg.C, CheckCoreRack: true,
		})
		pa.Attach(probe)
		p0 := time.Now()
		for _, e := range stream {
			probe.Publish(e)
		}
		replay += time.Since(p0)
	}
	perPublish := replay / time.Duration(rounds*len(stream))

	overhead := perPublish * time.Duration(published)
	if limit := encodeDur * 3 / 100; overhead > limit {
		t.Errorf("journal overhead %v for %d events exceeds 3%% of encode time %v (per publish %v)",
			overhead, published, encodeDur, perPublish)
	}
	t.Logf("encode %v, %d events, per-publish %v, est overhead %.3f%%",
		encodeDur, published, perPublish,
		100*float64(overhead)/float64(encodeDur))
}
