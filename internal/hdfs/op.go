package hdfs

import (
	"encoding/binary"
	"fmt"

	"ear/internal/events"
	"ear/internal/placement"
	"ear/internal/topology"
)

// opKind enumerates the NameNode's typed mutation records. Every state
// change the NameNode performs — and nothing else — has a kind here; the
// write-ahead log is a sequence of these records, and crash recovery is
// their replay. Values are part of the on-disk format: never renumber,
// only append.
type opKind uint8

const (
	// opAllocate records a block allocation with its decided placement:
	// replica nodes, core rack, the open stripe's target racks, and the
	// iteration count, so replay can restore the policy's open-stripe state
	// without consuming randomness.
	opAllocate opKind = 1
	// opCommit records that a block's replicas are durably written.
	opCommit opKind = 2
	// opAbort records an abandoned uncommitted allocation.
	opAbort opKind = 3
	// opSealStripe records that a placement shard's policy sealed a stripe
	// at k blocks; apply drains it via TakeSealed and registers it under
	// the next global stripe ID.
	opSealStripe opKind = 4
	// opFlushStripe records the early seal of one shard's open stripe
	// (FlushOpenStripes); apply drops it from the policy and registers it.
	opFlushStripe opKind = 5
	// opGroupStripe records an RR stripe grouped from k committed blocks.
	opGroupStripe opKind = 6
	// opDrainPending records that the pre-encoding store was handed to the
	// encoding pipeline.
	opDrainPending opKind = 7
	// opEncodeCommit records a completed encoding: the post-encoding plan
	// and the collapse of every member to a single replica.
	opEncodeCommit opKind = 8
	// opBlockMoved records a block replica-set rewrite (BlockMover, repair).
	opBlockMoved opKind = 9
	// opParityMoved records the relocation of one parity block.
	opParityMoved opKind = 10
	// opNodeDead / opNodeAlive record node liveness transitions.
	opNodeDead  opKind = 11
	opNodeAlive opKind = 12
	// opRequeueStripe records that a registered, unencoded stripe was put
	// back into the pre-encoding store (after a crash interrupted the
	// encoding run that had drained it).
	opRequeueStripe opKind = 13
)

// String names the kind for errors and debugging.
func (k opKind) String() string {
	switch k {
	case opAllocate:
		return "allocate"
	case opCommit:
		return "commit"
	case opAbort:
		return "abort"
	case opSealStripe:
		return "seal-stripe"
	case opFlushStripe:
		return "flush-stripe"
	case opGroupStripe:
		return "group-stripe"
	case opDrainPending:
		return "drain-pending"
	case opEncodeCommit:
		return "encode-commit"
	case opBlockMoved:
		return "block-moved"
	case opParityMoved:
		return "parity-moved"
	case opNodeDead:
		return "node-dead"
	case opNodeAlive:
		return "node-alive"
	case opRequeueStripe:
		return "requeue-stripe"
	}
	return fmt.Sprintf("opKind(%d)", uint8(k))
}

// nnOp is one typed operation record: the union of every mutation's decided
// outcome. Policy decisions (placements, plans) are made at propose time and
// recorded here, so applying an op — live or during replay — is fully
// deterministic. Fields not listed for a kind in the comments above are
// unused by it and not serialized.
type nnOp struct {
	kind     opKind
	block    topology.BlockID
	size     int64
	shard    int32 // placement shard index (allocate, seal, flush)
	core     topology.RackID
	attempts int
	nodes    []topology.NodeID
	targets  []topology.RackID
	blocks   []topology.BlockID
	stripe   topology.StripeID
	plan     *placement.PostEncodingPlan
	idx      int
	node     topology.NodeID
}

// --- binary codec -----------------------------------------------------------
//
// Fixed-width little-endian fields behind a one-byte kind tag. Slice fields
// carry a u32 count. Integrity is the metalog's job (per-record CRC); the
// decoder still bounds-checks everything so a bug can never panic.

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendNodes(b []byte, nodes []topology.NodeID) []byte {
	b = appendU32(b, uint32(len(nodes)))
	for _, n := range nodes {
		b = appendU32(b, uint32(int32(n)))
	}
	return b
}

func appendRacks(b []byte, racks []topology.RackID) []byte {
	b = appendU32(b, uint32(len(racks)))
	for _, r := range racks {
		b = appendU32(b, uint32(int32(r)))
	}
	return b
}

func appendBlocks(b []byte, blocks []topology.BlockID) []byte {
	b = appendU32(b, uint32(len(blocks)))
	for _, id := range blocks {
		b = appendI64(b, int64(id))
	}
	return b
}

// encode serializes the op, appending to buf (which may be nil).
func (op *nnOp) encode(buf []byte) []byte {
	buf = append(buf, byte(op.kind))
	switch op.kind {
	case opAllocate:
		buf = appendI64(buf, int64(op.block))
		buf = appendI64(buf, op.size)
		buf = appendU32(buf, uint32(op.shard))
		buf = appendU32(buf, uint32(int32(op.core)))
		buf = appendU32(buf, uint32(op.attempts))
		buf = appendNodes(buf, op.nodes)
		buf = appendRacks(buf, op.targets)
	case opCommit, opAbort:
		buf = appendI64(buf, int64(op.block))
	case opSealStripe:
		buf = appendU32(buf, uint32(op.shard))
	case opFlushStripe:
		buf = appendU32(buf, uint32(op.shard))
		buf = appendU32(buf, uint32(int32(op.core)))
	case opGroupStripe:
		buf = appendBlocks(buf, op.blocks)
	case opDrainPending:
		// kind tag only
	case opEncodeCommit:
		buf = appendI64(buf, int64(op.stripe))
		buf = appendNodes(buf, op.plan.Keep)
		buf = appendNodes(buf, op.plan.Parity)
		if op.plan.Violation {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendU32(buf, uint32(len(op.plan.Relocated)))
		for _, i := range op.plan.Relocated {
			buf = appendU32(buf, uint32(int32(i)))
		}
	case opBlockMoved:
		buf = appendI64(buf, int64(op.block))
		buf = appendNodes(buf, op.nodes)
	case opParityMoved:
		buf = appendI64(buf, int64(op.stripe))
		buf = appendU32(buf, uint32(op.idx))
		buf = appendU32(buf, uint32(int32(op.node)))
	case opNodeDead, opNodeAlive:
		buf = appendU32(buf, uint32(int32(op.node)))
	case opRequeueStripe:
		buf = appendI64(buf, int64(op.stripe))
	}
	return buf
}

// opReader is a bounds-checked cursor over an encoded op.
type opReader struct {
	b   []byte
	err error
}

func (r *opReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail(1)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *opReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail(4)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *opReader) i64() int64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail(8)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return int64(v)
}

func (r *opReader) fail(n int) {
	if r.err == nil {
		r.err = fmt.Errorf("hdfs: op record truncated: need %d bytes, have %d", n, len(r.b))
	}
}

// count reads a slice length and sanity-bounds it against the remaining
// bytes (each element is at least one byte in every field layout).
func (r *opReader) count() int {
	n := r.u32()
	if r.err == nil && int(n) > len(r.b) {
		r.err = fmt.Errorf("hdfs: op record count %d exceeds remaining %d bytes", n, len(r.b))
		return 0
	}
	return int(n)
}

func (r *opReader) nodes() []topology.NodeID {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(int32(r.u32()))
	}
	return out
}

func (r *opReader) racks() []topology.RackID {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]topology.RackID, n)
	for i := range out {
		out[i] = topology.RackID(int32(r.u32()))
	}
	return out
}

func (r *opReader) blocks() []topology.BlockID {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]topology.BlockID, n)
	for i := range out {
		out[i] = topology.BlockID(r.i64())
	}
	return out
}

// decodeOp parses one op record.
func decodeOp(payload []byte) (*nnOp, error) {
	r := &opReader{b: payload}
	op := &nnOp{kind: opKind(r.u8())}
	switch op.kind {
	case opAllocate:
		op.block = topology.BlockID(r.i64())
		op.size = r.i64()
		op.shard = int32(r.u32())
		op.core = topology.RackID(int32(r.u32()))
		op.attempts = int(int32(r.u32()))
		op.nodes = r.nodes()
		op.targets = r.racks()
	case opCommit, opAbort:
		op.block = topology.BlockID(r.i64())
	case opSealStripe:
		op.shard = int32(r.u32())
	case opFlushStripe:
		op.shard = int32(r.u32())
		op.core = topology.RackID(int32(r.u32()))
	case opGroupStripe:
		op.blocks = r.blocks()
	case opDrainPending:
	case opEncodeCommit:
		op.stripe = topology.StripeID(r.i64())
		plan := &placement.PostEncodingPlan{
			Keep:   r.nodes(),
			Parity: r.nodes(),
		}
		plan.Violation = r.u8() != 0
		n := r.count()
		if r.err == nil && n > 0 {
			plan.Relocated = make([]int, n)
			for i := range plan.Relocated {
				plan.Relocated[i] = int(int32(r.u32()))
			}
		}
		op.plan = plan
	case opBlockMoved:
		op.block = topology.BlockID(r.i64())
		op.nodes = r.nodes()
	case opParityMoved:
		op.stripe = topology.StripeID(r.i64())
		op.idx = int(int32(r.u32()))
		op.node = topology.NodeID(int32(r.u32()))
	case opNodeDead, opNodeAlive:
		op.node = topology.NodeID(int32(r.u32()))
	case opRequeueStripe:
		op.stripe = topology.StripeID(r.i64())
	default:
		return nil, fmt.Errorf("hdfs: unknown op kind %d", uint8(op.kind))
	}
	if r.err != nil {
		return nil, fmt.Errorf("hdfs: decoding %v op: %w", op.kind, r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("hdfs: %v op has %d trailing bytes", op.kind, len(r.b))
	}
	return op, nil
}

// opEvent builds the one canonical journal event for an applied op. Every
// NameNode mutation that is observable in the event stream goes through
// here — the single place event fields are chosen — so no two call sites can
// drift. ok is false for ops with no NameNode-level event: drain-pending and
// requeue are pure bookkeeping (the stripe's StripeGrouped event already
// exists), and replica moves are published by the data-path layer that
// performed the transfer (ReplicaRelocated / ReplicaDeleted), keeping the
// cluster-wide invariant of exactly one canonical event per mutation.
//
// Decided fields the apply step fills in (op.stripe and op.blocks for
// stripe registrations, op.nodes for commits) must be set before calling.
func opEvent(op *nnOp) (events.Event, bool) {
	switch op.kind {
	case opAllocate:
		ev := events.New(events.BlockAllocated, "namenode")
		ev.Block = op.block
		ev.Bytes = op.size
		ev.Nodes = append([]topology.NodeID(nil), op.nodes...)
		return ev, true
	case opCommit:
		ev := events.New(events.BlockCommitted, "namenode")
		ev.Block = op.block
		ev.Nodes = append([]topology.NodeID(nil), op.nodes...)
		return ev, true
	case opAbort:
		ev := events.New(events.BlockAborted, "namenode")
		ev.Block = op.block
		return ev, true
	case opSealStripe, opFlushStripe, opGroupStripe:
		ev := events.New(events.StripeGrouped, "namenode")
		ev.Stripe = op.stripe
		ev.Rack = op.core
		ev.Blocks = append([]topology.BlockID(nil), op.blocks...)
		return ev, true
	case opEncodeCommit:
		ev := events.New(events.StripeEncoded, "namenode")
		ev.Stripe = op.stripe
		ev.Nodes = append([]topology.NodeID(nil), op.plan.Parity...)
		return ev, true
	case opNodeDead:
		ev := events.New(events.NodeDead, "namenode")
		ev.Node = op.node
		return ev, true
	case opNodeAlive:
		ev := events.New(events.NodeAlive, "namenode")
		ev.Node = op.node
		return ev, true
	}
	return events.Event{}, false
}
