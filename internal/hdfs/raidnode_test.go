package hdfs

import (
	"math/rand"
	"testing"

	"ear/internal/mapred"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

func TestRaidNodeStatsAccumulate(t *testing.T) {
	c := newTestCluster(t, "rr")
	rng := rand.New(rand.NewSource(40))
	writeBlocks(t, c, 8, rng) // 2 stripes
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	writeBlocks(t, c, 4, rng) // 1 more stripe
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	stats := c.RaidNode().Stats()
	if stats.Stripes != 3 {
		t.Errorf("accumulated stripes = %d, want 3", stats.Stripes)
	}
	if stats.EncodedBytes != int64(3*4*c.Config().BlockSizeBytes) {
		t.Errorf("accumulated bytes = %d", stats.EncodedBytes)
	}
	if len(stats.TaskPlacements) == 0 {
		t.Error("no task placements recorded")
	}
	// The returned copy must not alias internal state.
	stats.TaskPlacements[0].Task = "mutated"
	if again := c.RaidNode().Stats(); again.TaskPlacements[0].Task == "mutated" {
		t.Error("Stats aliases internal slice")
	}
}

func TestChooseReplicaPreference(t *testing.T) {
	c := newTestCluster(t, "rr") // 6 racks x 3 nodes
	// Reader itself holds a replica: always chosen.
	got, err := c.chooseReplica([]topology.NodeID{9, 4, 2}, 4)
	if err != nil || got != 4 {
		t.Errorf("local preference = (%d, %v), want node 4", got, err)
	}
	// Same-rack replica preferred over remote: reader 0 is in rack 0
	// (nodes 0-2); candidate 1 shares it.
	got, err = c.chooseReplica([]topology.NodeID{9, 1}, 0)
	if err != nil || got != 1 {
		t.Errorf("rack preference = (%d, %v), want node 1", got, err)
	}
	// No candidates: error.
	if _, err := c.chooseReplica(nil, 0); err == nil {
		t.Error("empty candidates: expected error")
	}
}

func TestBuildTasksChunking(t *testing.T) {
	c := newTestCluster(t, "rr")
	var stripes []*placement.StripeInfo
	for i := 0; i < 10; i++ {
		stripes = append(stripes, &placement.StripeInfo{ID: topology.StripeID(i), CoreRack: -1})
	}
	tasks, err := c.RaidNode().buildTasks(stripes)
	if err != nil {
		t.Fatal(err)
	}
	// MapTasks = 4: ceil(10/4) = 3 stripes per task -> 4 tasks.
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks, want 4", len(tasks))
	}
	total := 0
	for _, task := range tasks {
		total += len(task.stripes)
		if task.strict || task.preferred != mapred.AnyNode {
			t.Error("RR tasks must not be rack-pinned")
		}
	}
	if total != 10 {
		t.Errorf("tasks cover %d stripes, want 10", total)
	}
	// Empty input: no tasks.
	none, err := c.RaidNode().buildTasks(nil)
	if err != nil || none != nil {
		t.Errorf("empty stripes = (%v, %v)", none, err)
	}
}

func TestBuildTasksEARGroupsByCoreRack(t *testing.T) {
	c := newTestCluster(t, "ear")
	stripes := []*placement.StripeInfo{
		{ID: 1, CoreRack: 2},
		{ID: 2, CoreRack: 5},
		{ID: 3, CoreRack: 2},
	}
	tasks, err := c.RaidNode().buildTasks(stripes)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if !task.strict {
			t.Error("EAR tasks must be rack-pinned")
		}
		rack, err := c.Topology().RackOf(task.preferred)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range task.stripes {
			if s.CoreRack != rack {
				t.Errorf("task preferring rack %d contains stripe with core rack %d", rack, s.CoreRack)
			}
		}
	}
}

func TestPlacementMonitorDetectsManualViolation(t *testing.T) {
	// Encode cleanly, then move a block into an over-full rack by hand and
	// confirm the monitor flags the stripe and the mover repairs it.
	c := newTestCluster(t, "ear")
	rng := rand.New(rand.NewSource(41))
	writeBlocks(t, c, 40, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	// Pick a stripe with at least two data blocks.
	var sm *StripeMeta
	var sid topology.StripeID = -1
	for _, id := range c.NameNode().EncodedStripes() {
		cand, err := c.NameNode().Stripe(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(cand.Info.Blocks) >= 2 {
			sm, sid = cand, id
			break
		}
	}
	if sm == nil {
		t.Fatal("no multi-block stripe sealed")
	}
	// Teleport block 0's surviving replica into block 1's rack.
	b0, b1 := sm.Info.Blocks[0], sm.Info.Blocks[1]
	m0, _ := c.NameNode().Block(b0)
	m1, _ := c.NameNode().Block(b1)
	rack1, _ := c.Topology().RackOf(m1.Nodes[0])
	nodes, _ := c.Topology().NodesInRack(rack1)
	var target topology.NodeID = -1
	for _, n := range nodes {
		if n != m1.Nodes[0] {
			target = n
			break
		}
	}
	srcDN, _ := c.DataNodeOf(m0.Nodes[0])
	payload, err := srcDN.Store.Get(DataKey(b0))
	if err != nil {
		t.Fatal(err)
	}
	dstDN, _ := c.DataNodeOf(target)
	if err := dstDN.Store.Put(DataKey(b0), payload); err != nil {
		t.Fatal(err)
	}
	if err := srcDN.Store.Delete(DataKey(b0)); err != nil {
		t.Fatal(err)
	}
	if err := c.NameNode().UpdateBlockLocation(b0, []topology.NodeID{target}); err != nil {
		t.Fatal(err)
	}

	bad, err := c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != sid {
		t.Fatalf("monitor = %v, want [%d]", bad, sid)
	}
	moved, _, err := c.RaidNode().BlockMover()
	if err != nil {
		t.Fatalf("BlockMover: %v", err)
	}
	if moved == 0 {
		t.Fatal("mover did nothing")
	}
	bad, err = c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("still violating after mover: %v", bad)
	}
}

func TestStatsSinceDeltas(t *testing.T) {
	c := newTestCluster(t, "rr")
	rng := rand.New(rand.NewSource(41))
	writeBlocks(t, c, 8, rng) // 2 stripes
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	d1, cur := c.RaidNode().StatsSince(StatsCursor{})
	if d1.Stripes != 2 {
		t.Errorf("first delta stripes = %d, want 2", d1.Stripes)
	}
	if len(d1.TaskPlacements) == 0 {
		t.Error("first delta has no placements")
	}
	// Nothing happened since: delta must be empty.
	d2, cur2 := c.RaidNode().StatsSince(cur)
	if d2.Stripes != 0 || d2.EncodedBytes != 0 || len(d2.TaskPlacements) != 0 {
		t.Errorf("idle delta nonzero: %+v", d2)
	}
	// Second encode round: only the new round shows up.
	writeBlocks(t, c, 4, rng) // 1 stripe
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	d3, _ := c.RaidNode().StatsSince(cur2)
	if d3.Stripes != 1 {
		t.Errorf("second delta stripes = %d, want 1", d3.Stripes)
	}
	if d3.EncodedBytes != int64(4*c.Config().BlockSizeBytes) {
		t.Errorf("second delta bytes = %d", d3.EncodedBytes)
	}
	if want := c.RaidNode().Stats().TaskPlacements; len(d1.TaskPlacements)+len(d3.TaskPlacements) != len(want) {
		t.Errorf("delta placements %d+%d, cumulative %d",
			len(d1.TaskPlacements), len(d3.TaskPlacements), len(want))
	}
	if d3.Duration > 0 && d3.ThroughputMBps <= 0 {
		t.Error("delta throughput not computed")
	}
	// The delta copy must not alias internal state.
	if len(d3.TaskPlacements) > 0 {
		d3.TaskPlacements[0].Task = "mutated"
		if again := c.RaidNode().Stats(); again.TaskPlacements[len(d1.TaskPlacements)].Task == "mutated" {
			t.Error("StatsSince aliases internal slice")
		}
	}
}

func TestEncodeTelemetryAndTrace(t *testing.T) {
	c := newTestCluster(t, "ear")
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)
	tr := telemetry.NewTracer()
	c.SetTracer(tr)

	rng := rand.New(rand.NewSource(42))
	writeBlocks(t, c, 8, rng) // 2 stripes
	c.NameNode().FlushOpenStripes()
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatal(err)
	}

	if stats.Stripes == 0 {
		t.Fatal("no stripes encoded")
	}
	get := func(name string) float64 {
		return reg.Counter(name, "").With().Value()
	}
	if got := get("raidnode_stripes_encoded_total"); got != float64(stats.Stripes) {
		t.Errorf("stripes counter = %g, want %d", got, stats.Stripes)
	}
	if got := get("raidnode_encode_jobs_total"); got != 1 {
		t.Errorf("jobs counter = %g, want 1", got)
	}
	if got := get("raidnode_encoded_bytes_total"); got != float64(stats.EncodedBytes) {
		t.Errorf("bytes counter = %g, want %d", got, stats.EncodedBytes)
	}
	// EAR with strict scheduling downloads every block inside the core rack.
	if got := get("raidnode_cross_rack_downloads_total"); got != 0 {
		t.Errorf("cross-rack downloads = %g, want 0 under EAR strict", got)
	}
	if got := get("raidnode_placement_violations_total"); got != float64(stats.Violations) {
		t.Errorf("violations = %g, want %d", got, stats.Violations)
	}
	// Client latency histogram observed the 8 writes.
	if got := reg.Histogram("hdfs_client_write_seconds", "", nil).With().Count(); got != 8 {
		t.Errorf("write latency count = %d, want 8", got)
	}

	// One span per phase, parented into the encode job.
	spans := tr.Spans()
	counts := map[string]int{}
	byID := map[int64]telemetry.SpanSnapshot{}
	for _, s := range spans {
		counts[s.Name]++
		byID[s.ID] = s
	}
	if counts["encode-job"] != 1 || counts["stripe-selection"] != 1 {
		t.Errorf("job/selection spans = %d/%d, want 1/1",
			counts["encode-job"], counts["stripe-selection"])
	}
	if counts["map-task"] == 0 {
		t.Error("no map-task spans")
	}
	for _, phase := range []string{"download", "encode", "parity-write", "replica-delete"} {
		if counts[phase] != stats.Stripes { // one per stripe
			t.Errorf("%s spans = %d, want %d", phase, counts[phase], stats.Stripes)
		}
	}
	for _, s := range spans {
		if s.Name == "download" {
			parent, ok := byID[s.Parent]
			if !ok || parent.Name != "map-task" {
				t.Errorf("download span parent = %+v", parent)
			}
		}
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
		if !s.Ended {
			t.Errorf("span %s never ended", s.Name)
		}
	}
}

func TestEncodeCrossRackCountersUnderRR(t *testing.T) {
	c := newTestCluster(t, "rr")
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)
	rng := rand.New(rand.NewSource(43))
	writeBlocks(t, c, 16, rng) // 4 stripes
	c.NameNode().FlushOpenStripes()
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	got := reg.Counter("raidnode_cross_rack_downloads_total", "").With().Value()
	if got != float64(stats.CrossRackDownloads) {
		t.Errorf("counter = %g, stats = %d", got, stats.CrossRackDownloads)
	}
	// With 6 racks, C=1 and random placement, some downloads must cross
	// racks (every replica co-resident with the encoder is essentially
	// impossible at this scale).
	if stats.CrossRackDownloads == 0 {
		t.Error("RR encode saw zero cross-rack downloads")
	}
	if v := reg.Counter("fabric_bytes_total", "", "locality").With("cross-rack").Value(); v <= 0 {
		t.Error("fabric cross-rack byte counter not bumped")
	}
}

// TestStatsSinceCursorSemantics pins the cursor contract: an empty window
// reads as a zero delta, a cursor is a position (re-reading from it yields
// the same delta, and overlapping cursors decompose the stream
// consistently), and a cursor minted before ResetStats degrades to "since
// the reset" instead of going negative.
func TestStatsSinceCursorSemantics(t *testing.T) {
	c := newTestCluster(t, "rr")

	// Empty window on a fresh RaidNode: zero delta, usable cursor.
	d0, cur0 := c.RaidNode().StatsSince(StatsCursor{})
	if d0.Stripes != 0 || d0.EncodedBytes != 0 || d0.Duration != 0 || len(d0.TaskPlacements) != 0 {
		t.Fatalf("fresh delta nonzero: %+v", d0)
	}

	rng := rand.New(rand.NewSource(43))
	writeBlocks(t, c, 4, rng) // 1 stripe
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	dA, curA := c.RaidNode().StatsSince(cur0)
	if dA.Stripes != 1 {
		t.Fatalf("round one delta stripes = %d, want 1", dA.Stripes)
	}

	writeBlocks(t, c, 4, rng) // 1 more stripe
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}

	// Overlapping cursors: reading from curA sees round two; reading again
	// from the SAME cursor sees it again (non-consuming); reading from cur0
	// spans both rounds, and the split deltas sum to the spanning one.
	dB1, _ := c.RaidNode().StatsSince(curA)
	dB2, _ := c.RaidNode().StatsSince(curA)
	if dB1.Stripes != dB2.Stripes || dB1.EncodedBytes != dB2.EncodedBytes ||
		len(dB1.TaskPlacements) != len(dB2.TaskPlacements) {
		t.Errorf("re-reading the same cursor diverged: %+v vs %+v", dB1, dB2)
	}
	dSpan, _ := c.RaidNode().StatsSince(cur0)
	if dSpan.Stripes != dA.Stripes+dB1.Stripes {
		t.Errorf("spanning stripes %d != %d + %d", dSpan.Stripes, dA.Stripes, dB1.Stripes)
	}
	if dSpan.EncodedBytes != dA.EncodedBytes+dB1.EncodedBytes {
		t.Errorf("spanning bytes %d != %d + %d", dSpan.EncodedBytes, dA.EncodedBytes, dB1.EncodedBytes)
	}
	if len(dSpan.TaskPlacements) != len(dA.TaskPlacements)+len(dB1.TaskPlacements) {
		t.Errorf("spanning placements %d != %d + %d",
			len(dSpan.TaskPlacements), len(dA.TaskPlacements), len(dB1.TaskPlacements))
	}

	// A cursor minted before ResetStats is stale: the next read reports
	// everything since the reset — here, one fresh stripe — with no negative
	// components, and hands back a valid post-reset cursor.
	stale := curA
	c.RaidNode().ResetStats()
	writeBlocks(t, c, 4, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	dR, curR := c.RaidNode().StatsSince(stale)
	if dR.Stripes != 1 {
		t.Errorf("stale-cursor delta stripes = %d, want 1 (everything since reset)", dR.Stripes)
	}
	if dR.EncodedBytes < 0 || dR.Duration < 0 || dR.CrossRackDownloads < 0 || dR.Violations < 0 {
		t.Errorf("stale-cursor delta went negative: %+v", dR)
	}
	if len(dR.TaskPlacements) == 0 {
		t.Error("stale-cursor delta lost the post-reset placements")
	}
	// The replacement cursor works normally afterwards.
	if dIdle, _ := c.RaidNode().StatsSince(curR); dIdle.Stripes != 0 || len(dIdle.TaskPlacements) != 0 {
		t.Errorf("post-reset idle delta nonzero: %+v", dIdle)
	}

	// A stale cursor read immediately after a reset (nothing accumulated
	// yet) is a clean zero, not negative.
	c.RaidNode().ResetStats()
	dZ, _ := c.RaidNode().StatsSince(curR)
	if dZ.Stripes != 0 || dZ.EncodedBytes != 0 || dZ.Duration != 0 {
		t.Errorf("post-reset empty delta nonzero: %+v", dZ)
	}
}
