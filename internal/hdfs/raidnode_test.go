package hdfs

import (
	"math/rand"
	"testing"

	"ear/internal/mapred"
	"ear/internal/placement"
	"ear/internal/topology"
)

func TestRaidNodeStatsAccumulate(t *testing.T) {
	c := newTestCluster(t, "rr")
	rng := rand.New(rand.NewSource(40))
	writeBlocks(t, c, 8, rng) // 2 stripes
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	writeBlocks(t, c, 4, rng) // 1 more stripe
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	stats := c.RaidNode().Stats()
	if stats.Stripes != 3 {
		t.Errorf("accumulated stripes = %d, want 3", stats.Stripes)
	}
	if stats.EncodedBytes != int64(3*4*c.Config().BlockSizeBytes) {
		t.Errorf("accumulated bytes = %d", stats.EncodedBytes)
	}
	if len(stats.TaskPlacements) == 0 {
		t.Error("no task placements recorded")
	}
	// The returned copy must not alias internal state.
	stats.TaskPlacements[0].Task = "mutated"
	if again := c.RaidNode().Stats(); again.TaskPlacements[0].Task == "mutated" {
		t.Error("Stats aliases internal slice")
	}
}

func TestChooseReplicaPreference(t *testing.T) {
	c := newTestCluster(t, "rr") // 6 racks x 3 nodes
	// Reader itself holds a replica: always chosen.
	got, err := c.chooseReplica([]topology.NodeID{9, 4, 2}, 4)
	if err != nil || got != 4 {
		t.Errorf("local preference = (%d, %v), want node 4", got, err)
	}
	// Same-rack replica preferred over remote: reader 0 is in rack 0
	// (nodes 0-2); candidate 1 shares it.
	got, err = c.chooseReplica([]topology.NodeID{9, 1}, 0)
	if err != nil || got != 1 {
		t.Errorf("rack preference = (%d, %v), want node 1", got, err)
	}
	// No candidates: error.
	if _, err := c.chooseReplica(nil, 0); err == nil {
		t.Error("empty candidates: expected error")
	}
}

func TestBuildTasksChunking(t *testing.T) {
	c := newTestCluster(t, "rr")
	var stripes []*placement.StripeInfo
	for i := 0; i < 10; i++ {
		stripes = append(stripes, &placement.StripeInfo{ID: topology.StripeID(i), CoreRack: -1})
	}
	tasks, err := c.RaidNode().buildTasks(stripes)
	if err != nil {
		t.Fatal(err)
	}
	// MapTasks = 4: ceil(10/4) = 3 stripes per task -> 4 tasks.
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks, want 4", len(tasks))
	}
	total := 0
	for _, task := range tasks {
		total += len(task.stripes)
		if task.strict || task.preferred != mapred.AnyNode {
			t.Error("RR tasks must not be rack-pinned")
		}
	}
	if total != 10 {
		t.Errorf("tasks cover %d stripes, want 10", total)
	}
	// Empty input: no tasks.
	none, err := c.RaidNode().buildTasks(nil)
	if err != nil || none != nil {
		t.Errorf("empty stripes = (%v, %v)", none, err)
	}
}

func TestBuildTasksEARGroupsByCoreRack(t *testing.T) {
	c := newTestCluster(t, "ear")
	stripes := []*placement.StripeInfo{
		{ID: 1, CoreRack: 2},
		{ID: 2, CoreRack: 5},
		{ID: 3, CoreRack: 2},
	}
	tasks, err := c.RaidNode().buildTasks(stripes)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if !task.strict {
			t.Error("EAR tasks must be rack-pinned")
		}
		rack, err := c.Topology().RackOf(task.preferred)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range task.stripes {
			if s.CoreRack != rack {
				t.Errorf("task preferring rack %d contains stripe with core rack %d", rack, s.CoreRack)
			}
		}
	}
}

func TestPlacementMonitorDetectsManualViolation(t *testing.T) {
	// Encode cleanly, then move a block into an over-full rack by hand and
	// confirm the monitor flags the stripe and the mover repairs it.
	c := newTestCluster(t, "ear")
	rng := rand.New(rand.NewSource(41))
	writeBlocks(t, c, 40, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	// Pick a stripe with at least two data blocks.
	var sm *StripeMeta
	var sid topology.StripeID = -1
	for _, id := range c.NameNode().EncodedStripes() {
		cand, err := c.NameNode().Stripe(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(cand.Info.Blocks) >= 2 {
			sm, sid = cand, id
			break
		}
	}
	if sm == nil {
		t.Fatal("no multi-block stripe sealed")
	}
	// Teleport block 0's surviving replica into block 1's rack.
	b0, b1 := sm.Info.Blocks[0], sm.Info.Blocks[1]
	m0, _ := c.NameNode().Block(b0)
	m1, _ := c.NameNode().Block(b1)
	rack1, _ := c.Topology().RackOf(m1.Nodes[0])
	nodes, _ := c.Topology().NodesInRack(rack1)
	var target topology.NodeID = -1
	for _, n := range nodes {
		if n != m1.Nodes[0] {
			target = n
			break
		}
	}
	srcDN, _ := c.DataNodeOf(m0.Nodes[0])
	payload, err := srcDN.Store.Get(DataKey(b0))
	if err != nil {
		t.Fatal(err)
	}
	dstDN, _ := c.DataNodeOf(target)
	if err := dstDN.Store.Put(DataKey(b0), payload); err != nil {
		t.Fatal(err)
	}
	if err := srcDN.Store.Delete(DataKey(b0)); err != nil {
		t.Fatal(err)
	}
	if err := c.NameNode().UpdateBlockLocation(b0, []topology.NodeID{target}); err != nil {
		t.Fatal(err)
	}

	bad, err := c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != sid {
		t.Fatalf("monitor = %v, want [%d]", bad, sid)
	}
	moved, _, err := c.RaidNode().BlockMover()
	if err != nil {
		t.Fatalf("BlockMover: %v", err)
	}
	if moved == 0 {
		t.Fatal("mover did nothing")
	}
	bad, err = c.RaidNode().PlacementMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("still violating after mover: %v", bad)
	}
}
