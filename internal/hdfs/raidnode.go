package hdfs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ear/internal/events"
	"ear/internal/mapred"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/topology"
	"ear/internal/workgroup"
)

// moverFanIn bounds how many violating stripes the BlockMover fixes
// concurrently.
const moverFanIn = 4

// RaidNode coordinates the asynchronous encoding operation, the role
// HDFS-RAID's RaidNode plays: it drains the pre-encoding store, submits a
// map-only MapReduce encoding job whose tasks prefer (and, with the strict
// flag, are pinned to) each stripe's core rack, verifies post-encoding
// placement (PlacementMonitor), and relocates blocks when rack-level fault
// tolerance is violated (BlockMover).
type RaidNode struct {
	c *Cluster

	mu    sync.Mutex
	stats EncodeStats
	// gen counts ResetStats calls; cursors remember the generation they were
	// minted in so a cursor from before a reset is detected and treated as
	// "since startup" instead of producing negative deltas.
	gen int
}

// EncodeStats aggregates the outcome of encoding jobs.
type EncodeStats struct {
	Stripes        int
	EncodedBytes   int64
	Duration       time.Duration
	ThroughputMBps float64
	// CrossRackDownloads counts data blocks fetched across racks by
	// encoding tasks (zero under EAR with strict scheduling).
	CrossRackDownloads int
	// Violations counts stripes whose post-encoding layout breaks
	// rack-level fault tolerance and needs the BlockMover.
	Violations int
	// PipelinedStripes counts stripes encoded through the distributed
	// pipeline (Config.PipelinedEncode) rather than the gather path.
	PipelinedStripes int
	// PartialSumBytes is the partial parity-sum traffic shipped between
	// pipeline hops; the pipelined path's replacement for gather traffic.
	// Cross-rack partial hops also count toward CrossRackDownloads at m
	// block-equivalents per boundary so the two paths stay comparable.
	PartialSumBytes int64
	// TaskPlacements records where each encoding map task ran.
	TaskPlacements []mapred.Placement
}

func newRaidNode(c *Cluster) *RaidNode { return &RaidNode{c: c} }

// Stats returns a copy of the accumulated encoding statistics, including
// every task placement ever recorded (an O(total-placements) copy). Pollers
// should prefer StatsSince.
func (r *RaidNode) Stats() EncodeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.TaskPlacements = append([]mapred.Placement(nil), r.stats.TaskPlacements...)
	return s
}

// StatsCursor marks a position in the RaidNode's cumulative stats stream.
// The zero value means "since startup". Obtain updated cursors from
// StatsSince.
type StatsCursor struct {
	stripes      int
	encodedBytes int64
	duration     time.Duration
	crossRack    int
	violations   int
	pipelined    int
	partialBytes int64
	placements   int
	gen          int
}

// ResetStats zeroes the accumulated statistics (test isolation and admin
// resets). Cursors minted before the reset are invalidated: the next
// StatsSince with such a cursor reports everything accumulated since the
// reset, never negative deltas.
func (r *RaidNode) ResetStats() {
	r.mu.Lock()
	r.stats = EncodeStats{}
	r.gen++
	r.mu.Unlock()
}

// StatsSince returns the statistics accumulated after the cursor and the
// cursor to pass on the next call. Only task placements recorded since the
// cursor are copied, so a periodic poller (the admin endpoint, the OpStats
// RPC) pays O(new placements) per call instead of re-copying the whole
// history like Stats. A cursor minted before a ResetStats is stale and is
// treated as the zero cursor ("since the reset").
func (r *RaidNode) StatsSince(cur StatsCursor) (EncodeStats, StatsCursor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur.gen != r.gen {
		cur = StatsCursor{gen: r.gen}
	}
	d := EncodeStats{
		Stripes:            r.stats.Stripes - cur.stripes,
		EncodedBytes:       r.stats.EncodedBytes - cur.encodedBytes,
		Duration:           r.stats.Duration - cur.duration,
		CrossRackDownloads: r.stats.CrossRackDownloads - cur.crossRack,
		Violations:         r.stats.Violations - cur.violations,
		PipelinedStripes:   r.stats.PipelinedStripes - cur.pipelined,
		PartialSumBytes:    r.stats.PartialSumBytes - cur.partialBytes,
	}
	if cur.placements < len(r.stats.TaskPlacements) {
		d.TaskPlacements = append([]mapred.Placement(nil), r.stats.TaskPlacements[cur.placements:]...)
	}
	if d.Duration > 0 {
		d.ThroughputMBps = float64(d.EncodedBytes) / (1 << 20) / d.Duration.Seconds()
	}
	next := StatsCursor{
		stripes:      r.stats.Stripes,
		encodedBytes: r.stats.EncodedBytes,
		duration:     r.stats.Duration,
		crossRack:    r.stats.CrossRackDownloads,
		violations:   r.stats.Violations,
		pipelined:    r.stats.PipelinedStripes,
		partialBytes: r.stats.PartialSumBytes,
		placements:   len(r.stats.TaskPlacements),
		gen:          r.gen,
	}
	return d, next
}

// encodeTask is one map task's work: the stripes it encodes and its
// scheduling preference.
type encodeTask struct {
	stripes   []*placement.StripeInfo
	preferred topology.NodeID
	strict    bool
}

// buildTasks splits the pending stripes into at most MapTasks map tasks.
// Under EAR, stripes sharing a core rack stay in the same task and the task
// is pinned to that rack (the paper's second and third modifications);
// under RR tasks have no placement preference.
func (r *RaidNode) buildTasks(stripes []*placement.StripeInfo) ([]*encodeTask, error) {
	if len(stripes) == 0 {
		return nil, nil
	}
	perTask := (len(stripes) + r.c.cfg.MapTasks - 1) / r.c.cfg.MapTasks

	if r.c.cfg.Policy != "ear" {
		var tasks []*encodeTask
		for start := 0; start < len(stripes); start += perTask {
			end := start + perTask
			if end > len(stripes) {
				end = len(stripes)
			}
			tasks = append(tasks, &encodeTask{stripes: stripes[start:end], preferred: mapred.AnyNode})
		}
		return tasks, nil
	}

	byRack := make(map[topology.RackID][]*placement.StripeInfo)
	var rackOrder []topology.RackID
	for _, s := range stripes {
		if _, ok := byRack[s.CoreRack]; !ok {
			rackOrder = append(rackOrder, s.CoreRack)
		}
		byRack[s.CoreRack] = append(byRack[s.CoreRack], s)
	}
	var tasks []*encodeTask
	for _, rack := range rackOrder {
		group := byRack[rack]
		nodes, err := r.c.top.NodesInRack(rack)
		if err != nil {
			return nil, err
		}
		for start := 0; start < len(group); start += perTask {
			end := start + perTask
			if end > len(group) {
				end = len(group)
			}
			tasks = append(tasks, &encodeTask{
				stripes:   group[start:end],
				preferred: nodes[r.c.randIntn(len(nodes))],
				strict:    true,
			})
		}
	}
	return tasks, nil
}

// EncodeAll encodes every pending stripe with a background context. See
// EncodeAllCtx.
func (r *RaidNode) EncodeAll() (EncodeStats, error) {
	return r.EncodeAllCtx(context.Background())
}

// EncodeAllCtx drains the pre-encoding store and encodes every pending
// stripe through one MapReduce job, returning the job's statistics. When a
// tracer is installed (Cluster.SetTracer) the job emits one span per phase:
// stripe-selection, then per map task download / encode / parity-write /
// replica-delete. Cancelling ctx cancels the job: tasks waiting for slots
// give up and running tasks abort their in-flight transfers within one
// chunk reservation.
func (r *RaidNode) EncodeAllCtx(ctx context.Context) (EncodeStats, error) {
	var jobSpan *telemetry.Span
	if parent := telemetry.SpanFromContext(ctx); parent != nil {
		jobSpan = parent.Child("encode-job")
	} else {
		jobSpan = r.c.trace().Start("encode-job")
	}
	jobSpan.Arg(telemetry.ComponentArg, "raidnode")
	defer jobSpan.End()
	ctx = telemetry.ContextWithSpan(ctx, jobSpan)
	tel := r.c.metrics()

	sel := jobSpan.Child("stripe-selection")
	stripes, err := r.c.nn.TakePendingStripes()
	if err != nil {
		sel.End()
		return EncodeStats{}, err
	}
	tasks, err := r.buildTasks(stripes)
	sel.End()
	if err != nil {
		return EncodeStats{}, err
	}
	jobSpan.Arg("stripes", strconv.Itoa(len(stripes))).Arg("tasks", strconv.Itoa(len(tasks)))
	var job mapred.Job
	job.Name = fmt.Sprintf("encode-%d-stripes", len(stripes))
	var mu sync.Mutex
	stats := EncodeStats{Stripes: len(stripes)}
	if tel != nil {
		tel.encJobs.Inc()
		tel.stripes.Add(float64(len(stripes)))
	}
	for i, t := range tasks {
		t := t
		name := fmt.Sprintf("%s-map%d", job.Name, i)
		job.Tasks = append(job.Tasks, &mapred.Task{
			Name:       name,
			Preferred:  t.preferred,
			StrictRack: t.strict,
			Run: func(taskCtx context.Context, on topology.NodeID) error {
				taskSpan := jobSpan.ChildTrack("map-task").
					Arg(telemetry.ComponentArg, "raidnode").
					Arg("task", name).
					Arg("node", strconv.Itoa(int(on)))
				defer taskSpan.End()
				taskCtx = telemetry.ContextWithSpan(taskCtx, taskSpan)
				// Stripes are independent, so the task keeps up to
				// EncodeParallelism of them in flight: one stripe's parity
				// uploads overlap the next stripe's gather and compute.
				par := r.c.cfg.EncodeParallelism
				if r.c.cfg.SequentialDataPath || par < 1 {
					par = 1
				}
				sg, sctx := workgroup.WithContext(taskCtx)
				sg.SetLimit(par)
				for _, s := range t.stripes {
					s := s
					sg.Go(func() error {
						res, err := r.c.encodeStripe(sctx, s, on, taskSpan)
						if err != nil {
							return err
						}
						encodedBytes := int64(len(s.Blocks) * r.c.cfg.BlockSizeBytes)
						mu.Lock()
						stats.CrossRackDownloads += res.cross
						if res.violated {
							stats.Violations++
						}
						stats.EncodedBytes += encodedBytes
						if res.pipelined {
							stats.PipelinedStripes++
						}
						stats.PartialSumBytes += res.partialBytes
						mu.Unlock()
						if tel != nil {
							tel.crossDl.Add(float64(res.cross))
							if res.violated {
								tel.violations.Inc()
							}
							tel.encBytes.Add(float64(encodedBytes))
							if res.pipelined {
								tel.pipeStripes.Inc()
							}
							if res.partialBytes > 0 {
								tel.partialBytes.Add(float64(res.partialBytes))
							}
						}
						return nil
					})
				}
				return sg.Wait()
			},
		})
	}
	start := time.Now()
	placements, err := r.c.jt.SubmitCtx(ctx, job)
	stats.Duration = time.Since(start)
	stats.TaskPlacements = placements
	if err != nil {
		return stats, err
	}
	if stats.Duration > 0 {
		stats.ThroughputMBps = float64(stats.EncodedBytes) / (1 << 20) / stats.Duration.Seconds()
	}
	r.mu.Lock()
	r.stats.Stripes += stats.Stripes
	r.stats.EncodedBytes += stats.EncodedBytes
	r.stats.Duration += stats.Duration
	r.stats.CrossRackDownloads += stats.CrossRackDownloads
	r.stats.Violations += stats.Violations
	r.stats.PipelinedStripes += stats.PipelinedStripes
	r.stats.PartialSumBytes += stats.PartialSumBytes
	r.stats.TaskPlacements = append(r.stats.TaskPlacements, placements...)
	r.mu.Unlock()
	return stats, nil
}

// stripeResult summarizes one stripe's encode for the job-level stats
// merge: cross-rack traffic (block-equivalents), whether the committed
// layout violates rack fault tolerance, and — in pipelined mode — the
// partial-sum bytes that replaced gather traffic.
type stripeResult struct {
	cross        int
	violated     bool
	pipelined    bool
	partialBytes int64
}

// encodeStripe performs the paper's three-step encoding operation on the
// given node: materialize the parity blocks (by gathering one replica of
// each data block to the encoder, or — with Config.PipelinedEncode — by
// chaining partial parity sums through the replica holders), upload them,
// and delete the redundant replicas. The fabric's shaping serializes
// transfers where links are shared, as the TaskTracker's parallel reads of
// Section II-A would be. The parent span (nil for untraced runs) receives
// one child span per phase.
func (c *Cluster) encodeStripe(ctx context.Context, info *placement.StripeInfo, encoder topology.NodeID, parent *telemetry.Span) (stripeResult, error) {
	var res stripeResult
	encRack, err := c.top.RackOf(encoder)
	if err != nil {
		return res, err
	}
	stripeStart := time.Now()
	defer func() {
		if m := c.metrics(); m != nil {
			m.encStripe.Observe(time.Since(stripeStart).Seconds())
		}
	}()
	res.pipelined = c.cfg.PipelinedEncode && !c.cfg.SequentialDataPath
	trace := telemetry.TraceFromContext(ctx)
	if j := c.Journal(); j != nil {
		ev := events.New(events.StripeEncodeStarted, "raidnode")
		ev.Stripe = info.ID
		ev.Node = encoder
		ev.Rack = encRack
		ev.Trace = trace
		if res.pipelined {
			ev.Detail = "pipelined"
		}
		j.Publish(ev)
	}
	// Both paths return pooled parity buffers (released here, success or
	// not) and the aborted-member mask; nothing has been committed yet, so
	// a cancellation up to this point leaves no trace in any store.
	var (
		parity  [][]byte
		aborted []bool
	)
	if res.pipelined {
		parity, aborted, err = c.pipelineParity(ctx, info, encoder, encRack, parent, &res)
	} else {
		parity, aborted, err = c.gatherParity(ctx, info, encoder, encRack, parent, &res)
	}
	defer func() {
		for _, p := range parity {
			c.bufPool.Put(p)
		}
	}()
	if err != nil {
		return res, err
	}
	plan, err := c.nn.PlanStripe(info)
	if err != nil {
		return res, err
	}
	// Parity uploads go out with bounded fan-in. Puts are staged until every
	// shaped transfer has finished — the same contract as the write
	// pipeline — so a cancellation mid-upload commits nothing: no store
	// gains a parity key, no replica is deleted, and the requeued stripe
	// re-encodes from its intact replicas.
	fanIn := gatherFanIn
	if c.cfg.SequentialDataPath {
		fanIn = 1
	}
	pw := parent.Child("parity-write")
	ug, uctx := workgroup.WithContext(ctx)
	ug.SetLimit(fanIn)
	for j, node := range plan.Parity {
		j, node := j, node
		ug.Go(func() error {
			if err := c.transferShaped(uctx, encoder, node, len(parity[j])); err != nil {
				return fmt.Errorf("upload parity %d to node %d: %w", j, node, err)
			}
			return nil
		})
	}
	err = ug.Wait()
	pw.End()
	if err != nil {
		return res, err
	}
	for j, node := range plan.Parity {
		dn, err := c.DataNodeOf(node)
		if err != nil {
			return res, err
		}
		if err := dn.Store.Put(ParityKey(info.ID, j), parity[j]); err != nil {
			return res, fmt.Errorf("upload parity %d to node %d: %w", j, node, err)
		}
	}
	// Delete redundant replicas, keeping the plan's chosen one. Aborted
	// members never stored anything.
	del := parent.Child("replica-delete")
	defer del.End()
	jnl := c.Journal()
	for i, b := range info.Blocks {
		if aborted[i] {
			continue
		}
		for _, n := range info.Placements[i].Nodes {
			if n == plan.Keep[i] {
				continue
			}
			dn, err := c.DataNodeOf(n)
			if err != nil {
				return res, err
			}
			if err := dn.Store.Delete(DataKey(b)); err != nil {
				return res, fmt.Errorf("delete replica of %d on %d: %w", b, n, err)
			}
			if jnl != nil {
				ev := events.New(events.ReplicaDeleted, "raidnode")
				ev.Block = b
				ev.Stripe = info.ID
				ev.Node = n
				ev.Trace = trace
				jnl.Publish(ev)
			}
		}
	}
	if err := c.nn.CommitEncoding(info.ID, plan); err != nil {
		return res, err
	}
	// Encoding is background work driven by the RaidNode, not a tenant
	// request: bill each member block's owner for its share of the stripe.
	for i, b := range info.Blocks {
		if aborted[i] {
			continue
		}
		c.acct.Charge(c.acct.Owner(b), "encode", 1, int64(c.cfg.BlockSizeBytes))
	}
	res.violated = plan.Violation
	return res, nil
}

// gatherParity is the baseline encode data path: download one replica of
// each data block to the encoder with bounded fan-in (sequential when
// Config.SequentialDataPath is set), then run the coding kernels over the
// gathered blocks. It returns pooled parity buffers the caller must
// release, the aborted-member mask, and fills res.cross with the count of
// cross-rack block downloads.
func (c *Cluster) gatherParity(ctx context.Context, info *placement.StripeInfo, encoder topology.NodeID, encRack topology.RackID, parent *telemetry.Span, res *stripeResult) ([][]byte, []bool, error) {
	fanIn := gatherFanIn
	if c.cfg.SequentialDataPath {
		fanIn = 1
	}
	dl := parent.Child("download").Arg("stripe", strconv.FormatInt(int64(info.ID), 10))
	// Gather and parity buffers come from the cluster pool; zero-valued
	// members (aborted blocks, short-stripe padding) share the one immutable
	// zero block, which the coding kernels only ever read. The gather
	// buffers go back when this returns, success or not; parity buffers are
	// released on failure and handed to the caller on success.
	data := make([][]byte, c.cfg.K)
	pooled := make([]bool, c.cfg.K)
	defer func() {
		for i, ok := range pooled {
			if ok {
				c.bufPool.Put(data[i])
			}
		}
	}()
	// Resolve sources up front (cheap metadata work); aborted members have
	// no bytes anywhere and encode as zeros, like short-stripe padding.
	type fetchJob struct {
		i     int
		b     topology.BlockID
		src   topology.NodeID
		cross bool
	}
	aborted := make([]bool, len(info.Blocks))
	var jobs []fetchJob
	for i, b := range info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			dl.End()
			return nil, nil, err
		}
		if len(live) == 0 {
			if meta, merr := c.nn.Block(b); merr == nil && meta.Aborted {
				aborted[i] = true
				data[i] = c.zeroBlock
				continue
			}
		}
		src, err := c.chooseReplica(live, encoder)
		if err != nil {
			dl.End()
			return nil, nil, fmt.Errorf("stripe %d block %d: %w", info.ID, b, err)
		}
		srcRack, err := c.top.RackOf(src)
		if err != nil {
			dl.End()
			return nil, nil, err
		}
		jobs = append(jobs, fetchJob{i: i, b: b, src: src, cross: srcRack != encRack})
	}
	if m := c.metrics(); m != nil && len(jobs) > 0 {
		m.gatherPar.Observe(float64(min(len(jobs), fanIn)))
	}
	// Cross-rack downloads are counted when a fetch completes, not when its
	// source is resolved, so a failed gather never reports traffic that was
	// only planned.
	var cross atomic.Int64
	g, gctx := workgroup.WithContext(ctx)
	g.SetLimit(fanIn)
	for _, j := range jobs {
		j := j
		g.Go(func() error {
			dn, err := c.DataNodeOf(j.src)
			if err != nil {
				return fmt.Errorf("fetch block %d from node %d: %w", j.b, j.src, err)
			}
			buf := c.bufPool.Get(c.cfg.BlockSizeBytes)
			if err := dn.Store.GetInto(DataKey(j.b), buf); err != nil {
				c.bufPool.Put(buf)
				return fmt.Errorf("fetch block %d from node %d: %w", j.b, j.src, err)
			}
			if err := c.transferShaped(gctx, j.src, encoder, len(buf)); err != nil {
				c.bufPool.Put(buf)
				return fmt.Errorf("fetch block %d from node %d: %w", j.b, j.src, err)
			}
			data[j.i] = buf
			pooled[j.i] = true
			if j.cross {
				cross.Add(1)
			}
			return nil
		})
	}
	err := g.Wait()
	dl.Arg("cross_rack_downloads", strconv.FormatInt(cross.Load(), 10)).End()
	res.cross = int(cross.Load())
	if err != nil {
		return nil, nil, err
	}
	// Zero-pad short stripes to k blocks.
	for i := len(info.Blocks); i < c.cfg.K; i++ {
		data[i] = c.zeroBlock
	}
	encSpan := parent.Child("encode")
	pbufs := make([][]byte, c.coder.M())
	ok := false
	defer func() {
		if !ok {
			for _, p := range pbufs {
				if p != nil {
					c.bufPool.Put(p)
				}
			}
		}
	}()
	for j := range pbufs {
		pbufs[j] = c.bufPool.Get(c.cfg.BlockSizeBytes)
	}
	encStart := time.Now()
	err = c.coder.EncodeInto(data, pbufs)
	encDur := time.Since(encStart)
	encSpan.End()
	if err != nil {
		return nil, nil, err
	}
	if m := c.metrics(); m != nil {
		if secs := encDur.Seconds(); secs > 0 {
			m.encMBps.Observe(float64(len(data)*c.cfg.BlockSizeBytes) / (1 << 20) / secs)
		}
		m.poolHit.Set(c.bufPool.HitRate())
	}
	ok = true
	return pbufs, aborted, nil
}

// PlacementMonitor scans encoded stripes and returns the IDs of those whose
// current layout violates the rack-level fault-tolerance requirement.
func (r *RaidNode) PlacementMonitor() ([]topology.StripeID, error) {
	var bad []topology.StripeID
	jnl := r.c.Journal()
	for _, id := range r.c.nn.EncodedStripes() {
		sm, err := r.c.nn.Stripe(id)
		if err != nil {
			return nil, err
		}
		layout, err := r.currentLayout(sm)
		if err != nil {
			return nil, err
		}
		detail := "ok"
		if err := layout.Validate(r.c.top, r.c.cfg.C); err != nil {
			bad = append(bad, id)
			detail = "violating"
		}
		if jnl != nil {
			ev := events.New(events.StripeVerified, "raidnode")
			ev.Stripe = id
			ev.Detail = detail
			jnl.Publish(ev)
		}
	}
	return bad, nil
}

// currentLayout assembles the live layout of an encoded stripe.
func (r *RaidNode) currentLayout(sm *StripeMeta) (topology.StripeLayout, error) {
	layout := topology.StripeLayout{Stripe: sm.Info.ID}
	for _, b := range sm.Info.Blocks {
		meta, err := r.c.nn.Block(b)
		if err != nil {
			return layout, err
		}
		layout.Data = append(layout.Data, meta.Nodes...)
	}
	if sm.Plan != nil {
		layout.Parity = append(layout.Parity, sm.Plan.Parity...)
	}
	return layout, nil
}

// BlockMover relocates blocks of violating stripes with a background
// context. See BlockMoverCtx.
func (r *RaidNode) BlockMover() (moved int, movedBytes int64, err error) {
	return r.BlockMoverCtx(context.Background())
}

// BlockMoverCtx relocates blocks of violating stripes until each rack holds
// at most c blocks of the stripe, returning the number of blocks moved and
// the bytes of relocation traffic generated (the overhead EAR avoids).
// Stripes are independent, so up to moverFanIn of them are fixed
// concurrently (one at a time under Config.SequentialDataPath).
func (r *RaidNode) BlockMoverCtx(ctx context.Context) (moved int, movedBytes int64, err error) {
	bad, err := r.PlacementMonitor()
	if err != nil {
		return 0, 0, err
	}
	g, gctx := workgroup.WithContext(ctx)
	if r.c.cfg.SequentialDataPath {
		g.SetLimit(1)
	} else {
		g.SetLimit(moverFanIn)
	}
	var mu sync.Mutex
	for _, id := range bad {
		id := id
		g.Go(func() error {
			n, b, err := r.fixStripe(gctx, id)
			mu.Lock()
			moved += n
			movedBytes += b
			mu.Unlock()
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return moved, movedBytes, err
	}
	return moved, movedBytes, nil
}

// fixStripe moves excess blocks of one stripe out of over-full racks. It
// re-fetches the stripe metadata every round: Stripe returns a snapshot, and
// each relocation (UpdateParityLocation in particular) changes the
// authoritative layout the next round must see.
func (r *RaidNode) fixStripe(ctx context.Context, id topology.StripeID) (int, int64, error) {
	moved := 0
	var movedBytes int64
	maxPerRack := r.c.cfg.C
	if maxPerRack <= 0 {
		maxPerRack = 1
	}
	for {
		sm, err := r.c.nn.Stripe(id)
		if err != nil {
			return moved, movedBytes, err
		}
		layout, err := r.currentLayout(sm)
		if err != nil {
			return moved, movedBytes, err
		}
		counts, err := layout.BlocksPerRack(r.c.top)
		if err != nil {
			return moved, movedBytes, err
		}
		var overRack topology.RackID = -1
		for rk, cnt := range counts {
			if cnt > maxPerRack {
				overRack = rk
				break
			}
		}
		if overRack < 0 {
			return moved, movedBytes, nil
		}
		// Pick a data block of the stripe sitting in the over-full rack.
		var victim topology.BlockID = -1
		var victimNode topology.NodeID
		for _, b := range sm.Info.Blocks {
			meta, err := r.c.nn.Block(b)
			if err != nil {
				return moved, movedBytes, err
			}
			if len(meta.Nodes) != 1 {
				continue
			}
			rk, err := r.c.top.RackOf(meta.Nodes[0])
			if err != nil {
				return moved, movedBytes, err
			}
			if rk == overRack {
				victim = b
				victimNode = meta.Nodes[0]
				break
			}
		}
		if victim < 0 {
			// Only parity blocks in the over-full rack; move one of those
			// and re-check the layout.
			b, err := r.fixParity(ctx, sm, overRack)
			if err != nil {
				return moved, movedBytes, err
			}
			moved++
			movedBytes += b
			continue
		}
		target, err := r.c.pickRepairNode(sm)
		if err != nil {
			return moved, movedBytes, err
		}
		n, err := r.c.relocateBlock(ctx, DataKey(victim), victimNode, target)
		if err != nil {
			return moved, movedBytes, err
		}
		if err := r.c.nn.UpdateBlockLocation(victim, []topology.NodeID{target}); err != nil {
			return moved, movedBytes, err
		}
		if jnl := r.c.Journal(); jnl != nil {
			ev := events.New(events.ReplicaRelocated, "blockmover")
			ev.Block = victim
			ev.Stripe = sm.Info.ID
			ev.Node = victimNode
			ev.Peer = target
			ev.Bytes = n
			jnl.Publish(ev)
		}
		moved++
		movedBytes += n
	}
}

// fixParity relocates one parity block out of the over-full rack and
// returns the bytes moved.
func (r *RaidNode) fixParity(ctx context.Context, sm *StripeMeta, overRack topology.RackID) (int64, error) {
	if sm.Plan == nil {
		return 0, fmt.Errorf("hdfs: stripe %d violating without plan", sm.Info.ID)
	}
	for j, node := range sm.Plan.Parity {
		rk, err := r.c.top.RackOf(node)
		if err != nil {
			return 0, err
		}
		if rk != overRack {
			continue
		}
		target, err := r.c.pickRepairNode(sm)
		if err != nil {
			return 0, err
		}
		n, err := r.c.relocateBlock(ctx, ParityKey(sm.Info.ID, j), node, target)
		if err != nil {
			return 0, err
		}
		if err := r.c.nn.UpdateParityLocation(sm.Info.ID, j, target); err != nil {
			return 0, err
		}
		if jnl := r.c.Journal(); jnl != nil {
			ev := events.New(events.ReplicaRelocated, "blockmover")
			ev.Stripe = sm.Info.ID
			ev.Node = node
			ev.Peer = target
			ev.Bytes = n
			ev.Detail = "parity"
			jnl.Publish(ev)
		}
		return n, nil
	}
	return 0, fmt.Errorf("hdfs: stripe %d: nothing movable in rack %d", sm.Info.ID, overRack)
}
