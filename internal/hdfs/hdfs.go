// Package hdfs is the in-process mini-HDFS testbed: a NameNode holding all
// metadata and the placement-policy hook, DataNodes storing checksummed
// blocks, a client write/read path that moves real bytes over a
// bandwidth-shaped fabric, and a RaidNode that performs the paper's
// asynchronous encoding operation through a map-only MapReduce job. It is
// the reproduction substrate for the paper's testbed experiments (Section
// V-A), substituting Facebook's HDFS + HDFS-RAID deployment.
package hdfs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ear/internal/blockstore"
	"ear/internal/erasure"
	"ear/internal/events"
	"ear/internal/fabric"
	"ear/internal/mapred"
	"ear/internal/metalog"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/tenant"
	"ear/internal/topology"
)

// ErrInvalidConfig indicates an unusable cluster configuration.
var ErrInvalidConfig = errors.New("hdfs: invalid config")

// Config describes a mini-HDFS cluster.
type Config struct {
	Racks        int
	NodesPerRack int
	// Policy selects the replica placement policy: "rr" (default) or
	// "ear".
	Policy string
	// Replicas is the replication factor (default 3; the paper's testbed
	// uses 2 because each machine is its own rack).
	Replicas int
	// K and N define the (n, k) erasure code; C bounds blocks per rack
	// after encoding; TargetRacks is R' (0 = all racks).
	K, N, C     int
	TargetRacks int
	// SpreadReplicas places each replica in its own rack.
	SpreadReplicas bool
	// BlockSizeBytes is the fixed block size (default 1 MiB; scaled down
	// from HDFS's 64 MB so experiments complete quickly — bandwidth scales
	// with it).
	BlockSizeBytes int
	// BandwidthBytesPerSec shapes every fabric link (default 32 MiB/s,
	// a 1 Gb/s link scaled to the reduced block size).
	BandwidthBytesPerSec float64
	// DiskBandwidthBytesPerSec, when positive, charges local (same-node)
	// block reads at this rate, modeling the testbed's SATA disks. 0
	// leaves local reads unshaped.
	DiskBandwidthBytesPerSec float64
	// Scheme selects the erasure code construction (default Reed-Solomon,
	// matching HDFS-RAID).
	Scheme erasure.Scheme
	// SlotsPerNode is the TaskTracker map-slot count (default 4).
	SlotsPerNode int
	// MapTasks is the number of map tasks per encoding job (default 12,
	// the paper's setting).
	MapTasks int
	Seed     int64
	// SequentialDataPath reverts the client data path to whole-block
	// store-and-forward writes and one-at-a-time stripe gathers. It exists
	// for benchmarking and equivalence testing against the pipelined path;
	// production configurations leave it false.
	SequentialDataPath bool
	// EncodeParallelism bounds how many stripes one encode map task works
	// on concurrently, so the gather, compute, and upload phases of
	// different stripes overlap (default 4). SequentialDataPath forces 1.
	EncodeParallelism int
	// PipelinedEncode switches stripe encoding from gather-everything-then-
	// encode to the RapidRAID-style distributed pipeline: the replica
	// holders chain chunk-by-chunk partial parity sums toward the encoder,
	// aggregating intra-rack before each core crossing, so transfer and
	// GF(256) arithmetic overlap and only partial sums cross the core. The
	// gather path remains the ablation baseline; SequentialDataPath forces
	// it. Parity content is bit-identical either way.
	PipelinedEncode bool
	// PipelineChunkBytes is the granularity at which pipelined encoding
	// streams and folds partial sums (default fabric.ChunkBytes). Smaller
	// chunks fill the pipeline faster; larger ones amortize per-chunk
	// shaping overhead.
	PipelineChunkBytes int
	// RackAwareRepair switches block repair from the naive gather path
	// (download k whole survivor blocks to the repairer, decode centrally)
	// to the two-level rack-aware path: every survivor rack folds its local
	// survivors into one GF(256) partial sum with decode-row coefficients
	// and ships exactly one partial across the core, chunk-pipelined along
	// the planned chain toward the repairer. The gather path remains the
	// ablation baseline; SequentialDataPath forces it. Repaired content is
	// bit-identical either way.
	RackAwareRepair bool
	// RecoverParallelism bounds how many block repairs Cluster.RecoverNode
	// runs concurrently when rebuilding a dead DataNode (default 8).
	RecoverParallelism int
	// SerializeMetadata funnels every NameNode operation through a single
	// global mutex, reverting the sharded metadata path to the historical
	// one-big-lock behavior. It exists for benchmarking and equivalence
	// testing; production configurations leave it false.
	SerializeMetadata bool

	// MetaDir, when set, makes the metadata plane durable: NewCluster opens
	// a write-ahead op log there, recovers whatever a previous incarnation
	// left (snapshot plus log tail), and routes every NameNode mutation
	// through it. Empty keeps the in-memory-only metadata plane.
	MetaDir string
	// MetaSync selects the log's fsync policy: "interval" (group fsyncs on a
	// timer, the default), "always" (fsync before every mutation returns),
	// or "none" (OS-buffered only).
	MetaSync string
	// MetaSyncEvery is the fsync period under MetaSync "interval"
	// (default 25ms).
	MetaSyncEvery time.Duration
	// MetaSegmentBytes caps one log segment (default 16 MiB).
	MetaSegmentBytes int64
	// MetaSnapshotEvery, when positive, checkpoints the metadata plane after
	// that many log appends, truncating the covered log prefix. 0 means
	// snapshots happen only on explicit NameNode.SnapshotNow calls.
	MetaSnapshotEvery int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "rr"
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.BlockSizeBytes == 0 {
		c.BlockSizeBytes = 1 << 20
	}
	if c.BandwidthBytesPerSec == 0 {
		c.BandwidthBytesPerSec = 32 << 20
	}
	if c.Scheme == 0 {
		c.Scheme = erasure.ReedSolomon
	}
	if c.SlotsPerNode == 0 {
		c.SlotsPerNode = 4
	}
	if c.MapTasks == 0 {
		c.MapTasks = 12
	}
	if c.EncodeParallelism == 0 {
		c.EncodeParallelism = 4
	}
	if c.PipelineChunkBytes == 0 {
		c.PipelineChunkBytes = fabric.ChunkBytes
	}
	if c.RecoverParallelism == 0 {
		c.RecoverParallelism = 8
	}
	return c
}

// DataNode stores blocks for one node of the cluster.
type DataNode struct {
	ID    topology.NodeID
	Store *blockstore.Store
}

// Cluster wires the mini-HDFS components together.
type Cluster struct {
	cfg   Config
	top   *topology.Topology
	fab   *fabric.Fabric
	nn    *NameNode
	dns   []*DataNode
	coder *erasure.Coder
	jt    *mapred.JobTracker
	raid  *RaidNode

	// bufPool recycles block-sized buffers across stripe gathers, parity
	// encodes, and reconstructions. zeroBlock is the shared immutable
	// all-zero block used for short-stripe padding and aborted stripe
	// members; the coding kernels only read their inputs, so one instance
	// serves every stripe and must never be written.
	bufPool   *erasure.BufferPool
	zeroBlock []byte

	// rng guarded by rngMu serves concurrent client-path random choices;
	// the NameNode's policy rng is separate and serialized by its lock.
	// rngMu also guards lazy creation of the namespace.
	rngMu sync.Mutex
	rng   *rand.Rand
	ns    *Namespace

	// tel, tracer, and jrn are the observability sinks, installed by
	// SetTelemetry / SetTracer / SetJournal (atomic so installation never
	// races with in-flight operations; nil means unobserved).
	tel    atomic.Pointer[clusterMetrics]
	tracer atomic.Pointer[telemetry.Tracer]
	jrn    atomic.Pointer[events.Journal]

	// acct is the per-tenant resource accounting table, always on (charges
	// are two map lookups under one mutex). Every resource sink — NameNode
	// allocations, client writes/reads, fabric bytes, RaidNode encode and
	// repair work — charges the tenant carried by the operation's context,
	// or the block's recorded owner for background work.
	acct *tenant.Table

	// fsyncObs forwards the metadata log's fsync durations into the
	// metalog_fsync_seconds histogram; non-nil only when MetaDir is set.
	// The indirection exists because the log opens (and may already fsync
	// during recovery) before SetTelemetry runs.
	fsyncObs *fsyncObserver
}

// fsyncObserver adapts metalog's FsyncObserver callback to a telemetry
// histogram installed later (nil until SetTelemetry; observations before
// that are dropped, matching every other sink's attach-before-traffic
// contract).
type fsyncObserver struct {
	hist atomic.Pointer[telemetry.Metric]
}

func (o *fsyncObserver) observe(d time.Duration) {
	if h := o.hist.Load(); h != nil {
		h.Observe(d.Seconds())
	}
}

// clusterMetrics bundles the cluster's metric handles.
type clusterMetrics struct {
	writeLat   *telemetry.Metric // hdfs_client_write_seconds
	readLat    *telemetry.Metric // hdfs_client_read_seconds
	stripes    *telemetry.Metric // raidnode_stripes_encoded_total
	encBytes   *telemetry.Metric // raidnode_encoded_bytes_total
	crossDl    *telemetry.Metric // raidnode_cross_rack_downloads_total
	violations *telemetry.Metric // raidnode_placement_violations_total
	encJobs    *telemetry.Metric // raidnode_encode_jobs_total
	pipeFill   *telemetry.Metric // hdfs_pipeline_fill_seconds
	gatherPar  *telemetry.Metric // hdfs_gather_parallelism
	encMBps    *telemetry.Metric // raidnode_encode_mbps
	poolHit    *telemetry.Metric // erasure_pool_hit_ratio
	encStripe  *telemetry.Metric // raidnode_stripe_encode_seconds
	repairLat  *telemetry.Metric // hdfs_repair_seconds

	// Pipelined-encode instrumentation: per-hop fill/drain latency, the
	// measured overlap (busy-hop-seconds per wall-second), and the partial-
	// sum traffic the pipeline ships in place of whole-block gathers.
	pipeHopFill  *telemetry.Metric // raidnode_pipe_hop_fill_seconds
	pipeHopDrain *telemetry.Metric // raidnode_pipe_hop_drain_seconds
	pipeDepth    *telemetry.Metric // raidnode_pipe_depth
	partialBytes *telemetry.Metric // raidnode_partial_sum_bytes_total
	pipeStripes  *telemetry.Metric // raidnode_pipelined_stripes_total

	// Repair-traffic instrumentation: the cross-rack bytes repairs pull
	// over the core and the per-repair reconstruction throughput.
	repairCross *telemetry.Metric // hdfs_repair_cross_rack_bytes_total
	repairMBps  *telemetry.Metric // hdfs_repair_mbps
}

// SetTelemetry publishes the cluster's metrics into the registry and wires
// the underlying fabric and JobTracker to the same registry: client
// write/read latency histograms, RaidNode encode counters
// (raidnode_stripes_encoded_total, raidnode_encoded_bytes_total,
// raidnode_cross_rack_downloads_total, raidnode_placement_violations_total),
// fabric byte counters, and MapReduce scheduling gauges. Install it before
// serving traffic; earlier activity is not backfilled.
func (c *Cluster) SetTelemetry(reg *telemetry.Registry) {
	m := &clusterMetrics{
		writeLat: reg.Histogram("hdfs_client_write_seconds",
			"Block write latency through the replication pipeline.", nil).With(),
		readLat: reg.Histogram("hdfs_client_read_seconds",
			"Block read latency from the nearest live replica.", nil).With(),
		stripes: reg.Counter("raidnode_stripes_encoded_total",
			"Stripes encoded by the RaidNode.").With(),
		encBytes: reg.Counter("raidnode_encoded_bytes_total",
			"Data bytes encoded into stripes.").With(),
		crossDl: reg.Counter("raidnode_cross_rack_downloads_total",
			"Data blocks fetched across racks by encoding tasks (zero under EAR with strict scheduling).").With(),
		violations: reg.Counter("raidnode_placement_violations_total",
			"Stripes whose post-encoding layout broke rack-level fault tolerance.").With(),
		encJobs: reg.Counter("raidnode_encode_jobs_total",
			"Encoding jobs run.").With(),
		pipeFill: reg.Histogram("hdfs_pipeline_fill_seconds",
			"Time for the first chunk of a pipelined block write to reach the last replica.", nil).With(),
		gatherPar: reg.Histogram("hdfs_gather_parallelism",
			"Concurrent source fetches per stripe gather (reconstruction and encoding).",
			[]float64{1, 2, 4, 8, 16}).With(),
		encMBps: reg.Histogram("raidnode_encode_mbps",
			"Erasure-coding compute throughput per stripe (MB/s, excluding gather and upload).",
			telemetry.ExponentialBuckets(64, 2, 12)).With(),
		poolHit: reg.Gauge("erasure_pool_hit_ratio",
			"Fraction of buffer-pool Gets served from recycled buffers.").With(),
		encStripe: reg.Histogram("raidnode_stripe_encode_seconds",
			"Wall time to encode one stripe end to end (gather, compute, parity upload, replica delete).", nil).With(),
		repairLat: reg.Histogram("hdfs_repair_seconds",
			"Block repair latency (degraded gather, decode, store, metadata update).", nil).With(),
		pipeHopFill: reg.Histogram("raidnode_pipe_hop_fill_seconds",
			"Time from pipeline start until a hop folds its first chunk.", nil).With(),
		pipeHopDrain: reg.Histogram("raidnode_pipe_hop_drain_seconds",
			"Time from a hop's last chunk until the whole pipeline finishes.", nil).With(),
		pipeDepth: reg.Histogram("raidnode_pipe_depth",
			"Measured encode-pipeline overlap: busy hop-seconds per wall-second (1 = no overlap, = hop count means a full pipeline).",
			[]float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16}).With(),
		partialBytes: reg.Counter("raidnode_partial_sum_bytes_total",
			"Partial parity-sum bytes shipped between pipelined-encode hops.").With(),
		pipeStripes: reg.Counter("raidnode_pipelined_stripes_total",
			"Stripes encoded through the distributed pipeline.").With(),
		repairCross: reg.Counter("hdfs_repair_cross_rack_bytes_total",
			"Bytes repairs pulled across the rack core (survivor downloads or partial-sum hops).").With(),
		repairMBps: reg.Histogram("hdfs_repair_mbps",
			"Per-repair reconstruction throughput (repaired bytes over repair wall time, MB/s).",
			telemetry.ExponentialBuckets(0.25, 2, 14)).With(),
	}
	c.tel.Store(m)
	if c.fsyncObs != nil {
		c.fsyncObs.hist.Store(reg.Histogram("metalog_fsync_seconds",
			"Duration of one metadata-log group-commit fsync.",
			telemetry.ExponentialBuckets(1e-5, 2, 16)).With())
	}
	c.fab.SetTelemetry(reg)
	c.jt.SetTelemetry(reg)
	c.nn.SetTelemetry(reg)
}

// SetTracer installs a span tracer for the encode path (nil disables).
func (c *Cluster) SetTracer(tr *telemetry.Tracer) { c.tracer.Store(tr) }

// SetJournal installs the cluster event journal on every subsystem: the
// NameNode (metadata transitions), the client/RaidNode data path (replica
// writes, deletes, relocations, repairs), the JobTracker (task placements),
// and the fabric (transfer start/finish). nil detaches everywhere. Like the
// other observability sinks, earlier activity is not backfilled.
func (c *Cluster) SetJournal(j *events.Journal) {
	c.jrn.Store(j)
	c.nn.SetJournal(j)
	c.fab.SetJournal(j)
	c.jt.SetJournal(j)
}

// Journal returns the installed event journal; nil (a valid no-op sink) when
// unjournaled.
func (c *Cluster) Journal() *events.Journal { return c.jrn.Load() }

// metrics returns the installed metric handles, nil when unobserved.
func (c *Cluster) metrics() *clusterMetrics { return c.tel.Load() }

// trace returns the installed tracer; nil (a valid no-op tracer) when
// unobserved.
func (c *Cluster) trace() *telemetry.Tracer { return c.tracer.Load() }

// opSpan opens the span for one client-path operation: a child of the
// caller's span when the context carries one (continuing its trace — this
// is how a netcfs RPC span extends into the data path), else a fresh root
// on the cluster tracer. The returned context carries the new span so
// downstream components — NameNode allocation, pipeline hops, fabric
// streams, journal publishers — join the same trace. With no tracer and no
// inbound span both returns are the no-op values.
func (c *Cluster) opSpan(ctx context.Context, component, name string) (*telemetry.Span, context.Context) {
	var sp *telemetry.Span
	if parent := telemetry.SpanFromContext(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = c.trace().Start(name)
	}
	if sp == nil {
		return nil, ctx
	}
	sp.Arg(telemetry.ComponentArg, component)
	return sp, telemetry.ContextWithSpan(ctx, sp)
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.EncodeParallelism < 0 {
		return nil, fmt.Errorf("%w: EncodeParallelism %d", ErrInvalidConfig, cfg.EncodeParallelism)
	}
	if cfg.PipelineChunkBytes < 0 {
		return nil, fmt.Errorf("%w: PipelineChunkBytes %d", ErrInvalidConfig, cfg.PipelineChunkBytes)
	}
	top, err := topology.New(cfg.Racks, cfg.NodesPerRack)
	if err != nil {
		return nil, err
	}
	pcfg := placement.Config{
		Topology:       top,
		Replicas:       cfg.Replicas,
		K:              cfg.K,
		N:              cfg.N,
		C:              cfg.C,
		TargetRacks:    cfg.TargetRacks,
		SpreadReplicas: cfg.SpreadReplicas,
	}
	switch cfg.Policy {
	case "rr", "ear":
	default:
		return nil, fmt.Errorf("%w: unknown policy %q", ErrInvalidConfig, cfg.Policy)
	}
	nn, err := NewShardedNameNode(pcfg, cfg.Policy, cfg.Seed, cfg.SerializeMetadata)
	if err != nil {
		return nil, err
	}
	var fsyncObs *fsyncObserver
	if cfg.MetaDir != "" {
		sync, err := metalog.ParseSyncPolicy(cfg.MetaSync)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		fsyncObs = &fsyncObserver{}
		l, err := metalog.Open(metalog.Options{
			Dir:           cfg.MetaDir,
			Sync:          sync,
			SyncEvery:     cfg.MetaSyncEvery,
			SegmentBytes:  cfg.MetaSegmentBytes,
			FsyncObserver: fsyncObs.observe,
		})
		if err != nil {
			return nil, err
		}
		if err := nn.RecoverMeta(l); err != nil {
			l.Close()
			return nil, err
		}
		nn.SetAutoSnapshot(cfg.MetaSnapshotEvery)
	}
	fab, err := fabric.New(top, cfg.BandwidthBytesPerSec)
	if err != nil {
		return nil, err
	}
	if cfg.DiskBandwidthBytesPerSec > 0 {
		if err := fab.EnableDisk(cfg.DiskBandwidthBytesPerSec); err != nil {
			return nil, err
		}
	}
	coder, err := erasure.New(cfg.N, cfg.K, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	jt, err := mapred.NewJobTracker(top, cfg.SlotsPerNode)
	if err != nil {
		return nil, err
	}
	dns := make([]*DataNode, top.Nodes())
	for i := range dns {
		dns[i] = &DataNode{ID: topology.NodeID(i), Store: blockstore.New()}
	}
	c := &Cluster{
		cfg:       cfg,
		top:       top,
		fab:       fab,
		nn:        nn,
		dns:       dns,
		coder:     coder,
		jt:        jt,
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		bufPool:   erasure.NewBufferPool(),
		zeroBlock: make([]byte, cfg.BlockSizeBytes),
		fsyncObs:  fsyncObs,
		acct:      tenant.NewTable(),
	}
	fab.SetAccounting(c.acct)
	nn.setAccounting(c.acct)
	c.raid = newRaidNode(c)
	return c, nil
}

// Close shuts down the cluster's background components and flushes and
// closes the metadata log when one is attached.
func (c *Cluster) Close() {
	c.jt.Close()
	_ = c.nn.CloseMeta()
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Topology returns the cluster topology.
func (c *Cluster) Topology() *topology.Topology { return c.top }

// Fabric returns the shaped network (for traffic injection and accounting).
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// Tenants returns the per-tenant resource accounting table (always
// present; the earfsd /tenants endpoint and the earanalysis cross-check
// read it).
func (c *Cluster) Tenants() *tenant.Table { return c.acct }

// NameNode returns the metadata service.
func (c *Cluster) NameNode() *NameNode { return c.nn }

// RaidNode returns the encoding coordinator.
func (c *Cluster) RaidNode() *RaidNode { return c.raid }

// JobTracker returns the MapReduce scheduler.
func (c *Cluster) JobTracker() *mapred.JobTracker { return c.jt }

// Coder returns the erasure coder.
func (c *Cluster) Coder() *erasure.Coder { return c.coder }

// BufferPool returns the cluster-wide block buffer pool (for stats and
// benchmarks).
func (c *Cluster) BufferPool() *erasure.BufferPool { return c.bufPool }

// DataNodeOf returns the DataNode with the given ID.
func (c *Cluster) DataNodeOf(n topology.NodeID) (*DataNode, error) {
	if n < 0 || int(n) >= len(c.dns) {
		return nil, fmt.Errorf("%w: %d", topology.ErrUnknownNode, n)
	}
	return c.dns[n], nil
}

// randIntn draws from the cluster's client-path rng under its own lock.
func (c *Cluster) randIntn(n int) int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Intn(n)
}
