package hdfs

import (
	"math/rand"
	"testing"

	"ear/internal/events"
	"ear/internal/progress"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// benchConfig shapes the fabric hard enough that data-path structure (not
// Go overhead) dominates: one block transfer costs ~8ms, and local reads
// are disk-shaped so a gather can overlap disk and network fetches.
func benchConfig(sequential bool) Config {
	return Config{
		Racks:                    6,
		NodesPerRack:             3,
		Policy:                   "ear",
		Replicas:                 3,
		K:                        4,
		N:                        6,
		C:                        1,
		BlockSizeBytes:           512 << 10,
		BandwidthBytesPerSec:     64 << 20,
		DiskBandwidthBytesPerSec: 64 << 20,
		MapTasks:                 4,
		Seed:                     1,
		SequentialDataPath:       sequential,
	}
}

func benchModes(b *testing.B, run func(b *testing.B, sequential bool)) {
	b.Run("pipelined", func(b *testing.B) { run(b, false) })
	b.Run("sequential", func(b *testing.B) { run(b, true) })
}

func BenchmarkWriteBlock(b *testing.B) {
	benchModes(b, func(b *testing.B, sequential bool) {
		c, err := NewCluster(benchConfig(sequential))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		data := make([]byte, c.Config().BlockSizeBytes)
		rand.New(rand.NewSource(1)).Read(data)
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.WriteBlock(0, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWriteBlockObserved is BenchmarkWriteBlock with the full
// observability stack installed — metrics registry, tracer, journal,
// transition progress tracker and the always-on tenant table — so
// comparing the two bounds the per-write observability tax (budget:
// under 3% of the pipelined write). The tracer is drained periodically the
// way a polling /trace?reset=1 consumer would.
func BenchmarkWriteBlockObserved(b *testing.B) {
	benchModes(b, func(b *testing.B, sequential bool) {
		cfg := benchConfig(sequential)
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		c.SetTelemetry(telemetry.NewRegistry())
		tr := telemetry.NewTracer()
		tr.SetLimit(1 << 16)
		c.SetTracer(tr)
		jrn := events.NewJournal(8192)
		c.SetJournal(jrn)
		prog := progress.New(progress.Config{Replicas: cfg.Replicas, Policy: cfg.Policy})
		prog.Attach(jrn)
		data := make([]byte, c.Config().BlockSizeBytes)
		rand.New(rand.NewSource(1)).Read(data)
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				tr.Reset()
			}
			if _, err := c.WriteBlock(0, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkReadBlock(b *testing.B) {
	c, err := NewCluster(benchConfig(false))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, c.Config().BlockSizeBytes)
	rand.New(rand.NewSource(2)).Read(data)
	id, err := c.WriteBlock(0, data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadBlock(topology.NodeID(i%c.Topology().Nodes()), id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAll(b *testing.B) {
	benchModes(b, func(b *testing.B, sequential bool) {
		c, err := NewCluster(benchConfig(sequential))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(3))
		data := make([]byte, c.Config().BlockSizeBytes)
		b.SetBytes(int64(c.Config().K * c.Config().BlockSizeBytes))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < c.Config().K; j++ {
				rng.Read(data)
				client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
				if _, err := c.WriteBlock(client, data); err != nil {
					b.Fatal(err)
				}
			}
			c.NameNode().FlushOpenStripes()
			b.StartTimer()
			if _, err := c.RaidNode().EncodeAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
