package hdfs

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"ear/internal/telemetry"
	"ear/internal/topology"
)

// TestEncodeParallelismMatchesSequential encodes the same workload with
// concurrent stripes in flight and with one stripe at a time, and checks the
// outcomes agree: same stripe and byte totals, and every block of every
// concurrently encoded stripe reconstructs from parity alone.
func TestEncodeParallelismMatchesSequential(t *testing.T) {
	encode := func(t *testing.T, parallelism int) (*Cluster, EncodeStats, map[topology.BlockID][]byte) {
		cfg := testConfig("ear")
		cfg.EncodeParallelism = parallelism
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		rng := rand.New(rand.NewSource(21))
		_, contents := writeBlocks(t, c, 16, rng)
		c.NameNode().FlushOpenStripes()
		stats, err := c.RaidNode().EncodeAll()
		if err != nil {
			t.Fatal(err)
		}
		return c, stats, contents
	}
	_, sSeq, _ := encode(t, 1)
	cPar, sPar, contents := encode(t, 3)
	if sSeq.Stripes != sPar.Stripes || sSeq.EncodedBytes != sPar.EncodedBytes {
		t.Fatalf("stats diverged: sequential %d stripes / %d bytes, parallel %d stripes / %d bytes",
			sSeq.Stripes, sSeq.EncodedBytes, sPar.Stripes, sPar.EncodedBytes)
	}
	if sPar.Stripes == 0 {
		t.Fatal("nothing encoded")
	}
	// Every block encoded by the concurrent path must survive losing its
	// kept replica: delete the replica bytes and reconstruct from the
	// stripe.
	for id, want := range contents {
		meta, err := cPar.NameNode().Block(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(meta.Nodes) != 1 {
			t.Fatalf("block %d has %d replicas after encoding", id, len(meta.Nodes))
		}
		dn, err := cPar.DataNodeOf(meta.Nodes[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := dn.Store.Delete(DataKey(id)); err != nil {
			t.Fatal(err)
		}
		got, err := cPar.DegradedRead(0, id)
		if err != nil {
			t.Fatalf("degraded read of block %d after parallel encode: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d reconstructed wrong bytes after parallel encode", id)
		}
		// Restore the replica so later blocks of the stripe keep k survivors.
		if err := dn.Store.Put(DataKey(id), want); err != nil {
			t.Fatal(err)
		}
	}
	// The encode and repair paths above all drew from the buffer pool.
	if gets, _ := cPar.BufferPool().Stats(); gets == 0 {
		t.Error("buffer pool never used")
	}
	if r := cPar.BufferPool().HitRate(); r < 0 || r > 1 {
		t.Errorf("pool hit rate %f out of range", r)
	}
}

// TestEncodeParallelismValidation rejects negative knob values and defaults
// the zero value.
func TestEncodeParallelismValidation(t *testing.T) {
	cfg := testConfig("rr")
	cfg.EncodeParallelism = -1
	if _, err := NewCluster(cfg); err == nil {
		t.Error("negative EncodeParallelism accepted")
	}
	cfg.EncodeParallelism = 0
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if got := c.Config().EncodeParallelism; got <= 1 {
		t.Errorf("default EncodeParallelism = %d, want > 1", got)
	}
}

// TestSharedZeroBlockNeverWritten exercises the paths that feed the shared
// zero block into the coding kernels — short-stripe padding at encode and
// decode time, and aborted stripe members — and asserts the block is still
// all zeros afterwards. The kernels guarantee they never write through
// their inputs; this pins the guarantee at the cluster level.
func TestSharedZeroBlockNeverWritten(t *testing.T) {
	c := newTestCluster(t, "ear")
	cfg := c.Config()
	rng := rand.New(rand.NewSource(23))
	ids, contents := writeBlocks(t, c, 2, rng) // short stripe: 2 of k=4 blocks

	// Abort a third allocation so the stripe also carries an aborted member.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.WriteBlockCtx(ctx, 0, make([]byte, cfg.BlockSizeBytes)); err == nil {
		t.Fatal("write under canceled context should fail")
	}

	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	// Degraded-read a live member so padStripe feeds the zero block through
	// the decode kernels too.
	victim := ids[0]
	vm, err := c.NameNode().Block(victim)
	if err != nil {
		t.Fatal(err)
	}
	c.NameNode().MarkDead(vm.Nodes[0])
	got, err := c.ReadBlock(0, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, contents[victim]) {
		t.Fatal("degraded read content mismatch")
	}
	for i, b := range c.zeroBlock {
		if b != 0 {
			t.Fatalf("shared zero block written: byte %d = %#x", i, b)
		}
	}
}

// TestCrossRackNotCountedOnFailedGather pins the counting fix: cross-rack
// downloads are recorded when a fetch completes, so a gather whose fetches
// all fail reports zero even though every resolved source was remote.
func TestCrossRackNotCountedOnFailedGather(t *testing.T) {
	c := newTestCluster(t, "rr")
	tr := telemetry.NewTracer()
	c.SetTracer(tr)
	rng := rand.New(rand.NewSource(29))
	ids, _ := writeBlocks(t, c, c.Config().K, rng) // one full stripe
	c.NameNode().FlushOpenStripes()
	stripes, err := c.NameNode().TakePendingStripes()
	if err != nil {
		t.Fatal(err)
	}
	if len(stripes) != 1 {
		t.Fatalf("pending stripes = %d, want 1", len(stripes))
	}
	// Pick an encoder in a rack holding no replica of any stripe member, so
	// every planned download would be cross-rack.
	replicaRacks := make(map[topology.RackID]bool)
	for _, id := range ids {
		meta, err := c.NameNode().Block(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range meta.Nodes {
			rk, err := c.Topology().RackOf(n)
			if err != nil {
				t.Fatal(err)
			}
			replicaRacks[rk] = true
		}
	}
	encoder := topology.NodeID(-1)
	for n := 0; n < c.Topology().Nodes(); n++ {
		rk, err := c.Topology().RackOf(topology.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		if !replicaRacks[rk] {
			encoder = topology.NodeID(n)
			break
		}
	}
	if encoder < 0 {
		t.Skip("every rack holds a replica; cannot isolate the encoder")
	}
	// Destroy the bytes of every replica so each fetch fails after source
	// resolution succeeded.
	for _, id := range ids {
		meta, err := c.NameNode().Block(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range meta.Nodes {
			dn, err := c.DataNodeOf(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := dn.Store.Delete(DataKey(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	parent := tr.Start("test-encode")
	res, err := c.encodeStripe(context.Background(), stripes[0], encoder, parent)
	parent.End()
	if err == nil {
		t.Fatal("encodeStripe succeeded with no replica bytes anywhere")
	}
	if res.cross != 0 {
		t.Errorf("failed gather counted %d cross-rack downloads, want 0", res.cross)
	}
	for _, s := range tr.Spans() {
		if s.Name != "download" {
			continue
		}
		if got := s.Args["cross_rack_downloads"]; got != "0" {
			t.Errorf("download span recorded cross_rack_downloads=%q for a failed gather, want \"0\"", got)
		}
	}
}

// TestEncodeThroughputTelemetry checks the new encode-path metrics: the
// per-stripe compute throughput histogram fills and the pool hit-rate gauge
// lands in [0, 1]. It runs two encode rounds against one shared registry
// with Reset between them — exactly one observation per stripe of *this*
// round is the assertion that used to flake when rounds shared counter
// state, so the second round pins the isolation.
func TestEncodeThroughputTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	round := func(seed int64) {
		c := newTestCluster(t, "ear")
		c.SetTelemetry(reg)
		rng := rand.New(rand.NewSource(seed))
		writeBlocks(t, c, 2*c.Config().K, rng)
		c.NameNode().FlushOpenStripes()
		stats, err := c.RaidNode().EncodeAll()
		if err != nil {
			t.Fatal(err)
		}
		h := reg.Histogram("raidnode_encode_mbps", "", nil).With()
		if got, want := h.Count(), uint64(stats.Stripes); got != want {
			t.Errorf("raidnode_encode_mbps observations = %d, want %d (one per stripe)", got, want)
		}
		if h.Count() > 0 && h.Mean() <= 0 {
			t.Errorf("encode throughput mean = %f MB/s", h.Mean())
		}
		if r := reg.Gauge("erasure_pool_hit_ratio", "").With().Value(); r < 0 || r > 1 {
			t.Errorf("pool hit ratio gauge = %f", r)
		}
	}
	round(31)
	reg.Reset()
	round(37)
}
