package hdfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/topology"
)

// busiestDataNode returns the live node holding the most data blocks of
// encoded stripes — the node whose death costs the most repairs.
func busiestDataNode(t *testing.T, c *Cluster) topology.NodeID {
	t.Helper()
	nn := c.NameNode()
	count := make(map[topology.NodeID]int)
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Aborted {
				continue
			}
			for _, n := range meta.Nodes {
				if !nn.IsDead(n) {
					count[n]++
				}
			}
		}
	}
	best, bestN := topology.NodeID(-1), -1
	for n := 0; n < c.Topology().Nodes(); n++ {
		if count[topology.NodeID(n)] > bestN {
			best, bestN = topology.NodeID(n), count[topology.NodeID(n)]
		}
	}
	if bestN <= 0 {
		t.Fatal("no node holds any encoded data block")
	}
	return best
}

// verifyBlockContents reads every written block through the client path and
// compares against ground truth.
func verifyBlockContents(t *testing.T, c *Cluster, contents map[topology.BlockID][]byte) {
	t.Helper()
	for id, want := range contents {
		got, err := c.ReadBlock(0, id)
		if err != nil {
			t.Fatalf("ReadBlock(%d): %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d content diverged after repair", id)
		}
	}
}

// TestTwoLevelRepairMatchesGather is the differential property test: across
// a spread of (k, m, rack layout, block/chunk size) geometries — with short
// stripes and aborted members in the population — killing a full DataNode
// and recovering it must restore byte-identical block and parity content on
// both repair paths, and the two-level path must never move more bytes
// across the rack core than the gather path. A second kill targets a
// parity holder so parity-row reconstruction with a dead parity node is
// covered in every geometry.
func TestTwoLevelRepairMatchesGather(t *testing.T) {
	geoms := []struct {
		name  string
		cfg   Config
		chunk int
	}{
		{
			name: "ear-6x3-k4n6",
			cfg: Config{Racks: 6, NodesPerRack: 3, Policy: "ear", Replicas: 3,
				K: 4, N: 6, C: 1, BlockSizeBytes: 8 << 10,
				BandwidthBytesPerSec: 64 << 20, MapTasks: 4, Seed: 1},
			chunk: 2 << 10,
		},
		{
			name: "rr-3x4-k6n9-disk",
			cfg: Config{Racks: 3, NodesPerRack: 4, Policy: "rr", Replicas: 2,
				K: 6, N: 9, C: 3, BlockSizeBytes: 16 << 10,
				BandwidthBytesPerSec: 64 << 20, DiskBandwidthBytesPerSec: 256 << 20,
				MapTasks: 2, Seed: 2},
			chunk: 4 << 10,
		},
		{
			// Odd block size not divisible by the chunk: exercises the
			// partial final chunk of every repair hop.
			name: "rr-5x3-k8n10-oddblock",
			cfg: Config{Racks: 5, NodesPerRack: 3, Policy: "rr", Replicas: 2,
				K: 8, N: 10, C: 2, BlockSizeBytes: 10000,
				BandwidthBytesPerSec: 64 << 20, MapTasks: 3, Seed: 3},
			chunk: 4096,
		},
		{
			name: "ear-4x3-k8n12-smallchunk",
			cfg: Config{Racks: 4, NodesPerRack: 3, Policy: "ear", Replicas: 2,
				K: 8, N: 12, C: 3, BlockSizeBytes: 12 << 10,
				BandwidthBytesPerSec: 64 << 20, MapTasks: 2, Seed: 4},
			chunk: 1 << 10,
		},
	}
	for _, g := range geoms {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			gatherCfg := g.cfg
			twoCfg := g.cfg
			twoCfg.RackAwareRepair = true
			twoCfg.PipelineChunkBytes = g.chunk

			gather, err := NewCluster(gatherCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer gather.Close()
			two, err := NewCluster(twoCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer two.Close()

			seed := g.cfg.Seed + 200
			gc := populatePipeTest(t, gather, seed)
			tc := populatePipeTest(t, two, seed)
			if _, err := gather.RaidNode().EncodeAll(); err != nil {
				t.Fatal(err)
			}
			if _, err := two.RaidNode().EncodeAll(); err != nil {
				t.Fatal(err)
			}

			// Identical write sequences and seeds: both clusters place
			// blocks identically, so the same node dies on both.
			dead := busiestDataNode(t, gather)
			if d2 := busiestDataNode(t, two); d2 != dead {
				t.Fatalf("placement diverged: busiest node %d vs %d", dead, d2)
			}
			recover := func(c *Cluster, n topology.NodeID) RecoveryStats {
				c.NameNode().MarkDead(n)
				stats, err := c.RecoverNode(context.Background(), n)
				if err != nil {
					t.Fatalf("RecoverNode(%d): %v", n, err)
				}
				return stats
			}
			gs := recover(gather, dead)
			ts := recover(two, dead)
			// Data placement is identical across the clusters (checked
			// above); parity plans may differ, so compare per-member
			// cross-rack cost rather than absolute totals.
			if gs.BlocksRepaired != ts.BlocksRepaired {
				t.Fatalf("data repair counts diverged: gather %d, two-level %d",
					gs.BlocksRepaired, ts.BlocksRepaired)
			}
			if gs.BlocksRepaired+gs.ParityRepaired == 0 {
				t.Fatal("node death cost no repairs")
			}
			gMembers := gs.BlocksRepaired + gs.ParityRepaired
			tMembers := ts.BlocksRepaired + ts.ParityRepaired
			gPer := float64(gs.CrossRackBytes) / float64(gMembers)
			tPer := float64(ts.CrossRackBytes) / float64(tMembers)
			if tPer > gPer {
				t.Errorf("two-level repair moved more cross-rack bytes per member than gather: %.0f > %.0f",
					tPer, gPer)
			}
			verifyBlockContents(t, gather, gc)
			verifyBlockContents(t, two, tc)
			if n := verifyParities(t, gather, gc); n == 0 {
				t.Fatal("gather cluster verified no parity")
			}
			if n := verifyParities(t, two, tc); n == 0 {
				t.Fatal("two-level cluster verified no parity")
			}

			// Second failure: a parity holder of the first encoded stripe,
			// so the sweep reconstructs a parity row (decode-row fold for a
			// parity target) with the holder dead.
			gather.NameNode().MarkAlive(dead)
			two.NameNode().MarkAlive(dead)
			sid := gather.NameNode().EncodedStripes()[0]
			sm, err := gather.NameNode().Stripe(sid)
			if err != nil {
				t.Fatal(err)
			}
			pDead := sm.Plan.Parity[0]
			gs = recover(gather, pDead)
			if gs.ParityRepaired == 0 {
				t.Fatalf("killing parity holder %d repaired no parity on gather", pDead)
			}
			tsm, err := two.NameNode().Stripe(two.NameNode().EncodedStripes()[0])
			if err != nil {
				t.Fatal(err)
			}
			ts = recover(two, tsm.Plan.Parity[0])
			if ts.ParityRepaired == 0 {
				t.Fatalf("killing parity holder %d repaired no parity on two-level", tsm.Plan.Parity[0])
			}
			verifyBlockContents(t, gather, gc)
			verifyBlockContents(t, two, tc)
			if verifyParities(t, gather, gc) == 0 || verifyParities(t, two, tc) == 0 {
				t.Fatal("no parity verified after parity-holder recovery")
			}
		})
	}
}

// TestRepairCancelCommitsNothing kills the context mid-repair on a slow
// fabric and verifies the staged-commit contract for the two-level path: no
// block lands in any store, no location changes, the auditor stays clean,
// and rerunning the repair at full speed restores the block.
func TestRepairCancelCommitsNothing(t *testing.T) {
	cfg := testConfig("ear")
	cfg.RackAwareRepair = true
	cfg.BlockSizeBytes = 256 << 10
	cfg.BandwidthBytesPerSec = 64 << 10 // ~4s per block: cancel lands mid-chunk
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	jrn := events.NewJournal(4096)
	c.SetJournal(jrn)
	aud := audit.New(c.Topology(), audit.Config{Replicas: cfg.Replicas, C: cfg.C, CheckCoreRack: true})
	aud.Attach(jrn)

	// Populate and encode at full speed, then throttle for the repair.
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	ids, contents := writeBlocks(t, c, cfg.K, rng)
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.Fabric().SetAllRates(cfg.BandwidthBytesPerSec); err != nil {
		t.Fatal(err)
	}

	victim := ids[0]
	vm, err := c.NameNode().Block(victim)
	if err != nil {
		t.Fatal(err)
	}
	c.NameNode().MarkDead(vm.Nodes[0])

	snapshot := func() map[topology.NodeID]int {
		keys := make(map[topology.NodeID]int)
		for n := 0; n < c.Topology().Nodes(); n++ {
			dn, err := c.DataNodeOf(topology.NodeID(n))
			if err != nil {
				t.Fatal(err)
			}
			keys[topology.NodeID(n)] = len(dn.Store.Keys())
		}
		return keys
	}
	before := snapshot()
	goroutines := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.RepairBlockCtx(ctx, victim); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RepairBlockCtx under timeout = %v, want DeadlineExceeded", err)
	}
	// The canceled pipeline must wind down without leaking hop goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	after := snapshot()
	for n, count := range after {
		if count != before[n] {
			t.Fatalf("node %d store changed across canceled repair: %d -> %d keys", n, before[n], count)
		}
	}
	if meta, err := c.NameNode().Block(victim); err != nil || len(meta.Nodes) != 1 || meta.Nodes[0] != vm.Nodes[0] {
		t.Fatalf("block location changed across canceled repair: %v, %v", meta, err)
	}
	if rep := aud.Report(); rep.Total() != 0 {
		t.Fatalf("auditor dirty after canceled repair: %+v", rep)
	}

	// Requeue: the same repair at full speed succeeds and restores content.
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		t.Fatal(err)
	}
	target, err := c.RepairBlock(victim)
	if err != nil {
		t.Fatalf("repair after cancel: %v", err)
	}
	dn, err := c.DataNodeOf(target)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dn.Store.Get(DataKey(victim))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, contents[victim]) {
		t.Fatal("repaired content differs from ground truth")
	}
	if rep := aud.Report(); rep.Total() != 0 {
		t.Fatalf("auditor dirty after re-repair: %+v", rep)
	}
}

// TestConcurrentRepairSameStripe loses two data blocks of one stripe and
// repairs them concurrently on the two-level path — the -race run proves
// the shared decode cache, pooled buffers, and per-repair traffic books
// tolerate concurrent RepairBlock on the same stripe.
func TestConcurrentRepairSameStripe(t *testing.T) {
	cfg := testConfig("ear") // (6,4): two erasures stay decodable
	cfg.RackAwareRepair = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(31))
	_, contents := writeBlocks(t, c, 4*cfg.K, rng)
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	nn := c.NameNode()
	// Find a stripe with two single-replica members on distinct nodes and
	// kill both holders (a (6,4) code decodes through two erasures).
	var victims []topology.BlockID
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			t.Fatal(err)
		}
		var picks []topology.BlockID
		seen := make(map[topology.NodeID]bool)
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Aborted || len(meta.Nodes) != 1 || seen[meta.Nodes[0]] {
				continue
			}
			seen[meta.Nodes[0]] = true
			picks = append(picks, b)
			if len(picks) == 2 {
				break
			}
		}
		if len(picks) == 2 {
			victims = picks
			for _, b := range victims {
				meta, err := nn.Block(b)
				if err != nil {
					t.Fatal(err)
				}
				nn.MarkDead(meta.Nodes[0])
			}
			break
		}
	}
	if len(victims) != 2 {
		t.Fatal("no stripe offered two single-replica victims on distinct nodes")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(victims))
	targets := make([]topology.NodeID, len(victims))
	for i, b := range victims {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			targets[i], errs[i] = c.RepairBlock(b)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent repair of block %d: %v", victims[i], err)
		}
		dn, err := c.DataNodeOf(targets[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := dn.Store.Get(DataKey(victims[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, contents[victims[i]]) {
			t.Fatalf("block %d repaired with wrong content", victims[i])
		}
	}
}
