package hdfs

// RapidRAID-style pipelined distributed encoding. Instead of gathering k
// whole blocks to the encoder and running the coding kernels there, the
// replica holders of the stripe form a chain (placement.PlanPipeline) and
// walk the stripe chunk by chunk: each hop receives the upstream partial
// parity chunk over a fabric stream, folds its locally stored members into
// the m partial sums with gf256.MulAddSlice, and forwards the accumulated
// partial downstream. Transfer and arithmetic for chunk i+1 overlap the
// forwarding of chunk i, and where a rack holds several stripe members the
// chain aggregates them before crossing the core, so per-stripe cross-rack
// traffic drops from one block per remote member to m partial-sum blocks
// per rack boundary. The final hop (the encoder itself, or a terminal
// receive-only stage when the encoder holds no replica) accumulates the
// completed parity; nothing is stored anywhere until the whole pipeline has
// succeeded, so a canceled pipeline commits nothing.

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"ear/internal/fabric"
	"ear/internal/gf256"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/topology"
	"ear/internal/workgroup"
)

// pipeStage is one hop of the encode pipeline at runtime: the planned hop
// plus its accumulator buffers and timing stamps. The last stage's
// accumulators become the stripe's parity blocks.
type pipeStage struct {
	node      topology.NodeID
	rack      topology.RackID
	positions []int
	acc       [][]byte
	// crossIn records whether the inbound partial-sum stream crossed the
	// rack core (set by the stage goroutine from the stream's path, read
	// after the pipeline joins).
	crossIn bool
	tFirst  time.Time
	tLast   time.Time
}

// pipelineParity materializes the stripe's parity blocks through the
// distributed pipeline. It returns pooled parity buffers the caller must
// release and the aborted-member mask, and fills res.cross (m
// block-equivalents per rack boundary crossed) and res.partialBytes (total
// partial-sum bytes shipped between hops). The parent span receives one
// child span per hop.
func (c *Cluster) pipelineParity(ctx context.Context, info *placement.StripeInfo, encoder topology.NodeID, encRack topology.RackID, parent *telemetry.Span, res *stripeResult) ([][]byte, []bool, error) {
	blockSize := c.cfg.BlockSizeBytes
	m := c.coder.M()
	rows := make([][]byte, m)
	for j := range rows {
		row, err := c.coder.ParityRowView(j)
		if err != nil {
			return nil, nil, err
		}
		rows[j] = row
	}
	// Resolve the live holders of every position. Aborted members and
	// short-stripe padding contribute zeros and need no hop.
	aborted := make([]bool, len(info.Blocks))
	replicas := make([][]topology.NodeID, c.cfg.K)
	for i, b := range info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			return nil, nil, err
		}
		if len(live) == 0 {
			if meta, merr := c.nn.Block(b); merr == nil && meta.Aborted {
				aborted[i] = true
				continue
			}
			return nil, nil, fmt.Errorf("stripe %d block %d: %w", info.ID, b, ErrNoReplica)
		}
		replicas[i] = live
	}
	hops, err := placement.PlanPipeline(c.top, replicas, encoder)
	if err != nil {
		return nil, nil, fmt.Errorf("stripe %d: %w", info.ID, err)
	}

	// Final parity buffers; released here on failure, by the caller on
	// success (the ok flag flips at the success return).
	pbufs := make([][]byte, m)
	for j := range pbufs {
		pbufs[j] = c.bufPool.Get(blockSize)
	}
	ok := false
	defer func() {
		if !ok {
			for _, p := range pbufs {
				c.bufPool.Put(p)
			}
		}
	}()
	if len(hops) == 0 {
		// Every member aborted (or the stripe is empty): the parity of an
		// all-zero stripe is zero.
		for j := range pbufs {
			copy(pbufs[j], c.zeroBlock)
		}
		ok = true
		return pbufs, aborted, nil
	}

	// Build the runtime stages: one per planned hop, plus a terminal
	// receive-only stage when the chain does not already end at the
	// encoder. Intermediate accumulators are pooled and always released;
	// the last stage accumulates directly into the parity buffers.
	stages := make([]*pipeStage, 0, len(hops)+1)
	for _, h := range hops {
		stages = append(stages, &pipeStage{node: h.Node, rack: h.Rack, positions: h.Positions})
	}
	if last := stages[len(stages)-1]; last.node != encoder {
		stages = append(stages, &pipeStage{node: encoder, rack: encRack})
	}
	for s, st := range stages {
		if s == len(stages)-1 {
			st.acc = pbufs
			continue
		}
		st.acc = make([][]byte, m)
		for j := range st.acc {
			st.acc[j] = c.bufPool.Get(blockSize)
		}
	}
	defer func() {
		for s, st := range stages {
			if s == len(stages)-1 {
				continue
			}
			for _, a := range st.acc {
				c.bufPool.Put(a)
			}
		}
	}()

	chunk := c.cfg.PipelineChunkBytes
	nChunks := (blockSize + chunk - 1) / chunk
	start := time.Now()

	// ready[s] carries chunk indices whose partial sums have landed in
	// stage s's upstream accumulator (nothing for stage 0, which starts
	// from zeros). Buffered to nChunks so a fast upstream never blocks; the
	// group context covers abandonment.
	ready := make([]chan int, len(stages))
	for s := range ready {
		ready[s] = make(chan int, nChunks)
	}
	for idx := 0; idx < nChunks; idx++ {
		ready[0] <- idx
	}
	close(ready[0])

	g, gctx := workgroup.WithContext(ctx)
	for s := range stages {
		s, st := s, stages[s]
		g.Go(func() error {
			hop := parent.ChildTrack("raidnode.pipeline-hop").
				Arg(telemetry.ComponentArg, "raidnode").
				Arg("stripe", strconv.FormatInt(int64(info.ID), 10)).
				Arg("node", strconv.Itoa(int(st.node))).
				Arg("hop", strconv.Itoa(s)).
				Arg("members", strconv.Itoa(len(st.positions)))
			defer hop.End()
			// Inbound partial-sum stream from the previous hop: m chunk-sized
			// partials per chunk index, attributed by the fabric to every
			// link the hop traverses (satellite: chained-transfer accounting
			// falls out of using one real stream per hop).
			var in *fabric.Stream
			if s > 0 {
				var err error
				in, err = c.fab.OpenStream(gctx, stages[s-1].node, st.node)
				if err != nil {
					return err
				}
				defer in.Close()
				st.crossIn = in.Cross()
			}
			// Local members: read once into pooled buffers; the shaped disk
			// stream charges their bytes chunk by chunk as they are folded.
			var blocks [][]byte
			var disk *fabric.Stream
			if len(st.positions) > 0 {
				dn, err := c.DataNodeOf(st.node)
				if err != nil {
					return err
				}
				blocks = make([][]byte, len(st.positions))
				defer func() {
					for _, b := range blocks {
						if b != nil {
							c.bufPool.Put(b)
						}
					}
				}()
				for pi, pos := range st.positions {
					buf := c.bufPool.Get(blockSize)
					blocks[pi] = buf
					if err := dn.Store.GetInto(DataKey(info.Blocks[pos]), buf); err != nil {
						return fmt.Errorf("stripe %d position %d on node %d: %w", info.ID, pos, st.node, err)
					}
				}
				disk, err = c.fab.OpenStream(gctx, st.node, st.node)
				if err != nil {
					return err
				}
				defer disk.Close()
			}
			for {
				var idx int
				var chOk bool
				select {
				case idx, chOk = <-ready[s]:
					if !chOk {
						if s+1 < len(stages) {
							close(ready[s+1])
						}
						return nil
					}
				case <-gctx.Done():
					return gctx.Err()
				}
				lo := idx * chunk
				hi := min(lo+chunk, blockSize)
				if in != nil {
					// Receive the upstream partial sums for this chunk range
					// (m partials of hi-lo bytes), then adopt them.
					if err := in.Send(gctx, m*(hi-lo)); err != nil {
						return err
					}
					prev := stages[s-1].acc
					for j := 0; j < m; j++ {
						copy(st.acc[j][lo:hi], prev[j][lo:hi])
					}
				} else {
					for j := 0; j < m; j++ {
						copy(st.acc[j][lo:hi], c.zeroBlock[lo:hi])
					}
				}
				if len(st.positions) > 0 {
					if err := disk.Send(gctx, len(st.positions)*(hi-lo)); err != nil {
						return err
					}
					for pi, pos := range st.positions {
						b := blocks[pi]
						for j := 0; j < m; j++ {
							if coef := rows[j][pos]; coef != 0 {
								gf256.MulAddSlice(coef, b[lo:hi], st.acc[j][lo:hi])
							}
						}
					}
				}
				now := time.Now()
				if st.tFirst.IsZero() {
					st.tFirst = now
				}
				st.tLast = now
				if s+1 < len(stages) {
					ready[s+1] <- idx
				}
			}
		})
	}
	if err := g.Wait(); err != nil {
		return nil, nil, err
	}
	end := time.Now()
	// Account the chained transfers: every inbound hop shipped m partial
	// blocks, crossing the core where the planned chain crossed racks.
	for s := 1; s < len(stages); s++ {
		res.partialBytes += int64(m) * int64(blockSize)
		if stages[s].crossIn {
			res.cross += m
		}
	}
	if tel := c.metrics(); tel != nil {
		busy := time.Duration(0)
		for _, st := range stages {
			if st.tFirst.IsZero() {
				continue
			}
			busy += st.tLast.Sub(st.tFirst)
			tel.pipeHopFill.Observe(st.tFirst.Sub(start).Seconds())
			tel.pipeHopDrain.Observe(end.Sub(st.tLast).Seconds())
		}
		if wall := end.Sub(start); wall > 0 {
			tel.pipeDepth.Observe(busy.Seconds() / wall.Seconds())
		}
		tel.poolHit.Set(c.bufPool.HitRate())
	}
	ok = true
	return pbufs, aborted, nil
}
