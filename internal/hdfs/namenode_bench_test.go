package hdfs

import (
	"sync/atomic"
	"testing"

	"ear/internal/placement"
	"ear/internal/topology"
)

// benchPlacementConfig is a mid-size cluster (16 racks x 8 nodes) so the
// sharded NameNode has enough placement shards to spread goroutines across.
func benchPlacementConfig(b *testing.B) placement.Config {
	b.Helper()
	top, err := topology.New(16, 8)
	if err != nil {
		b.Fatal(err)
	}
	return placement.Config{Topology: top, Replicas: 3, K: 6, N: 9, C: 1}
}

// BenchmarkAllocateBlock compares the new metadata path against the seed's.
// "seed" is a faithful emulation of the pre-PR NameNode: every operation
// behind one global mutex (SerializeMetadata) and every candidate layout
// checked by cloning the stripe's flow graph and recomputing max flow from
// scratch (FullRecompute). "sharded" is this PR: per-core-rack placement
// shards, striped block table, and rollback-based incremental feasibility.
// "serialized" isolates just the locking axis (incremental flow, one mutex).
// The headline number is seed/parallel vs sharded/parallel; on a single-core
// host the ratio reflects per-op cost only, on multi-core it compounds with
// the removed lock contention.
func BenchmarkAllocateBlock(b *testing.B) {
	for _, mode := range []struct {
		name      string
		serialize bool
		recompute bool
	}{
		{"sharded", false, false},
		{"serialized", true, false},
		{"seed", true, true},
	} {
		newNN := func(b *testing.B) *NameNode {
			cfg := benchPlacementConfig(b)
			cfg.FullRecompute = mode.recompute
			nn, err := NewShardedNameNode(cfg, "ear", 1, mode.serialize)
			if err != nil {
				b.Fatal(err)
			}
			return nn
		}
		b.Run(mode.name+"/serial", func(b *testing.B) {
			nn := newNN(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nn.AllocateBlock(1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(mode.name+"/parallel", func(b *testing.B) {
			nn := newNN(b)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := nn.AllocateBlock(1); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkCommitBlock measures the block-table striped-lock path alone.
func BenchmarkCommitBlock(b *testing.B) {
	nn, err := NewShardedNameNode(benchPlacementConfig(b), "ear", 1, false)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]topology.BlockID, b.N)
	for i := 0; i < b.N; i++ {
		meta, err := nn.AllocateBlock(1)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = meta.ID
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1) - 1
			if err := nn.CommitBlock(ids[i]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
