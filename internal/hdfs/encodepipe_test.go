package hdfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// populatePipeTest drives an identical write sequence into a cluster: full
// stripes, one aborted member mid-stream, and a short tail stripe, then
// seals every open stripe. The write path does not depend on the encode
// knob, so two clusters configured identically except for PipelinedEncode
// end up with bit-identical pre-encode state.
func populatePipeTest(t *testing.T, c *Cluster, seed int64) map[topology.BlockID][]byte {
	t.Helper()
	cfg := c.Config()
	rng := rand.New(rand.NewSource(seed))
	contents := make(map[topology.BlockID][]byte)
	write := func(n int) {
		ids, m := writeBlocks(t, c, n, rng)
		_ = ids
		for id, d := range m {
			contents[id] = d
		}
	}
	write(cfg.K) // one full stripe
	// Abort an allocation mid-stream: the member encodes as zeros.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.WriteBlockCtx(ctx, 0, make([]byte, cfg.BlockSizeBytes)); err == nil {
		t.Fatal("write under canceled context should fail")
	}
	write(cfg.K)     // fill the stripe holding the aborted member, start more
	write(cfg.K / 2) // short tail stripe once flushed
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatalf("FlushOpenStripes: %v", err)
	}
	return contents
}

// verifyParities checks every encoded stripe's stored parity blocks against
// ground truth computed directly from the written contents (zeros for
// aborted members and short-stripe padding).
func verifyParities(t *testing.T, c *Cluster, contents map[topology.BlockID][]byte) int {
	t.Helper()
	cfg := c.Config()
	nn := c.NameNode()
	zero := make([]byte, cfg.BlockSizeBytes)
	checked := 0
	for _, id := range nn.EncodedStripes() {
		sm, err := nn.Stripe(id)
		if err != nil {
			t.Fatalf("stripe %d: %v", id, err)
		}
		data := make([][]byte, cfg.K)
		for i := range data {
			data[i] = zero
		}
		for i, b := range sm.Info.Blocks {
			if d, okc := contents[b]; okc {
				data[i] = d
			}
		}
		want, err := c.Coder().Encode(data)
		if err != nil {
			t.Fatalf("stripe %d ground-truth encode: %v", id, err)
		}
		if sm.Plan == nil {
			t.Fatalf("stripe %d encoded without a plan", id)
		}
		for j, node := range sm.Plan.Parity {
			dn, err := c.DataNodeOf(node)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dn.Store.Get(ParityKey(id, j))
			if err != nil {
				t.Fatalf("stripe %d parity %d on node %d: %v", id, j, node, err)
			}
			if !bytes.Equal(got, want[j]) {
				t.Fatalf("stripe %d parity %d differs from ground truth", id, j)
			}
			checked++
		}
	}
	return checked
}

// TestPipelinedEncodeMatchesGather is the differential property test: for a
// spread of (k, m, block size, chunk size, rack layout, policy) geometries
// — including short and aborted-member stripes — the pipelined path must
// produce byte-identical parity to the gather path, and both must match
// parity computed directly from the written bytes.
func TestPipelinedEncodeMatchesGather(t *testing.T) {
	geoms := []struct {
		name  string
		cfg   Config
		chunk int
	}{
		{
			name: "ear-6x3-k4n6",
			cfg: Config{Racks: 6, NodesPerRack: 3, Policy: "ear", Replicas: 3,
				K: 4, N: 6, C: 1, BlockSizeBytes: 8 << 10,
				BandwidthBytesPerSec: 64 << 20, MapTasks: 4, Seed: 1},
			chunk: 2 << 10,
		},
		{
			name: "rr-3x4-k6n9-disk",
			cfg: Config{Racks: 3, NodesPerRack: 4, Policy: "rr", Replicas: 2,
				K: 6, N: 9, C: 3, BlockSizeBytes: 16 << 10,
				BandwidthBytesPerSec: 64 << 20, DiskBandwidthBytesPerSec: 256 << 20,
				MapTasks: 2, Seed: 2},
			chunk: 4 << 10,
		},
		{
			// Odd block size not divisible by the chunk: exercises the
			// partial final chunk of every hop.
			name: "rr-5x2-k8n10-oddblock",
			cfg: Config{Racks: 5, NodesPerRack: 2, Policy: "rr", Replicas: 2,
				K: 8, N: 10, C: 2, BlockSizeBytes: 10000,
				BandwidthBytesPerSec: 64 << 20, MapTasks: 3, Seed: 3},
			chunk: 4096,
		},
		{
			name: "ear-4x3-k8n12-smallchunk",
			cfg: Config{Racks: 4, NodesPerRack: 3, Policy: "ear", Replicas: 2,
				K: 8, N: 12, C: 3, BlockSizeBytes: 12 << 10,
				BandwidthBytesPerSec: 64 << 20, MapTasks: 2, Seed: 4},
			chunk: 1 << 10,
		},
	}
	for _, g := range geoms {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			gatherCfg := g.cfg
			pipeCfg := g.cfg
			pipeCfg.PipelinedEncode = true
			pipeCfg.PipelineChunkBytes = g.chunk

			gather, err := NewCluster(gatherCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer gather.Close()
			pipe, err := NewCluster(pipeCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer pipe.Close()

			seed := g.cfg.Seed + 100
			gc := populatePipeTest(t, gather, seed)
			pc := populatePipeTest(t, pipe, seed)
			if len(gc) != len(pc) {
				t.Fatalf("write divergence: %d vs %d blocks", len(gc), len(pc))
			}

			gs, err := gather.RaidNode().EncodeAll()
			if err != nil {
				t.Fatalf("gather EncodeAll: %v", err)
			}
			ps, err := pipe.RaidNode().EncodeAll()
			if err != nil {
				t.Fatalf("pipelined EncodeAll: %v", err)
			}
			if gs.Stripes != ps.Stripes {
				t.Fatalf("stripe count divergence: gather %d, pipelined %d", gs.Stripes, ps.Stripes)
			}
			if gs.PipelinedStripes != 0 {
				t.Errorf("gather path reported %d pipelined stripes", gs.PipelinedStripes)
			}
			if ps.PipelinedStripes != ps.Stripes {
				t.Errorf("pipelined path encoded %d of %d stripes through the pipeline",
					ps.PipelinedStripes, ps.Stripes)
			}
			if ps.PartialSumBytes <= 0 {
				t.Error("pipelined path shipped no partial-sum bytes")
			}
			// Same stripe membership on both clusters (placement is
			// write-time and the write sequences were identical).
			gIDs := gather.NameNode().EncodedStripes()
			pIDs := pipe.NameNode().EncodedStripes()
			if len(gIDs) != len(pIDs) {
				t.Fatalf("encoded stripe sets differ: %v vs %v", gIDs, pIDs)
			}
			for i := range gIDs {
				gm, err := gather.NameNode().Stripe(gIDs[i])
				if err != nil {
					t.Fatal(err)
				}
				pm, err := pipe.NameNode().Stripe(pIDs[i])
				if err != nil {
					t.Fatal(err)
				}
				if gm.Info.ID != pm.Info.ID || len(gm.Info.Blocks) != len(pm.Info.Blocks) {
					t.Fatalf("stripe %v membership differs from %v", gm.Info, pm.Info)
				}
				for j := range gm.Info.Blocks {
					if gm.Info.Blocks[j] != pm.Info.Blocks[j] {
						t.Fatalf("stripe %d member %d differs", gm.Info.ID, j)
					}
				}
			}
			if n := verifyParities(t, gather, gc); n == 0 {
				t.Fatal("gather cluster verified no parity blocks")
			}
			if n := verifyParities(t, pipe, pc); n == 0 {
				t.Fatal("pipelined cluster verified no parity blocks")
			}
			// Degraded reads work through pipelined parity too.
			var victim topology.BlockID = -1
			for id := range pc {
				victim = id
				break
			}
			vm, err := pipe.NameNode().Block(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(vm.Nodes) == 1 {
				pipe.NameNode().MarkDead(vm.Nodes[0])
				got, err := pipe.ReadBlock(0, victim)
				if err != nil {
					t.Fatalf("degraded read: %v", err)
				}
				if !bytes.Equal(got, pc[victim]) {
					t.Fatal("degraded read content mismatch after pipelined encode")
				}
			}
		})
	}
}

// TestPipelinedEncodeCancelCommitsNothing kills the context mid-pipeline on
// a slow fabric and verifies the staged-commit contract: no parity key
// lands in any store, no replica is deleted, the auditor stays clean, and
// the requeued stripes re-encode correctly afterwards.
func TestPipelinedEncodeCancelCommitsNothing(t *testing.T) {
	cfg := testConfig("ear")
	cfg.PipelinedEncode = true
	cfg.BlockSizeBytes = 256 << 10
	cfg.BandwidthBytesPerSec = 64 << 10 // ~4s per block: cancel lands mid-chunk
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	jrn := events.NewJournal(4096)
	c.SetJournal(jrn)
	aud := audit.New(c.Topology(), audit.Config{Replicas: cfg.Replicas, C: cfg.C, CheckCoreRack: true})
	aud.Attach(jrn)

	// Populate at full speed, then throttle for the canceled encode.
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	_, contents := writeBlocks(t, c, 2*cfg.K, rng)
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	if err := c.Fabric().SetAllRates(cfg.BandwidthBytesPerSec); err != nil {
		t.Fatal(err)
	}

	snapshot := func() map[topology.NodeID][]string {
		keys := make(map[topology.NodeID][]string)
		for n := 0; n < c.Topology().Nodes(); n++ {
			dn, err := c.DataNodeOf(topology.NodeID(n))
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range dn.Store.Keys() {
				keys[topology.NodeID(n)] = append(keys[topology.NodeID(n)], k.String())
			}
		}
		return keys
	}
	before := snapshot()
	goroutines := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.RaidNode().EncodeAllCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EncodeAllCtx under timeout = %v, want DeadlineExceeded", err)
	}
	// The canceled pipeline must wind down without leaking hop goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	after := snapshot()
	for n, keys := range after {
		if len(keys) != len(before[n]) {
			t.Fatalf("node %d stores changed across canceled encode: %v -> %v", n, before[n], keys)
		}
	}
	if len(after) != len(before) {
		t.Fatalf("store population changed: %d -> %d nodes", len(before), len(after))
	}
	if rep := aud.Report(); rep.Total() != 0 {
		t.Fatalf("auditor dirty after canceled pipeline: %+v", rep)
	}

	// The interrupted stripes requeue and re-encode cleanly at full speed.
	requeued, err := c.NameNode().RequeueUnencodedStripes()
	if err != nil {
		t.Fatal(err)
	}
	if requeued == 0 {
		t.Fatal("no stripes requeued after canceled encode")
	}
	if err := c.Fabric().SetAllRates(64 << 30); err != nil {
		t.Fatal(err)
	}
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatalf("re-encode after cancel: %v", err)
	}
	if stats.Stripes != requeued {
		t.Fatalf("re-encoded %d stripes, requeued %d", stats.Stripes, requeued)
	}
	if n := verifyParities(t, c, contents); n == 0 {
		t.Fatal("no parity verified after re-encode")
	}
	if rep := aud.Report(); rep.Total() != 0 {
		t.Fatalf("auditor dirty after re-encode: %+v", rep)
	}
}

// TestPipelinedEncodeTelemetry checks the overlap instrumentation: per-hop
// fill/drain histograms populate and measured pipeline depth exceeds 1
// (arithmetic genuinely overlapped transfer).
func TestPipelinedEncodeTelemetry(t *testing.T) {
	cfg := testConfig("ear")
	cfg.PipelinedEncode = true
	cfg.BlockSizeBytes = 256 << 10
	cfg.BandwidthBytesPerSec = 8 << 20
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := telemetry.NewRegistry()
	c.SetTelemetry(reg)

	rng := rand.New(rand.NewSource(29))
	writeBlocks(t, c, 2*cfg.K, rng)
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PipelinedStripes != stats.Stripes || stats.Stripes == 0 {
		t.Fatalf("pipelined %d of %d stripes", stats.PipelinedStripes, stats.Stripes)
	}
	if stats.PartialSumBytes <= 0 {
		t.Error("PartialSumBytes not accumulated")
	}
	snap := reg.Snapshot()
	seen := make(map[string]bool)
	for _, fam := range snap {
		for _, s := range fam.Series {
			if s.Count > 0 || s.Value > 0 {
				seen[fam.Name] = true
			}
		}
	}
	for _, name := range []string{
		"raidnode_pipe_hop_fill_seconds",
		"raidnode_pipe_hop_drain_seconds",
		"raidnode_pipe_depth",
		"raidnode_partial_sum_bytes_total",
		"raidnode_pipelined_stripes_total",
	} {
		if !seen[name] {
			t.Errorf("%s not populated by a pipelined encode", name)
		}
	}
}
