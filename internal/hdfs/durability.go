package hdfs

// durability.go is the NameNode's crash-recovery layer: op replay, the
// snapshot codec, checkpointing, and the recovered-state event backfill.
// It is the consumer side of the op records defined in op.go — replay
// dispatches each decoded record to the same apply helpers the live
// mutation paths use, so the two can never diverge. Nothing here publishes
// journal events or touches telemetry while recovering; recovery is
// invisible to the observability plane except for the explicit
// MetaRecoveryStarted / MetaRecovered / MetaCheckpointed markers.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ear/internal/events"
	"ear/internal/metalog"
	"ear/internal/placement"
	"ear/internal/topology"
)

// ErrNoMetaLog indicates a durability operation on a NameNode with no
// write-ahead log attached.
var ErrNoMetaLog = errors.New("hdfs: no metadata log attached")

// RecoverMeta rebuilds the NameNode from the log's newest snapshot plus its
// op tail, then attaches the log so every subsequent mutation is appended to
// it. It must be called exactly once, before the NameNode serves traffic
// (it is the only writer of nn.wal, which is read without synchronization
// afterwards). On a fresh log it degenerates to just attaching it.
//
// Replay applies ops through the same helpers the live paths use but
// publishes no events and records no metrics; call PublishRecoveredState
// afterwards to backfill the canonical event stream for subscribers that
// need the full history (the placement auditor).
func (nn *NameNode) RecoverMeta(l *metalog.Log) error {
	start := time.Now()
	var replayed int64
	err := l.Recover(nn.restoreSnapshot, func(lsn uint64, payload []byte) error {
		replayed++
		return nn.replayOp(lsn, payload)
	})
	if err != nil {
		return fmt.Errorf("hdfs: recovering metadata: %w", err)
	}
	nn.wal = l
	nn.recoveredOps.Store(replayed)
	nn.recoveredIn.Store(int64(time.Since(start)))
	return nil
}

// MetaStats returns the attached log's counters; ok is false when the
// NameNode runs without a write-ahead log.
func (nn *NameNode) MetaStats() (metalog.Stats, bool) {
	if nn.wal == nil {
		return metalog.Stats{}, false
	}
	return nn.wal.Stats(), true
}

// RecoveredOps reports how many log records the last RecoverMeta replayed
// (0 when none ran or the log was empty).
func (nn *NameNode) RecoveredOps() int64 { return nn.recoveredOps.Load() }

// CloseMeta flushes and closes the write-ahead log; a no-op without one.
func (nn *NameNode) CloseMeta() error {
	if nn.wal == nil {
		return nil
	}
	return nn.wal.Close()
}

// --- replay -----------------------------------------------------------------

// replayOp decodes one log record and applies it. It runs single-threaded
// before the NameNode serves traffic, in LSN order — which, because every op
// is appended while holding the lock guarding the state it mutates, is a
// linear extension of each lock domain's live apply order.
func (nn *NameNode) replayOp(lsn uint64, payload []byte) error {
	op, err := decodeOp(payload)
	if err != nil {
		return fmt.Errorf("lsn %d: %w", lsn, err)
	}
	switch op.kind {
	case opAllocate:
		if int(op.shard) < 0 || int(op.shard) >= len(nn.shards) {
			return fmt.Errorf("hdfs: replay lsn %d: allocate on unknown shard %d", lsn, op.shard)
		}
		sh := nn.shards[op.shard]
		// Re-apply the recorded placement decision to the policy (EAR keeps
		// open-stripe state; RR keeps none and skips this). The decision is
		// in the record, so no randomness is consumed.
		if pr, ok := sh.policy.(placementRestorer); ok {
			if op.core < 0 {
				return fmt.Errorf("hdfs: replay lsn %d: allocate of block %d has no core rack", lsn, op.block)
			}
			if err := pr.RestorePlacement(op.block, op.core, op.nodes, op.targets, op.attempts); err != nil {
				return fmt.Errorf("hdfs: replay lsn %d: %w", lsn, err)
			}
		}
		nn.applyAllocate(op)
	case opCommit:
		meta, err := nn.replayBlock(lsn, op)
		if err != nil {
			return err
		}
		nn.applyCommitLocked(meta)
		nn.enqueueRRPending(op.block)
	case opAbort:
		meta, err := nn.replayBlock(lsn, op)
		if err != nil {
			return err
		}
		applyAbortLocked(meta)
	case opSealStripe:
		if int(op.shard) < 0 || int(op.shard) >= len(nn.shards) {
			return fmt.Errorf("hdfs: replay lsn %d: seal on unknown shard %d", lsn, op.shard)
		}
		// The preceding allocate's RestorePlacement sealed exactly one
		// stripe on this shard; anything else means log and policy state
		// disagree.
		sealed := nn.shards[op.shard].policy.TakeSealed()
		if len(sealed) != 1 {
			return fmt.Errorf("hdfs: replay lsn %d: shard %d has %d sealed stripes, want 1", lsn, op.shard, len(sealed))
		}
		nn.mu.Lock()
		nn.registerStripeLocked(sealed[0])
		nn.mu.Unlock()
	case opFlushStripe:
		if int(op.shard) < 0 || int(op.shard) >= len(nn.shards) {
			return fmt.Errorf("hdfs: replay lsn %d: flush on unknown shard %d", lsn, op.shard)
		}
		od, ok := nn.shards[op.shard].policy.(openDropper)
		if !ok {
			return fmt.Errorf("hdfs: replay lsn %d: shard %d policy cannot drop open stripes", lsn, op.shard)
		}
		info := od.DropOpen(op.core)
		if info == nil {
			return fmt.Errorf("hdfs: replay lsn %d: no open stripe on shard %d core rack %d", lsn, op.shard, op.core)
		}
		nn.mu.Lock()
		nn.registerStripeLocked(info)
		nn.mu.Unlock()
	case opGroupStripe:
		// Rebuild the RR group exactly as GroupIntoStripes did: members in
		// recorded order, placements snapshotted from the block table (which
		// at this point in the replay holds what it held live).
		info := &placement.StripeInfo{CoreRack: -1}
		for _, b := range op.blocks {
			bs := nn.blockShardFor(b)
			bs.mu.RLock()
			meta, ok := bs.blocks[b]
			if !ok {
				bs.mu.RUnlock()
				return fmt.Errorf("hdfs: replay lsn %d: group references unknown block %d", lsn, b)
			}
			pl := topology.Placement{Block: b, Nodes: append([]topology.NodeID(nil), meta.Nodes...)}
			bs.mu.RUnlock()
			info.Blocks = append(info.Blocks, b)
			info.Placements = append(info.Placements, pl)
		}
		nn.mu.Lock()
		nn.registerStripeLocked(info)
		nn.mu.Unlock()
		nn.rrMu.Lock()
		nn.removePendingLocked(op.blocks)
		nn.rrMu.Unlock()
	case opDrainPending:
		nn.mu.Lock()
		nn.applyDrainLocked()
		nn.mu.Unlock()
	case opEncodeCommit:
		nn.mu.Lock()
		sm, ok := nn.stripes[op.stripe]
		if !ok {
			nn.mu.Unlock()
			return fmt.Errorf("hdfs: replay lsn %d: encode-commit of unknown stripe %d", lsn, op.stripe)
		}
		err := nn.applyEncodeLocked(sm, op.plan)
		nn.mu.Unlock()
		if err != nil {
			return fmt.Errorf("hdfs: replay lsn %d: %w", lsn, err)
		}
	case opBlockMoved:
		meta, err := nn.replayBlock(lsn, op)
		if err != nil {
			return err
		}
		applyBlockMovedLocked(meta, op.nodes)
	case opParityMoved:
		nn.mu.Lock()
		sm, ok := nn.stripes[op.stripe]
		if !ok || sm.Plan == nil || op.idx < 0 || op.idx >= len(sm.Plan.Parity) {
			nn.mu.Unlock()
			return fmt.Errorf("hdfs: replay lsn %d: stripe %d has no parity index %d", lsn, op.stripe, op.idx)
		}
		sm.Plan.Parity[op.idx] = op.node
		nn.mu.Unlock()
	case opNodeDead:
		nn.deadMu.Lock()
		nn.dead[op.node] = true
		nn.deadMu.Unlock()
	case opNodeAlive:
		nn.deadMu.Lock()
		delete(nn.dead, op.node)
		nn.deadMu.Unlock()
	case opRequeueStripe:
		nn.mu.Lock()
		sm, ok := nn.stripes[op.stripe]
		if !ok {
			nn.mu.Unlock()
			return fmt.Errorf("hdfs: replay lsn %d: requeue of unknown stripe %d", lsn, op.stripe)
		}
		nn.applyRequeueLocked(sm)
		nn.mu.Unlock()
	default:
		return fmt.Errorf("hdfs: replay lsn %d: unhandled op kind %v", lsn, op.kind)
	}
	return nil
}

// replayBlock resolves the block a replayed op refers to. The caller applies
// the op without the shard lock: replay is single-threaded, and the apply
// helpers' Locked suffix refers to the live path's contract.
func (nn *NameNode) replayBlock(lsn uint64, op *nnOp) (*BlockMeta, error) {
	bs := nn.blockShardFor(op.block)
	bs.mu.Lock()
	meta, ok := bs.blocks[op.block]
	bs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: replay lsn %d: %v of unknown block %d", lsn, op.kind, op.block)
	}
	return meta, nil
}

// --- requeue ----------------------------------------------------------------

// RequeueUnencodedStripes puts every registered, unencoded stripe that is
// not already queued back into the pre-encoding store, so an encoding run
// interrupted by a crash can be restarted after recovery (the drain op that
// handed the stripes out is in the log, so replay alone leaves them parked).
// Returns the number of stripes requeued.
func (nn *NameNode) RequeueUnencodedStripes() (int, error) {
	defer nn.serialSection()()
	nn.mu.Lock()
	queued := make(map[topology.StripeID]bool, len(nn.preEncoding))
	for _, info := range nn.preEncoding {
		queued[info.ID] = true
	}
	var ids []topology.StripeID
	for id, sm := range nn.stripes {
		if !sm.Encoded && !queued[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var lsn uint64
	for _, id := range ids {
		op := &nnOp{kind: opRequeueStripe, stripe: id}
		l, err := nn.logOp(op)
		if err != nil {
			nn.mu.Unlock()
			return 0, err
		}
		if l > lsn {
			lsn = l
		}
		nn.applyRequeueLocked(nn.stripes[id])
	}
	nn.mu.Unlock()
	if err := nn.waitDurable(lsn); err != nil {
		return 0, err
	}
	return len(ids), nil
}

// applyRequeueLocked puts a stripe back into the pre-encoding store; the
// shared apply step of requeue. Caller holds nn.mu.
func (nn *NameNode) applyRequeueLocked(sm *StripeMeta) {
	nn.preEncoding = append(nn.preEncoding, sm.Info)
}

// --- snapshot codec ---------------------------------------------------------

// snapshotVersion is the first byte of every state snapshot.
const snapshotVersion = 1

// Block flag bits in the snapshot encoding.
const (
	snapBlockEncoded   = 1 << 0
	snapBlockCommitted = 1 << 1
	snapBlockAborted   = 1 << 2
)

// lockAll acquires every NameNode lock in the global ordering (placement
// shards by index, then rrMu, mu, block-table shards by index, deadMu),
// freezing the whole metadata plane; unlockAll releases in reverse. Used
// only by the snapshot path — every mutation is quiesced, so the captured
// state is a consistent cut and the log's LastLSN at that moment is exactly
// the applied prefix.
func (nn *NameNode) lockAll() {
	for _, sh := range nn.shards {
		sh.mu.Lock()
	}
	nn.rrMu.Lock()
	nn.mu.Lock()
	for i := range nn.blockTab {
		nn.blockTab[i].mu.Lock()
	}
	nn.deadMu.Lock()
}

func (nn *NameNode) unlockAll() {
	nn.deadMu.Unlock()
	for i := len(nn.blockTab) - 1; i >= 0; i-- {
		nn.blockTab[i].mu.Unlock()
	}
	nn.mu.Unlock()
	nn.rrMu.Unlock()
	for i := len(nn.shards) - 1; i >= 0; i-- {
		nn.shards[i].mu.Unlock()
	}
}

// appendPlacement / readPlacement extend op.go's codec to placements.
func appendPlacement(b []byte, pl topology.Placement) []byte {
	b = appendI64(b, int64(pl.Block))
	return appendNodes(b, pl.Nodes)
}

func (r *opReader) placement() topology.Placement {
	return topology.Placement{Block: topology.BlockID(r.i64()), Nodes: r.nodes()}
}

// appendStripeInfo serializes one placement.StripeInfo.
func appendStripeInfo(b []byte, info *placement.StripeInfo) []byte {
	b = appendI64(b, int64(info.ID))
	b = appendU32(b, uint32(int32(info.CoreRack)))
	b = appendRacks(b, info.Targets)
	b = appendBlocks(b, info.Blocks)
	b = appendU32(b, uint32(len(info.Placements)))
	for _, pl := range info.Placements {
		b = appendPlacement(b, pl)
	}
	b = appendU32(b, uint32(len(info.Iterations)))
	for _, it := range info.Iterations {
		b = appendU32(b, uint32(int32(it)))
	}
	return b
}

func (r *opReader) stripeInfo() *placement.StripeInfo {
	info := &placement.StripeInfo{
		ID:       topology.StripeID(r.i64()),
		CoreRack: topology.RackID(int32(r.u32())),
		Targets:  r.racks(),
		Blocks:   r.blocks(),
	}
	if n := r.count(); r.err == nil && n > 0 {
		info.Placements = make([]topology.Placement, n)
		for i := range info.Placements {
			info.Placements[i] = r.placement()
		}
	}
	if n := r.count(); r.err == nil && n > 0 {
		info.Iterations = make([]int, n)
		for i := range info.Iterations {
			info.Iterations[i] = int(int32(r.u32()))
		}
	}
	return info
}

// encodeStateLocked serializes the complete metadata plane. The caller holds
// every lock (lockAll). The encoding is canonical — maps are walked in
// sorted order — so byte equality of two encodings is state equality; the
// crash-recovery property tests compare exactly these bytes. The policy
// rngs are deliberately excluded: placement decisions are recorded in ops
// at propose time, so recovery never re-draws them, and two states that
// differ only in unconsumed randomness are operationally identical.
func (nn *NameNode) encodeStateLocked(buf []byte) []byte {
	buf = append(buf, snapshotVersion)
	buf = appendI64(buf, nn.nextBlock.Load())
	buf = appendI64(buf, int64(nn.nextStripe))

	var blockIDs []topology.BlockID
	for i := range nn.blockTab {
		for id := range nn.blockTab[i].blocks {
			blockIDs = append(blockIDs, id)
		}
	}
	sort.Slice(blockIDs, func(i, j int) bool { return blockIDs[i] < blockIDs[j] })
	buf = appendU32(buf, uint32(len(blockIDs)))
	for _, id := range blockIDs {
		m := nn.blockShardFor(id).blocks[id]
		buf = appendI64(buf, int64(m.ID))
		buf = appendI64(buf, int64(m.Size))
		buf = appendI64(buf, int64(m.Stripe))
		var flags byte
		if m.Encoded {
			flags |= snapBlockEncoded
		}
		if m.Committed {
			flags |= snapBlockCommitted
		}
		if m.Aborted {
			flags |= snapBlockAborted
		}
		buf = append(buf, flags)
		buf = appendNodes(buf, m.Nodes)
	}

	stripeIDs := make([]topology.StripeID, 0, len(nn.stripes))
	for id := range nn.stripes {
		stripeIDs = append(stripeIDs, id)
	}
	sort.Slice(stripeIDs, func(i, j int) bool { return stripeIDs[i] < stripeIDs[j] })
	buf = appendU32(buf, uint32(len(stripeIDs)))
	for _, id := range stripeIDs {
		sm := nn.stripes[id]
		buf = appendStripeInfo(buf, sm.Info)
		if sm.Plan != nil {
			buf = append(buf, 1)
			buf = appendNodes(buf, sm.Plan.Keep)
			buf = appendNodes(buf, sm.Plan.Parity)
			if sm.Plan.Violation {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = appendU32(buf, uint32(len(sm.Plan.Relocated)))
			for _, ri := range sm.Plan.Relocated {
				buf = appendU32(buf, uint32(int32(ri)))
			}
		} else {
			buf = append(buf, 0)
		}
		if sm.Encoded {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}

	pre := make([]topology.BlockID, 0, len(nn.preEncoding)) // stripe IDs, i64-coded
	for _, info := range nn.preEncoding {
		pre = append(pre, topology.BlockID(info.ID))
	}
	buf = appendBlocks(buf, pre)
	buf = appendBlocks(buf, nn.rrPending)

	deadIDs := make([]topology.NodeID, 0, len(nn.dead))
	for n := range nn.dead {
		deadIDs = append(deadIDs, n)
	}
	sort.Slice(deadIDs, func(i, j int) bool { return deadIDs[i] < deadIDs[j] })
	buf = appendNodes(buf, deadIDs)

	buf = appendU32(buf, uint32(len(nn.shards)))
	for _, sh := range nn.shards {
		exp, ok := sh.policy.(openStateExporter)
		if !ok {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		next, open := exp.OpenState()
		buf = appendI64(buf, int64(next))
		buf = appendU32(buf, uint32(len(open)))
		for _, info := range open {
			buf = appendStripeInfo(buf, info)
		}
	}
	return buf
}

// restoreSnapshot rebuilds the metadata plane from a snapshot produced by
// encodeStateLocked. It runs once, on a freshly constructed NameNode, before
// log-tail replay; no locks are needed but the helpers take them anyway.
func (nn *NameNode) restoreSnapshot(state []byte) error {
	r := &opReader{b: state}
	if v := r.u8(); r.err == nil && v != snapshotVersion {
		return fmt.Errorf("hdfs: snapshot version %d, want %d", v, snapshotVersion)
	}
	nn.nextBlock.Store(r.i64())
	nn.nextStripe = topology.StripeID(r.i64())

	nblocks := r.count()
	for i := 0; i < nblocks && r.err == nil; i++ {
		m := &BlockMeta{
			ID:     topology.BlockID(r.i64()),
			Size:   int(r.i64()),
			Stripe: topology.StripeID(r.i64()),
		}
		flags := r.u8()
		m.Encoded = flags&snapBlockEncoded != 0
		m.Committed = flags&snapBlockCommitted != 0
		m.Aborted = flags&snapBlockAborted != 0
		m.Nodes = r.nodes()
		if r.err == nil {
			nn.blockShardFor(m.ID).blocks[m.ID] = m
		}
	}

	nstripes := r.count()
	for i := 0; i < nstripes && r.err == nil; i++ {
		sm := &StripeMeta{Info: r.stripeInfo()}
		if r.u8() != 0 {
			plan := &placement.PostEncodingPlan{Keep: r.nodes(), Parity: r.nodes()}
			plan.Violation = r.u8() != 0
			if n := r.count(); r.err == nil && n > 0 {
				plan.Relocated = make([]int, n)
				for j := range plan.Relocated {
					plan.Relocated[j] = int(int32(r.u32()))
				}
			}
			sm.Plan = plan
		}
		sm.Encoded = r.u8() != 0
		if r.err == nil {
			nn.stripes[sm.Info.ID] = sm
		}
	}

	// preEncoding aliases the registered stripes' Info records, exactly as
	// registerStripeLocked arranges on the live path.
	for _, raw := range r.blocks() {
		id := topology.StripeID(raw)
		sm, ok := nn.stripes[id]
		if !ok {
			if r.err == nil {
				return fmt.Errorf("hdfs: snapshot queues unknown stripe %d", id)
			}
			break
		}
		nn.preEncoding = append(nn.preEncoding, sm.Info)
	}
	nn.rrPending = r.blocks()
	for _, n := range r.nodes() {
		nn.dead[n] = true
	}

	nshards := r.count()
	if r.err == nil && nshards != len(nn.shards) {
		return fmt.Errorf("hdfs: snapshot has %d placement shards, NameNode has %d", nshards, len(nn.shards))
	}
	for i := 0; i < nshards && r.err == nil; i++ {
		if r.u8() == 0 {
			continue
		}
		exp, ok := nn.shards[i].policy.(openStateExporter)
		if !ok {
			return fmt.Errorf("hdfs: snapshot has open-stripe state for shard %d but its policy keeps none", i)
		}
		next := topology.StripeID(r.i64())
		nopen := r.count()
		open := make([]*placement.StripeInfo, 0, nopen)
		for j := 0; j < nopen && r.err == nil; j++ {
			open = append(open, r.stripeInfo())
		}
		if r.err != nil {
			break
		}
		if err := exp.RestoreOpenState(next, open); err != nil {
			return fmt.Errorf("hdfs: restoring shard %d open state: %w", i, err)
		}
	}
	if r.err != nil {
		return fmt.Errorf("hdfs: decoding snapshot: %w", r.err)
	}
	if len(r.b) != 0 {
		return fmt.Errorf("hdfs: snapshot has %d trailing bytes", len(r.b))
	}
	return nil
}

// StateDigest returns the canonical encoding of the full metadata plane
// (the same bytes a snapshot stores). Two NameNodes with equal digests hold
// identical metadata; the crash-recovery property tests are built on this.
func (nn *NameNode) StateDigest() []byte {
	nn.lockAll()
	defer nn.unlockAll()
	return nn.encodeStateLocked(nil)
}

// --- checkpoints ------------------------------------------------------------

// SetAutoSnapshot arms automatic checkpointing: after every `every` log
// appends the next mutation to complete takes a snapshot (0 disarms). The
// snapshot is synchronous in that mutation's caller — an occasional
// allocation pays the checkpoint cost, the trade HDFS's periodic
// checkpointing also makes.
func (nn *NameNode) SetAutoSnapshot(every int64) { nn.snapEvery.Store(every) }

// maybeSnapshot checkpoints when the auto-snapshot threshold has passed.
// Called from waitDurable with no NameNode locks held. Errors are dropped:
// a failed checkpoint leaves the log longer, not the state worse, and the
// next explicit SnapshotNow surfaces them.
func (nn *NameNode) maybeSnapshot() {
	every := nn.snapEvery.Load()
	if nn.wal == nil || every <= 0 {
		return
	}
	if int64(nn.wal.Stats().Appends)-nn.lastSnapAppends.Load() < every {
		return
	}
	if !nn.snapInFlight.CompareAndSwap(false, true) {
		return
	}
	defer nn.snapInFlight.Store(false)
	_ = nn.SnapshotNow()
}

// SnapshotNow freezes the metadata plane, writes a snapshot of it at the
// log position the freeze observed, and truncates the log's covered prefix.
// Mutations in flight block for the (brief) freeze; the snapshot file write
// happens after they resume. Publishes one MetaCheckpointed event.
func (nn *NameNode) SnapshotNow() error {
	if nn.wal == nil {
		return ErrNoMetaLog
	}
	// No serialSection here: lockAll freezes the plane by itself, and in the
	// serialized A/B mode the triggering mutation already holds serialMu when
	// maybeSnapshot runs (taking it again would self-deadlock).
	start := time.Now()
	nn.lockAll()
	lsn := nn.wal.LastLSN()
	state := nn.encodeStateLocked(nil)
	nn.unlockAll()
	if err := nn.wal.Snapshot(lsn, state); err != nil {
		return err
	}
	nn.lastSnapAppends.Store(int64(nn.wal.Stats().Appends))
	if j := nn.journal(); j != nil {
		ev := events.New(events.MetaCheckpointed, "namenode")
		ev.Bytes = int64(len(state))
		ev.Dur = time.Since(start)
		j.Publish(ev)
	}
	return nil
}

// --- recovered-state event backfill -----------------------------------------

// PublishRecoveredState republishes the canonical event stream implied by
// the recovered metadata, bracketed by MetaRecoveryStarted / MetaRecovered.
// Restart discards the old process's journal, but subscribers like the
// placement auditor model cluster state purely from events — this backfill
// hands them the recovered layout in an order that satisfies every audited
// invariant the state itself satisfies:
//
//  1. every block's BlockAllocated (original placement, so a stripe's
//     grouping event trails its members' allocations),
//  2. every stripe's StripeGrouped, plus StripeEncodeStarted for encoded
//     stripes (suspending replica-count checks before step 3 shrinks
//     encoded members to their kept replica),
//  3. every block's BlockCommitted (current replicas) or BlockAborted,
//  4. every encoded stripe's StripeEncoded (current parity locations),
//  5. NodeDead for the failed-node set.
//
// Call it after RecoverMeta, before serving traffic, with the journal the
// new process will use.
func (nn *NameNode) PublishRecoveredState(j *events.Journal) {
	if j == nil {
		return
	}
	j.Publish(events.New(events.MetaRecoveryStarted, "namenode"))

	// Clone the plane under the global freeze, publish after releasing.
	nn.lockAll()
	blocks := make([]*BlockMeta, 0, 256)
	for i := range nn.blockTab {
		for _, m := range nn.blockTab[i].blocks {
			blocks = append(blocks, cloneBlockMeta(m))
		}
	}
	stripes := make([]*StripeMeta, 0, len(nn.stripes))
	for _, sm := range nn.stripes {
		stripes = append(stripes, cloneStripeMeta(sm))
	}
	dead := make([]topology.NodeID, 0, len(nn.dead))
	for n := range nn.dead {
		dead = append(dead, n)
	}
	nn.unlockAll()
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	sort.Slice(stripes, func(i, j int) bool { return stripes[i].Info.ID < stripes[j].Info.ID })
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })

	// originalNodes: the placement the block was allocated with — recorded in
	// its stripe's Info (the block table holds only the current, possibly
	// encode-collapsed, replica set).
	originalNodes := func(m *BlockMeta) []topology.NodeID {
		if m.Stripe >= 0 {
			for _, sm := range stripes {
				if sm.Info.ID != m.Stripe {
					continue
				}
				for i, b := range sm.Info.Blocks {
					if b == m.ID && i < len(sm.Info.Placements) {
						return sm.Info.Placements[i].Nodes
					}
				}
			}
		}
		return m.Nodes
	}

	for _, m := range blocks {
		ev := events.New(events.BlockAllocated, "namenode")
		ev.Block = m.ID
		ev.Bytes = int64(m.Size)
		ev.Nodes = append([]topology.NodeID(nil), originalNodes(m)...)
		j.Publish(ev)
	}
	for _, sm := range stripes {
		ev := events.New(events.StripeGrouped, "namenode")
		ev.Stripe = sm.Info.ID
		ev.Rack = sm.Info.CoreRack
		ev.Blocks = append([]topology.BlockID(nil), sm.Info.Blocks...)
		j.Publish(ev)
		if sm.Encoded {
			sev := events.New(events.StripeEncodeStarted, "namenode")
			sev.Stripe = sm.Info.ID
			j.Publish(sev)
		}
	}
	for _, m := range blocks {
		switch {
		case m.Aborted:
			ev := events.New(events.BlockAborted, "namenode")
			ev.Block = m.ID
			j.Publish(ev)
		case m.Committed:
			ev := events.New(events.BlockCommitted, "namenode")
			ev.Block = m.ID
			ev.Nodes = append([]topology.NodeID(nil), m.Nodes...)
			j.Publish(ev)
		}
	}
	for _, sm := range stripes {
		if !sm.Encoded || sm.Plan == nil {
			continue
		}
		ev := events.New(events.StripeEncoded, "namenode")
		ev.Stripe = sm.Info.ID
		ev.Nodes = append([]topology.NodeID(nil), sm.Plan.Parity...)
		j.Publish(ev)
	}
	for _, n := range dead {
		ev := events.New(events.NodeDead, "namenode")
		ev.Node = n
		j.Publish(ev)
	}

	done := events.New(events.MetaRecovered, "namenode")
	done.Dur = time.Duration(nn.recoveredIn.Load())
	done.Bytes = nn.recoveredOps.Load()
	done.Detail = fmt.Sprintf("blocks=%d stripes=%d dead=%d", len(blocks), len(stripes), len(dead))
	j.Publish(done)
}
