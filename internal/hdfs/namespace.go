package hdfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ear/internal/topology"
)

// Namespace errors.
var (
	// ErrFileExists indicates a Create for an existing path.
	ErrFileExists = errors.New("hdfs: file exists")
	// ErrFileNotFound indicates an unknown path.
	ErrFileNotFound = errors.New("hdfs: file not found")
	// ErrFileOpen indicates an operation requiring a closed file.
	ErrFileOpen = errors.New("hdfs: file still open")
)

// FileInfo describes one file in the namespace.
type FileInfo struct {
	Path string
	// Blocks lists the file's blocks in order.
	Blocks []topology.BlockID
	// BlockSizes[i] is the number of valid bytes in Blocks[i]; every
	// Append is block-aligned, so the final block of each append may be
	// partial (zero-padded on disk, like HDFS's last block).
	BlockSizes []int
	// Size is the logical size in bytes.
	Size int
	// Closed files are immutable and eligible for encoding.
	Closed bool
}

// Namespace is the file layer over the block store: HDFS-style append-only
// files, each a sequence of fixed-size blocks. Erasure coding remains
// block-level and inter-file (stripes may span files), exactly as
// Facebook's HDFS-RAID operates.
type Namespace struct {
	mu    sync.Mutex
	c     *Cluster
	files map[string]*FileInfo
}

// Namespace returns the cluster's file namespace (created on first use).
func (c *Cluster) Namespace() *Namespace {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.ns == nil {
		c.ns = &Namespace{c: c, files: make(map[string]*FileInfo)}
	}
	return c.ns
}

// Create registers an empty open file.
func (ns *Namespace) Create(path string) error {
	if path == "" {
		return fmt.Errorf("%w: empty path", ErrInvalidConfig)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrFileExists, path)
	}
	ns.files[path] = &FileInfo{Path: path}
	return nil
}

// Append writes data to the end of an open file with a background context.
// See AppendCtx.
func (ns *Namespace) Append(client topology.NodeID, path string, data []byte) error {
	return ns.AppendCtx(context.Background(), client, path, data)
}

// AppendCtx writes data to the end of an open file from the given client
// node, splitting it into blocks (the final partial block is zero-padded).
// Block writes go through the normal replication pipeline; a cancelled
// context aborts the in-flight block write and leaves the file at the last
// fully appended block.
func (ns *Namespace) AppendCtx(ctx context.Context, client topology.NodeID, path string, data []byte) error {
	ns.mu.Lock()
	fi, ok := ns.files[path]
	if !ok {
		ns.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	if fi.Closed {
		ns.mu.Unlock()
		return fmt.Errorf("hdfs: %s is closed for writing", path)
	}
	ns.mu.Unlock()

	bs := ns.c.cfg.BlockSizeBytes
	var blocks []topology.BlockID
	var sizes []int
	record := func() {
		ns.mu.Lock()
		fi.Blocks = append(fi.Blocks, blocks...)
		fi.BlockSizes = append(fi.BlockSizes, sizes...)
		for _, s := range sizes {
			fi.Size += s
		}
		ns.mu.Unlock()
	}
	for off := 0; off < len(data); off += bs {
		chunk := make([]byte, bs)
		valid := copy(chunk, data[off:])
		id, err := ns.c.WriteBlockCtx(ctx, client, chunk)
		if err != nil {
			record()
			return fmt.Errorf("append %s: %w", path, err)
		}
		blocks = append(blocks, id)
		sizes = append(sizes, valid)
	}
	record()
	return nil
}

// Close seals the file; it becomes immutable and encodable.
func (ns *Namespace) Close(path string) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	fi, ok := ns.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	fi.Closed = true
	return nil
}

// Read returns the file's full contents with a background context. See
// ReadCtx.
func (ns *Namespace) Read(client topology.NodeID, path string) ([]byte, error) {
	return ns.ReadCtx(context.Background(), client, path)
}

// ReadCtx returns the file's full contents to the client node, reading each
// block from its nearest live replica (or via degraded reconstruction).
func (ns *Namespace) ReadCtx(ctx context.Context, client topology.NodeID, path string) ([]byte, error) {
	ns.mu.Lock()
	fi, ok := ns.files[path]
	if !ok {
		ns.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	blocks := append([]topology.BlockID(nil), fi.Blocks...)
	sizes := append([]int(nil), fi.BlockSizes...)
	size := fi.Size
	ns.mu.Unlock()

	out := make([]byte, 0, size)
	for i, b := range blocks {
		data, err := ns.c.ReadBlockCtx(ctx, client, b)
		if err != nil {
			return nil, fmt.Errorf("read %s block %d: %w", path, b, err)
		}
		out = append(out, data[:sizes[i]]...)
	}
	return out, nil
}

// Stat returns a copy of the file's metadata.
func (ns *Namespace) Stat(path string) (FileInfo, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	fi, ok := ns.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	cp := *fi
	cp.Blocks = append([]topology.BlockID(nil), fi.Blocks...)
	cp.BlockSizes = append([]int(nil), fi.BlockSizes...)
	return cp, nil
}

// List returns every path in lexical order.
func (ns *Namespace) List() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	paths := make([]string, 0, len(ns.files))
	for p := range ns.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Delete removes a closed file from the namespace and deletes its blocks'
// surviving replicas from the DataNodes. Blocks already encoded stay in
// their stripes (HDFS-RAID garbage-collects parity separately); their
// metadata is retained by the NameNode.
func (ns *Namespace) Delete(path string) error {
	ns.mu.Lock()
	fi, ok := ns.files[path]
	if !ok {
		ns.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	if !fi.Closed {
		ns.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrFileOpen, path)
	}
	delete(ns.files, path)
	blocks := fi.Blocks
	ns.mu.Unlock()

	for _, b := range blocks {
		live, err := ns.c.nn.LiveReplicas(b)
		if err != nil {
			continue
		}
		meta, err := ns.c.nn.Block(b)
		if err != nil || meta.Encoded {
			continue
		}
		for _, n := range live {
			dn, err := ns.c.DataNodeOf(n)
			if err != nil {
				continue
			}
			// Best effort: the replica may already be gone.
			_ = dn.Store.Delete(DataKey(b))
		}
	}
	return nil
}
