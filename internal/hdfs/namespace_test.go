package hdfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestNamespaceLifecycle(t *testing.T) {
	c := newTestCluster(t, "ear")
	ns := c.Namespace()
	if same := c.Namespace(); same != ns {
		t.Fatal("Namespace not a singleton")
	}

	if err := ns.Create("/logs/day1"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := ns.Create("/logs/day1"); !errors.Is(err, ErrFileExists) {
		t.Errorf("duplicate Create: %v", err)
	}
	if err := ns.Create(""); err == nil {
		t.Error("empty path: expected error")
	}

	// 2.5 blocks of data: final block zero-padded.
	bs := c.Config().BlockSizeBytes
	payload := make([]byte, bs*2+bs/2)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := ns.Append(0, "/logs/day1", payload); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fi, err := ns.Stat("/logs/day1")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if len(fi.Blocks) != 3 || fi.Size != len(payload) || fi.Closed {
		t.Fatalf("Stat = %+v", fi)
	}

	got, err := ns.Read(5, "/logs/day1")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file content mismatch")
	}

	// Second append grows the file.
	more := make([]byte, bs/4)
	for i := range more {
		more[i] = 0xAB
	}
	if err := ns.Append(1, "/logs/day1", more); err != nil {
		t.Fatalf("second Append: %v", err)
	}
	got, err = ns.Read(2, "/logs/day1")
	if err != nil {
		t.Fatalf("Read after append: %v", err)
	}
	if len(got) != len(payload)+len(more) {
		t.Fatalf("size = %d, want %d", len(got), len(payload)+len(more))
	}
	if !bytes.Equal(got[len(payload):], more) {
		t.Fatal("appended content mismatch")
	}

	if err := ns.Close("/logs/day1"); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ns.Append(0, "/logs/day1", more); err == nil {
		t.Error("append to closed file: expected error")
	}
}

func TestNamespaceErrors(t *testing.T) {
	c := newTestCluster(t, "rr")
	ns := c.Namespace()
	if _, err := ns.Read(0, "/missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("Read missing: %v", err)
	}
	if _, err := ns.Stat("/missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("Stat missing: %v", err)
	}
	if err := ns.Append(0, "/missing", []byte("x")); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("Append missing: %v", err)
	}
	if err := ns.Close("/missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("Close missing: %v", err)
	}
	if err := ns.Delete("/missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("Delete missing: %v", err)
	}
	if err := ns.Create("/open"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Delete("/open"); !errors.Is(err, ErrFileOpen) {
		t.Errorf("Delete open: %v", err)
	}
}

func TestNamespaceList(t *testing.T) {
	c := newTestCluster(t, "rr")
	ns := c.Namespace()
	for _, p := range []string{"/c", "/a", "/b"} {
		if err := ns.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	got := ns.List()
	want := []string{"/a", "/b", "/c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("List = %v, want %v", got, want)
	}
}

func TestNamespaceInterFileEncoding(t *testing.T) {
	// Blocks of several small files share stripes (inter-file encoding,
	// Section IV-A), and all files survive encoding intact.
	c := newTestCluster(t, "rr") // k=4
	ns := c.Namespace()
	bs := c.Config().BlockSizeBytes
	rng := rand.New(rand.NewSource(2))
	contents := map[string][]byte{}
	for i := 0; i < 6; i++ {
		path := string(rune('a'+i)) + ".dat"
		if err := ns.Create(path); err != nil {
			t.Fatal(err)
		}
		data := make([]byte, bs*2) // 2 blocks per file; 12 blocks = 3 stripes
		rng.Read(data)
		if err := ns.Append(0, path, data); err != nil {
			t.Fatal(err)
		}
		if err := ns.Close(path); err != nil {
			t.Fatal(err)
		}
		contents[path] = data
	}
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatalf("EncodeAll: %v", err)
	}
	if stats.Stripes != 3 {
		t.Fatalf("stripes = %d, want 3 (inter-file)", stats.Stripes)
	}
	// A stripe must span blocks of more than one file: file i owns blocks
	// 2i, 2i+1, and stripes group 4 consecutive blocks.
	for path, want := range contents {
		got, err := ns.Read(3, path)
		if err != nil {
			t.Fatalf("Read %s after encode: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted by encoding", path)
		}
	}
}

func TestNamespaceDeleteFreesReplicas(t *testing.T) {
	c := newTestCluster(t, "rr")
	ns := c.Namespace()
	bs := c.Config().BlockSizeBytes
	if err := ns.Create("/tmp1"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Append(0, "/tmp1", make([]byte, bs)); err != nil {
		t.Fatal(err)
	}
	if err := ns.Close("/tmp1"); err != nil {
		t.Fatal(err)
	}
	fi, err := ns.Stat("/tmp1")
	if err != nil {
		t.Fatal(err)
	}
	block := fi.Blocks[0]
	meta, err := c.NameNode().Block(block)
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Delete("/tmp1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for _, n := range meta.Nodes {
		dn, err := c.DataNodeOf(n)
		if err != nil {
			t.Fatal(err)
		}
		if dn.Store.Has(DataKey(block)) {
			t.Fatalf("replica of deleted file still on node %d", n)
		}
	}
	if len(ns.List()) != 0 {
		t.Error("deleted file still listed")
	}
}
