package hdfs

// Two-level rack-aware repair. The naive repair path downloads k whole
// survivor blocks across the core to one gatherer and decodes centrally —
// the exact cross-rack bottleneck the paper's EAR placement eliminates for
// encoding but never for repair. Following the rack-aware regenerating-code
// observation (Hou, Lee, Shum, Hu), reconstruction is a single GF(256) dot
// product over k survivors, so each survivor rack can fold its local
// survivors into one partial sum (decode-row coefficients from the coder's
// inversion cache) and ship exactly one partial across the core. The chain
// planner (placement.PlanPipeline, generalized here from parity rows to
// decode rows) orders the hops rack-contiguously with the repairer's rack
// last, and the hops walk the block chunk by chunk over real fabric
// streams, so transfer overlaps arithmetic and per-repair cross-rack
// traffic drops from ~k blocks to one partial per survivor rack boundary.
// Nothing is stored until the whole pipeline has succeeded: a canceled
// repair commits nothing.

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"ear/internal/blockstore"
	"ear/internal/fabric"
	"ear/internal/gf256"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/topology"
	"ear/internal/workgroup"
)

// repairStripePos reconstructs stripe position pos (data or parity) into
// out on the configured repair path: the two-level rack-aware pipeline when
// Config.RackAwareRepair is set (SequentialDataPath forces the baseline),
// else the naive gather. Both paths produce bit-identical content.
func (c *Cluster) repairStripePos(ctx context.Context, sm *StripeMeta, pos int, target topology.NodeID, out []byte, tr *repairTraffic, parent *telemetry.Span) error {
	if c.cfg.RackAwareRepair && !c.cfg.SequentialDataPath {
		return c.pipelineRepairInto(ctx, sm, pos, target, out, tr, parent)
	}
	return c.gatherRepairInto(ctx, sm, pos, target, out, tr)
}

// repairPosKey returns the store key for a stripe position: the data block
// for positions below k, the stripe parity above.
func (c *Cluster) repairPosKey(sm *StripeMeta, pos int) blockstore.Key {
	if pos < c.cfg.K {
		return DataKey(sm.Info.Blocks[pos])
	}
	return ParityKey(sm.Info.ID, pos-c.cfg.K)
}

// copyRepairInto serves the degenerate repair where the target position
// still has a live holder: read the block there and ship it to the target
// over one shaped stream.
func (c *Cluster) copyRepairInto(ctx context.Context, key blockstore.Key, src, target topology.NodeID, out []byte, tr *repairTraffic) error {
	dn, err := c.DataNodeOf(src)
	if err != nil {
		return err
	}
	if err := dn.Store.GetInto(key, out); err != nil {
		return err
	}
	st, err := c.fab.OpenStream(ctx, src, target)
	if err != nil {
		return err
	}
	err = st.Send(ctx, len(out))
	st.Close()
	if err != nil {
		return err
	}
	tr.addStream(st, int64(len(out)))
	return nil
}

// repairSurvivors selects the k survivor positions reconstructing pos and
// resolves their holders. Positions are taken ascending (data before
// parity, mirroring the central decoder's pickSurvivors): a data position
// survives when it has a live replica, short-stripe padding and aborted
// members survive for free as known zeros (no holder, no hop), and a
// parity position survives when its holder is alive. It returns the
// ascending index set and the live holders per stripe position (empty for
// zero-content survivors).
func (c *Cluster) repairSurvivors(sm *StripeMeta, pos int) ([]int, [][]topology.NodeID, error) {
	k, n := c.cfg.K, c.cfg.N
	indices := make([]int, 0, k)
	holders := make([][]topology.NodeID, n)
	for i := 0; i < n && len(indices) < k; i++ {
		if i == pos {
			continue
		}
		switch {
		case i < len(sm.Info.Blocks):
			live, err := c.nn.LiveReplicas(sm.Info.Blocks[i])
			if err != nil {
				return nil, nil, err
			}
			if len(live) == 0 {
				meta, err := c.nn.Block(sm.Info.Blocks[i])
				if err != nil {
					return nil, nil, err
				}
				if !meta.Aborted {
					continue // lost, not a survivor
				}
				// Aborted members encoded as zeros: free survivors.
			}
			holders[i] = live
		case i < k:
			// Short-stripe padding: known zero content, no hop needed.
		default:
			node := sm.Plan.Parity[i-k]
			if c.nn.IsDead(node) {
				continue
			}
			holders[i] = []topology.NodeID{node}
		}
		indices = append(indices, i)
	}
	if len(indices) < k {
		return nil, nil, fmt.Errorf("%w: stripe %d position %d: only %d of %d survivors available",
			ErrNoReplica, sm.Info.ID, pos, len(indices), k)
	}
	return indices, holders, nil
}

// repairStage is one hop of the repair pipeline at runtime: the planned hop
// plus the single decode partial-sum accumulator. The last stage
// accumulates directly into the repaired block.
type repairStage struct {
	node      topology.NodeID
	rack      topology.RackID
	positions []int
	acc       []byte
	// crossIn records whether the inbound partial-sum stream crossed the
	// rack core (set by the stage goroutine, read after the join).
	crossIn bool
}

// pipelineRepairInto reconstructs stripe position pos into out through the
// two-level chain: PlanPipeline orders the survivor holders
// rack-contiguously with the target's rack last, every hop folds its local
// survivors into the single decode partial sum (coef·block per position,
// coefficients from the cached decode row), and each rack boundary ships
// exactly one partial-sum block, chunk by chunk over real fabric streams.
func (c *Cluster) pipelineRepairInto(ctx context.Context, sm *StripeMeta, pos int, target topology.NodeID, out []byte, tr *repairTraffic, parent *telemetry.Span) error {
	if sm.Plan == nil {
		return fmt.Errorf("%w: stripe %d not encoded", ErrUnknownStripe, sm.Info.ID)
	}
	blockSize := c.cfg.BlockSizeBytes
	targetRack, err := c.top.RackOf(target)
	if err != nil {
		return err
	}
	// Live content at the position itself: repair degrades to a copy from
	// the nearest holder (the gather path does the same through present).
	if pos < len(sm.Info.Blocks) {
		live, err := c.nn.LiveReplicas(sm.Info.Blocks[pos])
		if err != nil {
			return err
		}
		if len(live) > 0 {
			src, err := c.nearestReplica(live, target, targetRack)
			if err != nil {
				return err
			}
			return c.copyRepairInto(ctx, c.repairPosKey(sm, pos), src, target, out, tr)
		}
	} else if node := sm.Plan.Parity[pos-c.cfg.K]; !c.nn.IsDead(node) {
		return c.copyRepairInto(ctx, c.repairPosKey(sm, pos), node, target, out, tr)
	}

	indices, holders, err := c.repairSurvivors(sm, pos)
	if err != nil {
		return err
	}
	row, err := c.coder.DecodeRow(indices, pos)
	if err != nil {
		return err
	}
	coefOf := make(map[int]byte, len(indices))
	for i, sidx := range indices {
		coefOf[sidx] = row[i]
	}
	hops, err := placement.PlanPipeline(c.top, holders, target)
	if err != nil {
		return fmt.Errorf("stripe %d: %w", sm.Info.ID, err)
	}
	if len(hops) == 0 {
		// Every chosen survivor is a known zero (a nearly empty short
		// stripe): the decode dot product over zeros is zero.
		copy(out, c.zeroBlock)
		return nil
	}

	// Runtime stages: one per planned hop, plus a terminal receive-only
	// stage when the chain does not already end at the target. Intermediate
	// accumulators are pooled; the last stage accumulates into out.
	stages := make([]*repairStage, 0, len(hops)+1)
	for _, h := range hops {
		stages = append(stages, &repairStage{node: h.Node, rack: h.Rack, positions: h.Positions})
	}
	if last := stages[len(stages)-1]; last.node != target {
		stages = append(stages, &repairStage{node: target, rack: targetRack})
	}
	for s, st := range stages {
		if s == len(stages)-1 {
			st.acc = out
			continue
		}
		st.acc = c.bufPool.Get(blockSize)
	}
	defer func() {
		for s, st := range stages {
			if s == len(stages)-1 {
				continue
			}
			c.bufPool.Put(st.acc)
		}
	}()

	chunk := c.cfg.PipelineChunkBytes
	nChunks := (blockSize + chunk - 1) / chunk

	// ready[s] carries chunk indices whose partial sum has landed in stage
	// s's upstream accumulator (stage 0 starts from zeros). Buffered to
	// nChunks so a fast upstream never blocks; the group context covers
	// abandonment.
	ready := make([]chan int, len(stages))
	for s := range ready {
		ready[s] = make(chan int, nChunks)
	}
	for idx := 0; idx < nChunks; idx++ {
		ready[0] <- idx
	}
	close(ready[0])

	g, gctx := workgroup.WithContext(ctx)
	for s := range stages {
		s, st := s, stages[s]
		g.Go(func() error {
			hop := parent.ChildTrack("raidnode.repair-hop").
				Arg(telemetry.ComponentArg, "raidnode").
				Arg("stripe", strconv.FormatInt(int64(sm.Info.ID), 10)).
				Arg("node", strconv.Itoa(int(st.node))).
				Arg("hop", strconv.Itoa(s)).
				Arg("members", strconv.Itoa(len(st.positions)))
			defer hop.End()
			// Inbound partial-sum stream from the previous hop: one
			// chunk-sized partial per chunk index.
			var in *fabric.Stream
			if s > 0 {
				var err error
				in, err = c.fab.OpenStream(gctx, stages[s-1].node, st.node)
				if err != nil {
					return err
				}
				defer in.Close()
				st.crossIn = in.Cross()
			}
			// Local survivors: read once into pooled buffers; the shaped
			// disk stream charges their bytes chunk by chunk as they fold.
			var blocks [][]byte
			var disk *fabric.Stream
			if len(st.positions) > 0 {
				dn, err := c.DataNodeOf(st.node)
				if err != nil {
					return err
				}
				blocks = make([][]byte, len(st.positions))
				defer func() {
					for _, b := range blocks {
						if b != nil {
							c.bufPool.Put(b)
						}
					}
				}()
				for pi, p := range st.positions {
					buf := c.bufPool.Get(blockSize)
					blocks[pi] = buf
					if err := dn.Store.GetInto(c.repairPosKey(sm, p), buf); err != nil {
						return fmt.Errorf("stripe %d position %d on node %d: %w", sm.Info.ID, p, st.node, err)
					}
				}
				disk, err = c.fab.OpenStream(gctx, st.node, st.node)
				if err != nil {
					return err
				}
				defer disk.Close()
			}
			for {
				var idx int
				var chOk bool
				select {
				case idx, chOk = <-ready[s]:
					if !chOk {
						if s+1 < len(stages) {
							close(ready[s+1])
						}
						return nil
					}
				case <-gctx.Done():
					return gctx.Err()
				}
				lo := idx * chunk
				hi := min(lo+chunk, blockSize)
				if in != nil {
					// Receive the upstream partial sum for this chunk
					// range, then adopt it.
					if err := in.Send(gctx, hi-lo); err != nil {
						return err
					}
					copy(st.acc[lo:hi], stages[s-1].acc[lo:hi])
				} else {
					copy(st.acc[lo:hi], c.zeroBlock[lo:hi])
				}
				if len(st.positions) > 0 {
					if err := disk.Send(gctx, len(st.positions)*(hi-lo)); err != nil {
						return err
					}
					for pi, p := range st.positions {
						if coef := coefOf[p]; coef != 0 {
							gf256.MulAddSlice(coef, blocks[pi][lo:hi], st.acc[lo:hi])
						}
					}
				}
				if s+1 < len(stages) {
					ready[s+1] <- idx
				}
			}
		})
	}
	if err := g.Wait(); err != nil {
		return err
	}
	// Account the chained transfers: every inbound hop shipped one partial
	// block, crossing the core where the planned chain crossed racks.
	for s := 1; s < len(stages); s++ {
		if stages[s].crossIn {
			tr.addCross(int64(blockSize))
		} else {
			tr.addIntra(int64(blockSize))
		}
	}
	return nil
}

// recoveryThroughputMBps converts repaired bytes over a wall-clock span to
// MB/s (0 for a degenerate span).
func recoveryThroughputMBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}
