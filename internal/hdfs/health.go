package hdfs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ear/internal/events"
	"ear/internal/topology"
)

// HealthConfig tunes the cluster health monitor. Zero values take the
// defaults noted per field.
type HealthConfig struct {
	// Interval is the scoring period: each tick probes every node and
	// recomputes scores (default 500ms).
	Interval time.Duration
	// ProbeTimeout bounds one heartbeat probe; a probe still in flight at
	// the deadline is scored at its elapsed time (default 4×Interval).
	ProbeTimeout time.Duration
	// HeartbeatBytes is the probe payload: a small shaped transfer to a
	// same-rack peer, so probe latency reflects the node's fabric links
	// without moving real data (default 4096).
	HeartbeatBytes int
	// OutlierFactor is the latency ratio versus the cluster median at which
	// a signal's subscore reaches zero: at the median the subscore is 1, at
	// OutlierFactor×median it is 0, linear between (default 3).
	OutlierFactor float64
	// HeartbeatFloor is the absolute probe latency below which a node is
	// healthy regardless of ratio — without it, microsecond-scale medians
	// turn scheduler jitter into outliers (default 25ms). It also floors
	// the ratio's denominator.
	HeartbeatFloor time.Duration
	// OpCostFloor is the same slack for the transfer-cost signal, in
	// seconds per MiB (default 0.5, i.e. anything faster than ~2 MiB/s
	// effective is never an outlier).
	OpCostFloor float64
	// MinSamples is how many transfers a node must have in one scoring
	// window before its op-latency signal counts; below it the signal is
	// neutral (default 2 — each tick's own probes contribute two).
	MinSamples int
	// DegradedBelow and RecoveredAt are the hysteresis thresholds on the
	// 0–100 score: a node degrades below the former and must climb back to
	// the latter to recover (defaults 50 and 75).
	DegradedBelow float64
	RecoveredAt   float64
	// FailureDecay multiplies each node's failure count every tick, so old
	// NodeDead transitions stop hurting the score (default 0.5).
	FailureDecay float64
}

func (cfg HealthConfig) withDefaults() HealthConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 4 * cfg.Interval
	}
	if cfg.HeartbeatBytes <= 0 {
		cfg.HeartbeatBytes = 4096
	}
	if cfg.OutlierFactor <= 1 {
		cfg.OutlierFactor = 3
	}
	if cfg.HeartbeatFloor <= 0 {
		cfg.HeartbeatFloor = 25 * time.Millisecond
	}
	if cfg.OpCostFloor <= 0 {
		cfg.OpCostFloor = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 2
	}
	if cfg.DegradedBelow <= 0 {
		cfg.DegradedBelow = 50
	}
	if cfg.RecoveredAt <= 0 {
		cfg.RecoveredAt = 75
	}
	if cfg.RecoveredAt < cfg.DegradedBelow {
		cfg.RecoveredAt = cfg.DegradedBelow
	}
	if cfg.FailureDecay <= 0 || cfg.FailureDecay >= 1 {
		cfg.FailureDecay = 0.5
	}
	return cfg
}

// opSampleCap bounds the per-node ring of observed transfer rates.
const opSampleCap = 64

// NodeHealth is one node's scored state, as served by the /health endpoint.
type NodeHealth struct {
	Node topology.NodeID `json:"node"`
	Rack topology.RackID `json:"rack"`
	// Score is the composite 0–100 health score: 40% heartbeat latency,
	// 40% op latency, 20% recent failures, each relative to cluster peers.
	Score float64 `json:"score"`
	// Heartbeat is the node's latest probe round trip.
	Heartbeat time.Duration `json:"heartbeat"`
	// HeartbeatRatio is Heartbeat over the cluster median (1 = typical).
	HeartbeatRatio float64 `json:"heartbeat_ratio"`
	// OpSecPerMB is the node's typical observed transfer cost — the 25th
	// percentile of the transfers it took part in during the last scoring
	// window, from the journal's TransferFinished stream (0 until
	// MinSamples transfers). A low percentile is deliberate: transfers are
	// attributed to both endpoints, and a healthy node that merely talked
	// to a slow peer still shows fast transfers on its other paths, while
	// a node whose own links are slow is slow on every path. The window is
	// drained each tick, so both degradation and recovery register within
	// one scoring window.
	OpSecPerMB float64 `json:"op_sec_per_mb"`
	// OpRatio is OpSecPerMB over the cluster median (1 = typical).
	OpRatio float64 `json:"op_ratio"`
	// OpSamples is how many transfers informed OpSecPerMB last window.
	OpSamples int `json:"op_samples"`
	// Failures is the decayed count of recent NodeDead transitions.
	Failures float64 `json:"failures"`
	// Degraded reports the hysteresis state (flipped by score crossings).
	Degraded bool `json:"degraded"`
	// Dead reports NameNode liveness; dead nodes are not probed or scored.
	Dead bool `json:"dead"`
}

// nodeState is the monitor's mutable per-node record.
type nodeState struct {
	hbLat     time.Duration // latest probe latency (0 = never probed)
	hbRatio   float64
	opSamples []float64 // sec-per-MB observations, current window
	opNext    int
	opCount   int
	opWindow  int     // samples behind opCost (last completed window)
	opCost    float64 // 25th percentile of the last window
	opRatio   float64
	failures  float64
	score     float64
	degraded  bool
}

// HealthMonitor scores every DataNode against its cluster peers and
// publishes NodeDegraded / NodeRecovered journal events when a node's score
// crosses the hysteresis thresholds. Signals: heartbeat probe latency (a
// small shaped transfer to a same-rack peer each tick), observed transfer
// cost from the journal's TransferFinished stream, and recent NodeDead
// transitions. Each signal is scored relative to the cluster median, so the
// monitor needs no absolute latency calibration.
//
// Create the monitor after installing the cluster's journal
// (Cluster.SetJournal): it subscribes at construction time. Tick is
// exported so tests can drive scoring rounds deterministically; Start runs
// Tick on a background ticker.
type HealthMonitor struct {
	c   *Cluster
	cfg HealthConfig

	mu    sync.Mutex
	nodes []nodeState

	cancelSub func()

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// NewHealthMonitor creates a monitor for the cluster and subscribes it to
// the cluster's current journal (a nil journal disables the op-latency and
// failure signals but heartbeat scoring still works).
func NewHealthMonitor(c *Cluster, cfg HealthConfig) *HealthMonitor {
	h := &HealthMonitor{
		c:     c,
		cfg:   cfg.withDefaults(),
		nodes: make([]nodeState, c.top.Nodes()),
	}
	for i := range h.nodes {
		h.nodes[i].score = 100
	}
	h.cancelSub = c.Journal().Subscribe(h.observe)
	return h
}

// observe folds one journal event into the per-node state. It runs under
// the journal lock, so it only updates the monitor's own fields.
func (h *HealthMonitor) observe(e events.Event) {
	switch e.Type {
	case events.TransferFinished:
		if e.Bytes <= 0 || e.Dur <= 0 || e.Node == e.Peer {
			// Local (same-node) transfers exercise the disk, not the
			// network links the score measures.
			return
		}
		secPerMB := e.Dur.Seconds() / (float64(e.Bytes) / (1 << 20))
		h.mu.Lock()
		h.addOpSample(e.Node, secPerMB)
		h.addOpSample(e.Peer, secPerMB)
		h.mu.Unlock()
	case events.NodeDead:
		h.mu.Lock()
		if int(e.Node) >= 0 && int(e.Node) < len(h.nodes) {
			h.nodes[e.Node].failures++
		}
		h.mu.Unlock()
	}
}

// addOpSample records one transfer-rate observation (caller holds h.mu).
func (h *HealthMonitor) addOpSample(n topology.NodeID, secPerMB float64) {
	if int(n) < 0 || int(n) >= len(h.nodes) {
		return
	}
	st := &h.nodes[n]
	if st.opSamples == nil {
		st.opSamples = make([]float64, opSampleCap)
	}
	st.opSamples[st.opNext] = secPerMB
	st.opNext = (st.opNext + 1) % opSampleCap
	if st.opCount < opSampleCap {
		st.opCount++
	}
}

// heartbeatPeer picks the probe destination for n: the next live node in
// the same rack, so probe latency isolates n's own links from cross-rack
// congestion. Returns false when n has no live rack peer.
func (h *HealthMonitor) heartbeatPeer(n topology.NodeID) (topology.NodeID, bool) {
	rack, err := h.c.top.RackOf(n)
	if err != nil {
		return 0, false
	}
	peers, err := h.c.top.NodesInRack(rack)
	if err != nil {
		return 0, false
	}
	// Start from n's successor so probes do not all converge on one peer.
	idx := 0
	for i, p := range peers {
		if p == n {
			idx = i
			break
		}
	}
	for i := 1; i < len(peers); i++ {
		p := peers[(idx+i)%len(peers)]
		if !h.c.nn.IsDead(p) {
			return p, true
		}
	}
	return 0, false
}

// Tick runs one scoring round: probe every live node, fold the signals into
// scores, and publish degrade/recover transitions. Start calls it on a
// ticker; tests call it directly.
func (h *HealthMonitor) Tick(ctx context.Context) {
	n := len(h.nodes)
	type probe struct {
		lat time.Duration
		ok  bool
	}
	probes := make([]probe, n)
	dead := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		node := topology.NodeID(i)
		if h.c.nn.IsDead(node) {
			dead[i] = true
			continue
		}
		peer, ok := h.heartbeatPeer(node)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, src, dst topology.NodeID) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, h.cfg.ProbeTimeout)
			defer cancel()
			start := time.Now()
			err := h.c.transferShaped(pctx, src, dst, h.cfg.HeartbeatBytes)
			lat := time.Since(start)
			// A timed-out probe still scores at its elapsed time — that IS
			// the signal; other errors (shutdown) drop the sample.
			if err == nil || pctx.Err() != nil {
				probes[i] = probe{lat: lat, ok: true}
			}
			if err != nil && pctx.Err() != nil {
				// The transfer never finished, so the fabric's journal
				// event may carry zero bytes; record the op observation
				// directly lest the stuck node lose its op signal.
				spm := lat.Seconds() / (float64(h.cfg.HeartbeatBytes) / (1 << 20))
				h.mu.Lock()
				h.addOpSample(src, spm)
				h.addOpSample(dst, spm)
				h.mu.Unlock()
			}
		}(i, node, peer)
	}
	wg.Wait()

	type transition struct {
		ev events.Event
	}
	var transitions []transition
	h.mu.Lock()
	for i := range h.nodes {
		st := &h.nodes[i]
		if probes[i].ok {
			st.hbLat = probes[i].lat
		}
		st.opCost = 0
		st.opWindow = st.opCount
		if st.opCount >= h.cfg.MinSamples {
			vals := append([]float64(nil), st.opSamples[:st.opCount]...)
			sort.Float64s(vals)
			st.opCost = vals[len(vals)/4]
		}
		st.opCount, st.opNext = 0, 0 // drain: next window starts fresh
	}
	hbMed := h.medianLocked(func(st *nodeState) (float64, bool) {
		return st.hbLat.Seconds(), st.hbLat > 0
	}, dead)
	opMed := h.medianLocked(func(st *nodeState) (float64, bool) {
		return st.opCost, st.opCost > 0
	}, dead)
	for i := range h.nodes {
		st := &h.nodes[i]
		if dead[i] {
			st.score = 0
			st.failures *= h.cfg.FailureDecay
			continue
		}
		st.hbRatio = ratioOf(st.hbLat.Seconds(), hbMed, h.cfg.HeartbeatFloor.Seconds())
		st.opRatio = ratioOf(st.opCost, opMed, h.cfg.OpCostFloor)
		sHb := h.subscore(st.hbRatio)
		sOp := h.subscore(st.opRatio)
		sFail := 1 / (1 + st.failures)
		st.score = 100 * (0.4*sHb + 0.4*sOp + 0.2*sFail)
		st.failures *= h.cfg.FailureDecay
		switch {
		case !st.degraded && st.score < h.cfg.DegradedBelow:
			st.degraded = true
			transitions = append(transitions, transition{ev: h.transitionEvent(
				events.NodeDegraded, topology.NodeID(i), st, sHb, sOp, sFail)})
		case st.degraded && st.score >= h.cfg.RecoveredAt:
			st.degraded = false
			transitions = append(transitions, transition{ev: h.transitionEvent(
				events.NodeRecovered, topology.NodeID(i), st, sHb, sOp, sFail)})
		}
	}
	h.mu.Unlock()

	// Publish outside h.mu: the journal runs subscribers (including this
	// monitor's own observe) under its lock, and observe takes h.mu.
	jnl := h.c.Journal()
	for _, tr := range transitions {
		jnl.Publish(tr.ev)
	}
}

// transitionEvent builds a NodeDegraded/NodeRecovered event with the score
// breakdown in Detail (caller holds h.mu).
func (h *HealthMonitor) transitionEvent(t events.Type, n topology.NodeID, st *nodeState, sHb, sOp, sFail float64) events.Event {
	ev := events.New(t, "health")
	ev.Node = n
	if rack, err := h.c.top.RackOf(n); err == nil {
		ev.Rack = rack
	}
	ev.Detail = fmt.Sprintf("score=%.1f hb=%.2f(r%.2f) op=%.2f(r%.2f) fail=%.2f",
		st.score, sHb, st.hbRatio, sOp, st.opRatio, sFail)
	return ev
}

// medianLocked computes the median of one signal over live nodes (caller
// holds h.mu). Returns 0 when no node has the signal yet.
func (h *HealthMonitor) medianLocked(get func(*nodeState) (float64, bool), dead []bool) float64 {
	vals := make([]float64, 0, len(h.nodes))
	for i := range h.nodes {
		if dead[i] {
			continue
		}
		if v, ok := get(&h.nodes[i]); ok && v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// ratioOf is v over the cluster median, neutral (1) when either is missing
// or when v sits under the absolute floor; the floor also bounds the
// denominator so a microsecond-scale median cannot inflate the ratio.
func ratioOf(v, med, floor float64) float64 {
	if v <= 0 || med <= 0 || v <= floor {
		return 1
	}
	if med < floor {
		med = floor
	}
	return v / med
}

// subscore maps a latency ratio to [0,1]: 1 at or below the median, linear
// down to 0 at OutlierFactor× the median.
func (h *HealthMonitor) subscore(ratio float64) float64 {
	s := 1 - (ratio-1)/(h.cfg.OutlierFactor-1)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Report returns every node's current health, in node order.
func (h *HealthMonitor) Report() []NodeHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeHealth, len(h.nodes))
	for i := range h.nodes {
		st := &h.nodes[i]
		nh := NodeHealth{
			Node:           topology.NodeID(i),
			Rack:           -1,
			Score:          st.score,
			Heartbeat:      st.hbLat,
			HeartbeatRatio: st.hbRatio,
			OpSecPerMB:     st.opCost,
			OpRatio:        st.opRatio,
			OpSamples:      st.opWindow,
			Failures:       st.failures,
			Degraded:       st.degraded,
			Dead:           h.c.nn.IsDead(topology.NodeID(i)),
		}
		if rack, err := h.c.top.RackOf(topology.NodeID(i)); err == nil {
			nh.Rack = rack
		}
		out[i] = nh
	}
	return out
}

// Degraded returns the nodes currently in the degraded state.
func (h *HealthMonitor) Degraded() []topology.NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []topology.NodeID
	for i := range h.nodes {
		if h.nodes[i].degraded {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// Start launches the background scoring loop; Stop ends it.
func (h *HealthMonitor) Start() {
	h.loopMu.Lock()
	defer h.loopMu.Unlock()
	if h.stop != nil {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	go func() {
		defer close(done)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() { <-stop; cancel() }()
		tick := time.NewTicker(h.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				h.Tick(ctx)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the scoring loop (waiting for it) and unsubscribes from the
// journal. The monitor is done afterwards; create a new one to resume.
func (h *HealthMonitor) Stop() {
	h.loopMu.Lock()
	if h.stop != nil {
		close(h.stop)
		<-h.done
		h.stop, h.done = nil, nil
	}
	h.loopMu.Unlock()
	if h.cancelSub != nil {
		h.cancelSub()
		h.cancelSub = nil
	}
}
