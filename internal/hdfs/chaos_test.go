package hdfs

import (
	"bytes"
	"math/rand"
	"testing"

	"ear/internal/topology"
)

// TestChaosLifecycle drives a cluster through a long randomized schedule of
// writes, encodes, node failures, repairs, and reads, checking every read
// against an oracle. Failures never exceed the configured tolerance (n-k
// concurrent node failures), so all data must remain readable at all times.
func TestChaosLifecycle(t *testing.T) {
	for _, policy := range []string{"rr", "ear"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Racks:                8,
				NodesPerRack:         4,
				Policy:               policy,
				Replicas:             3,
				K:                    4,
				N:                    6,
				C:                    1,
				BlockSizeBytes:       4 << 10,
				BandwidthBytesPerSec: 1 << 30,
				Seed:                 31,
			}
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(32))

			oracle := map[topology.BlockID][]byte{}
			var blocks []topology.BlockID
			dead := map[topology.NodeID]bool{}
			maxDead := cfg.N - cfg.K

			verifyRandomBlock := func() {
				if len(blocks) == 0 {
					return
				}
				id := blocks[rng.Intn(len(blocks))]
				reader := topology.NodeID(rng.Intn(c.Topology().Nodes()))
				for dead[reader] {
					reader = topology.NodeID(rng.Intn(c.Topology().Nodes()))
				}
				got, err := c.ReadBlock(reader, id)
				if err != nil {
					t.Fatalf("ReadBlock(%d) with %d dead nodes: %v", id, len(dead), err)
				}
				if !bytes.Equal(got, oracle[id]) {
					t.Fatalf("block %d content mismatch", id)
				}
			}

			const ops = 400
			for op := 0; op < ops; op++ {
				switch roll := rng.Intn(100); {
				case roll < 45: // write
					data := make([]byte, cfg.BlockSizeBytes)
					rng.Read(data)
					writer := topology.NodeID(rng.Intn(c.Topology().Nodes()))
					id, err := c.WriteBlock(writer, data)
					if err != nil {
						t.Fatalf("op %d WriteBlock: %v", op, err)
					}
					oracle[id] = data
					blocks = append(blocks, id)
				case roll < 55: // encode everything pending
					if len(dead) > 0 {
						continue // encode only on a healthy cluster
					}
					if _, err := c.RaidNode().EncodeAll(); err != nil {
						t.Fatalf("op %d EncodeAll: %v", op, err)
					}
				case roll < 65: // fail a node
					if len(dead) >= maxDead {
						continue
					}
					// Never kill two nodes in one rack: c=1 keeps at most
					// one stripe block per rack, but unencoded replicas put
					// two copies in one rack.
					n := topology.NodeID(rng.Intn(c.Topology().Nodes()))
					rack, err := c.Topology().RackOf(n)
					if err != nil {
						t.Fatal(err)
					}
					rackHit := false
					for d := range dead {
						r, err := c.Topology().RackOf(d)
						if err != nil {
							t.Fatal(err)
						}
						if r == rack {
							rackHit = true
							break
						}
					}
					if dead[n] || rackHit {
						continue
					}
					c.NameNode().MarkDead(n)
					dead[n] = true
				case roll < 75: // revive a node
					for n := range dead {
						c.NameNode().MarkAlive(n)
						delete(dead, n)
						break
					}
				case roll < 85: // repair a random encoded block that lost its node
					if len(blocks) == 0 || len(dead) == 0 {
						continue
					}
					id := blocks[rng.Intn(len(blocks))]
					meta, err := c.NameNode().Block(id)
					if err != nil {
						t.Fatal(err)
					}
					if !meta.Encoded {
						continue
					}
					live, err := c.NameNode().LiveReplicas(id)
					if err != nil {
						t.Fatal(err)
					}
					if len(live) > 0 {
						continue
					}
					oldNode := meta.Nodes[0]
					if _, err := c.RepairBlock(id); err != nil {
						t.Fatalf("op %d RepairBlock(%d): %v", op, id, err)
					}
					// The dead node's stale copy is invalidated on rejoin.
					if dn, err := c.DataNodeOf(oldNode); err == nil {
						_ = dn.Store.Delete(DataKey(id))
					}
				default: // read and verify
					verifyRandomBlock()
				}
			}
			// Final sweep: everything written must read back correctly on a
			// healthy cluster.
			for n := range dead {
				c.NameNode().MarkAlive(n)
				delete(dead, n)
			}
			for _, id := range blocks {
				got, err := c.ReadBlock(0, id)
				if err != nil {
					t.Fatalf("final ReadBlock(%d): %v", id, err)
				}
				if !bytes.Equal(got, oracle[id]) {
					t.Fatalf("final content mismatch for block %d", id)
				}
			}
		})
	}
}
