package hdfs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ear/internal/events"
	"ear/internal/metalog"
	"ear/internal/placement"
	"ear/internal/telemetry"
	"ear/internal/tenant"
	"ear/internal/topology"
)

// Errors returned by the NameNode.
var (
	// ErrUnknownBlock indicates a block ID with no metadata.
	ErrUnknownBlock = errors.New("hdfs: unknown block")
	// ErrUnknownStripe indicates a stripe ID with no metadata.
	ErrUnknownStripe = errors.New("hdfs: unknown stripe")
	// ErrNoReplica indicates no live replica is available.
	ErrNoReplica = errors.New("hdfs: no live replica")
)

// BlockMeta is the NameNode's record of one data block.
type BlockMeta struct {
	ID   topology.BlockID
	Size int
	// Nodes lists the current replica locations (a single node once the
	// block's stripe is encoded).
	Nodes []topology.NodeID
	// Stripe is the stripe the block belongs to, or -1 before assignment.
	Stripe topology.StripeID
	// Encoded marks blocks whose stripe completed encoding.
	Encoded bool
	// Committed marks blocks whose replicas are durably written.
	Committed bool
	// Aborted marks blocks whose write was abandoned before commit. The
	// allocation (and any stripe slot the placement policy already assigned)
	// is retained so stripe geometry stays consistent; the block has no
	// replicas and encodes as zeros.
	Aborted bool
}

// StripeMeta is the NameNode's record of one stripe.
type StripeMeta struct {
	Info *placement.StripeInfo
	// Plan is the post-encoding layout, set when encoding commits.
	Plan *placement.PostEncodingPlan
	// Encoded marks completion of the encoding operation.
	Encoded bool
}

// cloneStripeMeta deep-copies a stripe record so callers can hold it without
// racing concurrent metadata updates (UpdateParityLocation mutates Plan).
func cloneStripeMeta(sm *StripeMeta) *StripeMeta {
	return &StripeMeta{Info: sm.Info.Clone(), Plan: sm.Plan.Clone(), Encoded: sm.Encoded}
}

// blockTableShards stripes the block table so metadata lookups on different
// blocks do not contend on one mutex.
const blockTableShards = 16

// blockShard is one stripe of the block table.
type blockShard struct {
	mu     sync.RWMutex
	blocks map[topology.BlockID]*BlockMeta
}

// placementShard serializes one placement-policy instance. Under EAR every
// core rack gets its own shard (open-stripe state is keyed by core rack, so
// shards never share state); under RR shards are interchangeable and chosen
// round-robin.
type placementShard struct {
	mu     sync.Mutex
	policy placement.Policy
}

// rackPlacer is the policy capability of pinning a block's first replica to
// a chosen rack (EAR implements it); required for per-rack sharding.
type rackPlacer interface {
	PlaceAt(topology.BlockID, topology.RackID) (topology.Placement, error)
}

// attemptCounter is the policy capability of reporting how many candidate
// layouts the last placement generated (EAR implements it).
type attemptCounter interface {
	LastPlaceAttempts() int
}

// targetReporter is the policy capability of reporting the target-rack set
// of the stripe the last placement joined (EAR implements it); the op layer
// records it so replay reopens stripes without consuming randomness.
type targetReporter interface {
	LastPlaceTargets() []topology.RackID
}

// placementRestorer is the policy capability of deterministically re-applying
// a recorded placement decision during crash-recovery replay (EAR implements
// it; RR keeps no placement state and needs none).
type placementRestorer interface {
	RestorePlacement(block topology.BlockID, core topology.RackID, nodes []topology.NodeID, targets []topology.RackID, iterations int) error
}

// openStateExporter is the policy capability of exporting and restoring its
// open-stripe state for snapshots (EAR implements it).
type openStateExporter interface {
	OpenState() (topology.StripeID, []*placement.StripeInfo)
	RestoreOpenState(next topology.StripeID, open []*placement.StripeInfo) error
}

// openDropper is the policy capability of dropping one open stripe by core
// rack, the replay counterpart of FlushOpen (EAR implements it).
type openDropper interface {
	DropOpen(core topology.RackID) *placement.StripeInfo
}

// NameNode holds all metadata: block locations, the placement policy hook
// (the paper's first HDFS modification), and the pre-encoding store mapping
// stripes to their block lists (the second modification).
//
// Every mutation is a typed operation record (op.go): the propose step makes
// the policy decisions (placement search, planning — anything that consumes
// randomness), encodes the decided outcome as an op, appends it to the
// write-ahead log when one is attached, and only then applies it via the
// same mutation helpers crash-recovery replay uses — so the live path and
// replay cannot diverge. Each op's single canonical journal event comes from
// opEvent; replay applies ops without publishing, keeping recovery invisible
// to telemetry.
//
// Concurrency layout — four independent lock domains instead of one global
// mutex:
//
//   - placementShard.mu: placement policy state, one shard per core rack
//     (EAR) or per slot (RR).
//   - blockShard.mu: the block table, 16-way striped by BlockID.
//   - mu: the stripe registry only (stripes, preEncoding, nextStripe, the
//     planner rng, planOverride).
//   - rrMu / deadMu: the RR grouping queue and node liveness set.
//
// Lock ordering: placementShard.mu or rrMu may acquire mu (stripe
// registration logs and applies under the caller's lock so the write-ahead
// log's order matches the stripe-ID order); any of them may acquire
// blockShard.mu; blockShard.mu may acquire deadMu. Never acquire in the
// reverse direction. Ops that mutate a lock domain's state are appended to
// the log while that domain's lock is held, which is what makes replay in
// log order equivalent to the live interleaving.
type NameNode struct {
	cfg        placement.Config
	policyName string

	// mu guards the stripe registry.
	mu          sync.Mutex
	nextStripe  topology.StripeID
	stripes     map[topology.StripeID]*StripeMeta
	preEncoding []*placement.StripeInfo
	rng         *rand.Rand
	// planOverride, when non-nil, rewrites every post-encoding plan before
	// it is returned — a test-only hook for staging deliberately mis-placed
	// stripes the auditor must catch. Guarded by mu.
	planOverride func(*placement.StripeInfo, *placement.PostEncodingPlan)

	nextBlock atomic.Int64
	blockTab  [blockTableShards]blockShard

	shards []*placementShard
	// routeByRack draws a core rack per allocation and routes to that rack's
	// shard (EAR); otherwise shards are picked round-robin.
	routeByRack bool
	// rackSeq feeds the lock-free splitmix64 draw behind shard routing.
	rackSeq atomic.Uint64

	// rrMu guards rrPending, committed RR blocks not yet grouped.
	rrMu      sync.Mutex
	rrPending []topology.BlockID

	// deadMu guards dead, the failed-node set.
	deadMu sync.RWMutex
	dead   map[topology.NodeID]bool

	// serialize funnels every metadata operation through serialMu,
	// emulating the historical single-global-mutex NameNode for A/B
	// benchmarking. Set at construction only.
	serialize bool
	serialMu  sync.Mutex

	// jrn is the cluster event journal (atomic so installation never races
	// with in-flight operations; nil means unjournaled). BlockAllocated is
	// published under the placement shard lock so a stripe's StripeGrouped
	// event always trails every member's allocation event; everything else
	// publishes after locks are released.
	jrn atomic.Pointer[events.Journal]

	tel atomic.Pointer[nnMetrics]

	// wal, when non-nil, is the durable op log every mutation is appended
	// to before it is applied. Attached once via RecoverMeta before the
	// NameNode serves traffic; nil keeps the pre-durability in-memory
	// behavior. An append failure is sticky in the log and surfaces as an
	// error on every subsequent mutation — the metadata plane refuses to
	// advance past state it cannot make durable.
	wal *metalog.Log

	// recoveredIn holds the duration of the last RecoverMeta, observed into
	// namenode_recovery_seconds when telemetry attaches (recovery runs
	// before SetTelemetry on the restart path); recoveredOps counts the log
	// records it replayed.
	recoveredIn  atomic.Int64 // nanoseconds; 0 = no recovery ran
	recoveredOps atomic.Int64

	// Auto-checkpoint state (durability.go): snapEvery arms a snapshot every
	// N log appends, lastSnapAppends remembers the append count at the last
	// one, snapInFlight keeps concurrent mutations from stacking snapshots.
	snapEvery       atomic.Int64
	lastSnapAppends atomic.Int64
	snapInFlight    atomic.Bool

	// acct, when non-nil, receives per-tenant charges for allocation work
	// and records each block's owning tenant at allocation time (set once by
	// NewCluster before traffic; ownership is observability state, never
	// written to the WAL).
	acct *tenant.Table
}

// nnMetrics bundles the NameNode's metric handles.
type nnMetrics struct {
	allocOps  *telemetry.Metric // namenode_alloc_ops
	attemptNs *telemetry.Metric // placement_attempt_ns
	allocLat  *telemetry.Metric // namenode_alloc_seconds
	recovery  *telemetry.Metric // namenode_recovery_seconds
}

// newNameNode builds the shared core; callers attach placement shards.
func newNameNode(cfg placement.Config, policyName string, rng *rand.Rand, serialize bool) *NameNode {
	nn := &NameNode{
		cfg:        cfg,
		policyName: policyName,
		rng:        rng,
		stripes:    make(map[topology.StripeID]*StripeMeta),
		dead:       make(map[topology.NodeID]bool),
		serialize:  serialize,
	}
	for i := range nn.blockTab {
		nn.blockTab[i].blocks = make(map[topology.BlockID]*BlockMeta)
	}
	return nn
}

// NewNameNode builds a NameNode around a single caller-supplied policy
// instance (one placement shard). NewCluster uses NewShardedNameNode, which
// scales placement across per-core-rack shards.
func NewNameNode(cfg placement.Config, policy placement.Policy, rng *rand.Rand) (*NameNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil policy or rng", placement.ErrInvalidConfig)
	}
	nn := newNameNode(cfg, policy.Name(), rng, false)
	nn.shards = []*placementShard{{policy: policy}}
	return nn, nil
}

// NewShardedNameNode builds a NameNode whose placement state is sharded: one
// policy instance (with its own rng) per core rack under EAR, or one per
// rack-count slot under RR. serialize funnels all metadata operations through
// one mutex, preserved for A/B benchmarking against the sharded path.
func NewShardedNameNode(cfg placement.Config, policyName string, seed int64, serialize bool) (*NameNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nn := newNameNode(cfg, policyName, rand.New(rand.NewSource(seed)), serialize)
	shards := cfg.Topology.Racks()
	for i := 0; i < shards; i++ {
		var pol placement.Policy
		var err error
		rng := rand.New(rand.NewSource(seed + int64(i) + 1))
		switch policyName {
		case "ear":
			pol, err = placement.NewEAR(cfg, rng)
		case "rr":
			pol, err = placement.NewRandom(cfg, rng)
		default:
			return nil, fmt.Errorf("%w: unknown policy %q", placement.ErrInvalidConfig, policyName)
		}
		if err != nil {
			return nil, err
		}
		nn.shards = append(nn.shards, &placementShard{policy: pol})
	}
	if policyName == "ear" {
		nn.routeByRack = true
	}
	return nn, nil
}

// SetJournal installs the cluster event journal. Metadata transitions
// (allocation, commit, abort, stripe grouping, encode commit, liveness)
// publish into it; nil detaches.
func (nn *NameNode) SetJournal(j *events.Journal) { nn.jrn.Store(j) }

// setAccounting installs the per-tenant accounting table. Called once by
// NewCluster before the NameNode serves traffic.
func (nn *NameNode) setAccounting(t *tenant.Table) { nn.acct = t }

// journal returns the installed journal; nil (a valid no-op) otherwise.
func (nn *NameNode) journal() *events.Journal { return nn.jrn.Load() }

// SetTelemetry publishes the NameNode's metrics into the registry: the
// namenode_alloc_ops counter and the placement_attempt_ns histogram (cost of
// one candidate-layout feasibility attempt).
func (nn *NameNode) SetTelemetry(reg *telemetry.Registry) {
	m := &nnMetrics{
		allocOps: reg.Counter("namenode_alloc_ops",
			"Block allocations served by the NameNode.").With(),
		attemptNs: reg.Histogram("placement_attempt_ns",
			"Cost of one candidate-layout placement attempt (nanoseconds).",
			telemetry.ExponentialBuckets(128, 2, 18)).With(),
		allocLat: reg.Histogram("namenode_alloc_seconds",
			"Block allocation latency (placement decision plus metadata registration).",
			telemetry.ExponentialBuckets(1e-6, 2, 16)).With(),
		recovery: reg.Histogram("namenode_recovery_seconds",
			"Crash-recovery duration: snapshot load plus op-log tail replay.",
			telemetry.ExponentialBuckets(1e-3, 2, 16)).With(),
	}
	nn.tel.Store(m)
	// Recovery ran before telemetry attached (the restart path recovers
	// first, then wires observability); surface its duration retroactively
	// instead of letting it vanish.
	if ns := nn.recoveredIn.Load(); ns > 0 {
		m.recovery.Observe(time.Duration(ns).Seconds())
	}
}

// metrics returns the installed metric handles, nil when unobserved.
func (nn *NameNode) metrics() *nnMetrics { return nn.tel.Load() }

// serialSection enters the whole-NameNode critical section when the
// serialized A/B mode is on; the returned func leaves it. A no-op otherwise.
func (nn *NameNode) serialSection() func() {
	if !nn.serialize {
		return func() {}
	}
	nn.serialMu.Lock()
	return nn.serialMu.Unlock
}

// blockShardFor returns the block-table shard owning the ID.
func (nn *NameNode) blockShardFor(id topology.BlockID) *blockShard {
	return &nn.blockTab[uint64(id)%blockTableShards]
}

// logOp appends the encoded op to the write-ahead log and returns its LSN,
// or (0, nil) when no log is attached. Callers hold the lock guarding the
// state the op mutates, so per lock domain the log order equals the apply
// order — the property replay depends on.
func (nn *NameNode) logOp(op *nnOp) (uint64, error) {
	if nn.wal == nil {
		return 0, nil
	}
	lsn, err := nn.wal.Append(op.encode(nil))
	if err != nil {
		return 0, fmt.Errorf("hdfs: logging %v op: %w", op.kind, err)
	}
	return lsn, nil
}

// waitDurable blocks until the op at lsn is fsynced, per the log's sync
// policy (only SyncAlways actually waits). A no-op without a log. Every
// mutation path calls it after releasing its locks, which makes it the one
// place to piggyback the auto-checkpoint check (maybeSnapshot needs the
// whole plane unlocked).
func (nn *NameNode) waitDurable(lsn uint64) error {
	if nn.wal == nil || lsn == 0 {
		return nil
	}
	if err := nn.wal.WaitDurable(lsn); err != nil {
		return err
	}
	nn.maybeSnapshot()
	return nil
}

// draw is a lock-free splitmix64 step used for shard routing and core-rack
// selection.
func (nn *NameNode) draw() uint64 {
	x := nn.rackSeq.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// AllocateBlock reserves a block with a background (untraced) context. See
// AllocateBlockCtx.
func (nn *NameNode) AllocateBlock(size int) (*BlockMeta, error) {
	return nn.AllocateBlockCtx(context.Background(), size)
}

// AllocateBlockCtx reserves a block ID and decides its replica placement.
// Only the chosen placement shard and the block's table shard are locked;
// separate racks allocate concurrently. When the context carries a
// telemetry span (a traced client write), the allocation runs under a
// "namenode.allocate" child span and the BlockAllocated / StripeGrouped
// journal events carry the trace ID.
func (nn *NameNode) AllocateBlockCtx(ctx context.Context, size int) (*BlockMeta, error) {
	sp := telemetry.SpanFromContext(ctx).Child("namenode.allocate").
		Arg(telemetry.ComponentArg, "namenode")
	defer sp.End()
	trace := sp.TraceID()
	allocStart := time.Now()
	defer nn.serialSection()()
	id := topology.BlockID(nn.nextBlock.Add(1) - 1)

	var shardIdx int32
	core := topology.RackID(-1)
	if nn.routeByRack {
		core = topology.RackID(nn.draw() % uint64(len(nn.shards)))
		shardIdx = int32(core)
	} else {
		shardIdx = int32(nn.draw() % uint64(len(nn.shards)))
	}
	sh := nn.shards[shardIdx]

	sh.mu.Lock()
	t0 := time.Now()
	var pl topology.Placement
	var err error
	if core >= 0 {
		pl, err = sh.policy.(rackPlacer).PlaceAt(id, core)
	} else {
		pl, err = sh.policy.Place(id)
	}
	elapsed := time.Since(t0)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	attempts := 1
	var targets []topology.RackID
	if ac, ok := sh.policy.(attemptCounter); ok {
		if a := ac.LastPlaceAttempts(); a > 0 {
			attempts = a
		}
	}
	if tp, ok := sh.policy.(targetReporter); ok {
		targets = tp.LastPlaceTargets()
	}
	if core < 0 {
		// The policy drew the core rack itself (single-shard EAR via Place);
		// recover it from the first replica so replay can restore into the
		// right open stripe. RR has no stripe state and ignores it.
		if _, isRestorer := sh.policy.(placementRestorer); isRestorer && len(pl.Nodes) > 0 {
			if r, rerr := nn.cfg.Topology.RackOf(pl.Nodes[0]); rerr == nil {
				core = r
			}
		}
	}

	op := &nnOp{
		kind:     opAllocate,
		block:    id,
		size:     int64(size),
		shard:    shardIdx,
		core:     core,
		attempts: attempts,
		nodes:    pl.Nodes,
		targets:  targets,
	}
	lsn, err := nn.logOp(op)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	meta := nn.applyAllocate(op)
	out := cloneBlockMeta(meta)

	// Publish the allocation before releasing the placement shard: a later
	// allocation on this shard may seal a stripe containing this block, and
	// that stripe's StripeGrouped event must trail every member's
	// BlockAllocated event in the journal.
	if j := nn.journal(); j != nil {
		if ev, ok := opEvent(op); ok {
			ev.Trace = trace
			j.Publish(ev)
		}
	}

	// Drain and register stripes the placement sealed, while still holding
	// the shard: the seal op is logged and applied under nn.mu so the
	// stripe-ID sequence matches the log order across shards.
	var pending []events.Event
	for _, s := range sh.policy.TakeSealed() {
		sop := &nnOp{kind: opSealStripe, shard: shardIdx}
		nn.mu.Lock()
		l, serr := nn.logOp(sop)
		if serr != nil {
			nn.mu.Unlock()
			sh.mu.Unlock()
			return nil, serr
		}
		if l > lsn {
			lsn = l
		}
		nn.registerStripeLocked(s)
		nn.mu.Unlock()
		sop.stripe, sop.core, sop.blocks = s.ID, s.CoreRack, s.Blocks
		if ev, ok := opEvent(sop); ok {
			ev.Trace = trace
			pending = append(pending, ev)
		}
	}
	sh.mu.Unlock()

	if err := nn.waitDurable(lsn); err != nil {
		return nil, err
	}
	nn.publishAll(pending)
	if m := nn.metrics(); m != nil {
		m.allocOps.Inc()
		m.attemptNs.Observe(float64(elapsed.Nanoseconds()) / float64(attempts))
		m.allocLat.Observe(time.Since(allocStart).Seconds())
	}
	// Charge the allocation and remember the block's owner so later
	// background work on it (encode, repair) is charged to the same tenant.
	if nn.acct != nil {
		owner := tenant.FromContext(ctx)
		nn.acct.Charge(owner, "alloc", 1, int64(size))
		nn.acct.SetOwner(id, owner)
	}
	sp.Arg("block", strconv.FormatInt(int64(id), 10))
	return out, nil
}

// applyAllocate installs a block-allocation op's metadata record: the shared
// apply step of the live path and replay. The placement policy's state was
// already advanced by the caller (PlaceAt live, RestorePlacement in replay).
func (nn *NameNode) applyAllocate(op *nnOp) *BlockMeta {
	// Live allocation pre-assigns IDs with an atomic add, so this is a no-op
	// there; replay advances the counter past every recorded ID.
	for {
		cur := nn.nextBlock.Load()
		if cur >= int64(op.block)+1 || nn.nextBlock.CompareAndSwap(cur, int64(op.block)+1) {
			break
		}
	}
	meta := &BlockMeta{
		ID:     op.block,
		Size:   int(op.size),
		Nodes:  append([]topology.NodeID(nil), op.nodes...),
		Stripe: -1,
	}
	bs := nn.blockShardFor(op.block)
	bs.mu.Lock()
	bs.blocks[op.block] = meta
	bs.mu.Unlock()
	return meta
}

// CommitBlock records a durably written block with a background (untraced)
// context. See CommitBlockCtx.
func (nn *NameNode) CommitBlock(id topology.BlockID) error {
	return nn.CommitBlockCtx(context.Background(), id)
}

// CommitBlockCtx records that the block's replicas are durably written; the
// block becomes eligible for stripe grouping (EAR sealed the stripe at
// placement time; RR blocks queue for RaidNode grouping). The context's
// trace, if any, is stamped on the BlockCommitted journal event.
func (nn *NameNode) CommitBlockCtx(ctx context.Context, id topology.BlockID) error {
	defer nn.serialSection()()
	op := &nnOp{kind: opCommit, block: id}
	bs := nn.blockShardFor(id)
	bs.mu.Lock()
	meta, ok := bs.blocks[id]
	if !ok {
		bs.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	if meta.Aborted {
		bs.mu.Unlock()
		return fmt.Errorf("hdfs: block %d aborted", id)
	}
	lsn, err := nn.logOp(op)
	if err != nil {
		bs.mu.Unlock()
		return err
	}
	op.nodes = nn.applyCommitLocked(meta)
	bs.mu.Unlock()

	nn.enqueueRRPending(id)
	if err := nn.waitDurable(lsn); err != nil {
		return err
	}
	if j := nn.journal(); j != nil {
		if ev, ok := opEvent(op); ok {
			ev.Trace = telemetry.TraceFromContext(ctx)
			j.Publish(ev)
		}
	}
	return nil
}

// applyCommitLocked marks the block committed and returns a copy of its
// replica set; the shared apply step of commit. Caller holds the block's
// table-shard mutex.
func (nn *NameNode) applyCommitLocked(meta *BlockMeta) []topology.NodeID {
	meta.Committed = true
	return append([]topology.NodeID(nil), meta.Nodes...)
}

// enqueueRRPending queues a committed block for RaidNode grouping (RR only).
func (nn *NameNode) enqueueRRPending(id topology.BlockID) {
	if nn.policyName != "rr" {
		return
	}
	nn.rrMu.Lock()
	nn.rrPending = append(nn.rrPending, id)
	nn.rrMu.Unlock()
}

// publishAll publishes events gathered under a lock, in order.
func (nn *NameNode) publishAll(evs []events.Event) {
	j := nn.journal()
	if j == nil {
		return
	}
	for _, ev := range evs {
		j.Publish(ev)
	}
}

// AbortBlock abandons an uncommitted allocation: the block's replica list is
// cleared so nothing ever reads it, and it is flagged aborted. The metadata
// record itself is kept — the placement policy may already have folded the
// block into a stripe, and deleting it would corrupt that stripe's geometry;
// an aborted member simply contributes zeros at encode time, exactly like
// the zero-padding of short stripes. Aborting a committed block is an error.
func (nn *NameNode) AbortBlock(id topology.BlockID) error {
	defer nn.serialSection()()
	op := &nnOp{kind: opAbort, block: id}
	bs := nn.blockShardFor(id)
	bs.mu.Lock()
	meta, ok := bs.blocks[id]
	if !ok {
		bs.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	if meta.Committed {
		bs.mu.Unlock()
		return fmt.Errorf("hdfs: block %d already committed", id)
	}
	lsn, err := nn.logOp(op)
	if err != nil {
		bs.mu.Unlock()
		return err
	}
	applyAbortLocked(meta)
	bs.mu.Unlock()
	if err := nn.waitDurable(lsn); err != nil {
		return err
	}
	if ev, ok := opEvent(op); ok {
		nn.journal().Publish(ev)
	}
	return nil
}

// applyAbortLocked clears the block's replicas and flags it aborted; the
// shared apply step of abort. Caller holds the block's table-shard mutex.
func applyAbortLocked(meta *BlockMeta) {
	meta.Aborted = true
	meta.Nodes = nil
}

// registerStripeLocked assigns the next stripe ID and stores the stripe:
// the shared apply step of every stripe-registering op (seal, flush, group).
// The caller holds nn.mu and appended the op under the same hold, so the
// stripe-ID sequence always matches the log order. The caller builds the
// StripeGrouped event from the registered info via opEvent.
func (nn *NameNode) registerStripeLocked(info *placement.StripeInfo) {
	info.ID = nn.nextStripe
	nn.nextStripe++
	nn.stripes[info.ID] = &StripeMeta{Info: info}
	nn.preEncoding = append(nn.preEncoding, info)
	for _, b := range info.Blocks {
		bs := nn.blockShardFor(b)
		bs.mu.Lock()
		if meta, ok := bs.blocks[b]; ok {
			meta.Stripe = info.ID
		}
		bs.mu.Unlock()
	}
}

// TakePendingStripes drains the pre-encoding store. Under RR it first
// groups pending blocks k at a time with no placement knowledge, exactly as
// HDFS-RAID's RaidNode does. Incomplete groups stay queued.
func (nn *NameNode) TakePendingStripes() ([]*placement.StripeInfo, error) {
	defer nn.serialSection()()
	var pending []events.Event
	var lsn uint64
	if nn.policyName == "rr" {
		nn.rrMu.Lock()
		if len(nn.rrPending) >= nn.cfg.K {
			placements := make(map[topology.BlockID]topology.Placement, len(nn.rrPending))
			for _, b := range nn.rrPending {
				bs := nn.blockShardFor(b)
				bs.mu.RLock()
				meta, ok := bs.blocks[b]
				if !ok {
					bs.mu.RUnlock()
					nn.rrMu.Unlock()
					return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, b)
				}
				placements[b] = topology.Placement{Block: b, Nodes: append([]topology.NodeID(nil), meta.Nodes...)}
				bs.mu.RUnlock()
			}
			groups, err := placement.GroupIntoStripes(nn.cfg.K, nn.rrPending, placements, 0)
			if err != nil {
				nn.rrMu.Unlock()
				return nil, err
			}
			for _, g := range groups {
				op := &nnOp{kind: opGroupStripe, blocks: append([]topology.BlockID(nil), g.Blocks...)}
				nn.mu.Lock()
				l, err := nn.logOp(op)
				if err != nil {
					nn.mu.Unlock()
					nn.rrMu.Unlock()
					return nil, err
				}
				if l > lsn {
					lsn = l
				}
				nn.registerStripeLocked(g)
				nn.mu.Unlock()
				nn.removePendingLocked(g.Blocks)
				op.stripe, op.core = g.ID, g.CoreRack
				if ev, ok := opEvent(op); ok {
					pending = append(pending, ev)
				}
			}
		}
		nn.rrMu.Unlock()
	}
	nn.mu.Lock()
	var out []*placement.StripeInfo
	if len(nn.preEncoding) > 0 {
		dop := &nnOp{kind: opDrainPending}
		l, err := nn.logOp(dop)
		if err != nil {
			nn.mu.Unlock()
			return nil, err
		}
		if l > lsn {
			lsn = l
		}
		out = nn.applyDrainLocked()
	}
	nn.mu.Unlock()
	if err := nn.waitDurable(lsn); err != nil {
		return nil, err
	}
	nn.publishAll(pending)
	return out, nil
}

// applyDrainLocked hands the pre-encoding store to the caller and clears it;
// the shared apply step of drain-pending. Caller holds nn.mu.
func (nn *NameNode) applyDrainLocked() []*placement.StripeInfo {
	out := nn.preEncoding
	nn.preEncoding = nil
	return out
}

// removePendingLocked deletes the given blocks from the RR grouping queue,
// preserving the order of the remainder; the shared apply step of a group
// op's queue side. Caller holds rrMu.
func (nn *NameNode) removePendingLocked(members []topology.BlockID) {
	if len(members) == 0 || len(nn.rrPending) == 0 {
		return
	}
	drop := make(map[topology.BlockID]bool, len(members))
	for _, b := range members {
		drop[b] = true
	}
	kept := nn.rrPending[:0]
	for _, b := range nn.rrPending {
		if !drop[b] {
			kept = append(kept, b)
		}
	}
	nn.rrPending = kept
}

// PendingStripeCount reports how many sealed stripes await encoding
// (including, under RR, the full groups formable from pending blocks).
func (nn *NameNode) PendingStripeCount() int {
	defer nn.serialSection()()
	nn.mu.Lock()
	n := len(nn.preEncoding)
	nn.mu.Unlock()
	if nn.policyName == "rr" {
		nn.rrMu.Lock()
		n += len(nn.rrPending) / nn.cfg.K
		nn.rrMu.Unlock()
	}
	return n
}

// flusher is the optional policy capability of sealing in-progress stripes
// early (EAR implements it).
type flusher interface {
	FlushOpen() []*placement.StripeInfo
}

// FlushOpenStripes seals every in-progress stripe regardless of fill level
// (short stripes are zero-padded at encode time). Under RR it is a no-op:
// leftover blocks smaller than one stripe stay replicated. It returns the
// number of stripes flushed; the error is non-nil only when the write-ahead
// log rejected an op (already-flushed stripes stay registered).
func (nn *NameNode) FlushOpenStripes() (int, error) {
	defer nn.serialSection()()
	var pending []events.Event
	var lsn uint64
	count := 0
	for si, sh := range nn.shards {
		sh.mu.Lock()
		f, ok := sh.policy.(flusher)
		if !ok {
			sh.mu.Unlock()
			continue
		}
		for _, s := range f.FlushOpen() {
			op := &nnOp{kind: opFlushStripe, shard: int32(si), core: s.CoreRack}
			nn.mu.Lock()
			l, err := nn.logOp(op)
			if err != nil {
				nn.mu.Unlock()
				sh.mu.Unlock()
				return count, err
			}
			if l > lsn {
				lsn = l
			}
			nn.registerStripeLocked(s)
			nn.mu.Unlock()
			count++
			op.stripe, op.core, op.blocks = s.ID, s.CoreRack, s.Blocks
			if ev, ok := opEvent(op); ok {
				pending = append(pending, ev)
			}
		}
		sh.mu.Unlock()
	}
	if err := nn.waitDurable(lsn); err != nil {
		return count, err
	}
	nn.publishAll(pending)
	return count, nil
}

// PlanStripe computes the post-encoding layout for a stripe.
func (nn *NameNode) PlanStripe(info *placement.StripeInfo) (*placement.PostEncodingPlan, error) {
	defer nn.serialSection()()
	nn.mu.Lock()
	defer nn.mu.Unlock()
	plan, err := placement.PlanPostEncoding(nn.cfg, info, nn.rng)
	if err == nil && nn.planOverride != nil {
		nn.planOverride(info, plan)
	}
	return plan, err
}

// SetPlanOverrideForTest installs a hook that rewrites every post-encoding
// plan before PlanStripe returns it. Test-only: it exists so the auditor's
// integration tests can stage deliberately mis-placed stripes (for example,
// more than c blocks of one stripe in a single rack) and prove the violation
// is caught. nil removes the hook.
func (nn *NameNode) SetPlanOverrideForTest(fn func(*placement.StripeInfo, *placement.PostEncodingPlan)) {
	nn.mu.Lock()
	nn.planOverride = fn
	nn.mu.Unlock()
}

// CommitEncoding records the outcome of an encoding operation: every data
// block keeps a single replica and the stripe stores its plan (a private
// copy, so the caller's plan never aliases NameNode state).
func (nn *NameNode) CommitEncoding(id topology.StripeID, plan *placement.PostEncodingPlan) error {
	defer nn.serialSection()()
	op := &nnOp{kind: opEncodeCommit, stripe: id, plan: plan}
	nn.mu.Lock()
	sm, ok := nn.stripes[id]
	if !ok {
		nn.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	lsn, err := nn.logOp(op)
	if err != nil {
		nn.mu.Unlock()
		return err
	}
	if err := nn.applyEncodeLocked(sm, plan); err != nil {
		nn.mu.Unlock()
		return err
	}
	nn.mu.Unlock()
	if err := nn.waitDurable(lsn); err != nil {
		return err
	}
	if ev, ok := opEvent(op); ok {
		nn.journal().Publish(ev)
	}
	return nil
}

// applyEncodeLocked collapses every member of an encoded stripe to its
// single kept replica and stores the plan; the shared apply step of
// encode-commit. Caller holds nn.mu.
func (nn *NameNode) applyEncodeLocked(sm *StripeMeta, plan *placement.PostEncodingPlan) error {
	for i, b := range sm.Info.Blocks {
		bs := nn.blockShardFor(b)
		bs.mu.Lock()
		meta, ok := bs.blocks[b]
		if !ok {
			bs.mu.Unlock()
			return fmt.Errorf("%w: %d in stripe %d", ErrUnknownBlock, b, sm.Info.ID)
		}
		if meta.Aborted {
			// Aborted members encoded as zeros; they keep no replica.
			bs.mu.Unlock()
			continue
		}
		meta.Nodes = []topology.NodeID{plan.Keep[i]}
		meta.Encoded = true
		bs.mu.Unlock()
	}
	sm.Plan = plan.Clone()
	sm.Encoded = true
	return nil
}

// Block returns a copy of the block's metadata.
func (nn *NameNode) Block(id topology.BlockID) (*BlockMeta, error) {
	defer nn.serialSection()()
	bs := nn.blockShardFor(id)
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	meta, ok := bs.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	return cloneBlockMeta(meta), nil
}

// Stripe returns a deep copy of the stripe metadata, safe to retain and read
// while concurrent operations (UpdateParityLocation, CommitEncoding) mutate
// the authoritative record.
func (nn *NameNode) Stripe(id topology.StripeID) (*StripeMeta, error) {
	defer nn.serialSection()()
	nn.mu.Lock()
	defer nn.mu.Unlock()
	sm, ok := nn.stripes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	return cloneStripeMeta(sm), nil
}

// EncodedStripes lists the IDs of stripes that completed encoding, in
// ascending order.
func (nn *NameNode) EncodedStripes() []topology.StripeID {
	defer nn.serialSection()()
	nn.mu.Lock()
	out := make([]topology.StripeID, 0, len(nn.stripes))
	for id, sm := range nn.stripes {
		if sm.Encoded {
			out = append(out, id)
		}
	}
	nn.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveReplicas returns the block's replica nodes that are not dead.
func (nn *NameNode) LiveReplicas(id topology.BlockID) ([]topology.NodeID, error) {
	defer nn.serialSection()()
	bs := nn.blockShardFor(id)
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	meta, ok := bs.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	live := make([]topology.NodeID, 0, len(meta.Nodes))
	nn.deadMu.RLock()
	for _, n := range meta.Nodes {
		if !nn.dead[n] {
			live = append(live, n)
		}
	}
	nn.deadMu.RUnlock()
	return live, nil
}

// MarkDead declares a node failed; its replicas become unreadable. Liveness
// transitions are logged like every mutation but applied even if the log
// rejects the append (failing to record a death must not leave the NameNode
// routing reads to a dead node); the log's sticky error still surfaces on
// the next fallible mutation.
func (nn *NameNode) MarkDead(n topology.NodeID) {
	defer nn.serialSection()()
	op := &nnOp{kind: opNodeDead, node: n}
	nn.deadMu.Lock()
	lsn, _ := nn.logOp(op)
	nn.dead[n] = true
	nn.deadMu.Unlock()
	_ = nn.waitDurable(lsn)
	if ev, ok := opEvent(op); ok {
		nn.journal().Publish(ev)
	}
}

// MarkAlive reverses MarkDead: the node rejoins the cluster (its stale
// replicas are assumed invalidated by the rejoin protocol).
func (nn *NameNode) MarkAlive(n topology.NodeID) {
	defer nn.serialSection()()
	op := &nnOp{kind: opNodeAlive, node: n}
	nn.deadMu.Lock()
	lsn, _ := nn.logOp(op)
	delete(nn.dead, n)
	nn.deadMu.Unlock()
	_ = nn.waitDurable(lsn)
	if ev, ok := opEvent(op); ok {
		nn.journal().Publish(ev)
	}
}

// IsDead reports whether the node failed.
func (nn *NameNode) IsDead(n topology.NodeID) bool {
	defer nn.serialSection()()
	nn.deadMu.RLock()
	defer nn.deadMu.RUnlock()
	return nn.dead[n]
}

// UpdateBlockLocation rewrites a block's replica set (used by the
// BlockMover and by repair). No NameNode event: the data-path layer that
// moved the bytes publishes ReplicaRelocated/ReplicaDeleted.
func (nn *NameNode) UpdateBlockLocation(id topology.BlockID, nodes []topology.NodeID) error {
	defer nn.serialSection()()
	op := &nnOp{kind: opBlockMoved, block: id, nodes: nodes}
	bs := nn.blockShardFor(id)
	bs.mu.Lock()
	meta, ok := bs.blocks[id]
	if !ok {
		bs.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	lsn, err := nn.logOp(op)
	if err != nil {
		bs.mu.Unlock()
		return err
	}
	applyBlockMovedLocked(meta, nodes)
	bs.mu.Unlock()
	return nn.waitDurable(lsn)
}

// applyBlockMovedLocked rewrites the block's replica set; the shared apply
// step of block-moved. Caller holds the block's table-shard mutex.
func applyBlockMovedLocked(meta *BlockMeta, nodes []topology.NodeID) {
	meta.Nodes = append([]topology.NodeID(nil), nodes...)
}

// UpdateParityLocation rewrites the location of one parity block of a
// stripe (used by the BlockMover).
func (nn *NameNode) UpdateParityLocation(id topology.StripeID, idx int, node topology.NodeID) error {
	defer nn.serialSection()()
	op := &nnOp{kind: opParityMoved, stripe: id, idx: idx, node: node}
	nn.mu.Lock()
	sm, ok := nn.stripes[id]
	if !ok {
		nn.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	if sm.Plan == nil || idx < 0 || idx >= len(sm.Plan.Parity) {
		nn.mu.Unlock()
		return fmt.Errorf("hdfs: stripe %d has no parity index %d", id, idx)
	}
	lsn, err := nn.logOp(op)
	if err != nil {
		nn.mu.Unlock()
		return err
	}
	sm.Plan.Parity[idx] = node
	nn.mu.Unlock()
	return nn.waitDurable(lsn)
}

// BlockCount returns the number of allocated blocks.
func (nn *NameNode) BlockCount() int {
	defer nn.serialSection()()
	n := 0
	for i := range nn.blockTab {
		bs := &nn.blockTab[i]
		bs.mu.RLock()
		n += len(bs.blocks)
		bs.mu.RUnlock()
	}
	return n
}

func cloneBlockMeta(m *BlockMeta) *BlockMeta {
	c := *m
	c.Nodes = append([]topology.NodeID(nil), m.Nodes...)
	return &c
}
