package hdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ear/internal/events"
	"ear/internal/placement"
	"ear/internal/topology"
)

// Errors returned by the NameNode.
var (
	// ErrUnknownBlock indicates a block ID with no metadata.
	ErrUnknownBlock = errors.New("hdfs: unknown block")
	// ErrUnknownStripe indicates a stripe ID with no metadata.
	ErrUnknownStripe = errors.New("hdfs: unknown stripe")
	// ErrNoReplica indicates no live replica is available.
	ErrNoReplica = errors.New("hdfs: no live replica")
)

// BlockMeta is the NameNode's record of one data block.
type BlockMeta struct {
	ID   topology.BlockID
	Size int
	// Nodes lists the current replica locations (a single node once the
	// block's stripe is encoded).
	Nodes []topology.NodeID
	// Stripe is the stripe the block belongs to, or -1 before assignment.
	Stripe topology.StripeID
	// Encoded marks blocks whose stripe completed encoding.
	Encoded bool
	// Committed marks blocks whose replicas are durably written.
	Committed bool
	// Aborted marks blocks whose write was abandoned before commit. The
	// allocation (and any stripe slot the placement policy already assigned)
	// is retained so stripe geometry stays consistent; the block has no
	// replicas and encodes as zeros.
	Aborted bool
}

// StripeMeta is the NameNode's record of one stripe.
type StripeMeta struct {
	Info *placement.StripeInfo
	// Plan is the post-encoding layout, set when encoding commits.
	Plan *placement.PostEncodingPlan
	// Encoded marks completion of the encoding operation.
	Encoded bool
}

// NameNode holds all metadata: block locations, the placement policy hook
// (the paper's first HDFS modification), and the pre-encoding store mapping
// stripes to their block lists (the second modification).
type NameNode struct {
	mu     sync.Mutex
	cfg    placement.Config
	policy placement.Policy
	rng    *rand.Rand

	nextBlock  topology.BlockID
	nextStripe topology.StripeID
	blocks     map[topology.BlockID]*BlockMeta
	stripes    map[topology.StripeID]*StripeMeta
	// preEncoding holds sealed stripes awaiting encoding.
	preEncoding []*placement.StripeInfo
	// rrPending holds committed RR blocks not yet grouped into stripes.
	rrPending []topology.BlockID
	dead      map[topology.NodeID]bool

	// jrn is the cluster event journal (atomic so installation never races
	// with in-flight operations; nil means unjournaled). Events are
	// published after nn.mu is released, never under it.
	jrn atomic.Pointer[events.Journal]

	// planOverride, when non-nil, rewrites every post-encoding plan before
	// it is returned — a test-only hook for staging deliberately mis-placed
	// stripes the auditor must catch. Guarded by mu.
	planOverride func(*placement.StripeInfo, *placement.PostEncodingPlan)
}

// NewNameNode builds a NameNode with the given placement policy.
func NewNameNode(cfg placement.Config, policy placement.Policy, rng *rand.Rand) (*NameNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil policy or rng", placement.ErrInvalidConfig)
	}
	return &NameNode{
		cfg:     cfg,
		policy:  policy,
		rng:     rng,
		blocks:  make(map[topology.BlockID]*BlockMeta),
		stripes: make(map[topology.StripeID]*StripeMeta),
		dead:    make(map[topology.NodeID]bool),
	}, nil
}

// SetJournal installs the cluster event journal. Metadata transitions
// (allocation, commit, abort, stripe grouping, encode commit, liveness)
// publish into it; nil detaches.
func (nn *NameNode) SetJournal(j *events.Journal) { nn.jrn.Store(j) }

// journal returns the installed journal; nil (a valid no-op) otherwise.
func (nn *NameNode) journal() *events.Journal { return nn.jrn.Load() }

// AllocateBlock reserves a block ID and decides its replica placement.
func (nn *NameNode) AllocateBlock(size int) (*BlockMeta, error) {
	nn.mu.Lock()
	id := nn.nextBlock
	nn.nextBlock++
	pl, err := nn.policy.Place(id)
	if err != nil {
		nn.mu.Unlock()
		return nil, err
	}
	meta := &BlockMeta{ID: id, Size: size, Nodes: append([]topology.NodeID(nil), pl.Nodes...), Stripe: -1}
	nn.blocks[id] = meta
	out := cloneBlockMeta(meta)
	nn.mu.Unlock()
	ev := events.New(events.BlockAllocated, "namenode")
	ev.Block = id
	ev.Bytes = int64(size)
	ev.Nodes = append([]topology.NodeID(nil), out.Nodes...)
	nn.journal().Publish(ev)
	return out, nil
}

// CommitBlock records that the block's replicas are durably written; the
// block becomes eligible for stripe grouping (EAR sealed the stripe at
// placement time; RR blocks queue for RaidNode grouping).
func (nn *NameNode) CommitBlock(id topology.BlockID) error {
	nn.mu.Lock()
	meta, ok := nn.blocks[id]
	if !ok {
		nn.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	if meta.Aborted {
		nn.mu.Unlock()
		return fmt.Errorf("hdfs: block %d aborted", id)
	}
	meta.Committed = true
	pending := []events.Event{func() events.Event {
		ev := events.New(events.BlockCommitted, "namenode")
		ev.Block = id
		ev.Nodes = append([]topology.NodeID(nil), meta.Nodes...)
		return ev
	}()}
	for _, s := range nn.policy.TakeSealed() {
		pending = append(pending, nn.registerStripeLocked(s))
	}
	if nn.policy.Name() == "rr" {
		nn.rrPending = append(nn.rrPending, id)
	}
	nn.mu.Unlock()
	nn.publishAll(pending)
	return nil
}

// publishAll publishes events gathered under the lock, in order.
func (nn *NameNode) publishAll(evs []events.Event) {
	j := nn.journal()
	if j == nil {
		return
	}
	for _, ev := range evs {
		j.Publish(ev)
	}
}

// AbortBlock abandons an uncommitted allocation: the block's replica list is
// cleared so nothing ever reads it, and it is flagged aborted. The metadata
// record itself is kept — the placement policy may already have folded the
// block into a stripe, and deleting it would corrupt that stripe's geometry;
// an aborted member simply contributes zeros at encode time, exactly like
// the zero-padding of short stripes. Aborting a committed block is an error.
func (nn *NameNode) AbortBlock(id topology.BlockID) error {
	nn.mu.Lock()
	meta, ok := nn.blocks[id]
	if !ok {
		nn.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	if meta.Committed {
		nn.mu.Unlock()
		return fmt.Errorf("hdfs: block %d already committed", id)
	}
	meta.Aborted = true
	meta.Nodes = nil
	nn.mu.Unlock()
	ev := events.New(events.BlockAborted, "namenode")
	ev.Block = id
	nn.journal().Publish(ev)
	return nil
}

// registerStripeLocked assigns the next stripe ID, stores the stripe, and
// returns the StripeGrouped event for the caller to publish once nn.mu is
// released.
func (nn *NameNode) registerStripeLocked(info *placement.StripeInfo) events.Event {
	info.ID = nn.nextStripe
	nn.nextStripe++
	nn.stripes[info.ID] = &StripeMeta{Info: info}
	nn.preEncoding = append(nn.preEncoding, info)
	for _, b := range info.Blocks {
		if meta, ok := nn.blocks[b]; ok {
			meta.Stripe = info.ID
		}
	}
	ev := events.New(events.StripeGrouped, "namenode")
	ev.Stripe = info.ID
	ev.Rack = info.CoreRack
	ev.Blocks = append([]topology.BlockID(nil), info.Blocks...)
	return ev
}

// TakePendingStripes drains the pre-encoding store. Under RR it first
// groups pending blocks k at a time with no placement knowledge, exactly as
// HDFS-RAID's RaidNode does. Incomplete groups stay queued.
func (nn *NameNode) TakePendingStripes() ([]*placement.StripeInfo, error) {
	nn.mu.Lock()
	var pending []events.Event
	if nn.policy.Name() == "rr" && len(nn.rrPending) >= nn.cfg.K {
		placements := make(map[topology.BlockID]topology.Placement, len(nn.rrPending))
		for _, b := range nn.rrPending {
			meta := nn.blocks[b]
			placements[b] = topology.Placement{Block: b, Nodes: meta.Nodes}
		}
		groups, err := placement.GroupIntoStripes(nn.cfg.K, nn.rrPending, placements, 0)
		if err != nil {
			nn.mu.Unlock()
			return nil, err
		}
		grouped := len(groups) * nn.cfg.K
		nn.rrPending = nn.rrPending[grouped:]
		for _, g := range groups {
			pending = append(pending, nn.registerStripeLocked(g))
		}
	}
	out := nn.preEncoding
	nn.preEncoding = nil
	nn.mu.Unlock()
	nn.publishAll(pending)
	return out, nil
}

// PendingStripeCount reports how many sealed stripes await encoding
// (including, under RR, the full groups formable from pending blocks).
func (nn *NameNode) PendingStripeCount() int {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	n := len(nn.preEncoding)
	if nn.policy.Name() == "rr" {
		n += len(nn.rrPending) / nn.cfg.K
	}
	return n
}

// flusher is the optional policy capability of sealing in-progress stripes
// early (EAR implements it).
type flusher interface {
	FlushOpen() []*placement.StripeInfo
}

// FlushOpenStripes seals every in-progress stripe regardless of fill level
// (short stripes are zero-padded at encode time). Under RR it is a no-op:
// leftover blocks smaller than one stripe stay replicated.
func (nn *NameNode) FlushOpenStripes() int {
	nn.mu.Lock()
	f, ok := nn.policy.(flusher)
	if !ok {
		nn.mu.Unlock()
		return 0
	}
	flushed := f.FlushOpen()
	pending := make([]events.Event, 0, len(flushed))
	for _, s := range flushed {
		pending = append(pending, nn.registerStripeLocked(s))
	}
	nn.mu.Unlock()
	nn.publishAll(pending)
	return len(flushed)
}

// PlanStripe computes the post-encoding layout for a stripe.
func (nn *NameNode) PlanStripe(info *placement.StripeInfo) (*placement.PostEncodingPlan, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	plan, err := placement.PlanPostEncoding(nn.cfg, info, nn.rng)
	if err == nil && nn.planOverride != nil {
		nn.planOverride(info, plan)
	}
	return plan, err
}

// SetPlanOverrideForTest installs a hook that rewrites every post-encoding
// plan before PlanStripe returns it. Test-only: it exists so the auditor's
// integration tests can stage deliberately mis-placed stripes (for example,
// more than c blocks of one stripe in a single rack) and prove the violation
// is caught. nil removes the hook.
func (nn *NameNode) SetPlanOverrideForTest(fn func(*placement.StripeInfo, *placement.PostEncodingPlan)) {
	nn.mu.Lock()
	nn.planOverride = fn
	nn.mu.Unlock()
}

// CommitEncoding records the outcome of an encoding operation: every data
// block keeps a single replica and the stripe stores its plan.
func (nn *NameNode) CommitEncoding(id topology.StripeID, plan *placement.PostEncodingPlan) error {
	nn.mu.Lock()
	sm, ok := nn.stripes[id]
	if !ok {
		nn.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	sm.Plan = plan
	sm.Encoded = true
	for i, b := range sm.Info.Blocks {
		meta, ok := nn.blocks[b]
		if !ok {
			nn.mu.Unlock()
			return fmt.Errorf("%w: %d in stripe %d", ErrUnknownBlock, b, id)
		}
		if meta.Aborted {
			// Aborted members encoded as zeros; they keep no replica.
			continue
		}
		meta.Nodes = []topology.NodeID{plan.Keep[i]}
		meta.Encoded = true
	}
	nn.mu.Unlock()
	ev := events.New(events.StripeEncoded, "namenode")
	ev.Stripe = id
	ev.Nodes = append([]topology.NodeID(nil), plan.Parity...)
	nn.journal().Publish(ev)
	return nil
}

// Block returns a copy of the block's metadata.
func (nn *NameNode) Block(id topology.BlockID) (*BlockMeta, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	return cloneBlockMeta(meta), nil
}

// Stripe returns the stripe metadata (shared pointers; callers must not
// mutate).
func (nn *NameNode) Stripe(id topology.StripeID) (*StripeMeta, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	sm, ok := nn.stripes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	return sm, nil
}

// EncodedStripes lists the IDs of stripes that completed encoding.
func (nn *NameNode) EncodedStripes() []topology.StripeID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	out := make([]topology.StripeID, 0, len(nn.stripes))
	for id, sm := range nn.stripes {
		if sm.Encoded {
			out = append(out, id)
		}
	}
	return out
}

// LiveReplicas returns the block's replica nodes that are not dead.
func (nn *NameNode) LiveReplicas(id topology.BlockID) ([]topology.NodeID, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	live := make([]topology.NodeID, 0, len(meta.Nodes))
	for _, n := range meta.Nodes {
		if !nn.dead[n] {
			live = append(live, n)
		}
	}
	return live, nil
}

// MarkDead declares a node failed; its replicas become unreadable.
func (nn *NameNode) MarkDead(n topology.NodeID) {
	nn.mu.Lock()
	nn.dead[n] = true
	nn.mu.Unlock()
	ev := events.New(events.NodeDead, "namenode")
	ev.Node = n
	nn.journal().Publish(ev)
}

// MarkAlive reverses MarkDead: the node rejoins the cluster (its stale
// replicas are assumed invalidated by the rejoin protocol).
func (nn *NameNode) MarkAlive(n topology.NodeID) {
	nn.mu.Lock()
	delete(nn.dead, n)
	nn.mu.Unlock()
	ev := events.New(events.NodeAlive, "namenode")
	ev.Node = n
	nn.journal().Publish(ev)
}

// IsDead reports whether the node failed.
func (nn *NameNode) IsDead(n topology.NodeID) bool {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return nn.dead[n]
}

// UpdateBlockLocation rewrites a block's replica set (used by the
// BlockMover and by repair).
func (nn *NameNode) UpdateBlockLocation(id topology.BlockID, nodes []topology.NodeID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	meta.Nodes = append([]topology.NodeID(nil), nodes...)
	return nil
}

// UpdateParityLocation rewrites the location of one parity block of a
// stripe (used by the BlockMover).
func (nn *NameNode) UpdateParityLocation(id topology.StripeID, idx int, node topology.NodeID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	sm, ok := nn.stripes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	if sm.Plan == nil || idx < 0 || idx >= len(sm.Plan.Parity) {
		return fmt.Errorf("hdfs: stripe %d has no parity index %d", id, idx)
	}
	sm.Plan.Parity[idx] = node
	return nil
}

// BlockCount returns the number of allocated blocks.
func (nn *NameNode) BlockCount() int {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return len(nn.blocks)
}

func cloneBlockMeta(m *BlockMeta) *BlockMeta {
	c := *m
	c.Nodes = append([]topology.NodeID(nil), m.Nodes...)
	return &c
}
