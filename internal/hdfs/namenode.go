package hdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"ear/internal/placement"
	"ear/internal/topology"
)

// Errors returned by the NameNode.
var (
	// ErrUnknownBlock indicates a block ID with no metadata.
	ErrUnknownBlock = errors.New("hdfs: unknown block")
	// ErrUnknownStripe indicates a stripe ID with no metadata.
	ErrUnknownStripe = errors.New("hdfs: unknown stripe")
	// ErrNoReplica indicates no live replica is available.
	ErrNoReplica = errors.New("hdfs: no live replica")
)

// BlockMeta is the NameNode's record of one data block.
type BlockMeta struct {
	ID   topology.BlockID
	Size int
	// Nodes lists the current replica locations (a single node once the
	// block's stripe is encoded).
	Nodes []topology.NodeID
	// Stripe is the stripe the block belongs to, or -1 before assignment.
	Stripe topology.StripeID
	// Encoded marks blocks whose stripe completed encoding.
	Encoded bool
	// Committed marks blocks whose replicas are durably written.
	Committed bool
	// Aborted marks blocks whose write was abandoned before commit. The
	// allocation (and any stripe slot the placement policy already assigned)
	// is retained so stripe geometry stays consistent; the block has no
	// replicas and encodes as zeros.
	Aborted bool
}

// StripeMeta is the NameNode's record of one stripe.
type StripeMeta struct {
	Info *placement.StripeInfo
	// Plan is the post-encoding layout, set when encoding commits.
	Plan *placement.PostEncodingPlan
	// Encoded marks completion of the encoding operation.
	Encoded bool
}

// NameNode holds all metadata: block locations, the placement policy hook
// (the paper's first HDFS modification), and the pre-encoding store mapping
// stripes to their block lists (the second modification).
type NameNode struct {
	mu     sync.Mutex
	cfg    placement.Config
	policy placement.Policy
	rng    *rand.Rand

	nextBlock  topology.BlockID
	nextStripe topology.StripeID
	blocks     map[topology.BlockID]*BlockMeta
	stripes    map[topology.StripeID]*StripeMeta
	// preEncoding holds sealed stripes awaiting encoding.
	preEncoding []*placement.StripeInfo
	// rrPending holds committed RR blocks not yet grouped into stripes.
	rrPending []topology.BlockID
	dead      map[topology.NodeID]bool
}

// NewNameNode builds a NameNode with the given placement policy.
func NewNameNode(cfg placement.Config, policy placement.Policy, rng *rand.Rand) (*NameNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil policy or rng", placement.ErrInvalidConfig)
	}
	return &NameNode{
		cfg:     cfg,
		policy:  policy,
		rng:     rng,
		blocks:  make(map[topology.BlockID]*BlockMeta),
		stripes: make(map[topology.StripeID]*StripeMeta),
		dead:    make(map[topology.NodeID]bool),
	}, nil
}

// AllocateBlock reserves a block ID and decides its replica placement.
func (nn *NameNode) AllocateBlock(size int) (*BlockMeta, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	id := nn.nextBlock
	nn.nextBlock++
	pl, err := nn.policy.Place(id)
	if err != nil {
		return nil, err
	}
	meta := &BlockMeta{ID: id, Size: size, Nodes: append([]topology.NodeID(nil), pl.Nodes...), Stripe: -1}
	nn.blocks[id] = meta
	return cloneBlockMeta(meta), nil
}

// CommitBlock records that the block's replicas are durably written; the
// block becomes eligible for stripe grouping (EAR sealed the stripe at
// placement time; RR blocks queue for RaidNode grouping).
func (nn *NameNode) CommitBlock(id topology.BlockID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	if meta.Aborted {
		return fmt.Errorf("hdfs: block %d aborted", id)
	}
	meta.Committed = true
	for _, s := range nn.policy.TakeSealed() {
		nn.registerStripeLocked(s)
	}
	if nn.policy.Name() == "rr" {
		nn.rrPending = append(nn.rrPending, id)
	}
	return nil
}

// AbortBlock abandons an uncommitted allocation: the block's replica list is
// cleared so nothing ever reads it, and it is flagged aborted. The metadata
// record itself is kept — the placement policy may already have folded the
// block into a stripe, and deleting it would corrupt that stripe's geometry;
// an aborted member simply contributes zeros at encode time, exactly like
// the zero-padding of short stripes. Aborting a committed block is an error.
func (nn *NameNode) AbortBlock(id topology.BlockID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	if meta.Committed {
		return fmt.Errorf("hdfs: block %d already committed", id)
	}
	meta.Aborted = true
	meta.Nodes = nil
	return nil
}

// registerStripeLocked assigns the next stripe ID and stores the stripe.
func (nn *NameNode) registerStripeLocked(info *placement.StripeInfo) {
	info.ID = nn.nextStripe
	nn.nextStripe++
	nn.stripes[info.ID] = &StripeMeta{Info: info}
	nn.preEncoding = append(nn.preEncoding, info)
	for _, b := range info.Blocks {
		if meta, ok := nn.blocks[b]; ok {
			meta.Stripe = info.ID
		}
	}
}

// TakePendingStripes drains the pre-encoding store. Under RR it first
// groups pending blocks k at a time with no placement knowledge, exactly as
// HDFS-RAID's RaidNode does. Incomplete groups stay queued.
func (nn *NameNode) TakePendingStripes() ([]*placement.StripeInfo, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if nn.policy.Name() == "rr" && len(nn.rrPending) >= nn.cfg.K {
		placements := make(map[topology.BlockID]topology.Placement, len(nn.rrPending))
		for _, b := range nn.rrPending {
			meta := nn.blocks[b]
			placements[b] = topology.Placement{Block: b, Nodes: meta.Nodes}
		}
		groups, err := placement.GroupIntoStripes(nn.cfg.K, nn.rrPending, placements, 0)
		if err != nil {
			return nil, err
		}
		grouped := len(groups) * nn.cfg.K
		nn.rrPending = nn.rrPending[grouped:]
		for _, g := range groups {
			nn.registerStripeLocked(g)
		}
	}
	out := nn.preEncoding
	nn.preEncoding = nil
	return out, nil
}

// PendingStripeCount reports how many sealed stripes await encoding
// (including, under RR, the full groups formable from pending blocks).
func (nn *NameNode) PendingStripeCount() int {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	n := len(nn.preEncoding)
	if nn.policy.Name() == "rr" {
		n += len(nn.rrPending) / nn.cfg.K
	}
	return n
}

// flusher is the optional policy capability of sealing in-progress stripes
// early (EAR implements it).
type flusher interface {
	FlushOpen() []*placement.StripeInfo
}

// FlushOpenStripes seals every in-progress stripe regardless of fill level
// (short stripes are zero-padded at encode time). Under RR it is a no-op:
// leftover blocks smaller than one stripe stay replicated.
func (nn *NameNode) FlushOpenStripes() int {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	f, ok := nn.policy.(flusher)
	if !ok {
		return 0
	}
	flushed := f.FlushOpen()
	for _, s := range flushed {
		nn.registerStripeLocked(s)
	}
	return len(flushed)
}

// PlanStripe computes the post-encoding layout for a stripe.
func (nn *NameNode) PlanStripe(info *placement.StripeInfo) (*placement.PostEncodingPlan, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return placement.PlanPostEncoding(nn.cfg, info, nn.rng)
}

// CommitEncoding records the outcome of an encoding operation: every data
// block keeps a single replica and the stripe stores its plan.
func (nn *NameNode) CommitEncoding(id topology.StripeID, plan *placement.PostEncodingPlan) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	sm, ok := nn.stripes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	sm.Plan = plan
	sm.Encoded = true
	for i, b := range sm.Info.Blocks {
		meta, ok := nn.blocks[b]
		if !ok {
			return fmt.Errorf("%w: %d in stripe %d", ErrUnknownBlock, b, id)
		}
		if meta.Aborted {
			// Aborted members encoded as zeros; they keep no replica.
			continue
		}
		meta.Nodes = []topology.NodeID{plan.Keep[i]}
		meta.Encoded = true
	}
	return nil
}

// Block returns a copy of the block's metadata.
func (nn *NameNode) Block(id topology.BlockID) (*BlockMeta, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	return cloneBlockMeta(meta), nil
}

// Stripe returns the stripe metadata (shared pointers; callers must not
// mutate).
func (nn *NameNode) Stripe(id topology.StripeID) (*StripeMeta, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	sm, ok := nn.stripes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	return sm, nil
}

// EncodedStripes lists the IDs of stripes that completed encoding.
func (nn *NameNode) EncodedStripes() []topology.StripeID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	out := make([]topology.StripeID, 0, len(nn.stripes))
	for id, sm := range nn.stripes {
		if sm.Encoded {
			out = append(out, id)
		}
	}
	return out
}

// LiveReplicas returns the block's replica nodes that are not dead.
func (nn *NameNode) LiveReplicas(id topology.BlockID) ([]topology.NodeID, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	live := make([]topology.NodeID, 0, len(meta.Nodes))
	for _, n := range meta.Nodes {
		if !nn.dead[n] {
			live = append(live, n)
		}
	}
	return live, nil
}

// MarkDead declares a node failed; its replicas become unreadable.
func (nn *NameNode) MarkDead(n topology.NodeID) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.dead[n] = true
}

// MarkAlive reverses MarkDead: the node rejoins the cluster (its stale
// replicas are assumed invalidated by the rejoin protocol).
func (nn *NameNode) MarkAlive(n topology.NodeID) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	delete(nn.dead, n)
}

// IsDead reports whether the node failed.
func (nn *NameNode) IsDead(n topology.NodeID) bool {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return nn.dead[n]
}

// UpdateBlockLocation rewrites a block's replica set (used by the
// BlockMover and by repair).
func (nn *NameNode) UpdateBlockLocation(id topology.BlockID, nodes []topology.NodeID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	meta, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	meta.Nodes = append([]topology.NodeID(nil), nodes...)
	return nil
}

// UpdateParityLocation rewrites the location of one parity block of a
// stripe (used by the BlockMover).
func (nn *NameNode) UpdateParityLocation(id topology.StripeID, idx int, node topology.NodeID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	sm, ok := nn.stripes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownStripe, id)
	}
	if sm.Plan == nil || idx < 0 || idx >= len(sm.Plan.Parity) {
		return fmt.Errorf("hdfs: stripe %d has no parity index %d", id, idx)
	}
	sm.Plan.Parity[idx] = node
	return nil
}

// BlockCount returns the number of allocated blocks.
func (nn *NameNode) BlockCount() int {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	return len(nn.blocks)
}

func cloneBlockMeta(m *BlockMeta) *BlockMeta {
	c := *m
	c.Nodes = append([]topology.NodeID(nil), m.Nodes...)
	return &c
}
