package hdfs

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"ear/internal/events"
	"ear/internal/progress"
	"ear/internal/telemetry"
	"ear/internal/topology"
)

// TestRecoverNode drives a full-node failure through the parallel recovery
// driver: every member lost with the node is reconstructed, the plan is
// deterministic and balanced across surviving nodes, lifecycle events
// bracket the sweep, and the progress tracker's durability-exposure ledger
// opens on the death and fully closes on recovery.
func TestRecoverNode(t *testing.T) {
	cfg := Config{Racks: 4, NodesPerRack: 4, Policy: "ear", Replicas: 2,
		K: 6, N: 9, C: 3, BlockSizeBytes: 8 << 10,
		BandwidthBytesPerSec: 64 << 20, MapTasks: 4, Seed: 7,
		RackAwareRepair: true}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	jrn := events.NewJournal(1 << 15)
	c.SetJournal(jrn)
	tracker := progress.New(progress.Config{Replicas: cfg.Replicas, Policy: cfg.Policy})
	defer tracker.Attach(jrn)()

	rng := rand.New(rand.NewSource(41))
	_, contents := writeBlocks(t, c, 6*cfg.K, rng)
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}

	dead := busiestDataNode(t, c)
	c.NameNode().MarkDead(dead)
	if rep := tracker.Report(); rep.BlocksAtRisk == 0 {
		t.Fatal("node death opened no exposure windows in the progress tracker")
	}

	// The plan is deterministic: two plannings of the same state agree.
	plan1, err := c.planNodeRecovery(dead)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := c.planNodeRecovery(dead)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan1) != len(plan2) {
		t.Fatalf("plan sizes differ: %d vs %d", len(plan1), len(plan2))
	}
	if len(plan1) == 0 {
		t.Fatal("busiest node's death planned no repairs")
	}
	for i := range plan1 {
		a, b := plan1[i], plan2[i]
		if a.sm.Info.ID != b.sm.Info.ID || a.block != b.block || a.parity != b.parity || a.target != b.target {
			t.Fatalf("plan diverged at %d: %+v vs %+v", i, a, b)
		}
	}
	// Balanced: no surviving node is assigned a disproportionate share, and
	// the load spreads over more than one rack.
	perNode := make(map[topology.NodeID]int)
	racks := make(map[topology.RackID]bool)
	for _, task := range plan1 {
		if task.target == dead {
			t.Fatalf("task targets the dead node: %+v", task)
		}
		perNode[task.target]++
		r, err := c.Topology().RackOf(task.target)
		if err != nil {
			t.Fatal(err)
		}
		racks[r] = true
	}
	maxLoad := (len(plan1) + len(perNode) - 1) / len(perNode)
	for n, load := range perNode {
		if load > maxLoad+1 {
			t.Errorf("node %d assigned %d repairs, fair share %d", n, load, maxLoad)
		}
	}
	if len(plan1) >= 4 && len(racks) < 2 {
		t.Errorf("%d repairs all landed in one rack", len(plan1))
	}

	stats, err := c.RecoverNode(context.Background(), dead)
	if err != nil {
		t.Fatalf("RecoverNode: %v", err)
	}
	if stats.BlocksRepaired+stats.ParityRepaired != len(plan1) {
		t.Fatalf("repaired %d+%d members, planned %d",
			stats.BlocksRepaired, stats.ParityRepaired, len(plan1))
	}
	if stats.BytesRepaired != int64(len(plan1))*int64(cfg.BlockSizeBytes) {
		t.Errorf("BytesRepaired = %d, want %d", stats.BytesRepaired, int64(len(plan1))*int64(cfg.BlockSizeBytes))
	}
	if stats.CrossRackBytes <= 0 || stats.CrossRackBytes > stats.TotalBytes {
		t.Errorf("implausible traffic: cross %d of total %d", stats.CrossRackBytes, stats.TotalBytes)
	}
	if stats.Duration <= 0 || stats.ThroughputMBps() <= 0 {
		t.Errorf("implausible timing: %v, %.2f MB/s", stats.Duration, stats.ThroughputMBps())
	}

	// Nothing references the dead node anymore, and all content survives.
	nn := c.NameNode()
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Aborted {
				continue
			}
			for _, n := range meta.Nodes {
				if n == dead {
					t.Fatalf("block %d still located on dead node %d", b, dead)
				}
			}
		}
		for j, n := range sm.Plan.Parity {
			if n == dead {
				t.Fatalf("stripe %d parity %d still located on dead node %d", sid, j, dead)
			}
		}
	}
	verifyBlockContents(t, c, contents)
	if n := verifyParities(t, c, contents); n == 0 {
		t.Fatal("no parity verified after recovery")
	}

	// Recovery closed every exposure window it could: zero residual risk.
	if rep := tracker.Report(); rep.BlocksAtRisk != 0 {
		t.Fatalf("blocks at risk after full recovery = %d, want 0", rep.BlocksAtRisk)
	}

	// Lifecycle events bracket the sweep.
	started, _, _ := jrn.Since(0, 0, events.Filter{Type: events.NodeRecoveryStarted})
	finished, _, _ := jrn.Since(0, 0, events.Filter{Type: events.NodeRecoveryFinished})
	if len(started) != 1 || len(finished) != 1 {
		t.Fatalf("lifecycle events: %d started, %d finished, want 1 each", len(started), len(finished))
	}
	if started[0].Node != dead || finished[0].Node != dead {
		t.Errorf("lifecycle events name nodes %d/%d, want %d", started[0].Node, finished[0].Node, dead)
	}
	if finished[0].Bytes != stats.BytesRepaired {
		t.Errorf("NodeRecoveryFinished bytes %d, want %d", finished[0].Bytes, stats.BytesRepaired)
	}

	// A live node is not recoverable.
	if _, err := c.RecoverNode(context.Background(), dead+1); err == nil {
		t.Error("RecoverNode on a live node should fail")
	}
	// A second sweep over the same dead node finds nothing left to do.
	again, err := c.RecoverNode(context.Background(), dead)
	if err != nil {
		t.Fatalf("idempotent re-sweep: %v", err)
	}
	if again.BlocksRepaired+again.ParityRepaired != 0 {
		t.Errorf("re-sweep repaired %d members, want 0", again.BlocksRepaired+again.ParityRepaired)
	}
}

// TestRepairTelemetry checks the repair traffic metrics: cross-rack repair
// bytes accumulate and the per-repair throughput histogram populates.
func TestRepairTelemetry(t *testing.T) {
	for _, rackAware := range []bool{false, true} {
		cfg := testConfig("ear")
		cfg.RackAwareRepair = rackAware
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		c.SetTelemetry(reg)
		rng := rand.New(rand.NewSource(43))
		ids, _ := writeBlocks(t, c, cfg.K, rng)
		if _, err := c.NameNode().FlushOpenStripes(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RaidNode().EncodeAll(); err != nil {
			t.Fatal(err)
		}
		vm, err := c.NameNode().Block(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		c.NameNode().MarkDead(vm.Nodes[0])
		if _, err := c.RepairBlock(ids[0]); err != nil {
			t.Fatal(err)
		}
		var cross, mbpsCount float64
		for _, fam := range reg.Snapshot() {
			for _, s := range fam.Series {
				switch fam.Name {
				case "hdfs_repair_cross_rack_bytes_total":
					cross += s.Value
				case "hdfs_repair_mbps":
					mbpsCount += float64(s.Count)
				}
			}
		}
		if cross <= 0 {
			t.Errorf("rackAware=%v: hdfs_repair_cross_rack_bytes_total = %v, want > 0", rackAware, cross)
		}
		if mbpsCount == 0 {
			t.Errorf("rackAware=%v: hdfs_repair_mbps histogram empty", rackAware)
		}
		c.Close()
	}
}

// TestRecoverNodeUnrecoverable: with more erasures than parity can absorb,
// RecoverNode surfaces the error instead of silently skipping the stripe.
func TestRecoverNodeUnrecoverable(t *testing.T) {
	cfg := testConfig("ear")
	cfg.RackAwareRepair = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(47))
	writeBlocks(t, c, 4*cfg.K, rng)
	if _, err := c.NameNode().FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	// Kill three members of ONE stripe: (6,4) absorbs only two erasures.
	nn := c.NameNode()
	var dead topology.NodeID = -1
	for _, sid := range nn.EncodedStripes() {
		sm, err := nn.Stripe(sid)
		if err != nil {
			t.Fatal(err)
		}
		var holders []topology.NodeID
		seen := make(map[topology.NodeID]bool)
		for _, b := range sm.Info.Blocks {
			meta, err := nn.Block(b)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Aborted || len(meta.Nodes) != 1 || seen[meta.Nodes[0]] {
				continue
			}
			seen[meta.Nodes[0]] = true
			holders = append(holders, meta.Nodes[0])
		}
		if len(holders) >= 3 {
			for _, n := range holders[:3] {
				nn.MarkDead(n)
			}
			dead = holders[2]
			break
		}
	}
	if dead < 0 {
		t.Fatal("no stripe offered three single-replica members on distinct nodes")
	}
	if _, err := c.RecoverNode(context.Background(), dead); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("RecoverNode over an unrecoverable stripe = %v, want ErrNoReplica", err)
	}
}
