package hdfs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ear/internal/topology"
)

// TestPipelinedWriteMatchesSequential writes the same workload through the
// chunked pipeline and through the legacy store-and-forward path and checks
// they are indistinguishable at rest: identical replica placement, byte-
// identical stored replicas, and identical fabric locality accounting.
func TestPipelinedWriteMatchesSequential(t *testing.T) {
	for _, policy := range []string{"rr", "ear"} {
		t.Run(policy, func(t *testing.T) {
			seqCfg := testConfig(policy)
			seqCfg.SequentialDataPath = true
			seq, err := NewCluster(seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(seq.Close)
			pipe := newTestCluster(t, policy)

			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 12; i++ {
				data := make([]byte, seqCfg.BlockSizeBytes)
				rng.Read(data)
				client := topology.NodeID(rng.Intn(seq.Topology().Nodes()))
				idSeq, err := seq.WriteBlock(client, data)
				if err != nil {
					t.Fatalf("sequential WriteBlock %d: %v", i, err)
				}
				idPipe, err := pipe.WriteBlock(client, data)
				if err != nil {
					t.Fatalf("pipelined WriteBlock %d: %v", i, err)
				}
				if idSeq != idPipe {
					t.Fatalf("block IDs diverged: %d vs %d", idSeq, idPipe)
				}
				ms, _ := seq.NameNode().Block(idSeq)
				mp, _ := pipe.NameNode().Block(idPipe)
				if len(ms.Nodes) != len(mp.Nodes) {
					t.Fatalf("replica counts diverged: %v vs %v", ms.Nodes, mp.Nodes)
				}
				for j := range ms.Nodes {
					if ms.Nodes[j] != mp.Nodes[j] {
						t.Fatalf("placement diverged: %v vs %v", ms.Nodes, mp.Nodes)
					}
					dnS, _ := seq.DataNodeOf(ms.Nodes[j])
					dnP, _ := pipe.DataNodeOf(mp.Nodes[j])
					gotS, err := dnS.Store.Get(DataKey(idSeq))
					if err != nil {
						t.Fatal(err)
					}
					gotP, err := dnP.Store.Get(DataKey(idPipe))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotS, data) || !bytes.Equal(gotP, data) {
						t.Fatalf("replica %d of block %d not byte-identical to payload", j, idSeq)
					}
				}
			}
			fs, fp := seq.Fabric().Snapshot(), pipe.Fabric().Snapshot()
			if fs.CrossRackBytes != fp.CrossRackBytes || fs.IntraRackBytes != fp.IntraRackBytes {
				t.Errorf("locality accounting diverged: seq cross=%d intra=%d, pipe cross=%d intra=%d",
					fs.CrossRackBytes, fs.IntraRackBytes, fp.CrossRackBytes, fp.IntraRackBytes)
			}
		})
	}
}

// TestPipelinedWriteLatency checks the headline property of the chunk
// pipeline: a 3-replica write completes in about one block-transfer time
// plus the pipeline fill, not three sequential block transfers.
func TestPipelinedWriteLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := testConfig("rr")
	cfg.BlockSizeBytes = 1 << 20
	cfg.BandwidthBytesPerSec = 8 << 20 // one block transfer = 125ms
	single := time.Duration(float64(cfg.BlockSizeBytes) / cfg.BandwidthBytesPerSec * float64(time.Second))

	pipe, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pipe.Close)
	cfg.SequentialDataPath = true
	seq, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(seq.Close)

	data := make([]byte, cfg.BlockSizeBytes)
	rand.New(rand.NewSource(3)).Read(data)
	t0 := time.Now()
	if _, err := pipe.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}
	pipeD := time.Since(t0)
	t0 = time.Now()
	if _, err := seq.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}
	seqD := time.Since(t0)

	if pipeD >= seqD*6/10 {
		t.Errorf("pipelined write %v not clearly faster than store-and-forward %v", pipeD, seqD)
	}
	if limit := single * 3 / 2; pipeD >= limit {
		t.Errorf("pipelined 3-replica write took %v, want < 1.5x single transfer (%v)", pipeD, limit)
	}
}

// TestWriteCancelMidFlight cancels a write while its chunks are in flight
// on a slow fabric and checks the abort contract: the call returns the
// cancellation promptly, no replica is committed anywhere, the allocation
// is voided, and no pipeline goroutine leaks.
func TestWriteCancelMidFlight(t *testing.T) {
	cfg := testConfig("rr")
	cfg.BlockSizeBytes = 256 << 10
	cfg.BandwidthBytesPerSec = 64 << 10 // one hop would take 4s
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	data := make([]byte, cfg.BlockSizeBytes)
	t0 := time.Now()
	_, err = c.WriteBlockCtx(ctx, 0, data)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled write returned %v", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Errorf("cancellation took %v, want within one chunk reservation", d)
	}
	for n := 0; n < c.Topology().Nodes(); n++ {
		dn, _ := c.DataNodeOf(topology.NodeID(n))
		if dn.Store.Len() != 0 {
			t.Errorf("node %d committed %d replicas after canceled write", n, dn.Store.Len())
		}
	}
	// The allocation must be aborted: committing it now is rejected.
	meta, err := c.NameNode().Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Aborted || meta.Committed || len(meta.Nodes) != 0 {
		t.Errorf("aborted block meta = %+v", meta)
	}
	if err := c.NameNode().CommitBlock(0); err == nil {
		t.Error("CommitBlock of aborted block should fail")
	}
	// All pipeline goroutines must drain.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked after canceled write: %d -> %d", before, g)
	}
}

// TestParallelGatherMatchesSequential reconstructs the same lost block with
// concurrent and with one-at-a-time survivor fetches and checks both decode
// to the original payload.
func TestParallelGatherMatchesSequential(t *testing.T) {
	run := func(t *testing.T, sequential bool) {
		cfg := testConfig("ear")
		cfg.SequentialDataPath = sequential
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		rng := rand.New(rand.NewSource(11))
		ids, contents := writeBlocks(t, c, cfg.K, rng)
		// EAR keeps one open stripe per rack; seal them all so every block
		// (short stripes included) encodes.
		c.NameNode().FlushOpenStripes()
		if _, err := c.RaidNode().EncodeAll(); err != nil {
			t.Fatal(err)
		}
		meta, err := c.NameNode().Block(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(meta.Nodes) != 1 {
			t.Fatalf("post-encode replicas = %v", meta.Nodes)
		}
		c.NameNode().MarkDead(meta.Nodes[0])
		got, err := c.ReadBlock(0, ids[0])
		if err != nil {
			t.Fatalf("degraded read: %v", err)
		}
		if !bytes.Equal(got, contents[ids[0]]) {
			t.Fatal("degraded read content mismatch")
		}
	}
	t.Run("parallel", func(t *testing.T) { run(t, false) })
	t.Run("sequential", func(t *testing.T) { run(t, true) })
}

// TestAbortedBlockInStripeEncodes covers the interaction between write
// cancellation and stripe formation: a block aborted after the placement
// policy folded it into a stripe encodes as zeros (like short-stripe
// padding), the stripe still commits, and its live members survive
// degraded reads.
func TestAbortedBlockInStripeEncodes(t *testing.T) {
	c := newTestCluster(t, "ear")
	cfg := c.Config()
	rng := rand.New(rand.NewSource(13))
	ids, contents := writeBlocks(t, c, 2, rng)

	// Abort the third allocation mid-stripe with an already-dead context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.WriteBlockCtx(ctx, 0, make([]byte, cfg.BlockSizeBytes)); err == nil {
		t.Fatal("write under canceled context should fail")
	}

	abortedID := topology.BlockID(2) // third allocation
	if meta, err := c.NameNode().Block(abortedID); err != nil || !meta.Aborted {
		t.Fatalf("block %d meta = %+v, err %v; want aborted", abortedID, meta, err)
	}

	moreIDs, moreContents := writeBlocks(t, c, 2, rng)
	ids = append(ids, moreIDs...)
	for id, d := range moreContents {
		contents[id] = d
	}
	// EAR keeps one open stripe per rack; seal them all so the stripe
	// holding the aborted member encodes too.
	c.NameNode().FlushOpenStripes()
	stats, err := c.RaidNode().EncodeAll()
	if err != nil {
		t.Fatalf("EncodeAll with aborted member: %v", err)
	}
	if stats.Stripes == 0 {
		t.Fatal("no stripes encoded")
	}
	meta, err := c.NameNode().Block(abortedID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stripe < 0 {
		t.Fatal("aborted block not folded into any stripe")
	}
	if sm, err := c.NameNode().Stripe(meta.Stripe); err != nil || !sm.Encoded {
		t.Fatalf("stripe %d of aborted block not encoded (err %v)", meta.Stripe, err)
	}
	// Live members reconstruct after losing their surviving replica.
	victim := ids[0]
	vm, err := c.NameNode().Block(victim)
	if err != nil {
		t.Fatal(err)
	}
	c.NameNode().MarkDead(vm.Nodes[0])
	got, err := c.ReadBlock(0, victim)
	if err != nil {
		t.Fatalf("degraded read in stripe with aborted member: %v", err)
	}
	if !bytes.Equal(got, contents[victim]) {
		t.Fatal("content mismatch after reconstruction")
	}
}
