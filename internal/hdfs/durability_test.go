package hdfs

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ear/internal/events"
	"ear/internal/events/audit"
	"ear/internal/metalog"
	"ear/internal/placement"
	"ear/internal/topology"
)

// testPlacementCfg is a small cluster both policies accept: 4 racks of 3
// nodes, r=2, (6,4) code, c=2.
func testPlacementCfg(t *testing.T) placement.Config {
	t.Helper()
	top, err := topology.New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return placement.Config{Topology: top, Replicas: 2, K: 4, N: 6, C: 2}
}

// openDurableNN builds a sharded NameNode over a write-ahead log in dir,
// recovering whatever the directory holds. SyncAlways so every returned
// mutation is on disk — copying dir at any point is a valid crash image.
func openDurableNN(t *testing.T, dir, policy string, cfg placement.Config) *NameNode {
	t.Helper()
	nn, err := NewShardedNameNode(cfg, policy, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	l, err := metalog.Open(metalog.Options{Dir: dir, Sync: metalog.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.RecoverMeta(l); err != nil {
		t.Fatal(err)
	}
	return nn
}

// copyDir clones the (flat) metadata directory — the crash image.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// opDriver generates a random but deterministic stream of NameNode
// mutations, exercising every op kind.
type opDriver struct {
	t           *testing.T
	rng         *rand.Rand
	nn          *NameNode
	nodes       int
	uncommitted []topology.BlockID
	committed   []topology.BlockID
	drained     []*placement.StripeInfo
	dead        []topology.NodeID
}

func (d *opDriver) allocate() {
	meta, err := d.nn.AllocateBlock(1024 + d.rng.Intn(1024))
	if err != nil {
		d.t.Fatalf("allocate: %v", err)
	}
	d.uncommitted = append(d.uncommitted, meta.ID)
}

func (d *opDriver) step() {
	switch p := d.rng.Intn(100); {
	case p < 45: // allocate
		d.allocate()
	case p < 70: // commit
		if len(d.uncommitted) == 0 {
			d.allocate()
			return
		}
		i := d.rng.Intn(len(d.uncommitted))
		id := d.uncommitted[i]
		d.uncommitted = append(d.uncommitted[:i], d.uncommitted[i+1:]...)
		if err := d.nn.CommitBlock(id); err != nil {
			d.t.Fatalf("commit %d: %v", id, err)
		}
		d.committed = append(d.committed, id)
	case p < 74: // abort
		if len(d.uncommitted) == 0 {
			return
		}
		i := d.rng.Intn(len(d.uncommitted))
		id := d.uncommitted[i]
		d.uncommitted = append(d.uncommitted[:i], d.uncommitted[i+1:]...)
		if err := d.nn.AbortBlock(id); err != nil {
			d.t.Fatalf("abort %d: %v", id, err)
		}
	case p < 79: // flush open stripes
		if _, err := d.nn.FlushOpenStripes(); err != nil {
			d.t.Fatalf("flush: %v", err)
		}
	case p < 86: // drain the pre-encoding store
		out, err := d.nn.TakePendingStripes()
		if err != nil {
			d.t.Fatalf("take pending: %v", err)
		}
		d.drained = append(d.drained, out...)
	case p < 91: // commit an encoding
		if len(d.drained) == 0 {
			return
		}
		info := d.drained[0]
		d.drained = d.drained[1:]
		plan, err := d.nn.PlanStripe(info)
		if err != nil {
			d.t.Fatalf("plan stripe %d: %v", info.ID, err)
		}
		if err := d.nn.CommitEncoding(info.ID, plan); err != nil {
			d.t.Fatalf("commit encoding %d: %v", info.ID, err)
		}
	case p < 94: // move a block
		if len(d.committed) == 0 {
			return
		}
		id := d.committed[d.rng.Intn(len(d.committed))]
		nodes := []topology.NodeID{
			topology.NodeID(d.rng.Intn(d.nodes)),
			topology.NodeID(d.rng.Intn(d.nodes)),
		}
		if err := d.nn.UpdateBlockLocation(id, nodes); err != nil {
			d.t.Fatalf("move %d: %v", id, err)
		}
	case p < 96: // kill a node
		n := topology.NodeID(d.rng.Intn(d.nodes))
		d.nn.MarkDead(n)
		d.dead = append(d.dead, n)
	case p < 98: // revive a node
		if len(d.dead) == 0 {
			return
		}
		n := d.dead[len(d.dead)-1]
		d.dead = d.dead[:len(d.dead)-1]
		d.nn.MarkAlive(n)
	default: // requeue interrupted encodings
		if _, err := d.nn.RequeueUnencodedStripes(); err != nil {
			d.t.Fatalf("requeue: %v", err)
		}
		d.drained = nil // everything unencoded is back in the queue
	}
}

// TestCrashAtEveryPrefix is the tentpole property: after every single
// mutation of a random op sequence, a crash (the copied log directory) plus
// recovery yields a NameNode whose canonical state encoding is byte-equal
// to the live one's. Mid-sequence snapshots exercise the snapshot + log-tail
// path, not just pure replay.
func TestCrashAtEveryPrefix(t *testing.T) {
	for _, policy := range []string{"ear", "rr"} {
		t.Run(policy, func(t *testing.T) {
			cfg := testPlacementCfg(t)
			dir := t.TempDir()
			nn := openDurableNN(t, dir, policy, cfg)
			defer nn.CloseMeta()
			d := &opDriver{t: t, rng: rand.New(rand.NewSource(11)), nn: nn, nodes: cfg.Topology.Nodes()}
			const steps = 140
			for i := 0; i < steps; i++ {
				d.step()
				if i%37 == 36 {
					if err := nn.SnapshotNow(); err != nil {
						t.Fatalf("step %d: snapshot: %v", i, err)
					}
				}
				want := nn.StateDigest()
				crash := t.TempDir()
				copyDir(t, dir, crash)
				rec := openDurableNN(t, crash, policy, cfg)
				got := rec.StateDigest()
				if err := rec.CloseMeta(); err != nil {
					t.Fatalf("step %d: close recovered log: %v", i, err)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("step %d: recovered state diverges from live state (live %dB, recovered %dB)", i, len(want), len(got))
				}
			}
			if nn.BlockCount() == 0 {
				t.Fatal("driver allocated no blocks; the property was vacuous")
			}
		})
	}
}

// TestRecoveredStateBackfillAuditsClean drives traffic through encoding,
// recovers from the crash image, backfills the canonical event stream via
// PublishRecoveredState, and asserts the placement auditor — which models
// state purely from events — finds the recovered layout invariant-clean.
func TestRecoveredStateBackfillAuditsClean(t *testing.T) {
	cfg := testPlacementCfg(t)
	dir := t.TempDir()
	nn := openDurableNN(t, dir, "ear", cfg)
	defer nn.CloseMeta()
	d := &opDriver{t: t, rng: rand.New(rand.NewSource(5)), nn: nn, nodes: cfg.Topology.Nodes()}
	for i := 0; i < 200; i++ {
		d.step()
	}
	// Finish cleanly: commit everything outstanding, encode every stripe.
	for _, id := range d.uncommitted {
		if err := nn.CommitBlock(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nn.FlushOpenStripes(); err != nil {
		t.Fatal(err)
	}
	out, err := nn.TakePendingStripes()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range append(d.drained, out...) {
		plan, err := nn.PlanStripe(info)
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.CommitEncoding(info.ID, plan); err != nil {
			t.Fatal(err)
		}
	}

	crash := t.TempDir()
	copyDir(t, dir, crash)
	rec := openDurableNN(t, crash, "ear", cfg)
	defer rec.CloseMeta()
	if rec.RecoveredOps() == 0 {
		t.Fatal("recovery replayed no ops")
	}

	j := events.NewJournal(1 << 14)
	a := audit.New(cfg.Topology, audit.Config{Replicas: cfg.Replicas, C: cfg.C, CheckCoreRack: true})
	defer a.Attach(j)()
	rec.PublishRecoveredState(j)

	rep := a.Report()
	if !rep.Clean {
		t.Fatalf("recovered state fails audit: ongoing %+v transient %+v", rep.Ongoing, rep.Transient)
	}
	if rep.Blocks != rec.BlockCount() || rep.Blocks == 0 {
		t.Fatalf("auditor saw %d blocks, NameNode holds %d", rep.Blocks, rec.BlockCount())
	}
	if rep.Encoded == 0 {
		t.Fatal("no encoded stripes reached the auditor; the audit was vacuous")
	}
}

// TestRecoveryWithoutLogIsNoop: a NameNode without a log keeps the
// pre-durability behavior and reports no meta stats.
func TestRecoveryWithoutLogIsNoop(t *testing.T) {
	cfg := testPlacementCfg(t)
	nn, err := NewShardedNameNode(cfg, "ear", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nn.MetaStats(); ok {
		t.Fatal("MetaStats should report no log")
	}
	if err := nn.SnapshotNow(); err == nil {
		t.Fatal("SnapshotNow without a log should fail")
	}
	if _, err := nn.AllocateBlock(1024); err != nil {
		t.Fatalf("in-memory allocation: %v", err)
	}
	if err := nn.CloseMeta(); err != nil {
		t.Fatalf("CloseMeta without a log: %v", err)
	}
}
