package hdfs

import (
	"math/rand"
	"sync"
	"testing"

	"ear/internal/placement"
	"ear/internal/topology"
)

// testPlacementConfig mirrors testConfig's geometry at the placement layer.
func testPlacementConfig(t *testing.T) placement.Config {
	t.Helper()
	top, err := topology.New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	return placement.Config{Topology: top, Replicas: 3, K: 4, N: 6, C: 1}
}

// encodedStripeFixture builds a sharded EAR NameNode with at least one
// encoded stripe and returns it with the stripe's ID.
func encodedStripeFixture(t *testing.T) (*NameNode, topology.StripeID) {
	t.Helper()
	nn, err := NewShardedNameNode(testPlacementConfig(t), "ear", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		meta, err := nn.AllocateBlock(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.CommitBlock(meta.ID); err != nil {
			t.Fatal(err)
		}
	}
	nn.FlushOpenStripes()
	infos, err := nn.TakePendingStripes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no stripes sealed")
	}
	info := infos[0]
	plan, err := nn.PlanStripe(info)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.CommitEncoding(info.ID, plan); err != nil {
		t.Fatal(err)
	}
	return nn, info.ID
}

// TestStripeSnapshotRace is the regression test for the data race Stripe
// used to have: it returned the live *StripeMeta while UpdateParityLocation
// mutated Plan.Parity under the NameNode lock, so callers iterating Parity
// raced the mover. With Stripe returning a deep copy, this passes -race.
func TestStripeSnapshotRace(t *testing.T) {
	nn, id := encodedStripeFixture(t)
	sm, err := nn.Stripe(id)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Plan == nil || len(sm.Plan.Parity) == 0 {
		t.Fatal("fixture stripe has no parity plan")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				if rng.Intn(2) == 0 {
					node := topology.NodeID(rng.Intn(nn.cfg.Topology.Nodes()))
					if err := nn.UpdateParityLocation(id, rng.Intn(len(sm.Plan.Parity)), node); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				snap, err := nn.Stripe(id)
				if err != nil {
					t.Error(err)
					return
				}
				for _, n := range snap.Plan.Parity {
					_ = n
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// The snapshot taken before the writers ran is still intact: deep copy
	// means later UpdateParityLocation calls cannot reach it.
	again, err := nn.Stripe(id)
	if err != nil {
		t.Fatal(err)
	}
	again.Plan.Parity[0] = -99
	check, err := nn.Stripe(id)
	if err != nil {
		t.Fatal(err)
	}
	if check.Plan.Parity[0] == -99 {
		t.Error("mutating a returned snapshot leaked into NameNode state")
	}
}

// TestConcurrentAllocateBlockGeometry hammers the sharded allocation path
// from many goroutines (run under -race in CI) and then checks every sealed
// stripe kept valid EAR geometry: replica counts, distinct nodes, first
// replica in the stripe's core rack, and block-table consistency.
func TestConcurrentAllocateBlockGeometry(t *testing.T) {
	cfg := testPlacementConfig(t)
	nn, err := NewShardedNameNode(cfg, "ear", 11, false)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	ids := make([][]topology.BlockID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				meta, err := nn.AllocateBlock(1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := nn.CommitBlock(meta.ID); err != nil {
					t.Error(err)
					return
				}
				ids[g] = append(ids[g], meta.ID)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := nn.BlockCount(); got != goroutines*perG {
		t.Fatalf("BlockCount = %d, want %d", got, goroutines*perG)
	}
	// Every ID allocated exactly once.
	seen := make(map[topology.BlockID]bool, goroutines*perG)
	for _, chunk := range ids {
		for _, id := range chunk {
			if seen[id] {
				t.Fatalf("block ID %d allocated twice", id)
			}
			seen[id] = true
		}
	}
	nn.FlushOpenStripes()
	infos, err := nn.TakePendingStripes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no stripes sealed")
	}
	for _, info := range infos {
		if len(info.Blocks) != len(info.Placements) {
			t.Fatalf("stripe %d: %d blocks vs %d placements", info.ID, len(info.Blocks), len(info.Placements))
		}
		if len(info.Blocks) > cfg.K {
			t.Fatalf("stripe %d holds %d blocks, max k=%d", info.ID, len(info.Blocks), cfg.K)
		}
		for i, pl := range info.Placements {
			if len(pl.Nodes) != cfg.Replicas {
				t.Fatalf("stripe %d block %d: %d replicas", info.ID, pl.Block, len(pl.Nodes))
			}
			distinct := map[topology.NodeID]bool{}
			for _, n := range pl.Nodes {
				if distinct[n] {
					t.Fatalf("stripe %d block %d: duplicate node %d", info.ID, pl.Block, n)
				}
				distinct[n] = true
			}
			r, err := cfg.Topology.RackOf(pl.Nodes[0])
			if err != nil {
				t.Fatal(err)
			}
			if r != info.CoreRack {
				t.Fatalf("stripe %d block %d: first replica in rack %d, core rack %d",
					info.ID, info.Blocks[i], r, info.CoreRack)
			}
			meta, err := nn.Block(pl.Block)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Stripe != info.ID {
				t.Fatalf("block %d records stripe %d, grouped into %d", pl.Block, meta.Stripe, info.ID)
			}
		}
		// The sealed stripe still passes the paper's feasibility check.
		plan, err := nn.PlanStripe(info)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Violation {
			t.Fatalf("stripe %d sealed with infeasible layout", info.ID)
		}
	}
}

// TestConcurrentWritesAuditorClean drives the full client write path from
// many goroutines on an EAR cluster with the live auditor attached; the run
// must end with zero invariant violations, transient or ongoing.
func TestConcurrentWritesAuditorClean(t *testing.T) {
	c := newTestCluster(t, "ear")
	_, a := attachAuditor(c)
	const goroutines = 6
	const perG = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				data := make([]byte, c.Config().BlockSizeBytes)
				rng.Read(data)
				client := topology.NodeID(rng.Intn(c.Topology().Nodes()))
				if _, err := c.WriteBlock(client, data); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	r := a.Report()
	if !r.Clean {
		t.Fatalf("concurrent EAR writes not auditor-clean: ongoing=%+v transient=%+v",
			r.Ongoing, r.Transient)
	}
}

// TestEncodedStripesSorted encodes stripes out of order and checks the
// listing comes back in ascending stripe-ID order, not map order.
func TestEncodedStripesSorted(t *testing.T) {
	nn, err := NewShardedNameNode(testPlacementConfig(t), "ear", 13, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		meta, err := nn.AllocateBlock(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.CommitBlock(meta.ID); err != nil {
			t.Fatal(err)
		}
	}
	nn.FlushOpenStripes()
	infos, err := nn.TakePendingStripes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < 3 {
		t.Fatalf("only %d stripes sealed, want >= 3", len(infos))
	}
	// Encode in scrambled order.
	order := rand.New(rand.NewSource(17)).Perm(len(infos))
	for _, i := range order {
		plan, err := nn.PlanStripe(infos[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.CommitEncoding(infos[i].ID, plan); err != nil {
			t.Fatal(err)
		}
	}
	got := nn.EncodedStripes()
	if len(got) != len(infos) {
		t.Fatalf("EncodedStripes lists %d stripes, want %d", len(got), len(infos))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("EncodedStripes out of order: %v", got)
		}
	}
}

// TestSerializedMetadataMatchesSharded checks the A/B knob changes only
// concurrency, not behavior: a serialized NameNode produces structurally
// valid stripes exactly like the sharded one.
func TestSerializedMetadataMatchesSharded(t *testing.T) {
	cfg := testConfig("ear")
	cfg.SerializeMetadata = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	rng := rand.New(rand.NewSource(23))
	writeBlocks(t, c, 2*cfg.K, rng)
	c.NameNode().FlushOpenStripes()
	if _, err := c.RaidNode().EncodeAll(); err != nil {
		t.Fatal(err)
	}
	if bad, err := c.RaidNode().PlacementMonitor(); err != nil || len(bad) != 0 {
		t.Fatalf("serialized cluster produced violating stripes %v (err %v)", bad, err)
	}
}
