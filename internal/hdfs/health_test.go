package hdfs

import (
	"context"
	"testing"
	"time"

	"ear/internal/events"
	"ear/internal/topology"
)

// newHealthCluster builds a journaled cluster plus a monitor tuned for
// driving Tick directly (no background loop).
func newHealthCluster(t *testing.T) (*Cluster, *events.Journal, *HealthMonitor) {
	t.Helper()
	c := newTestCluster(t, "rr")
	jnl := events.NewJournal(4096)
	c.SetJournal(jnl)
	h := NewHealthMonitor(c, HealthConfig{
		Interval:     50 * time.Millisecond,
		ProbeTimeout: 5 * time.Second,
	})
	t.Cleanup(h.Stop)
	return c, jnl, h
}

// tickUntil runs scoring rounds until pred holds, failing after maxTicks.
func tickUntil(t *testing.T, h *HealthMonitor, maxTicks int, what string, pred func() bool) {
	t.Helper()
	for i := 0; i < maxTicks; i++ {
		h.Tick(context.Background())
		if pred() {
			return
		}
	}
	t.Fatalf("%s: condition not reached within %d ticks", what, maxTicks)
}

func isDegraded(h *HealthMonitor, n topology.NodeID) bool {
	for _, d := range h.Degraded() {
		if d == n {
			return true
		}
	}
	return false
}

func TestHealthAllNodesHealthyAtRest(t *testing.T) {
	_, _, h := newHealthCluster(t)
	h.Tick(context.Background())
	h.Tick(context.Background())
	rep := h.Report()
	for _, nh := range rep {
		if nh.Degraded {
			t.Errorf("node %d degraded in an idle healthy cluster (score %.1f)", nh.Node, nh.Score)
		}
		if nh.Score < 50 {
			t.Errorf("node %d score %.1f < 50 in a healthy cluster", nh.Node, nh.Score)
		}
		if nh.Heartbeat <= 0 {
			t.Errorf("node %d never probed", nh.Node)
		}
	}
	if got := h.Degraded(); len(got) != 0 {
		t.Errorf("Degraded() = %v, want empty", got)
	}
}

func TestHealthSlowNodeDegradesAndRecovers(t *testing.T) {
	c, jnl, h := newHealthCluster(t)
	slow := topology.NodeID(4)

	// Prime: healthy baseline.
	h.Tick(context.Background())
	h.Tick(context.Background())
	if isDegraded(h, slow) {
		t.Fatalf("node %d degraded before being slowed", slow)
	}

	// Throttle the node's links to ~1/4000th of the cluster default: its
	// heartbeat probes and every transfer it takes part in crawl.
	orig, err := c.Fabric().NodeRate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fabric().SetNodeRate(slow, 16<<10); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, h, 5, "degrade", func() bool { return isDegraded(h, slow) })

	evs, _, _ := jnl.Since(0, 0, events.Filter{Type: events.NodeDegraded})
	found := false
	for _, e := range evs {
		if e.Node == slow {
			found = true
			if e.Subsystem != "health" {
				t.Errorf("NodeDegraded subsystem = %q, want health", e.Subsystem)
			}
			if e.Detail == "" {
				t.Error("NodeDegraded carries no score breakdown")
			}
		} else {
			t.Errorf("unexpected NodeDegraded for node %d", e.Node)
		}
	}
	if !found {
		t.Fatalf("no NodeDegraded event for node %d", slow)
	}
	if rep := h.Report(); rep[slow].Score >= 50 {
		t.Errorf("slowed node score = %.1f, want < 50", rep[slow].Score)
	}

	// Restore the link and confirm hysteresis releases the node.
	if err := c.Fabric().SetNodeRate(slow, orig); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, h, 10, "recover", func() bool { return !isDegraded(h, slow) })
	recEvs, _, _ := jnl.Since(0, 0, events.Filter{Type: events.NodeRecovered})
	found = false
	for _, e := range recEvs {
		if e.Node == slow {
			found = true
		}
	}
	if !found {
		t.Fatalf("no NodeRecovered event for node %d", slow)
	}
}

func TestHealthHealthyNeighborsStayHealthy(t *testing.T) {
	c, _, h := newHealthCluster(t)
	slow := topology.NodeID(0)
	h.Tick(context.Background())
	if err := c.Fabric().SetNodeRate(slow, 16<<10); err != nil {
		t.Fatal(err)
	}
	tickUntil(t, h, 5, "degrade", func() bool { return isDegraded(h, slow) })
	// The slow node's rack peers exchange probes with it, yet their own
	// links are fine: they must not be dragged below the threshold.
	if got := h.Degraded(); len(got) != 1 || got[0] != slow {
		t.Errorf("Degraded() = %v, want exactly [%d]", got, slow)
	}
}

func TestHealthDeadNodesSkipped(t *testing.T) {
	c, jnl, h := newHealthCluster(t)
	deadNode := topology.NodeID(2)
	c.NameNode().MarkDead(deadNode)
	h.Tick(context.Background())
	h.Tick(context.Background())
	rep := h.Report()
	if !rep[deadNode].Dead {
		t.Errorf("node %d not reported dead", deadNode)
	}
	if rep[deadNode].Score != 0 {
		t.Errorf("dead node score = %.1f, want 0", rep[deadNode].Score)
	}
	// Death is the NameNode's call (NodeDead), not the slow-node
	// detector's: no NodeDegraded may fire for a dead node.
	evs, _, _ := jnl.Since(0, 0, events.Filter{Type: events.NodeDegraded})
	for _, e := range evs {
		if e.Node == deadNode {
			t.Errorf("NodeDegraded fired for dead node %d", deadNode)
		}
	}
	// NodeDead transitions do feed the failure signal of the node once it
	// returns: failures decay but start positive.
	if rep[deadNode].Failures <= 0 {
		t.Errorf("dead node failures = %v, want > 0", rep[deadNode].Failures)
	}
}

func TestHealthStartStopLoop(t *testing.T) {
	_, _, h := newHealthCluster(t)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := h.Report()
		if rep[0].Heartbeat > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never probed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
}
