package hdfs

import (
	"fmt"
	"time"

	"ear/internal/blockstore"
	"ear/internal/topology"
)

// DataKey builds the store key for a data block replica.
func DataKey(id topology.BlockID) blockstore.Key {
	return blockstore.Key{ID: int64(id), Kind: blockstore.Data}
}

// ParityKey builds the store key for parity block idx of a stripe. Stripe
// IDs and parity indices are folded into one ID space.
func ParityKey(stripe topology.StripeID, idx int) blockstore.Key {
	return blockstore.Key{ID: int64(stripe)*1024 + int64(idx), Kind: blockstore.Parity}
}

// WriteBlock writes one block from the given client node: the NameNode
// allocates the block and decides placement, then the data flows down the
// HDFS replication pipeline (client -> replica 1 -> replica 2 -> ...), with
// every hop shaped by the fabric.
func (c *Cluster) WriteBlock(client topology.NodeID, data []byte) (topology.BlockID, error) {
	if len(data) != c.cfg.BlockSizeBytes {
		return 0, fmt.Errorf("%w: block of %d bytes, configured size %d",
			ErrInvalidConfig, len(data), c.cfg.BlockSizeBytes)
	}
	if m := c.metrics(); m != nil {
		defer func(t0 time.Time) { m.writeLat.Observe(time.Since(t0).Seconds()) }(time.Now())
	}
	meta, err := c.nn.AllocateBlock(len(data))
	if err != nil {
		return 0, err
	}
	payload := data
	prev := client
	for _, n := range meta.Nodes {
		payload, err = c.fab.Transfer(prev, n, payload)
		if err != nil {
			return 0, err
		}
		dn, err := c.DataNodeOf(n)
		if err != nil {
			return 0, err
		}
		if err := dn.Store.Put(DataKey(meta.ID), payload); err != nil {
			return 0, fmt.Errorf("replica on node %d: %w", n, err)
		}
		prev = n
	}
	if err := c.nn.CommitBlock(meta.ID); err != nil {
		return 0, err
	}
	return meta.ID, nil
}

// chooseReplica picks the replica a reader should use: the reader itself if
// it holds one, else a same-rack replica, else a uniformly random one.
func (c *Cluster) chooseReplica(nodes []topology.NodeID, reader topology.NodeID) (topology.NodeID, error) {
	if len(nodes) == 0 {
		return 0, ErrNoReplica
	}
	readerRack, err := c.top.RackOf(reader)
	if err != nil {
		return 0, err
	}
	var sameRack []topology.NodeID
	for _, n := range nodes {
		if n == reader {
			return n, nil
		}
		rk, err := c.top.RackOf(n)
		if err != nil {
			return 0, err
		}
		if rk == readerRack {
			sameRack = append(sameRack, n)
		}
	}
	if len(sameRack) > 0 {
		return sameRack[c.randIntn(len(sameRack))], nil
	}
	return nodes[c.randIntn(len(nodes))], nil
}

// ReadBlock reads a block to the client node from its nearest live replica.
// If every replica is lost but the block's stripe is encoded, the read
// degrades to erasure-coded reconstruction.
func (c *Cluster) ReadBlock(client topology.NodeID, id topology.BlockID) ([]byte, error) {
	if m := c.metrics(); m != nil {
		defer func(t0 time.Time) { m.readLat.Observe(time.Since(t0).Seconds()) }(time.Now())
	}
	live, err := c.nn.LiveReplicas(id)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		return c.DegradedRead(client, id)
	}
	src, err := c.chooseReplica(live, client)
	if err != nil {
		return nil, err
	}
	dn, err := c.DataNodeOf(src)
	if err != nil {
		return nil, err
	}
	data, err := dn.Store.Get(DataKey(id))
	if err != nil {
		return nil, err
	}
	return c.fab.Transfer(src, client, data)
}

// stripeSurvivors gathers up to k live blocks of a stripe (data and
// parity), transferring each to the gatherer node. It returns them indexed
// by stripe position.
func (c *Cluster) stripeSurvivors(gatherer topology.NodeID, sm *StripeMeta) (map[int][]byte, error) {
	if sm.Plan == nil {
		return nil, fmt.Errorf("%w: stripe %d not encoded", ErrUnknownStripe, sm.Info.ID)
	}
	// Parity occupies stripe positions k..n-1 of the code geometry even for
	// short stripes (positions len(Blocks)..k-1 are zero padding).
	k := c.cfg.K
	present := make(map[int][]byte, c.cfg.K)
	fetch := func(node topology.NodeID, key blockstore.Key, pos int) error {
		if c.nn.IsDead(node) {
			return nil
		}
		dn, err := c.DataNodeOf(node)
		if err != nil {
			return err
		}
		data, err := dn.Store.Get(key)
		if err != nil {
			return nil // missing or corrupt: treat as erased
		}
		data, err = c.fab.Transfer(node, gatherer, data)
		if err != nil {
			return err
		}
		present[pos] = data
		return nil
	}
	// Order candidate blocks so survivors in the gatherer's rack come
	// first: each local fetch replaces one cross-rack download (the
	// Section III-D recovery-traffic saving of c > 1).
	gatherRack, err := c.top.RackOf(gatherer)
	if err != nil {
		return nil, err
	}
	type candidate struct {
		node topology.NodeID
		key  blockstore.Key
		pos  int
	}
	var local, remote []candidate
	add := func(cand candidate) error {
		r, err := c.top.RackOf(cand.node)
		if err != nil {
			return err
		}
		if r == gatherRack {
			local = append(local, cand)
		} else {
			remote = append(remote, cand)
		}
		return nil
	}
	for i, b := range sm.Info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			return nil, err
		}
		if len(live) == 0 {
			continue
		}
		if err := add(candidate{node: live[0], key: DataKey(b), pos: i}); err != nil {
			return nil, err
		}
	}
	for j, node := range sm.Plan.Parity {
		if err := add(candidate{node: node, key: ParityKey(sm.Info.ID, j), pos: k + j}); err != nil {
			return nil, err
		}
	}
	for _, cand := range append(local, remote...) {
		if len(present) == c.cfg.K {
			break
		}
		if err := fetch(cand.node, cand.key, cand.pos); err != nil {
			return nil, err
		}
	}
	return present, nil
}

// padStripe extends the survivor map with zero blocks for the positions of
// a short stripe (fewer than k data blocks, zero-padded at encode time).
func (c *Cluster) padStripe(present map[int][]byte, sm *StripeMeta) {
	for i := len(sm.Info.Blocks); i < c.cfg.K; i++ {
		present[i] = make([]byte, c.cfg.BlockSizeBytes)
	}
}

// DegradedRead reconstructs a lost block from its stripe: the client
// gathers any k surviving blocks and decodes (Section VI's degraded read).
func (c *Cluster) DegradedRead(client topology.NodeID, id topology.BlockID) ([]byte, error) {
	meta, err := c.nn.Block(id)
	if err != nil {
		return nil, err
	}
	if meta.Stripe < 0 {
		return nil, fmt.Errorf("%w: block %d lost before encoding", ErrNoReplica, id)
	}
	sm, err := c.nn.Stripe(meta.Stripe)
	if err != nil {
		return nil, err
	}
	pos := -1
	for i, b := range sm.Info.Blocks {
		if b == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("%w: block %d missing from stripe %d", ErrUnknownStripe, id, meta.Stripe)
	}
	present, err := c.stripeSurvivors(client, sm)
	if err != nil {
		return nil, err
	}
	c.padStripe(present, sm)
	return c.coder.ReconstructBlock(present, pos)
}

// RepairBlock rebuilds a lost block onto a fresh live node and updates the
// NameNode, the RaidNode recovery path. It returns the chosen node.
func (c *Cluster) RepairBlock(id topology.BlockID) (topology.NodeID, error) {
	meta, err := c.nn.Block(id)
	if err != nil {
		return 0, err
	}
	if meta.Stripe < 0 {
		return 0, fmt.Errorf("%w: block %d has no stripe", ErrNoReplica, id)
	}
	sm, err := c.nn.Stripe(meta.Stripe)
	if err != nil {
		return 0, err
	}
	target, err := c.pickRepairNode(sm)
	if err != nil {
		return 0, err
	}
	data, err := c.DegradedRead(target, id)
	if err != nil {
		return 0, err
	}
	dn, err := c.DataNodeOf(target)
	if err != nil {
		return 0, err
	}
	if err := dn.Store.Put(DataKey(id), data); err != nil {
		return 0, err
	}
	if err := c.nn.UpdateBlockLocation(id, []topology.NodeID{target}); err != nil {
		return 0, err
	}
	return target, nil
}

// pickRepairNode selects a live node holding no block of the stripe, in a
// rack whose stripe population stays within c (preserving fault tolerance).
func (c *Cluster) pickRepairNode(sm *StripeMeta) (topology.NodeID, error) {
	used := make(map[topology.NodeID]bool)
	rackCount := make(map[topology.RackID]int)
	note := func(n topology.NodeID) error {
		if c.nn.IsDead(n) {
			return nil
		}
		used[n] = true
		r, err := c.top.RackOf(n)
		if err != nil {
			return err
		}
		rackCount[r]++
		return nil
	}
	for _, b := range sm.Info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			return 0, err
		}
		for _, n := range live {
			if err := note(n); err != nil {
				return 0, err
			}
		}
	}
	if sm.Plan != nil {
		for _, n := range sm.Plan.Parity {
			if err := note(n); err != nil {
				return 0, err
			}
		}
	}
	maxPerRack := c.cfg.C
	if maxPerRack <= 0 {
		maxPerRack = 1
	}
	// Prefer racks that already hold blocks of the stripe but have spare
	// capacity: co-locating the repaired block with survivors minimizes
	// the cross-rack recovery downloads (Section III-D). Fall back to any
	// rack with spare capacity.
	pick := func(wantCoLocated bool) (topology.NodeID, bool, error) {
		start := c.randIntn(c.top.Nodes())
		for off := 0; off < c.top.Nodes(); off++ {
			n := topology.NodeID((start + off) % c.top.Nodes())
			if c.nn.IsDead(n) || used[n] {
				continue
			}
			r, err := c.top.RackOf(n)
			if err != nil {
				return 0, false, err
			}
			if rackCount[r] >= maxPerRack {
				continue
			}
			if wantCoLocated && rackCount[r] == 0 {
				continue
			}
			return n, true, nil
		}
		return 0, false, nil
	}
	for _, coLocated := range []bool{true, false} {
		n, ok, err := pick(coLocated)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("hdfs: no eligible repair node for stripe %d", sm.Info.ID)
}
