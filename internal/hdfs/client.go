package hdfs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ear/internal/blockstore"
	"ear/internal/events"
	"ear/internal/fabric"
	"ear/internal/telemetry"
	"ear/internal/tenant"
	"ear/internal/topology"
	"ear/internal/workgroup"
)

// gatherFanIn bounds the concurrent source fetches of one stripe gather.
const gatherFanIn = 16

// DataKey builds the store key for a data block replica.
func DataKey(id topology.BlockID) blockstore.Key {
	return blockstore.Key{ID: int64(id), Kind: blockstore.Data}
}

// ParityKey builds the store key for parity block idx of a stripe. Stripe
// IDs and parity indices are folded into one ID space.
func ParityKey(stripe topology.StripeID, idx int) blockstore.Key {
	return blockstore.Key{ID: int64(stripe)*1024 + int64(idx), Kind: blockstore.Parity}
}

// transferShaped charges a src->dst transfer of n bytes on the fabric
// without materializing a payload copy; the caller owns the destination
// buffer. Shaping and byte accounting match fabric.TransferCtx exactly
// (that helper is OpenStream + Send + copy), so pooled data paths stay
// indistinguishable from allocating ones on the wire.
func (c *Cluster) transferShaped(ctx context.Context, src, dst topology.NodeID, n int) error {
	st, err := c.fab.OpenStream(ctx, src, dst)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Send(ctx, n)
}

// relocateBlock moves one stored block from src to dst through a pooled
// buffer: checksum-verified read, shaped transfer, store at dst, delete at
// src. It returns the bytes moved.
func (c *Cluster) relocateBlock(ctx context.Context, key blockstore.Key, src, dst topology.NodeID) (int64, error) {
	srcDN, err := c.DataNodeOf(src)
	if err != nil {
		return 0, err
	}
	dstDN, err := c.DataNodeOf(dst)
	if err != nil {
		return 0, err
	}
	buf := c.bufPool.Get(c.cfg.BlockSizeBytes)
	defer c.bufPool.Put(buf)
	if err := srcDN.Store.GetInto(key, buf); err != nil {
		return 0, err
	}
	if err := c.transferShaped(ctx, src, dst, len(buf)); err != nil {
		return 0, err
	}
	if err := dstDN.Store.Put(key, buf); err != nil {
		return 0, err
	}
	if err := srcDN.Store.Delete(key); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// WriteBlock writes one block from the given client node with a background
// context. See WriteBlockCtx.
func (c *Cluster) WriteBlock(client topology.NodeID, data []byte) (topology.BlockID, error) {
	return c.WriteBlockCtx(context.Background(), client, data)
}

// WriteBlockCtx writes one block from the given client node: the NameNode
// allocates the block and decides placement, then the data flows down the
// HDFS replication pipeline (client -> replica 1 -> replica 2 -> ...) in
// fabric chunks, every hop shaped by the fabric. Hops run concurrently —
// while replica 1 forwards chunk i to replica 2 the client is already
// sending chunk i+1 — so an r-way write costs roughly one block transfer
// plus the pipeline fill, not r transfers (Config.SequentialDataPath
// restores the whole-block store-and-forward chain for comparison).
//
// Cancelling ctx aborts the write within one chunk reservation per hop; the
// allocation is then abandoned via NameNode.AbortBlock and no replica is
// committed to any store.
func (c *Cluster) WriteBlockCtx(ctx context.Context, client topology.NodeID, data []byte) (topology.BlockID, error) {
	if len(data) != c.cfg.BlockSizeBytes {
		return 0, fmt.Errorf("%w: block of %d bytes, configured size %d",
			ErrInvalidConfig, len(data), c.cfg.BlockSizeBytes)
	}
	if m := c.metrics(); m != nil {
		defer func(t0 time.Time) { m.writeLat.Observe(time.Since(t0).Seconds()) }(time.Now())
	}
	span, ctx := c.opSpan(ctx, "client", "client.write-block")
	span.Arg("node", strconv.Itoa(int(client)))
	defer span.End()
	meta, err := c.nn.AllocateBlockCtx(ctx, len(data))
	if err != nil {
		return 0, err
	}
	span.Arg("block", strconv.FormatInt(int64(meta.ID), 10))
	if c.cfg.SequentialDataPath {
		err = c.writeStoreAndForward(ctx, client, meta, data)
	} else {
		err = c.writePipelined(ctx, client, meta, data)
	}
	if err != nil {
		c.abortWrite(meta)
		return 0, err
	}
	if err := c.nn.CommitBlockCtx(ctx, meta.ID); err != nil {
		return 0, err
	}
	c.acct.Charge(tenant.FromContext(ctx), "write", 1, int64(len(data)))
	return meta.ID, nil
}

// abortWrite abandons a failed write: the allocation is voided on the
// NameNode and any replica a hop already stored is deleted (best effort —
// the block is already unreachable once aborted).
func (c *Cluster) abortWrite(meta *BlockMeta) {
	_ = c.nn.AbortBlock(meta.ID)
	for _, n := range meta.Nodes {
		if dn, err := c.DataNodeOf(n); err == nil {
			dn.Store.Delete(DataKey(meta.ID))
		}
	}
}

// writeStoreAndForward is the legacy data path: each hop receives the whole
// block, stores it, then forwards it to the next replica. An r-way write
// costs r sequential block transfers.
func (c *Cluster) writeStoreAndForward(ctx context.Context, client topology.NodeID, meta *BlockMeta, data []byte) error {
	payload := data
	prev := client
	for _, n := range meta.Nodes {
		var err error
		payload, err = c.fab.TransferCtx(ctx, prev, n, payload)
		if err != nil {
			return err
		}
		dn, err := c.DataNodeOf(n)
		if err != nil {
			return err
		}
		if err := dn.Store.Put(DataKey(meta.ID), payload); err != nil {
			return fmt.Errorf("replica on node %d: %w", n, err)
		}
		c.publishReplicaWritten(ctx, meta.ID, n, len(payload))
		prev = n
	}
	return nil
}

// publishReplicaWritten journals the durable landing of one replica,
// stamped with the context's trace.
func (c *Cluster) publishReplicaWritten(ctx context.Context, id topology.BlockID, n topology.NodeID, size int) {
	j := c.Journal()
	if j == nil {
		return
	}
	ev := events.New(events.ReplicaWritten, "datanode")
	ev.Block = id
	ev.Node = n
	ev.Bytes = int64(size)
	ev.Trace = telemetry.TraceFromContext(ctx)
	j.Publish(ev)
}

// writePipelined streams the block down the replication chain chunk by
// chunk. Hop i owns one fabric stream (previous replica -> replica i) and a
// staging buffer; it forwards each chunk as soon as the upstream hop has
// delivered it, so all hops transfer concurrently. Replicas are committed
// to their stores only after every hop finishes, so a failed or canceled
// write leaves nothing behind.
func (c *Cluster) writePipelined(ctx context.Context, client topology.NodeID, meta *BlockMeta, data []byte) error {
	nHops := len(meta.Nodes)
	if nHops == 0 {
		return fmt.Errorf("%w: block %d placed on no nodes", ErrNoReplica, meta.ID)
	}
	nChunks := (len(data) + fabric.ChunkBytes - 1) / fabric.ChunkBytes
	start := time.Now()

	// ready[i] carries chunk indices whose bytes have landed in hop i's
	// source buffer (the original data for hop 0, hop i-1's staging buffer
	// otherwise). Buffered to nChunks so a fast upstream never blocks; the
	// group context covers abandonment.
	ready := make([]chan int, nHops)
	for i := range ready {
		ready[i] = make(chan int, nChunks)
	}
	for idx := 0; idx < nChunks; idx++ {
		ready[0] <- idx
	}
	close(ready[0])

	bufs := make([][]byte, nHops)
	for i := range bufs {
		bufs[i] = make([]byte, len(data))
	}

	parent := telemetry.SpanFromContext(ctx)
	g, gctx := workgroup.WithContext(ctx)
	for i := 0; i < nHops; i++ {
		i := i
		src := client
		srcBuf := data
		if i > 0 {
			src = meta.Nodes[i-1]
			srcBuf = bufs[i-1]
		}
		dst := meta.Nodes[i]
		g.Go(func() error {
			// Hops run concurrently, so each sits on its own display track;
			// the span belongs to the receiving DataNode.
			hop := parent.ChildTrack("datanode.pipeline-hop").
				Arg(telemetry.ComponentArg, "datanode").
				Arg("node", strconv.Itoa(int(dst))).
				Arg("hop", strconv.Itoa(i))
			defer hop.End()
			st, err := c.fab.OpenStream(gctx, src, dst)
			if err != nil {
				return err
			}
			defer st.Close()
			first := true
			for {
				var idx int
				var ok bool
				select {
				case idx, ok = <-ready[i]:
					if !ok {
						if i+1 < nHops {
							close(ready[i+1])
						}
						return nil
					}
				case <-gctx.Done():
					return gctx.Err()
				}
				lo := idx * fabric.ChunkBytes
				hi := min(lo+fabric.ChunkBytes, len(data))
				if err := st.Send(gctx, hi-lo); err != nil {
					return err
				}
				copy(bufs[i][lo:hi], srcBuf[lo:hi])
				if first && i == nHops-1 {
					first = false
					if m := c.metrics(); m != nil {
						m.pipeFill.Observe(time.Since(start).Seconds())
					}
				}
				if i+1 < nHops {
					ready[i+1] <- idx
				}
			}
		})
	}
	if err := g.Wait(); err != nil {
		return err
	}
	for i, n := range meta.Nodes {
		dn, err := c.DataNodeOf(n)
		if err != nil {
			return err
		}
		if err := dn.Store.Put(DataKey(meta.ID), bufs[i]); err != nil {
			return fmt.Errorf("replica on node %d: %w", n, err)
		}
		c.publishReplicaWritten(ctx, meta.ID, n, len(bufs[i]))
	}
	return nil
}

// chooseReplica picks the replica a reader should use: the reader itself if
// it holds one, else a same-rack replica, else a uniformly random one.
func (c *Cluster) chooseReplica(nodes []topology.NodeID, reader topology.NodeID) (topology.NodeID, error) {
	if len(nodes) == 0 {
		return 0, ErrNoReplica
	}
	readerRack, err := c.top.RackOf(reader)
	if err != nil {
		return 0, err
	}
	var sameRack []topology.NodeID
	for _, n := range nodes {
		if n == reader {
			return n, nil
		}
		rk, err := c.top.RackOf(n)
		if err != nil {
			return 0, err
		}
		if rk == readerRack {
			sameRack = append(sameRack, n)
		}
	}
	if len(sameRack) > 0 {
		return sameRack[c.randIntn(len(sameRack))], nil
	}
	return nodes[c.randIntn(len(nodes))], nil
}

// ReadBlock reads a block with a background context. See ReadBlockCtx.
func (c *Cluster) ReadBlock(client topology.NodeID, id topology.BlockID) ([]byte, error) {
	return c.ReadBlockCtx(context.Background(), client, id)
}

// ReadBlockCtx reads a block to the client node from its nearest live
// replica. If every replica is lost but the block's stripe is encoded, the
// read degrades to erasure-coded reconstruction. Cancelling ctx aborts the
// transfer within one chunk reservation.
func (c *Cluster) ReadBlockCtx(ctx context.Context, client topology.NodeID, id topology.BlockID) ([]byte, error) {
	if m := c.metrics(); m != nil {
		defer func(t0 time.Time) { m.readLat.Observe(time.Since(t0).Seconds()) }(time.Now())
	}
	span, ctx := c.opSpan(ctx, "client", "client.read-block")
	span.Arg("block", strconv.FormatInt(int64(id), 10))
	defer span.End()
	live, err := c.nn.LiveReplicas(id)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		return c.DegradedReadCtx(ctx, client, id)
	}
	src, err := c.chooseReplica(live, client)
	if err != nil {
		return nil, err
	}
	dn, err := c.DataNodeOf(src)
	if err != nil {
		return nil, err
	}
	data, err := dn.Store.Get(DataKey(id))
	if err != nil {
		return nil, err
	}
	out, err := c.fab.TransferCtx(ctx, src, client, data)
	if err == nil {
		c.acct.Charge(tenant.FromContext(ctx), "read", 1, int64(len(out)))
	}
	return out, err
}

// repairTraffic accumulates the network bytes one reconstruction moved,
// split by rack locality. Both repair paths fill it from the streams they
// themselves open (local disk streams excluded), so the count is exact even
// with concurrent repairs in flight — unlike a fabric snapshot delta. A nil
// receiver discards.
type repairTraffic struct {
	mu    sync.Mutex
	cross int64
	total int64
}

// addStream books n bytes delivered over st.
func (t *repairTraffic) addStream(st *fabric.Stream, n int64) {
	if t == nil || st.Local() {
		return
	}
	t.mu.Lock()
	if st.Cross() {
		t.cross += n
	}
	t.total += n
	t.mu.Unlock()
}

// addCross books n bytes that crossed the rack core without a stream
// handle (the pipeline path accounts its chained hops after the join).
func (t *repairTraffic) addCross(n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cross += n
	t.total += n
	t.mu.Unlock()
}

// addIntra books n rack-local network bytes.
func (t *repairTraffic) addIntra(n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total += n
	t.mu.Unlock()
}

// bytes returns the accumulated (crossRack, total) network bytes.
func (t *repairTraffic) bytes() (int64, int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cross, t.total
}

// nearestReplica picks the live replica a gatherer should fetch from: the
// gatherer itself if it holds one, else the first replica in the gatherer's
// rack, else the first live replica. Deterministic, unlike chooseReplica's
// randomized read balancing: repair work must pick the same sources on
// every run of a recovery plan.
func (c *Cluster) nearestReplica(live []topology.NodeID, gatherer topology.NodeID, gatherRack topology.RackID) (topology.NodeID, error) {
	pick, local := live[0], false
	for _, n := range live {
		if n == gatherer {
			return n, nil
		}
		if local {
			continue
		}
		r, err := c.top.RackOf(n)
		if err != nil {
			return 0, err
		}
		if r == gatherRack {
			pick, local = n, true
		}
	}
	return pick, nil
}

// stripeSurvivors gathers up to k live blocks of a stripe (data and
// parity), transferring each to the gatherer node. Fetches run concurrently
// in batches of the outstanding need (bounded by gatherFanIn) unless
// Config.SequentialDataPath forces one-at-a-time gathering; in both modes
// survivors in the gatherer's rack are preferred. It returns the blocks
// indexed by stripe position, booking network bytes into tr (nil discards).
func (c *Cluster) stripeSurvivors(ctx context.Context, gatherer topology.NodeID, sm *StripeMeta, tr *repairTraffic) (map[int][]byte, error) {
	if sm.Plan == nil {
		return nil, fmt.Errorf("%w: stripe %d not encoded", ErrUnknownStripe, sm.Info.ID)
	}
	// Parity occupies stripe positions k..n-1 of the code geometry even for
	// short stripes (positions len(Blocks)..k-1 are zero padding).
	k := c.cfg.K
	// Order candidate blocks so survivors in the gatherer's rack come
	// first: each local fetch replaces one cross-rack download (the
	// Section III-D recovery-traffic saving of c > 1).
	gatherRack, err := c.top.RackOf(gatherer)
	if err != nil {
		return nil, err
	}
	type candidate struct {
		node topology.NodeID
		key  blockstore.Key
		pos  int
	}
	var local, remote []candidate
	add := func(cand candidate) error {
		r, err := c.top.RackOf(cand.node)
		if err != nil {
			return err
		}
		if r == gatherRack {
			local = append(local, cand)
		} else {
			remote = append(remote, cand)
		}
		return nil
	}
	for i, b := range sm.Info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			return nil, err
		}
		if len(live) == 0 {
			continue
		}
		// Fetch from the live replica closest to the gatherer: taking an
		// arbitrary replica would ignore a rack-local copy whenever it is
		// not listed first, turning an intra-rack fetch into a cross-rack
		// download.
		node, err := c.nearestReplica(live, gatherer, gatherRack)
		if err != nil {
			return nil, err
		}
		if err := add(candidate{node: node, key: DataKey(b), pos: i}); err != nil {
			return nil, err
		}
	}
	for j, node := range sm.Plan.Parity {
		if err := add(candidate{node: node, key: ParityKey(sm.Info.ID, j), pos: k + j}); err != nil {
			return nil, err
		}
	}
	candidates := append(local, remote...)

	present := make(map[int][]byte, k)
	var mu sync.Mutex
	fetch := func(ctx context.Context, cand candidate) error {
		if c.nn.IsDead(cand.node) {
			return nil
		}
		dn, err := c.DataNodeOf(cand.node)
		if err != nil {
			return err
		}
		buf := c.bufPool.Get(c.cfg.BlockSizeBytes)
		if err := dn.Store.GetInto(cand.key, buf); err != nil {
			c.bufPool.Put(buf)
			return nil // missing or corrupt: treat as erased
		}
		st, err := c.fab.OpenStream(ctx, cand.node, gatherer)
		if err != nil {
			c.bufPool.Put(buf)
			return err
		}
		err = st.Send(ctx, len(buf))
		st.Close()
		if err != nil {
			c.bufPool.Put(buf)
			return err
		}
		tr.addStream(st, int64(len(buf)))
		mu.Lock()
		present[cand.pos] = buf
		mu.Unlock()
		return nil
	}
	// Fetch exactly as many candidates as positions are still missing; a
	// candidate that turns out erased (store miss) shrinks the batch's
	// yield and the loop tops up from the remaining candidates.
	for next := 0; len(present) < k && next < len(candidates); {
		batch := candidates[next:min(next+k-len(present), len(candidates))]
		next += len(batch)
		if c.cfg.SequentialDataPath {
			for _, cand := range batch {
				if err := fetch(ctx, cand); err != nil {
					c.releaseSurvivors(present, sm)
					return nil, err
				}
			}
			continue
		}
		if m := c.metrics(); m != nil {
			m.gatherPar.Observe(float64(len(batch)))
		}
		g, gctx := workgroup.WithContext(ctx)
		g.SetLimit(gatherFanIn)
		for _, cand := range batch {
			cand := cand
			g.Go(func() error { return fetch(gctx, cand) })
		}
		if err := g.Wait(); err != nil {
			c.releaseSurvivors(present, sm)
			return nil, err
		}
	}
	return present, nil
}

// padStripe extends the survivor map for the positions of a short stripe
// (fewer than k data blocks, zero-padded at encode time). All padding
// positions share the cluster's immutable zero block; the decode kernels
// only read their inputs.
func (c *Cluster) padStripe(present map[int][]byte, sm *StripeMeta) {
	for i := len(sm.Info.Blocks); i < c.cfg.K; i++ {
		present[i] = c.zeroBlock
	}
}

// releaseSurvivors returns the gathered survivor buffers to the pool.
// Padding positions added by padStripe hold the shared zero block and are
// skipped.
func (c *Cluster) releaseSurvivors(present map[int][]byte, sm *StripeMeta) {
	for pos, buf := range present {
		if pos >= len(sm.Info.Blocks) && pos < c.cfg.K {
			continue
		}
		c.bufPool.Put(buf)
	}
}

// DegradedRead reconstructs a lost block with a background context. See
// DegradedReadCtx.
func (c *Cluster) DegradedRead(client topology.NodeID, id topology.BlockID) ([]byte, error) {
	return c.DegradedReadCtx(context.Background(), client, id)
}

// DegradedReadCtx reconstructs a lost block from its stripe: the client
// gathers any k surviving blocks concurrently and decodes (Section VI's
// degraded read).
func (c *Cluster) DegradedReadCtx(ctx context.Context, client topology.NodeID, id topology.BlockID) ([]byte, error) {
	out := make([]byte, c.cfg.BlockSizeBytes)
	if err := c.degradedReadInto(ctx, client, id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// degradedReadInto reconstructs a lost block into the caller's buffer. The
// gathered survivors live in pooled buffers and the decode runs through the
// coder's cached inversion matrices as one fused dot product, so
// steady-state repairs allocate only metadata.
func (c *Cluster) degradedReadInto(ctx context.Context, client topology.NodeID, id topology.BlockID, out []byte) error {
	meta, err := c.nn.Block(id)
	if err != nil {
		return err
	}
	if meta.Stripe < 0 {
		return fmt.Errorf("%w: block %d lost before encoding", ErrNoReplica, id)
	}
	sm, err := c.nn.Stripe(meta.Stripe)
	if err != nil {
		return err
	}
	pos := -1
	for i, b := range sm.Info.Blocks {
		if b == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("%w: block %d missing from stripe %d", ErrUnknownStripe, id, meta.Stripe)
	}
	return c.gatherRepairInto(ctx, sm, pos, client, out, nil)
}

// gatherRepairInto reconstructs stripe position pos (data or parity) into
// out on the naive gather path: download any k whole survivor blocks to the
// gatherer, then decode centrally. This is the ablation baseline the
// two-level pipeline (pipelineRepairInto) is measured against.
func (c *Cluster) gatherRepairInto(ctx context.Context, sm *StripeMeta, pos int, gatherer topology.NodeID, out []byte, tr *repairTraffic) error {
	present, err := c.stripeSurvivors(ctx, gatherer, sm, tr)
	if err != nil {
		return err
	}
	defer c.releaseSurvivors(present, sm)
	c.padStripe(present, sm)
	return c.coder.ReconstructBlockInto(present, pos, out)
}

// RepairBlock rebuilds a lost block with a background context. See
// RepairBlockCtx.
func (c *Cluster) RepairBlock(id topology.BlockID) (topology.NodeID, error) {
	return c.RepairBlockCtx(context.Background(), id)
}

// RepairBlockCtx rebuilds a lost block onto a fresh live node and updates
// the NameNode, the RaidNode recovery path. It returns the chosen node.
// Config.RackAwareRepair selects the two-level pipelined reconstruction;
// the default remains the naive gather path (the ablation baseline).
func (c *Cluster) RepairBlockCtx(ctx context.Context, id topology.BlockID) (topology.NodeID, error) {
	meta, err := c.nn.Block(id)
	if err != nil {
		return 0, err
	}
	if meta.Stripe < 0 {
		return 0, fmt.Errorf("%w: block %d has no stripe", ErrNoReplica, id)
	}
	sm, err := c.nn.Stripe(meta.Stripe)
	if err != nil {
		return 0, err
	}
	target, err := c.pickRepairNode(sm)
	if err != nil {
		return 0, err
	}
	if _, err := c.repairBlockOnto(ctx, id, sm, target); err != nil {
		return 0, err
	}
	return target, nil
}

// repairBlockOnto rebuilds lost data block id of stripe sm onto target:
// reconstruction over the configured path, a staged Put (nothing is stored
// or published until the rebuild fully succeeded, so a canceled repair
// commits nothing), the metadata update, lifecycle events, telemetry, and
// per-tenant charging. It returns the repair's network traffic.
func (c *Cluster) repairBlockOnto(ctx context.Context, id topology.BlockID, sm *StripeMeta, target topology.NodeID) (*repairTraffic, error) {
	t0 := time.Now()
	if m := c.metrics(); m != nil {
		defer func() { m.repairLat.Observe(time.Since(t0).Seconds()) }()
	}
	span, ctx := c.opSpan(ctx, "raidnode", "raidnode.repair-block")
	span.Arg("block", strconv.FormatInt(int64(id), 10))
	defer span.End()
	// Repair is background work with no requester context: run it under the
	// block's recorded owner, so the fabric charges every survivor download
	// and partial-sum hop to that tenant at the same accounting point as
	// any foreground stream, and the op charge below matches.
	ctx = tenant.NewContext(ctx, c.acct.Owner(id))
	meta, err := c.nn.Block(id)
	if err != nil {
		return nil, err
	}
	pos := -1
	for i, b := range sm.Info.Blocks {
		if b == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("%w: block %d missing from stripe %d", ErrUnknownStripe, id, sm.Info.ID)
	}
	if j := c.Journal(); j != nil {
		ev := events.New(events.RepairStarted, "raidnode")
		ev.Block, ev.Stripe, ev.Node = id, sm.Info.ID, target
		ev.Trace = telemetry.TraceFromContext(ctx)
		j.Publish(ev)
	}
	// The rebuilt block lives in a pooled buffer; the store keeps its own
	// copy on Put, so the buffer is recycled on return.
	buf := c.bufPool.Get(c.cfg.BlockSizeBytes)
	defer c.bufPool.Put(buf)
	tr := &repairTraffic{}
	if err := c.repairStripePos(ctx, sm, pos, target, buf, tr, span); err != nil {
		return nil, err
	}
	dn, err := c.DataNodeOf(target)
	if err != nil {
		return nil, err
	}
	// The target holds no live member of the stripe, so anything stored
	// under the key is a stale copy from before the node last died; the
	// repair supersedes it.
	_ = dn.Store.Delete(DataKey(id))
	if err := dn.Store.Put(DataKey(id), buf); err != nil {
		return nil, err
	}
	if err := c.nn.UpdateBlockLocation(id, []topology.NodeID{target}); err != nil {
		return nil, err
	}
	if j := c.Journal(); j != nil {
		ev := events.New(events.RepairFinished, "raidnode")
		ev.Block, ev.Stripe, ev.Node = id, sm.Info.ID, target
		ev.Bytes = int64(len(buf))
		ev.Trace = telemetry.TraceFromContext(ctx)
		j.Publish(ev)
		// The repair supersedes the block's prior locations (typically a
		// dead node's): retire them in the journal so stream-tracking
		// models converge on the post-repair layout. Published after
		// RepairFinished, so the modeled replica count never dips below
		// one on a successful repair.
		for _, n := range meta.Nodes {
			if n == target {
				continue
			}
			del := events.New(events.ReplicaDeleted, "raidnode")
			del.Block, del.Stripe, del.Node = id, sm.Info.ID, n
			del.Trace = telemetry.TraceFromContext(ctx)
			j.Publish(del)
		}
	}
	c.observeRepair(tr, int64(len(buf)), time.Since(t0))
	c.acct.Charge(tenant.FromContext(ctx), "repair", 1, int64(len(buf)))
	return tr, nil
}

// observeRepair folds one finished repair into the repair telemetry.
func (c *Cluster) observeRepair(tr *repairTraffic, repaired int64, d time.Duration) {
	m := c.metrics()
	if m == nil {
		return
	}
	cross, _ := tr.bytes()
	m.repairCross.Add(float64(cross))
	if s := d.Seconds(); s > 0 {
		m.repairMBps.Observe(float64(repaired) / (1 << 20) / s)
	}
}

// pickRepairNode selects a live node holding no block of the stripe, in a
// rack whose stripe population stays within c (preserving fault tolerance).
func (c *Cluster) pickRepairNode(sm *StripeMeta) (topology.NodeID, error) {
	used := make(map[topology.NodeID]bool)
	rackCount := make(map[topology.RackID]int)
	note := func(n topology.NodeID) error {
		if c.nn.IsDead(n) {
			return nil
		}
		used[n] = true
		r, err := c.top.RackOf(n)
		if err != nil {
			return err
		}
		rackCount[r]++
		return nil
	}
	for _, b := range sm.Info.Blocks {
		live, err := c.nn.LiveReplicas(b)
		if err != nil {
			return 0, err
		}
		for _, n := range live {
			if err := note(n); err != nil {
				return 0, err
			}
		}
	}
	if sm.Plan != nil {
		for _, n := range sm.Plan.Parity {
			if err := note(n); err != nil {
				return 0, err
			}
		}
	}
	maxPerRack := c.cfg.C
	if maxPerRack <= 0 {
		maxPerRack = 1
	}
	// Prefer racks that already hold blocks of the stripe but have spare
	// capacity: co-locating the repaired block with survivors minimizes
	// the cross-rack recovery downloads (Section III-D). Fall back to any
	// rack with spare capacity.
	pick := func(wantCoLocated bool) (topology.NodeID, bool, error) {
		start := c.randIntn(c.top.Nodes())
		for off := 0; off < c.top.Nodes(); off++ {
			n := topology.NodeID((start + off) % c.top.Nodes())
			if c.nn.IsDead(n) || used[n] {
				continue
			}
			r, err := c.top.RackOf(n)
			if err != nil {
				return 0, false, err
			}
			if rackCount[r] >= maxPerRack {
				continue
			}
			if wantCoLocated && rackCount[r] == 0 {
				continue
			}
			return n, true, nil
		}
		return 0, false, nil
	}
	for _, coLocated := range []bool{true, false} {
		n, ok, err := pick(coLocated)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
	}
	return 0, fmt.Errorf("hdfs: no eligible repair node for stripe %d", sm.Info.ID)
}
