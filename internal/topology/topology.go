// Package topology models the cluster architecture of a clustered file
// system (CFS) as described in the paper's Section II-A: storage nodes
// grouped into racks, where nodes within a rack share a top-of-rack switch
// and racks are joined by an over-subscribed network core. It also defines
// the block, replica, and stripe metadata shared by the placement policies,
// the discrete-event simulator, and the mini-HDFS testbed.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a storage node cluster-wide. IDs are dense, assigned in
// rack-major order: rack r holds nodes [r*nodesPerRack, (r+1)*nodesPerRack).
type NodeID int

// RackID identifies a rack.
type RackID int

// BlockID identifies a data block.
type BlockID int64

// StripeID identifies an erasure-coded stripe.
type StripeID int64

// Errors returned by the package.
var (
	// ErrInvalidTopology indicates nonsensical rack or node counts.
	ErrInvalidTopology = errors.New("topology: invalid topology")
	// ErrUnknownNode indicates a NodeID outside the cluster.
	ErrUnknownNode = errors.New("topology: unknown node")
	// ErrUnknownRack indicates a RackID outside the cluster.
	ErrUnknownRack = errors.New("topology: unknown rack")
)

// Topology is an immutable description of a homogeneous cluster: R racks
// with a fixed number of nodes each. All methods are safe for concurrent
// use.
type Topology struct {
	racks        int
	nodesPerRack int
}

// New returns a topology with the given number of racks and nodes per rack.
func New(racks, nodesPerRack int) (*Topology, error) {
	if racks <= 0 || nodesPerRack <= 0 {
		return nil, fmt.Errorf("%w: %d racks x %d nodes", ErrInvalidTopology, racks, nodesPerRack)
	}
	return &Topology{racks: racks, nodesPerRack: nodesPerRack}, nil
}

// Racks returns the number of racks R.
func (t *Topology) Racks() int { return t.racks }

// NodesPerRack returns the number of nodes in each rack.
func (t *Topology) NodesPerRack() int { return t.nodesPerRack }

// Nodes returns the total number of nodes in the cluster.
func (t *Topology) Nodes() int { return t.racks * t.nodesPerRack }

// RackOf returns the rack containing node n.
func (t *Topology) RackOf(n NodeID) (RackID, error) {
	if n < 0 || int(n) >= t.Nodes() {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, n)
	}
	return RackID(int(n) / t.nodesPerRack), nil
}

// NodesInRack returns the IDs of all nodes in rack r, in ascending order.
func (t *Topology) NodesInRack(r RackID) ([]NodeID, error) {
	return t.AppendNodesInRack(r, nil)
}

// AppendNodesInRack appends the IDs of all nodes in rack r to buf, in
// ascending order, and returns the extended slice. Passing a buffer with
// spare capacity avoids the allocation NodesInRack pays per call.
func (t *Topology) AppendNodesInRack(r RackID, buf []NodeID) ([]NodeID, error) {
	if r < 0 || int(r) >= t.racks {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRack, r)
	}
	base := int(r) * t.nodesPerRack
	for i := 0; i < t.nodesPerRack; i++ {
		buf = append(buf, NodeID(base+i))
	}
	return buf, nil
}

// SameRack reports whether two nodes share a rack.
func (t *Topology) SameRack(a, b NodeID) (bool, error) {
	ra, err := t.RackOf(a)
	if err != nil {
		return false, err
	}
	rb, err := t.RackOf(b)
	if err != nil {
		return false, err
	}
	return ra == rb, nil
}

// String describes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("topology(%d racks x %d nodes)", t.racks, t.nodesPerRack)
}

// Placement records where the replicas of one block live. The first entry is
// the "first replica" in the HDFS sense; under EAR it resides in the stripe's
// core rack.
type Placement struct {
	Block BlockID
	Nodes []NodeID
}

// Clone returns a deep copy of the placement.
func (p Placement) Clone() Placement {
	nodes := make([]NodeID, len(p.Nodes))
	copy(nodes, p.Nodes)
	return Placement{Block: p.Block, Nodes: nodes}
}

// Contains reports whether the placement includes node n.
func (p Placement) Contains(n NodeID) bool {
	for _, v := range p.Nodes {
		if v == n {
			return true
		}
	}
	return false
}

// RackSet returns the set of racks spanned by the placement.
func (p Placement) RackSet(t *Topology) (map[RackID]bool, error) {
	set := make(map[RackID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		r, err := t.RackOf(n)
		if err != nil {
			return nil, err
		}
		set[r] = true
	}
	return set, nil
}

// StripeLayout records the final on-disk layout of one erasure-coded stripe
// after the encoding operation: for each of the k data blocks, the single
// node keeping its replica, plus the nodes storing the n-k parity blocks.
type StripeLayout struct {
	Stripe StripeID
	// Data[i] is the node retaining data block i of the stripe.
	Data []NodeID
	// Parity[j] is the node storing parity block j.
	Parity []NodeID
}

// AllNodes returns data then parity node IDs in stripe order.
func (l StripeLayout) AllNodes() []NodeID {
	all := make([]NodeID, 0, len(l.Data)+len(l.Parity))
	all = append(all, l.Data...)
	all = append(all, l.Parity...)
	return all
}

// BlocksPerRack counts, for each rack, how many blocks of the stripe it
// stores after encoding.
func (l StripeLayout) BlocksPerRack(t *Topology) (map[RackID]int, error) {
	counts := make(map[RackID]int)
	for _, n := range l.AllNodes() {
		r, err := t.RackOf(n)
		if err != nil {
			return nil, err
		}
		counts[r]++
	}
	return counts, nil
}

// Validate checks the layout's structural invariants: every block on a
// distinct node (node-level fault tolerance for n-k failures) and at most
// maxPerRack blocks in any rack (rack-level fault tolerance for
// floor((n-k)/maxPerRack) rack failures, per Section III-B).
func (l StripeLayout) Validate(t *Topology, maxPerRack int) error {
	seen := make(map[NodeID]bool)
	for _, n := range l.AllNodes() {
		if _, err := t.RackOf(n); err != nil {
			return err
		}
		if seen[n] {
			return fmt.Errorf("topology: stripe %d places two blocks on node %d", l.Stripe, n)
		}
		seen[n] = true
	}
	if maxPerRack > 0 {
		counts, err := l.BlocksPerRack(t)
		if err != nil {
			return err
		}
		for r, c := range counts {
			if c > maxPerRack {
				return fmt.Errorf("topology: stripe %d places %d blocks in rack %d, max %d", l.Stripe, c, r, maxPerRack)
			}
		}
	}
	return nil
}

// TolerableRackFailures returns the number of rack failures the layout
// survives: the stripe tolerates losing n-k blocks, so with at most c blocks
// per rack it tolerates floor((n-k)/c) rack failures (Section III-B).
func (l StripeLayout) TolerableRackFailures(t *Topology, k int) (int, error) {
	counts, err := l.BlocksPerRack(t)
	if err != nil {
		return 0, err
	}
	maxPerRack := 0
	for _, c := range counts {
		if c > maxPerRack {
			maxPerRack = c
		}
	}
	if maxPerRack == 0 {
		return 0, errors.New("topology: empty stripe layout")
	}
	m := len(l.AllNodes()) - k
	return m / maxPerRack, nil
}
