package topology

import (
	"errors"
	"testing"
)

func mustTopology(t *testing.T, racks, nodes int) *Topology {
	t.Helper()
	top, err := New(racks, nodes)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", racks, nodes, err)
	}
	return top
}

func TestNewValidation(t *testing.T) {
	for _, tt := range [][2]int{{0, 5}, {5, 0}, {-1, 1}, {1, -1}} {
		if _, err := New(tt[0], tt[1]); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("New(%d, %d) error = %v, want ErrInvalidTopology", tt[0], tt[1], err)
		}
	}
}

func TestAccessors(t *testing.T) {
	top := mustTopology(t, 5, 6) // the paper's motivating example: 30 nodes
	if top.Racks() != 5 || top.NodesPerRack() != 6 || top.Nodes() != 30 {
		t.Fatalf("accessors wrong: %v", top)
	}
	if got := top.String(); got != "topology(5 racks x 6 nodes)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRackOf(t *testing.T) {
	top := mustTopology(t, 4, 2) // Section III-B example: 8 nodes, 4 racks
	tests := []struct {
		node NodeID
		rack RackID
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {6, 3}, {7, 3},
	}
	for _, tt := range tests {
		got, err := top.RackOf(tt.node)
		if err != nil {
			t.Fatalf("RackOf(%d): %v", tt.node, err)
		}
		if got != tt.rack {
			t.Errorf("RackOf(%d) = %d, want %d", tt.node, got, tt.rack)
		}
	}
	if _, err := top.RackOf(8); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("RackOf(8) error = %v, want ErrUnknownNode", err)
	}
	if _, err := top.RackOf(-1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("RackOf(-1) error = %v, want ErrUnknownNode", err)
	}
}

func TestNodesInRack(t *testing.T) {
	top := mustTopology(t, 3, 4)
	nodes, err := top.NodesInRack(1)
	if err != nil {
		t.Fatalf("NodesInRack: %v", err)
	}
	want := []NodeID{4, 5, 6, 7}
	if len(nodes) != len(want) {
		t.Fatalf("NodesInRack(1) = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("NodesInRack(1) = %v, want %v", nodes, want)
		}
	}
	if _, err := top.NodesInRack(3); !errors.Is(err, ErrUnknownRack) {
		t.Errorf("NodesInRack(3) error = %v, want ErrUnknownRack", err)
	}
}

func TestSameRack(t *testing.T) {
	top := mustTopology(t, 2, 3)
	same, err := top.SameRack(0, 2)
	if err != nil || !same {
		t.Errorf("SameRack(0, 2) = (%v, %v), want (true, nil)", same, err)
	}
	same, err = top.SameRack(2, 3)
	if err != nil || same {
		t.Errorf("SameRack(2, 3) = (%v, %v), want (false, nil)", same, err)
	}
	if _, err := top.SameRack(0, 99); err == nil {
		t.Error("SameRack with bad node: expected error")
	}
	if _, err := top.SameRack(99, 0); err == nil {
		t.Error("SameRack with bad node: expected error")
	}
}

func TestPlacement(t *testing.T) {
	top := mustTopology(t, 3, 2)
	p := Placement{Block: 7, Nodes: []NodeID{0, 2, 3}}
	if !p.Contains(3) || p.Contains(5) {
		t.Error("Contains wrong")
	}
	set, err := p.RackSet(top)
	if err != nil {
		t.Fatalf("RackSet: %v", err)
	}
	if len(set) != 2 || !set[0] || !set[1] {
		t.Errorf("RackSet = %v, want racks {0, 1} (nodes 2,3 share rack 1)", set)
	}
	c := p.Clone()
	c.Nodes[0] = 5
	if p.Nodes[0] != 0 {
		t.Error("Clone shares node slice")
	}
	bad := Placement{Block: 1, Nodes: []NodeID{99}}
	if _, err := bad.RackSet(top); err == nil {
		t.Error("RackSet with bad node: expected error")
	}
}

func TestStripeLayoutValidate(t *testing.T) {
	top := mustTopology(t, 4, 2)
	// (4,3) code spread over 4 racks, one block each: valid with c=1.
	l := StripeLayout{Stripe: 1, Data: []NodeID{0, 2, 4}, Parity: []NodeID{6}}
	if err := l.Validate(top, 1); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Two blocks in rack 0 violates c=1 but passes c=2.
	l2 := StripeLayout{Stripe: 2, Data: []NodeID{0, 1, 2}, Parity: []NodeID{4}}
	if err := l2.Validate(top, 1); err == nil {
		t.Fatal("Validate should reject 2 blocks in one rack with c=1")
	}
	if err := l2.Validate(top, 2); err != nil {
		t.Fatalf("Validate with c=2: %v", err)
	}
	// Duplicate node violates node-level fault tolerance.
	l3 := StripeLayout{Stripe: 3, Data: []NodeID{0, 0, 2}, Parity: []NodeID{4}}
	if err := l3.Validate(top, 0); err == nil {
		t.Fatal("Validate should reject duplicate node")
	}
	// Unknown node.
	l4 := StripeLayout{Stripe: 4, Data: []NodeID{99}, Parity: nil}
	if err := l4.Validate(top, 0); err == nil {
		t.Fatal("Validate should reject unknown node")
	}
}

func TestStripeLayoutCounts(t *testing.T) {
	top := mustTopology(t, 3, 3)
	l := StripeLayout{Stripe: 9, Data: []NodeID{0, 1, 3}, Parity: []NodeID{6}}
	counts, err := l.BlocksPerRack(top)
	if err != nil {
		t.Fatalf("BlocksPerRack: %v", err)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("BlocksPerRack = %v", counts)
	}
	all := l.AllNodes()
	if len(all) != 4 || all[3] != 6 {
		t.Fatalf("AllNodes = %v", all)
	}
}

func TestTolerableRackFailures(t *testing.T) {
	top := mustTopology(t, 6, 2)
	// (6,3): m=3 parity. One block per rack => tolerate 3 rack failures.
	spread := StripeLayout{Stripe: 1, Data: []NodeID{0, 2, 4}, Parity: []NodeID{6, 8, 10}}
	got, err := spread.TolerableRackFailures(top, 3)
	if err != nil || got != 3 {
		t.Fatalf("spread TolerableRackFailures = (%d, %v), want (3, nil)", got, err)
	}
	// Packed two-per-rack across 3 racks => floor(3/2) = 1 rack failure.
	packed := StripeLayout{Stripe: 2, Data: []NodeID{0, 1, 2}, Parity: []NodeID{3, 4, 5}}
	got, err = packed.TolerableRackFailures(top, 3)
	if err != nil || got != 1 {
		t.Fatalf("packed TolerableRackFailures = (%d, %v), want (1, nil)", got, err)
	}
	empty := StripeLayout{}
	if _, err := empty.TolerableRackFailures(top, 3); err == nil {
		t.Fatal("empty layout: expected error")
	}
}
