package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ear/internal/topology"
)

// randomValidConfig draws a random configuration that passes Validate.
func randomValidConfig(t *testing.T, rng *rand.Rand) Config {
	t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		k := 2 + rng.Intn(8)     // 2..9
		n := k + 1 + rng.Intn(4) // k+1..k+4
		c := 1 + rng.Intn(3)     // 1..3
		racks := n/c + 1 + rng.Intn(10)
		if racks*c < n || k > racks*c {
			continue
		}
		nodes := 2 + rng.Intn(5)
		replicas := 2 + rng.Intn(2) // 2..3
		spread := rng.Intn(4) == 0
		if spread && replicas > racks {
			continue
		}
		if !spread && replicas-1 > nodes {
			continue
		}
		top, err := topology.New(racks, nodes)
		if err != nil {
			continue
		}
		cfg := Config{
			Topology:       top,
			Replicas:       replicas,
			K:              k,
			N:              n,
			C:              c,
			SpreadReplicas: spread,
		}
		if cfg.Validate() == nil {
			return cfg
		}
	}
	t.Fatal("could not draw a valid config")
	return Config{}
}

// TestPropertyEARInvariants checks, over random valid configurations, the
// three guarantees of Section III: every sealed stripe has one replica of
// each block in the core rack; the post-encoding plan never violates; and
// the resulting layout passes node- and rack-level validation.
func TestPropertyEARInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomValidConfig(t, rng)
		pol, err := NewEAR(cfg, rng)
		if err != nil {
			t.Logf("seed %d: NewEAR: %v", seed, err)
			return false
		}
		var sealed []*StripeInfo
		for b := 0; b < cfg.K*6 && len(sealed) < 2; b++ {
			if _, err := pol.Place(topology.BlockID(b)); err != nil {
				t.Logf("seed %d cfg %+v: Place: %v", seed, cfg, err)
				return false
			}
			sealed = append(sealed, pol.TakeSealed()...)
		}
		for _, s := range sealed {
			for _, pl := range s.Placements {
				r, err := cfg.Topology.RackOf(pl.Nodes[0])
				if err != nil || r != s.CoreRack {
					t.Logf("seed %d: first replica not in core rack", seed)
					return false
				}
				// All replicas on distinct nodes.
				seen := map[topology.NodeID]bool{}
				for _, n := range pl.Nodes {
					if seen[n] {
						t.Logf("seed %d: duplicate replica node", seed)
						return false
					}
					seen[n] = true
				}
			}
			plan, err := PlanPostEncoding(cfg, s, rng)
			if err != nil {
				t.Logf("seed %d cfg %+v: plan: %v", seed, cfg, err)
				return false
			}
			if plan.Violation {
				t.Logf("seed %d cfg %+v: EAR stripe violated", seed, cfg)
				return false
			}
			if err := plan.Layout(s.ID).Validate(cfg.Topology, cfg.C); err != nil {
				t.Logf("seed %d cfg %+v: layout: %v", seed, cfg, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRRPlacementShape checks RR's structural invariants over
// random configurations: correct replica count, distinct nodes, and the
// HDFS two-rack (or spread) rack pattern.
func TestPropertyRRPlacementShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomValidConfig(t, rng)
		pol, err := NewRandom(cfg, rng)
		if err != nil {
			return false
		}
		for b := 0; b < 30; b++ {
			pl, err := pol.Place(topology.BlockID(b))
			if err != nil {
				t.Logf("seed %d cfg %+v: %v", seed, cfg, err)
				return false
			}
			if len(pl.Nodes) != cfg.Replicas {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for _, n := range pl.Nodes {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
			set, err := pl.RackSet(cfg.Topology)
			if err != nil {
				return false
			}
			want := 2
			if cfg.SpreadReplicas {
				want = cfg.Replicas
			}
			if cfg.Replicas == 1 {
				want = 1
			}
			if len(set) != want {
				t.Logf("seed %d: placement spans %d racks, want %d (spread=%v r=%d)",
					seed, len(set), want, cfg.SpreadReplicas, cfg.Replicas)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPlanKeepsRealReplicas verifies that for both policies the
// planner only ever keeps nodes that actually hold a replica, and that
// parity nodes never collide with kept nodes.
func TestPropertyPlanKeepsRealReplicas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomValidConfig(t, rng)
		pol, err := NewRandom(cfg, rng)
		if err != nil {
			return false
		}
		info := &StripeInfo{ID: 1, CoreRack: -1}
		for b := 0; b < cfg.K; b++ {
			pl, err := pol.Place(topology.BlockID(b))
			if err != nil {
				return false
			}
			info.Blocks = append(info.Blocks, pl.Block)
			info.Placements = append(info.Placements, pl)
		}
		plan, err := PlanPostEncoding(cfg, info, rng)
		if err != nil {
			t.Logf("seed %d cfg %+v: %v", seed, cfg, err)
			return false
		}
		used := map[topology.NodeID]bool{}
		for i, keep := range plan.Keep {
			if !info.Placements[i].Contains(keep) {
				return false
			}
			used[keep] = true
		}
		for _, p := range plan.Parity {
			if used[p] {
				t.Logf("seed %d: parity node %d collides with kept node", seed, p)
				return false
			}
			used[p] = true
		}
		return len(plan.Parity) == cfg.N-cfg.K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
