package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"ear/internal/topology"
)

// drive places n blocks on p with a seeded rng choosing core racks, mirrors
// every decision into mirror via RestorePlacement, and fails on any
// divergence of the sealed stream.
func driveAndMirror(t *testing.T, cfg Config, n int, seed int64) (*EAR, *EAR) {
	t.Helper()
	live, err := NewEAR(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	// The mirror's rng is different on purpose: RestorePlacement must never
	// consume it.
	mirror, err := NewEAR(cfg, rand.New(rand.NewSource(seed+9999)))
	if err != nil {
		t.Fatal(err)
	}
	coreRng := rand.New(rand.NewSource(seed * 31))
	for i := 0; i < n; i++ {
		block := topology.BlockID(i)
		core := topology.RackID(coreRng.Intn(cfg.Topology.Racks()))
		pl, err := live.PlaceAt(block, core)
		if err != nil {
			t.Fatalf("PlaceAt(%d): %v", block, err)
		}
		err = mirror.RestorePlacement(block, core, pl.Nodes,
			live.LastPlaceTargets(), live.LastPlaceAttempts())
		if err != nil {
			t.Fatalf("RestorePlacement(%d): %v", block, err)
		}
		ls, ms := live.TakeSealed(), mirror.TakeSealed()
		if !reflect.DeepEqual(ls, ms) {
			t.Fatalf("sealed streams diverged after block %d:\nlive:   %+v\nmirror: %+v", block, ls, ms)
		}
	}
	return live, mirror
}

func TestRestorePlacementMirrorsLivePolicy(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", Config{Topology: mustTop(t, 8, 6), K: 6, N: 8}},
		{"target-racks", Config{Topology: mustTop(t, 8, 6), K: 6, N: 9, TargetRacks: 5, C: 2}},
		{"preliminary", Config{Topology: mustTop(t, 8, 6), K: 6, N: 8, Preliminary: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live, mirror := driveAndMirror(t, tc.cfg, 200, 7)
			ln, lo := live.OpenState()
			mn, mo := mirror.OpenState()
			if ln != mn {
				t.Fatalf("next stripe: live %d, mirror %d", ln, mn)
			}
			if !reflect.DeepEqual(lo, mo) {
				t.Fatalf("open state diverged:\nlive:   %+v\nmirror: %+v", lo, mo)
			}
			// Both policies keep accepting blocks after the mirror run.
			if _, err := mirror.PlaceAt(topology.BlockID(10_000), 0); err != nil {
				t.Fatalf("mirror PlaceAt after restore: %v", err)
			}
		})
	}
}

func TestRestoreOpenStateRebuildsFlow(t *testing.T) {
	cfg := Config{Topology: mustTop(t, 8, 6), K: 6, N: 8}
	live, _ := driveAndMirror(t, cfg, 100, 3)
	next, open := live.OpenState()
	if len(open) == 0 {
		t.Fatal("test needs at least one open stripe; tune the block count")
	}

	fresh, err := NewEAR(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreOpenState(next, open); err != nil {
		t.Fatalf("RestoreOpenState: %v", err)
	}
	n2, open2 := fresh.OpenState()
	if n2 != next || !reflect.DeepEqual(open2, open) {
		t.Fatalf("round trip diverged:\nwant %d %+v\ngot  %d %+v", next, open, n2, open2)
	}
	// The rebuilt flow graphs are live: filling an open stripe to k seals it.
	info := open[0]
	for i := len(info.Blocks); i < cfg.K; i++ {
		if _, err := fresh.PlaceAt(topology.BlockID(1000+i), info.CoreRack); err != nil {
			t.Fatalf("PlaceAt on restored stripe: %v", err)
		}
	}
	sealed := fresh.TakeSealed()
	if len(sealed) != 1 || sealed[0].ID != info.ID {
		t.Fatalf("restored stripe did not seal: %+v", sealed)
	}
	if len(sealed[0].Blocks) != cfg.K {
		t.Fatalf("sealed stripe has %d blocks, want %d", len(sealed[0].Blocks), cfg.K)
	}
}

func TestDropOpenRemovesStripe(t *testing.T) {
	cfg := Config{Topology: mustTop(t, 8, 6), K: 6, N: 8}
	p, err := NewEAR(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PlaceAt(1, 2); err != nil {
		t.Fatal(err)
	}
	info := p.DropOpen(2)
	if info == nil || info.CoreRack != 2 || len(info.Blocks) != 1 {
		t.Fatalf("DropOpen(2) = %+v", info)
	}
	if p.DropOpen(2) != nil {
		t.Fatal("second DropOpen(2) should return nil")
	}
	if got := p.FlushOpen(); len(got) != 0 {
		t.Fatalf("FlushOpen after DropOpen: %+v", got)
	}
}

func TestRestorePlacementRejectsInfeasibleLayout(t *testing.T) {
	// Three blocks sharing one identical two-node layout: the two nodes can
	// route only two blocks to the sink, so the third recorded layout is
	// infeasible and must be rejected, not silently accepted.
	cfg := Config{Topology: mustTop(t, 4, 4), K: 3, N: 4, TargetRacks: 2, C: 2, Replicas: 2}
	p, err := NewEAR(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	targets := []topology.RackID{0, 1}
	layout := []topology.NodeID{0, 4} // rack 0 node, rack 1 node
	for b := topology.BlockID(1); b <= 2; b++ {
		if err := p.RestorePlacement(b, 0, layout, targets, 1); err != nil {
			t.Fatalf("restore %d: %v", b, err)
		}
	}
	if err := p.RestorePlacement(3, 0, layout, targets, 1); err == nil {
		t.Fatal("third identical layout should be infeasible and rejected")
	}
}
