// Package placement implements the paper's replica placement policies: RR
// (random replication, the HDFS default) and EAR (encoding-aware
// replication, the paper's contribution, Section III). It also provides the
// post-encoding layout planner shared by both policies: given the replica
// locations of the k data blocks of a stripe, decide which replica of each
// block to keep and where to put the n-k parity blocks so that node-level
// and rack-level fault tolerance hold, or report that relocation is
// unavoidable (the availability problem EAR eliminates).
package placement

import (
	"errors"
	"fmt"
	"math/rand"

	"ear/internal/topology"
)

// Errors returned by the package.
var (
	// ErrInvalidConfig indicates an unusable configuration.
	ErrInvalidConfig = errors.New("placement: invalid config")
	// ErrRetriesExhausted indicates EAR could not find a feasible layout
	// within Config.MaxRetries attempts.
	ErrRetriesExhausted = errors.New("placement: layout retries exhausted")
)

// Config parameterizes a placement policy and the post-encoding planner.
type Config struct {
	// Topology is the cluster layout. Required.
	Topology *topology.Topology
	// Replicas is the replication factor r (default 3).
	Replicas int
	// K is the number of data blocks per stripe.
	K int
	// N is the stripe width (data + parity blocks), N > K.
	N int
	// C is the maximum number of blocks of one stripe allowed in a single
	// rack after encoding (paper Section III-B). The stripe then tolerates
	// floor((N-K)/C) rack failures. Default 1.
	C int
	// TargetRacks is R', the number of racks a stripe may occupy after
	// encoding (paper Section III-D). 0 means all racks are targets.
	// If set, TargetRacks*C must be at least N.
	TargetRacks int
	// SpreadReplicas places every replica in its own rack instead of the
	// HDFS default (first replica in one rack, the remaining r-1 replicas
	// on distinct nodes of one other rack). Used by Experiment B.2(f).
	SpreadReplicas bool
	// Preliminary disables EAR's max-flow feasibility check, yielding the
	// paper's "preliminary EAR" whose rack-fault-tolerance violation
	// probability is Equation (1).
	Preliminary bool
	// FullRecompute makes EAR rebuild the flow graph from scratch for
	// every candidate layout instead of extending the incremental flow in
	// place. Functionally identical; kept for the ablation benchmark.
	FullRecompute bool
	// MaxRetries bounds layout regeneration per block (safety net around
	// Theorem 1's small expected iteration count). Default 10000.
	MaxRetries int
}

// withDefaults returns a copy with defaults applied.
func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.C == 0 {
		c.C = 1
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10000
	}
	return c
}

// Validate checks the configuration. It applies defaults first, so a Config
// only needs Topology, K, and N.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Topology == nil {
		return fmt.Errorf("%w: nil topology", ErrInvalidConfig)
	}
	if c.K <= 0 || c.N <= c.K {
		return fmt.Errorf("%w: (n, k) = (%d, %d)", ErrInvalidConfig, c.N, c.K)
	}
	if c.Replicas < 1 {
		return fmt.Errorf("%w: %d replicas", ErrInvalidConfig, c.Replicas)
	}
	r := c.Topology.Racks()
	if c.SpreadReplicas {
		if c.Replicas > r {
			return fmt.Errorf("%w: %d replicas cannot spread over %d racks", ErrInvalidConfig, c.Replicas, r)
		}
	} else {
		if c.Replicas > 1 && r < 2 {
			return fmt.Errorf("%w: HDFS-style placement needs at least 2 racks", ErrInvalidConfig)
		}
		if c.Replicas-1 > c.Topology.NodesPerRack() {
			return fmt.Errorf("%w: %d replicas need %d nodes in the remote rack, have %d",
				ErrInvalidConfig, c.Replicas, c.Replicas-1, c.Topology.NodesPerRack())
		}
	}
	targets := c.TargetRacks
	if targets == 0 {
		targets = r
	}
	if targets < 0 || targets > r {
		return fmt.Errorf("%w: %d target racks of %d", ErrInvalidConfig, c.TargetRacks, r)
	}
	// Section III-B: R*c >= n so that a stripe of n blocks fits.
	if targets*c.C < c.N {
		return fmt.Errorf("%w: %d target racks x c=%d cannot hold a stripe of n=%d blocks",
			ErrInvalidConfig, targets, c.C, c.N)
	}
	// Node-level fault tolerance puts every stripe block on its own node.
	if c.N > targets*c.Topology.NodesPerRack() {
		return fmt.Errorf("%w: stripe of n=%d blocks needs %d distinct nodes, %d target racks hold %d",
			ErrInvalidConfig, c.N, c.N, targets, targets*c.Topology.NodesPerRack())
	}
	if c.K > targets*c.C {
		return fmt.Errorf("%w: k=%d data blocks cannot satisfy c=%d over %d racks",
			ErrInvalidConfig, c.K, c.C, targets)
	}
	return nil
}

// StripeInfo describes a sealed stripe: the k data blocks to be encoded
// together, their replica placements, and the core rack that holds one
// replica of each block.
type StripeInfo struct {
	ID       topology.StripeID
	CoreRack topology.RackID
	// Targets lists the stripe's target racks (Section III-D); nil when all
	// racks are eligible.
	Targets []topology.RackID
	Blocks  []topology.BlockID
	// Placements[i] holds the replica locations of Blocks[i]; the first
	// entry of each placement is the core-rack replica under EAR.
	Placements []topology.Placement
	// Iterations[i] is the number of candidate layouts EAR generated for
	// block i before finding a feasible one (Theorem 1 measures this).
	Iterations []int
}

// Clone returns a deep copy.
func (s *StripeInfo) Clone() *StripeInfo {
	c := &StripeInfo{ID: s.ID, CoreRack: s.CoreRack}
	c.Targets = append([]topology.RackID(nil), s.Targets...)
	c.Blocks = append([]topology.BlockID(nil), s.Blocks...)
	c.Placements = make([]topology.Placement, len(s.Placements))
	for i, p := range s.Placements {
		c.Placements[i] = p.Clone()
	}
	c.Iterations = append([]int(nil), s.Iterations...)
	return c
}

// Policy is a replica placement policy. Implementations are not safe for
// concurrent use; callers serialize access (the NameNode holds a lock, the
// simulator is single-threaded per event).
type Policy interface {
	// Name identifies the policy ("rr" or "ear").
	Name() string
	// Place decides the replica locations for a new block.
	Place(block topology.BlockID) (topology.Placement, error)
	// TakeSealed drains the stripes completed since the previous call.
	// RR performs no write-time grouping and always returns nil; callers
	// group RR blocks into stripes at encoding time (as HDFS-RAID does).
	TakeSealed() []*StripeInfo
}

// CrossRackDownloads counts how many of the stripe's data blocks the given
// encoding node must fetch from a different rack: a block costs a cross-rack
// download when no replica of it lives in the encoder's rack (Section II-B).
func CrossRackDownloads(top *topology.Topology, placements []topology.Placement, encoder topology.NodeID) (int, error) {
	encRack, err := top.RackOf(encoder)
	if err != nil {
		return 0, err
	}
	downloads := 0
	for _, p := range placements {
		inRack := false
		for _, n := range p.Nodes {
			r, err := top.RackOf(n)
			if err != nil {
				return 0, err
			}
			if r == encRack {
				inRack = true
				break
			}
		}
		if !inRack {
			downloads++
		}
	}
	return downloads, nil
}

// BestEncoderNode returns the node minimizing cross-rack downloads for the
// stripe, breaking ties uniformly at random. RR encoding uses it to give the
// baseline its best case; EAR's core rack achieves zero by construction.
func BestEncoderNode(top *topology.Topology, placements []topology.Placement, rng *rand.Rand) (topology.NodeID, int, error) {
	// Count blocks available per rack; the best rack maximizes coverage.
	perRack := make(map[topology.RackID]int)
	for _, p := range placements {
		set, err := p.RackSet(top)
		if err != nil {
			return 0, 0, err
		}
		for r := range set {
			perRack[r]++
		}
	}
	best, bestCount := topology.RackID(-1), -1
	ties := 0
	for r := 0; r < top.Racks(); r++ {
		c := perRack[topology.RackID(r)]
		switch {
		case c > bestCount:
			best, bestCount, ties = topology.RackID(r), c, 1
		case c == bestCount:
			ties++
			if rng.Intn(ties) == 0 {
				best = topology.RackID(r)
			}
		}
	}
	nodes, err := top.NodesInRack(best)
	if err != nil {
		return 0, 0, err
	}
	node := nodes[rng.Intn(len(nodes))]
	return node, len(placements) - bestCount, nil
}

// RandomEncoderNode picks an encoding node uniformly at random, the paper's
// model for the baseline ("the CFS randomly selects a node to perform the
// encoding operation", Section II-A).
func RandomEncoderNode(top *topology.Topology, rng *rand.Rand) topology.NodeID {
	return topology.NodeID(rng.Intn(top.Nodes()))
}

// sampleRacksExcluding returns count distinct racks drawn uniformly from the
// eligible set minus the excluded rack.
func sampleRacksExcluding(eligible []topology.RackID, exclude topology.RackID, count int, rng *rand.Rand) ([]topology.RackID, error) {
	pool := make([]topology.RackID, 0, len(eligible))
	for _, r := range eligible {
		if r != exclude {
			pool = append(pool, r)
		}
	}
	if count > len(pool) {
		return nil, fmt.Errorf("placement: need %d racks, only %d eligible", count, len(pool))
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:count], nil
}

// allRacks returns the full rack ID list of the topology.
func allRacks(top *topology.Topology) []topology.RackID {
	racks := make([]topology.RackID, top.Racks())
	for i := range racks {
		racks[i] = topology.RackID(i)
	}
	return racks
}
