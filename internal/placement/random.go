package placement

import (
	"fmt"
	"math/rand"

	"ear/internal/topology"
)

// Random implements RR, the HDFS default replica placement (paper Section
// II-A): the first replica goes to a node in a randomly chosen rack and the
// remaining r-1 replicas go to distinct nodes in one different randomly
// chosen rack, protecting against a two-node failure or a single-rack
// failure. With Config.SpreadReplicas every replica instead lands in its own
// rack.
type Random struct {
	cfg     Config
	rng     *rand.Rand
	racks   []topology.RackID
	scratch layoutScratch
}

var _ Policy = (*Random)(nil)

// NewRandom returns an RR policy. The rng drives all randomized choices and
// makes runs reproducible.
func NewRandom(cfg Config, rng *rand.Rand) (*Random, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrInvalidConfig)
	}
	cfg = cfg.withDefaults()
	return &Random{cfg: cfg, rng: rng, racks: allRacks(cfg.Topology)}, nil
}

// Name returns "rr".
func (p *Random) Name() string { return "rr" }

// Place chooses replica locations for the block.
func (p *Random) Place(block topology.BlockID) (topology.Placement, error) {
	nodes, err := randomLayoutInto(p.cfg, topology.RackID(-1), p.racks, p.rng, &p.scratch)
	if err != nil {
		return topology.Placement{}, err
	}
	return topology.Placement{Block: block, Nodes: cloneNodes(nodes)}, nil
}

// TakeSealed always returns nil: RR groups blocks into stripes only at
// encoding time.
func (p *Random) TakeSealed() []*StripeInfo { return nil }

// layoutScratch holds the reusable buffers of candidate layout generation so
// that, at steady state, producing a layout allocates nothing. The slice
// returned by randomLayoutInto aliases scratch memory and is only valid until
// the next call with the same scratch.
type layoutScratch struct {
	nodes []topology.NodeID // layout under construction
	racks []topology.RackID // rack sampling pool
	pool  []topology.NodeID // node sampling pool
}

// cloneNodes copies a scratch-backed layout into freshly owned memory.
func cloneNodes(nodes []topology.NodeID) []topology.NodeID {
	return append([]topology.NodeID(nil), nodes...)
}

// randomLayout generates one replica layout into fresh memory. Hot paths use
// randomLayoutInto with a persistent scratch instead.
func randomLayout(cfg Config, coreRack topology.RackID, remoteRacks []topology.RackID, rng *rand.Rand) ([]topology.NodeID, error) {
	var s layoutScratch
	nodes, err := randomLayoutInto(cfg, coreRack, remoteRacks, rng, &s)
	if err != nil {
		return nil, err
	}
	return cloneNodes(nodes), nil
}

// randomLayoutInto generates one replica layout using the scratch buffers. If
// coreRack >= 0 the first replica is pinned to a random node of that rack
// (the EAR case) and the remaining replicas avoid it; otherwise the first
// replica's rack is chosen uniformly. remoteRacks is the eligible set for the
// non-first replicas. The returned slice aliases s.nodes.
func randomLayoutInto(cfg Config, coreRack topology.RackID, remoteRacks []topology.RackID, rng *rand.Rand, s *layoutScratch) ([]topology.NodeID, error) {
	top := cfg.Topology
	s.nodes = s.nodes[:0]

	firstRack := coreRack
	if firstRack < 0 {
		firstRack = topology.RackID(rng.Intn(top.Racks()))
	}
	if err := sampleNodesInRackInto(top, firstRack, 1, rng, s); err != nil {
		return nil, err
	}
	if cfg.Replicas == 1 {
		return s.nodes, nil
	}

	if cfg.SpreadReplicas {
		racks, err := sampleRacksInto(remoteRacks, firstRack, cfg.Replicas-1, rng, s)
		if err != nil {
			return nil, err
		}
		for _, r := range racks {
			if err := sampleNodesInRackInto(top, r, 1, rng, s); err != nil {
				return nil, err
			}
		}
		return s.nodes, nil
	}

	racks, err := sampleRacksInto(remoteRacks, firstRack, 1, rng, s)
	if err != nil {
		return nil, err
	}
	if err := sampleNodesInRackInto(top, racks[0], cfg.Replicas-1, rng, s); err != nil {
		return nil, err
	}
	return s.nodes, nil
}

// sampleRacksInto fills s.racks with the eligible set minus the excluded rack
// and partially Fisher-Yates-shuffles it, returning the first count entries
// (distinct racks drawn uniformly). The result aliases s.racks.
func sampleRacksInto(eligible []topology.RackID, exclude topology.RackID, count int, rng *rand.Rand, s *layoutScratch) ([]topology.RackID, error) {
	pool := s.racks[:0]
	for _, r := range eligible {
		if r != exclude {
			pool = append(pool, r)
		}
	}
	s.racks = pool
	if count > len(pool) {
		return nil, fmt.Errorf("placement: need %d racks, only %d eligible", count, len(pool))
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:count], nil
}

// sampleNodesInRackInto appends count distinct nodes drawn uniformly from
// rack r to s.nodes, using s.pool as the sampling pool.
func sampleNodesInRackInto(top *topology.Topology, r topology.RackID, count int, rng *rand.Rand, s *layoutScratch) error {
	pool, err := top.AppendNodesInRack(r, s.pool[:0])
	if err != nil {
		return err
	}
	s.pool = pool
	if count > len(pool) {
		return fmt.Errorf("placement: need %d nodes in rack %d, have %d", count, r, len(pool))
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		s.nodes = append(s.nodes, pool[i])
	}
	return nil
}
