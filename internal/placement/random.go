package placement

import (
	"fmt"
	"math/rand"

	"ear/internal/topology"
)

// Random implements RR, the HDFS default replica placement (paper Section
// II-A): the first replica goes to a node in a randomly chosen rack and the
// remaining r-1 replicas go to distinct nodes in one different randomly
// chosen rack, protecting against a two-node failure or a single-rack
// failure. With Config.SpreadReplicas every replica instead lands in its own
// rack.
type Random struct {
	cfg Config
	rng *rand.Rand
}

var _ Policy = (*Random)(nil)

// NewRandom returns an RR policy. The rng drives all randomized choices and
// makes runs reproducible.
func NewRandom(cfg Config, rng *rand.Rand) (*Random, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrInvalidConfig)
	}
	return &Random{cfg: cfg.withDefaults(), rng: rng}, nil
}

// Name returns "rr".
func (p *Random) Name() string { return "rr" }

// Place chooses replica locations for the block.
func (p *Random) Place(block topology.BlockID) (topology.Placement, error) {
	nodes, err := randomLayout(p.cfg, topology.RackID(-1), allRacks(p.cfg.Topology), p.rng)
	if err != nil {
		return topology.Placement{}, err
	}
	return topology.Placement{Block: block, Nodes: nodes}, nil
}

// TakeSealed always returns nil: RR groups blocks into stripes only at
// encoding time.
func (p *Random) TakeSealed() []*StripeInfo { return nil }

// randomLayout generates one replica layout. If coreRack >= 0 the first
// replica is pinned to a random node of that rack (the EAR case) and the
// remaining replicas avoid it; otherwise the first replica's rack is chosen
// uniformly. remoteRacks is the eligible set for the non-first replicas.
func randomLayout(cfg Config, coreRack topology.RackID, remoteRacks []topology.RackID, rng *rand.Rand) ([]topology.NodeID, error) {
	top := cfg.Topology
	nodes := make([]topology.NodeID, 0, cfg.Replicas)

	firstRack := coreRack
	if firstRack < 0 {
		firstRack = topology.RackID(rng.Intn(top.Racks()))
	}
	first, err := sampleNodesInRack(top, firstRack, 1, rng)
	if err != nil {
		return nil, err
	}
	nodes = append(nodes, first[0])
	if cfg.Replicas == 1 {
		return nodes, nil
	}

	if cfg.SpreadReplicas {
		racks, err := sampleRacksExcluding(remoteRacks, firstRack, cfg.Replicas-1, rng)
		if err != nil {
			return nil, err
		}
		for _, r := range racks {
			n, err := sampleNodesInRack(top, r, 1, rng)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n[0])
		}
		return nodes, nil
	}

	racks, err := sampleRacksExcluding(remoteRacks, firstRack, 1, rng)
	if err != nil {
		return nil, err
	}
	remote, err := sampleNodesInRack(top, racks[0], cfg.Replicas-1, rng)
	if err != nil {
		return nil, err
	}
	nodes = append(nodes, remote...)
	return nodes, nil
}
