package placement

import (
	"fmt"
	"sort"

	"ear/internal/topology"
)

// PipelineHop is one stage of a RapidRAID-style pipelined encode: the node
// that folds its local stripe members into the partial parity sums as they
// stream through, and the data positions it contributes.
type PipelineHop struct {
	Node topology.NodeID
	Rack topology.RackID
	// Positions lists the stripe data positions (indices into the stripe's
	// block list) whose bytes this hop reads locally, sorted ascending.
	Positions []int
}

// PlanPipeline orders the replica holders of a stripe into an encode
// pipeline ending at the sink (the encoding node). replicas[i] lists the
// live holders of stripe position i; an empty entry means the position
// contributes zeros (aborted member or short-stripe padding) and needs no
// hop. The plan is a minimal-ish cover of the positions by holders (greedy
// set cover: each chosen node folds every still-uncovered position it
// holds), ordered so that hops in the same rack are adjacent and the sink's
// rack comes last. Partial sums therefore aggregate within each rack before
// crossing the core once per rack boundary, and the final hop-to-sink
// transfer is intra-rack whenever the sink's rack holds any member.
//
// The plan is deterministic: ties prefer the sink itself, then sink-rack
// nodes, then the lowest node ID, so two calls with the same inputs yield
// the same chain (the differential tests rely on this).
func PlanPipeline(top *topology.Topology, replicas [][]topology.NodeID, sink topology.NodeID) ([]PipelineHop, error) {
	sinkRack, err := top.RackOf(sink)
	if err != nil {
		return nil, err
	}
	// holders: node -> positions it can serve, racks resolved once.
	holds := make(map[topology.NodeID][]int)
	rackOf := make(map[topology.NodeID]topology.RackID)
	uncovered := 0
	for i, nodes := range replicas {
		if len(nodes) == 0 {
			continue
		}
		uncovered++
		for _, n := range nodes {
			if _, ok := rackOf[n]; !ok {
				r, err := top.RackOf(n)
				if err != nil {
					return nil, err
				}
				rackOf[n] = r
			}
			holds[n] = append(holds[n], i)
		}
	}
	covered := make(map[int]bool, uncovered)
	var hops []PipelineHop
	for len(covered) < uncovered {
		var best topology.NodeID = -1
		bestGain, bestRank := 0, -1
		for n, positions := range holds {
			gain := 0
			for _, p := range positions {
				if !covered[p] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			// Rank breaks gain ties: the sink itself beats its rack peers,
			// which beat remote nodes; equal ranks resolve to the lowest ID.
			rank := 0
			switch {
			case n == sink:
				rank = 2
			case rackOf[n] == sinkRack:
				rank = 1
			}
			if gain > bestGain ||
				(gain == bestGain && (rank > bestRank || (rank == bestRank && n < best))) {
				best, bestGain, bestRank = n, gain, rank
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("placement: pipeline cover stuck with %d of %d positions uncovered",
				uncovered-len(covered), uncovered)
		}
		hop := PipelineHop{Node: best, Rack: rackOf[best]}
		for _, p := range holds[best] {
			if !covered[p] {
				covered[p] = true
				hop.Positions = append(hop.Positions, p)
			}
		}
		sort.Ints(hop.Positions)
		hops = append(hops, hop)
		delete(holds, best)
	}
	// Rack-contiguous order with the sink's rack last; within a rack the
	// sink node itself goes last so the chain can terminate there without an
	// extra hop. Everything else orders by (rack, node) for determinism.
	sort.SliceStable(hops, func(a, b int) bool {
		ra, rb := hops[a].Rack, hops[b].Rack
		if (ra == sinkRack) != (rb == sinkRack) {
			return rb == sinkRack
		}
		if ra != rb {
			return ra < rb
		}
		if (hops[a].Node == sink) != (hops[b].Node == sink) {
			return hops[b].Node == sink
		}
		return hops[a].Node < hops[b].Node
	})
	return hops, nil
}

// PipelineRackBoundaries counts the cross-rack transitions a pipeline plan
// incurs, including the final hop-to-sink transfer. Each boundary ships one
// set of partial parity sums across the core.
func PipelineRackBoundaries(hops []PipelineHop, sinkRack topology.RackID) int {
	if len(hops) == 0 {
		return 0
	}
	boundaries := 0
	for i := 1; i < len(hops); i++ {
		if hops[i].Rack != hops[i-1].Rack {
			boundaries++
		}
	}
	if hops[len(hops)-1].Rack != sinkRack {
		boundaries++
	}
	return boundaries
}
