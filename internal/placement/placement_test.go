package placement

import (
	"errors"
	"math/rand"
	"testing"

	"ear/internal/topology"
)

func mustTop(t *testing.T, racks, nodes int) *topology.Topology {
	t.Helper()
	top, err := topology.New(racks, nodes)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	return top
}

func baseConfig(t *testing.T, racks, nodesPerRack, n, k int) Config {
	t.Helper()
	return Config{Topology: mustTop(t, racks, nodesPerRack), K: k, N: n}
}

func TestConfigValidate(t *testing.T) {
	top := mustTop(t, 5, 6)
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid default", Config{Topology: top, K: 4, N: 5}, true},
		{"nil topology", Config{K: 4, N: 5}, false},
		{"k <= 0", Config{Topology: top, K: 0, N: 5}, false},
		{"n <= k", Config{Topology: top, K: 5, N: 5}, false},
		{"replicas negative", Config{Topology: top, K: 4, N: 5, Replicas: -1}, false},
		{"spread too wide", Config{Topology: top, K: 3, N: 4, Replicas: 6, SpreadReplicas: true}, false},
		{"remote rack too small", Config{Topology: top, K: 3, N: 4, Replicas: 8}, false},
		{"stripe does not fit", Config{Topology: top, K: 4, N: 6, TargetRacks: 2, C: 1}, false},
		{"stripe fits with c", Config{Topology: top, K: 4, N: 6, TargetRacks: 2, C: 3}, true},
		{"too many target racks", Config{Topology: top, K: 4, N: 5, TargetRacks: 9}, false},
		{"c too small for k", Config{Topology: mustTop(t, 3, 10), K: 8, N: 9, C: 2}, false},
		{"too few nodes for stripe", Config{Topology: mustTop(t, 5, 2), K: 8, N: 12, C: 3}, false},
		{"just enough nodes", Config{Topology: mustTop(t, 5, 2), K: 6, N: 10, C: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate: %v, want nil", err)
			}
			if !tt.ok && !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("Validate: %v, want ErrInvalidConfig", err)
			}
		})
	}
}

func TestNewPolicyNilRNG(t *testing.T) {
	cfg := baseConfig(t, 5, 6, 5, 4)
	if _, err := NewRandom(cfg, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewRandom(nil rng): %v", err)
	}
	if _, err := NewEAR(cfg, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewEAR(nil rng): %v", err)
	}
}

func TestRandomPlacementShape(t *testing.T) {
	cfg := baseConfig(t, 5, 6, 5, 4)
	rng := rand.New(rand.NewSource(1))
	p, err := NewRandom(cfg, rng)
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	if p.Name() != "rr" {
		t.Errorf("Name() = %q", p.Name())
	}
	if got := p.TakeSealed(); got != nil {
		t.Errorf("RR TakeSealed = %v, want nil", got)
	}
	top := cfg.Topology
	for b := 0; b < 500; b++ {
		pl, err := p.Place(topology.BlockID(b))
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		if len(pl.Nodes) != 3 {
			t.Fatalf("placement has %d replicas, want 3", len(pl.Nodes))
		}
		// Distinct nodes.
		seen := map[topology.NodeID]bool{}
		for _, n := range pl.Nodes {
			if seen[n] {
				t.Fatalf("duplicate node %d in placement %v", n, pl.Nodes)
			}
			seen[n] = true
		}
		// HDFS default: exactly two racks, replicas 2 and 3 share a rack
		// different from replica 1's.
		set, err := pl.RackSet(top)
		if err != nil {
			t.Fatalf("RackSet: %v", err)
		}
		if len(set) != 2 {
			t.Fatalf("placement spans %d racks, want 2: %v", len(set), pl.Nodes)
		}
		r1, _ := top.RackOf(pl.Nodes[0])
		r2, _ := top.RackOf(pl.Nodes[1])
		r3, _ := top.RackOf(pl.Nodes[2])
		if r2 != r3 || r1 == r2 {
			t.Fatalf("replica racks (%d, %d, %d) violate HDFS default", r1, r2, r3)
		}
	}
}

func TestRandomPlacementSpreadReplicas(t *testing.T) {
	cfg := baseConfig(t, 12, 4, 10, 8)
	cfg.Replicas = 4
	cfg.SpreadReplicas = true
	rng := rand.New(rand.NewSource(2))
	p, err := NewRandom(cfg, rng)
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	for b := 0; b < 200; b++ {
		pl, err := p.Place(topology.BlockID(b))
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		set, err := pl.RackSet(cfg.Topology)
		if err != nil {
			t.Fatalf("RackSet: %v", err)
		}
		if len(set) != 4 {
			t.Fatalf("spread placement spans %d racks, want 4", len(set))
		}
	}
}

func TestRandomSingleReplica(t *testing.T) {
	cfg := baseConfig(t, 5, 2, 4, 3)
	cfg.Replicas = 1
	p, err := NewRandom(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	pl, err := p.Place(1)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if len(pl.Nodes) != 1 {
		t.Fatalf("placement has %d replicas, want 1", len(pl.Nodes))
	}
}

func TestEARCoreRackInvariant(t *testing.T) {
	// Every block of a sealed stripe must keep one replica (the first) in
	// the stripe's core rack, so the encoding node downloads nothing
	// cross-rack (design goal 1, Section III-A).
	cfg := baseConfig(t, 20, 5, 14, 10)
	rng := rand.New(rand.NewSource(4))
	p, err := NewEAR(cfg, rng)
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	if p.Name() != "ear" {
		t.Errorf("Name() = %q", p.Name())
	}
	for b := 0; b < 400; b++ {
		if _, err := p.Place(topology.BlockID(b)); err != nil {
			t.Fatalf("Place(%d): %v", b, err)
		}
	}
	sealed := p.TakeSealed()
	if len(sealed) == 0 {
		t.Fatal("no sealed stripes after 400 blocks with k=10")
	}
	if again := p.TakeSealed(); again != nil {
		t.Fatalf("second TakeSealed returned %d stripes, want none", len(again))
	}
	top := cfg.Topology
	for _, s := range sealed {
		if len(s.Blocks) != 10 {
			t.Fatalf("stripe %d sealed with %d blocks", s.ID, len(s.Blocks))
		}
		for i, pl := range s.Placements {
			r, err := top.RackOf(pl.Nodes[0])
			if err != nil {
				t.Fatalf("RackOf: %v", err)
			}
			if r != s.CoreRack {
				t.Fatalf("stripe %d block %d first replica in rack %d, core rack %d", s.ID, i, r, s.CoreRack)
			}
			// Any node in the core rack can encode with zero cross-rack
			// downloads.
			coreNodes, _ := top.NodesInRack(s.CoreRack)
			dl, err := CrossRackDownloads(top, s.Placements, coreNodes[0])
			if err != nil {
				t.Fatalf("CrossRackDownloads: %v", err)
			}
			if dl != 0 {
				t.Fatalf("stripe %d: %d cross-rack downloads from core rack", s.ID, dl)
			}
		}
	}
}

func TestEARPostEncodingNeverViolates(t *testing.T) {
	// Design goal 2 (Section III-B): the complete EAR never requires block
	// relocation, and the resulting layout tolerates n-k node failures and
	// floor((n-k)/c) rack failures.
	for _, tc := range []struct {
		racks, nodes, n, k, c int
	}{
		{20, 20, 14, 10, 1},
		{16, 10, 12, 10, 1},
		{6, 10, 6, 3, 3},
		{8, 10, 14, 10, 2},
	} {
		cfg := Config{Topology: mustTop(t, tc.racks, tc.nodes), K: tc.k, N: tc.n, C: tc.c}
		rng := rand.New(rand.NewSource(5))
		p, err := NewEAR(cfg, rng)
		if err != nil {
			t.Fatalf("NewEAR(%+v): %v", tc, err)
		}
		for b := 0; b < tc.k*20; b++ {
			if _, err := p.Place(topology.BlockID(b)); err != nil {
				t.Fatalf("Place: %v", err)
			}
		}
		for _, s := range p.TakeSealed() {
			plan, err := PlanPostEncoding(cfg, s, rng)
			if err != nil {
				t.Fatalf("PlanPostEncoding: %v", err)
			}
			if plan.Violation || len(plan.Relocated) > 0 {
				t.Fatalf("%+v: EAR stripe %d requires relocation", tc, s.ID)
			}
			layout := plan.Layout(s.ID)
			if err := layout.Validate(cfg.Topology, tc.c); err != nil {
				t.Fatalf("%+v: layout invalid: %v", tc, err)
			}
			// Every kept replica must be one of the block's replicas.
			for i, keep := range plan.Keep {
				if !s.Placements[i].Contains(keep) {
					t.Fatalf("kept node %d is not a replica of block %d", keep, i)
				}
			}
			ft, err := layout.TolerableRackFailures(cfg.Topology, tc.k)
			if err != nil {
				t.Fatalf("TolerableRackFailures: %v", err)
			}
			if want := (tc.n - tc.k) / tc.c; ft < want {
				t.Fatalf("%+v: layout tolerates %d rack failures, want >= %d", tc, ft, want)
			}
		}
	}
}

func TestEARTargetRacks(t *testing.T) {
	// Section III-D: with c = n-k and R' target racks, all post-encoding
	// blocks stay inside the stripe's target racks.
	cfg := baseConfig(t, 6, 6, 6, 3)
	cfg.C = 3
	cfg.TargetRacks = 2
	rng := rand.New(rand.NewSource(6))
	p, err := NewEAR(cfg, rng)
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	for b := 0; b < 60; b++ {
		if _, err := p.Place(topology.BlockID(b)); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	sealed := p.TakeSealed()
	if len(sealed) == 0 {
		t.Fatal("no sealed stripes")
	}
	for _, s := range sealed {
		if len(s.Targets) != 2 {
			t.Fatalf("stripe %d has %d target racks, want 2", s.ID, len(s.Targets))
		}
		if s.Targets[0] != s.CoreRack {
			t.Fatalf("core rack %d not first target %v", s.CoreRack, s.Targets)
		}
		plan, err := PlanPostEncoding(cfg, s, rng)
		if err != nil {
			t.Fatalf("PlanPostEncoding: %v", err)
		}
		if plan.Violation {
			t.Fatalf("stripe %d violated with target racks", s.ID)
		}
		targets := map[topology.RackID]bool{}
		for _, r := range s.Targets {
			targets[r] = true
		}
		for _, n := range plan.Layout(s.ID).AllNodes() {
			r, _ := cfg.Topology.RackOf(n)
			if !targets[r] {
				t.Fatalf("stripe %d places a block in non-target rack %d", s.ID, r)
			}
		}
	}
}

func TestEARFullRecomputeEquivalence(t *testing.T) {
	// The incremental and full-recompute feasibility checks accept the same
	// layouts, so identical RNG streams produce identical placements.
	cfg := baseConfig(t, 10, 6, 9, 6)
	inc, err := NewEAR(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	cfgFull := cfg
	cfgFull.FullRecompute = true
	full, err := NewEAR(cfgFull, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewEAR full: %v", err)
	}
	for b := 0; b < 120; b++ {
		p1, err := inc.Place(topology.BlockID(b))
		if err != nil {
			t.Fatalf("inc Place: %v", err)
		}
		p2, err := full.Place(topology.BlockID(b))
		if err != nil {
			t.Fatalf("full Place: %v", err)
		}
		if len(p1.Nodes) != len(p2.Nodes) {
			t.Fatalf("block %d: placements differ in size", b)
		}
		for i := range p1.Nodes {
			if p1.Nodes[i] != p2.Nodes[i] {
				t.Fatalf("block %d: incremental %v != full %v", b, p1.Nodes, p2.Nodes)
			}
		}
	}
}

func TestEARFlushOpen(t *testing.T) {
	cfg := baseConfig(t, 5, 6, 5, 4)
	p, err := NewEAR(cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	// Place 2 blocks into one stripe (fewer than k=4), pinned to rack 0.
	for b := 0; b < 2; b++ {
		if _, err := p.PlaceAt(topology.BlockID(b), 0); err != nil {
			t.Fatalf("PlaceAt: %v", err)
		}
	}
	if got := p.TakeSealed(); len(got) != 0 {
		t.Fatalf("TakeSealed = %d stripes, want 0", len(got))
	}
	open := p.FlushOpen()
	if len(open) != 1 || len(open[0].Blocks) != 2 {
		t.Fatalf("FlushOpen = %+v, want one stripe of 2 blocks", open)
	}
	if again := p.FlushOpen(); len(again) != 0 {
		t.Fatal("second FlushOpen should be empty")
	}
}

func TestEARPlaceAtValidatesRack(t *testing.T) {
	cfg := baseConfig(t, 5, 6, 5, 4)
	p, err := NewEAR(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	if _, err := p.PlaceAt(1, 99); !errors.Is(err, topology.ErrUnknownRack) {
		t.Errorf("PlaceAt bad rack: %v", err)
	}
}

func TestPreliminaryEARSkipsFlowCheck(t *testing.T) {
	cfg := baseConfig(t, 5, 6, 5, 4)
	cfg.Preliminary = true
	p, err := NewEAR(cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	if p.Name() != "ear-preliminary" {
		t.Errorf("Name() = %q", p.Name())
	}
	for b := 0; b < 200; b++ {
		if _, err := p.Place(topology.BlockID(b)); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	for _, s := range p.TakeSealed() {
		for _, it := range s.Iterations {
			if it != 1 {
				t.Fatalf("preliminary EAR retried a layout (iterations = %d)", it)
			}
		}
	}
}

func TestTheorem1IterationBound(t *testing.T) {
	// Theorem 1: E_i <= (1 - floor((i-1)/c)/(R-1))^-1. With R=20, c=1,
	// k=10 the worst bound is ~1.9. Check the empirical mean with slack.
	cfg := baseConfig(t, 20, 20, 14, 10)
	rng := rand.New(rand.NewSource(11))
	p, err := NewEAR(cfg, rng)
	if err != nil {
		t.Fatalf("NewEAR: %v", err)
	}
	for b := 0; b < 10*200; b++ {
		if _, err := p.Place(topology.BlockID(b)); err != nil {
			t.Fatalf("Place: %v", err)
		}
	}
	var sum, count float64
	maxMean := 0.0
	perIndex := make([]float64, 10)
	perCount := make([]float64, 10)
	for _, s := range p.TakeSealed() {
		for i, it := range s.Iterations {
			sum += float64(it)
			count++
			perIndex[i] += float64(it)
			perCount[i]++
		}
	}
	if count == 0 {
		t.Fatal("no iterations recorded")
	}
	for i := range perIndex {
		if perCount[i] == 0 {
			continue
		}
		mean := perIndex[i] / perCount[i]
		if mean > maxMean {
			maxMean = mean
		}
		// Bound for index i (1-based i+1): (1 - i/(R-1))^-1 with c=1.
		bound := 1.0 / (1.0 - float64(i)/19.0)
		if mean > bound*1.5 { // generous sampling slack
			t.Errorf("block index %d: mean iterations %.3f exceeds bound %.3f", i+1, mean, bound)
		}
	}
	if avg := sum / count; avg > 1.6 {
		t.Errorf("overall mean iterations %.3f unexpectedly high", avg)
	}
}

func TestMotivatingExampleRR(t *testing.T) {
	// Figure 2(a): 5 racks x 6 nodes, 4 blocks, (5,4) code. Reproduce the
	// exact layout of the figure and confirm RR's two problems: every
	// encoder suffers a cross-rack download, and rack-level fault
	// tolerance cannot be met without relocation.
	top := mustTop(t, 5, 6)
	cfg := Config{Topology: top, K: 4, N: 5, C: 1}
	node := func(rack, idx int) topology.NodeID {
		return topology.NodeID(rack*6 + idx)
	}
	// Block 1 replicas in racks 1 and 2 (figure numbering is 1-based;
	// ours 0-based): blocks 2, 3, 4 all have a replica in rack 3 (ours 2).
	placements := []topology.Placement{
		{Block: 1, Nodes: []topology.NodeID{node(0, 0), node(1, 0), node(1, 1)}},
		{Block: 2, Nodes: []topology.NodeID{node(2, 0), node(1, 2), node(1, 3)}},
		{Block: 3, Nodes: []topology.NodeID{node(2, 1), node(3, 0), node(3, 1)}},
		{Block: 4, Nodes: []topology.NodeID{node(2, 2), node(1, 4), node(1, 5)}},
	}
	info := &StripeInfo{ID: 1, CoreRack: -1, Blocks: []topology.BlockID{1, 2, 3, 4}, Placements: placements}

	// No node anywhere reaches all four blocks within its rack.
	for n := 0; n < top.Nodes(); n++ {
		dl, err := CrossRackDownloads(top, placements, topology.NodeID(n))
		if err != nil {
			t.Fatalf("CrossRackDownloads: %v", err)
		}
		if dl == 0 {
			t.Fatalf("node %d encodes without cross-rack downloads; figure says impossible", n)
		}
	}
	rng := rand.New(rand.NewSource(12))
	best, dl, err := BestEncoderNode(top, placements, rng)
	if err != nil {
		t.Fatalf("BestEncoderNode: %v", err)
	}
	bestRack, _ := top.RackOf(best)
	if (bestRack != 1 && bestRack != 2) || dl != 1 {
		t.Fatalf("best encoder rack = %d with %d downloads, want rack 1 or 2 with 1 (both cover 3 blocks)", bestRack, dl)
	}

	// The availability issue: blocks 1, 2, 4 replicas span only racks
	// {0,1,2}; keeping one replica each with c=1 is impossible over 3 racks
	// for... actually 3 blocks fit 3 racks; but block 3 must then use rack 3,
	// and with blocks 2,4 confined to racks 1,2 minus block 1's options the
	// matching exists or not depending on structure. The paper's figure
	// deletes specific replicas and shows rack 2 (ours 1) ends with two
	// blocks. Verify our planner instead finds whether any valid deletion
	// exists; with this layout it does not for c=1 over 5 blocks including
	// parity on rack 5: blocks 2 and 4 share racks {1, 2} with block 1
	// (racks {0, 1}), block 3 ({2, 3}): a system of distinct representatives
	// exists (1->0, 2->1, 3->3, 4->2), so no violation — matching saves RR
	// here, matching the paper's note that relocation is needed only for
	// specific deletion choices. Force the figure's naive deletion instead.
	plan, err := PlanPostEncoding(cfg, info, rng)
	if err != nil {
		t.Fatalf("PlanPostEncoding: %v", err)
	}
	if plan.Violation {
		t.Fatal("matching-based deletion should avoid relocation for this layout")
	}
	if err := plan.Layout(info.ID).Validate(top, 1); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
}

func TestMotivatingExampleRRViolation(t *testing.T) {
	// A layout where even optimal deletion cannot satisfy c=1: three blocks
	// whose replicas all live in the same two racks (the Section III-A
	// "availability violation" example with (4,3)).
	top := mustTop(t, 4, 6)
	cfg := Config{Topology: top, K: 3, N: 4, C: 1}
	node := func(rack, idx int) topology.NodeID {
		return topology.NodeID(rack*6 + idx)
	}
	placements := []topology.Placement{
		{Block: 1, Nodes: []topology.NodeID{node(0, 0), node(1, 0), node(1, 1)}},
		{Block: 2, Nodes: []topology.NodeID{node(0, 1), node(1, 2), node(1, 3)}},
		{Block: 3, Nodes: []topology.NodeID{node(0, 2), node(1, 4), node(1, 5)}},
	}
	info := &StripeInfo{ID: 2, CoreRack: -1, Blocks: []topology.BlockID{1, 2, 3}, Placements: placements}
	rng := rand.New(rand.NewSource(13))
	plan, err := PlanPostEncoding(cfg, info, rng)
	if err != nil {
		t.Fatalf("PlanPostEncoding: %v", err)
	}
	if !plan.Violation {
		t.Fatal("three blocks across two racks with c=1 must violate")
	}
	if len(plan.Relocated) == 0 {
		t.Fatal("violation without relocation plan")
	}
}

func TestCrossRackDownloadsErrors(t *testing.T) {
	top := mustTop(t, 2, 2)
	if _, err := CrossRackDownloads(top, nil, 99); err == nil {
		t.Error("bad encoder node: expected error")
	}
	bad := []topology.Placement{{Block: 1, Nodes: []topology.NodeID{77}}}
	if _, err := CrossRackDownloads(top, bad, 0); err == nil {
		t.Error("bad replica node: expected error")
	}
}

func TestGroupIntoStripes(t *testing.T) {
	blocks := []topology.BlockID{1, 2, 3, 4, 5}
	placements := map[topology.BlockID]topology.Placement{}
	for _, b := range blocks {
		placements[b] = topology.Placement{Block: b, Nodes: []topology.NodeID{0}}
	}
	stripes, err := GroupIntoStripes(2, blocks, placements, 10)
	if err != nil {
		t.Fatalf("GroupIntoStripes: %v", err)
	}
	if len(stripes) != 2 {
		t.Fatalf("got %d stripes, want 2 (block 5 left over)", len(stripes))
	}
	if stripes[0].ID != 10 || stripes[1].ID != 11 {
		t.Fatalf("stripe IDs = %d, %d", stripes[0].ID, stripes[1].ID)
	}
	if stripes[1].Blocks[0] != 3 {
		t.Fatalf("stripe 1 starts at block %d, want 3", stripes[1].Blocks[0])
	}
	if _, err := GroupIntoStripes(0, blocks, placements, 0); err == nil {
		t.Error("k=0: expected error")
	}
	delete(placements, 2)
	if _, err := GroupIntoStripes(2, blocks, placements, 0); err == nil {
		t.Error("missing placement: expected error")
	}
}

func TestRRFrequentlyNeedsCrossRackDownloads(t *testing.T) {
	// Section II-B analysis: under RR with k blocks over R racks, a random
	// encoder downloads ~ k - 2k/R blocks cross-rack. Sanity-check the
	// Monte-Carlo mean is near the closed form.
	cfg := baseConfig(t, 20, 20, 14, 10)
	rng := rand.New(rand.NewSource(14))
	p, err := NewRandom(cfg, rng)
	if err != nil {
		t.Fatalf("NewRandom: %v", err)
	}
	total := 0.0
	const stripes = 200
	for s := 0; s < stripes; s++ {
		placements := make([]topology.Placement, 10)
		for i := range placements {
			pl, err := p.Place(topology.BlockID(s*10 + i))
			if err != nil {
				t.Fatalf("Place: %v", err)
			}
			placements[i] = pl
		}
		enc := RandomEncoderNode(cfg.Topology, rng)
		dl, err := CrossRackDownloads(cfg.Topology, placements, enc)
		if err != nil {
			t.Fatalf("CrossRackDownloads: %v", err)
		}
		total += float64(dl)
	}
	mean := total / stripes
	want := 10.0 - 2.0*10.0/20.0 // k - 2k/R = 9
	if mean < want-1.0 || mean > want+1.0 {
		t.Errorf("mean cross-rack downloads %.2f, analysis predicts %.2f", mean, want)
	}
}

func TestPlanPostEncodingValidation(t *testing.T) {
	cfg := baseConfig(t, 5, 6, 5, 4)
	rng := rand.New(rand.NewSource(15))
	if _, err := PlanPostEncoding(cfg, &StripeInfo{ID: 1}, rng); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("empty stripe: %v", err)
	}
	info := &StripeInfo{ID: 1, Blocks: []topology.BlockID{1}, Placements: []topology.Placement{{Block: 1, Nodes: []topology.NodeID{0}}}}
	if _, err := PlanPostEncoding(cfg, info, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil rng: %v", err)
	}
	bad := cfg
	bad.Topology = nil
	if _, err := PlanPostEncoding(bad, info, rng); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad config: %v", err)
	}
}
