package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"ear/internal/topology"
)

// checkPipeline validates the structural invariants of a pipeline plan:
// every non-empty position covered exactly once by a node that holds it,
// rack-contiguous hop order with the sink's rack last, and the sink node
// itself terminal when it participates.
func checkPipeline(t *testing.T, top *topology.Topology, replicas [][]topology.NodeID, sink topology.NodeID, hops []PipelineHop) {
	t.Helper()
	covered := make(map[int]int)
	for _, h := range hops {
		rk, err := top.RackOf(h.Node)
		if err != nil {
			t.Fatalf("hop node %d: %v", h.Node, err)
		}
		if rk != h.Rack {
			t.Errorf("hop node %d labeled rack %d, actual %d", h.Node, h.Rack, rk)
		}
		if len(h.Positions) == 0 {
			t.Errorf("hop node %d contributes no positions", h.Node)
		}
		for _, p := range h.Positions {
			covered[p]++
			holds := false
			for _, n := range replicas[p] {
				if n == h.Node {
					holds = true
					break
				}
			}
			if !holds {
				t.Errorf("hop node %d assigned position %d it does not hold", h.Node, p)
			}
		}
	}
	for p, nodes := range replicas {
		want := 0
		if len(nodes) > 0 {
			want = 1
		}
		if covered[p] != want {
			t.Errorf("position %d covered %d times, want %d", p, covered[p], want)
		}
	}
	// Rack contiguity: once the chain leaves a rack it never returns, and
	// the sink's rack, when present, is the final run.
	sinkRack, err := top.RackOf(sink)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[topology.RackID]bool)
	for i, h := range hops {
		if i > 0 && h.Rack == hops[i-1].Rack {
			continue
		}
		if seen[h.Rack] {
			t.Errorf("rack %d appears in two separate runs: %v", h.Rack, hops)
		}
		seen[h.Rack] = true
	}
	for i, h := range hops {
		if h.Rack == sinkRack && i < len(hops)-1 && hops[len(hops)-1].Rack != sinkRack {
			t.Errorf("sink rack %d not last in chain: %v", sinkRack, hops)
		}
		if h.Node == sink && i != len(hops)-1 {
			t.Errorf("sink node %d not terminal: %v", sink, hops)
		}
	}
}

func TestPlanPipelineStructure(t *testing.T) {
	top, err := topology.New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Positions spread over three racks, one aborted (empty) entry, sink in
	// rack 0 holding position 3. Nodes 0-2 rack 0, 3-5 rack 1, 6-8 rack 2.
	replicas := [][]topology.NodeID{
		{3, 6}, // racks 1 and 2
		{4, 0}, // racks 1 and 0
		{},     // aborted: contributes zeros
		{1, 7}, // racks 0 and 2
		{5},    // rack 1 only
	}
	sink := topology.NodeID(1)
	hops, err := PlanPipeline(top, replicas, sink)
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, top, replicas, sink, hops)
	if last := hops[len(hops)-1]; last.Rack != 0 {
		t.Errorf("chain ends in rack %d, want the sink's rack 0: %v", last.Rack, hops)
	}
	// The sink holds position 3, so the chain must terminate at the sink
	// itself and need no extra receive-only stage.
	if last := hops[len(hops)-1]; last.Node != sink {
		t.Errorf("chain ends at node %d, want sink %d: %v", last.Node, sink, hops)
	}
	if b := PipelineRackBoundaries(hops, 0); b < 1 || b > 2 {
		t.Errorf("rack boundaries = %d, want 1 or 2 for a 3-rack chain ending at the sink", b)
	}
}

func TestPlanPipelineAllAborted(t *testing.T) {
	top, err := topology.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := PlanPipeline(top, make([][]topology.NodeID, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 0 {
		t.Errorf("all-aborted stripe planned %d hops, want 0", len(hops))
	}
	if b := PipelineRackBoundaries(hops, 0); b != 0 {
		t.Errorf("empty chain has %d boundaries, want 0", b)
	}
}

func TestPlanPipelineIntraRackAggregation(t *testing.T) {
	// All members in the sink's rack: no boundary is ever crossed.
	top, err := topology.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	replicas := [][]topology.NodeID{{0}, {1}, {2}, {3}, {0, 2}}
	hops, err := PlanPipeline(top, replicas, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, top, replicas, 1, hops)
	if b := PipelineRackBoundaries(hops, 0); b != 0 {
		t.Errorf("single-rack stripe crossed %d boundaries, want 0", b)
	}
}

func TestPlanPipelineRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		racks := 2 + rng.Intn(5)
		npr := 1 + rng.Intn(4)
		top, err := topology.New(racks, npr)
		if err != nil {
			t.Fatal(err)
		}
		nodes := top.Nodes()
		k := 1 + rng.Intn(12)
		replicas := make([][]topology.NodeID, k)
		for i := range replicas {
			r := rng.Intn(4) // 0 = aborted member
			seen := make(map[topology.NodeID]bool)
			for len(replicas[i]) < r && len(seen) < nodes {
				n := topology.NodeID(rng.Intn(nodes))
				if !seen[n] {
					seen[n] = true
					replicas[i] = append(replicas[i], n)
				}
			}
		}
		sink := topology.NodeID(rng.Intn(nodes))
		hops, err := PlanPipeline(top, replicas, sink)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkPipeline(t, top, replicas, sink, hops)
		again, err := PlanPipeline(top, replicas, sink)
		if err != nil {
			t.Fatalf("trial %d replan: %v", trial, err)
		}
		if !reflect.DeepEqual(hops, again) {
			t.Fatalf("trial %d: plan not deterministic:\n%v\n%v", trial, hops, again)
		}
	}
}
