package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"ear/internal/maxflow"
	"ear/internal/topology"
)

// sortStripesByCore orders stripes by core rack (at most one open stripe per
// rack, so the order is total) for deterministic serialization.
func sortStripesByCore(s []*StripeInfo) {
	sort.Slice(s, func(i, j int) bool { return s[i].CoreRack < s[j].CoreRack })
}

// EAR implements encoding-aware replication (paper Section III). Each rack
// owns one open stripe at a time; a block's first replica lands in some rack
// (the stripe's core rack) and the remaining replicas are placed randomly,
// regenerated until the stripe's flow graph keeps a maximum flow equal to
// the number of blocks placed so far (Section III-C). Once a stripe
// accumulates k blocks it is sealed and handed to the encoding pipeline via
// TakeSealed.
type EAR struct {
	cfg Config
	rng *rand.Rand

	nextStripe topology.StripeID
	// open maps core rack to the stripe currently accumulating blocks there.
	open map[topology.RackID]*openStripe
	// sealed holds completed stripes not yet drained by TakeSealed.
	sealed []*StripeInfo
	// racks caches the full rack list; scratch backs candidate layout
	// generation so rejected candidates allocate nothing.
	racks        []topology.RackID
	scratch      layoutScratch
	lastAttempts int
	lastTargets  []topology.RackID
	// flowPool recycles the flow state of sealed stripes: once a stripe
	// seals, nothing reads its graph again, so the next open stripe reuses
	// the adjacency storage instead of rebuilding it from zero.
	flowPool []*stripeFlow
}

// openStripe tracks an in-progress stripe together with its incremental
// flow state.
type openStripe struct {
	info *StripeInfo
	// flow is the feasibility graph over all blocks accepted so far, with
	// flow equal to len(info.Blocks) already pushed. Nil in preliminary or
	// full-recompute modes.
	flow *stripeFlow
}

var _ Policy = (*EAR)(nil)

// NewEAR returns an EAR policy (or the paper's "preliminary EAR" when
// cfg.Preliminary is set).
func NewEAR(cfg Config, rng *rand.Rand) (*EAR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrInvalidConfig)
	}
	cfg = cfg.withDefaults()
	return &EAR{
		cfg:   cfg,
		rng:   rng,
		open:  make(map[topology.RackID]*openStripe),
		racks: allRacks(cfg.Topology),
	}, nil
}

// LastPlaceAttempts reports how many candidate layouts the most recent
// Place/PlaceAt call generated before accepting one (Theorem 1's iteration
// count); 0 before the first call.
func (p *EAR) LastPlaceAttempts() int { return p.lastAttempts }

// LastPlaceTargets returns the target-rack set of the stripe the most recent
// Place/PlaceAt call placed into (nil when TargetRacks is unset). The
// write-ahead op layer records it so replay can reopen the stripe with the
// same targets instead of re-drawing them from the rng.
func (p *EAR) LastPlaceTargets() []topology.RackID { return p.lastTargets }

// Name returns "ear" (or "ear-preliminary").
func (p *EAR) Name() string {
	if p.cfg.Preliminary {
		return "ear-preliminary"
	}
	return "ear"
}

// Place decides the replica locations for a new block. The first replica's
// rack is chosen uniformly at random, mirroring RR's load balancing; that
// rack becomes (or already is) the core rack of the stripe the block joins.
func (p *EAR) Place(block topology.BlockID) (topology.Placement, error) {
	core := topology.RackID(p.rng.Intn(p.cfg.Topology.Racks()))
	return p.PlaceAt(block, core)
}

// PlaceAt places a block whose first replica must land in the given rack,
// the case where the writer is a node of that rack (HDFS writes the first
// replica locally).
func (p *EAR) PlaceAt(block topology.BlockID, core topology.RackID) (topology.Placement, error) {
	if int(core) < 0 || int(core) >= p.cfg.Topology.Racks() {
		return topology.Placement{}, fmt.Errorf("%w: %d", topology.ErrUnknownRack, core)
	}
	os, err := p.openFor(core)
	if err != nil {
		return topology.Placement{}, err
	}
	nodes, iters, err := p.placeInStripe(os, block)
	if err != nil {
		return topology.Placement{}, err
	}
	pl := topology.Placement{Block: block, Nodes: nodes}
	p.commitPlacement(os, pl, iters)
	return pl, nil
}

// commitPlacement records an accepted placement on its open stripe and seals
// the stripe once it reaches k blocks. Shared by the live path (PlaceAt) and
// the replay path (RestorePlacement).
func (p *EAR) commitPlacement(os *openStripe, pl topology.Placement, iters int) {
	os.info.Blocks = append(os.info.Blocks, pl.Block)
	os.info.Placements = append(os.info.Placements, pl.Clone())
	os.info.Iterations = append(os.info.Iterations, iters)
	p.lastTargets = os.info.Targets
	if len(os.info.Blocks) == p.cfg.K {
		p.sealed = append(p.sealed, os.info)
		p.recycleFlow(os)
		delete(p.open, os.info.CoreRack)
	}
}

// RestorePlacement re-applies a placement decision recorded in the op log:
// the block joins the open stripe of the given core rack (created with the
// recorded target racks if absent — no rng draw), its recorded layout is
// committed into the incremental flow state, and the stripe seals at k
// blocks exactly as on the live path. The layout was accepted when it was
// recorded, so a rejection here means the log does not match the topology
// and is reported as an error rather than retried.
func (p *EAR) RestorePlacement(block topology.BlockID, core topology.RackID, nodes []topology.NodeID, targets []topology.RackID, iterations int) error {
	if int(core) < 0 || int(core) >= p.cfg.Topology.Racks() {
		return fmt.Errorf("%w: %d", topology.ErrUnknownRack, core)
	}
	os, ok := p.open[core]
	if !ok {
		var err error
		os, err = p.openWith(core, append([]topology.RackID(nil), targets...))
		if err != nil {
			return err
		}
	}
	if !p.cfg.Preliminary && !p.cfg.FullRecompute {
		ok, err := os.flow.tryAdd(nodes)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("placement: recorded layout for block %d rejected by stripe %d flow — log and topology disagree", block, os.info.ID)
		}
	}
	p.lastAttempts = iterations
	p.commitPlacement(os, topology.Placement{Block: block, Nodes: cloneNodes(nodes)}, iterations)
	return nil
}

// DropOpen removes and returns the open stripe of the given core rack
// without sealing it (nil when the rack has none) — the replay counterpart
// of FlushOpen, driven one recorded stripe at a time so the flush order in
// the op log is reproduced exactly.
func (p *EAR) DropOpen(core topology.RackID) *StripeInfo {
	os, ok := p.open[core]
	if !ok {
		return nil
	}
	p.recycleFlow(os)
	delete(p.open, core)
	return os.info
}

// OpenState exports the policy's replayable state: the stripe-ID counter and
// clones of the open stripes sorted by core rack. It is the deterministic
// serialization surface for NameNode snapshots; the rng is deliberately
// excluded (randomness is consumed at propose time and its outcomes are what
// the ops record). Sealed-but-undrained stripes are not exported — the
// NameNode drains TakeSealed under the same lock as PlaceAt, so none exist
// when a snapshot runs.
func (p *EAR) OpenState() (next topology.StripeID, open []*StripeInfo) {
	open = make([]*StripeInfo, 0, len(p.open))
	for _, os := range p.open {
		open = append(open, os.info.Clone())
	}
	sortStripesByCore(open)
	return p.nextStripe, open
}

// RestoreOpenState resets the policy to a snapshot exported by OpenState,
// rebuilding each open stripe's incremental flow graph by re-admitting its
// recorded placements. A placement the flow rejects means the snapshot does
// not match the topology and is an error.
func (p *EAR) RestoreOpenState(next topology.StripeID, open []*StripeInfo) error {
	for r, os := range p.open {
		p.recycleFlow(os)
		delete(p.open, r)
	}
	p.sealed = nil
	p.nextStripe = next
	for _, info := range open {
		if len(info.Blocks) >= p.cfg.K {
			return fmt.Errorf("placement: snapshot open stripe %d already holds %d >= k blocks", info.ID, len(info.Blocks))
		}
		os := &openStripe{info: &StripeInfo{ID: info.ID, CoreRack: info.CoreRack,
			Targets: append([]topology.RackID(nil), info.Targets...)}}
		if err := p.attachFlow(os); err != nil {
			return err
		}
		for i, pl := range info.Placements {
			if !p.cfg.Preliminary && !p.cfg.FullRecompute {
				ok, err := os.flow.tryAdd(pl.Nodes)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("placement: snapshot layout for block %d rejected by stripe %d flow", pl.Block, info.ID)
				}
			}
			os.info.Blocks = append(os.info.Blocks, info.Blocks[i])
			os.info.Placements = append(os.info.Placements, pl.Clone())
			os.info.Iterations = append(os.info.Iterations, info.Iterations[i])
		}
		p.open[info.CoreRack] = os
	}
	return nil
}

// recycleFlow returns a sealed stripe's flow state to the pool.
func (p *EAR) recycleFlow(os *openStripe) {
	if os.flow != nil {
		p.flowPool = append(p.flowPool, os.flow)
		os.flow = nil
	}
}

// TakeSealed drains and returns stripes completed since the previous call.
func (p *EAR) TakeSealed() []*StripeInfo {
	s := p.sealed
	p.sealed = nil
	return s
}

// FlushOpen seals and returns every in-progress stripe regardless of how
// many blocks it holds (short stripes at end of workload). Open state is
// cleared.
func (p *EAR) FlushOpen() []*StripeInfo {
	out := make([]*StripeInfo, 0, len(p.open))
	for r, os := range p.open {
		out = append(out, os.info)
		p.recycleFlow(os)
		delete(p.open, r)
	}
	return out
}

// openFor returns the open stripe for the rack, creating one (and drawing
// its target racks, Section III-D) on first use.
func (p *EAR) openFor(core topology.RackID) (*openStripe, error) {
	if os, ok := p.open[core]; ok {
		return os, nil
	}
	var targets []topology.RackID
	if p.cfg.TargetRacks > 0 && p.cfg.TargetRacks < p.cfg.Topology.Racks() {
		others, err := sampleRacksExcluding(allRacks(p.cfg.Topology), core, p.cfg.TargetRacks-1, p.rng)
		if err != nil {
			return nil, err
		}
		targets = append([]topology.RackID{core}, others...)
	}
	return p.openWith(core, targets)
}

// openWith opens a stripe for the rack with an already-decided target set —
// the rng-free tail of openFor, called directly by RestorePlacement with the
// targets recorded in the op log.
func (p *EAR) openWith(core topology.RackID, targets []topology.RackID) (*openStripe, error) {
	info := &StripeInfo{
		ID:       p.nextStripe,
		CoreRack: core,
		Targets:  targets,
	}
	p.nextStripe++
	os := &openStripe{info: info}
	if err := p.attachFlow(os); err != nil {
		return nil, err
	}
	p.open[core] = os
	return os, nil
}

// attachFlow gives an open stripe its incremental flow state (pooled when
// available), or leaves it nil in preliminary/full-recompute modes.
func (p *EAR) attachFlow(os *openStripe) error {
	if p.cfg.Preliminary || p.cfg.FullRecompute {
		return nil
	}
	if n := len(p.flowPool); n > 0 {
		f := p.flowPool[n-1]
		p.flowPool[n-1] = nil
		p.flowPool = p.flowPool[:n-1]
		f.reset(os.info)
		os.flow = f
	} else {
		f, err := newStripeFlow(p.cfg, os.info)
		if err != nil {
			return err
		}
		os.flow = f
	}
	return nil
}

// remoteRacks returns the racks eligible for a stripe's non-first replicas:
// the stripe's target racks when configured, otherwise every rack. The core
// rack is excluded by randomLayout.
func (p *EAR) remoteRacks(info *StripeInfo) []topology.RackID {
	if len(info.Targets) > 0 {
		return info.Targets
	}
	return p.racks
}

// placeInStripe generates candidate layouts for the block until the
// stripe's flow graph accepts one (Section III-C step 5), returning the
// layout and the number of candidates generated (Theorem 1's iteration
// count).
// Candidate layouts live in p.scratch; the accepted one is cloned once into
// owned memory, so a rejected candidate costs no allocation at steady state.
func (p *EAR) placeInStripe(os *openStripe, block topology.BlockID) ([]topology.NodeID, int, error) {
	info := os.info
	i := len(info.Blocks) + 1 // this block's 1-based index within the stripe
	remote := p.remoteRacks(info)
	p.lastAttempts = 0
	for attempt := 1; attempt <= p.cfg.MaxRetries; attempt++ {
		p.lastAttempts = attempt
		nodes, err := randomLayoutInto(p.cfg, info.CoreRack, remote, p.rng, &p.scratch)
		if err != nil {
			return nil, 0, err
		}
		if p.cfg.Preliminary {
			return cloneNodes(nodes), attempt, nil
		}
		ok, err := p.accept(os, nodes, i)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			return cloneNodes(nodes), attempt, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: block %d of stripe %d after %d attempts",
		ErrRetriesExhausted, i, info.ID, p.cfg.MaxRetries)
}

// accept checks whether adding the candidate layout keeps the stripe
// feasible (max flow == i) and, if so, commits it to the incremental flow
// state.
func (p *EAR) accept(os *openStripe, nodes []topology.NodeID, i int) (bool, error) {
	if p.cfg.FullRecompute {
		layouts := make([][]topology.NodeID, 0, i)
		for _, pl := range os.info.Placements {
			layouts = append(layouts, pl.Nodes)
		}
		layouts = append(layouts, nodes)
		flow, err := solveStripeFlow(p.cfg, os.info, layouts)
		if err != nil {
			return false, err
		}
		return flow == int64(i), nil
	}
	return os.flow.tryAdd(nodes)
}

// stripeFlow is the paper's Section III-B flow graph for one stripe:
// source -> block vertices -> node vertices -> rack vertices -> sink, with
// unit capacities except rack->sink edges which carry capacity c and exist
// only for target racks. The struct supports incremental extension: tryAdd
// checkpoints the graph, wires a new block's replicas in, pushes a single
// augmenting path, and rolls the mutation back in place when the candidate
// is rejected — no cloning.
type stripeFlow struct {
	cfg    Config
	info   *StripeInfo
	graph  *maxflow.Graph
	blocks int
	// vertex ids
	source, sink int
	nodeVertex   map[topology.NodeID]int
	rackVertex   map[topology.RackID]int
	nextVertex   int
	// blockEdges[i] records the block->node edges of block i so the
	// post-encoding planner can read the matching back out of the flow.
	blockEdges [][]blockEdge
	// addedNodes/addedRacks log the vertex-map keys the in-flight addBlock
	// inserted, so a rejected candidate's entries can be deleted again.
	addedNodes []topology.NodeID
	addedRacks []topology.RackID
	// edgeScratch is the spare backing array for the next block's edge list,
	// reclaimed from rolled-back attempts; edgePool holds further spares
	// reclaimed when a recycled stripeFlow is reset.
	edgeScratch []blockEdge
	edgePool    [][]blockEdge
}

// blockEdge pairs a replica node with its block->node edge id.
type blockEdge struct {
	node   topology.NodeID
	edgeID int
}

// flowVertexBudget sizes the graph: source + sink + k blocks + up to k*r
// replica nodes + up to R racks.
func flowVertexBudget(cfg Config) int {
	return 2 + cfg.K + cfg.K*cfg.Replicas + cfg.Topology.Racks()
}

func newStripeFlow(cfg Config, info *StripeInfo) (*stripeFlow, error) {
	n := flowVertexBudget(cfg)
	g, err := maxflow.NewGraph(n)
	if err != nil {
		return nil, err
	}
	return &stripeFlow{
		cfg:        cfg,
		info:       info,
		graph:      g,
		source:     0,
		sink:       1,
		nodeVertex: make(map[topology.NodeID]int),
		rackVertex: make(map[topology.RackID]int),
		nextVertex: 2,
	}, nil
}

// reset re-targets a recycled stripeFlow at a fresh stripe, keeping every
// allocated buffer: the graph's adjacency storage, the vertex maps' buckets,
// and the per-block edge arrays (parked in edgePool for addBlock to reuse).
func (f *stripeFlow) reset(info *StripeInfo) {
	f.info = info
	f.graph.Reset()
	f.blocks = 0
	f.nextVertex = 2
	clear(f.nodeVertex)
	clear(f.rackVertex)
	for i, e := range f.blockEdges {
		f.edgePool = append(f.edgePool, e[:0])
		f.blockEdges[i] = nil
	}
	f.blockEdges = f.blockEdges[:0]
	f.addedNodes = f.addedNodes[:0]
	f.addedRacks = f.addedRacks[:0]
}

// isTarget reports whether rack r may hold post-encoding blocks.
func (f *stripeFlow) isTarget(r topology.RackID) bool {
	if len(f.info.Targets) == 0 {
		return true
	}
	for _, t := range f.info.Targets {
		if t == r {
			return true
		}
	}
	return false
}

// addBlock wires one block's replica nodes into the graph, logging inserted
// vertex-map keys so tryAdd can undo a rejected attempt.
func (f *stripeFlow) addBlock(nodes []topology.NodeID) error {
	if f.nextVertex >= f.graph.N() {
		return fmt.Errorf("placement: flow graph vertex budget exceeded")
	}
	blockV := f.nextVertex
	f.nextVertex++
	if _, err := f.graph.AddEdge(f.source, blockV, 1); err != nil {
		return err
	}
	edges := f.edgeScratch
	if edges == nil {
		if n := len(f.edgePool); n > 0 {
			edges = f.edgePool[n-1]
			f.edgePool[n-1] = nil
			f.edgePool = f.edgePool[:n-1]
		}
	}
	edges = edges[:0]
	for _, n := range nodes {
		nv, ok := f.nodeVertex[n]
		if !ok {
			nv = f.nextVertex
			f.nextVertex++
			f.nodeVertex[n] = nv
			f.addedNodes = append(f.addedNodes, n)
			r, err := f.cfg.Topology.RackOf(n)
			if err != nil {
				return err
			}
			rv, ok := f.rackVertex[r]
			if !ok {
				rv = f.nextVertex
				f.nextVertex++
				f.rackVertex[r] = rv
				f.addedRacks = append(f.addedRacks, r)
				if f.isTarget(r) {
					if _, err := f.graph.AddEdge(rv, f.sink, int64(f.cfg.C)); err != nil {
						return err
					}
				}
			}
			if _, err := f.graph.AddEdge(nv, rv, 1); err != nil {
				return err
			}
		}
		id, err := f.graph.AddEdge(blockV, nv, 1)
		if err != nil {
			return err
		}
		edges = append(edges, blockEdge{node: n, edgeID: id})
	}
	f.blockEdges = append(f.blockEdges, edges)
	f.edgeScratch = nil // ownership moved into blockEdges
	f.blocks++
	return nil
}

// tryAdd tentatively wires the candidate layout into the flow graph and
// pushes a single augmenting path (the source->block edge has capacity 1, so
// the max flow grows by at most one per block — paper Section III-C).
// Acceptance commits the mutation in place; rejection rolls the graph, the
// vertex maps, and the scratch buffers back so the attempt leaves no trace
// and, at steady state, allocates nothing.
func (f *stripeFlow) tryAdd(nodes []topology.NodeID) (bool, error) {
	ck := f.graph.Checkpoint()
	prevVertex, prevBlocks := f.nextVertex, f.blocks
	f.addedNodes = f.addedNodes[:0]
	f.addedRacks = f.addedRacks[:0]
	if err := f.addBlock(nodes); err != nil {
		f.rollbackAdd(ck, prevVertex, prevBlocks)
		return false, err
	}
	gain, err := f.graph.AugmentOne(f.source, f.sink)
	if err != nil {
		f.rollbackAdd(ck, prevVertex, prevBlocks)
		return false, err
	}
	if gain == 1 {
		return true, f.graph.Commit(ck)
	}
	return false, f.rollbackAdd(ck, prevVertex, prevBlocks)
}

// rollbackAdd undoes a tentative addBlock: graph edges and pushed flow via
// the checkpoint, vertex-map entries via the added-key logs, and the
// blockEdges tail, whose backing array is reclaimed as edge scratch.
func (f *stripeFlow) rollbackAdd(ck maxflow.Checkpoint, prevVertex, prevBlocks int) error {
	err := f.graph.Rollback(ck)
	for _, n := range f.addedNodes {
		delete(f.nodeVertex, n)
	}
	for _, r := range f.addedRacks {
		delete(f.rackVertex, r)
	}
	f.addedNodes = f.addedNodes[:0]
	f.addedRacks = f.addedRacks[:0]
	f.nextVertex = prevVertex
	if f.blocks > prevBlocks {
		last := len(f.blockEdges) - 1
		f.edgeScratch = f.blockEdges[last][:0]
		f.blockEdges[last] = nil
		f.blockEdges = f.blockEdges[:last]
		f.blocks = prevBlocks
	}
	return err
}

// solveStripeFlow builds the flow graph for the given layouts from scratch
// and returns its maximum flow (the full-recompute ablation path; also used
// by the post-encoding planner).
func solveStripeFlow(cfg Config, info *StripeInfo, layouts [][]topology.NodeID) (int64, error) {
	f, err := newStripeFlow(cfg, info)
	if err != nil {
		return 0, err
	}
	for _, nodes := range layouts {
		if err := f.addBlock(nodes); err != nil {
			return 0, err
		}
	}
	return f.graph.MaxFlow(f.source, f.sink)
}
