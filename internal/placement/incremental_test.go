package placement

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ear/internal/topology"
)

// TestPropertyIncrementalMatchesFullRecompute is the equivalence property at
// the policy level: an EAR instance using the rollback-based incremental flow
// and one rebuilding the graph from scratch for every candidate must make
// bit-identical decisions. Both consume the rng only for layout generation,
// so identical accept/reject sequences yield identical placements AND
// identical per-block iteration counts.
func TestPropertyIncrementalMatchesFullRecompute(t *testing.T) {
	f := func(seed int64) bool {
		cfgRng := rand.New(rand.NewSource(seed))
		cfg := randomValidConfig(t, cfgRng)
		full := cfg
		full.FullRecompute = true

		inc, err := NewEAR(cfg, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			t.Logf("seed %d: NewEAR: %v", seed, err)
			return false
		}
		rec, err := NewEAR(full, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			t.Logf("seed %d: NewEAR full: %v", seed, err)
			return false
		}
		for b := 0; b < 4*cfg.K; b++ {
			pi, errI := inc.Place(topology.BlockID(b))
			pf, errF := rec.Place(topology.BlockID(b))
			if (errI == nil) != (errF == nil) {
				t.Logf("seed %d block %d: err mismatch %v vs %v", seed, b, errI, errF)
				return false
			}
			if errI != nil {
				continue
			}
			if !reflect.DeepEqual(pi, pf) {
				t.Logf("seed %d block %d: placement %v vs %v", seed, b, pi, pf)
				return false
			}
			if inc.LastPlaceAttempts() != rec.LastPlaceAttempts() {
				t.Logf("seed %d block %d: attempts %d vs %d",
					seed, b, inc.LastPlaceAttempts(), rec.LastPlaceAttempts())
				return false
			}
			si, sf := inc.TakeSealed(), rec.TakeSealed()
			if !reflect.DeepEqual(si, sf) {
				t.Logf("seed %d block %d: sealed stripes diverge", seed, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTryAddMatchesFromScratch drives one stripeFlow through a
// random candidate stream and checks every tryAdd verdict against a flow
// graph rebuilt from scratch over the same layouts — the incremental
// accept/reject decision must match exactly, including after rollbacks (a
// rollback that left residue in the graph or vertex maps would diverge on a
// later candidate).
func TestPropertyTryAddMatchesFromScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomValidConfig(t, rng)
		core := topology.RackID(rng.Intn(cfg.Topology.Racks()))
		info := &StripeInfo{ID: 7, CoreRack: core}
		fl, err := newStripeFlow(cfg, info)
		if err != nil {
			return false
		}
		remote := allRacks(cfg.Topology)
		var accepted [][]topology.NodeID
		for trial := 0; trial < 60 && len(accepted) < cfg.K; trial++ {
			cand, err := randomLayout(cfg, core, remote, rng)
			if err != nil {
				t.Logf("seed %d: layout: %v", seed, err)
				return false
			}
			layouts := append(append([][]topology.NodeID(nil), accepted...), cand)
			flow, err := solveStripeFlow(cfg, info, layouts)
			if err != nil {
				t.Logf("seed %d: solve: %v", seed, err)
				return false
			}
			want := flow == int64(len(layouts))
			got, err := fl.tryAdd(cand)
			if err != nil {
				t.Logf("seed %d: tryAdd: %v", seed, err)
				return false
			}
			if got != want {
				t.Logf("seed %d trial %d: tryAdd=%v, from-scratch=%v (cand %v after %d accepted)",
					seed, trial, got, want, cand, len(accepted))
				return false
			}
			if got {
				accepted = append(accepted, cand)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// rejectionFixture builds a stripe flow holding two accepted blocks that
// saturate racks 0 and 1 (c=1), plus a candidate confined to those same two
// racks — guaranteed rejected, forever, since rollback restores the state.
func rejectionFixture(t *testing.T) (*stripeFlow, []topology.NodeID) {
	t.Helper()
	top, err := topology.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Topology: top, Replicas: 2, K: 3, N: 4, C: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg = cfg.withDefaults()
	info := &StripeInfo{ID: 1, CoreRack: 0}
	fl, err := newStripeFlow(cfg, info)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range [][]topology.NodeID{{0, 4}, {1, 5}} {
		ok, err := fl.tryAdd(layout)
		if err != nil || !ok {
			t.Fatalf("fixture layout %v: ok=%v err=%v", layout, ok, err)
		}
	}
	return fl, []topology.NodeID{2, 6} // racks {0,1}: both saturated
}

// TestTryAddRejectedCandidateAllocatesNothing is the zero-clone guarantee:
// once the scratch buffers are warm, a rejected candidate costs zero heap
// allocations — no graph clone, no map copies, nothing.
func TestTryAddRejectedCandidateAllocatesNothing(t *testing.T) {
	fl, cand := rejectionFixture(t)
	allocs := testing.AllocsPerRun(200, func() {
		ok, err := fl.tryAdd(cand)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("candidate unexpectedly accepted")
		}
	})
	if allocs != 0 {
		t.Errorf("rejected tryAdd allocates %.1f objects per run, want 0", allocs)
	}
}

// TestRandomLayoutIntoAllocatesNothing checks the candidate generator itself
// is allocation-free with a warm scratch.
func TestRandomLayoutIntoAllocatesNothing(t *testing.T) {
	top, err := topology.New(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Topology: top, Replicas: 3, K: 4, N: 6, C: 1}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(11))
	racks := allRacks(top)
	var s layoutScratch
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := randomLayoutInto(cfg, 0, racks, rng, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("randomLayoutInto allocates %.1f objects per run, want 0", allocs)
	}
}

// TestTryAddRollbackKeepsMatchingReadable verifies the post-encoding reader
// still works after interleaved rejections: accepted blocks' edges stay
// addressable and the matching covers every block.
func TestTryAddRollbackKeepsMatchingReadable(t *testing.T) {
	fl, cand := rejectionFixture(t)
	for i := 0; i < 5; i++ {
		if ok, err := fl.tryAdd(cand); err != nil || ok {
			t.Fatalf("rejection run %d: ok=%v err=%v", i, ok, err)
		}
	}
	// A third block over fresh racks is still accepted after the rejections.
	if ok, err := fl.tryAdd([]topology.NodeID{3, 8}); err != nil || !ok {
		t.Fatalf("accepting third block: ok=%v err=%v", ok, err)
	}
	match, err := fl.matching()
	if err != nil {
		t.Fatal(err)
	}
	if len(match) != 3 {
		t.Fatalf("matching covers %d blocks, want 3", len(match))
	}
	seen := map[topology.NodeID]bool{}
	for i, n := range match {
		if n < 0 {
			t.Errorf("block %d unmatched after accepted adds", i)
		}
		if seen[n] {
			t.Errorf("node %d matched twice", n)
		}
		seen[n] = true
	}
}
