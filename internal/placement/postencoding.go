package placement

import (
	"fmt"
	"math/rand"

	"ear/internal/topology"
)

// PostEncodingPlan is the output of the post-encoding layout planner: which
// replica of each data block survives the encoding operation, where the
// parity blocks go, and whether the fault-tolerance requirement forces block
// relocation (the availability issue of Section II-B, impossible under
// complete EAR by construction).
type PostEncodingPlan struct {
	// Keep[i] is the node retaining data block i. When Violation is set,
	// unmatched blocks keep their first replica and appear in Relocated.
	Keep []topology.NodeID
	// Parity[j] is the node assigned parity block j.
	Parity []topology.NodeID
	// Violation reports that no deletion choice satisfies the rack-level
	// fault-tolerance requirement, so the blocks listed in Relocated must
	// move after encoding (HDFS-RAID's PlacementMonitor + BlockMover).
	Violation bool
	// Relocated lists the indices of data blocks requiring relocation.
	Relocated []int
}

// Clone returns a deep copy of the plan.
func (p *PostEncodingPlan) Clone() *PostEncodingPlan {
	if p == nil {
		return nil
	}
	return &PostEncodingPlan{
		Keep:      append([]topology.NodeID(nil), p.Keep...),
		Parity:    append([]topology.NodeID(nil), p.Parity...),
		Violation: p.Violation,
		Relocated: append([]int(nil), p.Relocated...),
	}
}

// Layout converts the plan into a StripeLayout for validation.
func (p *PostEncodingPlan) Layout(id topology.StripeID) topology.StripeLayout {
	return topology.StripeLayout{
		Stripe: id,
		Data:   append([]topology.NodeID(nil), p.Keep...),
		Parity: append([]topology.NodeID(nil), p.Parity...),
	}
}

// PlanPostEncoding decides the post-encoding layout for a stripe. It solves
// the Section III-B maximum-matching problem over the replica locations; if
// a full matching exists the kept replicas and parity placements satisfy
// node-level and rack-level fault tolerance with no relocation. Otherwise it
// keeps first replicas for the unmatched blocks, marks them for relocation,
// and still places parity as well as possible.
//
// For stripes produced by EAR the matching always exists (the policy
// enforced feasibility at write time); for RR-placed blocks grouped into a
// stripe at encoding time, a violation is the common case the paper's
// Figure 3 and motivating example describe.
func PlanPostEncoding(cfg Config, info *StripeInfo, rng *rand.Rand) (*PostEncodingPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(info.Blocks) == 0 || len(info.Blocks) != len(info.Placements) {
		return nil, fmt.Errorf("%w: stripe %d has %d blocks and %d placements",
			ErrInvalidConfig, info.ID, len(info.Blocks), len(info.Placements))
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrInvalidConfig)
	}

	f, err := newStripeFlow(cfg, info)
	if err != nil {
		return nil, err
	}
	for _, pl := range info.Placements {
		if err := f.addBlock(pl.Nodes); err != nil {
			return nil, err
		}
	}
	flow, err := f.graph.MaxFlow(f.source, f.sink)
	if err != nil {
		return nil, err
	}
	match, err := f.matching()
	if err != nil {
		return nil, err
	}

	plan := &PostEncodingPlan{Keep: make([]topology.NodeID, len(info.Blocks))}
	for i, node := range match {
		if node >= 0 {
			plan.Keep[i] = node
			continue
		}
		// Unmatched: fall back to the first replica and schedule relocation.
		plan.Keep[i] = info.Placements[i].Nodes[0]
		plan.Relocated = append(plan.Relocated, i)
	}
	plan.Violation = flow < int64(len(info.Blocks))

	parity, err := placeParity(cfg, info, plan.Keep, rng)
	if err != nil {
		return nil, err
	}
	plan.Parity = parity
	return plan, nil
}

// matching extracts, after MaxFlow, the node matched to each block (or -1).
func (f *stripeFlow) matching() ([]topology.NodeID, error) {
	out := make([]topology.NodeID, f.blocks)
	for i := range out {
		out[i] = -1
	}
	for i, edges := range f.blockEdges {
		for _, be := range edges {
			fl, err := f.graph.EdgeFlow(be.edgeID)
			if err != nil {
				return nil, err
			}
			if fl > 0 {
				out[i] = be.node
				break
			}
		}
	}
	return out, nil
}

// placeParity assigns the n-k parity blocks to nodes of target racks that
// still have spare stripe capacity (fewer than c stripe blocks), never
// reusing a node that keeps a data block. Racks and nodes are drawn
// uniformly among the eligible, preserving load balancing.
func placeParity(cfg Config, info *StripeInfo, keep []topology.NodeID, rng *rand.Rand) ([]topology.NodeID, error) {
	top := cfg.Topology
	used := make(map[topology.NodeID]bool, len(keep))
	rackCount := make(map[topology.RackID]int)
	for _, n := range keep {
		used[n] = true
		r, err := top.RackOf(n)
		if err != nil {
			return nil, err
		}
		rackCount[r]++
	}
	eligible := info.Targets
	if len(eligible) == 0 {
		eligible = allRacks(top)
	}

	// Short stripes are zero-padded to k blocks before encoding, so the
	// parity count is always n-k.
	m := cfg.N - cfg.K
	parity := make([]topology.NodeID, 0, m)
	for j := 0; j < m; j++ {
		// Racks with spare capacity, uniformly shuffled.
		candidates := make([]topology.RackID, 0, len(eligible))
		for _, r := range eligible {
			if rackCount[r] < cfg.C {
				candidates = append(candidates, r)
			}
		}
		rng.Shuffle(len(candidates), func(a, b int) { candidates[a], candidates[b] = candidates[b], candidates[a] })
		placed := false
		for _, r := range candidates {
			nodes, err := top.NodesInRack(r)
			if err != nil {
				return nil, err
			}
			free := make([]topology.NodeID, 0, len(nodes))
			for _, n := range nodes {
				if !used[n] {
					free = append(free, n)
				}
			}
			if len(free) == 0 {
				continue
			}
			n := free[rng.Intn(len(free))]
			parity = append(parity, n)
			used[n] = true
			rackCount[r]++
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("placement: no eligible node for parity block %d of stripe %d", j, info.ID)
		}
	}
	return parity, nil
}

// GroupIntoStripes partitions RR-placed blocks into stripes of k, the way
// HDFS-RAID's RaidNode groups blocks at encoding time with no knowledge of
// placement. Leftover blocks (fewer than k) are not grouped.
func GroupIntoStripes(k int, blocks []topology.BlockID, placements map[topology.BlockID]topology.Placement, firstID topology.StripeID) ([]*StripeInfo, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInvalidConfig, k)
	}
	var out []*StripeInfo
	for start := 0; start+k <= len(blocks); start += k {
		info := &StripeInfo{ID: firstID + topology.StripeID(len(out)), CoreRack: -1}
		for _, b := range blocks[start : start+k] {
			pl, ok := placements[b]
			if !ok {
				return nil, fmt.Errorf("placement: block %d has no recorded placement", b)
			}
			info.Blocks = append(info.Blocks, b)
			info.Placements = append(info.Placements, pl.Clone())
		}
		out = append(out, info)
	}
	return out, nil
}
