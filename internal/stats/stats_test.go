package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("Mean(nil) error = %v", err)
	}
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Errorf("Mean = (%v, %v), want (2.5, nil)", got, err)
	}
}

func TestStdDev(t *testing.T) {
	if _, err := StdDev([]float64{1}); !errors.Is(err, ErrNoData) {
		t.Errorf("StdDev(single) error = %v", err)
	}
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %.4f, want ~2.138", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: error = %v", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("p < 0: expected error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("p > 100: expected error")
	}
	if got, err := Percentile([]float64{7}, 50); err != nil || got != 7 {
		t.Errorf("single sample = (%v, %v)", got, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestBoxPlot(t *testing.T) {
	if _, err := NewBoxPlot(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: error = %v", err)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	bp, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatalf("NewBoxPlot: %v", err)
	}
	if bp.Median != 5 {
		t.Errorf("median = %g, want 5", bp.Median)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", bp.Outliers)
	}
	if bp.Min != 1 || bp.Max != 8 {
		t.Errorf("whiskers = [%g, %g], want [1, 8]", bp.Min, bp.Max)
	}
	if bp.String() == "" {
		t.Error("String() empty")
	}
	// Degenerate: constant sample, no outliers possible.
	bp2, err := NewBoxPlot([]float64{5, 5, 5})
	if err != nil || bp2.Min != 5 || bp2.Max != 5 || len(bp2.Outliers) != 0 {
		t.Errorf("constant sample boxplot = %+v (%v)", bp2, err)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(Exponential(rng, 2.0))
	}
	if math.Abs(w.Mean()-2.0) > 0.05 {
		t.Errorf("exponential mean = %.4f, want ~2.0", w.Mean())
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 100001)
	for i := range xs {
		xs[i] = LogNormal(rng, 1.0, 0.5)
	}
	med, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-math.E) > 0.1 {
		t.Errorf("log-normal median = %.4f, want ~e", med)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if Poisson(rng, 0) != 0 {
		t.Error("Poisson(0) != 0")
	}
	if Poisson(rng, -1) != 0 {
		t.Error("Poisson(negative) != 0")
	}
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(float64(Poisson(rng, 3.5)))
	}
	if math.Abs(w.Mean()-3.5) > 0.1 {
		t.Errorf("Poisson mean = %.4f, want ~3.5", w.Mean())
	}
	if math.Abs(w.Variance()-3.5) > 0.2 {
		t.Errorf("Poisson variance = %.4f, want ~3.5", w.Variance())
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			w.Add(xs[i])
		}
		bm, err1 := Mean(xs)
		bs, err2 := StdDev(xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(w.Mean()-bm) < 1e-9 && math.Abs(w.StdDev()-bs) < 1e-9 && w.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford not neutral")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Error("variance with one sample should be 0")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "resp"
	for i := 0; i < 6; i++ {
		s.Add(float64(i), float64(i*10))
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	vs := s.Values()
	if vs[3] != 30 {
		t.Fatalf("Values[3] = %g", vs[3])
	}
	m, err := s.WindowMean(2, 5)
	if err != nil || m != 30 {
		t.Fatalf("WindowMean = (%g, %v), want (30, nil)", m, err)
	}
	if _, err := s.WindowMean(100, 200); !errors.Is(err, ErrNoData) {
		t.Errorf("empty window error = %v", err)
	}
}

func TestSeriesSmooth(t *testing.T) {
	var s Series
	for i := 0; i < 7; i++ {
		s.Add(float64(i), float64(i))
	}
	sm, err := s.Smooth(3)
	if err != nil {
		t.Fatalf("Smooth: %v", err)
	}
	if sm.Len() != 3 {
		t.Fatalf("smoothed Len = %d, want 3", sm.Len())
	}
	if sm.Points[0].V != 1 { // mean of 0,1,2
		t.Errorf("first smoothed value = %g, want 1", sm.Points[0].V)
	}
	if sm.Points[2].V != 6 { // lone tail point
		t.Errorf("tail smoothed value = %g, want 6", sm.Points[2].V)
	}
	if _, err := s.Smooth(0); err == nil {
		t.Error("Smooth(0): expected error")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	// Single element: every percentile is that element.
	for _, p := range []float64{0, 25, 50, 100} {
		if got, err := Percentile([]float64{42}, p); err != nil || got != 42 {
			t.Errorf("single-element p=%g = (%g, %v), want 42", p, got, err)
		}
	}
	// Two elements: endpoints at p=0/100, linear interpolation between.
	two := []float64{10, 20}
	tests := []struct {
		p, want float64
	}{
		{0, 10}, {100, 20}, {50, 15}, {25, 12.5}, {75, 17.5},
	}
	for _, tt := range tests {
		got, err := Percentile(two, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("two-element p=%g = %g, want %g", tt.p, got, tt.want)
		}
	}
	// p=0 and p=100 pick min and max regardless of input order.
	xs := []float64{5, -3, 9, 0, 7}
	if got, _ := Percentile(xs, 0); got != -3 {
		t.Errorf("p=0 = %g, want -3", got)
	}
	if got, _ := Percentile(xs, 100); got != 9 {
		t.Errorf("p=100 = %g, want 9", got)
	}
	// All-equal samples: every percentile is the common value.
	if got, _ := Percentile([]float64{4, 4, 4, 4}, 73); got != 4 {
		t.Errorf("all-equal p=73 = %g, want 4", got)
	}
	// Empty input at the boundaries still errors.
	for _, p := range []float64{0, 100} {
		if _, err := Percentile(nil, p); !errors.Is(err, ErrNoData) {
			t.Errorf("empty p=%g: error = %v", p, err)
		}
	}
}
