// Package stats provides the statistical helpers shared by the experiment
// harnesses: random-variate generation (exponential inter-arrival times for
// Poisson processes, log-normal job sizes), summary statistics, the
// five-number boxplot summaries the paper's Figure 13 reports, and simple
// time-series accumulation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoData is returned when a statistic is requested over an empty sample.
var ErrNoData = errors.New("stats: no data")

// Exponential draws an exponentially distributed variate with the given
// mean. Inter-arrival times of a Poisson process with rate lambda are
// exponential with mean 1/lambda.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// LogNormal draws a log-normally distributed variate where the underlying
// normal has mean mu and standard deviation sigma.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// Poisson draws a Poisson-distributed count with the given mean using
// Knuth's method (adequate for the small means used here).
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrNoData
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %g out of range", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// BoxPlot is the five-number summary plus outliers, matching the boxplots of
// the paper's Figure 13 (minimum, lower quartile, median, upper quartile,
// maximum, and any outliers beyond 1.5 IQR whiskers).
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	Outliers                 []float64
}

// NewBoxPlot computes the summary of a sample.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrNoData
	}
	var bp BoxPlot
	var err error
	if bp.Q1, err = Percentile(xs, 25); err != nil {
		return BoxPlot{}, err
	}
	if bp.Median, err = Percentile(xs, 50); err != nil {
		return BoxPlot{}, err
	}
	if bp.Q3, err = Percentile(xs, 75); err != nil {
		return BoxPlot{}, err
	}
	iqr := bp.Q3 - bp.Q1
	loFence, hiFence := bp.Q1-1.5*iqr, bp.Q3+1.5*iqr
	bp.Min, bp.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			bp.Outliers = append(bp.Outliers, x)
			continue
		}
		bp.Min = math.Min(bp.Min, x)
		bp.Max = math.Max(bp.Max, x)
	}
	// All points outliers (degenerate): fall back to raw extremes.
	if math.IsInf(bp.Min, 1) {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		bp.Min, bp.Max = sorted[0], sorted[len(sorted)-1]
	}
	return bp, nil
}

// String renders the summary compactly.
func (b BoxPlot) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f outliers=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, len(b.Outliers))
}

// Welford accumulates mean and variance online without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 with fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Point is one (time, value) sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series used to record write response times
// and cumulative encoded-stripe counts in the experiments.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values extracts the sample values in order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}

// WindowMean averages the values with T in [t0, t1).
func (s *Series) WindowMean(t0, t1 float64) (float64, error) {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.T >= t0 && p.T < t1 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0, ErrNoData
	}
	return sum / float64(n), nil
}

// Smooth returns a copy of the series where each point is the mean of
// groups of the given size, the paper's Figure 9 presentation ("each data
// point represents the averaged write response time of three consecutive
// write requests").
func (s *Series) Smooth(group int) (*Series, error) {
	if group <= 0 {
		return nil, fmt.Errorf("stats: smooth group %d", group)
	}
	out := &Series{Name: s.Name}
	for i := 0; i < len(s.Points); i += group {
		end := i + group
		if end > len(s.Points) {
			end = len(s.Points)
		}
		var st, sv float64
		for _, p := range s.Points[i:end] {
			st += p.T
			sv += p.V
		}
		n := float64(end - i)
		out.Add(st/n, sv/n)
	}
	return out, nil
}
