//go:build amd64

// AVX2 GF(256) slice kernels using the split low/high-nibble PSHUFB method:
// each source byte is split into its two nibbles, each nibble indexes a
// 16-entry product table broadcast across the vector, and the two partial
// products XOR into the result. 32 bytes are multiplied per loop iteration.
//
// All three kernels require len(src) == len(dst) with the length a multiple
// of 32; the Go wrappers in kernels_amd64.go enforce this and route the
// remainder through the SWAR/scalar tiers.

#include "textflag.h"

// func mulVecAVX2(tab *[32]byte, src, dst []byte)
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	SHRQ $5, CX
	JZ   mulDone
	VBROADCASTI128 (AX), Y0     // low-nibble table in every 128-bit lane
	VBROADCASTI128 16(AX), Y1   // high-nibble table
	MOVQ $15, AX
	MOVQ AX, X2
	VPBROADCASTB X2, Y2         // 0x0f in every byte lane

mulLoop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3          // low nibbles
	VPAND   Y2, Y4, Y4          // high nibbles
	VPSHUFB Y3, Y0, Y3          // c * low
	VPSHUFB Y4, Y1, Y4          // c * high<<4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     mulLoop
	VZEROUPPER

mulDone:
	RET

// func mulAddVecAVX2(tab *[32]byte, src, dst []byte)
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-56
	MOVQ tab+0(FP), AX
	MOVQ src_base+8(FP), SI
	MOVQ src_len+16(FP), CX
	MOVQ dst_base+32(FP), DI
	SHRQ $5, CX
	JZ   mulAddDone
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	MOVQ $15, AX
	MOVQ AX, X2
	VPBROADCASTB X2, Y2

mulAddLoop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VPXOR   (DI), Y3, Y3        // accumulate into dst
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     mulAddLoop
	VZEROUPPER

mulAddDone:
	RET

// func xorVecAVX2(src, dst []byte)
TEXT ·xorVecAVX2(SB), NOSPLIT, $0-48
	MOVQ src_base+0(FP), SI
	MOVQ src_len+8(FP), CX
	MOVQ dst_base+24(FP), DI
	SHRQ $5, CX
	JZ   xorDone

xorLoop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     xorLoop
	VZEROUPPER

xorDone:
	RET

// func x86cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·x86cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func x86xgetbv() (eax, edx uint32)
TEXT ·x86xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
