//go:build !amd64

package gf256

// On architectures without an assembly fast path the SWAR word kernels are
// the top tier.

func mulSliceArch(c byte, src, dst []byte)    { mulSliceSWAR(c, src, dst) }
func mulAddSliceArch(c byte, src, dst []byte) { mulAddSliceSWAR(c, src, dst) }
func addSliceArch(src, dst []byte)            { addSliceSWAR(src, dst) }

// KernelTier names the fastest kernel tier the running machine dispatches
// to: "avx2" (amd64 with AVX2), "swar" (the portable word-at-a-time path),
// or "scalar" (slices too short for SWAR always take the byte loop, but no
// supported platform is scalar-only). Benchmark results are stamped with it
// so numbers from different machines are comparable.
func KernelTier() string { return "swar" }
