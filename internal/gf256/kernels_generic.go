//go:build !amd64

package gf256

// On architectures without an assembly fast path the SWAR word kernels are
// the top tier.

func mulSliceArch(c byte, src, dst []byte)    { mulSliceSWAR(c, src, dst) }
func mulAddSliceArch(c byte, src, dst []byte) { mulAddSliceSWAR(c, src, dst) }
func addSliceArch(src, dst []byte)            { addSliceSWAR(src, dst) }
