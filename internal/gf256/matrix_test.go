package gf256

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(t *testing.T, rng *rand.Rand, rows, cols int) *Matrix {
	t.Helper()
	m, err := NewMatrix(rows, cols)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, byte(rng.Intn(256)))
		}
	}
	return m
}

func TestNewMatrixRejectsBadDimensions(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}, {3, -1}} {
		if _, err := NewMatrix(dims[0], dims[1]); err == nil {
			t.Errorf("NewMatrix(%d, %d): expected error", dims[0], dims[1])
		}
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %d, want 3", m.At(1, 0))
	}
	if _, err := NewMatrixFromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows: expected error")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Error("nil rows: expected error")
	}
}

func TestIdentityProperties(t *testing.T) {
	id, err := Identity(5)
	if err != nil {
		t.Fatalf("Identity: %v", err)
	}
	if !id.IsIdentity() {
		t.Fatal("Identity(5) is not identity")
	}
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(t, rng, 5, 5)
	left, err := id.Mul(m)
	if err != nil {
		t.Fatalf("id*m: %v", err)
	}
	right, err := m.Mul(id)
	if err != nil {
		t.Fatalf("m*id: %v", err)
	}
	if !left.Equal(m) || !right.Equal(m) {
		t.Fatal("identity does not preserve matrix under multiplication")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		var m *Matrix
		// Rejection-sample an invertible matrix.
		for {
			m = randomMatrix(t, rng, n, n)
			if _, err := m.Invert(); err == nil {
				break
			}
		}
		inv, err := m.Invert()
		if err != nil {
			t.Fatalf("Invert: %v", err)
		}
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatalf("m*inv: %v", err)
		}
		if !prod.IsIdentity() {
			t.Fatalf("trial %d: m * m^-1 != I:\n%v", trial, prod)
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 2}, {1, 2}})
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert singular: err = %v, want ErrSingular", err)
	}
	zero, _ := NewMatrix(3, 3)
	if _, err := zero.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Invert zero: err = %v, want ErrSingular", err)
	}
	rect, _ := NewMatrix(2, 3)
	if _, err := rect.Invert(); err == nil {
		t.Fatal("Invert rectangular: expected error")
	}
}

func TestVandermondeSquareSubmatricesInvertible(t *testing.T) {
	// Any k distinct rows of a k-column Vandermonde matrix over distinct
	// evaluation points form an invertible matrix.
	const k, n = 4, 10
	v, err := Vandermonde(n, k)
	if err != nil {
		t.Fatalf("Vandermonde: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows := rng.Perm(n)[:k]
		sub, err := v.SelectRows(rows)
		if err != nil {
			t.Fatalf("SelectRows: %v", err)
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Vandermonde rows %v not invertible: %v", rows, err)
		}
	}
}

func TestCauchySubmatricesInvertible(t *testing.T) {
	const k, m = 6, 4
	cm, err := Cauchy(m, k)
	if err != nil {
		t.Fatalf("Cauchy: %v", err)
	}
	// Every square submatrix of a Cauchy matrix is invertible; spot-check
	// all 2x2 submatrices.
	for r1 := 0; r1 < m; r1++ {
		for r2 := r1 + 1; r2 < m; r2++ {
			for c1 := 0; c1 < k; c1++ {
				for c2 := c1 + 1; c2 < k; c2++ {
					sub, err := NewMatrixFromRows([][]byte{
						{cm.At(r1, c1), cm.At(r1, c2)},
						{cm.At(r2, c1), cm.At(r2, c2)},
					})
					if err != nil {
						t.Fatalf("submatrix: %v", err)
					}
					if _, err := sub.Invert(); err != nil {
						t.Fatalf("2x2 Cauchy submatrix (%d,%d)x(%d,%d) singular", r1, r2, c1, c2)
					}
				}
			}
		}
	}
}

func TestCauchyTooLarge(t *testing.T) {
	if _, err := Cauchy(200, 100); err == nil {
		t.Fatal("expected error for oversized Cauchy matrix")
	}
}

func TestMulVector(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}})
	v := []byte{5, 6, 7}
	out, err := m.MulVector(v)
	if err != nil {
		t.Fatalf("MulVector: %v", err)
	}
	want := []byte{5, 6, 5 ^ 6 ^ 7}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MulVector[%d] = %#x, want %#x", i, out[i], want[i])
		}
	}
	if _, err := m.MulVector([]byte{1}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestSubMatrixAndAugment(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 2, 3}, {4, 5, 6}})
	sub, err := m.SubMatrix(0, 2, 1, 3)
	if err != nil {
		t.Fatalf("SubMatrix: %v", err)
	}
	if sub.Rows() != 2 || sub.Cols() != 2 || sub.At(0, 0) != 2 || sub.At(1, 1) != 6 {
		t.Fatalf("SubMatrix content wrong: %v", sub)
	}
	if _, err := m.SubMatrix(0, 3, 0, 1); err == nil {
		t.Error("expected out-of-bounds error")
	}
	aug, err := m.Augment(sub)
	if err != nil {
		t.Fatalf("Augment: %v", err)
	}
	if aug.Cols() != 5 || aug.At(0, 3) != 2 {
		t.Fatalf("Augment content wrong: %v", aug)
	}
	tall, _ := NewMatrix(3, 1)
	if _, err := m.Augment(tall); err == nil {
		t.Error("expected row mismatch error")
	}
}

func TestSelectRowsErrors(t *testing.T) {
	m, _ := NewMatrix(2, 2)
	if _, err := m.SelectRows(nil); err == nil {
		t.Error("empty selection: expected error")
	}
	if _, err := m.SelectRows([]int{5}); err == nil {
		t.Error("out-of-range selection: expected error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestEqualShapes(t *testing.T) {
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(3, 2)
	if a.Equal(b) {
		t.Fatal("matrices of different shapes reported equal")
	}
}

func TestPropertyMatrixVectorLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(t, rng, 6, 6)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := make([]byte, 6)
		v := make([]byte, 6)
		sum := make([]byte, 6)
		for i := range u {
			u[i] = byte(r.Intn(256))
			v[i] = byte(r.Intn(256))
			sum[i] = u[i] ^ v[i]
		}
		mu, err1 := m.MulVector(u)
		mv, err2 := m.MulVector(v)
		msum, err3 := m.MulVector(sum)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range msum {
			if msum[i] != mu[i]^mv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	m, _ := NewMatrixFromRows([][]byte{{0x0a, 0xff}})
	if got, want := m.String(), "0a ff\n"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
