package gf256

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	tests := []struct {
		a, b, want byte
	}{
		{0, 0, 0},
		{1, 1, 0},
		{0x53, 0xca, 0x99},
		{0xff, 0x0f, 0xf0},
	}
	for _, tt := range tests {
		if got := Add(tt.a, tt.b); got != tt.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
		if got := Sub(tt.a, tt.b); got != tt.want {
			t.Errorf("Sub(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Hand-checked products under polynomial 0x11d.
	tests := []struct {
		a, b, want byte
	}{
		{0, 5, 0},
		{5, 0, 0},
		{1, 0x7b, 0x7b},
		{2, 2, 4},
		{2, 0x80, 0x1d},    // overflow triggers reduction
		{0x80, 0x80, 0x13}, // x^14 mod p = x^4 + x + 1
	}
	for _, tt := range tests {
		if got := Mul(tt.a, tt.b); got != tt.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulMatchesSlowMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	// Exhaustive verification on a sampled triple grid plus full pair grid.
	for a := 0; a < 256; a++ {
		ab := byte(a)
		if Mul(ab, 1) != ab {
			t.Fatalf("1 is not multiplicative identity for %#x", a)
		}
		for b := 0; b < 256; b++ {
			bb := byte(b)
			if Mul(ab, bb) != Mul(bb, ab) {
				t.Fatalf("multiplication not commutative at (%#x, %#x)", a, b)
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if Mul(a, Mul(b, c)) != Mul(Mul(a, b), c) {
			t.Fatalf("multiplication not associative at (%#x, %#x, %#x)", a, b, c)
		}
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			t.Fatalf("multiplication not distributive at (%#x, %#x, %#x)", a, b, c)
		}
	}
}

func TestInverse(t *testing.T) {
	if _, err := Inv(0); !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("Inv(0) error = %v, want ErrDivideByZero", err)
	}
	for a := 1; a < 256; a++ {
		inv, err := Inv(byte(a))
		if err != nil {
			t.Fatalf("Inv(%#x): %v", a, err)
		}
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("%#x * Inv(%#x) = %#x, want 1", a, a, got)
		}
	}
}

func TestDiv(t *testing.T) {
	if _, err := Div(3, 0); !errors.Is(err, ErrDivideByZero) {
		t.Fatalf("Div(3, 0) error = %v, want ErrDivideByZero", err)
	}
	if got, err := Div(0, 7); err != nil || got != 0 {
		t.Fatalf("Div(0, 7) = (%#x, %v), want (0, nil)", got, err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := byte(rng.Intn(256)), byte(1+rng.Intn(255))
		q, err := Div(a, b)
		if err != nil {
			t.Fatalf("Div(%#x, %#x): %v", a, b, err)
		}
		if got := Mul(q, b); got != a {
			t.Fatalf("Div(%#x, %#x)*%#x = %#x, want %#x", a, b, b, got, a)
		}
	}
}

func TestExpPow(t *testing.T) {
	if Exp(0) != 1 {
		t.Errorf("Exp(0) = %#x, want 1", Exp(0))
	}
	if Exp(1) != 2 {
		t.Errorf("Exp(1) = %#x, want 2", Exp(1))
	}
	if Exp(255) != Exp(0) {
		t.Errorf("Exp should be periodic with period 255")
	}
	if Exp(-1) != Exp(254) {
		t.Errorf("Exp should handle negative exponents")
	}
	if Pow(0, 0) != 1 {
		t.Errorf("Pow(0, 0) = %#x, want 1", Pow(0, 0))
	}
	if Pow(0, 5) != 0 {
		t.Errorf("Pow(0, 5) = %#x, want 0", Pow(0, 5))
	}
	for a := 1; a < 256; a++ {
		acc := byte(1)
		for e := 0; e < 10; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

func TestPropertyMulInverseRoundTrip(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		q, err := Div(a, b)
		if err != nil {
			return false
		}
		return Mul(q, b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0xff, 0}
	dst := make([]byte, len(src))
	MulSlice(0, src, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("MulSlice(0)[%d] = %#x, want 0", i, v)
		}
	}
	MulSlice(1, src, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("MulSlice(1)[%d] = %#x, want %#x", i, dst[i], src[i])
		}
	}
	MulSlice(7, src, dst)
	for i := range src {
		if want := Mul(7, src[i]); dst[i] != want {
			t.Fatalf("MulSlice(7)[%d] = %#x, want %#x", i, dst[i], want)
		}
	}
	// In-place multiplication.
	inPlace := append([]byte(nil), src...)
	MulSlice(7, inPlace, inPlace)
	for i := range src {
		if want := Mul(7, src[i]); inPlace[i] != want {
			t.Fatalf("in-place MulSlice(7)[%d] = %#x, want %#x", i, inPlace[i], want)
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{9, 8, 7, 6}
	dst := []byte{1, 1, 1, 1}
	orig := append([]byte(nil), dst...)
	MulAddSlice(0, src, dst)
	for i := range dst {
		if dst[i] != orig[i] {
			t.Fatalf("MulAddSlice(0) modified dst at %d", i)
		}
	}
	MulAddSlice(3, src, dst)
	for i := range dst {
		if want := orig[i] ^ Mul(3, src[i]); dst[i] != want {
			t.Fatalf("MulAddSlice(3)[%d] = %#x, want %#x", i, dst[i], want)
		}
	}
}

func TestAddSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	AddSlice(a, b)
	want := []byte{5, 7, 5}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("AddSlice[%d] = %#x, want %#x", i, b[i], want[i])
		}
	}
}

func TestDotProduct(t *testing.T) {
	coeffs := []byte{1, 2, 3}
	data := [][]byte{{1, 0}, {0, 1}, {1, 1}}
	out := make([]byte, 2)
	DotProduct(coeffs, data, out)
	want0 := Mul(1, 1) ^ Mul(2, 0) ^ Mul(3, 1)
	want1 := Mul(1, 0) ^ Mul(2, 1) ^ Mul(3, 1)
	if out[0] != want0 || out[1] != want1 {
		t.Fatalf("DotProduct = %v, want [%#x %#x]", out, want0, want1)
	}
}

func TestSliceKernelLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"AddSlice":    func() { AddSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
