package gf256

import (
	"errors"
	"fmt"
	"strings"
)

// Matrix is a dense matrix over GF(2^8), stored row-major as a slice of rows.
type Matrix struct {
	rows, cols int
	data       [][]byte
}

// ErrSingular is returned when inverting a matrix that has no inverse.
var ErrSingular = errors.New("gf256: singular matrix")

// NewMatrix returns a zero rows x cols matrix. Both dimensions must be
// positive.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gf256: invalid matrix dimensions %dx%d", rows, cols)
	}
	data := make([][]byte, rows)
	backing := make([]byte, rows*cols)
	for r := range data {
		data[r], backing = backing[:cols:cols], backing[cols:]
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// NewMatrixFromRows builds a matrix from the given rows, copying them. All
// rows must be non-empty and the same length.
func NewMatrixFromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("gf256: empty matrix")
	}
	m, err := NewMatrix(len(rows), len(rows[0]))
	if err != nil {
		return nil, err
	}
	for r, row := range rows {
		if len(row) != m.cols {
			return nil, fmt.Errorf("gf256: ragged matrix: row %d has %d columns, want %d", r, len(row), m.cols)
		}
		copy(m.data[r], row)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := NewMatrix(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.data[i][i] = 1
	}
	return m, nil
}

// Vandermonde returns the rows x cols matrix with entry (r, c) = r^c.
// Any cols x cols submatrix formed from distinct rows is invertible.
func Vandermonde(rows, cols int) (*Matrix, error) {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.data[r][c] = Pow(byte(r), c)
		}
	}
	return m, nil
}

// Cauchy returns the rows x cols Cauchy matrix with entry
// (r, c) = 1 / (x_r + y_c) where x_r = r + cols and y_c = c. Every square
// submatrix of a Cauchy matrix is invertible, which makes it a valid
// generator for MDS codes as long as rows+cols <= 256.
func Cauchy(rows, cols int) (*Matrix, error) {
	if rows+cols > fieldSize {
		return nil, fmt.Errorf("gf256: cauchy matrix %dx%d exceeds field size", rows, cols)
	}
	m, err := NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v, err := Inv(byte(r+cols) ^ byte(c))
			if err != nil {
				return nil, err
			}
			m.data[r][c] = v
		}
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.data[r][c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.data[r][c] = v }

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []byte {
	row := make([]byte, m.cols)
	copy(row, m.data[r])
	return row
}

// RowView returns row r without copying. The caller must not modify it; it
// exists so allocation-free hot paths (encode, cached decode) can feed rows
// straight into the slice kernels.
func (m *Matrix) RowView(r int) []byte { return m.data[r] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c, _ := NewMatrix(m.rows, m.cols)
	for r := range m.data {
		copy(c.data[r], m.data[r])
	}
	return c
}

// Equal reports whether m and other have identical shape and contents.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for r := range m.data {
		for c := range m.data[r] {
			if m.data[r][c] != other.data[r][c] {
				return false
			}
		}
	}
	return true
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("gf256: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out, err := NewMatrix(m.rows, other.cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			if a := m.data[r][k]; a != 0 {
				MulAddSlice(a, other.data[k], out.data[r])
			}
		}
	}
	return out, nil
}

// MulVector returns m * v for a column vector v of length Cols().
func (m *Matrix) MulVector(v []byte) ([]byte, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("gf256: vector length %d, want %d", len(v), m.cols)
	}
	out := make([]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		var acc byte
		for c, x := range v {
			acc ^= Mul(m.data[r][c], x)
		}
		out[r] = acc
	}
	return out, nil
}

// SubMatrix returns a copy of the rectangle [r0, r1) x [c0, c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) (*Matrix, error) {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		return nil, fmt.Errorf("gf256: submatrix bounds [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols)
	}
	out, err := NewMatrix(r1-r0, c1-c0)
	if err != nil {
		return nil, err
	}
	for r := r0; r < r1; r++ {
		copy(out.data[r-r0], m.data[r][c0:c1])
	}
	return out, nil
}

// SelectRows returns a new matrix consisting of the given rows, in order.
func (m *Matrix) SelectRows(rows []int) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("gf256: no rows selected")
	}
	out, err := NewMatrix(len(rows), m.cols)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("gf256: row %d out of range [0, %d)", r, m.rows)
		}
		copy(out.data[i], m.data[r])
	}
	return out, nil
}

// Augment returns the matrix [m | other]: the two operands side by side.
func (m *Matrix) Augment(other *Matrix) (*Matrix, error) {
	if m.rows != other.rows {
		return nil, fmt.Errorf("gf256: augment row mismatch %d != %d", m.rows, other.rows)
	}
	out, err := NewMatrix(m.rows, m.cols+other.cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < m.rows; r++ {
		copy(out.data[r], m.data[r])
		copy(out.data[r][m.cols:], other.data[r])
	}
	return out, nil
}

// swapRows exchanges rows r1 and r2 in place.
func (m *Matrix) swapRows(r1, r2 int) {
	m.data[r1], m.data[r2] = m.data[r2], m.data[r1]
}

// Invert returns the inverse of a square matrix via Gauss-Jordan elimination.
// It returns ErrSingular if the matrix is not invertible.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("gf256: cannot invert %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	id, err := Identity(n)
	if err != nil {
		return nil, err
	}
	work, err := m.Augment(id)
	if err != nil {
		return nil, err
	}
	if err := work.gaussJordan(); err != nil {
		return nil, err
	}
	return work.SubMatrix(0, n, n, 2*n)
}

// gaussJordan reduces the left square portion of the matrix to the identity,
// applying the same operations across all columns. It returns ErrSingular if
// a pivot cannot be found.
func (m *Matrix) gaussJordan() error {
	n := m.rows
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m.data[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		if pivot != col {
			m.swapRows(pivot, col)
		}
		if pv := m.data[col][col]; pv != 1 {
			inv, err := Inv(pv)
			if err != nil {
				return err
			}
			MulSlice(inv, m.data[col], m.data[col])
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := m.data[r][col]; f != 0 {
				MulAddSlice(f, m.data[col], m.data[r])
			}
		}
	}
	return nil
}

// IsIdentity reports whether m is a square identity matrix.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.data[r][c] != want {
				return false
			}
		}
	}
	return true
}

// String renders the matrix in a compact hexadecimal grid, mainly for tests
// and debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%02x", m.data[r][c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
