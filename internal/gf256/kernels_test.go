package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// kernelLengths covers the word-width dispatch boundaries: empty, sub-word,
// exactly one word, word multiples, and odd lengths that force a scalar tail.
var kernelLengths = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 256, 1000, 1024, 4097}

// kernelOffsets shifts the slices inside a larger buffer so the SWAR path
// sees word-unaligned heads.
var kernelOffsets = []int{0, 1, 3, 5, 7}

// randKernelBuf returns a deterministic pseudo-random buffer with headroom
// for every offset/length combination.
func randKernelBuf(seed int64, n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// TestMulSliceMatchesRef differentially tests the SWAR MulSlice against the
// scalar reference for every coefficient 0-255 across odd lengths and
// unaligned head offsets.
func TestMulSliceMatchesRef(t *testing.T) {
	maxLen := kernelLengths[len(kernelLengths)-1]
	src := randKernelBuf(1, maxLen+8)
	for c := 0; c < 256; c++ {
		for _, n := range kernelLengths {
			for _, off := range kernelOffsets {
				s := src[off : off+n]
				got := make([]byte, n)
				want := make([]byte, n)
				MulSlice(byte(c), s, got)
				MulSliceRef(byte(c), s, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulSlice(c=%d, len=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
}

// TestMulAddSliceMatchesRef differentially tests MulAddSlice, including that
// the pre-existing dst contents are XOR-accumulated, not overwritten.
func TestMulAddSliceMatchesRef(t *testing.T) {
	maxLen := kernelLengths[len(kernelLengths)-1]
	src := randKernelBuf(2, maxLen+8)
	dstInit := randKernelBuf(3, maxLen+8)
	for c := 0; c < 256; c++ {
		for _, n := range kernelLengths {
			for _, off := range kernelOffsets {
				s := src[off : off+n]
				got := append([]byte(nil), dstInit[off:off+n]...)
				want := append([]byte(nil), dstInit[off:off+n]...)
				MulAddSlice(byte(c), s, got)
				MulAddSliceRef(byte(c), s, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulAddSlice(c=%d, len=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
}

// TestAddSliceMatchesRef differentially tests the word-wide AddSlice.
func TestAddSliceMatchesRef(t *testing.T) {
	maxLen := kernelLengths[len(kernelLengths)-1]
	src := randKernelBuf(4, maxLen+8)
	dstInit := randKernelBuf(5, maxLen+8)
	for _, n := range kernelLengths {
		for _, off := range kernelOffsets {
			s := src[off : off+n]
			got := append([]byte(nil), dstInit[off:off+n]...)
			want := append([]byte(nil), dstInit[off:off+n]...)
			AddSlice(s, got)
			AddSliceRef(s, want)
			if !bytes.Equal(got, want) {
				t.Fatalf("AddSlice(len=%d, off=%d) diverges from reference", n, off)
			}
		}
	}
}

// TestMulSliceAliasing checks the documented aliasing contract: dst may be
// exactly src.
func TestMulSliceAliasing(t *testing.T) {
	for _, n := range kernelLengths {
		orig := randKernelBuf(6, n)
		want := make([]byte, n)
		MulSliceRef(37, orig, want)
		got := append([]byte(nil), orig...)
		MulSlice(37, got, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("aliased MulSlice(len=%d) diverges from reference", n)
		}
	}
}

// TestMulSliceNeverWritesSrc pins the read-only guarantee the shared
// zero-block optimization in the hdfs encode path relies on: no kernel may
// write through its src argument.
func TestMulSliceNeverWritesSrc(t *testing.T) {
	src := make([]byte, 1027) // all zeros, like the shared pad block
	dst := make([]byte, len(src))
	for c := 0; c < 256; c++ {
		MulSlice(byte(c), src, dst)
		MulAddSlice(byte(c), src, dst)
	}
	AddSlice(src, dst)
	DotProduct([]byte{0, 1, 2, 255}, [][]byte{src, src, src, src}, dst)
	for i, b := range src {
		if b != 0 {
			t.Fatalf("kernel wrote %#x through src at index %d", b, i)
		}
	}
}

// TestSWARKernelsMatchRef differentially tests the portable SWAR tier
// directly (bypassing any architecture dispatch) against the scalar
// reference for every coefficient, odd lengths, and unaligned heads.
func TestSWARKernelsMatchRef(t *testing.T) {
	src := randKernelBuf(12, 4105)
	dstInit := randKernelBuf(13, 4105)
	for c := 0; c < 256; c++ {
		for _, n := range []int{0, 1, 7, 8, 9, 17, 64, 255, 4096, 4097} {
			for _, off := range []int{0, 3} {
				s := src[off : off+n]
				got := make([]byte, n)
				want := make([]byte, n)
				mulSliceSWAR(byte(c), s, got)
				MulSliceRef(byte(c), s, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("mulSliceSWAR(c=%d, len=%d, off=%d) diverges from reference", c, n, off)
				}
				got = append(got[:0], dstInit[off:off+n]...)
				want = append(want[:0], dstInit[off:off+n]...)
				mulAddSliceSWAR(byte(c), s, got)
				MulAddSliceRef(byte(c), s, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("mulAddSliceSWAR(c=%d, len=%d, off=%d) diverges from reference", c, n, off)
				}
			}
		}
	}
	for _, n := range []int{0, 1, 7, 8, 9, 4097} {
		got := append([]byte(nil), dstInit[:n]...)
		want := append([]byte(nil), dstInit[:n]...)
		addSliceSWAR(src[:n], got)
		AddSliceRef(src[:n], want)
		if !bytes.Equal(got, want) {
			t.Fatalf("addSliceSWAR(len=%d) diverges from reference", n)
		}
	}
}

// TestDotProductMatchesNaive checks the fused DotProduct against a scalar
// per-element evaluation, including all-zero and leading-zero coefficient
// vectors (which exercise the first-write vs accumulate dispatch).
func TestDotProductMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coeffSets := [][]byte{
		{},
		{0},
		{0, 0, 0},
		{5},
		{0, 9, 0, 3},
		{1, 2, 3, 4, 5},
		{255, 254, 0, 1},
	}
	for _, coeffs := range coeffSets {
		for _, n := range []int{1, 7, 8, 33, 257} {
			data := make([][]byte, len(coeffs))
			for i := range data {
				data[i] = make([]byte, n)
				rng.Read(data[i])
			}
			out := make([]byte, n)
			rng.Read(out) // stale contents must be overwritten
			DotProduct(coeffs, data, out)
			for j := 0; j < n; j++ {
				var want byte
				for i, c := range coeffs {
					want ^= Mul(c, data[i][j])
				}
				if out[j] != want {
					t.Fatalf("DotProduct(coeffs=%v, n=%d)[%d] = %#x, want %#x", coeffs, n, j, out[j], want)
				}
			}
		}
	}
}

// TestKernelProperty fuzzes random coefficient/length/offset/alignment
// combinations beyond the exhaustive grids above.
func TestKernelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	buf := randKernelBuf(9, 1<<14)
	acc := randKernelBuf(10, 1<<14)
	for iter := 0; iter < 2000; iter++ {
		c := byte(rng.Intn(256))
		n := rng.Intn(1 << 12)
		off := rng.Intn(len(buf) - n)
		s := buf[off : off+n]
		got := append([]byte(nil), acc[off:off+n]...)
		want := append([]byte(nil), acc[off:off+n]...)
		if iter%2 == 0 {
			MulSlice(c, s, got)
			MulSliceRef(c, s, want)
		} else {
			MulAddSlice(c, s, got)
			MulAddSliceRef(c, s, want)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: kernel(c=%d, len=%d, off=%d) diverges from reference", iter, c, n, off)
		}
	}
}

// FuzzMulAddSlice lets the fuzzer search for divergence between the SWAR and
// scalar multiply-accumulate kernels.
func FuzzMulAddSlice(f *testing.F) {
	f.Add(byte(2), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(byte(255), []byte{0xff, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, c byte, src []byte) {
		got := make([]byte, len(src))
		want := make([]byte, len(src))
		for i := range src {
			got[i] = byte(i)
			want[i] = byte(i)
		}
		MulAddSlice(c, src, got)
		MulAddSliceRef(c, src, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulAddSlice(c=%d, len=%d) diverges from reference", c, len(src))
		}
	})
}

// benchSizes are the payload sizes the kernel benchmarks sweep.
var benchSizes = []int{1 << 10, 64 << 10, 1 << 20}

func benchmarkKernel(b *testing.B, fn func(c byte, src, dst []byte)) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			src := randKernelBuf(11, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn(83, src, dst)
			}
		})
	}
}

func BenchmarkMulSlice(b *testing.B)       { benchmarkKernel(b, MulSlice) }
func BenchmarkMulSliceRef(b *testing.B)    { benchmarkKernel(b, MulSliceRef) }
func BenchmarkMulAddSlice(b *testing.B)    { benchmarkKernel(b, MulAddSlice) }
func BenchmarkMulAddSliceRef(b *testing.B) { benchmarkKernel(b, MulAddSliceRef) }

func BenchmarkAddSlice(b *testing.B) {
	benchmarkKernel(b, func(_ byte, src, dst []byte) { AddSlice(src, dst) })
}

func BenchmarkAddSliceRef(b *testing.B) {
	benchmarkKernel(b, func(_ byte, src, dst []byte) { AddSliceRef(src, dst) })
}
