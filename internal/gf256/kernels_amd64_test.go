//go:build amd64

package gf256

import (
	"bytes"
	"testing"
)

// TestKernelsWithAVX2Disabled re-runs the kernel dispatch with the assembly
// tier forced off, so the SWAR fallback is exercised even on AVX2 hardware.
func TestKernelsWithAVX2Disabled(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2; the portable tiers are already the default path")
	}
	hasAVX2 = false
	defer func() { hasAVX2 = true }()

	src := randKernelBuf(20, 4097)
	for c := 0; c < 256; c++ {
		for _, n := range []int{0, 1, 7, 8, 31, 32, 33, 4096, 4097} {
			got := make([]byte, n)
			want := make([]byte, n)
			MulSlice(byte(c), src[:n], got)
			MulSliceRef(byte(c), src[:n], want)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice(c=%d, len=%d) with AVX2 disabled diverges", c, n)
			}
			MulAddSlice(byte(c), src[:n], got)
			MulAddSliceRef(byte(c), src[:n], want)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAddSlice(c=%d, len=%d) with AVX2 disabled diverges", c, n)
			}
		}
	}
}

// TestAVX2VectorBoundary pins the wrapper's split between the vector body
// and the scalar tail around the 32-byte group size.
func TestAVX2VectorBoundary(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2")
	}
	src := randKernelBuf(21, 97)
	for n := 0; n <= len(src); n++ {
		got := make([]byte, n)
		want := make([]byte, n)
		MulSlice(0x53, src[:n], got)
		MulSliceRef(0x53, src[:n], want)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSlice(len=%d) diverges at vector boundary", n)
		}
	}
}
