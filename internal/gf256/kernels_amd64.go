//go:build amd64

package gf256

// vecBytes is the AVX2 vector width; the assembly kernels process whole
// 32-byte groups and leave the remainder to the SWAR tier.
const vecBytes = 32

// hasAVX2 gates the assembly kernels. It is a variable (not a constant) so
// the differential tests can force the portable tiers on AVX2 hardware.
var hasAVX2 = detectAVX2()

// KernelTier names the fastest kernel tier the running machine dispatches
// to: "avx2" when the assembly kernels are usable, "swar" otherwise.
// Benchmark results are stamped with it so numbers from different machines
// are comparable.
func KernelTier() string {
	if hasAVX2 {
		return "avx2"
	}
	return "swar"
}

// detectAVX2 reports whether both the CPU and the OS support AVX2: the
// AVX2 feature bit (CPUID.7.0:EBX[5]) plus OS-managed YMM state (OSXSAVE,
// AVX, and XCR0 enabling XMM|YMM).
func detectAVX2() bool {
	maxID, _, _, _ := x86cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := x86cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := x86xgetbv(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := x86cpuid(7, 0)
	return b7&(1<<5) != 0
}

func mulSliceArch(c byte, src, dst []byte) {
	if hasAVX2 && len(src) >= vecBytes {
		n := len(src) &^ (vecBytes - 1)
		t := nibbleTables(c)
		mulVecAVX2(&t, src[:n], dst[:n])
		if n < len(src) {
			MulSliceRef(c, src[n:], dst[n:])
		}
		return
	}
	mulSliceSWAR(c, src, dst)
}

func mulAddSliceArch(c byte, src, dst []byte) {
	if hasAVX2 && len(src) >= vecBytes {
		n := len(src) &^ (vecBytes - 1)
		t := nibbleTables(c)
		mulAddVecAVX2(&t, src[:n], dst[:n])
		if n < len(src) {
			MulAddSliceRef(c, src[n:], dst[n:])
		}
		return
	}
	mulAddSliceSWAR(c, src, dst)
}

func addSliceArch(src, dst []byte) {
	if hasAVX2 && len(src) >= vecBytes {
		n := len(src) &^ (vecBytes - 1)
		xorVecAVX2(src[:n], dst[:n])
		if n < len(src) {
			addSliceSWAR(src[n:], dst[n:])
		}
		return
	}
	addSliceSWAR(src, dst)
}

// mulVecAVX2 sets dst = c*src over the packed nibble tables of c.
// len(src) == len(dst) and len%32 == 0 are the caller's responsibility.
//
//go:noescape
func mulVecAVX2(tab *[32]byte, src, dst []byte)

// mulAddVecAVX2 sets dst ^= c*src over the packed nibble tables of c.
//
//go:noescape
func mulAddVecAVX2(tab *[32]byte, src, dst []byte)

// xorVecAVX2 sets dst ^= src.
//
//go:noescape
func xorVecAVX2(src, dst []byte)

// x86cpuid executes CPUID with the given leaf and subleaf.
func x86cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// x86xgetbv reads extended control register 0 (XCR0).
func x86xgetbv() (eax, edx uint32)
