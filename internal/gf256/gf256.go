// Package gf256 implements arithmetic over the Galois field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field used by
// standard Reed-Solomon implementations such as HDFS-RAID. It provides scalar
// operations, slice kernels used on the encoding hot path, and dense matrix
// algebra (multiplication, inversion) needed to build and invert generator
// matrices.
package gf256

import (
	"errors"
)

// polynomial is the primitive polynomial used to generate the field,
// x^8 + x^4 + x^3 + x^2 + 1, in binary 1_0001_1101.
const polynomial = 0x11d

// fieldSize is the number of elements in GF(2^8).
const fieldSize = 256

var (
	// _exp[i] = g^i where g = 2 is a generator. Doubled in length so that
	// Mul can index _exp[logA+logB] without a modulo reduction.
	_exp [2 * fieldSize]byte
	// _log[x] = i such that g^i = x, for x != 0.
	_log [fieldSize]int
	// _inv[x] = multiplicative inverse of x, for x != 0.
	_inv [fieldSize]byte
	// _mul is the full 256x256 multiplication table, laid out row-major.
	// Row a holds a*b for every b. Used by the slice kernels.
	_mul [fieldSize][fieldSize]byte
)

// The table construction is deterministic precomputation of field constants,
// one of the sanctioned uses of package-level initialization.
var _ = buildTables()

func buildTables() struct{} {
	x := 1
	for i := 0; i < fieldSize-1; i++ {
		_exp[i] = byte(x)
		_log[x] = i
		x <<= 1
		if x >= fieldSize {
			x ^= polynomial
		}
	}
	// g^(255+i) = g^i; fill the doubled region so exponent sums need no mod.
	for i := fieldSize - 1; i < len(_exp); i++ {
		_exp[i] = _exp[i-(fieldSize-1)]
	}
	for a := 1; a < fieldSize; a++ {
		_inv[a] = _exp[fieldSize-1-_log[a]]
	}
	for a := 0; a < fieldSize; a++ {
		for b := 0; b < fieldSize; b++ {
			_mul[a][b] = mulSlow(byte(a), byte(b))
		}
	}
	return struct{}{}
}

// mulSlow multiplies two field elements by carry-less (polynomial)
// multiplication followed by reduction. Used only to build the tables.
func mulSlow(a, b byte) byte {
	var product int
	aa, bb := int(a), int(b)
	for bb != 0 {
		if bb&1 != 0 {
			product ^= aa
		}
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= polynomial
		}
		bb >>= 1
	}
	return byte(product)
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8), which equals a + b.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _exp[_log[a]+_log[b]]
}

// ErrDivideByZero is returned by Div and Inv when the divisor is zero.
var ErrDivideByZero = errors.New("gf256: divide by zero")

// Div returns a / b in GF(2^8). It returns ErrDivideByZero if b == 0.
func Div(a, b byte) (byte, error) {
	if b == 0 {
		return 0, ErrDivideByZero
	}
	if a == 0 {
		return 0, nil
	}
	return _exp[_log[a]-_log[b]+fieldSize-1], nil
}

// Inv returns the multiplicative inverse of a. It returns ErrDivideByZero
// if a == 0.
func Inv(a byte) (byte, error) {
	if a == 0 {
		return 0, ErrDivideByZero
	}
	return _inv[a], nil
}

// Exp returns the generator raised to the power e, g^e with g = 2.
func Exp(e int) byte {
	e %= fieldSize - 1
	if e < 0 {
		e += fieldSize - 1
	}
	return _exp[e]
}

// Pow returns a raised to the power e. Pow(0, 0) is 1 by convention.
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (_log[a] * e) % (fieldSize - 1)
	if le < 0 {
		le += fieldSize - 1
	}
	return _exp[le]
}
