package netcfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// Server serves one hdfs.Cluster over TCP. Each connection gets its own
// goroutine; requests on a connection are processed in order.
type Server struct {
	cluster *hdfs.Cluster
	ln      net.Listener

	mu     sync.Mutex
	rng    *rand.Rand
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Serve starts accepting connections on addr (use "127.0.0.1:0" to let the
// OS pick a port; the bound address is available via Addr).
func Serve(cluster *hdfs.Cluster, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcfs listen: %w", err)
	}
	s := &Server{
		cluster: cluster,
		ln:      ln,
		rng:     rand.New(rand.NewSource(cluster.Config().Seed + 1000)),
		conns:   make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes the listener and every active connection,
// and waits for all connection goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			// Transient accept failure; keep serving.
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn processes requests until the peer disconnects.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			// Malformed stream: report once and drop the connection.
			_ = enc.Encode(Response{Err: fmt.Sprintf("decode: %v", err)})
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// pickClient resolves the request's client node, drawing one uniformly when
// unspecified.
func (s *Server) pickClient(req *Request) topology.NodeID {
	if req.Client >= 0 && int(req.Client) < s.cluster.Topology().Nodes() {
		return req.Client
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return topology.NodeID(s.rng.Intn(s.cluster.Topology().Nodes()))
}

// handle dispatches one request.
func (s *Server) handle(req *Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	ns := s.cluster.Namespace()
	switch req.Op {
	case OpPing:
		return Response{}
	case OpCreate:
		if err := ns.Create(req.Path); err != nil {
			return fail(err)
		}
		return Response{}
	case OpAppend:
		if err := ns.Append(s.pickClient(req), req.Path, req.Data); err != nil {
			return fail(err)
		}
		return Response{}
	case OpCloseFile:
		if err := ns.Close(req.Path); err != nil {
			return fail(err)
		}
		return Response{}
	case OpRead:
		data, err := ns.Read(s.pickClient(req), req.Path)
		if err != nil {
			return fail(err)
		}
		return Response{Data: data}
	case OpStat:
		fi, err := ns.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		info, err := toWireInfo(s.cluster, fi)
		if err != nil {
			return fail(err)
		}
		return Response{Info: info}
	case OpList:
		return Response{Files: ns.List()}
	case OpDelete:
		if err := ns.Delete(req.Path); err != nil {
			return fail(err)
		}
		return Response{}
	case OpEncode:
		s.cluster.NameNode().FlushOpenStripes()
		stats, err := s.cluster.RaidNode().EncodeAll()
		if err != nil {
			return fail(err)
		}
		return Response{Encode: &EncodeSummary{
			Stripes:            stats.Stripes,
			EncodedBytes:       stats.EncodedBytes,
			DurationSeconds:    stats.Duration.Seconds(),
			ThroughputMBps:     stats.ThroughputMBps,
			CrossRackDownloads: stats.CrossRackDownloads,
			Violations:         stats.Violations,
		}}
	case OpFailNode:
		if req.Node < 0 || int(req.Node) >= s.cluster.Topology().Nodes() {
			return fail(fmt.Errorf("%w: node %d", ErrProtocol, req.Node))
		}
		s.cluster.NameNode().MarkDead(req.Node)
		return Response{}
	case OpReviveNode:
		s.cluster.NameNode().MarkAlive(req.Node)
		return Response{}
	case OpRepairBlock:
		node, err := s.cluster.RepairBlock(req.Block)
		if err != nil {
			return fail(err)
		}
		return Response{Node: node}
	case OpClusterInfo:
		cfg := s.cluster.Config()
		return Response{Cluster: &ClusterInfo{
			Racks:          cfg.Racks,
			NodesPerRack:   cfg.NodesPerRack,
			Policy:         cfg.Policy,
			K:              cfg.K,
			N:              cfg.N,
			C:              cfg.C,
			BlockSizeBytes: cfg.BlockSizeBytes,
			EncodedStripes: len(s.cluster.NameNode().EncodedStripes()),
			BlockCount:     s.cluster.NameNode().BlockCount(),
		}}
	default:
		return fail(fmt.Errorf("%w: unknown op %v", ErrProtocol, req.Op))
	}
}
