package netcfs

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"ear/internal/hdfs"
	"ear/internal/telemetry"
	"ear/internal/tenant"
	"ear/internal/topology"
)

// allOps lists every protocol operation, for pre-registering per-op metrics.
var allOps = []Op{
	OpPing, OpCreate, OpAppend, OpCloseFile, OpRead, OpStat, OpList,
	OpDelete, OpEncode, OpFailNode, OpReviveNode, OpRepairBlock,
	OpClusterInfo, OpServerStats,
}

// opHandles are one operation's metric handles.
type opHandles struct {
	requests *telemetry.Metric // netcfs_requests_total{op}
	latency  *telemetry.Metric // netcfs_request_seconds{op}
}

// Server serves one hdfs.Cluster over TCP. Each connection gets its own
// goroutine; requests on a connection are processed in order.
type Server struct {
	cluster *hdfs.Cluster
	ln      net.Listener

	mu     sync.Mutex
	rng    *rand.Rand
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup

	// Per-op telemetry and the cumulative encoding totals served by the
	// stats RPC (guarded by mu). The server always keeps its own registry
	// so the RPC works standalone; SetTelemetry re-homes the metrics into
	// a shared registry (the admin endpoint's).
	ops       map[Op]*opHandles
	cursor    hdfs.StatsCursor
	encTotals EncodeSummary
	locality  map[string]int
	tracer    *telemetry.Tracer
}

// SetTracer installs a tracer: each request is handled under an rpc.<op>
// span that adopts the trace identity carried in the request, so the
// server's spans — and the cluster spans and journal events beneath them —
// join the calling client's trace.
func (s *Server) SetTracer(tr *telemetry.Tracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

// traceSpan opens the handling span for one request (nil without a tracer).
func (s *Server) traceSpan(req *Request) *telemetry.Span {
	s.mu.Lock()
	tr := s.tracer
	s.mu.Unlock()
	if tr == nil {
		return nil
	}
	sp := tr.StartRemote("rpc."+req.Op.String(),
		telemetry.SpanContext{Trace: req.Trace, Span: req.Span})
	sp.Arg(telemetry.ComponentArg, "rpc")
	return sp
}

// Serve starts accepting connections on addr (use "127.0.0.1:0" to let the
// OS pick a port; the bound address is available via Addr).
func Serve(cluster *hdfs.Cluster, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcfs listen: %w", err)
	}
	s := &Server{
		cluster:  cluster,
		ln:       ln,
		rng:      rand.New(rand.NewSource(cluster.Config().Seed + 1000)),
		conns:    make(map[net.Conn]bool),
		locality: make(map[string]int),
	}
	s.SetTelemetry(telemetry.NewRegistry())
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetTelemetry re-registers the server's per-operation metrics
// (netcfs_requests_total{op}, netcfs_request_seconds{op}) in the given
// registry, typically the one the admin endpoint exports. Counts recorded
// under the previous registry stay there.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	req := reg.Counter("netcfs_requests_total",
		"Requests handled, by operation.", "op")
	lat := reg.Histogram("netcfs_request_seconds",
		"Request handling latency, by operation.", nil, "op")
	ops := make(map[Op]*opHandles, len(allOps))
	for _, op := range allOps {
		ops[op] = &opHandles{
			requests: req.With(op.String()),
			latency:  lat.With(op.String()),
		}
	}
	s.mu.Lock()
	s.ops = ops
	s.mu.Unlock()
}

// observe records one handled request.
func (s *Server) observe(op Op, d time.Duration) {
	s.mu.Lock()
	h := s.ops[op]
	s.mu.Unlock()
	if h == nil {
		return // unknown op: rejected by handle, not worth a series
	}
	h.requests.Inc()
	h.latency.Observe(d.Seconds())
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes the listener and every active connection,
// and waits for all connection goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return
			}
			// Transient accept failure; keep serving.
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn processes requests until the peer disconnects. Decoding runs in
// a dedicated reader goroutine so a disconnect — or Server.Close, which
// closes the connection — is noticed while a handler is still executing:
// the per-connection context is canceled and the in-flight operation's
// shaped transfers abort within one chunk reservation instead of running to
// completion against a dead peer. Requests are still handled strictly in
// arrival order.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	reqs := make(chan *Request)
	var readErr error // written by the reader before closing reqs
	go func() {
		defer close(reqs)
		for {
			req := new(Request)
			if err := dec.Decode(req); err != nil {
				readErr = err
				cancel() // abort any in-flight handler
				return
			}
			select {
			case reqs <- req:
			case <-ctx.Done():
				return
			}
		}
	}()
	for req := range reqs {
		start := time.Now()
		hctx := ctx
		sp := s.traceSpan(req)
		if sp != nil {
			hctx = telemetry.ContextWithSpan(ctx, sp)
		}
		// Re-establish the wire-carried tenant on the handler context so
		// every resource sink beneath the handler charges the right tenant.
		hctx = tenant.NewContext(hctx, req.Tenant)
		resp := s.handle(hctx, req)
		sp.End()
		s.observe(req.Op, time.Since(start))
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		// Malformed stream: report once and drop the connection.
		_ = enc.Encode(Response{Err: fmt.Sprintf("decode: %v", readErr)})
	}
}

// pickClient resolves the request's client node, drawing one uniformly when
// unspecified.
func (s *Server) pickClient(req *Request) topology.NodeID {
	if req.Client >= 0 && int(req.Client) < s.cluster.Topology().Nodes() {
		return req.Client
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return topology.NodeID(s.rng.Intn(s.cluster.Topology().Nodes()))
}

// statsReport assembles the OpServerStats payload. Encoding statistics are
// folded in incrementally via RaidNode.StatsSince, so repeated polling stays
// cheap regardless of how many encoding jobs have run.
func (s *Server) statsReport() *StatsReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, next := s.cluster.RaidNode().StatsSince(s.cursor)
	s.cursor = next
	s.encTotals.Stripes += d.Stripes
	s.encTotals.EncodedBytes += d.EncodedBytes
	s.encTotals.DurationSeconds += d.Duration.Seconds()
	s.encTotals.CrossRackDownloads += d.CrossRackDownloads
	s.encTotals.Violations += d.Violations
	if s.encTotals.DurationSeconds > 0 {
		s.encTotals.ThroughputMBps = float64(s.encTotals.EncodedBytes) /
			(1 << 20) / s.encTotals.DurationSeconds
	}
	for _, pl := range d.TaskPlacements {
		switch {
		case pl.Local:
			s.locality["node"]++
		case pl.Rack:
			s.locality["rack"]++
		default:
			s.locality["remote"]++
		}
	}

	fab := s.cluster.Fabric().Snapshot()
	report := &StatsReport{
		Encode:         s.encTotals,
		TaskLocality:   make(map[string]int, len(s.locality)),
		CrossRackBytes: fab.CrossRackBytes,
		IntraRackBytes: fab.IntraRackBytes,
	}
	for k, v := range s.locality {
		report.TaskLocality[k] = v
	}
	for _, op := range allOps {
		h := s.ops[op]
		n := h.requests.Value()
		if n == 0 {
			continue
		}
		m := OpMetric{
			Op:           op.String(),
			Count:        uint64(n),
			TotalSeconds: h.latency.Sum(),
			MeanSeconds:  h.latency.Mean(),
			P50Seconds:   h.latency.Quantile(0.5),
			P99Seconds:   h.latency.Quantile(0.99),
		}
		// Quantiles over zero samples are NaN; report zeros instead so
		// clients can print the report without special-casing.
		if math.IsNaN(m.MeanSeconds) {
			m.MeanSeconds, m.P50Seconds, m.P99Seconds = 0, 0, 0
		}
		report.Ops = append(report.Ops, m)
	}
	return report
}

// handle dispatches one request under the connection's context.
func (s *Server) handle(ctx context.Context, req *Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	ns := s.cluster.Namespace()
	switch req.Op {
	case OpPing:
		return Response{}
	case OpCreate:
		if err := ns.Create(req.Path); err != nil {
			return fail(err)
		}
		return Response{}
	case OpAppend:
		if err := ns.AppendCtx(ctx, s.pickClient(req), req.Path, req.Data); err != nil {
			return fail(err)
		}
		return Response{}
	case OpCloseFile:
		if err := ns.Close(req.Path); err != nil {
			return fail(err)
		}
		return Response{}
	case OpRead:
		data, err := ns.ReadCtx(ctx, s.pickClient(req), req.Path)
		if err != nil {
			return fail(err)
		}
		return Response{Data: data}
	case OpStat:
		fi, err := ns.Stat(req.Path)
		if err != nil {
			return fail(err)
		}
		info, err := toWireInfo(s.cluster, fi)
		if err != nil {
			return fail(err)
		}
		return Response{Info: info}
	case OpList:
		return Response{Files: ns.List()}
	case OpDelete:
		if err := ns.Delete(req.Path); err != nil {
			return fail(err)
		}
		return Response{}
	case OpEncode:
		s.cluster.NameNode().FlushOpenStripes()
		stats, err := s.cluster.RaidNode().EncodeAllCtx(ctx)
		if err != nil {
			return fail(err)
		}
		return Response{Encode: &EncodeSummary{
			Stripes:            stats.Stripes,
			EncodedBytes:       stats.EncodedBytes,
			DurationSeconds:    stats.Duration.Seconds(),
			ThroughputMBps:     stats.ThroughputMBps,
			CrossRackDownloads: stats.CrossRackDownloads,
			Violations:         stats.Violations,
		}}
	case OpFailNode:
		if req.Node < 0 || int(req.Node) >= s.cluster.Topology().Nodes() {
			return fail(fmt.Errorf("%w: node %d", ErrProtocol, req.Node))
		}
		s.cluster.NameNode().MarkDead(req.Node)
		return Response{}
	case OpReviveNode:
		s.cluster.NameNode().MarkAlive(req.Node)
		return Response{}
	case OpRepairBlock:
		node, err := s.cluster.RepairBlockCtx(ctx, req.Block)
		if err != nil {
			return fail(err)
		}
		return Response{Node: node}
	case OpServerStats:
		return Response{Stats: s.statsReport()}
	case OpClusterInfo:
		cfg := s.cluster.Config()
		return Response{Cluster: &ClusterInfo{
			Racks:          cfg.Racks,
			NodesPerRack:   cfg.NodesPerRack,
			Policy:         cfg.Policy,
			K:              cfg.K,
			N:              cfg.N,
			C:              cfg.C,
			BlockSizeBytes: cfg.BlockSizeBytes,
			EncodedStripes: len(s.cluster.NameNode().EncodedStripes()),
			BlockCount:     s.cluster.NameNode().BlockCount(),
		}}
	default:
		return fail(fmt.Errorf("%w: unknown op %v", ErrProtocol, req.Op))
	}
}
