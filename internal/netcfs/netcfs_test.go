package netcfs

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ear/internal/hdfs"
	"ear/internal/telemetry"
)

func startServer(t *testing.T, policy string) (*Server, *Client) {
	t.Helper()
	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks:                6,
		NodesPerRack:         3,
		Policy:               policy,
		K:                    4,
		N:                    6,
		C:                    1,
		BlockSizeBytes:       8 << 10,
		BandwidthBytesPerSec: 1 << 30,
		Seed:                 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Close()
	})
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestPingAndInfo(t *testing.T) {
	_, c := startServer(t, "ear")
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	info, err := c.ClusterInfo()
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	if info.Racks != 6 || info.Policy != "ear" || info.K != 4 || info.N != 6 {
		t.Fatalf("info = %+v", info)
	}
}

func TestFileRoundTripOverTCP(t *testing.T) {
	_, c := startServer(t, "ear")
	payload := make([]byte, 20<<10) // 2.5 blocks
	rand.New(rand.NewSource(22)).Read(payload)

	if err := c.Create("/data/trace.bin"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Append("/data/trace.bin", payload); err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, err := c.Read("/data/trace.bin")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content mismatch over TCP")
	}
	fi, err := c.Stat("/data/trace.bin")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Size != len(payload) || len(fi.Blocks) != 3 {
		t.Fatalf("Stat = %+v", fi)
	}
	files, err := c.List()
	if err != nil || len(files) != 1 || files[0] != "/data/trace.bin" {
		t.Fatalf("List = (%v, %v)", files, err)
	}
}

func TestEncodeFailRepairOverTCP(t *testing.T) {
	_, c := startServer(t, "ear")
	payload := make([]byte, 64<<10) // 8 blocks = 2 stripes (k=4)
	rand.New(rand.NewSource(23)).Read(payload)
	if err := c.Create("/big"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("/big", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseFile("/big"); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if sum.Stripes == 0 || sum.CrossRackDownloads != 0 {
		t.Fatalf("encode summary = %+v (EAR should have 0 cross downloads)", sum)
	}
	// Fail the node holding the first block and read through degraded path.
	fi, err := c.Stat("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Locations) != len(fi.Blocks) || len(fi.Locations[0]) != 1 {
		t.Fatalf("post-encode locations = %v", fi.Locations)
	}
	victim := fi.Locations[0][0]
	if err := c.FailNode(victim); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	got, err := c.Read("/big")
	if err != nil {
		t.Fatalf("Read with failed node: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded content mismatch")
	}
	repairedTo, err := c.RepairBlock(fi.Blocks[0])
	if err != nil {
		t.Fatalf("RepairBlock: %v", err)
	}
	if repairedTo == victim {
		t.Fatal("repair landed on the dead node")
	}
	if err := c.ReviveNode(victim); err != nil {
		t.Fatalf("ReviveNode: %v", err)
	}
}

func TestRemoteErrors(t *testing.T) {
	_, c := startServer(t, "rr")
	if _, err := c.Read("/nope"); !errors.Is(err, ErrRemote) {
		t.Errorf("Read missing: %v", err)
	}
	if err := c.Create("/dup"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/dup"); !errors.Is(err, ErrRemote) {
		t.Errorf("duplicate Create: %v", err)
	}
	if err := c.FailNode(999); !errors.Is(err, ErrRemote) {
		t.Errorf("bad node: %v", err)
	}
	if err := c.Delete("/dup"); !errors.Is(err, ErrRemote) {
		t.Errorf("delete open file: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, "rr")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			path := string(rune('a'+i)) + ".txt"
			if err := c.Create(path); err != nil {
				errs[i] = err
				return
			}
			data := bytes.Repeat([]byte{byte(i)}, 8<<10)
			if err := c.Append(path, data); err != nil {
				errs[i] = err
				return
			}
			got, err := c.Read(path)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, data) {
				errs[i] = errors.New("content mismatch")
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, c := startServer(t, "rr")
	srv.Close()
	if err := c.Ping(); err == nil {
		t.Error("Ping after server close should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestOpString(t *testing.T) {
	if OpPing.String() != "ping" || OpEncode.String() != "encode" || Op(99).String() != "op(99)" {
		t.Error("Op.String wrong")
	}
}

// TestTimeoutAndDisconnectCancelServerWork drives an append over a link so
// slow it could never finish, times it out client-side, and checks that the
// disconnect cancels the server's in-flight work: Server.Close must return
// promptly instead of waiting out a minutes-long shaped transfer.
func TestTimeoutAndDisconnectCancelServerWork(t *testing.T) {
	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks:                3,
		NodesPerRack:         2,
		Policy:               "rr",
		K:                    2,
		N:                    3,
		C:                    1,
		BlockSizeBytes:       64 << 10,
		BandwidthBytesPerSec: 1 << 10, // 1 KiB/s: one block hop takes ~64s
		Seed:                 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 200 * time.Millisecond
	if err := client.Create("/slow"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := client.Append("/slow", make([]byte, 64<<10)); err == nil {
		t.Fatal("append over a 1 KiB/s link should time out")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timed-out append returned after %v", d)
	}
	client.Close()
	done := make(chan struct{})
	go func() {
		srv.Close()
		cluster.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close blocked on a canceled append")
	}
}

func TestStatsRPC(t *testing.T) {
	srv, c := startServer(t, "ear")
	// First report: nothing handled yet except this connection's traffic.
	rep, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if rep.Encode.Stripes != 0 {
		t.Errorf("initial encode stripes = %d", rep.Encode.Stripes)
	}

	// Generate traffic: write a file and encode it.
	if err := c.Create("/a"); err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, 8<<10)
	rand.New(rand.NewSource(7)).Read(blk)
	for i := 0; i < 4; i++ {
		if err := c.Append("/a", blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseFile("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(); err != nil {
		t.Fatal(err)
	}

	rep, err = c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	byOp := map[string]OpMetric{}
	for _, m := range rep.Ops {
		byOp[m.Op] = m
	}
	if got := byOp["append"].Count; got != 4 {
		t.Errorf("append count = %d, want 4", got)
	}
	if got := byOp["encode"].Count; got != 1 {
		t.Errorf("encode count = %d, want 1", got)
	}
	if m := byOp["encode"]; m.TotalSeconds <= 0 || m.P99Seconds < m.P50Seconds {
		t.Errorf("encode latency summary inconsistent: %+v", m)
	}
	if rep.Encode.Stripes == 0 || rep.Encode.EncodedBytes != 4*8<<10 {
		t.Errorf("encode totals = %+v", rep.Encode)
	}
	total := 0
	for _, n := range rep.TaskLocality {
		total += n
	}
	if total == 0 {
		t.Error("no task locality recorded")
	}
	if rep.IntraRackBytes+rep.CrossRackBytes <= 0 {
		t.Error("no fabric traffic recorded")
	}

	// Polling again must not double-count encode totals (cursor advanced).
	rep2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Encode.Stripes != rep.Encode.Stripes {
		t.Errorf("stripes grew on idle poll: %d -> %d", rep.Encode.Stripes, rep2.Encode.Stripes)
	}

	// Re-homing metrics into a shared registry keeps the RPC working.
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after SetTelemetry: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`netcfs_requests_total{op="ping"} 1`)) {
		t.Errorf("shared registry missing ping count:\n%s", buf.String())
	}
}
