package netcfs

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ear/internal/events"
	"ear/internal/hdfs"
	"ear/internal/telemetry"
)

func startServer(t *testing.T, policy string) (*Server, *Client) {
	t.Helper()
	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks:                6,
		NodesPerRack:         3,
		Policy:               policy,
		K:                    4,
		N:                    6,
		C:                    1,
		BlockSizeBytes:       8 << 10,
		BandwidthBytesPerSec: 1 << 30,
		Seed:                 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Close()
	})
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestPingAndInfo(t *testing.T) {
	_, c := startServer(t, "ear")
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	info, err := c.ClusterInfo()
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	if info.Racks != 6 || info.Policy != "ear" || info.K != 4 || info.N != 6 {
		t.Fatalf("info = %+v", info)
	}
}

func TestFileRoundTripOverTCP(t *testing.T) {
	_, c := startServer(t, "ear")
	payload := make([]byte, 20<<10) // 2.5 blocks
	rand.New(rand.NewSource(22)).Read(payload)

	if err := c.Create("/data/trace.bin"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Append("/data/trace.bin", payload); err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, err := c.Read("/data/trace.bin")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("content mismatch over TCP")
	}
	fi, err := c.Stat("/data/trace.bin")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if fi.Size != len(payload) || len(fi.Blocks) != 3 {
		t.Fatalf("Stat = %+v", fi)
	}
	files, err := c.List()
	if err != nil || len(files) != 1 || files[0] != "/data/trace.bin" {
		t.Fatalf("List = (%v, %v)", files, err)
	}
}

func TestEncodeFailRepairOverTCP(t *testing.T) {
	_, c := startServer(t, "ear")
	payload := make([]byte, 64<<10) // 8 blocks = 2 stripes (k=4)
	rand.New(rand.NewSource(23)).Read(payload)
	if err := c.Create("/big"); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("/big", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseFile("/big"); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if sum.Stripes == 0 || sum.CrossRackDownloads != 0 {
		t.Fatalf("encode summary = %+v (EAR should have 0 cross downloads)", sum)
	}
	// Fail the node holding the first block and read through degraded path.
	fi, err := c.Stat("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Locations) != len(fi.Blocks) || len(fi.Locations[0]) != 1 {
		t.Fatalf("post-encode locations = %v", fi.Locations)
	}
	victim := fi.Locations[0][0]
	if err := c.FailNode(victim); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	got, err := c.Read("/big")
	if err != nil {
		t.Fatalf("Read with failed node: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded content mismatch")
	}
	repairedTo, err := c.RepairBlock(fi.Blocks[0])
	if err != nil {
		t.Fatalf("RepairBlock: %v", err)
	}
	if repairedTo == victim {
		t.Fatal("repair landed on the dead node")
	}
	if err := c.ReviveNode(victim); err != nil {
		t.Fatalf("ReviveNode: %v", err)
	}
}

func TestRemoteErrors(t *testing.T) {
	_, c := startServer(t, "rr")
	if _, err := c.Read("/nope"); !errors.Is(err, ErrRemote) {
		t.Errorf("Read missing: %v", err)
	}
	if err := c.Create("/dup"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/dup"); !errors.Is(err, ErrRemote) {
		t.Errorf("duplicate Create: %v", err)
	}
	if err := c.FailNode(999); !errors.Is(err, ErrRemote) {
		t.Errorf("bad node: %v", err)
	}
	if err := c.Delete("/dup"); !errors.Is(err, ErrRemote) {
		t.Errorf("delete open file: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, "rr")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			path := string(rune('a'+i)) + ".txt"
			if err := c.Create(path); err != nil {
				errs[i] = err
				return
			}
			data := bytes.Repeat([]byte{byte(i)}, 8<<10)
			if err := c.Append(path, data); err != nil {
				errs[i] = err
				return
			}
			got, err := c.Read(path)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, data) {
				errs[i] = errors.New("content mismatch")
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, c := startServer(t, "rr")
	srv.Close()
	if err := c.Ping(); err == nil {
		t.Error("Ping after server close should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestOpString(t *testing.T) {
	if OpPing.String() != "ping" || OpEncode.String() != "encode" || Op(99).String() != "op(99)" {
		t.Error("Op.String wrong")
	}
}

// TestTimeoutAndDisconnectCancelServerWork drives an append over a link so
// slow it could never finish, times it out client-side, and checks that the
// disconnect cancels the server's in-flight work: Server.Close must return
// promptly instead of waiting out a minutes-long shaped transfer.
func TestTimeoutAndDisconnectCancelServerWork(t *testing.T) {
	cluster, err := hdfs.NewCluster(hdfs.Config{
		Racks:                3,
		NodesPerRack:         2,
		Policy:               "rr",
		K:                    2,
		N:                    3,
		C:                    1,
		BlockSizeBytes:       64 << 10,
		BandwidthBytesPerSec: 1 << 10, // 1 KiB/s: one block hop takes ~64s
		Seed:                 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(cluster, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 200 * time.Millisecond
	if err := client.Create("/slow"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := client.Append("/slow", make([]byte, 64<<10)); err == nil {
		t.Fatal("append over a 1 KiB/s link should time out")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timed-out append returned after %v", d)
	}
	client.Close()
	done := make(chan struct{})
	go func() {
		srv.Close()
		cluster.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close blocked on a canceled append")
	}
}

func TestStatsRPC(t *testing.T) {
	srv, c := startServer(t, "ear")
	// First report: nothing handled yet except this connection's traffic.
	rep, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if rep.Encode.Stripes != 0 {
		t.Errorf("initial encode stripes = %d", rep.Encode.Stripes)
	}

	// Generate traffic: write a file and encode it.
	if err := c.Create("/a"); err != nil {
		t.Fatal(err)
	}
	blk := make([]byte, 8<<10)
	rand.New(rand.NewSource(7)).Read(blk)
	for i := 0; i < 4; i++ {
		if err := c.Append("/a", blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseFile("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(); err != nil {
		t.Fatal(err)
	}

	rep, err = c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	byOp := map[string]OpMetric{}
	for _, m := range rep.Ops {
		byOp[m.Op] = m
	}
	if got := byOp["append"].Count; got != 4 {
		t.Errorf("append count = %d, want 4", got)
	}
	if got := byOp["encode"].Count; got != 1 {
		t.Errorf("encode count = %d, want 1", got)
	}
	if m := byOp["encode"]; m.TotalSeconds <= 0 || m.P99Seconds < m.P50Seconds {
		t.Errorf("encode latency summary inconsistent: %+v", m)
	}
	if rep.Encode.Stripes == 0 || rep.Encode.EncodedBytes != 4*8<<10 {
		t.Errorf("encode totals = %+v", rep.Encode)
	}
	total := 0
	for _, n := range rep.TaskLocality {
		total += n
	}
	if total == 0 {
		t.Error("no task locality recorded")
	}
	if rep.IntraRackBytes+rep.CrossRackBytes <= 0 {
		t.Error("no fabric traffic recorded")
	}

	// Polling again must not double-count encode totals (cursor advanced).
	rep2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Encode.Stripes != rep.Encode.Stripes {
		t.Errorf("stripes grew on idle poll: %d -> %d", rep.Encode.Stripes, rep2.Encode.Stripes)
	}

	// Re-homing metrics into a shared registry keeps the RPC working.
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats after SetTelemetry: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`netcfs_requests_total{op="ping"} 1`)) {
		t.Errorf("shared registry missing ping count:\n%s", buf.String())
	}
}

// TestTracePropagationAcrossWire: a traced client RPC and the traced server
// handling it must share one trace ID, carried in the request frame, and the
// server's cluster spans and journal events must join that same trace.
func TestTracePropagationAcrossWire(t *testing.T) {
	srv, c := startServer(t, "ear")
	clientTr := telemetry.NewTracer()
	serverTr := telemetry.NewTracer()
	c.SetTracer(clientTr)
	srv.SetTracer(serverTr)
	jnl := events.NewJournal(4096)
	srv.cluster.SetJournal(jnl)
	srv.cluster.SetTracer(serverTr)

	if err := c.Create("/t.dat"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8<<10)
	rand.New(rand.NewSource(5)).Read(payload)
	if err := c.Append("/t.dat", payload); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseFile("/t.dat"); err != nil {
		t.Fatal(err)
	}

	var appendTrace uint64
	for _, s := range clientTr.Spans() {
		if s.Name == "rpc.append" {
			appendTrace = s.Trace
			if got := s.Args[telemetry.ComponentArg]; got != "client" {
				t.Errorf("client rpc span component = %q, want client", got)
			}
		}
	}
	if appendTrace == 0 {
		t.Fatal("client tracer recorded no rpc.append span")
	}

	var serverRPC, serverWrite, serverHops int
	for _, s := range serverTr.Spans() {
		if s.Trace != appendTrace {
			continue
		}
		switch s.Name {
		case "rpc.append":
			serverRPC++
			if s.Remote == 0 {
				t.Error("server rpc.append span lost the remote parent link")
			}
		case "client.write-block":
			serverWrite++
		case "datanode.pipeline-hop":
			serverHops++
		}
	}
	if serverRPC != 1 {
		t.Fatalf("server rpc.append spans in client's trace = %d, want 1", serverRPC)
	}
	if serverWrite == 0 || serverHops == 0 {
		t.Errorf("server write/hop spans in trace = %d/%d, want both > 0", serverWrite, serverHops)
	}

	// Combined client+server span set: the append trace crosses components.
	all := append(clientTr.Spans(), serverTr.Spans()...)
	if got := telemetry.MultiComponentTraces(all); got < 1 {
		t.Errorf("MultiComponentTraces(client+server) = %d, want >= 1", got)
	}

	// Journal events of the write carry the propagated trace.
	evs, _, _ := jnl.Since(0, 0, events.Filter{Trace: appendTrace})
	byType := map[events.Type]int{}
	for _, e := range evs {
		byType[e.Type]++
	}
	for _, typ := range []events.Type{events.BlockAllocated, events.ReplicaWritten, events.BlockCommitted} {
		if byType[typ] == 0 {
			t.Errorf("no %s journal event carries the RPC trace", typ)
		}
	}
}

// TestTracerlessClientStillMintsTraceIDs: without a client tracer the
// request still carries a nonzero trace ID, so a traced server groups each
// RPC's activity.
func TestTracerlessClientStillMintsTraceIDs(t *testing.T) {
	srv, c := startServer(t, "rr")
	serverTr := telemetry.NewTracer()
	srv.SetTracer(serverTr)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	var traces []uint64
	for _, s := range serverTr.Spans() {
		if s.Name == "rpc.ping" {
			traces = append(traces, s.Trace)
		}
	}
	if len(traces) != 2 {
		t.Fatalf("rpc.ping server spans = %d, want 2", len(traces))
	}
	if traces[0] == 0 || traces[1] == 0 {
		t.Fatal("tracerless client produced a zero trace ID")
	}
	if traces[0] == traces[1] {
		t.Fatal("distinct RPCs share a trace ID")
	}
}

// TestTenantAndTracePropagationAcrossReconnect: the tenant identity and
// trace IDs ride every request of a connection, and a client that
// reconnects (a fresh Dial session against the same server) keeps charging
// the same tenant — the accounting table accumulates across connections.
func TestTenantAndTracePropagationAcrossReconnect(t *testing.T) {
	srv, first := startServer(t, "ear")
	serverTr := telemetry.NewTracer()
	srv.SetTracer(serverTr)
	srv.cluster.SetTracer(serverTr)
	payload := make([]byte, 8<<10)
	rand.New(rand.NewSource(31)).Read(payload)

	first.Tenant = "acme"
	if err := first.Create("/a.dat"); err != nil {
		t.Fatal(err)
	}
	if err := first.Append("/a.dat", payload); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// Reconnect: a new session, same tenant identity.
	second, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.Tenant = "acme"
	if err := second.Append("/a.dat", payload); err != nil {
		t.Fatal(err)
	}

	// Also one block from a different tenant, to check isolation.
	third, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	third.Tenant = "beta"
	if err := third.Create("/b.dat"); err != nil {
		t.Fatal(err)
	}
	if err := third.Append("/b.dat", payload); err != nil {
		t.Fatal(err)
	}

	byTenant := map[string]map[string]int64{}
	for _, ts := range srv.cluster.Tenants().Snapshot() {
		ops := map[string]int64{}
		for _, op := range ts.Ops {
			ops[op.Op] = op.Count
		}
		byTenant[ts.Tenant] = ops
	}
	if got := byTenant["acme"]["write"]; got != 2 {
		t.Errorf("acme writes across reconnect = %d, want 2 (table: %v)", got, byTenant)
	}
	if got := byTenant["beta"]["write"]; got != 1 {
		t.Errorf("beta writes = %d, want 1 (table: %v)", got, byTenant)
	}
	if byTenant["acme"]["alloc"] != 2 || byTenant["beta"]["alloc"] != 1 {
		t.Errorf("alloc charges did not follow the wire tenant: %v", byTenant)
	}

	// Each connection's appends still carry distinct nonzero trace IDs.
	traces := map[uint64]bool{}
	for _, s := range serverTr.Spans() {
		if s.Name == "rpc.append" {
			if s.Trace == 0 {
				t.Fatal("rpc.append span with zero trace ID")
			}
			traces[s.Trace] = true
		}
	}
	if len(traces) != 3 {
		t.Errorf("distinct append traces = %d, want 3", len(traces))
	}
}
