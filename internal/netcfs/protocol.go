// Package netcfs exposes a mini-HDFS cluster over TCP: a gateway server
// wraps an hdfs.Cluster and speaks a small gob-framed request/response
// protocol, and a client provides file and administrative operations
// (write, read, list, encode, fail, repair, stats). It turns the in-process
// reproduction into a system a client on another machine can actually use.
package netcfs

import (
	"errors"
	"fmt"

	"ear/internal/hdfs"
	"ear/internal/topology"
)

// ErrProtocol indicates a malformed or unexpected message.
var ErrProtocol = errors.New("netcfs: protocol error")

// Op identifies a request type.
type Op int

// Protocol operations.
const (
	OpPing Op = iota + 1
	OpCreate
	OpAppend
	OpCloseFile
	OpRead
	OpStat
	OpList
	OpDelete
	OpEncode
	OpFailNode
	OpReviveNode
	OpRepairBlock
	OpClusterInfo
	OpServerStats
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpCreate:
		return "create"
	case OpAppend:
		return "append"
	case OpCloseFile:
		return "close"
	case OpRead:
		return "read"
	case OpStat:
		return "stat"
	case OpList:
		return "list"
	case OpDelete:
		return "delete"
	case OpEncode:
		return "encode"
	case OpFailNode:
		return "fail"
	case OpReviveNode:
		return "revive"
	case OpRepairBlock:
		return "repair"
	case OpClusterInfo:
		return "info"
	case OpServerStats:
		return "stats"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request is the client -> server message. Fields are used per operation.
type Request struct {
	Op   Op
	Path string
	// Client is the node the operation should be attributed to for
	// locality; negative values let the server pick one at random.
	Client topology.NodeID
	Data   []byte
	Node   topology.NodeID
	Block  topology.BlockID

	// Trace and Span carry the caller's telemetry.SpanContext across the
	// wire, flattened for gob. The server adopts them (Tracer.StartRemote)
	// so its spans and journal events join the client's trace; a client
	// without a tracer still stamps a fresh Trace per call so server-side
	// activity groups per RPC. Zero means untraced.
	Trace uint64
	Span  int64

	// Tenant names the accounting identity the request's resource usage —
	// allocations, fabric bytes, and the background encode/repair work its
	// blocks later cause — is charged to. Empty means the system tenant.
	// Rides beside Trace the same way: old peers ignore the field (gob
	// tolerates unknown fields), new servers re-establish it on the
	// handler context.
	Tenant string
}

// EncodeSummary is the wire form of hdfs.EncodeStats.
type EncodeSummary struct {
	Stripes            int
	EncodedBytes       int64
	DurationSeconds    float64
	ThroughputMBps     float64
	CrossRackDownloads int
	Violations         int
}

// OpMetric summarizes the server's handling of one operation type.
type OpMetric struct {
	Op           string
	Count        uint64
	TotalSeconds float64
	MeanSeconds  float64
	P50Seconds   float64
	P99Seconds   float64
}

// StatsReport is the OpServerStats payload: per-operation request counts and
// latency quantiles, cumulative encoding statistics, encoding-task locality
// counts (node / rack / remote), and fabric traffic totals.
type StatsReport struct {
	Ops            []OpMetric
	Encode         EncodeSummary
	TaskLocality   map[string]int
	CrossRackBytes int64
	IntraRackBytes int64
}

// ClusterInfo describes the served cluster.
type ClusterInfo struct {
	Racks          int
	NodesPerRack   int
	Policy         string
	K, N, C        int
	BlockSizeBytes int
	EncodedStripes int
	BlockCount     int
}

// Response is the server -> client message.
type Response struct {
	// Err is the error text ("" for success). Errors cross the wire as
	// strings; clients match on substrings, not sentinel identity.
	Err     string
	Data    []byte
	Files   []string
	Info    *FileInfo
	Encode  *EncodeSummary
	Node    topology.NodeID
	Cluster *ClusterInfo
	Stats   *StatsReport
}

// FileInfo is the wire form of hdfs.FileInfo.
type FileInfo struct {
	Path   string
	Blocks []topology.BlockID
	// Locations[i] lists the live replica nodes of Blocks[i].
	Locations [][]topology.NodeID
	Size      int
	Closed    bool
}

// toWireInfo converts hdfs metadata to the wire form, resolving each
// block's live replica locations.
func toWireInfo(c *hdfs.Cluster, fi hdfs.FileInfo) (*FileInfo, error) {
	out := &FileInfo{
		Path:   fi.Path,
		Blocks: append([]topology.BlockID(nil), fi.Blocks...),
		Size:   fi.Size,
		Closed: fi.Closed,
	}
	for _, b := range fi.Blocks {
		live, err := c.NameNode().LiveReplicas(b)
		if err != nil {
			return nil, err
		}
		out.Locations = append(out.Locations, live)
	}
	return out, nil
}
