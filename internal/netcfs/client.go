package netcfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ear/internal/telemetry"
	"ear/internal/topology"
)

// ErrRemote wraps server-side failures; the server's message is appended.
var ErrRemote = errors.New("netcfs: remote error")

// Client talks to a Server over one TCP connection. Methods are safe for
// concurrent use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	// ClientNode attributes operations to a cluster node for locality;
	// negative (the default) lets the server pick randomly per request.
	ClientNode topology.NodeID
	// Timeout, when positive, bounds each RPC round trip via a connection
	// deadline. A timed-out call returns an error and leaves the gob stream
	// out of sync, so the client must be Closed afterwards; the server
	// notices the disconnect and cancels the abandoned operation's
	// in-flight transfers. Zero (the default) never times out.
	Timeout time.Duration
	// Tenant names the accounting identity every request is charged to on
	// the server (empty = the system tenant). Set it once after Dial; it
	// rides each request beside the trace ID, so it survives reconnects
	// trivially — a new connection with the same Tenant keeps the same
	// accounting identity.
	Tenant string

	tracer *telemetry.Tracer
}

// SetTracer installs a tracer: each RPC opens an rpc.<op> client span whose
// identity crosses the wire in the request, so a traced server continues the
// same trace. Without a tracer every call still carries a fresh trace ID.
func (c *Client) SetTracer(tr *telemetry.Tracer) {
	c.mu.Lock()
	c.tracer = tr
	c.mu.Unlock()
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcfs dial: %w", err)
	}
	return &Client{
		conn:       conn,
		enc:        gob.NewEncoder(conn),
		dec:        gob.NewDecoder(conn),
		ClientNode: -1,
	}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one round trip.
func (c *Client) call(req Request) (Response, error) {
	req.Client = c.ClientNode
	req.Tenant = c.Tenant
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tracer != nil {
		sp := c.tracer.Start("rpc." + req.Op.String())
		sp.Arg(telemetry.ComponentArg, "client")
		sc := sp.Context()
		req.Trace, req.Span = sc.Trace, sc.Span
		defer sp.End()
	} else {
		// Tracerless clients still mint a trace ID so server-side spans
		// and journal events group per RPC.
		req.Trace = telemetry.NewTraceID()
	}
	if c.Timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return Response{}, fmt.Errorf("netcfs deadline %v: %w", req.Op, err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("netcfs send %v: %w", req.Op, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("netcfs recv %v: %w", req.Op, err)
	}
	if resp.Err != "" {
		return Response{}, fmt.Errorf("%w: %s: %s", ErrRemote, req.Op, resp.Err)
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Create registers an empty file.
func (c *Client) Create(path string) error {
	_, err := c.call(Request{Op: OpCreate, Path: path})
	return err
}

// Append writes data to the end of an open file.
func (c *Client) Append(path string, data []byte) error {
	_, err := c.call(Request{Op: OpAppend, Path: path, Data: data})
	return err
}

// CloseFile seals a file, making it immutable and encodable.
func (c *Client) CloseFile(path string) error {
	_, err := c.call(Request{Op: OpCloseFile, Path: path})
	return err
}

// Read returns a file's contents.
func (c *Client) Read(path string) ([]byte, error) {
	resp, err := c.call(Request{Op: OpRead, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Stat returns file metadata.
func (c *Client) Stat(path string) (*FileInfo, error) {
	resp, err := c.call(Request{Op: OpStat, Path: path})
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("%w: stat returned no info", ErrProtocol)
	}
	return resp.Info, nil
}

// List returns all paths.
func (c *Client) List() ([]string, error) {
	resp, err := c.call(Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Files, nil
}

// Delete removes a closed file.
func (c *Client) Delete(path string) error {
	_, err := c.call(Request{Op: OpDelete, Path: path})
	return err
}

// Encode seals open stripes and runs the background encoding job,
// returning its statistics.
func (c *Client) Encode() (*EncodeSummary, error) {
	resp, err := c.call(Request{Op: OpEncode})
	if err != nil {
		return nil, err
	}
	if resp.Encode == nil {
		return nil, fmt.Errorf("%w: encode returned no summary", ErrProtocol)
	}
	return resp.Encode, nil
}

// FailNode marks a node dead.
func (c *Client) FailNode(n topology.NodeID) error {
	_, err := c.call(Request{Op: OpFailNode, Node: n})
	return err
}

// ReviveNode brings a node back.
func (c *Client) ReviveNode(n topology.NodeID) error {
	_, err := c.call(Request{Op: OpReviveNode, Node: n})
	return err
}

// RepairBlock reconstructs a lost block onto a fresh node and returns it.
func (c *Client) RepairBlock(b topology.BlockID) (topology.NodeID, error) {
	resp, err := c.call(Request{Op: OpRepairBlock, Block: b})
	if err != nil {
		return 0, err
	}
	return resp.Node, nil
}

// Stats returns the server's operation and encoding statistics.
func (c *Client) Stats() (*StatsReport, error) {
	resp, err := c.call(Request{Op: OpServerStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("%w: stats returned no report", ErrProtocol)
	}
	return resp.Stats, nil
}

// ClusterInfo describes the served cluster.
func (c *Client) ClusterInfo() (*ClusterInfo, error) {
	resp, err := c.call(Request{Op: OpClusterInfo})
	if err != nil {
		return nil, err
	}
	if resp.Cluster == nil {
		return nil, fmt.Errorf("%w: info returned no cluster", ErrProtocol)
	}
	return resp.Cluster, nil
}
