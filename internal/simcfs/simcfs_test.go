package simcfs

import (
	"math"
	"testing"

	"ear/internal/sim"
	"ear/internal/topology"
)

func TestClusterTransferTiming(t *testing.T) {
	s := sim.New()
	top, err := topology.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(s, top, 100) // 100 MB/s
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	var intra, cross, local float64
	_ = s.Spawn("p", 0, func(p *sim.Proc) error {
		start := p.Now()
		if err := c.Transfer(p, 0, 1, 200); err != nil { // same rack
			return err
		}
		intra = p.Now() - start
		start = p.Now()
		if err := c.Transfer(p, 0, 2, 100); err != nil { // cross rack
			return err
		}
		cross = p.Now() - start
		start = p.Now()
		if err := c.Transfer(p, 3, 3, 500); err != nil { // local
			return err
		}
		local = p.Now() - start
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if intra != 2.0 {
		t.Errorf("intra-rack transfer took %g s, want 2", intra)
	}
	if cross != 1.0 {
		t.Errorf("cross-rack transfer took %g s, want 1", cross)
	}
	if local != 0 {
		t.Errorf("local transfer took %g s, want 0", local)
	}
	if c.IntraRackMB() != 200 || c.CrossRackMB() != 100 {
		t.Errorf("traffic accounting: intra %g, cross %g", c.IntraRackMB(), c.CrossRackMB())
	}
}

func TestClusterSharedRackUplinkContention(t *testing.T) {
	// Two nodes in rack 0 transfer cross-rack concurrently: they serialize
	// on the shared rack uplink even though their NICs are distinct.
	s := sim.New()
	top, err := topology.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(s, top, 100)
	if err != nil {
		t.Fatal(err)
	}
	var done []float64
	for i := 0; i < 2; i++ {
		src := topology.NodeID(i) // nodes 0 and 1 in rack 0
		dst := topology.NodeID(2 + i)
		_ = s.Spawn("x", 0, func(p *sim.Proc) error {
			if err := c.Transfer(p, src, dst, 100); err != nil {
				return err
			}
			done = append(done, p.Now())
			return nil
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Errorf("completions = %v, want [1 2] (uplink serialized)", done)
	}
	if u := c.RackUplinkUtilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("mean rack uplink utilization = %g, want 0.5 (one of two busy)", u)
	}
}

func TestClusterValidation(t *testing.T) {
	s := sim.New()
	top, _ := topology.New(2, 2)
	if _, err := NewCluster(s, top, 0); err == nil {
		t.Error("0 bandwidth: expected error")
	}
	c, _ := NewCluster(s, top, 100)
	var terr error
	_ = s.Spawn("p", 0, func(p *sim.Proc) error {
		terr = c.Transfer(p, 0, 1, -5)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if terr == nil {
		t.Error("negative size: expected error")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Racks != 20 || p.NodesPerRack != 20 || p.K != 10 || p.N != 14 ||
		p.LinkBandwidthMBps != 125 || p.BlockSizeMB != 64 || p.Replicas != 3 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if p.Policy != PolicyRR {
		t.Errorf("default policy = %v", p.Policy)
	}
	if PolicyRR.String() != "rr" || PolicyEAR.String() != "ear" || PolicyKind(9).String() != "policy(9)" {
		t.Error("PolicyKind.String wrong")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Params{Racks: 4, K: 10, N: 14}); err == nil {
		t.Error("stripe larger than rack count: expected error")
	}
	if _, err := Run(Params{WriteRate: 1, EncodeProcesses: -1}); err == nil {
		// Encoding disabled, no WriteDuration: open-ended.
		t.Error("open-ended traffic: expected error")
	}
	if _, err := Run(Params{StripesPerProcess: -2}); err == nil {
		t.Error("negative stripes per process: expected error")
	}
}

// smallEncodeParams returns a fast-to-simulate encode-only configuration.
func smallEncodeParams(policy PolicyKind, seed int64) Params {
	return Params{
		Policy:            policy,
		Racks:             8,
		NodesPerRack:      4,
		K:                 4,
		N:                 6,
		EncodeProcesses:   4,
		StripesPerProcess: 3,
		Seed:              seed,
	}
}

func TestRunEncodeOnly(t *testing.T) {
	res, err := Run(smallEncodeParams(PolicyRR, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.EncodedStripes != 12 {
		t.Fatalf("encoded %d stripes, want 12", res.EncodedStripes)
	}
	if res.EncodedMB != float64(12*4*64) {
		t.Errorf("EncodedMB = %g", res.EncodedMB)
	}
	if res.EncodeThroughputMBps <= 0 {
		t.Errorf("throughput = %g", res.EncodeThroughputMBps)
	}
	if res.EncodeEnd <= res.EncodeStart {
		t.Errorf("encode window [%g, %g]", res.EncodeStart, res.EncodeEnd)
	}
	if res.StripeCompletions.Len() != 12 {
		t.Errorf("completion series has %d points", res.StripeCompletions.Len())
	}
	if res.CrossRackDownloads == 0 {
		t.Error("RR should incur cross-rack downloads")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	a, err := Run(smallEncodeParams(PolicyEAR, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallEncodeParams(PolicyEAR, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.EncodeEnd != b.EncodeEnd || a.CrossRackMB != b.CrossRackMB {
		t.Errorf("same seed diverged: end %g vs %g, cross %g vs %g",
			a.EncodeEnd, b.EncodeEnd, a.CrossRackMB, b.CrossRackMB)
	}
	c, err := Run(smallEncodeParams(PolicyEAR, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.EncodeEnd == c.EncodeEnd && a.CrossRackMB == c.CrossRackMB {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestEARZeroCrossRackDownloadsAndNoRelocation(t *testing.T) {
	res, err := Run(smallEncodeParams(PolicyEAR, 2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CrossRackDownloads != 0 {
		t.Errorf("EAR cross-rack downloads = %d, want 0", res.CrossRackDownloads)
	}
	if res.Relocations != 0 {
		t.Errorf("EAR relocations = %d, want 0", res.Relocations)
	}
}

func TestEAROutperformsRRInEncoding(t *testing.T) {
	// The headline result: EAR encodes faster and moves less cross-rack
	// data than RR under identical conditions.
	var rrThpt, earThpt, rrCross, earCross float64
	for seed := int64(0); seed < 3; seed++ {
		rr, err := Run(smallEncodeParams(PolicyRR, seed))
		if err != nil {
			t.Fatal(err)
		}
		e, err := Run(smallEncodeParams(PolicyEAR, seed))
		if err != nil {
			t.Fatal(err)
		}
		rrThpt += rr.EncodeThroughputMBps
		earThpt += e.EncodeThroughputMBps
		rrCross += rr.CrossRackMB
		earCross += e.CrossRackMB
	}
	if earThpt <= rrThpt {
		t.Errorf("EAR throughput %g <= RR %g", earThpt/3, rrThpt/3)
	}
	if earCross >= rrCross {
		t.Errorf("EAR cross-rack MB %g >= RR %g", earCross/3, rrCross/3)
	}
}

func TestRunWithWriteAndBackgroundTraffic(t *testing.T) {
	p := smallEncodeParams(PolicyEAR, 3)
	p.WriteRate = 2
	p.BackgroundRate = 2
	p.BackgroundMeanMB = 32
	res, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WritesDone == 0 {
		t.Fatal("no writes completed")
	}
	if res.MeanWriteResponse <= 0 {
		t.Errorf("MeanWriteResponse = %g", res.MeanWriteResponse)
	}
	if res.WriteThroughputMBps <= 0 {
		t.Errorf("WriteThroughputMBps = %g", res.WriteThroughputMBps)
	}
	if res.WriteResponses.Len() != res.WritesDone {
		t.Errorf("series %d != writes %d", res.WriteResponses.Len(), res.WritesDone)
	}
}

func TestRunWriteOnlyWindow(t *testing.T) {
	p := Params{
		Policy:          PolicyRR,
		Racks:           6,
		NodesPerRack:    3,
		K:               3,
		N:               5,
		WriteRate:       3,
		WriteDuration:   30,
		EncodeProcesses: -1,
	}
	res, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.EncodedStripes != 0 {
		t.Error("no encoding requested")
	}
	if res.WritesDone < 50 {
		t.Errorf("writes done = %d, want ~90", res.WritesDone)
	}
	if res.MeanWriteResponseDuringEncode != 0 {
		t.Error("during-encode mean should be 0 with no encoding")
	}
}

func TestEncodeStartTimeDelaysEncoding(t *testing.T) {
	p := smallEncodeParams(PolicyEAR, 4)
	p.EncodeStartTime = 50
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.EncodeStart != 50 {
		t.Errorf("EncodeStart = %g, want 50", res.EncodeStart)
	}
	if res.EncodeEnd <= 50 {
		t.Errorf("EncodeEnd = %g, want > 50", res.EncodeEnd)
	}
	// Completion series is relative to encode start.
	if res.StripeCompletions.Points[0].T < 0 {
		t.Error("completion timestamps should be relative to encode start")
	}
}

func TestEncoderSpillAblation(t *testing.T) {
	// Forcing EAR's encode tasks off the core rack (spill = 1) must
	// reintroduce cross-rack downloads.
	p := smallEncodeParams(PolicyEAR, 5)
	p.EncoderSpillProb = 1.0
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossRackDownloads == 0 {
		t.Error("fully spilled EAR should incur cross-rack downloads")
	}
	strict, err := Run(smallEncodeParams(PolicyEAR, 5))
	if err != nil {
		t.Fatal(err)
	}
	if strict.EncodeThroughputMBps <= res.EncodeThroughputMBps {
		t.Errorf("strict core-rack scheduling (%.1f MB/s) should beat spilled (%.1f MB/s)",
			strict.EncodeThroughputMBps, res.EncodeThroughputMBps)
	}
}

func TestRRRelocationsObserved(t *testing.T) {
	// With few racks, RR stripes frequently violate rack-level fault
	// tolerance (Figure 3's regime observed end to end).
	p := smallEncodeParams(PolicyRR, 6)
	p.Racks = 7
	p.K = 6
	p.N = 7
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relocations == 0 {
		t.Error("RR with R=7, k=6 should frequently require relocation")
	}
}

func TestClusterDiskShaping(t *testing.T) {
	s := sim.New()
	top, err := topology.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(s, top, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableDisk(50); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableDisk(0); err == nil {
		t.Error("EnableDisk(0): expected error")
	}
	var local float64
	_ = s.Spawn("p", 0, func(p *sim.Proc) error {
		start := p.Now()
		if err := c.Transfer(p, 0, 0, 100); err != nil { // local, disk-shaped
			return err
		}
		local = p.Now() - start
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if local != 2.0 {
		t.Errorf("disk-shaped local transfer took %g s, want 2 (100 MB at 50 MB/s)", local)
	}
}

func TestRunWithDiskModel(t *testing.T) {
	p := smallEncodeParams(PolicyEAR, 12)
	p.NodesPerRack = 1
	p.Racks = 8
	p.Replicas = 2
	noDisk, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.DiskBandwidthMBps = 100
	withDisk, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Charging local reads must slow EAR's encoding (its downloads are
	// all local with one node per rack).
	if withDisk.EncodeEnd <= noDisk.EncodeEnd {
		t.Errorf("disk model did not slow encoding: %g <= %g", withDisk.EncodeEnd, noDisk.EncodeEnd)
	}
}
