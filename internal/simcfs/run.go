package simcfs

import (
	"errors"
	"fmt"
	"math/rand"

	"ear/internal/placement"
	"ear/internal/sim"
	"ear/internal/stats"
	"ear/internal/topology"
)

// PolicyKind selects the replica placement policy under test.
type PolicyKind int

const (
	// PolicyRR is random replication (the baseline).
	PolicyRR PolicyKind = iota + 1
	// PolicyEAR is encoding-aware replication.
	PolicyEAR
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyRR:
		return "rr"
	case PolicyEAR:
		return "ear"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// ErrInvalidParams indicates unusable simulation parameters.
var ErrInvalidParams = errors.New("simcfs: invalid parameters")

// Params configures one simulation run (one policy, one seed). Defaults
// reproduce the paper's Experiment B.2 base setting: R = 20 racks x 20
// nodes, 1 Gb/s links, 64 MB blocks, 3-way replication, (14, 10) erasure
// coding, 20 encoding processes x 5 stripes, write and background traffic
// at 1 request/s each.
type Params struct {
	Policy PolicyKind

	Racks        int
	NodesPerRack int
	// LinkBandwidthMBps applies to every node NIC and rack core link.
	// 1 Gb/s = 125 MB/s.
	LinkBandwidthMBps float64
	// DiskBandwidthMBps, when positive, charges local (same-node) reads at
	// this rate (SATA disks on the paper's testbed run ~130 MB/s). 0
	// disables disk modeling, matching the paper's network-only simulator.
	DiskBandwidthMBps float64
	BlockSizeMB       float64

	Replicas       int
	K, N, C        int
	TargetRacks    int
	SpreadReplicas bool

	// EncodeProcesses map-task-like workers encode StripesPerProcess
	// stripes each. 0 means the default (20); -1 disables encoding
	// entirely (write/background-only runs, Table I's "without encoding").
	EncodeProcesses   int
	StripesPerProcess int
	// EncodeStartTime delays the encoding operation (Experiment B.1 starts
	// it after 300 s of writes).
	EncodeStartTime float64
	// EncoderSpillProb is the probability an EAR encoding task is scheduled
	// outside the core rack (ablation of the paper's strict core-rack
	// scheduling flag, Section IV-B). 0 under the full design.
	EncoderSpillProb float64

	// WriteRate is the Poisson arrival rate of single-block writes
	// (requests/s). 0 disables the write stream.
	WriteRate float64
	// WriteDuration generates writes for a fixed window; 0 means "until
	// encoding completes".
	WriteDuration float64

	// BackgroundRate is the Poisson arrival rate of background transfers.
	BackgroundRate float64
	// BackgroundMeanMB is the mean of the exponential background transfer
	// size.
	BackgroundMeanMB float64
	// CrossRackBackgroundFrac is the fraction of background transfers that
	// cross racks (the paper uses a 1:1 ratio, i.e. 0.5).
	CrossRackBackgroundFrac float64

	Seed int64
}

// withDefaults fills zero fields with the Experiment B.2 base setting.
func (p Params) withDefaults() Params {
	if p.Policy == 0 {
		p.Policy = PolicyRR
	}
	if p.Racks == 0 {
		p.Racks = 20
	}
	if p.NodesPerRack == 0 {
		p.NodesPerRack = 20
	}
	if p.LinkBandwidthMBps == 0 {
		p.LinkBandwidthMBps = 125
	}
	if p.BlockSizeMB == 0 {
		p.BlockSizeMB = 64
	}
	if p.Replicas == 0 {
		p.Replicas = 3
	}
	if p.K == 0 {
		p.K = 10
	}
	if p.N == 0 {
		p.N = p.K + 4
	}
	if p.C == 0 {
		p.C = 1
	}
	if p.EncodeProcesses == 0 {
		p.EncodeProcesses = 20
	}
	if p.EncodeProcesses < 0 {
		p.EncodeProcesses = 0
	}
	if p.StripesPerProcess == 0 {
		p.StripesPerProcess = 5
	}
	if p.BackgroundMeanMB == 0 {
		p.BackgroundMeanMB = 64
	}
	if p.CrossRackBackgroundFrac == 0 {
		p.CrossRackBackgroundFrac = 0.5
	}
	return p
}

// placementConfig derives the placement configuration.
func (p Params) placementConfig(top *topology.Topology) placement.Config {
	return placement.Config{
		Topology:       top,
		Replicas:       p.Replicas,
		K:              p.K,
		N:              p.N,
		C:              p.C,
		TargetRacks:    p.TargetRacks,
		SpreadReplicas: p.SpreadReplicas,
	}
}

// Result aggregates the measurements of one run.
type Result struct {
	Policy string
	Params Params

	// Encoding metrics.
	EncodeStart          float64
	EncodeEnd            float64
	EncodedStripes       int
	EncodedMB            float64
	EncodeThroughputMBps float64
	// StripeCompletions records (time since encode start, cumulative
	// stripes encoded), the paper's Figure 12 series.
	StripeCompletions stats.Series
	// CrossRackDownloads counts data blocks fetched across racks during
	// encoding (zero under EAR by design).
	CrossRackDownloads int
	// Relocations counts stripes whose post-encoding layout violates
	// rack-level fault tolerance (RR only; the traffic is not simulated,
	// matching the paper's over-estimate of RR).
	Relocations int

	// Write metrics.
	WriteResponses stats.Series // (completion time, response seconds)
	WritesDone     int
	// MeanWriteResponse covers all writes; MeanWriteResponseDuringEncode
	// only those completing while encoding was active.
	MeanWriteResponse             float64
	MeanWriteResponseDuringEncode float64
	// WriteThroughputMBps is the effective per-request service throughput
	// during encoding, BlockSize / MeanWriteResponseDuringEncode (falls
	// back to the overall mean when encoding is disabled).
	WriteThroughputMBps float64

	// Traffic totals.
	CrossRackMB float64
	IntraRackMB float64
}

// Run executes one simulation and returns its measurements.
func Run(params Params) (*Result, error) {
	params = params.withDefaults()
	top, err := topology.New(params.Racks, params.NodesPerRack)
	if err != nil {
		return nil, err
	}
	cfg := params.placementConfig(top)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if params.LinkBandwidthMBps <= 0 || params.BlockSizeMB <= 0 {
		return nil, fmt.Errorf("%w: bandwidth %g, block %g", ErrInvalidParams,
			params.LinkBandwidthMBps, params.BlockSizeMB)
	}
	if params.EncodeProcesses < 0 || params.StripesPerProcess <= 0 {
		return nil, fmt.Errorf("%w: %d encode processes x %d stripes", ErrInvalidParams,
			params.EncodeProcesses, params.StripesPerProcess)
	}
	if (params.WriteRate > 0 || params.BackgroundRate > 0) &&
		params.EncodeProcesses == 0 && params.WriteDuration == 0 {
		return nil, fmt.Errorf("%w: open-ended traffic needs WriteDuration or encoding", ErrInvalidParams)
	}

	rng := rand.New(rand.NewSource(params.Seed))
	s := sim.New()
	cluster, err := NewCluster(s, top, params.LinkBandwidthMBps)
	if err != nil {
		return nil, err
	}
	if params.DiskBandwidthMBps > 0 {
		if err := cluster.EnableDisk(params.DiskBandwidthMBps); err != nil {
			return nil, err
		}
	}

	run := &runState{
		params:  params,
		cfg:     cfg,
		top:     top,
		sim:     s,
		cluster: cluster,
		rng:     rng,
		result:  &Result{Policy: params.Policy.String(), Params: params},
	}
	if err := run.prepareStripes(); err != nil {
		return nil, err
	}
	if err := run.spawnTraffic(); err != nil {
		return nil, err
	}
	if err := s.Run(0); err != nil {
		return nil, err
	}
	run.finish()
	return run.result, nil
}

// runState carries the mutable state of one simulation run.
type runState struct {
	params  Params
	cfg     placement.Config
	top     *topology.Topology
	sim     *sim.Sim
	cluster *Cluster
	rng     *rand.Rand
	result  *Result

	stripes       []*placement.StripeInfo
	encodersLeft  int
	writesStopped bool
	nextBlock     topology.BlockID
}

// newPolicy builds the policy under test.
func (r *runState) newPolicy() (placement.Policy, error) {
	switch r.params.Policy {
	case PolicyRR:
		return placement.NewRandom(r.cfg, r.rng)
	case PolicyEAR:
		return placement.NewEAR(r.cfg, r.rng)
	default:
		return nil, fmt.Errorf("%w: policy %v", ErrInvalidParams, r.params.Policy)
	}
}

// prepareStripes pre-places the blocks that will be encoded (their write
// traffic happened before the simulated window) and groups them into
// stripes: EAR stripes come from the policy's pre-encoding store, RR blocks
// are grouped k-at-a-time by the RaidNode with no placement knowledge.
func (r *runState) prepareStripes() error {
	pol, err := r.newPolicy()
	if err != nil {
		return err
	}
	total := r.params.EncodeProcesses * r.params.StripesPerProcess
	need := total * r.params.K

	switch r.params.Policy {
	case PolicyEAR:
		for len(r.stripes) < total {
			if _, err := pol.Place(r.nextBlock); err != nil {
				return err
			}
			r.nextBlock++
			r.stripes = append(r.stripes, pol.TakeSealed()...)
		}
		r.stripes = r.stripes[:total]
	default:
		blocks := make([]topology.BlockID, 0, need)
		placements := make(map[topology.BlockID]topology.Placement, need)
		for i := 0; i < need; i++ {
			pl, err := pol.Place(r.nextBlock)
			if err != nil {
				return err
			}
			blocks = append(blocks, r.nextBlock)
			placements[r.nextBlock] = pl
			r.nextBlock++
		}
		stripes, err := placement.GroupIntoStripes(r.params.K, blocks, placements, 0)
		if err != nil {
			return err
		}
		r.stripes = stripes
	}
	return nil
}

// spawnTraffic starts the encode workers and the write and background
// generators.
func (r *runState) spawnTraffic() error {
	p := r.params
	r.encodersLeft = p.EncodeProcesses
	if p.EncodeProcesses > 0 {
		r.result.EncodeStart = p.EncodeStartTime
		for w := 0; w < p.EncodeProcesses; w++ {
			w := w
			mine := r.stripes[w*p.StripesPerProcess : (w+1)*p.StripesPerProcess]
			name := fmt.Sprintf("encoder-%d", w)
			if err := r.sim.Spawn(name, p.EncodeStartTime, func(proc *sim.Proc) error {
				return r.encodeWorker(proc, mine)
			}); err != nil {
				return err
			}
		}
	} else {
		r.encodersLeft = 0
	}
	if p.WriteRate > 0 {
		if err := r.sim.Spawn("write-gen", 0, r.writeGenerator); err != nil {
			return err
		}
	}
	if p.BackgroundRate > 0 {
		if err := r.sim.Spawn("background-gen", 0, r.backgroundGenerator); err != nil {
			return err
		}
	}
	return nil
}

// chooseEncoder picks the node that runs the encoding map task for a stripe.
func (r *runState) chooseEncoder(info *placement.StripeInfo) (topology.NodeID, error) {
	if r.params.Policy == PolicyEAR && info.CoreRack >= 0 {
		if r.params.EncoderSpillProb > 0 && r.rng.Float64() < r.params.EncoderSpillProb {
			return placement.RandomEncoderNode(r.top, r.rng), nil
		}
		nodes, err := r.top.NodesInRack(info.CoreRack)
		if err != nil {
			return 0, err
		}
		return nodes[r.rng.Intn(len(nodes))], nil
	}
	return placement.RandomEncoderNode(r.top, r.rng), nil
}

// chooseSource picks the replica a block is read from: the encoder itself
// if it holds one, else a same-rack replica, else a uniformly random
// replica (HDFS locality preference).
func (r *runState) chooseSource(pl topology.Placement, encoder topology.NodeID) (topology.NodeID, bool, error) {
	encRack, err := r.top.RackOf(encoder)
	if err != nil {
		return 0, false, err
	}
	sameRack := make([]topology.NodeID, 0, len(pl.Nodes))
	for _, n := range pl.Nodes {
		if n == encoder {
			return n, false, nil
		}
		rk, err := r.top.RackOf(n)
		if err != nil {
			return 0, false, err
		}
		if rk == encRack {
			sameRack = append(sameRack, n)
		}
	}
	if len(sameRack) > 0 {
		return sameRack[r.rng.Intn(len(sameRack))], false, nil
	}
	return pl.Nodes[r.rng.Intn(len(pl.Nodes))], true, nil
}

// encodeWorker performs the three-step encoding operation (Section II-A)
// for each assigned stripe: download one replica of each data block, upload
// the n-k parity blocks, delete redundant replicas (metadata only).
func (r *runState) encodeWorker(proc *sim.Proc, stripes []*placement.StripeInfo) error {
	p := r.params
	for _, info := range stripes {
		encoder, err := r.chooseEncoder(info)
		if err != nil {
			return err
		}
		for _, pl := range info.Placements {
			src, cross, err := r.chooseSource(pl, encoder)
			if err != nil {
				return err
			}
			if cross {
				r.result.CrossRackDownloads++
			}
			if err := r.cluster.Transfer(proc, src, encoder, p.BlockSizeMB); err != nil {
				return err
			}
		}
		plan, err := placement.PlanPostEncoding(r.cfg, info, r.rng)
		if err != nil {
			return err
		}
		if plan.Violation {
			r.result.Relocations++
		}
		for _, dst := range plan.Parity {
			if err := r.cluster.Transfer(proc, encoder, dst, p.BlockSizeMB); err != nil {
				return err
			}
		}
		r.result.EncodedStripes++
		r.result.EncodedMB += float64(p.K) * p.BlockSizeMB
		r.result.StripeCompletions.Add(proc.Now()-p.EncodeStartTime, float64(r.result.EncodedStripes))
	}
	r.encodersLeft--
	if r.encodersLeft == 0 {
		r.result.EncodeEnd = proc.Now()
		if p.WriteDuration == 0 {
			r.writesStopped = true
		}
	}
	return nil
}

// writeGenerator issues single-block writes with exponential inter-arrival
// times. Each write replicates the block along the HDFS pipeline:
// writer -> first replica -> second -> ... Writes stop after WriteDuration
// (if set) or when encoding finishes.
func (r *runState) writeGenerator(proc *sim.Proc) error {
	p := r.params
	pol, err := r.newPolicy()
	if err != nil {
		return err
	}
	seq := 0
	for {
		if err := proc.Hold(stats.Exponential(r.rng, 1/p.WriteRate)); err != nil {
			return err
		}
		if r.writesStopped {
			return nil
		}
		if p.WriteDuration > 0 && proc.Now() > p.WriteDuration {
			return nil
		}
		block := r.nextBlock
		r.nextBlock++
		pl, err := pol.Place(block)
		if err != nil {
			return err
		}
		pol.TakeSealed() // write-stream stripes are not encoded in this run
		writer := topology.NodeID(r.rng.Intn(r.top.Nodes()))
		arrival := proc.Now()
		name := fmt.Sprintf("write-%d", seq)
		seq++
		if err := r.sim.Spawn(name, 0, func(wp *sim.Proc) error {
			prev := writer
			for _, dst := range pl.Nodes {
				if err := r.cluster.Transfer(wp, prev, dst, p.BlockSizeMB); err != nil {
					return err
				}
				prev = dst
			}
			resp := wp.Now() - arrival
			r.result.WriteResponses.Add(wp.Now(), resp)
			r.result.WritesDone++
			return nil
		}); err != nil {
			return err
		}
	}
}

// backgroundGenerator issues background transfers with exponential sizes;
// a CrossRackBackgroundFrac share of them cross racks.
func (r *runState) backgroundGenerator(proc *sim.Proc) error {
	p := r.params
	seq := 0
	for {
		if err := proc.Hold(stats.Exponential(r.rng, 1/p.BackgroundRate)); err != nil {
			return err
		}
		if r.writesStopped {
			return nil
		}
		if p.WriteDuration > 0 && proc.Now() > p.WriteDuration {
			return nil
		}
		src := topology.NodeID(r.rng.Intn(r.top.Nodes()))
		dst, err := r.pickBackgroundDst(src)
		if err != nil {
			return err
		}
		size := stats.Exponential(r.rng, p.BackgroundMeanMB)
		name := fmt.Sprintf("bg-%d", seq)
		seq++
		if err := r.sim.Spawn(name, 0, func(bp *sim.Proc) error {
			return r.cluster.Transfer(bp, src, dst, size)
		}); err != nil {
			return err
		}
	}
}

// pickBackgroundDst selects a destination in or out of src's rack per the
// configured cross-rack fraction.
func (r *runState) pickBackgroundDst(src topology.NodeID) (topology.NodeID, error) {
	srcRack, err := r.top.RackOf(src)
	if err != nil {
		return 0, err
	}
	if r.rng.Float64() < r.params.CrossRackBackgroundFrac || r.top.NodesPerRack() == 1 {
		for {
			dst := topology.NodeID(r.rng.Intn(r.top.Nodes()))
			rk, err := r.top.RackOf(dst)
			if err != nil {
				return 0, err
			}
			if rk != srcRack {
				return dst, nil
			}
		}
	}
	nodes, err := r.top.NodesInRack(srcRack)
	if err != nil {
		return 0, err
	}
	for {
		dst := nodes[r.rng.Intn(len(nodes))]
		if dst != src || len(nodes) == 1 {
			return dst, nil
		}
	}
}

// finish derives the aggregate metrics.
func (r *runState) finish() {
	res := r.result
	p := r.params
	if res.EncodedStripes > 0 {
		dur := res.EncodeEnd - res.EncodeStart
		if dur > 0 {
			res.EncodeThroughputMBps = res.EncodedMB / dur
		}
	}
	if res.WriteResponses.Len() > 0 {
		if m, err := stats.Mean(res.WriteResponses.Values()); err == nil {
			res.MeanWriteResponse = m
		}
		if p.EncodeProcesses > 0 {
			if m, err := res.WriteResponses.WindowMean(res.EncodeStart, res.EncodeEnd); err == nil {
				res.MeanWriteResponseDuringEncode = m
			}
		}
		ref := res.MeanWriteResponseDuringEncode
		if ref == 0 {
			ref = res.MeanWriteResponse
		}
		if ref > 0 {
			res.WriteThroughputMBps = p.BlockSizeMB / ref
		}
	}
	res.CrossRackMB = r.cluster.CrossRackMB()
	res.IntraRackMB = r.cluster.IntraRackMB()
}
