// Package simcfs is the discrete-event CFS simulator of the paper's Section
// V-B (Figure 11), built on the sim kernel. The PlacementManager role is
// played by the placement package; this package provides the Topology module
// (per-node NICs and shared per-rack core links as FIFO facilities) and the
// TrafficManager (write, encoding, and background traffic streams), plus the
// experiment runner that measures encoding and write throughput under RR and
// EAR.
package simcfs

import (
	"fmt"
	"sort"

	"ear/internal/sim"
	"ear/internal/topology"
)

// Cluster models the simulated network: every node has full-duplex NIC
// facilities (up and down), and every rack shares full-duplex core-facing
// links (up and down). An intra-rack transfer occupies the two NICs; a
// cross-rack transfer additionally occupies the source rack's uplink and the
// destination rack's downlink, which is where the paper's scarce
// cross-rack bandwidth contention arises.
type Cluster struct {
	sim *sim.Sim
	top *topology.Topology
	// bandwidthMBps applies to every link (Experiment B.2(c) varies all
	// top-of-rack and core links together).
	bandwidthMBps float64

	nodeUp   []*sim.Facility
	nodeDown []*sim.Facility
	rackUp   []*sim.Facility
	rackDown []*sim.Facility
	// disk, when non-nil, charges local (same-node) reads at diskMBps:
	// with one node per rack (the validation topology) the encoder's own
	// blocks are read from its disk, not for free.
	disk     []*sim.Facility
	diskMBps float64

	// order[f] gives the canonical acquisition index of each facility to
	// keep multi-link reservations deadlock-free.
	order map[*sim.Facility]int

	// traffic accounting (MB)
	crossRackMB float64
	intraRackMB float64
}

// NewCluster builds the link facilities for a topology.
func NewCluster(s *sim.Sim, top *topology.Topology, bandwidthMBps float64) (*Cluster, error) {
	if bandwidthMBps <= 0 {
		return nil, fmt.Errorf("simcfs: bandwidth %g MB/s", bandwidthMBps)
	}
	c := &Cluster{
		sim:           s,
		top:           top,
		bandwidthMBps: bandwidthMBps,
		nodeUp:        make([]*sim.Facility, top.Nodes()),
		nodeDown:      make([]*sim.Facility, top.Nodes()),
		rackUp:        make([]*sim.Facility, top.Racks()),
		rackDown:      make([]*sim.Facility, top.Racks()),
		order:         make(map[*sim.Facility]int),
	}
	idx := 0
	add := func(f *sim.Facility) {
		c.order[f] = idx
		idx++
	}
	for i := 0; i < top.Nodes(); i++ {
		up, err := s.NewFacility(fmt.Sprintf("node%d.up", i), 1)
		if err != nil {
			return nil, err
		}
		down, err := s.NewFacility(fmt.Sprintf("node%d.down", i), 1)
		if err != nil {
			return nil, err
		}
		c.nodeUp[i], c.nodeDown[i] = up, down
		add(up)
		add(down)
	}
	for r := 0; r < top.Racks(); r++ {
		up, err := s.NewFacility(fmt.Sprintf("rack%d.up", r), 1)
		if err != nil {
			return nil, err
		}
		down, err := s.NewFacility(fmt.Sprintf("rack%d.down", r), 1)
		if err != nil {
			return nil, err
		}
		c.rackUp[r], c.rackDown[r] = up, down
		add(up)
		add(down)
	}
	return c, nil
}

// Topology returns the cluster topology.
func (c *Cluster) Topology() *topology.Topology { return c.top }

// EnableDisk attaches a single-server disk facility to every node; local
// transfers are then held for mb/diskMBps seconds.
func (c *Cluster) EnableDisk(diskMBps float64) error {
	if diskMBps <= 0 {
		return fmt.Errorf("simcfs: disk bandwidth %g MB/s", diskMBps)
	}
	disks := make([]*sim.Facility, c.top.Nodes())
	for i := range disks {
		f, err := c.sim.NewFacility(fmt.Sprintf("node%d.disk", i), 1)
		if err != nil {
			return err
		}
		disks[i] = f
	}
	c.disk = disks
	c.diskMBps = diskMBps
	return nil
}

// CrossRackMB returns the cumulative cross-rack traffic in MB.
func (c *Cluster) CrossRackMB() float64 { return c.crossRackMB }

// IntraRackMB returns the cumulative intra-rack traffic in MB.
func (c *Cluster) IntraRackMB() float64 { return c.intraRackMB }

// RackUplinkUtilization returns the mean utilization across rack uplinks,
// the contended resource of the paper's model.
func (c *Cluster) RackUplinkUtilization() float64 {
	var sum float64
	for _, f := range c.rackUp {
		sum += f.Utilization()
	}
	return sum / float64(len(c.rackUp))
}

// pathFacilities returns the links a transfer occupies, sorted canonically.
func (c *Cluster) pathFacilities(src, dst topology.NodeID) ([]*sim.Facility, bool, error) {
	srcRack, err := c.top.RackOf(src)
	if err != nil {
		return nil, false, err
	}
	dstRack, err := c.top.RackOf(dst)
	if err != nil {
		return nil, false, err
	}
	fs := []*sim.Facility{c.nodeUp[src], c.nodeDown[dst]}
	cross := srcRack != dstRack
	if cross {
		fs = append(fs, c.rackUp[srcRack], c.rackDown[dstRack])
	}
	sort.Slice(fs, func(i, j int) bool { return c.order[fs[i]] < c.order[fs[j]] })
	return fs, cross, nil
}

// Transfer moves mb megabytes from src to dst, holding every link on the
// path for mb/bandwidth seconds (the CSIM resource-holding model the
// paper's simulator uses). A transfer to the same node is free.
func (c *Cluster) Transfer(p *sim.Proc, src, dst topology.NodeID, mb float64) error {
	if mb < 0 {
		return fmt.Errorf("simcfs: negative transfer size %g", mb)
	}
	if src == dst || mb == 0 {
		// Local access: no network resources; a shaped disk pass when
		// disk modeling is enabled.
		if _, err := c.top.RackOf(src); err != nil {
			return err
		}
		if _, err := c.top.RackOf(dst); err != nil {
			return err
		}
		if c.disk != nil && mb > 0 {
			return c.disk[src].Use(p, mb/c.diskMBps)
		}
		return nil
	}
	fs, cross, err := c.pathFacilities(src, dst)
	if err != nil {
		return err
	}
	sim.ReserveMany(p, fs)
	err = p.Hold(mb / c.bandwidthMBps)
	sim.ReleaseMany(fs)
	if err != nil {
		return err
	}
	if cross {
		c.crossRackMB += mb
	} else {
		c.intraRackMB += mb
	}
	return nil
}
