// Package metalog is the durable substrate of the metadata plane: a
// segmented, CRC-checksummed write-ahead log of opaque records plus atomic
// point-in-time snapshots, with crash recovery that loads the newest valid
// snapshot and replays the log tail, truncating a torn final record.
//
// The log knows nothing about what a record means — the NameNode encodes its
// typed operation records into []byte payloads and replays them through its
// apply layer. What the log does own is durability and ordering:
//
//   - Append assigns each record a dense, strictly increasing LSN and
//     buffers it into the active segment. Appends from concurrent callers
//     serialize on one mutex; the byte order of the file is the LSN order.
//   - Durability is governed by a SyncPolicy. SyncAlways makes WaitDurable
//     block until an fsync covers the record — concurrent waiters are
//     batched behind a single fsync (group commit), so the cost of a flush
//     is amortized across every record appended while the previous flush
//     ran. SyncInterval fsyncs from a background ticker and WaitDurable
//     returns immediately (bounded data loss, near-in-memory latency).
//     SyncNone never fsyncs explicitly (benchmarking baseline).
//   - Snapshot writes the caller's serialized state to a temp file, fsyncs,
//     renames it into place, fsyncs the directory, and only then deletes the
//     log segments (and older snapshots) the new snapshot covers — so at
//     every instant the directory holds a recoverable history.
//   - Recovery scans snapshots newest-first until one passes its checksum,
//     then replays every record with a larger LSN from the segments in
//     order. A record whose header or checksum is invalid ends replay: the
//     segment is truncated at the last valid boundary and later segments are
//     dropped. Corruption never panics and never yields a half-applied
//     record.
package metalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncInterval fsyncs from a background ticker every Options.SyncEvery.
	// Appends are buffered writes; a crash loses at most one interval.
	SyncInterval SyncPolicy = iota
	// SyncAlways makes WaitDurable block until the record is fsynced,
	// batching concurrent waiters behind one fsync (group commit).
	SyncAlways
	// SyncNone never fsyncs explicitly; the OS flushes on close. The
	// benchmarking baseline and the weakest durability.
	SyncNone
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "interval"
	}
}

// ParseSyncPolicy maps a flag value to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("metalog: unknown sync policy %q (want always, interval or none)", s)
}

// Options configures a Log.
type Options struct {
	// Dir is the metadata directory; created if absent. Required.
	Dir string
	// Sync is the durability policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (default 25ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 16 MiB).
	SegmentBytes int64
	// FsyncObserver, when non-nil, receives the duration of every fsync —
	// the hook behind the metalog_fsync_seconds histogram.
	FsyncObserver func(time.Duration)
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Stats is a point-in-time counter snapshot of the log.
type Stats struct {
	// Appends is the number of records appended this process lifetime.
	Appends uint64 `json:"appends"`
	// AppendedBytes counts payload bytes appended (excluding framing).
	AppendedBytes uint64 `json:"appended_bytes"`
	// Fsyncs counts explicit fsync calls on segment files.
	Fsyncs uint64 `json:"fsyncs"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// LastLSN is the newest assigned LSN (0 when the log is empty).
	LastLSN uint64 `json:"last_lsn"`
	// DurableLSN is the newest LSN known to be fsynced.
	DurableLSN uint64 `json:"durable_lsn"`
	// SnapshotLSN is the LSN covered by the newest snapshot (0 when none).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
}

// Errors returned by the package.
var (
	// ErrClosed indicates use of a closed log.
	ErrClosed = errors.New("metalog: log closed")
	// ErrTooLarge indicates a record payload above the sanity bound.
	ErrTooLarge = errors.New("metalog: record too large")
)

// maxRecordBytes is the sanity bound on one record's payload; anything
// larger in a segment header is treated as corruption.
const maxRecordBytes = 64 << 20

// recordHeaderLen is the framing prefix: u32 payload length, u64 LSN, u32
// CRC-32C over (LSN bytes || payload).
const recordHeaderLen = 16

// segment file framing.
const (
	segMagic      = "EARWAL01"
	segHeaderLen  = 16 // magic + u64 first-LSN
	snapMagic     = "EARSNAP1"
	snapHeaderLen = 24 // magic + u64 LSN + u32 payload length + u32 CRC
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC checksums one record: the LSN bytes followed by the payload, so
// a torn or bit-flipped header is caught as well as a torn payload.
func recordCRC(lsn uint64, payload []byte) uint32 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], lsn)
	c := crc32.Update(0, crcTable, b[:])
	return crc32.Update(c, crcTable, payload)
}

// Log is a write-ahead log over one directory. All methods are safe for
// concurrent use.
type Log struct {
	opts Options

	// mu guards the writer state: the active segment file, its buffer, and
	// the LSN counter. fsync runs outside mu so appends proceed during it.
	mu       sync.Mutex
	f        *os.File
	buf      []byte // pending bytes not yet written to f
	segStart uint64 // first LSN of the active segment
	segSize  int64  // bytes written + buffered in the active segment
	lastLSN  uint64
	err      error // sticky failure; every later operation returns it
	closed   bool

	// syncMu serializes fsyncs; waiters queueing on it form the group
	// commit batch.
	syncMu  sync.Mutex
	durable atomic.Uint64

	snapLSN atomic.Uint64

	appends  atomic.Uint64
	appBytes atomic.Uint64
	fsyncs   atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the log directory and scans its segments
// and snapshots. The returned log is positioned for recovery: call Recover
// exactly once before Append.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("metalog: empty dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	return l, nil
}

// segmentName formats the file name of the segment starting at lsn.
func segmentName(lsn uint64) string { return fmt.Sprintf("wal-%016x.seg", lsn) }

// snapshotName formats the file name of the snapshot covering lsn.
func snapshotName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// parseSeq extracts the hex sequence from a "prefix-%016x.suffix" name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	h := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	v, err := strconv.ParseUint(h, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSeqs returns the sorted sequence numbers of directory entries matching
// prefix/suffix.
func (l *Log) listSeqs(prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if v, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Recover loads the newest valid snapshot (if any) through restore, then
// replays every record with LSN greater than the snapshot's through replay,
// in LSN order. A torn or corrupted record ends replay: the containing
// segment is truncated at the last valid boundary and any later segments are
// deleted, so the next Append continues from the recovered position. Recover
// must be called exactly once, before the first Append; a log that recovered
// nothing starts empty at LSN 1.
func (l *Log) Recover(restore func(snapshot []byte) error, replay func(lsn uint64, payload []byte) error) error {
	snapLSN, snap, err := l.loadNewestSnapshot()
	if err != nil {
		return err
	}
	if snap != nil && restore != nil {
		if err := restore(snap); err != nil {
			return fmt.Errorf("metalog: snapshot restore: %w", err)
		}
	}
	l.snapLSN.Store(snapLSN)
	last, err := l.replaySegments(snapLSN, replay)
	if err != nil {
		return err
	}
	if last < snapLSN {
		last = snapLSN
	}
	l.mu.Lock()
	l.lastLSN = last
	l.mu.Unlock()
	l.durable.Store(last)
	if l.opts.Sync == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.done)
	}
	return nil
}

// loadNewestSnapshot returns the newest snapshot that passes its checksum,
// deleting nothing. A snapshot that fails validation is skipped in favor of
// the next older one.
func (l *Log) loadNewestSnapshot() (uint64, []byte, error) {
	seqs, err := l.listSeqs("snap-", ".snap")
	if err != nil {
		return 0, nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		lsn := seqs[i]
		payload, ok := readSnapshotFile(filepath.Join(l.opts.Dir, snapshotName(lsn)), lsn)
		if ok {
			return lsn, payload, nil
		}
	}
	return 0, nil, nil
}

// readSnapshotFile validates and returns one snapshot's payload.
func readSnapshotFile(path string, wantLSN uint64) ([]byte, bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < snapHeaderLen {
		return nil, false
	}
	if string(raw[:8]) != snapMagic {
		return nil, false
	}
	lsn := binary.LittleEndian.Uint64(raw[8:16])
	n := binary.LittleEndian.Uint32(raw[16:20])
	crc := binary.LittleEndian.Uint32(raw[20:24])
	if lsn != wantLSN || int(n) != len(raw)-snapHeaderLen {
		return nil, false
	}
	payload := raw[snapHeaderLen:]
	if recordCRC(lsn, payload) != crc {
		return nil, false
	}
	return payload, true
}

// replaySegments walks the segment files in order, invoking replay for every
// valid record with LSN > snapLSN, and repairs the tail in place: the first
// invalid record truncates its segment and deletes every later segment.
// It returns the last replayed (or skipped) LSN.
func (l *Log) replaySegments(snapLSN uint64, replay func(uint64, []byte) error) (uint64, error) {
	seqs, err := l.listSeqs("wal-", ".seg")
	if err != nil {
		return 0, err
	}
	last := uint64(0)
	for i, first := range seqs {
		path := filepath.Join(l.opts.Dir, segmentName(first))
		segLast, validLen, intact, err := replaySegment(path, first, snapLSN, last, replay)
		if err != nil {
			return 0, err
		}
		if segLast > last {
			last = segLast
		}
		if !intact {
			// Torn or corrupted record: truncate this segment at the last
			// valid boundary and drop everything after it.
			if err := os.Truncate(path, validLen); err != nil {
				return 0, fmt.Errorf("metalog: truncating torn segment: %w", err)
			}
			for _, gone := range seqs[i+1:] {
				if err := os.Remove(filepath.Join(l.opts.Dir, segmentName(gone))); err != nil && !os.IsNotExist(err) {
					return 0, err
				}
			}
			break
		}
	}
	return last, nil
}

// replaySegment scans one segment file. It returns the last valid LSN seen,
// the byte length of the valid prefix, and whether the whole file was valid.
// Records with lsn <= snapLSN are skipped without invoking replay; an LSN
// that does not directly follow the previous record is treated as
// corruption.
func replaySegment(path string, firstLSN, snapLSN, prevLSN uint64, replay func(uint64, []byte) error) (last uint64, validLen int64, intact bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	if len(raw) < segHeaderLen || string(raw[:8]) != segMagic ||
		binary.LittleEndian.Uint64(raw[8:16]) != firstLSN {
		// Unreadable header: the whole segment is invalid. Keep the header
		// region so the file stays self-describing after truncation to zero
		// records.
		return 0, int64(min(len(raw), segHeaderLen)), false, nil
	}
	off := int64(segHeaderLen)
	last = prevLSN
	expect := firstLSN
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			return last, off, true, nil
		}
		if len(rest) < recordHeaderLen {
			return last, off, false, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		lsn := binary.LittleEndian.Uint64(rest[4:12])
		crc := binary.LittleEndian.Uint32(rest[12:16])
		if n > maxRecordBytes || int64(recordHeaderLen)+int64(n) > int64(len(rest)) {
			return last, off, false, nil
		}
		payload := rest[recordHeaderLen : recordHeaderLen+int(n)]
		if lsn != expect || recordCRC(lsn, payload) != crc {
			return last, off, false, nil
		}
		if lsn > snapLSN && replay != nil {
			if err := replay(lsn, payload); err != nil {
				return 0, 0, false, fmt.Errorf("metalog: replaying lsn %d: %w", lsn, err)
			}
		}
		last = lsn
		expect = lsn + 1
		off += int64(recordHeaderLen) + int64(n)
	}
}

// Append assigns the next LSN to the payload and buffers it into the active
// segment, rotating segments as they fill. It returns once the record is in
// the log's write path — call WaitDurable (or rely on the interval syncer)
// for persistence. The payload is copied; the caller may reuse it.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordBytes {
		return 0, ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.lastLSN + 1
	if l.f == nil {
		if err := l.openSegmentLocked(lsn); err != nil {
			l.err = err
			return 0, err
		}
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], lsn)
	binary.LittleEndian.PutUint32(hdr[12:16], recordCRC(lsn, payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.lastLSN = lsn
	l.segSize += int64(recordHeaderLen + len(payload))
	l.appends.Add(1)
	l.appBytes.Add(uint64(len(payload)))
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return 0, err
		}
	}
	return lsn, nil
}

// openSegmentLocked creates the segment whose first record will be firstLSN.
func (l *Log) openSegmentLocked(firstLSN uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(firstLSN)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = firstLSN
	l.segSize = segHeaderLen
	return nil
}

// reopenSegmentForAppend positions the writer at the end of an existing
// recovered segment (whose tail was already truncated to a valid boundary).
func (l *Log) reopenSegmentForAppend(firstLSN uint64) error {
	path := filepath.Join(l.opts.Dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = firstLSN
	l.segSize = st.Size()
	return nil
}

// EnsureAppendable opens the writer after recovery: the last recovered
// segment continues filling, or a fresh one starts. Called lazily by Append
// when nil; exposed so callers can fail fast on an unwritable directory.
func (l *Log) EnsureAppendable() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.f != nil {
		return nil
	}
	seqs, err := l.listSeqs("wal-", ".seg")
	if err != nil {
		return err
	}
	if len(seqs) > 0 {
		last := seqs[len(seqs)-1]
		if err := l.reopenSegmentForAppend(last); err == nil {
			return nil
		}
	}
	return l.openSegmentLocked(l.lastLSN + 1)
}

// rotateLocked seals the active segment (flush + fsync + close) and leaves
// the writer unopened; the next Append opens the successor. Caller holds mu.
func (l *Log) rotateLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.fsyncFile(l.f); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if l.lastLSN > l.durable.Load() {
		l.durable.Store(l.lastLSN)
	}
	l.f = nil
	l.segSize = 0
	return nil
}

// flushLocked writes the buffered bytes to the file. Caller holds mu.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if l.f == nil {
		return errors.New("metalog: flush with no active segment")
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// fsyncFile syncs one file, feeding the observer and counters.
func (l *Log) fsyncFile(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	l.fsyncs.Add(1)
	if obs := l.opts.FsyncObserver; obs != nil {
		obs(time.Since(t0))
	}
	return err
}

// Sync flushes buffered records and fsyncs the active segment, advancing the
// durable LSN. Concurrent callers serialize; each fsync covers every record
// appended before it started (group commit).
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	target := l.lastLSN
	if target <= l.durable.Load() {
		l.mu.Unlock()
		return nil
	}
	if err := l.flushLocked(); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	f := l.f
	l.mu.Unlock()
	if f != nil {
		if err := l.fsyncFile(f); err != nil {
			l.mu.Lock()
			l.err = err
			l.mu.Unlock()
			return err
		}
	}
	for {
		cur := l.durable.Load()
		if cur >= target || l.durable.CompareAndSwap(cur, target) {
			return nil
		}
	}
}

// WaitDurable returns once the record at lsn is fsynced. Under SyncAlways it
// drives the group commit: the caller either performs the fsync or rides on
// one a concurrent caller is performing. Under SyncInterval and SyncNone it
// returns immediately — durability is the ticker's (or the OS's) job.
func (l *Log) WaitDurable(lsn uint64) error {
	if l.opts.Sync != SyncAlways {
		return nil
	}
	for l.durable.Load() < lsn {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// syncLoop is the SyncInterval background fsyncer.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			_ = l.Sync() // sticky error surfaces on the next Append
		}
	}
}

// Snapshot atomically installs a point-in-time state covering every record
// up to and including lsn, then truncates the history it covers: segments
// whose records are all <= lsn and older snapshot files are deleted. The
// caller guarantees state reflects exactly the records [1, lsn].
func (l *Log) Snapshot(lsn uint64, state []byte) error {
	if len(state) > maxRecordBytes {
		return ErrTooLarge
	}
	// Seal the active segment so every record <= lsn is on disk before the
	// snapshot claims to cover it, and so segment deletion below never races
	// the writer's buffered bytes.
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if err := l.rotateLocked(); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	tmp, err := os.CreateTemp(l.opts.Dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	var hdr [snapHeaderLen]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(state)))
	binary.LittleEndian.PutUint32(hdr[20:24], recordCRC(lsn, state))
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(state)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(l.opts.Dir, snapshotName(lsn))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	if lsn > l.snapLSN.Load() {
		l.snapLSN.Store(lsn)
	}
	return l.truncateBefore(lsn)
}

// syncDir fsyncs the log directory so renames and deletions persist.
func (l *Log) syncDir() error {
	d, err := os.Open(l.opts.Dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// truncateBefore deletes snapshots older than lsn and segments whose records
// all precede or equal lsn (a segment is fully covered when its successor
// starts at or before lsn+1).
func (l *Log) truncateBefore(lsn uint64) error {
	snaps, err := l.listSeqs("snap-", ".snap")
	if err != nil {
		return err
	}
	for _, s := range snaps {
		if s < lsn {
			if err := os.Remove(filepath.Join(l.opts.Dir, snapshotName(s))); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	segs, err := l.listSeqs("wal-", ".seg")
	if err != nil {
		return err
	}
	l.mu.Lock()
	activeStart, active := l.segStart, l.f != nil
	l.mu.Unlock()
	for i, first := range segs {
		if active && first == activeStart {
			continue
		}
		next := uint64(0)
		if i+1 < len(segs) {
			next = segs[i+1]
		} else {
			next = l.LastLSN() + 1
		}
		if next <= lsn+1 {
			if err := os.Remove(filepath.Join(l.opts.Dir, segmentName(first))); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return l.syncDir()
}

// LastLSN returns the newest assigned LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// DurableLSN returns the newest LSN known to be fsynced.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// SnapshotLSN returns the LSN covered by the newest snapshot, 0 when none.
func (l *Log) SnapshotLSN() uint64 { return l.snapLSN.Load() }

// Policy returns the configured sync policy.
func (l *Log) Policy() SyncPolicy { return l.opts.Sync }

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	segs, _ := l.listSeqs("wal-", ".seg")
	return Stats{
		Appends:       l.appends.Load(),
		AppendedBytes: l.appBytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Segments:      len(segs),
		LastLSN:       l.LastLSN(),
		DurableLSN:    l.durable.Load(),
		SnapshotLSN:   l.snapLSN.Load(),
	}
}

// Close flushes, fsyncs, and closes the log. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	err := l.Sync()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	<-l.done
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}
