package metalog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openForTest opens a log in dir and runs an empty recovery so it is ready
// for appends.
func openForTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Recover(nil, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return l
}

// collect recovers the log in dir and returns the snapshot payload plus
// every replayed record in order.
func collect(t *testing.T, dir string, opts Options) (snap []byte, lsns []uint64, payloads [][]byte, l *Log) {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	err = l.Recover(
		func(s []byte) error { snap = append([]byte(nil), s...); return nil },
		func(lsn uint64, p []byte) error {
			lsns = append(lsns, lsn)
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		},
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return snap, lsns, payloads, l
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncAlways})
	want := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		lsn, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, lsns, payloads, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if snap != nil {
		t.Fatalf("unexpected snapshot: %q", snap)
	}
	if len(lsns) != 100 {
		t.Fatalf("replayed %d records, want 100", len(lsns))
	}
	for i := range lsns {
		if lsns[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d: lsn=%d payload=%q, want lsn=%d payload=%q",
				i, lsns[i], payloads[i], i+1, want[i])
		}
	}
	if got := l2.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d, want 100", got)
	}
}

func TestAppendContinuesAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncAlways})
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, _, l2 := collect(t, dir, Options{Sync: SyncAlways})
	lsn, err := l2.Append([]byte("two"))
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("lsn = %d, want 2", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	_, lsns, payloads, l3 := collect(t, dir, Options{})
	defer l3.Close()
	if len(lsns) != 2 || string(payloads[1]) != "two" {
		t.Fatalf("after reopen: lsns=%v payloads=%q", lsns, payloads)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record or two forces a rotation.
	l := openForTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v (err %v)", segs, err)
	}
	_, lsns, _, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(lsns) != 20 || lsns[19] != 20 {
		t.Fatalf("replay across segments: got %d records, last %v", len(lsns), lsns)
	}
}

func TestSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("state@10")
	if err := l.Snapshot(10, state); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Everything up to LSN 10 is covered; all sealed segments should be gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	for _, s := range segs {
		first, ok := parseSeq(filepath.Base(s), "wal-", ".seg")
		if !ok {
			t.Fatalf("stray segment name %q", s)
		}
		if first <= 10 {
			// Only acceptable if it is the still-active (empty) tail segment.
			if st, err := os.Stat(s); err == nil && st.Size() > segHeaderLen {
				t.Fatalf("segment %q with records survived truncation", s)
			}
		}
	}
	// Append more after the snapshot.
	for i := 10; i < 15; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snap, lsns, _, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if !bytes.Equal(snap, state) {
		t.Fatalf("snapshot = %q, want %q", snap, state)
	}
	if len(lsns) != 5 || lsns[0] != 11 || lsns[4] != 15 {
		t.Fatalf("tail replay lsns = %v, want [11..15]", lsns)
	}
	// Older snapshots are deleted by a newer one.
	if err := l2.Snapshot(15, []byte("state@15")); err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots after second checkpoint: %v, want exactly one", snaps)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(3, []byte("good@3")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-write a newer snapshot with a bad CRC.
	bad := make([]byte, snapHeaderLen+4)
	copy(bad[:8], snapMagic)
	binary.LittleEndian.PutUint64(bad[8:16], 5)
	binary.LittleEndian.PutUint32(bad[16:20], 4)
	binary.LittleEndian.PutUint32(bad[20:24], 0xdeadbeef)
	copy(bad[snapHeaderLen:], "evil")
	if err := os.WriteFile(filepath.Join(dir, snapshotName(5)), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, lsns, _, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if string(snap) != "good@3" {
		t.Fatalf("snapshot = %q, want fallback to good@3", snap)
	}
	if len(lsns) != 3 || lsns[0] != 4 {
		t.Fatalf("tail replay = %v, want [4 5 6]", lsns)
	}
}

// tornVariant describes one way to damage the final record.
type tornVariant struct {
	name   string
	mangle func(seg []byte) []byte
}

func TestTornTailTruncation(t *testing.T) {
	variants := []tornVariant{
		{"truncated-mid-payload", func(seg []byte) []byte { return seg[:len(seg)-3] }},
		{"truncated-mid-header", func(seg []byte) []byte { return seg[:len(seg)-3-8] }},
		{"payload-bit-flip", func(seg []byte) []byte {
			out := append([]byte(nil), seg...)
			out[len(out)-1] ^= 0x40
			return out
		}},
		{"header-length-blowup", func(seg []byte) []byte {
			out := append([]byte(nil), seg...)
			// Find the last record's header: records are 8-byte payloads here.
			off := len(out) - (recordHeaderLen + 8)
			binary.LittleEndian.PutUint32(out[off:off+4], 1<<30)
			return out
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openForTest(t, dir, Options{Sync: SyncAlways})
			for i := 0; i < 5; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
			if len(segs) != 1 {
				t.Fatalf("want one segment, got %v", segs)
			}
			raw, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segs[0], v.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Recovery must survive the damage, keep the intact prefix, and
			// truncate the tail.
			_, lsns, _, l2 := collect(t, dir, Options{Sync: SyncAlways})
			if len(lsns) != 4 || lsns[3] != 4 {
				t.Fatalf("replayed %v, want the 4-record intact prefix", lsns)
			}
			// The log keeps working: the next append takes LSN 5 and survives
			// another recovery.
			lsn, err := l2.Append([]byte("rec-after-tear"))
			if err != nil {
				t.Fatalf("Append after tear: %v", err)
			}
			if lsn != 5 {
				t.Fatalf("post-tear lsn = %d, want 5", lsn)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, lsns3, payloads3, l3 := collect(t, dir, Options{})
			defer l3.Close()
			if len(lsns3) != 5 || string(payloads3[4]) != "rec-after-tear" {
				t.Fatalf("after re-append: lsns=%v payloads=%q", lsns3, payloads3)
			}
		})
	}
}

func TestUnflushedTailLostUnderSyncNone(t *testing.T) {
	// With SyncNone nothing forces the buffer out until Close; a log that is
	// abandoned (no Close) may lose the buffered tail but must still recover
	// a valid prefix. We simulate the crash by never flushing: appends stay
	// in l.buf, so the file holds only the segment header.
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon without Close. The new process recovers an empty (or prefix)
	// log without error.
	_, lsns, _, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(lsns) != 0 {
		t.Fatalf("unflushed records should be lost, got %v", lsns)
	}
}

func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					errs <- err
					return
				}
				if l.DurableLSN() < lsn {
					errs <- fmt.Errorf("WaitDurable(%d) returned with durable=%d", lsn, l.DurableLSN())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != writers*perWriter {
		t.Fatalf("LastLSN = %d, want %d", got, writers*perWriter)
	}
	st := l.Stats()
	// Group commit: far fewer fsyncs than records is the whole point, but
	// with 8 writers racing we can only assert it stayed below the total.
	if st.Fsyncs == 0 || st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs = %d for %d appends; group commit broken", st.Fsyncs, st.Appends)
	}
}

func TestIntervalSyncAdvancesDurable(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	defer l.Close()
	lsn, err := l.Append([]byte("tick"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil { // returns immediately
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.DurableLSN() < lsn {
		if time.Now().After(deadline) {
			t.Fatalf("interval syncer never advanced durable past %d", l.DurableLSN())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFsyncObserver(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	calls := 0
	l := openForTest(t, dir, Options{
		Sync:          SyncAlways,
		FsyncObserver: func(time.Duration) { mu.Lock(); calls++; mu.Unlock() },
	})
	lsn, err := l.Append([]byte("observed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("fsync observer never called")
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("Append on closed log: err = %v, want ErrClosed", err)
	}
}

func TestRecordTooLarge(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{})
	defer l.Close()
	if _, err := l.Append(make([]byte, maxRecordBytes+1)); err != ErrTooLarge {
		t.Fatalf("oversized append: err = %v, want ErrTooLarge", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"", SyncInterval, true},
		{"none", SyncNone, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
