package metalog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecoverCorruptTail writes a valid log, applies an arbitrary mutation
// (overwrite at an offset, truncate, or append garbage) to the last segment,
// and checks the recovery contract: never panic, never return an error for
// data-level corruption, replay only records that were genuinely appended
// (corruption can shorten the log but never invent or reorder records), and
// leave the directory in a state a second recovery agrees with.
func FuzzRecoverCorruptTail(f *testing.F) {
	f.Add(uint16(0), []byte{0x00}, false)
	f.Add(uint16(40), []byte{0xff, 0xff, 0xff, 0xff}, false)
	f.Add(uint16(9999), []byte{0xde, 0xad}, true)
	f.Add(uint16(3), []byte(segMagic), false)
	f.Fuzz(func(t *testing.T, off uint16, junk []byte, truncate bool) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Recover(nil, nil); err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, 0, 8)
		for i := 0; i < 8; i++ {
			p := []byte(fmt.Sprintf("payload-%d", i))
			want = append(want, p)
			if _, err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) != 1 {
			t.Fatalf("want one segment, got %v", segs)
		}
		raw, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		mutated := append([]byte(nil), raw...)
		pos := int(off) % (len(mutated) + 1)
		if truncate {
			mutated = mutated[:pos]
		} else if len(junk) > 0 {
			// Overwrite (extending if needed) at pos.
			end := pos + len(junk)
			if end > len(mutated) {
				mutated = append(mutated, make([]byte, end-len(mutated))...)
			}
			copy(mutated[pos:], junk)
		}
		if err := os.WriteFile(segs[0], mutated, 0o644); err != nil {
			t.Fatal(err)
		}

		recovered := recoverAll(t, dir)
		// Contract: replayed records are a prefix-consistent subset — each
		// one must byte-match the record originally written at that LSN.
		if len(recovered) > len(want) {
			t.Fatalf("recovered %d records from a log of %d", len(recovered), len(want))
		}
		for i, p := range recovered {
			if !bytes.Equal(p, want[i]) {
				t.Fatalf("record %d mutated silently: got %q want %q", i, p, want[i])
			}
		}

		// A second recovery must agree with the first: the tail repair left
		// a stable, self-consistent directory.
		again := recoverAll(t, dir)
		if len(again) != len(recovered) {
			t.Fatalf("second recovery replayed %d records, first replayed %d", len(again), len(recovered))
		}
	})
}

// FuzzRecoverArbitrarySegment feeds recovery a wholly attacker-controlled
// segment file. The only contract here is no panic and no hang; any records
// it does accept must be internally consistent (dense LSNs from the
// segment's first LSN).
func FuzzRecoverArbitrarySegment(f *testing.F) {
	// A well-formed one-record segment as a seed.
	var seed bytes.Buffer
	seed.WriteString(segMagic)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], 1)
	seed.Write(u64[:])
	payload := []byte("hello")
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], 1)
	binary.LittleEndian.PutUint32(hdr[12:16], recordCRC(1, payload))
	seed.Write(hdr[:])
	seed.Write(payload)
	f.Add(seed.Bytes())
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		var lsns []uint64
		if err := l.Recover(nil, func(lsn uint64, p []byte) error {
			lsns = append(lsns, lsn)
			return nil
		}); err != nil {
			t.Fatalf("Recover errored on corrupt input: %v", err)
		}
		for i, lsn := range lsns {
			if lsn != uint64(i+1) {
				t.Fatalf("non-dense replay lsns %v", lsns)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// recoverAll opens dir, replays everything, closes, and returns the
// payloads.
func recoverAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	if err := l.Recover(nil, func(lsn uint64, p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}
