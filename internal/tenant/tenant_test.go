package tenant

import (
	"context"
	"sync"
	"testing"
	"time"

	"ear/internal/topology"
)

func TestContextCarriage(t *testing.T) {
	if got := FromContext(context.Background()); got != System {
		t.Fatalf("empty context tenant = %q, want %q", got, System)
	}
	ctx := NewContext(context.Background(), "acme")
	if got := FromContext(ctx); got != "acme" {
		t.Fatalf("tenant = %q, want acme", got)
	}
	// Empty name is a no-op, not an override.
	if got := FromContext(NewContext(ctx, "")); got != "acme" {
		t.Fatalf("tenant after empty override = %q, want acme", got)
	}
	if got := FromContext(nil); got != System { //nolint:staticcheck // nil-safety contract
		t.Fatalf("nil context tenant = %q, want %q", got, System)
	}
}

func TestNilTableIsNoOp(t *testing.T) {
	var tab *Table
	tab.Charge("a", "write", 1, 10)
	tab.ChargeFabric("a", true, 10)
	tab.SetOwner(1, "a")
	if got := tab.Owner(1); got != System {
		t.Fatalf("nil table owner = %q, want %q", got, System)
	}
	if snap := tab.Snapshot(); snap != nil {
		t.Fatalf("nil table snapshot = %v, want nil", snap)
	}
	if c, i := tab.FabricTotals(); c != 0 || i != 0 {
		t.Fatalf("nil table totals = %d/%d, want 0/0", c, i)
	}
}

func TestChargeAndSnapshot(t *testing.T) {
	tab := NewTable()
	tab.Charge("acme", "write", 2, 2048)
	tab.Charge("acme", "alloc", 2, 0)
	tab.Charge("beta", "write", 1, 1024)
	tab.Charge("", "read", 1, 512) // empty tenant folds into System
	tab.ChargeFabric("acme", true, 4096)
	tab.ChargeFabric("acme", false, 1024)
	tab.ChargeFabric("beta", false, 2048)

	snap := tab.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d tenants, want 3", len(snap))
	}
	// Sorted by name: acme, beta, system.
	if snap[0].Tenant != "acme" || snap[1].Tenant != "beta" || snap[2].Tenant != System {
		t.Fatalf("tenant order = %s,%s,%s", snap[0].Tenant, snap[1].Tenant, snap[2].Tenant)
	}
	acme := snap[0]
	if acme.CrossRackBytes != 4096 || acme.IntraRackBytes != 1024 {
		t.Fatalf("acme fabric = %d/%d", acme.CrossRackBytes, acme.IntraRackBytes)
	}
	ops := map[string]OpStats{}
	for _, op := range acme.Ops {
		ops[op.Op] = op
	}
	if ops["write"].Count != 2 || ops["write"].Bytes != 2048 {
		t.Fatalf("acme write = %+v", ops["write"])
	}
	if ops["xfer-cross"].Bytes != 4096 {
		t.Fatalf("acme xfer-cross = %+v", ops["xfer-cross"])
	}
	cross, intra := tab.FabricTotals()
	if cross != 4096 || intra != 1024+2048 {
		t.Fatalf("fabric totals = %d/%d", cross, intra)
	}
}

func TestOwnership(t *testing.T) {
	tab := NewTable()
	tab.SetOwner(topology.BlockID(7), "acme")
	if got := tab.Owner(7); got != "acme" {
		t.Fatalf("owner = %q", got)
	}
	if got := tab.Owner(8); got != System {
		t.Fatalf("unknown owner = %q, want %q", got, System)
	}
}

// TestRollingRates drives the injected clock across the window and checks
// that rates decay to zero once the activity falls out of it.
func TestRollingRates(t *testing.T) {
	tab := NewTable()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	tab.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	set := func(sec int64) { mu.Lock(); now = time.Unix(sec, 0); mu.Unlock() }

	tab.Charge("acme", "write", 1, 1000)
	set(1001)
	tab.Charge("acme", "write", 1, 1000)

	snap := tab.Snapshot()
	op := snap[0].Ops[0]
	if op.ByteRate != 200 { // 2000 bytes over a 10s window
		t.Fatalf("byte rate = %v, want 200", op.ByteRate)
	}
	if op.CountRate != 0.2 {
		t.Fatalf("count rate = %v, want 0.2", op.CountRate)
	}

	// Move past the window: cumulative totals persist, rates drop to zero.
	set(1000 + rateWindow + 2)
	snap = tab.Snapshot()
	op = snap[0].Ops[0]
	if op.ByteRate != 0 || op.CountRate != 0 {
		t.Fatalf("stale rates = %v/%v, want 0/0", op.CountRate, op.ByteRate)
	}
	if op.Count != 2 || op.Bytes != 2000 {
		t.Fatalf("cumulative = %d/%d, want 2/2000", op.Count, op.Bytes)
	}
}

// TestConcurrentCharges exercises the table under the race detector.
func TestConcurrentCharges(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g%4))
			for i := 0; i < 200; i++ {
				tab.Charge(name, "write", 1, 64)
				tab.ChargeFabric(name, i%2 == 0, 64)
				tab.SetOwner(topology.BlockID(i), name)
				tab.Owner(topology.BlockID(i))
			}
		}(g)
	}
	wg.Wait()
	var count int64
	for _, row := range tab.Snapshot() {
		for _, op := range row.Ops {
			if op.Op == "write" {
				count += op.Count
			}
		}
	}
	if count != 8*200 {
		t.Fatalf("write count = %d, want %d", count, 8*200)
	}
	cross, intra := tab.FabricTotals()
	if cross+intra != 8*200*64 {
		t.Fatalf("fabric bytes = %d, want %d", cross+intra, 8*200*64)
	}
}
