// Package tenant carries a tenant identity through the request path and
// accounts every resource it touches. Identity rides the context the same
// way telemetry spans do: the earfs client (or any embedder) names its
// tenant, the netcfs wire carries the name alongside the trace ID, the
// server re-establishes it in the handler context, and every resource sink
// — NameNode allocations, fabric bytes split cross-/intra-rack, RaidNode
// encode and repair work — charges the owning tenant in a shared Table.
//
// The Table is a per-tenant/per-op accounting grid with rolling rates
// (CubeFS's console traffic model is the shape reference): cumulative
// count+bytes per (tenant, op) plus a ring of one-second buckets that
// yields ops/s and bytes/s over a sliding window. It also keeps a
// block→tenant ownership side-map so background work performed *on behalf
// of* a tenant long after the write RPC returned — encoding its blocks,
// repairing its lost replicas — is still charged to the owner. Ownership
// lives in the observability plane, not in NameNode metadata: it is not
// written to the WAL and is lost on restart, which keeps the durable op
// format untouched (post-restart background work is charged to the system
// tenant).
//
// A nil *Table is a valid no-op sink, the events.Journal convention, so
// instrumented code never nil-checks.
package tenant

import (
	"context"
	"sort"
	"sync"
	"time"

	"ear/internal/topology"
)

// System is the tenant charged for activity with no tenant on the context:
// background daemons, tests, and clients that never set an identity.
const System = "system"

// ctxKey carries the tenant name in a context, unexported so only this
// package can write it (the telemetry spanKey pattern).
type ctxKey struct{}

// NewContext returns ctx carrying the tenant name. An empty name returns
// ctx unchanged.
func NewContext(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, name)
}

// FromContext returns the tenant name carried by ctx, or System when none
// is set.
func FromContext(ctx context.Context) string {
	if ctx == nil {
		return System
	}
	if name, ok := ctx.Value(ctxKey{}).(string); ok && name != "" {
		return name
	}
	return System
}

// rate-ring geometry: rateSlots one-second buckets, rates reported over the
// trailing rateWindow seconds (the current partial second included).
const (
	rateSlots  = 16
	rateWindow = 10
)

// rateBucket is one second of activity for one (tenant, op) cell.
type rateBucket struct {
	sec   int64 // unix second this bucket covers
	count int64
	bytes int64
}

// opCell is one (tenant, op) accounting cell.
type opCell struct {
	count int64
	bytes int64
	ring  [rateSlots]rateBucket
}

// charge folds one charge into the cell at time sec.
func (c *opCell) charge(sec, count, bytes int64) {
	c.count += count
	c.bytes += bytes
	b := &c.ring[sec%rateSlots]
	if b.sec != sec {
		b.sec, b.count, b.bytes = sec, 0, 0
	}
	b.count += count
	b.bytes += bytes
}

// rates sums the ring over the trailing window ending at sec and returns
// per-second averages.
func (c *opCell) rates(sec int64) (countRate, byteRate float64) {
	var cnt, byt int64
	for i := range c.ring {
		if b := c.ring[i]; b.sec > sec-rateWindow && b.sec <= sec {
			cnt += b.count
			byt += b.bytes
		}
	}
	return float64(cnt) / rateWindow, float64(byt) / rateWindow
}

// tenantCell is the accounting state of one tenant.
type tenantCell struct {
	ops            map[string]*opCell
	crossRackBytes int64
	intraRackBytes int64
}

// Table is the shared per-tenant accounting grid. All methods are safe for
// concurrent use; a nil *Table ignores charges and returns empty snapshots.
type Table struct {
	mu      sync.Mutex
	tenants map[string]*tenantCell
	owners  map[topology.BlockID]string
	now     func() time.Time // injectable for rate tests
}

// NewTable builds an empty accounting table.
func NewTable() *Table {
	return &Table{
		tenants: make(map[string]*tenantCell),
		owners:  make(map[topology.BlockID]string),
		now:     time.Now,
	}
}

// cellLocked returns (creating) the cell for (tenant, op).
func (t *Table) cellLocked(tenant, op string) *opCell {
	if tenant == "" {
		tenant = System
	}
	tc, ok := t.tenants[tenant]
	if !ok {
		tc = &tenantCell{ops: make(map[string]*opCell)}
		t.tenants[tenant] = tc
	}
	c, ok := tc.ops[op]
	if !ok {
		c = &opCell{}
		tc.ops[op] = c
	}
	return c
}

// Charge adds count operations and bytes to the (tenant, op) cell. An
// empty tenant charges System.
func (t *Table) Charge(tenant, op string, count, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cellLocked(tenant, op).charge(t.now().Unix(), count, bytes)
	t.mu.Unlock()
}

// ChargeFabric attributes fabric payload bytes to the tenant, split by rack
// locality, and also charges the "xfer-cross"/"xfer-intra" op cells so
// transfer rates show up in the op grid. The fabric calls this at the same
// point it increments its own cross-/intra-rack totals, so summing the
// table over tenants reproduces the fabric totals exactly.
func (t *Table) ChargeFabric(tenant string, cross bool, bytes int64) {
	if t == nil {
		return
	}
	if tenant == "" {
		tenant = System
	}
	op := "xfer-intra"
	if cross {
		op = "xfer-cross"
	}
	t.mu.Lock()
	t.cellLocked(tenant, op).charge(t.now().Unix(), 0, bytes)
	tc := t.tenants[tenant]
	if cross {
		tc.crossRackBytes += bytes
	} else {
		tc.intraRackBytes += bytes
	}
	t.mu.Unlock()
}

// SetOwner records the owning tenant of a block (called at allocation).
func (t *Table) SetOwner(id topology.BlockID, tenant string) {
	if t == nil || tenant == "" {
		return
	}
	t.mu.Lock()
	t.owners[id] = tenant
	t.mu.Unlock()
}

// Owner returns the owning tenant of a block, or System when unknown.
func (t *Table) Owner(id topology.BlockID) string {
	if t == nil {
		return System
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if o, ok := t.owners[id]; ok {
		return o
	}
	return System
}

// OpStats is one (tenant, op) cell of a snapshot.
type OpStats struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
	Bytes int64  `json:"bytes"`
	// CountRate and ByteRate are trailing-window per-second averages.
	CountRate float64 `json:"count_per_sec"`
	ByteRate  float64 `json:"bytes_per_sec"`
}

// TenantStats is one tenant's row of a snapshot.
type TenantStats struct {
	Tenant         string    `json:"tenant"`
	CrossRackBytes int64     `json:"cross_rack_bytes"`
	IntraRackBytes int64     `json:"intra_rack_bytes"`
	Ops            []OpStats `json:"ops"`
}

// TotalBytes sums the tenant's fabric attribution.
func (s TenantStats) TotalBytes() int64 { return s.CrossRackBytes + s.IntraRackBytes }

// Snapshot returns every tenant's accounting state, tenants and ops sorted
// by name.
func (t *Table) Snapshot() []TenantStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sec := t.now().Unix()
	out := make([]TenantStats, 0, len(t.tenants))
	for name, tc := range t.tenants {
		row := TenantStats{
			Tenant:         name,
			CrossRackBytes: tc.crossRackBytes,
			IntraRackBytes: tc.intraRackBytes,
			Ops:            make([]OpStats, 0, len(tc.ops)),
		}
		for op, c := range tc.ops {
			cr, br := c.rates(sec)
			row.Ops = append(row.Ops, OpStats{
				Op: op, Count: c.count, Bytes: c.bytes,
				CountRate: cr, ByteRate: br,
			})
		}
		sort.Slice(row.Ops, func(i, j int) bool { return row.Ops[i].Op < row.Ops[j].Op })
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// FabricTotals sums cross- and intra-rack attributed bytes over every
// tenant — the quantity the earanalysis cross-check compares against the
// fabric's own counters.
func (t *Table) FabricTotals() (cross, intra int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tc := range t.tenants {
		cross += tc.crossRackBytes
		intra += tc.intraRackBytes
	}
	return cross, intra
}
