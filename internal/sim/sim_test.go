package sim

import (
	"errors"
	"math"
	"testing"
)

func TestHoldAdvancesTime(t *testing.T) {
	s := New()
	var times []float64
	err := s.Spawn("p", 0, func(p *Proc) error {
		times = append(times, p.Now())
		if err := p.Hold(5); err != nil {
			return err
		}
		times = append(times, p.Now())
		if err := p.Hold(2.5); err != nil {
			return err
		}
		times = append(times, p.Now())
		return nil
	})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []float64{0, 5, 7.5}
	if len(times) != len(want) {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if s.Now() != 7.5 {
		t.Errorf("final Now = %g, want 7.5", s.Now())
	}
}

func TestSpawnDelay(t *testing.T) {
	s := New()
	var started float64
	if err := s.Spawn("late", 3, func(p *Proc) error {
		started = p.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if started != 3 {
		t.Errorf("started at %g, want 3", started)
	}
	if err := s.Spawn("x", -1, func(p *Proc) error { return nil }); !errors.Is(err, ErrBadDuration) {
		t.Errorf("negative delay: %v", err)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	// Two processes with interleaved holds must execute in timestamp order,
	// with FIFO tie-breaking at equal times.
	s := New()
	var order []string
	mark := func(tag string) { order = append(order, tag) }
	if err := s.Spawn("a", 0, func(p *Proc) error {
		mark("a0")
		_ = p.Hold(10)
		mark("a10")
		_ = p.Hold(10)
		mark("a20")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Spawn("b", 5, func(p *Proc) error {
		mark("b5")
		_ = p.Hold(5)
		mark("b10")
		_ = p.Hold(15)
		mark("b25")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a0", "b5", "a10", "b10", "a20", "b25"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	if err := s.Spawn("ticker", 0, func(p *Proc) error {
		for {
			if err := p.Hold(1); err != nil {
				return err
			}
			count++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10.5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if s.Now() != 10.5 {
		t.Errorf("Now = %g, want 10.5", s.Now())
	}
	// A finished simulation cannot be reused.
	if err := s.Run(20); !errors.Is(err, ErrNotRunning) {
		t.Errorf("second Run: %v", err)
	}
	if err := s.Spawn("late", 0, func(p *Proc) error { return nil }); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Spawn after Run: %v", err)
	}
}

func TestProcessErrorAborts(t *testing.T) {
	s := New()
	boom := errors.New("boom")
	if err := s.Spawn("bad", 1, func(p *Proc) error { return boom }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := s.Spawn("later", 2, func(p *Proc) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	err := s.Run(0)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
	if ran {
		t.Error("process scheduled after failure still ran")
	}
}

func TestAtCallback(t *testing.T) {
	s := New()
	var at float64 = -1
	if err := s.At(4, func() { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 4 {
		t.Errorf("callback at %g, want 4", at)
	}
	s2 := New()
	_ = s2.Spawn("x", 5, func(p *Proc) error { return nil })
	if err := s2.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := s2.At(1, func() {}); err == nil {
		t.Error("At in the past should error")
	}
}

func TestHoldNegative(t *testing.T) {
	s := New()
	var holdErr error
	_ = s.Spawn("p", 0, func(p *Proc) error {
		holdErr = p.Hold(-1)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(holdErr, ErrBadDuration) {
		t.Errorf("Hold(-1) = %v", holdErr)
	}
}

func TestFacilitySerializesAccess(t *testing.T) {
	// Two processes share a single-server facility with service time 10;
	// the second must wait for the first.
	s := New()
	f, err := s.NewFacility("link", 1)
	if err != nil {
		t.Fatal(err)
	}
	var doneA, doneB float64
	_ = s.Spawn("a", 0, func(p *Proc) error {
		if err := f.Use(p, 10); err != nil {
			return err
		}
		doneA = p.Now()
		return nil
	})
	_ = s.Spawn("b", 1, func(p *Proc) error {
		if err := f.Use(p, 10); err != nil {
			return err
		}
		doneB = p.Now()
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if doneA != 10 || doneB != 20 {
		t.Errorf("completion times (%g, %g), want (10, 20)", doneA, doneB)
	}
	if f.Completed() != 2 {
		t.Errorf("Completed = %d, want 2", f.Completed())
	}
	// Utilization: busy from 0..20 of a 20-long run = 1.0.
	if u := f.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("Utilization = %g, want 1", u)
	}
}

func TestFacilityFIFOOrder(t *testing.T) {
	s := New()
	f, err := s.NewFacility("link", 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		_ = s.Spawn(name, 0, func(p *Proc) error {
			if err := f.Use(p, 1); err != nil {
				return err
			}
			order = append(order, name)
			return nil
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("order = %v, want FIFO", order)
	}
}

func TestFacilityMultiServer(t *testing.T) {
	s := New()
	f, err := s.NewFacility("dual", 2)
	if err != nil {
		t.Fatal(err)
	}
	var finish []float64
	for i := 0; i < 4; i++ {
		_ = s.Spawn("p", 0, func(p *Proc) error {
			if err := f.Use(p, 10); err != nil {
				return err
			}
			finish = append(finish, p.Now())
			return nil
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two at t=10, two at t=20.
	if len(finish) != 4 || finish[0] != 10 || finish[1] != 10 || finish[2] != 20 || finish[3] != 20 {
		t.Fatalf("finish = %v", finish)
	}
	if f.Servers() != 2 || f.Name() != "dual" {
		t.Error("accessors wrong")
	}
}

func TestFacilityValidation(t *testing.T) {
	s := New()
	if _, err := s.NewFacility("bad", 0); err == nil {
		t.Error("0 servers: expected error")
	}
	f, _ := s.NewFacility("ok", 1)
	var useErr error
	_ = s.Spawn("p", 0, func(p *Proc) error {
		useErr = f.Use(p, -5)
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(useErr, ErrBadDuration) {
		t.Errorf("Use(-5) = %v", useErr)
	}
}

func TestReserveManyNoDeadlockWithOrder(t *testing.T) {
	// Two processes acquiring two facilities in the same canonical order
	// must serialize cleanly.
	s := New()
	f1, _ := s.NewFacility("l1", 1)
	f2, _ := s.NewFacility("l2", 1)
	var finish []float64
	for i := 0; i < 2; i++ {
		_ = s.Spawn("p", 0, func(p *Proc) error {
			fs := []*Facility{f1, f2}
			ReserveMany(p, fs)
			if err := p.Hold(5); err != nil {
				return err
			}
			ReleaseMany(fs)
			finish = append(finish, p.Now())
			return nil
		})
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(finish) != 2 || finish[0] != 5 || finish[1] != 10 {
		t.Fatalf("finish = %v, want [5 10]", finish)
	}
}

func TestFacilityStats(t *testing.T) {
	s := New()
	f, _ := s.NewFacility("link", 1)
	_ = s.Spawn("busy", 0, func(p *Proc) error {
		if err := f.Use(p, 5); err != nil {
			return err
		}
		return p.Hold(5) // idle period
	})
	_ = s.Spawn("waiter", 0, func(p *Proc) error {
		return f.Use(p, 0) // queued behind busy for 5, then instant
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Busy 5 of 10 => utilization 0.5; one waiter queued 5 of 10 => 0.5.
	if u := f.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("Utilization = %g, want 0.5", u)
	}
	if q := f.MeanQueueLen(); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("MeanQueueLen = %g, want 0.5", q)
	}
}

func TestMailbox(t *testing.T) {
	s := New()
	m := s.NewMailbox("jobs")
	var got []int
	_ = s.Spawn("producer", 0, func(p *Proc) error {
		for i := 1; i <= 3; i++ {
			if err := p.Hold(2); err != nil {
				return err
			}
			m.Put(i)
		}
		return nil
	})
	_ = s.Spawn("consumer", 0, func(p *Proc) error {
		for i := 0; i < 3; i++ {
			v, ok := m.Get(p).(int)
			if !ok {
				return errors.New("bad item type")
			}
			got = append(got, v)
		}
		return nil
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d, want 0", m.Len())
	}
}

func TestBlockedProcessesCleanedUpOnShutdown(t *testing.T) {
	// A process waiting forever on a facility must not leak when Run ends;
	// Run joins all goroutines before returning.
	s := New()
	f, _ := s.NewFacility("link", 1)
	_ = s.Spawn("holder", 0, func(p *Proc) error {
		f.Reserve(p)
		return p.Hold(100) // never releases within limit
	})
	_ = s.Spawn("stuck", 1, func(p *Proc) error {
		f.Reserve(p) // blocks forever
		return errors.New("should never run")
	})
	if err := s.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if f.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1 stuck waiter", f.QueueLen())
	}
}

func TestZeroDurationEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.At(1, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}
