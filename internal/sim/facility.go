package sim

import (
	"fmt"
)

// Facility is a CSIM-style resource: a set of identical servers with a FIFO
// wait queue. A process reserves a server (blocking while none is free),
// holds it for a service time, and releases it. Utilization and throughput
// statistics accumulate automatically.
type Facility struct {
	sim     *Sim
	name    string
	servers int

	busy    int
	waiters []*Proc

	// statistics
	lastChange   float64
	busyIntegral float64 // integral of busy server count over time
	queueLenInt  float64 // integral of queue length over time
	completed    int
}

// NewFacility creates a facility with the given number of servers.
func (s *Sim) NewFacility(name string, servers int) (*Facility, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("sim: facility %q needs positive servers, got %d", name, servers)
	}
	return &Facility{sim: s, name: name, servers: servers}, nil
}

// Name returns the facility name.
func (f *Facility) Name() string { return f.name }

// Servers returns the configured server count.
func (f *Facility) Servers() int { return f.servers }

// Busy returns the number of servers currently reserved.
func (f *Facility) Busy() int { return f.busy }

// QueueLen returns the number of processes waiting for a server.
func (f *Facility) QueueLen() int { return len(f.waiters) }

// accumulate integrates statistics up to the current time.
func (f *Facility) accumulate() {
	now := f.sim.now
	dt := now - f.lastChange
	f.busyIntegral += dt * float64(f.busy)
	f.queueLenInt += dt * float64(len(f.waiters))
	f.lastChange = now
}

// Reserve blocks p until a server is available and claims it.
func (f *Facility) Reserve(p *Proc) {
	f.accumulate()
	if f.busy < f.servers {
		f.busy++
		return
	}
	f.waiters = append(f.waiters, p)
	p.block()
	// Ownership was transferred by Release; busy already accounts for us.
}

// Release frees p's server. If processes are waiting, the server transfers
// directly to the head of the queue, which resumes at the current time.
func (f *Facility) Release() {
	f.accumulate()
	f.completed++
	if len(f.waiters) > 0 {
		next := f.waiters[0]
		f.waiters = f.waiters[1:]
		next.wakeAt(f.sim.now)
		return // server stays busy, handed to next
	}
	f.busy--
}

// Use is the common reserve-hold-release cycle: p occupies one server for
// the given service time.
func (f *Facility) Use(p *Proc, serviceTime float64) error {
	if serviceTime < 0 {
		return fmt.Errorf("%w: service time %g on %q", ErrBadDuration, serviceTime, f.name)
	}
	f.Reserve(p)
	if err := p.Hold(serviceTime); err != nil {
		f.Release()
		return err
	}
	f.Release()
	return nil
}

// Utilization returns the time-averaged fraction of servers busy so far.
func (f *Facility) Utilization() float64 {
	f.accumulate()
	if f.sim.now == 0 {
		return 0
	}
	return f.busyIntegral / (f.sim.now * float64(f.servers))
}

// MeanQueueLen returns the time-averaged wait-queue length.
func (f *Facility) MeanQueueLen() float64 {
	f.accumulate()
	if f.sim.now == 0 {
		return 0
	}
	return f.queueLenInt / f.sim.now
}

// Completed returns the number of completed reservations.
func (f *Facility) Completed() int { return f.completed }

// ReserveMany reserves all the given facilities in order, blocking on each.
// Facilities must always be passed in a globally consistent order to avoid
// deadlock; the caller establishes that order (the CFS topology sorts links
// canonically).
func ReserveMany(p *Proc, fs []*Facility) {
	for _, f := range fs {
		f.Reserve(p)
	}
}

// ReleaseMany releases all the given facilities.
func ReleaseMany(fs []*Facility) {
	for _, f := range fs {
		f.Release()
	}
}

// Mailbox is an unbounded FIFO channel between simulated processes: Put
// never blocks; Get blocks the caller until an item is available.
type Mailbox struct {
	sim     *Sim
	name    string
	items   []any
	waiters []*Proc
}

// NewMailbox creates an empty mailbox.
func (s *Sim) NewMailbox(name string) *Mailbox {
	return &Mailbox{sim: s, name: name}
}

// Len returns the number of queued items.
func (m *Mailbox) Len() int { return len(m.items) }

// Put enqueues an item, waking one waiting receiver if any. Safe to call
// from scheduler callbacks as well as processes.
func (m *Mailbox) Put(item any) {
	m.items = append(m.items, item)
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.wakeAt(m.sim.now)
	}
}

// Get dequeues the oldest item, blocking p until one arrives.
func (m *Mailbox) Get(p *Proc) any {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.block()
	}
	item := m.items[0]
	m.items = m.items[1:]
	return item
}
