// Package sim is a process-oriented discrete-event simulation kernel in the
// style of CSIM 20, the library the paper's Section V-B simulator is built
// on. Simulated processes are goroutines scheduled one at a time by a
// deterministic event loop; they advance simulated time with Hold and
// contend for Facility resources (FIFO servers held for a duration, the
// CSIM reserve/hold/release model used to simulate link bandwidth).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Errors returned by the kernel.
var (
	// ErrNotRunning indicates an operation that requires an active Run.
	ErrNotRunning = errors.New("sim: simulation not running")
	// ErrBadDuration indicates a negative hold or service time.
	ErrBadDuration = errors.New("sim: negative duration")
)

// event is a scheduled occurrence: either a process resumption or a
// callback.
type event struct {
	time float64
	seq  uint64 // FIFO tie-break for equal timestamps
	proc *Proc
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is one simulation run. Create with New, add processes with Spawn, and
// execute with Run. A Sim is not reusable after Run returns.
type Sim struct {
	now    float64
	seq    uint64
	queue  eventHeap
	yield  chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	err    error
	closed bool
}

// New returns an empty simulation at time zero.
func New() *Sim {
	return &Sim{
		yield: make(chan struct{}),
		stop:  make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() float64 { return s.now }

// schedule enqueues an event at absolute time t.
func (s *Sim) schedule(t float64, p *Proc, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, proc: p, fn: fn})
}

// At schedules a callback at the given absolute time. Callbacks run inside
// the scheduler and must not block; use Spawn for anything that holds or
// reserves.
func (s *Sim) At(t float64, fn func()) error {
	if t < s.now {
		return fmt.Errorf("%w: schedule at %g before now %g", ErrBadDuration, t, s.now)
	}
	s.schedule(t, nil, fn)
	return nil
}

// Proc is a simulated process. All methods must be called from the process's
// own goroutine (the function passed to Spawn).
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.sim.now }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn creates a process that begins executing fn at now+delay. fn's error,
// if any, aborts the simulation: Run returns it.
func (s *Sim) Spawn(name string, delay float64, fn func(p *Proc) error) error {
	if delay < 0 {
		return fmt.Errorf("%w: spawn delay %g", ErrBadDuration, delay)
	}
	if s.closed {
		return ErrNotRunning
	}
	p := &Proc{sim: s, name: name, wake: make(chan struct{}, 1)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		p.waitWake()
		if err := fn(p); err != nil && s.err == nil {
			s.err = fmt.Errorf("process %s: %w", name, err)
		}
		s.yieldToScheduler()
	}()
	s.schedule(s.now+delay, p, nil)
	return nil
}

// waitWake parks the process until the scheduler resumes it. If the
// simulation shuts down first, the goroutine exits (running its defers).
func (p *Proc) waitWake() {
	select {
	case <-p.wake:
	case <-p.sim.stop:
		runtime.Goexit()
	}
}

// yieldToScheduler hands control back to the event loop.
func (s *Sim) yieldToScheduler() {
	select {
	case s.yield <- struct{}{}:
	case <-s.stop:
		runtime.Goexit()
	}
}

// Hold advances the process's simulated time by d.
func (p *Proc) Hold(d float64) error {
	if d < 0 {
		return fmt.Errorf("%w: hold %g", ErrBadDuration, d)
	}
	s := p.sim
	s.schedule(s.now+d, p, nil)
	s.yieldToScheduler()
	p.waitWake()
	return nil
}

// block parks the process without scheduling a resumption; some other
// component (facility release, mailbox put) must wake it via wakeAt.
func (p *Proc) block() {
	p.sim.yieldToScheduler()
	p.waitWake()
}

// wakeAt schedules the process to resume at the given absolute time.
func (p *Proc) wakeAt(t float64) {
	p.sim.schedule(t, p, nil)
}

// Run executes events until the queue empties, until the optional time
// limit (until > 0) passes, or until a process fails. On return all process
// goroutines have exited.
func (s *Sim) Run(until float64) error {
	if s.closed {
		return ErrNotRunning
	}
	defer func() {
		s.closed = true
		close(s.stop)
		s.wg.Wait()
	}()
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if until > 0 && ev.time > until {
			s.now = until
			break
		}
		s.now = ev.time
		if ev.fn != nil {
			ev.fn()
			continue
		}
		// Resume the process and wait for it to park again.
		ev.proc.wake <- struct{}{}
		<-s.yield
		if s.err != nil {
			return s.err
		}
	}
	return s.err
}
