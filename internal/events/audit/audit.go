// Package audit replays the cluster event journal against the paper's
// placement invariants, continuously and online: it subscribes to an
// events.Journal, maintains its own model of where every replica, stripe,
// and parity block lives (built purely from the event stream, never by
// calling back into the cluster), and flags any state — including
// *transient* state that later self-corrects — that violates what EAR
// promises:
//
//   - replica-count: a committed, not-yet-encoded block keeps at least r
//     replicas (the pre-encode durability guarantee). The check is
//     suspended for a stripe while its encode operation is in flight,
//     because deleting down to one replica is exactly what encoding does.
//   - core-rack-copy: before encoding, every member of an EAR stripe keeps
//     one replica in the stripe's core rack (the property that makes the
//     encode operation rack-local, Section III).
//   - rack-spread: after encoding, no rack holds more than c blocks of a
//     stripe (rack-level fault tolerance, Equation 1's requirement).
//   - partial-delete: after encoding, every non-aborted member still has at
//     least one live replica — no stripe is left partially deleted.
//
// A violation records the event window that caused it: the sequence number
// that opened it, the last event observed while it held, and — when a later
// event restores the invariant — the resolving sequence number, which marks
// the violation transient. Steady-state violations stay open. This is the
// layer the paper's reliability argument is asserted against: "did any
// stripe *ever* violate rack fault tolerance, even transiently, during
// encode, repair, or relocation?" is answered by Report().
package audit

import (
	"fmt"
	"sort"
	"sync"

	"ear/internal/events"
	"ear/internal/topology"
)

// Invariant names one checked property.
type Invariant string

// The audited invariants.
const (
	InvReplicaCount  Invariant = "replica-count"
	InvCoreRackCopy  Invariant = "core-rack-copy"
	InvRackSpread    Invariant = "rack-spread"
	InvPartialDelete Invariant = "partial-delete"
)

// Config sets the audited thresholds, mirroring the cluster configuration.
type Config struct {
	// Replicas is the pre-encode replication factor r.
	Replicas int
	// C bounds blocks of a stripe per rack after encoding (<=0 means 1).
	C int
	// CheckCoreRack enables the core-rack-copy invariant (EAR stripes;
	// stripes grouped with rack -1 are skipped regardless).
	CheckCoreRack bool
}

// Violation is one observed invariant breach with its event window.
type Violation struct {
	Invariant Invariant         `json:"invariant"`
	Stripe    topology.StripeID `json:"stripe"`
	Block     topology.BlockID  `json:"block"`
	Detail    string            `json:"detail"`
	// OpenedSeq is the event that created the violating state; LastSeq the
	// most recent event observed while it held.
	OpenedSeq uint64 `json:"opened_seq"`
	LastSeq   uint64 `json:"last_seq"`
	// ResolvedSeq is the event that restored the invariant (0 while the
	// violation is ongoing). A resolved violation was transient.
	ResolvedSeq uint64 `json:"resolved_seq,omitempty"`
}

// Transient reports whether the violation self-corrected.
func (v Violation) Transient() bool { return v.ResolvedSeq != 0 }

// Report is the auditor's summary.
type Report struct {
	Events    uint64      `json:"events"`
	Blocks    int         `json:"blocks"`
	Stripes   int         `json:"stripes"`
	Encoded   int         `json:"encoded_stripes"`
	Ongoing   []Violation `json:"ongoing"`
	Transient []Violation `json:"transient"`
	// Clean is true when no violation — ongoing or transient — was ever
	// observed.
	Clean bool `json:"clean"`
}

// Total returns the violation count, transient included.
func (r Report) Total() int { return len(r.Ongoing) + len(r.Transient) }

// blockState is the auditor's model of one block.
type blockState struct {
	replicas  map[topology.NodeID]bool
	stripe    topology.StripeID
	committed bool
	aborted   bool
	encoded   bool
}

// stripeState is the auditor's model of one stripe.
type stripeState struct {
	blocks   []topology.BlockID
	coreRack topology.RackID
	parity   map[int]topology.NodeID // index -> node (relocations rewrite)
	encoding bool                    // encode in flight: replica checks suspended
	encoded  bool
}

// Auditor consumes the event stream and maintains the invariant state. All
// methods are safe for concurrent use; Attach subscribes it to a journal.
type Auditor struct {
	top *topology.Topology
	cfg Config

	mu      sync.Mutex
	events  uint64
	blocks  map[topology.BlockID]*blockState
	stripes map[topology.StripeID]*stripeState
	// open maps a violation key to its index in all; closed violations keep
	// their slot (they become the transient list).
	open map[string]int
	all  []Violation
}

// New builds an auditor for the given topology and thresholds.
func New(top *topology.Topology, cfg Config) *Auditor {
	if cfg.C <= 0 {
		cfg.C = 1
	}
	return &Auditor{
		top:     top,
		cfg:     cfg,
		blocks:  make(map[topology.BlockID]*blockState),
		stripes: make(map[topology.StripeID]*stripeState),
		open:    make(map[string]int),
	}
}

// Attach subscribes the auditor to the journal, returning the cancel
// function. Events already rotated out of the ring are not replayed, so
// attach before traffic flows.
func (a *Auditor) Attach(j *events.Journal) (cancel func()) {
	return j.Subscribe(a.Observe)
}

// Observe folds one event into the model and re-checks the invariants the
// event can affect. It is the subscriber the journal calls; tests may also
// feed events directly.
func (a *Auditor) Observe(e events.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++

	switch e.Type {
	case events.BlockAllocated:
		b := a.block(e.Block)
		for _, n := range e.Nodes {
			b.replicas[n] = true
		}
	case events.ReplicaWritten:
		a.block(e.Block).replicas[e.Node] = true
	case events.BlockCommitted:
		b := a.block(e.Block)
		b.committed = true
		if len(e.Nodes) > 0 {
			b.replicas = make(map[topology.NodeID]bool, len(e.Nodes))
			for _, n := range e.Nodes {
				b.replicas[n] = true
			}
		}
	case events.BlockAborted:
		b := a.block(e.Block)
		b.aborted = true
		b.replicas = make(map[topology.NodeID]bool)
	case events.StripeGrouped:
		s := a.stripe(e.Stripe)
		s.blocks = append([]topology.BlockID(nil), e.Blocks...)
		s.coreRack = e.Rack
		for _, id := range e.Blocks {
			a.block(id).stripe = e.Stripe
		}
	case events.StripeEncodeStarted:
		a.stripe(e.Stripe).encoding = true
	case events.StripeEncoded:
		s := a.stripe(e.Stripe)
		s.encoding = false
		s.encoded = true
		s.parity = make(map[int]topology.NodeID, len(e.Nodes))
		for i, n := range e.Nodes {
			s.parity[i] = n
		}
		for _, id := range s.blocks {
			a.block(id).encoded = true
		}
	case events.ReplicaDeleted:
		delete(a.block(e.Block).replicas, e.Node)
	case events.ReplicaRelocated:
		if e.Detail == "parity" {
			s := a.stripe(e.Stripe)
			for i, n := range s.parity {
				if n == e.Node {
					s.parity[i] = e.Peer
					break
				}
			}
		} else {
			b := a.block(e.Block)
			delete(b.replicas, e.Node)
			b.replicas[e.Peer] = true
		}
	case events.RepairFinished:
		// Parity repairs publish with Block unset (Detail "parity"); the
		// paired ReplicaRelocated event moves the parity holder.
		if e.Block != events.NoneBlock {
			a.block(e.Block).replicas[e.Node] = true
		}
	default:
		// Transfers, task placements, liveness, verification: no placement
		// state to fold, but the window of any open violation still extends.
	}

	a.checkLocked(e)
}

// block returns (creating) the model entry for id.
func (a *Auditor) block(id topology.BlockID) *blockState {
	b, ok := a.blocks[id]
	if !ok {
		b = &blockState{replicas: make(map[topology.NodeID]bool), stripe: events.NoneStripe}
		a.blocks[id] = b
	}
	return b
}

// stripe returns (creating) the model entry for id.
func (a *Auditor) stripe(id topology.StripeID) *stripeState {
	s, ok := a.stripes[id]
	if !ok {
		s = &stripeState{coreRack: events.NoneRack, parity: make(map[int]topology.NodeID)}
		a.stripes[id] = s
	}
	return s
}

// checkLocked evaluates every invariant touched by the event. The scope is
// the event's stripe (or its block's stripe); events with no placement
// linkage only extend open windows.
func (a *Auditor) checkLocked(e events.Event) {
	seq := e.Seq
	for _, v := range a.open {
		a.all[v].LastSeq = seq
	}

	sid := e.Stripe
	if sid == events.NoneStripe && e.Block != events.NoneBlock {
		if b, ok := a.blocks[e.Block]; ok {
			sid = b.stripe
		}
	}
	// Block-level replica-count applies even before stripe assignment.
	if e.Block != events.NoneBlock {
		a.checkReplicaCountLocked(e.Block, seq)
	}
	if sid == events.NoneStripe {
		return
	}
	s, ok := a.stripes[sid]
	if !ok {
		return
	}
	for _, id := range s.blocks {
		a.checkReplicaCountLocked(id, seq)
	}
	a.checkCoreRackLocked(sid, s, seq)
	a.checkRackSpreadLocked(sid, s, seq)
	a.checkPartialDeleteLocked(sid, s, seq)
}

// setState opens, extends, or resolves the violation identified by key.
func (a *Auditor) setState(key string, violated bool, seq uint64, make func() Violation) {
	idx, isOpen := a.open[key]
	switch {
	case violated && !isOpen:
		v := make()
		v.OpenedSeq = seq
		v.LastSeq = seq
		a.all = append(a.all, v)
		a.open[key] = len(a.all) - 1
	case violated && isOpen:
		a.all[idx].LastSeq = seq
	case !violated && isOpen:
		a.all[idx].ResolvedSeq = seq
		delete(a.open, key)
	}
}

// checkReplicaCountLocked: committed, pre-encode blocks keep >= r replicas.
// Suspended while the block's stripe encodes and once it is encoded.
func (a *Auditor) checkReplicaCountLocked(id topology.BlockID, seq uint64) {
	b, ok := a.blocks[id]
	if !ok {
		return
	}
	key := fmt.Sprintf("%s/b%d", InvReplicaCount, id)
	suspended := b.aborted || b.encoded || !b.committed
	if s, ok := a.stripes[b.stripe]; ok && (s.encoding || s.encoded) {
		suspended = true
	}
	violated := !suspended && len(b.replicas) < a.cfg.Replicas
	a.setState(key, violated, seq, func() Violation {
		return Violation{
			Invariant: InvReplicaCount,
			Stripe:    b.stripe,
			Block:     id,
			Detail:    fmt.Sprintf("%d of %d replicas live before encoding", len(b.replicas), a.cfg.Replicas),
		}
	})
}

// checkCoreRackLocked: pre-encode EAR stripes keep one replica of every
// member in the core rack.
func (a *Auditor) checkCoreRackLocked(sid topology.StripeID, s *stripeState, seq uint64) {
	if !a.cfg.CheckCoreRack || s.coreRack == events.NoneRack || s.encoded || s.encoding {
		a.setState(fmt.Sprintf("%s/s%d", InvCoreRackCopy, sid), false, seq, nil)
		return
	}
	missing := topology.BlockID(-1)
	for _, id := range s.blocks {
		b, ok := a.blocks[id]
		if !ok || b.aborted || !b.committed {
			continue
		}
		inCore := false
		for n := range b.replicas {
			if r, err := a.top.RackOf(n); err == nil && r == s.coreRack {
				inCore = true
				break
			}
		}
		if !inCore {
			missing = id
			break
		}
	}
	a.setState(fmt.Sprintf("%s/s%d", InvCoreRackCopy, sid), missing >= 0, seq, func() Violation {
		return Violation{
			Invariant: InvCoreRackCopy,
			Stripe:    sid,
			Block:     missing,
			Detail:    fmt.Sprintf("no replica of block %d in core rack %d", missing, s.coreRack),
		}
	})
}

// checkRackSpreadLocked: post-encode, every rack holds <= c blocks of the
// stripe (data replicas and parity together).
func (a *Auditor) checkRackSpreadLocked(sid topology.StripeID, s *stripeState, seq uint64) {
	key := fmt.Sprintf("%s/s%d", InvRackSpread, sid)
	if !s.encoded {
		a.setState(key, false, seq, nil)
		return
	}
	counts := make(map[topology.RackID]int)
	for _, id := range s.blocks {
		if b, ok := a.blocks[id]; ok {
			for n := range b.replicas {
				if r, err := a.top.RackOf(n); err == nil {
					counts[r]++
				}
			}
		}
	}
	for _, n := range s.parity {
		if r, err := a.top.RackOf(n); err == nil {
			counts[r]++
		}
	}
	worstRack, worst := events.NoneRack, 0
	for r, c := range counts {
		if c > worst {
			worstRack, worst = r, c
		}
	}
	a.setState(key, worst > a.cfg.C, seq, func() Violation {
		return Violation{
			Invariant: InvRackSpread,
			Stripe:    sid,
			Block:     events.NoneBlock,
			Detail:    fmt.Sprintf("rack %d holds %d blocks of the stripe (c=%d)", worstRack, worst, a.cfg.C),
		}
	})
}

// checkPartialDeleteLocked: post-encode, every non-aborted member keeps at
// least one replica.
func (a *Auditor) checkPartialDeleteLocked(sid topology.StripeID, s *stripeState, seq uint64) {
	key := fmt.Sprintf("%s/s%d", InvPartialDelete, sid)
	if !s.encoded {
		a.setState(key, false, seq, nil)
		return
	}
	lost := topology.BlockID(-1)
	for _, id := range s.blocks {
		if b, ok := a.blocks[id]; ok && !b.aborted && len(b.replicas) == 0 {
			lost = id
			break
		}
	}
	a.setState(key, lost >= 0, seq, func() Violation {
		return Violation{
			Invariant: InvPartialDelete,
			Stripe:    sid,
			Block:     lost,
			Detail:    fmt.Sprintf("block %d of encoded stripe has no live replica", lost),
		}
	})
}

// Report summarizes the audit so far. Violations are sorted by opening
// sequence number.
func (a *Auditor) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := Report{Events: a.events, Blocks: len(a.blocks), Stripes: len(a.stripes)}
	for _, s := range a.stripes {
		if s.encoded {
			r.Encoded++
		}
	}
	for _, v := range a.all {
		if v.Transient() {
			r.Transient = append(r.Transient, v)
		} else {
			r.Ongoing = append(r.Ongoing, v)
		}
	}
	sort.Slice(r.Ongoing, func(i, j int) bool { return r.Ongoing[i].OpenedSeq < r.Ongoing[j].OpenedSeq })
	sort.Slice(r.Transient, func(i, j int) bool { return r.Transient[i].OpenedSeq < r.Transient[j].OpenedSeq })
	r.Clean = len(a.all) == 0
	return r
}
