package audit

import (
	"testing"

	"ear/internal/events"
	"ear/internal/topology"
)

// fixture: 4 racks x 2 nodes. RackOf(n) = n/2.
func testAuditor(t *testing.T, cfg Config) *Auditor {
	t.Helper()
	top, err := topology.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return New(top, cfg)
}

// feed publishes the events through a journal so they arrive stamped, the
// way production events do.
func feed(a *Auditor, evs ...events.Event) *events.Journal {
	j := events.NewJournal(0)
	a.Attach(j)
	for _, e := range evs {
		j.Publish(e)
	}
	return j
}

func ev(t events.Type, mut func(*events.Event)) events.Event {
	e := events.New(t, "test")
	if mut != nil {
		mut(&e)
	}
	return e
}

// commit emits the allocate+commit pair placing block id on nodes.
func commit(id topology.BlockID, nodes ...topology.NodeID) []events.Event {
	return []events.Event{
		ev(events.BlockAllocated, func(e *events.Event) { e.Block = id; e.Nodes = nodes }),
		ev(events.BlockCommitted, func(e *events.Event) { e.Block = id; e.Nodes = nodes }),
	}
}

func group(s topology.StripeID, core topology.RackID, blocks ...topology.BlockID) events.Event {
	return ev(events.StripeGrouped, func(e *events.Event) {
		e.Stripe = s
		e.Rack = core
		e.Blocks = blocks
	})
}

func TestCleanLifecycleStaysClean(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2, C: 1, CheckCoreRack: true})
	var evs []events.Event
	// Two blocks, each with a replica in core rack 0 (nodes 0-1) and one
	// elsewhere.
	evs = append(evs, commit(1, 0, 2)...)
	evs = append(evs, commit(2, 1, 4)...)
	evs = append(evs, group(10, 0, 1, 2))
	// Encode: deletes down to one replica per block inside the encode
	// bracket, parities land in two more racks.
	evs = append(evs,
		ev(events.StripeEncodeStarted, func(e *events.Event) { e.Stripe = 10 }),
		ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 0 }),
		ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 2; e.Node = 1 }),
		ev(events.StripeEncoded, func(e *events.Event) {
			e.Stripe = 10
			e.Nodes = []topology.NodeID{6}
		}),
	)
	feed(a, evs...)
	r := a.Report()
	if !r.Clean {
		t.Fatalf("clean lifecycle flagged: %+v", append(r.Ongoing, r.Transient...))
	}
	if r.Blocks != 2 || r.Stripes != 1 || r.Encoded != 1 {
		t.Errorf("model folded %d blocks / %d stripes / %d encoded, want 2/1/1", r.Blocks, r.Stripes, r.Encoded)
	}
}

func TestReplicaCountViolationAndResolution(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2})
	j := feed(a)
	for _, e := range commit(1, 0, 2) {
		j.Publish(e)
	}
	// Losing a replica outside any encode bracket breaches r >= 2.
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 2 }))
	r := a.Report()
	if len(r.Ongoing) != 1 || r.Ongoing[0].Invariant != InvReplicaCount {
		t.Fatalf("ongoing = %+v, want one replica-count violation", r.Ongoing)
	}
	opened := r.Ongoing[0].OpenedSeq

	// Repair restores it: the violation resolves and becomes transient.
	j.Publish(ev(events.RepairFinished, func(e *events.Event) { e.Block = 1; e.Node = 3 }))
	r = a.Report()
	if len(r.Ongoing) != 0 {
		t.Fatalf("violation still ongoing after repair: %+v", r.Ongoing)
	}
	if len(r.Transient) != 1 || !r.Transient[0].Transient() {
		t.Fatalf("transient = %+v, want the resolved violation", r.Transient)
	}
	v := r.Transient[0]
	if v.OpenedSeq != opened || v.ResolvedSeq <= v.OpenedSeq {
		t.Errorf("violation window [%d..%d] malformed (opened at %d)", v.OpenedSeq, v.ResolvedSeq, opened)
	}
	if r.Clean {
		t.Error("report claims clean despite a transient violation")
	}
}

func TestReplicaCountSuspendedDuringEncode(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2})
	j := feed(a)
	for _, e := range commit(1, 0, 2) {
		j.Publish(e)
	}
	j.Publish(group(10, events.NoneRack, 1))
	j.Publish(ev(events.StripeEncodeStarted, func(e *events.Event) { e.Stripe = 10 }))
	// Encode legitimately deletes down to one replica.
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 2 }))
	j.Publish(ev(events.StripeEncoded, func(e *events.Event) { e.Stripe = 10 }))
	if r := a.Report(); !r.Clean {
		t.Fatalf("encode-bracket deletes flagged: %+v", append(r.Ongoing, r.Transient...))
	}
}

func TestCoreRackCopyViolation(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2, CheckCoreRack: true})
	j := feed(a)
	// Core rack 0 is nodes {0,1}; block 1's replicas live in racks 1 and 2.
	for _, e := range commit(1, 2, 4) {
		j.Publish(e)
	}
	j.Publish(group(10, 0, 1))
	r := a.Report()
	if len(r.Ongoing) != 1 || r.Ongoing[0].Invariant != InvCoreRackCopy {
		t.Fatalf("ongoing = %+v, want one core-rack-copy violation", r.Ongoing)
	}
	// Relocating a replica into the core rack resolves it.
	j.Publish(ev(events.ReplicaRelocated, func(e *events.Event) {
		e.Block = 1
		e.Node = 4
		e.Peer = 1
	}))
	r = a.Report()
	if len(r.Ongoing) != 0 || len(r.Transient) != 1 {
		t.Fatalf("after relocation: ongoing=%+v transient=%+v", r.Ongoing, r.Transient)
	}
}

func TestCoreRackCheckDisabledForRR(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2, CheckCoreRack: false})
	j := feed(a)
	for _, e := range commit(1, 2, 4) {
		j.Publish(e)
	}
	j.Publish(group(10, 0, 1))
	if r := a.Report(); !r.Clean {
		t.Fatalf("core-rack check ran with CheckCoreRack=false: %+v", r.Ongoing)
	}
}

// encodeStripe folds a one-block stripe through its encode bracket with the
// retained replica on keep and parity on parityNode.
func encodeStripe(j *events.Journal, s topology.StripeID, b topology.BlockID, drop, parityNode topology.NodeID) {
	j.Publish(ev(events.StripeEncodeStarted, func(e *events.Event) { e.Stripe = s }))
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = b; e.Node = drop }))
	j.Publish(ev(events.StripeEncoded, func(e *events.Event) {
		e.Stripe = s
		e.Nodes = []topology.NodeID{parityNode}
	}))
}

func TestRackSpreadViolationResolvedByRelocation(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2, C: 1})
	j := feed(a)
	// Blocks 1 and 2 both retain a replica in rack 1 (nodes 2,3) post-encode.
	for _, e := range commit(1, 2, 0) {
		j.Publish(e)
	}
	for _, e := range commit(2, 3, 1) {
		j.Publish(e)
	}
	j.Publish(group(10, events.NoneRack, 1, 2))
	j.Publish(ev(events.StripeEncodeStarted, func(e *events.Event) { e.Stripe = 10 }))
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 0 }))
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 2; e.Node = 1 }))
	j.Publish(ev(events.StripeEncoded, func(e *events.Event) {
		e.Stripe = 10
		e.Nodes = []topology.NodeID{4}
	}))
	r := a.Report()
	if len(r.Ongoing) != 1 || r.Ongoing[0].Invariant != InvRackSpread {
		t.Fatalf("ongoing = %+v, want one rack-spread violation", r.Ongoing)
	}
	// The BlockMover relocates block 2 out of the crowded rack.
	j.Publish(ev(events.ReplicaRelocated, func(e *events.Event) {
		e.Block = 2
		e.Node = 3
		e.Peer = 6
	}))
	r = a.Report()
	if len(r.Ongoing) != 0 || len(r.Transient) != 1 {
		t.Fatalf("after relocation: ongoing=%+v transient=%+v", r.Ongoing, r.Transient)
	}
}

func TestRackSpreadCountsParity(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2, C: 1})
	j := feed(a)
	for _, e := range commit(1, 0, 2) {
		j.Publish(e)
	}
	j.Publish(group(10, events.NoneRack, 1))
	// The retained replica lands on node 2 (rack 1); parity on node 3 — the
	// same rack, so data + parity breach c=1 together.
	encodeStripe(j, 10, 1, 0, 3)
	r := a.Report()
	if len(r.Ongoing) != 1 || r.Ongoing[0].Invariant != InvRackSpread {
		t.Fatalf("ongoing = %+v, want rack-spread counting parity", r.Ongoing)
	}
	// A parity relocation (Detail="parity") resolves it.
	j.Publish(ev(events.ReplicaRelocated, func(e *events.Event) {
		e.Stripe = 10
		e.Node = 3
		e.Peer = 6
		e.Detail = "parity"
	}))
	if r := a.Report(); len(r.Ongoing) != 0 {
		t.Fatalf("parity relocation did not resolve: %+v", r.Ongoing)
	}
}

func TestPartialDeleteViolation(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2})
	j := feed(a)
	for _, e := range commit(1, 0, 2) {
		j.Publish(e)
	}
	j.Publish(group(10, events.NoneRack, 1))
	// Encode deletes BOTH replicas: the stripe is left partially deleted.
	j.Publish(ev(events.StripeEncodeStarted, func(e *events.Event) { e.Stripe = 10 }))
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 0 }))
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 2 }))
	j.Publish(ev(events.StripeEncoded, func(e *events.Event) { e.Stripe = 10 }))
	r := a.Report()
	found := false
	for _, v := range r.Ongoing {
		if v.Invariant == InvPartialDelete && v.Block == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ongoing = %+v, want a partial-delete violation for block 1", r.Ongoing)
	}
}

func TestAbortedBlockIgnored(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2})
	feed(a,
		ev(events.BlockAllocated, func(e *events.Event) {
			e.Block = 1
			e.Nodes = []topology.NodeID{0, 2}
		}),
		ev(events.BlockAborted, func(e *events.Event) { e.Block = 1 }),
	)
	if r := a.Report(); !r.Clean {
		t.Fatalf("aborted block flagged: %+v", append(r.Ongoing, r.Transient...))
	}
}

func TestViolationWindowExtends(t *testing.T) {
	a := testAuditor(t, Config{Replicas: 2})
	j := feed(a)
	for _, e := range commit(1, 0, 2) {
		j.Publish(e)
	}
	j.Publish(ev(events.ReplicaDeleted, func(e *events.Event) { e.Block = 1; e.Node = 2 }))
	opened := a.Report().Ongoing[0].LastSeq
	// Unrelated traffic extends the open window's LastSeq.
	j.Publish(ev(events.TransferFinished, func(e *events.Event) { e.Bytes = 4096 }))
	v := a.Report().Ongoing[0]
	if v.LastSeq <= opened {
		t.Errorf("LastSeq = %d did not advance past %d while violation held", v.LastSeq, opened)
	}
}
