// Package events is the cluster event journal: a lock-cheap, ring-buffered
// log of typed, structured events that every subsystem of the mini-HDFS
// testbed publishes into — the NameNode (allocations, commits, aborts,
// stripe grouping, encode commits, node liveness), the data path (replica
// writes, deletes, relocations, repairs), the RaidNode and BlockMover, the
// MapReduce scheduler (task placements), and the fabric (transfer
// start/finish with the link path taken).
//
// Where the telemetry package answers "how much, right now", the journal
// answers "what happened, in what order": every event carries a process-wide
// sequence number, a wall-clock timestamp, a logical timestamp (offset from
// the journal epoch, immune to wall-clock jumps), and correlation keys
// (block, stripe, node) tying the streams of different subsystems together.
// The audit subpackage replays the stream against the paper's placement
// invariants; the earfsd admin endpoint serves it with cursors and filters.
//
// A nil *Journal is a valid no-op sink, so instrumented code never needs nil
// checks — the same convention as telemetry.Tracer. Synchronous subscribers
// observe every event even after the ring wraps; they must be fast and must
// not call back into the journal or into the publishing subsystem.
package events

import (
	"sync"
	"sync/atomic"
	"time"

	"ear/internal/topology"
)

// Type names one kind of cluster event. The taxonomy is closed: subsystems
// publish only these, so consumers (the auditor, the admin endpoint's
// filters) can switch on them exhaustively.
type Type string

// Event types, grouped by the lifecycle they trace.
const (
	// BlockAllocated: the NameNode reserved a block and planned its replica
	// placement (Nodes holds the planned replicas).
	BlockAllocated Type = "block-allocated"
	// ReplicaWritten: one replica of a block was durably stored on Node.
	ReplicaWritten Type = "replica-written"
	// BlockCommitted: every replica is durable; Nodes holds the replica set.
	BlockCommitted Type = "block-committed"
	// BlockAborted: an uncommitted write was abandoned; the block keeps its
	// stripe slot and encodes as zeros.
	BlockAborted Type = "block-aborted"

	// StripeGrouped: a stripe was sealed and registered for encoding.
	// Blocks holds the members, Rack the core rack (-1 under RR).
	StripeGrouped Type = "stripe-grouped"
	// StripeEncodeStarted: an encoding task began the paper's three-step
	// encode of the stripe on Node.
	StripeEncodeStarted Type = "stripe-encode-started"
	// StripeEncoded: encoding committed; Nodes holds the parity placements.
	StripeEncoded Type = "stripe-encoded"
	// StripeVerified: the PlacementMonitor checked the stripe's live layout
	// (Detail "ok" or "violating").
	StripeVerified Type = "stripe-verified"

	// ReplicaDeleted: the replica of Block on Node was deleted (the encode
	// operation's third step, or a relocation source).
	ReplicaDeleted Type = "replica-deleted"
	// ReplicaRelocated: a block (or parity, Detail "parity") moved from
	// Node to Peer.
	ReplicaRelocated Type = "replica-relocated"

	// RepairStarted / RepairFinished bracket the reconstruction of a lost
	// block onto Node.
	RepairStarted  Type = "repair-started"
	RepairFinished Type = "repair-finished"

	// TransferStarted / TransferFinished bracket one fabric stream from
	// Node to Peer. Detail carries the link path ("node3.up>rack0.up>..."),
	// Bytes the payload delivered, Cross the rack locality.
	TransferStarted  Type = "transfer-started"
	TransferFinished Type = "transfer-finished"

	// TaskScheduled: the JobTracker placed a map task on Node (Detail holds
	// the task name and achieved locality).
	TaskScheduled Type = "task-scheduled"

	// NodeDead / NodeAlive track NameNode liveness transitions.
	NodeDead  Type = "node-dead"
	NodeAlive Type = "node-alive"

	// NodeRecoveryStarted / NodeRecoveryFinished bracket a full-node
	// recovery sweep (Cluster.RecoverNode): Node is the dead node, Detail
	// carries the lost-block count on start and the repaired count on
	// finish.
	NodeRecoveryStarted  Type = "node-recovery-started"
	NodeRecoveryFinished Type = "node-recovery-finished"

	// NodeDegraded / NodeRecovered track the health plane's slow-node
	// detector: a node whose health score fell below the degraded threshold
	// (heartbeat latency, op-latency outliers, recent failures — Detail
	// carries the score breakdown), and its later recovery past the
	// hysteresis threshold.
	NodeDegraded  Type = "node-degraded"
	NodeRecovered Type = "node-recovered"

	// MetaRecoveryStarted / MetaRecovered bracket a NameNode crash
	// recovery: snapshot load plus write-ahead-log tail replay.
	// MetaRecovered's Dur is the recovery time, Bytes the replayed record
	// count, and Detail the recovered block/stripe counts. Between the two,
	// the NameNode republishes its recovered layout as canonical events so
	// a freshly attached auditor can rebuild its model.
	MetaRecoveryStarted Type = "meta-recovery-started"
	MetaRecovered       Type = "meta-recovered"
	// MetaCheckpointed marks a metadata snapshot written and the op log
	// truncated behind it. Bytes is the snapshot size, Dur the write time.
	MetaCheckpointed Type = "meta-checkpointed"
)

// Event is one journal entry. Zero-valued correlation keys mean "not
// applicable": use the None* sentinels when constructing events by hand.
type Event struct {
	// Seq is the journal-wide sequence number, dense and strictly
	// increasing from 1. Cursor reads key on it.
	Seq uint64 `json:"seq"`
	// Wall is the wall-clock publish time.
	Wall time.Time `json:"wall"`
	// Logical is the offset from the journal epoch — a monotonic timestamp
	// that orders events even across wall-clock adjustments.
	Logical time.Duration `json:"logical"`

	Type Type `json:"type"`
	// Subsystem names the publisher: "namenode", "client", "datanode",
	// "raidnode", "blockmover", "mapred", "fabric".
	Subsystem string `json:"subsystem"`

	// Correlation keys. NoneBlock / NoneStripe / NoneNode / NoneRack mark
	// fields that do not apply to the event.
	Block  topology.BlockID  `json:"block"`
	Stripe topology.StripeID `json:"stripe"`
	Node   topology.NodeID   `json:"node"`
	// Peer is the second node of a pairwise event (transfer destination,
	// relocation target).
	Peer topology.NodeID `json:"peer"`
	Rack topology.RackID `json:"rack"`

	// Trace is the distributed-trace correlation key: the telemetry trace
	// ID of the request that caused the event, 0 for untraced activity.
	// Filtering the journal on one trace ID yields the event-level view of
	// one end-to-end operation, the counterpart of the span-level view in
	// the Chrome-trace export.
	Trace uint64 `json:"trace,omitempty"`

	// Bytes is the payload size for byte-moving events.
	Bytes int64 `json:"bytes,omitempty"`
	// Dur is the event's own duration where one is meaningful (a finished
	// transfer's open-to-close time); 0 otherwise. The health plane derives
	// per-node effective transfer rates from it.
	Dur time.Duration `json:"dur,omitempty"`
	// Cross marks cross-rack byte movement.
	Cross bool `json:"cross,omitempty"`
	// Nodes and Blocks carry set-valued payloads (replica sets, parity
	// placements, stripe membership).
	Nodes  []topology.NodeID  `json:"nodes,omitempty"`
	Blocks []topology.BlockID `json:"blocks,omitempty"`
	// Detail is a short free-form annotation (link path, task name, ...).
	Detail string `json:"detail,omitempty"`
}

// Sentinels for inapplicable correlation keys.
const (
	NoneBlock  topology.BlockID  = -1
	NoneStripe topology.StripeID = -1
	NoneNode   topology.NodeID   = -1
	NoneRack   topology.RackID   = -1
)

// New returns an event skeleton with every correlation key set to its None
// sentinel, ready for the caller to fill.
func New(t Type, subsystem string) Event {
	return Event{
		Type:      t,
		Subsystem: subsystem,
		Block:     NoneBlock,
		Stripe:    NoneStripe,
		Node:      NoneNode,
		Peer:      NoneNode,
		Rack:      NoneRack,
	}
}

// DefaultCapacity is the ring size a zero-configured journal gets: enough
// for the full event stream of a testbed experiment run.
const DefaultCapacity = 1 << 16

// Journal is the ring-buffered event log. All methods are safe for
// concurrent use; a nil *Journal ignores publishes and returns empty reads.
type Journal struct {
	mu    sync.Mutex
	epoch time.Time
	seq   uint64
	buf   []Event // ring storage, len == capacity
	next  int     // ring slot the next event lands in
	count int     // live events, <= len(buf)
	subs  map[int]func(Event)
	subID int

	// published counts total events ever accepted, readable without the
	// lock (overhead-sensitive callers poll it).
	published atomic.Uint64
}

// NewJournal creates a journal retaining at most capacity events
// (DefaultCapacity when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{
		epoch: time.Now(),
		buf:   make([]Event, capacity),
		subs:  make(map[int]func(Event)),
	}
}

// Publish stamps the event (sequence number, wall and logical timestamps)
// and appends it, overwriting the oldest entry when the ring is full.
// Synchronous subscribers run under the journal lock in subscription order,
// so they observe the exact stream; they must not call back into the
// journal. Publishing to a nil journal is a no-op.
func (j *Journal) Publish(e Event) {
	if j == nil {
		return
	}
	now := time.Now()
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	e.Wall = now
	e.Logical = now.Sub(j.epoch)
	j.buf[j.next] = e
	j.next = (j.next + 1) % len(j.buf)
	if j.count < len(j.buf) {
		j.count++
	}
	for _, fn := range j.subs {
		fn(e)
	}
	j.mu.Unlock()
	j.published.Add(1)
}

// Subscribe registers a synchronous observer of every subsequent event and
// returns its cancel function. Subscribing to a nil journal returns a no-op
// cancel.
func (j *Journal) Subscribe(fn func(Event)) (cancel func()) {
	if j == nil {
		return func() {}
	}
	j.mu.Lock()
	j.subID++
	id := j.subID
	j.subs[id] = fn
	j.mu.Unlock()
	return func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

// Seq returns the sequence number of the most recent event (0 when empty).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	return j.published.Load()
}

// Len returns how many events the ring currently retains.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Filter selects events for cursor reads. Zero fields match everything;
// Block/Stripe/Node match when the event's key equals the pointer's value.
type Filter struct {
	Type      Type
	Subsystem string
	Block     *topology.BlockID
	Stripe    *topology.StripeID
	Node      *topology.NodeID
	// Trace, when nonzero, selects the events of one distributed trace.
	Trace uint64
}

// match reports whether e passes the filter. Node matches either end of a
// pairwise event.
func (f Filter) match(e Event) bool {
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	if f.Subsystem != "" && e.Subsystem != f.Subsystem {
		return false
	}
	if f.Block != nil && e.Block != *f.Block {
		return false
	}
	if f.Stripe != nil && e.Stripe != *f.Stripe {
		return false
	}
	if f.Node != nil && e.Node != *f.Node && e.Peer != *f.Node {
		return false
	}
	if f.Trace != 0 && e.Trace != f.Trace {
		return false
	}
	return true
}

// Since returns up to max events with Seq > cursor that pass the filter, in
// sequence order, together with the cursor for the next call and how many
// matching-eligible events were lost to ring wrap (events whose sequence
// numbers fell between the cursor and the oldest retained entry). max <= 0
// means no limit. The returned cursor always advances past every event that
// was considered, so pollers never re-read.
func (j *Journal) Since(cursor uint64, max int, f Filter) (evs []Event, next uint64, dropped uint64) {
	if j == nil {
		return nil, cursor, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	next = cursor
	if j.count == 0 {
		return nil, next, 0
	}
	oldestIdx := (j.next - j.count + len(j.buf)) % len(j.buf)
	oldestSeq := j.buf[oldestIdx].Seq
	if cursor+1 < oldestSeq {
		dropped = oldestSeq - cursor - 1
	}
	for i := 0; i < j.count; i++ {
		e := j.buf[(oldestIdx+i)%len(j.buf)]
		if e.Seq <= cursor {
			continue
		}
		if max > 0 && len(evs) >= max {
			break
		}
		next = e.Seq
		if f.match(e) {
			evs = append(evs, e)
		}
	}
	return evs, next, dropped
}

// Snapshot returns every retained event in sequence order (diagnostics and
// tests; pollers should use Since).
func (j *Journal) Snapshot() []Event {
	evs, _, _ := j.Since(0, 0, Filter{})
	return evs
}
