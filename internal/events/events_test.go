package events

import (
	"sync"
	"testing"

	"ear/internal/topology"
)

func TestNewFillsSentinels(t *testing.T) {
	e := New(BlockCommitted, "namenode")
	if e.Type != BlockCommitted || e.Subsystem != "namenode" {
		t.Fatalf("New stamped %q/%q", e.Type, e.Subsystem)
	}
	if e.Block != NoneBlock || e.Stripe != NoneStripe || e.Node != NoneNode ||
		e.Peer != NoneNode || e.Rack != NoneRack {
		t.Errorf("New left correlation keys unset: %+v", e)
	}
}

func TestPublishStampsAndOrders(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Publish(New(BlockAllocated, "namenode"))
	}
	if got := j.Seq(); got != 5 {
		t.Fatalf("Seq = %d, want 5", got)
	}
	if got := j.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	evs := j.Snapshot()
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d, want dense from 1", i, e.Seq)
		}
		if e.Wall.IsZero() {
			t.Errorf("event %d missing wall timestamp", i)
		}
		if i > 0 && evs[i].Logical < evs[i-1].Logical {
			t.Errorf("logical timestamps not monotone at %d", i)
		}
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	evs, next, dropped := j.Since(0, 0, Filter{})
	if len(evs) != 4 {
		t.Fatalf("Since returned %d events, want 4 retained", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Errorf("retained window [%d..%d], want [7..10]", evs[0].Seq, evs[3].Seq)
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6 (events 1-6 rotated out)", dropped)
	}
	if next != 10 {
		t.Errorf("next = %d, want 10", next)
	}
	// A cursor inside the retained window loses nothing.
	if _, _, dropped := j.Since(8, 0, Filter{}); dropped != 0 {
		t.Errorf("in-window cursor reported %d dropped", dropped)
	}
}

func TestSinceCursorAdvancesPastFiltered(t *testing.T) {
	j := NewJournal(0)
	for i := 0; i < 6; i++ {
		typ := TransferStarted
		if i%2 == 1 {
			typ = TransferFinished
		}
		j.Publish(New(typ, "fabric"))
	}
	evs, next, _ := j.Since(0, 0, Filter{Type: TransferFinished})
	if len(evs) != 3 {
		t.Fatalf("filtered read returned %d events, want 3", len(evs))
	}
	// The cursor covers the non-matching events too: a second poll is empty
	// instead of re-reading.
	if next != 6 {
		t.Errorf("next = %d, want 6 (past filtered-out events)", next)
	}
	evs, next, _ = j.Since(next, 0, Filter{Type: TransferFinished})
	if len(evs) != 0 || next != 6 {
		t.Errorf("second poll returned %d events, next %d", len(evs), next)
	}
}

func TestSinceMaxLimitsAndResumes(t *testing.T) {
	j := NewJournal(0)
	for i := 0; i < 7; i++ {
		j.Publish(New(ReplicaDeleted, "raidnode"))
	}
	var got []Event
	cursor := uint64(0)
	for {
		evs, next, _ := j.Since(cursor, 3, Filter{})
		got = append(got, evs...)
		if next == cursor {
			break
		}
		cursor = next
	}
	if len(got) != 7 {
		t.Fatalf("paged reads returned %d events, want 7", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("paged read out of order at %d: seq %d", i, e.Seq)
		}
	}
}

func TestFilterFields(t *testing.T) {
	j := NewJournal(0)
	blk := topology.BlockID(42)
	str := topology.StripeID(7)
	node := topology.NodeID(3)
	peer := topology.NodeID(9)

	e := New(ReplicaRelocated, "blockmover")
	e.Block, e.Stripe, e.Node, e.Peer = blk, str, node, peer
	j.Publish(e)
	j.Publish(New(BlockCommitted, "namenode"))

	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 2},
		{"type", Filter{Type: ReplicaRelocated}, 1},
		{"subsystem", Filter{Subsystem: "namenode"}, 1},
		{"block", Filter{Block: &blk}, 1},
		{"stripe", Filter{Stripe: &str}, 1},
		{"node", Filter{Node: &node}, 1},
		{"peer-as-node", Filter{Node: &peer}, 1},
		{"no-match", Filter{Type: RepairStarted}, 0},
	}
	for _, tc := range cases {
		if evs, _, _ := j.Since(0, 0, tc.f); len(evs) != tc.want {
			t.Errorf("filter %s matched %d events, want %d", tc.name, len(evs), tc.want)
		}
	}
	// A sentinel-keyed event does not match a concrete-key filter.
	other := topology.BlockID(1)
	if evs, _, _ := j.Since(0, 0, Filter{Block: &other}); len(evs) != 0 {
		t.Errorf("filter on absent block matched %d events", len(evs))
	}
}

func TestSubscribeDeliversAndCancels(t *testing.T) {
	j := NewJournal(0)
	var seen []uint64
	cancel := j.Subscribe(func(e Event) { seen = append(seen, e.Seq) })
	j.Publish(New(NodeDead, "namenode"))
	j.Publish(New(NodeAlive, "namenode"))
	cancel()
	j.Publish(New(NodeDead, "namenode"))
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("subscriber saw %v, want [1 2]", seen)
	}
}

func TestNilJournalNoOps(t *testing.T) {
	var j *Journal
	j.Publish(New(BlockAllocated, "namenode")) // must not panic
	if j.Seq() != 0 || j.Len() != 0 {
		t.Error("nil journal reports non-empty state")
	}
	evs, next, dropped := j.Since(5, 10, Filter{})
	if evs != nil || next != 5 || dropped != 0 {
		t.Errorf("nil Since = (%v, %d, %d)", evs, next, dropped)
	}
	cancel := j.Subscribe(func(Event) { t.Error("nil journal invoked subscriber") })
	cancel()
}

func TestConcurrentPublishers(t *testing.T) {
	j := NewJournal(64)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Publish(New(TransferFinished, "fabric"))
				j.Since(0, 8, Filter{})
			}
		}()
	}
	wg.Wait()
	if got := j.Seq(); got != workers*per {
		t.Fatalf("Seq = %d, want %d", got, workers*per)
	}
	evs := j.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap in ring: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}
