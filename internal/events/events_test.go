package events

import (
	"sync"
	"testing"

	"ear/internal/topology"
)

func TestNewFillsSentinels(t *testing.T) {
	e := New(BlockCommitted, "namenode")
	if e.Type != BlockCommitted || e.Subsystem != "namenode" {
		t.Fatalf("New stamped %q/%q", e.Type, e.Subsystem)
	}
	if e.Block != NoneBlock || e.Stripe != NoneStripe || e.Node != NoneNode ||
		e.Peer != NoneNode || e.Rack != NoneRack {
		t.Errorf("New left correlation keys unset: %+v", e)
	}
}

func TestPublishStampsAndOrders(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Publish(New(BlockAllocated, "namenode"))
	}
	if got := j.Seq(); got != 5 {
		t.Fatalf("Seq = %d, want 5", got)
	}
	if got := j.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	evs := j.Snapshot()
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d, want dense from 1", i, e.Seq)
		}
		if e.Wall.IsZero() {
			t.Errorf("event %d missing wall timestamp", i)
		}
		if i > 0 && evs[i].Logical < evs[i-1].Logical {
			t.Errorf("logical timestamps not monotone at %d", i)
		}
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	evs, next, dropped := j.Since(0, 0, Filter{})
	if len(evs) != 4 {
		t.Fatalf("Since returned %d events, want 4 retained", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Errorf("retained window [%d..%d], want [7..10]", evs[0].Seq, evs[3].Seq)
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6 (events 1-6 rotated out)", dropped)
	}
	if next != 10 {
		t.Errorf("next = %d, want 10", next)
	}
	// A cursor inside the retained window loses nothing.
	if _, _, dropped := j.Since(8, 0, Filter{}); dropped != 0 {
		t.Errorf("in-window cursor reported %d dropped", dropped)
	}
}

func TestSinceCursorAdvancesPastFiltered(t *testing.T) {
	j := NewJournal(0)
	for i := 0; i < 6; i++ {
		typ := TransferStarted
		if i%2 == 1 {
			typ = TransferFinished
		}
		j.Publish(New(typ, "fabric"))
	}
	evs, next, _ := j.Since(0, 0, Filter{Type: TransferFinished})
	if len(evs) != 3 {
		t.Fatalf("filtered read returned %d events, want 3", len(evs))
	}
	// The cursor covers the non-matching events too: a second poll is empty
	// instead of re-reading.
	if next != 6 {
		t.Errorf("next = %d, want 6 (past filtered-out events)", next)
	}
	evs, next, _ = j.Since(next, 0, Filter{Type: TransferFinished})
	if len(evs) != 0 || next != 6 {
		t.Errorf("second poll returned %d events, next %d", len(evs), next)
	}
}

func TestSinceMaxLimitsAndResumes(t *testing.T) {
	j := NewJournal(0)
	for i := 0; i < 7; i++ {
		j.Publish(New(ReplicaDeleted, "raidnode"))
	}
	var got []Event
	cursor := uint64(0)
	for {
		evs, next, _ := j.Since(cursor, 3, Filter{})
		got = append(got, evs...)
		if next == cursor {
			break
		}
		cursor = next
	}
	if len(got) != 7 {
		t.Fatalf("paged reads returned %d events, want 7", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("paged read out of order at %d: seq %d", i, e.Seq)
		}
	}
}

func TestFilterFields(t *testing.T) {
	j := NewJournal(0)
	blk := topology.BlockID(42)
	str := topology.StripeID(7)
	node := topology.NodeID(3)
	peer := topology.NodeID(9)

	e := New(ReplicaRelocated, "blockmover")
	e.Block, e.Stripe, e.Node, e.Peer = blk, str, node, peer
	j.Publish(e)
	j.Publish(New(BlockCommitted, "namenode"))

	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 2},
		{"type", Filter{Type: ReplicaRelocated}, 1},
		{"subsystem", Filter{Subsystem: "namenode"}, 1},
		{"block", Filter{Block: &blk}, 1},
		{"stripe", Filter{Stripe: &str}, 1},
		{"node", Filter{Node: &node}, 1},
		{"peer-as-node", Filter{Node: &peer}, 1},
		{"no-match", Filter{Type: RepairStarted}, 0},
	}
	for _, tc := range cases {
		if evs, _, _ := j.Since(0, 0, tc.f); len(evs) != tc.want {
			t.Errorf("filter %s matched %d events, want %d", tc.name, len(evs), tc.want)
		}
	}
	// A sentinel-keyed event does not match a concrete-key filter.
	other := topology.BlockID(1)
	if evs, _, _ := j.Since(0, 0, Filter{Block: &other}); len(evs) != 0 {
		t.Errorf("filter on absent block matched %d events", len(evs))
	}
}

func TestSubscribeDeliversAndCancels(t *testing.T) {
	j := NewJournal(0)
	var seen []uint64
	cancel := j.Subscribe(func(e Event) { seen = append(seen, e.Seq) })
	j.Publish(New(NodeDead, "namenode"))
	j.Publish(New(NodeAlive, "namenode"))
	cancel()
	j.Publish(New(NodeDead, "namenode"))
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("subscriber saw %v, want [1 2]", seen)
	}
}

func TestNilJournalNoOps(t *testing.T) {
	var j *Journal
	j.Publish(New(BlockAllocated, "namenode")) // must not panic
	if j.Seq() != 0 || j.Len() != 0 {
		t.Error("nil journal reports non-empty state")
	}
	evs, next, dropped := j.Since(5, 10, Filter{})
	if evs != nil || next != 5 || dropped != 0 {
		t.Errorf("nil Since = (%v, %d, %d)", evs, next, dropped)
	}
	cancel := j.Subscribe(func(Event) { t.Error("nil journal invoked subscriber") })
	cancel()
}

func TestConcurrentPublishers(t *testing.T) {
	j := NewJournal(64)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Publish(New(TransferFinished, "fabric"))
				j.Since(0, 8, Filter{})
			}
		}()
	}
	wg.Wait()
	if got := j.Seq(); got != workers*per {
		t.Fatalf("Seq = %d, want %d", got, workers*per)
	}
	evs := j.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap in ring: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestWrapPastOutstandingCursor: a poller that fell behind loses exactly the
// events between its cursor and the oldest retained entry — no more, no
// less — and resumes from the retained window.
func TestWrapPastOutstandingCursor(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 5; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	// Poller reads up to seq 3, then the ring keeps rolling.
	_, cursor, dropped := j.Since(0, 3, Filter{})
	if cursor != 4 || dropped != 1 {
		t.Fatalf("first page: cursor=%d dropped=%d, want 4/1 (seq 1 rotated out, page covers 2-4)", cursor, dropped)
	}
	for i := 0; i < 6; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	// Ring now holds [8..11]; the cursor at 4 lost 5..7.
	evs, next, dropped := j.Since(cursor, 0, Filter{})
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3 (seqs 5-7 overwritten past the cursor)", dropped)
	}
	if len(evs) != 4 || evs[0].Seq != 8 || next != 11 {
		t.Errorf("resume read: %d events starting %d next %d, want 4 from 8 next 11",
			len(evs), evs[0].Seq, next)
	}
}

// TestWrapExactBoundaryCursor: a cursor exactly one before the oldest
// retained event loses nothing.
func TestWrapExactBoundaryCursor(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	// Retained window is [7..10]; cursor 6 sits exactly on the boundary.
	evs, next, dropped := j.Since(6, 0, Filter{})
	if dropped != 0 {
		t.Errorf("boundary cursor dropped = %d, want 0", dropped)
	}
	if len(evs) != 4 || next != 10 {
		t.Errorf("boundary read: %d events next %d, want 4 next 10", len(evs), next)
	}
	// One step further back loses exactly one event.
	if _, _, dropped := j.Since(5, 0, Filter{}); dropped != 1 {
		t.Errorf("cursor 5 dropped = %d, want 1", dropped)
	}
}

// TestCursorBeyondLatest: polling past the newest event is a clean no-op.
func TestCursorBeyondLatest(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 3; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	evs, next, dropped := j.Since(99, 0, Filter{})
	if len(evs) != 0 || next != 99 || dropped != 0 {
		t.Errorf("beyond-latest read: %d events next %d dropped %d, want 0/99/0",
			len(evs), next, dropped)
	}
}

// TestZeroAndNegativeCapacityDefault: NewJournal(<=0) gets DefaultCapacity
// rather than an unusable zero-length ring.
func TestZeroAndNegativeCapacityDefault(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		j := NewJournal(capacity)
		if got := len(j.buf); got != DefaultCapacity {
			t.Errorf("NewJournal(%d) ring size = %d, want DefaultCapacity %d",
				capacity, got, DefaultCapacity)
		}
		j.Publish(New(ReplicaWritten, "datanode"))
		if evs, _, dropped := j.Since(0, 0, Filter{}); len(evs) != 1 || dropped != 0 {
			t.Errorf("NewJournal(%d) basic publish/read failed: %d events %d dropped",
				capacity, len(evs), dropped)
		}
	}
}

// TestCapacityOneRing: the degenerate single-slot ring still keeps exact
// drop accounting — every publish overwrites the previous event.
func TestCapacityOneRing(t *testing.T) {
	j := NewJournal(1)
	for i := 0; i < 5; i++ {
		j.Publish(New(ReplicaWritten, "datanode"))
	}
	if got := j.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	evs, next, dropped := j.Since(0, 0, Filter{})
	if len(evs) != 1 || evs[0].Seq != 5 {
		t.Fatalf("retained %d events seq %d, want only seq 5", len(evs), evs[0].Seq)
	}
	if dropped != 4 || next != 5 {
		t.Errorf("dropped=%d next=%d, want 4/5", dropped, next)
	}
	// Incremental polling on a capacity-1 ring: each poll from the previous
	// seq loses everything between.
	j.Publish(New(ReplicaWritten, "datanode"))
	j.Publish(New(ReplicaWritten, "datanode"))
	if _, _, dropped := j.Since(5, 0, Filter{}); dropped != 1 {
		t.Errorf("after 2 more publishes from cursor 5: dropped = %d, want 1 (seq 6)", dropped)
	}
}

// TestDropAccountingIsFilterIndependent: wrap losses are counted before the
// filter applies — a filtered poller still learns how much of the stream it
// can no longer inspect.
func TestDropAccountingIsFilterIndependent(t *testing.T) {
	j := NewJournal(2)
	for i := 0; i < 6; i++ {
		typ := TransferStarted
		if i%2 == 1 {
			typ = TransferFinished
		}
		j.Publish(New(typ, "fabric"))
	}
	_, _, dropped := j.Since(0, 0, Filter{Type: TransferFinished})
	if dropped != 4 {
		t.Errorf("filtered read dropped = %d, want 4 (filter-independent)", dropped)
	}
}

// TestTraceFilter: the Trace filter isolates one request's events.
func TestTraceFilter(t *testing.T) {
	j := NewJournal(0)
	for i := 0; i < 6; i++ {
		e := New(ReplicaWritten, "datanode")
		e.Trace = uint64(1 + i%2)
		j.Publish(e)
	}
	untraced := New(NodeAlive, "namenode")
	j.Publish(untraced)
	evs, _, _ := j.Since(0, 0, Filter{Trace: 2})
	if len(evs) != 3 {
		t.Fatalf("trace filter returned %d events, want 3", len(evs))
	}
	for _, e := range evs {
		if e.Trace != 2 {
			t.Errorf("trace filter leaked event with trace %d", e.Trace)
		}
	}
	// Zero Trace matches everything, including untraced events.
	evs, _, _ = j.Since(0, 0, Filter{})
	if len(evs) != 7 {
		t.Errorf("zero filter returned %d events, want 7", len(evs))
	}
}

// TestFilterCombinedPredicates: every set predicate must hold at once —
// trace + type + node narrows to exactly the events satisfying all three,
// including the Peer-matches-Node rule, and near-miss events (two of three
// predicates) are excluded.
func TestFilterCombinedPredicates(t *testing.T) {
	j := NewJournal(0)
	node := topology.NodeID(4)
	other := topology.NodeID(5)
	const trace = uint64(0xabcd)

	publish := func(typ Type, n topology.NodeID, peer topology.NodeID, tr uint64) {
		e := New(typ, "test")
		e.Node, e.Peer, e.Trace = n, peer, tr
		j.Publish(e)
	}
	publish(TransferStarted, node, -1, trace)    // full match on Node
	publish(TransferStarted, other, node, trace) // full match via Peer
	publish(TransferStarted, node, -1, 0x9999)   // wrong trace
	publish(TransferFinished, node, -1, trace)   // wrong type
	publish(TransferStarted, other, -1, trace)   // wrong node

	f := Filter{Type: TransferStarted, Node: &node, Trace: trace}
	evs, _, _ := j.Since(0, 0, f)
	if len(evs) != 2 {
		t.Fatalf("combined trace+type+node filter matched %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("matched seqs %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}

	// The same filter plus a subsystem that never occurs matches nothing.
	f.Subsystem = "absent"
	if evs, _, _ := j.Since(0, 0, f); len(evs) != 0 {
		t.Errorf("adding an absent subsystem still matched %d events", len(evs))
	}

	// Cursor semantics are preserved under combined filters: next advances
	// past everything considered, so a re-poll returns nothing new.
	f.Subsystem = ""
	_, next, _ := j.Since(0, 0, f)
	if evs, _, _ := j.Since(next, 0, f); len(evs) != 0 {
		t.Errorf("re-poll after cursor advance returned %d events", len(evs))
	}
}
