package erasure

import (
	"sync"
	"sync/atomic"
)

// BufferPool recycles block-sized byte buffers across encode, gather, and
// reconstruction operations. It is a set of sync.Pools keyed by buffer size:
// stripe pipelines deal in a handful of fixed sizes (the configured block
// size, occasionally a short tail), so each size class stays hot while GC
// remains free to drop idle buffers under memory pressure. All methods are
// safe for concurrent use.
//
// Buffers returned by Get have arbitrary contents; callers that need zeroed
// memory must clear them (or use a dedicated immutable zero block, as the
// encode path does for padding).
type BufferPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool

	gets atomic.Int64
	hits atomic.Int64
}

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool {
	return &BufferPool{pools: make(map[int]*sync.Pool)}
}

// sizeClass returns the pool for the given buffer size, creating it on
// first use.
func (p *BufferPool) sizeClass(size int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp, ok := p.pools[size]
	if !ok {
		sp = &sync.Pool{}
		p.pools[size] = sp
	}
	return sp
}

// Get returns a buffer of exactly the given length, reusing a pooled one
// when available. Contents are arbitrary.
func (p *BufferPool) Get(size int) []byte {
	if size <= 0 {
		return nil
	}
	p.gets.Add(1)
	if v := p.sizeClass(size).Get(); v != nil {
		p.hits.Add(1)
		return *(v.(*[]byte))
	}
	return make([]byte, size)
}

// Put returns a buffer to its size class. Nil and empty buffers are
// ignored. The caller must not use buf after Put.
func (p *BufferPool) Put(buf []byte) {
	if len(buf) == 0 {
		return
	}
	p.sizeClass(len(buf)).Put(&buf)
}

// Stats reports the cumulative Get count and how many of those were served
// from the pool (hits). The ratio is the pool hit rate the telemetry layer
// exports.
func (p *BufferPool) Stats() (gets, hits int64) {
	return p.gets.Load(), p.hits.Load()
}

// HitRate returns hits/gets, or 0 before the first Get.
func (p *BufferPool) HitRate() float64 {
	gets, hits := p.Stats()
	if gets == 0 {
		return 0
	}
	return float64(hits) / float64(gets)
}
